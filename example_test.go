package gicnet_test

import (
	"context"
	"fmt"
	"log"

	"gicnet"
)

// ExampleSimulate runs the paper's severe-storm state (S1) over the
// submarine network and reports the mean failure rate.
func ExampleSimulate() {
	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}
	res, err := gicnet.Simulate(context.Background(), world.Submarine, gicnet.SimConfig{
		Model:     gicnet.S1(),
		SpacingKm: 150,
		Trials:    10,
		Seed:      gicnet.DefaultSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Failure rates are world-dependent; print a stable classification.
	switch mean := res.CableFrac.Mean(); {
	case mean > 0.2:
		fmt.Println("severe: more than a fifth of submarine cables fail")
	case mean > 0.05:
		fmt.Println("moderate damage")
	default:
		fmt.Println("minor damage")
	}
	// Output: severe: more than a fifth of submarine cables fail
}

// ExampleStormModel derives failure probabilities from a physical storm
// scenario rather than the abstract S1/S2 states.
func ExampleStormModel() {
	model, err := gicnet.StormModel(gicnet.Carrington)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model.Name())
	// Output: storm:carrington-1859
}

// ExampleNewAnalyzer answers a §4.3.4-style question: does Singapore stay
// connected to India under a severe storm?
func ExampleNewAnalyzer() {
	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}
	an, err := gicnet.NewAnalyzer(world)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := an.PairConnectivity(context.Background(), gicnet.S1(), 150, 100, 1, "sg", "in")
	if err != nil {
		log.Fatal(err)
	}
	if conn.SurvivalProb > 0.9 {
		fmt.Println("Singapore keeps India")
	} else {
		fmt.Println("Singapore loses India")
	}
	// Output: Singapore keeps India
}

// ExamplePlanShutdown schedules pre-impact power-downs for a moderate
// storm forecast.
func ExamplePlanShutdown() {
	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := gicnet.PlanShutdown(world.Submarine, gicnet.Quebec, gicnet.DefaultShutdownOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan saves cables: %v\n", plan.Improvement() > 0)
	// Output: plan saves cables: true
}

// ExampleBaselineSolarRisk prints the paper's cited risk bracket.
func ExampleBaselineSolarRisk() {
	r := gicnet.BaselineSolarRisk()
	fmt.Printf("%.1f%%-%.1f%% per decade\n", 100*r.PerDecadeLow, 100*r.PerDecadeHigh)
	// Output: 1.6%-12.0% per decade
}

// ExampleAssessConstellation checks Starlink-class exposure to the
// reference superstorm.
func ExampleAssessConstellation() {
	exp, err := gicnet.AssessConstellation(gicnet.Starlink(), gicnet.Carrington)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drag multiplier: %.0fx\n", exp.DragMultiplier)
	// Output: drag multiplier: 10x
}
