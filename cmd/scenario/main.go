// Command scenario runs an end-to-end solar superstorm timeline: shutdown
// planning, impact, grid cascade, partitioning, traffic shift, satellite
// exposure and the repair campaign — one integrated report.
//
// Usage:
//
//	scenario -storm carrington-1859
//	scenario -storm quebec-1989 -no-shutdown -no-grid -seed 7
package main

import (
	"flag"
	"log"
	"os"

	"gicnet/internal/dataset"
	"gicnet/internal/gic"
	"gicnet/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenario: ")

	stormName := flag.String("storm", "carrington-1859", "storm scenario (carrington-1859|new-york-railroad-1921|quebec-1989|moderate)")
	seed := flag.Uint64("seed", dataset.DefaultSeed, "scenario seed")
	spacing := flag.Float64("spacing", 150, "inter-repeater distance, km")
	noShutdown := flag.Bool("no-shutdown", false, "skip the lead-time shutdown plan")
	noGrid := flag.Bool("no-grid", false, "skip the power-grid cascade")
	severity := flag.Float64("severity", 0.1, "per-repeater damage sampling rate for the repair backlog")
	flag.Parse()

	var storm *gic.Storm
	for _, s := range gic.Scenarios() {
		if s.Name == *stormName {
			sc := s
			storm = &sc
			break
		}
	}
	if storm == nil {
		log.Fatalf("unknown storm %q", *stormName)
	}

	world, err := dataset.Default()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := scenario.Run(world, scenario.Config{
		Storm:         *storm,
		SpacingKm:     *spacing,
		Seed:          *seed,
		ApplyShutdown: !*noShutdown,
		GridCoupling:  !*noGrid,
		FaultSeverity: *severity,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
