// Command whatif answers country-scale questions about a solar superstorm:
// which cables a country keeps, whether it can still reach a partner, and
// which new low-latitude cables would help most.
//
// Usage:
//
//	whatif -target us -partners region:europe,br -model s1
//	whatif -bridges 5 -probe-a us -probe-b region:europe
//	whatif -hubs 20
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gicnet/internal/core"
	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/failure"
	"gicnet/internal/partition"
	"gicnet/internal/rare"
	"gicnet/internal/report"
	"gicnet/internal/routing"
	"gicnet/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whatif: ")

	target := flag.String("target", "", "country/region/city to analyse (e.g. us, region:europe, city:shanghai)")
	partners := flag.String("partners", "", "comma-separated partner targets")
	modelName := flag.String("model", "s1", "failure model (s1|s2)")
	spacing := flag.Float64("spacing", 150, "inter-repeater distance, km")
	trials := flag.Int("trials", 100, "Monte Carlo trials")
	seed := flag.Uint64("seed", dataset.DefaultSeed, "seed")
	bridges := flag.Int("bridges", 0, "recommend this many low-latitude bridge cables")
	probeA := flag.String("probe-a", "us", "bridge probe endpoint A")
	probeB := flag.String("probe-b", "region:europe", "bridge probe endpoint B")
	hubs := flag.Int("hubs", 0, "list this many single-point-of-failure landing stations")
	spofs := flag.Int("spof-cables", 0, "list this many single-point-of-failure cables (longest first)")
	tail := flag.Bool("tail", false, "rare-event tail sweep: P(>=tail-threshold cables dead) down to p=1e-6, importance-sampled QMC vs plain MC")
	tailThreshold := flag.Int("tail-threshold", 2, "tail event: at least this many cables dead")
	crossLayerFlag := flag.Bool("crosslayer", false, "cross-layer impact of the chosen model: severed AS pairs and stranded users")
	flag.Parse()

	world, err := dataset.Default()
	if err != nil {
		log.Fatal(err)
	}
	an, err := core.NewAnalyzer(world)
	if err != nil {
		log.Fatal(err)
	}
	var model failure.Model
	switch *modelName {
	case "s1":
		model = failure.S1()
	case "s2":
		model = failure.S2()
	default:
		log.Fatalf("unknown model %q", *modelName)
	}
	ctx := context.Background()
	did := false

	if *target != "" {
		did = true
		var ps []core.Target
		for _, p := range strings.Split(*partners, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ps = append(ps, core.Target(p))
			}
		}
		rep, err := an.CountryAnalysis(ctx, model, *spacing, *trials, *seed, core.Target(*target), ps)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("%s under %s (%.0f km spacing)", *target, model.Name(), *spacing),
			"cable", "length", "band", "p(dies)")
		for _, c := range rep.Cables {
			t.AddRow(c.Name, report.Km(c.LengthKm), c.Band.String(), fmt.Sprintf("%.3f", c.DeathProb))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nexpected surviving cables: %.1f of %d\n", rep.ExpectedSurvivors, len(rep.Cables))
		fmt.Printf("total isolation probability: %.4f\n", rep.IsolationProb)
		for _, p := range rep.Partners {
			fmt.Printf("p(still connected to %s): %.2f\n", p.To, p.SurvivalProb)
		}
	}

	if *bridges > 0 {
		did = true
		cands, err := partition.Recommend(world, model, *spacing, *trials, *seed, *bridges, *probeA, *probeB)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("recommended low-latitude bridges for %s <-> %s", *probeA, *probeB),
			"from", "to", "length", "p(survives)", "benefit")
		for _, c := range cands {
			t.AddRow(c.From, c.To, report.Km(c.LengthKm),
				fmt.Sprintf("%.2f", c.SurvivalProb), fmt.Sprintf("%+.3f", c.Benefit))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *hubs > 0 {
		did = true
		fmt.Println("single points of failure (articulation landing stations):")
		for _, h := range an.HubCities(*hubs) {
			fmt.Println("  ", h)
		}
	}

	if *spofs > 0 {
		did = true
		fmt.Println("single points of failure (critical cables, longest first):")
		for _, c := range an.CriticalCables(*spofs) {
			fmt.Println("  ", c)
		}
	}

	if *tail {
		did = true
		tc := rare.TailConfig{
			SpacingKm: *spacing,
			Trials:    *trials,
			Seed:      *seed,
			Threshold: *tailThreshold,
		}
		if tc.Trials < 2048 {
			tc.Trials = 2048 // the tail needs statistics, not the paper's 10-trial default
		}
		ps := experiments.TailProbabilities()
		plain, err := rare.TailSweep(ctx, world.Submarine, tc, ps)
		if err != nil {
			log.Fatal(err)
		}
		tc.Estimator = rare.NewISQMC(0)
		isqmc, err := rare.TailSweep(ctx, world.Submarine, tc, ps)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("rare-event tail: P(>=%d cables dead), %d trials, %.0f km spacing", *tailThreshold, tc.Trials, *spacing),
			"p", "plain-MC", "is-qmc", "is-qmc 95% CI", "ESS")
		for i, pp := range plain {
			iq := isqmc[i]
			t.AddRow(
				fmt.Sprintf("%.0e", pp.P),
				fmt.Sprintf("%.3e", pp.TailProb),
				fmt.Sprintf("%.3e", iq.TailProb),
				fmt.Sprintf("[%.2e, %.2e]", iq.TailCI.Lo, iq.TailCI.Hi),
				fmt.Sprintf("%.0f", iq.ESS),
			)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *crossLayerFlag {
		did = true
		idx, err := crosslayer.Compile(world.Submarine, world.Routers, routing.DefaultDemands())
		if err != nil {
			log.Fatal(err)
		}
		cc := sim.Config{
			Model:      model,
			SpacingKm:  *spacing,
			Trials:     *trials,
			Seed:       *seed,
			CrossLayer: idx,
		}
		res, err := sim.Run(ctx, world.Submarine, cc)
		if err != nil {
			log.Fatal(err)
		}
		intact := idx.Intact()
		var pairs, stranded, weighted float64
		for i := range res.Cross {
			pairs += float64(res.Cross[i].ReachablePairs)
			stranded += res.Cross[i].StrandedShare
			weighted += res.Cross[i].DemandWeighted
		}
		n := float64(len(res.Cross))
		t := report.NewTable(
			fmt.Sprintf("cross-layer impact under %s (%.0f km spacing, %d trials)", model.Name(), *spacing, *trials),
			"metric", "value")
		t.AddRow("ASes attached", fmt.Sprintf("%d across %d sites", idx.TotalASes(), idx.Sites()))
		t.AddRow("intact AS pairs", fmt.Sprintf("%d", intact.ReachablePairs))
		if intact.ReachablePairs > 0 {
			t.AddRow("mean reachable AS pairs", fmt.Sprintf("%.1f%%", 100*pairs/n/float64(intact.ReachablePairs)))
		}
		t.AddRow("mean stranded users", fmt.Sprintf("%.1f%%", 100*stranded/n))
		t.AddRow("mean demand-weighted", fmt.Sprintf("%.1f%%", 100*weighted/n))
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
