// Command gicnetlint runs the repo-native static analyzers over the whole
// module: determinism (no wall clock, no global math/rand, no map-order
// leaks in the simulation packages), hotpath (//gicnet:hotpath functions
// stay allocation-free and closed under calls), floatcmp (no ==/!= on
// floats outside tests), and errcheck (must-check error results).
//
// Exit status is 1 when any finding survives //gicnet:allow suppressions.
//
//	gicnetlint [-root dir] [-analyzers a,b] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gicnet/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	only := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Parse()

	prog, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gicnetlint:", err)
		os.Exit(2)
	}

	analyzers := lint.Analyzers(lint.DefaultConfig())
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name()] {
				sel = append(sel, a)
				delete(keep, a.Name())
			}
		}
		if len(keep) > 0 {
			fmt.Fprintf(os.Stderr, "gicnetlint: unknown analyzers in -analyzers: %s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	diags := lint.Run(prog, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "gicnetlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "gicnetlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
