// Command gicnetlint runs the repo-native static analyzers over the whole
// module: determinism (no wall clock, no global math/rand, no map-order
// leaks in the simulation packages), crossdet (the same checks on every
// function those packages reach elsewhere in the module), concheck (lock
// discipline, WaitGroup balance, goroutine-leak shapes, arena
// acquire/release pairing), purecheck (//gicnet:pure fingerprint-path
// functions stay side-effect-free and closed under calls), hotpath
// (//gicnet:hotpath functions stay allocation-free and closed under
// calls), floatcmp (no ==/!= on floats outside tests), and errcheck
// (must-check error results).
//
// Exit status is 1 when any finding survives //gicnet:allow suppressions.
//
//	gicnetlint [-root dir] [-analyzers a,b] [-json] [-tags purego]
//	gicnetlint -write-baseline            # snapshot per-package file hashes
//	gicnetlint -changed                   # lint only packages changed since
//	                                      # the -baseline snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gicnet/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	only := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	tags := flag.String("tags", "", "comma-separated extra build tags (like `go build -tags`)")
	baseline := flag.String("baseline", "lint-baseline.json", "per-package file-hash snapshot, relative to -root")
	writeBaseline := flag.Bool("write-baseline", false, "write a fresh snapshot to -baseline and exit")
	changed := flag.Bool("changed", false, "lint only packages whose files differ from the -baseline snapshot")
	flag.Parse()

	baselinePath := *baseline
	if !strings.HasPrefix(baselinePath, "/") {
		baselinePath = *root + "/" + baselinePath
	}
	if *writeBaseline {
		snap, err := lint.SnapshotModule(*root)
		if err != nil {
			fatal(err)
		}
		if err := lint.WriteBaseline(baselinePath, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("gicnetlint: baseline of %d package(s) written to %s\n", len(snap), baselinePath)
		return
	}

	opts := lint.LoadOptions{}
	if *tags != "" {
		for _, t := range strings.Split(*tags, ",") {
			if t = strings.TrimSpace(t); t != "" {
				opts.Tags = append(opts.Tags, t)
			}
		}
	}
	if *changed {
		stored, err := lint.ReadBaseline(baselinePath)
		if err != nil {
			fatal(fmt.Errorf("%w (run gicnetlint -write-baseline first)", err))
		}
		current, err := lint.SnapshotModule(*root)
		if err != nil {
			fatal(err)
		}
		diff := lint.ChangedPackages(stored, current)
		if len(diff) == 0 {
			fmt.Println("gicnetlint: no packages changed since baseline")
			return
		}
		opts.Only = map[string]bool{}
		for _, p := range diff {
			opts.Only[p] = true
		}
		fmt.Printf("gicnetlint: %d changed package(s): %s\n", len(diff), strings.Join(diff, " "))
	}

	prog, err := lint.LoadModuleOpts(*root, opts)
	if err != nil {
		fatal(err)
	}

	analyzers := lint.Analyzers(lint.DefaultConfig())
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name()] {
				sel = append(sel, a)
				delete(keep, a.Name())
			}
		}
		if len(keep) > 0 {
			fmt.Fprintf(os.Stderr, "gicnetlint: unknown analyzers in -analyzers: %s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	diags := lint.Run(prog, analyzers)
	if *changed {
		// Diagnostics in unchanged dependency packages were already vetted
		// by the last full sweep; keep the changed-mode report focused.
		diags = filterToPackages(diags, prog, opts.Only)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "gicnetlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// filterToPackages keeps diagnostics whose file lives in one of the wanted
// packages' directories.
func filterToPackages(diags []lint.Diagnostic, prog *lint.Program, want map[string]bool) []lint.Diagnostic {
	dirs := map[string]bool{}
	for _, pkg := range prog.Pkgs {
		if want[pkg.Path] {
			dirs[pkg.Dir] = true
		}
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		dir := d.File
		if i := strings.LastIndexByte(dir, '/'); i >= 0 {
			dir = dir[:i]
		}
		if dirs[dir] {
			out = append(out, d)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gicnetlint:", err)
	os.Exit(2)
}
