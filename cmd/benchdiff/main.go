// Command benchdiff runs the repository benchmarks and records the results
// as a dated JSON snapshot (BENCH_<yyyy-mm-dd>.json by default), seeding
// the performance trajectory the ROADMAP asks for. With -baseline it also
// prints per-benchmark deltas against a previous snapshot, so a PR can
// show its speedup (or catch a regression) with one command:
//
//	go run ./cmd/benchdiff -bench 'Fig6|AblationSimWorkers|TrialLoop'
//	go run ./cmd/benchdiff -baseline BENCH_2026-08-06.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the persisted form of one benchmark run.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPU       string   `json:"cpu,omitempty"`
	Bench     string   `json:"bench_regex"`
	Packages  string   `json:"packages"`
	Results   []Result `json:"results"`
}

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches `BenchmarkName-8  123  456.7 ns/op  89 B/op  1 allocs/op`
// (the memory columns are optional). The GOMAXPROCS suffix is stripped
// separately, so sub-benchmark names like `workers-4` survive intact.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

var cpuLine = regexp.MustCompile(`^cpu: (.+)$`)

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	pkgs := flag.String("pkg", ".", "package pattern passed to go test")
	count := flag.Int("count", 1, "benchmark repetitions (go test -count)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (e.g. 10x, 2s); empty uses the default")
	out := flag.String("out", "", "output file; default BENCH_<date>.json")
	baseline := flag.String("baseline", "", "previous snapshot to diff against")
	flag.Parse()

	// Load the baseline before running (and before writing): the default
	// output path may be the baseline itself when comparing intra-day.
	var base *Snapshot
	if *baseline != "" {
		b, err := load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		base = b
	}

	snap, err := run(*bench, *pkgs, *count, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Results))

	if base != nil {
		diff(base, snap)
	}
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &s, nil
}

func run(bench, pkgs string, count int, benchtime string) (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkgs)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}

	snap := &Snapshot{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     bench,
		Packages:  pkgs,
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		line = strings.TrimSpace(line)
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			snap.CPU = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// Go appends "-<GOMAXPROCS>" to benchmark names when it is > 1;
		// drop exactly that so snapshots diff cleanly across core counts.
		name := strings.TrimSuffix(m[1], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0)))
		r := Result{Name: name}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		snap.Results = append(snap.Results, r)
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q in %q", bench, pkgs)
	}
	return snap, nil
}

func diff(old, cur *Snapshot) {
	oldByName := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	fmt.Printf("\n%-50s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	for _, r := range cur.Results {
		o, ok := oldByName[r.Name]
		if !ok || o.NsPerOp == 0 {
			fmt.Printf("%-50s %14s %14.0f %9s %8dx\n", r.Name, "-", r.NsPerOp, "new", r.AllocsPerOp)
			continue
		}
		delta := 100 * (r.NsPerOp - o.NsPerOp) / o.NsPerOp
		fmt.Printf("%-50s %14.0f %14.0f %+8.1f%% %4d→%-4d\n",
			r.Name, o.NsPerOp, r.NsPerOp, delta, o.AllocsPerOp, r.AllocsPerOp)
	}
}
