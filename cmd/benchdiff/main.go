// Command benchdiff runs the repository benchmarks and records the results
// as a dated JSON snapshot (BENCH_<yyyy-mm-dd>.json by default), seeding
// the performance trajectory the ROADMAP asks for. With -baseline it also
// prints per-benchmark deltas against a previous snapshot, so a PR can
// show its speedup (or catch a regression) with one command:
//
//	go run ./cmd/benchdiff -bench 'Fig6|AblationSimWorkers|TrialLoop'
//	go run ./cmd/benchdiff -baseline BENCH_2026-08-06.json
//
// With -count N each benchmark runs N times and the snapshot keeps the
// fastest repetition (min-of-N; `make bench-snapshot` uses -count 3), so
// recorded baselines are not inflated by scheduler noise.
//
// With -check it becomes the perf gate (`make bench-check`): it finds the
// latest BENCH_*.json in the repository root, reruns that snapshot's own
// benchmark selection, and exits non-zero if any common benchmark regressed
// by more than -max-regress percent ns/op. Flagged benchmarks are rerun up
// to twice and judged on their fastest time, so scheduler noise on a busy
// machine does not fail the gate. No snapshot is written unless -out is
// given explicitly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"gicnet/internal/graph"
)

// Snapshot is the persisted form of one benchmark run.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	// CPUFeatures names the bitset-kernel flavour the run used (avx2, neon,
	// generic); gate mode refuses to compare runs across different flavours
	// — an avx2 baseline would fail every generic machine spuriously.
	CPUFeatures string   `json:"cpu_features,omitempty"`
	Bench       string   `json:"bench_regex"`
	Packages    string   `json:"packages"`
	Results     []Result `json:"results"`
}

// Result is one parsed benchmark line. Extra holds any custom
// b.ReportMetric values by unit (e.g. "nvar/est" from
// BenchmarkTailEstimate), so statistical-efficiency claims snapshot and
// gate the same way timing claims do.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// cpuLine captures the `cpu: ...` header go test prints before results.
var cpuLine = regexp.MustCompile(`^cpu: (.+)$`)

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	pkgs := flag.String("pkg", ".", "package pattern passed to go test")
	count := flag.Int("count", 1, "benchmark repetitions (go test -count)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (e.g. 10x, 2s); empty uses the default")
	out := flag.String("out", "", "output file; default BENCH_<date>.json")
	baseline := flag.String("baseline", "", "previous snapshot to diff against")
	check := flag.Bool("check", false, "gate mode: compare against the latest BENCH_*.json and fail on regression")
	maxRegress := flag.Float64("max-regress", 15, "with -check: max tolerated ns/op regression in percent")
	flag.Parse()

	// Load the baseline before running (and before writing): the default
	// output path may be the baseline itself when comparing intra-day.
	var base *Snapshot
	if *check {
		if *baseline == "" {
			latest, err := latestSnapshot()
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff:", err)
				os.Exit(1)
			}
			*baseline = latest
		}
		fmt.Printf("checking against %s\n", *baseline)
	}
	if *baseline != "" {
		b, err := load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		base = b
	}
	// In gate mode, rerun the baseline's own selection unless overridden.
	if *check && base != nil {
		if *bench == "." && base.Bench != "" {
			*bench = base.Bench
		}
		if *pkgs == "." && base.Packages != "" {
			*pkgs = base.Packages
		}
	}

	snap, err := run(*bench, *pkgs, *count, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	// Never compare measurements across incompatible machines: a baseline
	// recorded under a different architecture or kernel flavour would fail
	// (or pass) every gate for reasons that have nothing to do with the
	// change under review. The intra-run speedup gates below still apply —
	// they re-prove their claims on whatever hardware this is.
	if base != nil && !compatible(base, snap) {
		fmt.Printf("skipping cross-run comparison: baseline %s/%s/%s is not comparable to this machine (%s/%s/%s)\n",
			base.GOOS, base.GOARCH, base.CPUFeatures, snap.GOOS, snap.GOARCH, snap.CPUFeatures)
		base = nil
	}

	// Gate mode is read-only unless an output path was asked for.
	if !*check || *out != "" {
		path := *out
		if path == "" {
			// Never clobber an earlier (possibly committed) snapshot
			// from the same day — suffix b, c, ... like the checked-in
			// history does.
			path = "BENCH_" + snap.Date + ".json"
			for suffix := 'b'; suffix <= 'z'; suffix++ {
				if _, err := os.Stat(path); os.IsNotExist(err) {
					break
				}
				path = "BENCH_" + snap.Date + string(suffix) + ".json"
			}
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Results))
	}

	if base != nil {
		regressed := diff(base, snap, *maxRegress)
		if *check && len(regressed) > 0 {
			// Single runs on a busy 1-core box swing well past the
			// threshold; rerun just the flagged benchmarks and keep
			// the fastest time before declaring a regression.
			regressed = retry(base, regressed, snap, *pkgs, *benchtime, *maxRegress)
		}
		if *check && len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% ns/op: %s\n",
				len(regressed), *maxRegress, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		if *check {
			fmt.Printf("bench-check passed: no benchmark regressed more than %.0f%% ns/op\n", *maxRegress)
		}
	}
	if *check {
		if failed := checkSpeedups(snap, *pkgs, *benchtime); len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: speedup gate failed: %s\n", strings.Join(failed, "; "))
			os.Exit(1)
		}
		if failed := checkMetrics(snap); len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: metric gate failed: %s\n", strings.Join(failed, "; "))
			os.Exit(1)
		}
		if failed := checkThroughput(snap, *pkgs, *benchtime); len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: throughput gate failed: %s\n", strings.Join(failed, "; "))
			os.Exit(1)
		}
	}
}

// speedupGates are performance claims the gate re-proves on every run, not
// just guards against regression: Fast must beat Slow by at least MinRatio
// in the fresh measurements. Both names must appear in the run's selection
// for a gate to apply.
var speedupGates = []struct {
	Fast, Slow string
	MinRatio   float64
}{
	// The offline-connectivity claim (DESIGN.md "Core contraction"): the
	// contracted country trial loop is at least 2x faster than the direct
	// full-graph engine at low-probability sweep points.
	{"BenchmarkTrialLoopConnectivity/contracted", "BenchmarkTrialLoopConnectivity/direct", 2},
	// The batched-kernel claim (DESIGN.md "Batched kernels and CPU
	// dispatch"): block evaluation beats the per-trial scalar evaluate by
	// at least 2x at the paper's high-probability sweep points (p >= 0.1),
	// where the per-trial incidence walk used to dominate.
	{"BenchmarkTrialLoopHighP/evaluate-batched", "BenchmarkTrialLoopHighP/evaluate-scalar", 2},
	// The cross-layer block-scoring claim (DESIGN.md "Cross-layer impact
	// scoring"): at the sweep's low-probability points the forest-sweep
	// block scorer beats the scalar union-find reference by at least 2x
	// per trial.
	{"BenchmarkCrosslayerTrialLoop/batched", "BenchmarkCrosslayerTrialLoop/scalar", 2},
}

// metricGates are statistical-efficiency claims proved from custom
// benchmark metrics: the High benchmark's Unit value must exceed the Low
// benchmark's by at least MinRatio. Unlike the timing gates these need no
// noise-filtering rerun — the gated metrics are functions of fixed seeds,
// so the measured values are deterministic. Both names must appear in the
// run's selection (with the metric present) for a gate to apply.
var metricGates = []struct {
	High, Low string
	Unit      string
	MinRatio  float64
}{
	// The rare-event variance-reduction claim (DESIGN.md "Rare-event
	// estimation"): at p=1e-4 and equal trial count, the tilted QMC
	// estimator cuts the replicate variance of the tail estimate by at
	// least 10x versus plain Monte Carlo.
	{"BenchmarkTailEstimate/plain", "BenchmarkTailEstimate/is-qmc", "nvar/est", 10},
}

// throughputGates are serving-performance claims proved from custom
// timing metrics (b.ReportMetric units): the High benchmark's Unit value
// must be at least MinRatio times the Low benchmark's. Unlike
// metricGates these are wall-clock measurements, so a failing gate
// reruns both sides once and keeps each side's best observation — max
// for rate units ("…/s"), min for latency units — before declaring
// failure, mirroring retry's min-of-N noise filtering.
var throughputGates = []struct {
	High, Low string
	Unit      string
	MinRatio  float64
}{
	// The serving-tier claim (DESIGN.md "Serving architecture"): on the
	// example-workload mix, the fully tiered server sustains at least 3x
	// the no-cache baseline's request rate...
	{"BenchmarkServeMix/full", "BenchmarkServeMix/nocache", "req/s", 3},
	// ...without giving back tail latency: the baseline's p99 is at
	// least as large as the tiered server's.
	{"BenchmarkServeMix/nocache", "BenchmarkServeMix/full", "p99-ns", 1},
}

// betterThroughput reports whether a is a better observation than b for
// the given metric unit: higher for rates, lower for latencies.
func betterThroughput(unit string, a, b float64) bool {
	if strings.HasSuffix(unit, "/s") {
		return a > b
	}
	return a < b
}

// checkThroughput verifies every applicable throughput gate, with the
// one-rerun noise filter described on throughputGates.
func checkThroughput(snap *Snapshot, pkgs, benchtime string) []string {
	byName := make(map[string]map[string]float64, len(snap.Results))
	for _, r := range snap.Results {
		byName[r.Name] = r.Extra
	}
	var failed []string
	for _, g := range throughputGates {
		high, okH := byName[g.High][g.Unit]
		low, okL := byName[g.Low][g.Unit]
		if !okH || !okL {
			continue
		}
		if low <= 0 || high < g.MinRatio*low {
			fmt.Printf("rerunning %s and %s to confirm %s shortfall\n", g.High, g.Low, g.Unit)
			for _, name := range []string{g.High, g.Low} {
				rerun, err := run(anchored(name), pkgs, 1, benchtime)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchdiff: rerun:", err)
					continue
				}
				for _, r := range rerun.Results {
					v, ok := r.Extra[g.Unit]
					if !ok {
						continue
					}
					if r.Name == g.High && betterThroughput(g.Unit, v, high) {
						high = v
					}
					if r.Name == g.Low && betterThroughput(g.Unit, v, low) {
						low = v
					}
				}
			}
		}
		if low <= 0 || high < g.MinRatio*low {
			failed = append(failed, fmt.Sprintf("%s %s (%.4g) is only %.2fx %s's (%.4g), want >=%.0fx",
				g.High, g.Unit, high, high/low, g.Low, low, g.MinRatio))
			continue
		}
		fmt.Printf("throughput gate passed: %s %s is %.1fx %s's (want >=%.0fx)\n",
			g.High, g.Unit, high/low, g.Low, g.MinRatio)
	}
	return failed
}

// checkMetrics verifies every applicable metric gate against the fresh
// measurements.
func checkMetrics(snap *Snapshot) []string {
	byName := make(map[string]map[string]float64, len(snap.Results))
	for _, r := range snap.Results {
		byName[r.Name] = r.Extra
	}
	var failed []string
	for _, g := range metricGates {
		high, okH := byName[g.High][g.Unit]
		low, okL := byName[g.Low][g.Unit]
		if !okH || !okL {
			continue
		}
		if low <= 0 || high < g.MinRatio*low {
			failed = append(failed, fmt.Sprintf("%s %s (%.4g) is only %.2fx %s's (%.4g), want >=%.0fx",
				g.High, g.Unit, high, high/low, g.Low, low, g.MinRatio))
			continue
		}
		fmt.Printf("metric gate passed: %s %s is %.1fx %s's (want >=%.0fx)\n",
			g.High, g.Unit, high/low, g.Low, g.MinRatio)
	}
	return failed
}

// compatible reports whether two snapshots were measured on comparable
// machines: same OS, architecture, and bitset-kernel flavour. An empty
// baseline flavour (snapshots predating the field) is unknown rather than
// known-incompatible, so those still compare.
func compatible(base, cur *Snapshot) bool {
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH {
		return false
	}
	return base.CPUFeatures == "" || base.CPUFeatures == cur.CPUFeatures
}

// checkSpeedups verifies every applicable speedup gate, rerunning both
// sides of a failing pair once (keeping each side's fastest time) before
// declaring failure, mirroring the noise handling of retry.
func checkSpeedups(snap *Snapshot, pkgs, benchtime string) []string {
	byName := make(map[string]float64, len(snap.Results))
	for _, r := range snap.Results {
		byName[r.Name] = r.NsPerOp
	}
	var failed []string
	for _, g := range speedupGates {
		fast, okF := byName[g.Fast]
		slow, okS := byName[g.Slow]
		if !okF || !okS {
			continue
		}
		if fast*g.MinRatio > slow {
			fmt.Printf("rerunning %s and %s to confirm speedup shortfall\n", g.Fast, g.Slow)
			// go test splits -bench on "/" before matching, so the two
			// sub-benchmarks cannot share one alternation; rerun each side
			// with its own anchored selector.
			for _, name := range []string{g.Fast, g.Slow} {
				rerun, err := run(anchored(name), pkgs, 1, benchtime)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchdiff: rerun:", err)
					continue
				}
				for _, r := range rerun.Results {
					if r.Name == g.Fast && r.NsPerOp < fast {
						fast = r.NsPerOp
					}
					if r.Name == g.Slow && r.NsPerOp < slow {
						slow = r.NsPerOp
					}
				}
			}
		}
		if fast*g.MinRatio > slow {
			failed = append(failed, fmt.Sprintf("%s is only %.2fx faster than %s (want >=%.0fx)",
				g.Fast, slow/fast, g.Slow, g.MinRatio))
			continue
		}
		fmt.Printf("speedup gate passed: %s is %.1fx faster than %s (want >=%.0fx)\n",
			g.Fast, slow/fast, g.Slow, g.MinRatio)
	}
	return failed
}

// latestSnapshot picks the newest BENCH_*.json in the repository root by
// lexicographic filename order, which matches chronological order for the
// BENCH_<yyyy-mm-dd>[suffix].json naming scheme.
func latestSnapshot() (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json snapshot found; record one with `go run ./cmd/benchdiff` first")
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &s, nil
}

func run(bench, pkgs string, count int, benchtime string) (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkgs)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}

	snap := &Snapshot{
		Date:        time.Now().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUFeatures: graph.CPUFeatures(),
		Bench:       bench,
		Packages:    pkgs,
	}
	seen := make(map[string]int)
	for _, line := range strings.Split(string(outBytes), "\n") {
		line = strings.TrimSpace(line)
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			snap.CPU = m[1]
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		// With -count > 1 each benchmark emits one line per repetition;
		// keep the fastest. Min-of-N is the stable statistic here: noise
		// from a shared machine only ever adds time. Custom metrics ride
		// along with the fastest repetition: seed-deterministic metrics
		// agree on every repetition, and for timing-derived ones (req/s,
		// p99-ns) the fastest repetition is the min-of-N analogue.
		if i, ok := seen[r.Name]; ok {
			if r.NsPerOp < snap.Results[i].NsPerOp {
				snap.Results[i] = r
			}
			continue
		}
		seen[r.Name] = len(snap.Results)
		snap.Results = append(snap.Results, r)
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q in %q", bench, pkgs)
	}
	return snap, nil
}

// parseBenchLine parses one `go test -bench` result line of the form
// `BenchmarkName-8  123  456.7 ns/op  89 B/op  1 allocs/op`, where any
// number of custom `<value> <unit>` metric pairs (from b.ReportMetric) may
// appear among the standard columns. The GOMAXPROCS suffix is stripped so
// snapshots diff cleanly across core counts, while sub-benchmark names
// like `workers-4` survive intact.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
		Iterations: iters,
	}
	sawNsPerOp := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			sawNsPerOp = true
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = val
		}
	}
	return r, sawNsPerOp
}

// retry reruns each flagged benchmark up to two more times, keeping the
// fastest observed ns/op (min-of-N filters scheduler noise; a genuine
// regression stays slow on every run), and returns the benchmarks that
// still exceed maxRegress against the baseline.
func retry(base *Snapshot, names []string, cur *Snapshot, pkgs, benchtime string, maxRegress float64) []string {
	oldByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		oldByName[r.Name] = r
	}
	best := make(map[string]float64, len(names))
	for _, r := range cur.Results {
		best[r.Name] = r.NsPerOp
	}
	for attempt := 1; attempt <= 2 && len(names) > 0; attempt++ {
		var still []string
		for _, name := range names {
			fmt.Printf("rerunning %s to confirm regression (attempt %d/2)\n", name, attempt)
			snap, err := run(anchored(name), pkgs, 1, benchtime)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff: rerun:", err)
				still = append(still, name)
				continue
			}
			for _, r := range snap.Results {
				if r.Name == name && r.NsPerOp < best[name] {
					best[name] = r.NsPerOp
				}
			}
			o := oldByName[name]
			if delta := 100 * (best[name] - o.NsPerOp) / o.NsPerOp; delta > maxRegress {
				still = append(still, name)
			} else {
				fmt.Printf("%s: best of reruns %.0f ns/op (%+.1f%%), within threshold\n",
					name, best[name], delta)
			}
		}
		names = still
	}
	return names
}

// anchored turns a benchmark name (possibly with sub-benchmark path
// segments) into the exact-match regex form go test -bench expects:
// each slash-separated segment anchored with ^$.
func anchored(name string) string {
	parts := strings.Split(name, "/")
	for i, p := range parts {
		parts[i] = "^" + regexp.QuoteMeta(p) + "$"
	}
	return strings.Join(parts, "/")
}

// diff prints the comparison table and returns the names of benchmarks
// whose ns/op regressed by more than maxRegress percent.
func diff(old, cur *Snapshot, maxRegress float64) []string {
	oldByName := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	var regressed []string
	fmt.Printf("\n%-50s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	for _, r := range cur.Results {
		o, ok := oldByName[r.Name]
		if !ok || o.NsPerOp == 0 {
			fmt.Printf("%-50s %14s %14.0f %9s %8dx\n", r.Name, "-", r.NsPerOp, "new", r.AllocsPerOp)
			continue
		}
		delta := 100 * (r.NsPerOp - o.NsPerOp) / o.NsPerOp
		flag := ""
		if delta > maxRegress {
			regressed = append(regressed, r.Name)
			flag = "  REGRESSED"
		}
		fmt.Printf("%-50s %14.0f %14.0f %+8.1f%% %4d→%-4d%s\n",
			r.Name, o.NsPerOp, r.NsPerOp, delta, o.AllocsPerOp, r.AllocsPerOp, flag)
	}
	return regressed
}
