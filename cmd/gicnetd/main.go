// Command gicnetd is the long-running scenario-serving daemon: it pins a
// fleet of worlds (a generator-seed sensitivity grid), shards them
// across executor pools with tiered caching, singleflight dedup and
// cross-request sweep batching (internal/serve), and answers scenario
// requests over HTTP.
//
// Usage:
//
//	gicnetd -addr :8459 -worlds 1859,1921,1989 -shards 4 -workers 2
//
// Endpoints:
//
//	POST /scenario  — body: a serve.Request JSON object; response: the
//	                  serve.Response, including the deterministic replay
//	                  fingerprint and provenance tag
//	GET  /stats     — per-shard tier counters and contraction stats
//	GET  /healthz   — liveness, pinned world count
//
// Example request:
//
//	curl -s localhost:8459/scenario -d '{"network":"submarine",
//	  "model":"uniform","p":0.1,"spacing_km":100,"trials":1024,"seed":7}'
//
// Every response's "fingerprint" equals the offline run of the echoed
// canonical request (sim.Run with the same configuration), whatever mix
// of cache, dedup and batching served it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gicnet/internal/dataset"
	"gicnet/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gicnetd: ")

	addr := flag.String("addr", ":8459", "listen address")
	worlds := flag.String("worlds", strconv.FormatUint(dataset.DefaultSeed, 10),
		"comma-separated generator seeds to pin as the world fleet")
	shards := flag.Int("shards", 4, "shard count (each (world,network) pair is owned by one shard)")
	workers := flag.Int("workers", 2, "executor goroutines per shard, one arena each")
	resultCap := flag.Int("result-cache-cap", 4096, "result-tier entries per shard")
	planCap := flag.Int("plan-cache-cap", 64, "plan-tier entries per shard")
	maxTrials := flag.Int("max-trials", 1<<20, "reject requests above this trial budget")
	baseline := flag.Bool("baseline", false, "serve without any tiers (pricing mode)")
	flag.Parse()

	seeds, err := parseSeeds(*worlds)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pinning %d world(s): %v", len(seeds), seeds)
	srv, err := serve.New(serve.Config{
		WorldSeeds:      seeds,
		Shards:          *shards,
		WorkersPerShard: *workers,
		ResultCacheCap:  *resultCap,
		PlanCacheCap:    *planCap,
		MaxTrials:       *maxTrials,
		Baseline:        *baseline,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/scenario", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a serve.Request JSON object", http.StatusMethodNotAllowed)
			return
		}
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := srv.Do(r.Context(), req)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, serve.ErrServerClosed) {
				status = http.StatusServiceUnavailable
			} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusRequestTimeout
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"ok": true, "worlds": len(srv.WorldSeeds())})
	})

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("got %v, shutting down", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func parseSeeds(s string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		seed, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad world seed %q: %w", part, err)
		}
		seeds = append(seeds, seed)
	}
	if len(seeds) == 0 {
		return nil, errors.New("no world seeds given")
	}
	return seeds, nil
}
