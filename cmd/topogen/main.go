// Command topogen generates the synthetic world and exports its datasets.
//
// Usage:
//
//	topogen -seed 1859 -dir out/          # write all datasets
//	topogen -net submarine -json -        # one network as JSON to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"gicnet/internal/dataset"
	"gicnet/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")

	seed := flag.Uint64("seed", dataset.DefaultSeed, "world seed")
	dir := flag.String("dir", "", "directory to write every dataset into")
	netName := flag.String("net", "", "single network to export (submarine|intertubes|itu)")
	jsonOut := flag.String("json", "", "write the -net network as JSON to this file ('-' = stdout)")
	csvOut := flag.String("csv", "", "write the -net network endpoints as CSV to this file ('-' = stdout)")
	flag.Parse()

	world, err := dataset.GenerateWorld(dataset.DefaultWorldConfig(), *seed)
	if err != nil {
		log.Fatal(err)
	}

	pick := func(name string) *topology.Network {
		switch name {
		case "submarine":
			return world.Submarine
		case "intertubes":
			return world.Intertubes
		case "itu":
			return world.ITU
		default:
			log.Fatalf("unknown network %q (submarine|intertubes|itu)", name)
			return nil
		}
	}

	openOut := func(path string) (io.WriteCloser, error) {
		if path == "-" {
			return nopCloser{os.Stdout}, nil
		}
		return os.Create(path)
	}

	if *netName != "" {
		net := pick(*netName)
		if *jsonOut != "" {
			w, err := openOut(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := dataset.WriteNetworkJSON(w, net); err != nil {
				log.Fatal(err)
			}
			closeOrDie(w)
		}
		if *csvOut != "" {
			w, err := openOut(*csvOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := dataset.WriteEndpointsCSV(w, net); err != nil {
				log.Fatal(err)
			}
			closeOrDie(w)
		}
		if *jsonOut == "" && *csvOut == "" {
			log.Fatal("-net requires -json and/or -csv")
		}
		return
	}

	if *dir == "" {
		log.Fatal("nothing to do: pass -dir or -net")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, net := range world.Networks() {
		path := filepath.Join(*dir, net.Name+".json")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := dataset.WriteNetworkJSON(f, net); err != nil {
			log.Fatal(err)
		}
		closeOrDie(f)
		log.Printf("wrote %s (%d nodes, %d cables)", path, len(net.Nodes), len(net.Cables))
	}
	sitesets := map[string][]dataset.Site{
		"ixps.csv":          world.IXPs,
		"google-dcs.csv":    world.GoogleDCs,
		"facebook-dcs.csv":  world.FacebookDCs,
		"dns-instances.csv": flattenRoots(world),
	}
	for name, sites := range sitesets {
		path := filepath.Join(*dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := dataset.WriteSitesCSV(f, sites); err != nil {
			log.Fatal(err)
		}
		closeOrDie(f)
		log.Printf("wrote %s (%d sites)", path, len(sites))
	}
	fmt.Println("done")
}

func flattenRoots(w *dataset.World) []dataset.Site {
	var out []dataset.Site
	for _, l := range w.DNSRoots {
		out = append(out, l.Instances...)
	}
	return out
}

func closeOrDie(c io.Closer) {
	if err := c.Close(); err != nil {
		log.Fatal(err)
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
