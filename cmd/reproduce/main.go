// Command reproduce regenerates every table and figure of the paper's
// evaluation from the synthetic world and writes them as text tables and
// series.
//
// Usage:
//
//	reproduce [-trials N] [-seed S] [-workers W] [-only fig3,fig8,...] [-out FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")

	trials := flag.Int("trials", 10, "Monte Carlo trials per point (paper: 10)")
	seed := flag.Uint64("seed", dataset.DefaultSeed, "simulation seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated experiment ids (fig3,fig4a,fig4b,fig5,fig67,fig8,fig9,country,systems,ext-traffic,ext-recovery,ext-resilience,ext-grid,ext-solar,ext-scenario,ext-tail,crosslayer); empty = all")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	enabled := func(id string) bool { return len(want) == 0 || want[id] }

	start := time.Now()
	world, err := dataset.Default()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("world generated in %v", time.Since(start).Round(time.Millisecond))

	cfg := experiments.Config{Trials: *trials, Seed: *seed, Workers: *workers}
	ctx := context.Background()

	run := func(id string, f func() error) {
		if !enabled(id) {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		log.Printf("%s done in %v", id, time.Since(t0).Round(time.Millisecond))
		fmt.Fprintln(w)
	}

	run("fig3", func() error {
		r, err := experiments.Fig3(world)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("fig4a", func() error {
		r, err := experiments.Fig4a(world)
		if err != nil {
			return err
		}
		return r.Render(w, "Figure 4a: cable endpoints above |latitude| thresholds (%)")
	})
	run("fig4b", func() error {
		r, err := experiments.Fig4b(world)
		if err != nil {
			return err
		}
		return r.Render(w, "Figure 4b: other infrastructure above |latitude| thresholds (%)")
	})
	run("fig5", func() error {
		r, err := experiments.Fig5(world)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("fig67", func() error {
		r, err := experiments.Fig67(ctx, world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("fig8", func() error {
		r, err := experiments.Fig8(ctx, world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("fig9", func() error {
		r, err := experiments.Fig9(world)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("country", func() error {
		r, err := experiments.Countries(ctx, world, cfg, experiments.DefaultCountryCases())
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("systems", func() error {
		r, err := experiments.Systems(world)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-traffic", func() error {
		r, err := experiments.ExtTraffic(world)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-recovery", func() error {
		r, err := experiments.ExtRecovery(world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-resilience", func() error {
		r, err := experiments.ExtResilience(world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-grid", func() error {
		r, err := experiments.ExtGrid(world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-solar", func() error {
		r, err := experiments.ExtSolar()
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-banding", func() error {
		r, err := experiments.ExtBanding(ctx, world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-scenario", func() error {
		r, err := experiments.ExtScenario(world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("ext-tail", func() error {
		r, err := experiments.ExtTail(ctx, world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	run("crosslayer", func() error {
		r, err := experiments.CrossLayer(ctx, world, cfg)
		if err != nil {
			return err
		}
		return r.Render(w)
	})
	log.Printf("all experiments done in %v", time.Since(start).Round(time.Millisecond))
}
