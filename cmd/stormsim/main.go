// Command stormsim runs Monte Carlo failure simulations over the synthetic
// world with a configurable failure model.
//
// Usage:
//
//	stormsim -net submarine -model s1 -spacing 150 -trials 100
//	stormsim -net all -model uniform -p 0.01
//	stormsim -net submarine -model storm:carrington-1859
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/gic"
	"gicnet/internal/report"
	"gicnet/internal/sim"
	"gicnet/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stormsim: ")

	netName := flag.String("net", "submarine", "network (submarine|intertubes|itu|all)")
	modelName := flag.String("model", "s1", "failure model (s1|s2|uniform|storm:<name>)")
	p := flag.Float64("p", 0.01, "repeater failure probability for -model uniform")
	spacing := flag.Float64("spacing", 150, "inter-repeater distance, km")
	trials := flag.Int("trials", 10, "Monte Carlo trials")
	seed := flag.Uint64("seed", dataset.DefaultSeed, "simulation seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	world, err := dataset.Default()
	if err != nil {
		log.Fatal(err)
	}

	model, err := resolveModel(*modelName, *p)
	if err != nil {
		log.Fatal(err)
	}

	var nets []*topology.Network
	switch *netName {
	case "all":
		nets = world.Networks()
	case "submarine":
		nets = []*topology.Network{world.Submarine}
	case "intertubes":
		nets = []*topology.Network{world.Intertubes}
	case "itu":
		nets = []*topology.Network{world.ITU}
	default:
		log.Fatalf("unknown network %q", *netName)
	}

	t := report.NewTable(
		fmt.Sprintf("stormsim: model=%s spacing=%.0fkm trials=%d seed=%d", model.Name(), *spacing, *trials, *seed),
		"network", "cables-failed%", "sd", "nodes-unreachable%", "sd")
	for _, net := range nets {
		res, err := sim.Run(context.Background(), net, sim.Config{
			Model:     model,
			SpacingKm: *spacing,
			Trials:    *trials,
			Seed:      *seed,
			Workers:   *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(net.Name,
			fmt.Sprintf("%.2f", 100*res.CableFrac.Mean()),
			fmt.Sprintf("%.2f", 100*res.CableFrac.StdDev()),
			fmt.Sprintf("%.2f", 100*res.NodeFrac.Mean()),
			fmt.Sprintf("%.2f", 100*res.NodeFrac.StdDev()))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func resolveModel(name string, p float64) (failure.Model, error) {
	switch {
	case name == "s1":
		return failure.S1(), nil
	case name == "s2":
		return failure.S2(), nil
	case name == "uniform":
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("probability %v out of [0,1]", p)
		}
		return failure.Uniform{P: p}, nil
	case strings.HasPrefix(name, "storm:"):
		want := strings.TrimPrefix(name, "storm:")
		for _, s := range gic.Scenarios() {
			if s.Name == want {
				return failure.FromStorm(s, gic.DefaultSubmarineConductor(), gic.DefaultRepeaterTolerance())
			}
		}
		return nil, fmt.Errorf("unknown storm %q (try carrington-1859, new-york-railroad-1921, quebec-1989, moderate)", want)
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
