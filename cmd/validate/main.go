// Command validate runs the statistical verification subsystem end to end:
// golden-figure regression against the checked-in snapshot, the model
// invariant suite, and the deterministic-replay proof. It exits non-zero
// if any layer fails, so it can gate CI and `make verify`.
//
// Usage:
//
//	validate [-update] [-golden FILE] [-only golden,invariants,replay]
//	         [-trials N] [-seed S] [-workers W] [-rel R] [-abs A] [-max-diffs N]
//
// -update recaptures the snapshot and rewrites the golden file instead of
// checking; commit the diff after reviewing that every changed number is
// explained by the change you made.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")

	update := flag.Bool("update", false, "rewrite the golden snapshot instead of checking it")
	goldenPath := flag.String("golden", verify.DefaultGoldenPath, "golden snapshot file")
	only := flag.String("only", "", "comma-separated layers (golden,invariants,replay); empty = all")
	trials := flag.Int("trials", 10, "Monte Carlo trials per point (must match the golden)")
	seed := flag.Uint64("seed", dataset.DefaultSeed, "simulation seed (must match the golden)")
	workers := flag.Int("workers", 0, "worker budget for the capture run (0 = GOMAXPROCS)")
	rel := flag.Float64("rel", verify.DefaultTolerance().Rel, "relative tolerance for golden numbers")
	abs := flag.Float64("abs", verify.DefaultTolerance().Abs, "absolute tolerance for golden numbers")
	maxDiffs := flag.Int("max-diffs", 25, "mismatches to print before truncating")
	flag.Parse()

	want := map[string]bool{}
	for _, layer := range strings.Split(*only, ",") {
		if layer = strings.TrimSpace(layer); layer != "" {
			want[layer] = true
		}
	}
	enabled := func(layer string) bool { return len(want) == 0 || want[layer] }

	ctx := context.Background()
	start := time.Now()
	world, err := dataset.Default()
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Workers: *workers}
	failed := false

	if *update {
		snap, err := verify.Capture(ctx, world, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := verify.WriteGolden(*goldenPath, snap); err != nil {
			log.Fatal(err)
		}
		log.Printf("golden updated: %s (seed=%d trials=%d) in %v",
			*goldenPath, cfg.Seed, cfg.Trials, time.Since(start).Round(time.Millisecond))
		return
	}

	if enabled("golden") {
		t0 := time.Now()
		golden, err := verify.LoadGolden(*goldenPath)
		if err != nil {
			log.Fatal(err)
		}
		if golden.Seed != cfg.Seed || golden.Trials != cfg.Trials {
			log.Fatalf("golden was captured with seed=%d trials=%d, run requests seed=%d trials=%d",
				golden.Seed, golden.Trials, cfg.Seed, cfg.Trials)
		}
		snap, err := verify.Capture(ctx, world, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mismatches, err := verify.DiffSnapshots(snap, golden, verify.Tolerance{Rel: *rel, Abs: *abs})
		if err != nil {
			log.Fatal(err)
		}
		if len(mismatches) == 0 {
			log.Printf("PASS golden: snapshot matches %s within rel=%g abs=%g (%v)",
				*goldenPath, *rel, *abs, time.Since(t0).Round(time.Millisecond))
		} else {
			failed = true
			log.Printf("FAIL golden: %d mismatches vs %s", len(mismatches), *goldenPath)
			for i, m := range mismatches {
				if i >= *maxDiffs {
					log.Printf("  ... and %d more (raise -max-diffs to see them)", len(mismatches)-i)
					break
				}
				log.Printf("  %s", m)
			}
			log.Printf("  (if every change above is intended, rerun with -update and commit the new golden)")
		}
	}

	report := func(layer string, results []verify.Result, elapsed time.Duration) {
		bad := verify.Failed(results)
		if len(bad) == 0 {
			log.Printf("PASS %s: %d checks (%v)", layer, len(results), elapsed.Round(time.Millisecond))
		} else {
			failed = true
			log.Printf("FAIL %s: %d of %d checks failed", layer, len(bad), len(results))
		}
		for _, r := range results {
			status := "ok"
			if !r.Passed {
				status = "FAIL"
			}
			log.Printf("  [%s] %s: %s", status, r.Name, r.Detail)
		}
	}

	if enabled("invariants") {
		t0 := time.Now()
		report("invariants", verify.Invariants(world, cfg.Seed), time.Since(t0))
	}
	if enabled("replay") {
		t0 := time.Now()
		report("replay", verify.Replay(ctx, world, cfg), time.Since(t0))
	}

	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
	if failed {
		fmt.Fprintln(os.Stderr, "validate: FAILED")
		os.Exit(1)
	}
}
