// Package gicnet analyses the resilience of Internet infrastructure
// against solar superstorms — a faithful, self-contained reproduction of
// "Solar Superstorms: Planning for an Internet Apocalypse" (SIGCOMM 2021).
//
// The library bundles:
//
//   - calibrated synthetic stand-ins for the paper's datasets (submarine
//     cable map, US long-haul fiber, ITU land fiber, router/AS catalog,
//     IXPs, DNS roots, hyperscaler data centers, gridded population);
//   - the paper's repeater failure model family (uniform, latitude-tiered
//     S1/S2) plus a physically derived GIC dose-response model;
//   - a deterministic parallel Monte Carlo engine;
//   - analyses for every figure and table in the paper's evaluation; and
//   - the §5 extensions: shutdown planning, satellite exposure, partition
//     bridging and power-grid coupling.
//
// # Quick start
//
//	world, err := gicnet.DefaultWorld()
//	if err != nil { ... }
//	res, err := gicnet.Simulate(ctx, world.Submarine, gicnet.SimConfig{
//		Model: gicnet.S1(), SpacingKm: 150, Trials: 10, Seed: 1859,
//	})
//	fmt.Printf("cables failed: %.1f%%\n", 100*res.CableFrac.Mean())
//
// Everything is deterministic: the same seed reproduces the same world and
// the same simulation outcomes regardless of parallelism.
package gicnet

import (
	"context"

	"gicnet/internal/asn"
	"gicnet/internal/core"
	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/failure"
	"gicnet/internal/gic"
	"gicnet/internal/infra"
	"gicnet/internal/partition"
	"gicnet/internal/recovery"
	"gicnet/internal/resilience"
	"gicnet/internal/routing"
	"gicnet/internal/satellite"
	"gicnet/internal/scenario"
	"gicnet/internal/shutdown"
	"gicnet/internal/sim"
	"gicnet/internal/solar"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Re-exported core types. The aliases form the public API surface; the
// internal packages stay free to grow without breaking importers.
type (
	// World bundles every dataset the analyses consume.
	World = dataset.World
	// WorldConfig tunes the dataset generators.
	WorldConfig = dataset.WorldConfig
	// Network is a cable network (submarine, US land, ITU land).
	Network = topology.Network
	// Cable is one multi-segment cable system.
	Cable = topology.Cable
	// Node is a landing point or fiber endpoint.
	Node = topology.Node

	// FailureModel assigns per-repeater failure probabilities.
	FailureModel = failure.Model
	// Uniform is the paper's uniform-probability model (Figs 6-7).
	Uniform = failure.Uniform
	// LatitudeTiered is the paper's banded model (Fig 8).
	LatitudeTiered = failure.LatitudeTiered
	// Outcome is one realisation's failure summary.
	Outcome = failure.Outcome

	// SimConfig configures a Monte Carlo run.
	SimConfig = sim.Config
	// SimResult aggregates a run's outcomes.
	SimResult = sim.Result

	// Storm is a CME scenario.
	Storm = gic.Storm

	// Analyzer runs country-scale and systems analyses.
	Analyzer = core.Analyzer
	// Target selects node sets ("us", "region:europe", "city:shanghai").
	Target = core.Target

	// ShutdownPlan is a pre-impact power-down schedule (§5.2).
	ShutdownPlan = shutdown.Plan
	// ShutdownOptions tunes the planner.
	ShutdownOptions = shutdown.Options

	// Constellation is a LEO shell (§3.3).
	Constellation = satellite.Constellation
	// SatelliteExposure summarises storm impact on a constellation.
	SatelliteExposure = satellite.Exposure

	// Fragmentation summarises post-storm partitioning (§5.3).
	Fragmentation = partition.Fragmentation
	// BridgeCandidate is a proposed low-latitude cable (§5.1).
	BridgeCandidate = partition.Candidate

	// ASSummary is the Figure 9 analysis.
	ASSummary = asn.Summary
	// InfraReport is the §4.4 systems analysis.
	InfraReport = infra.Report

	// ExperimentConfig parameterises paper-figure reproduction.
	ExperimentConfig = experiments.Config

	// TrafficDemand is one region-to-region traffic entry (§5.5).
	TrafficDemand = routing.Demand
	// TrafficReport is the result of routing demands over the network.
	TrafficReport = routing.Report
	// LoadShift describes a cable whose load grew after failures.
	LoadShift = routing.Shift

	// RepairFault is one damaged cable awaiting a ship (§3.2.2).
	RepairFault = recovery.Fault
	// RepairShip is one cable vessel.
	RepairShip = recovery.Ship
	// RepairSchedule is a full recovery plan.
	RepairSchedule = recovery.Schedule

	// ServicePlacement is a set of replica locations for resilience
	// testing (§5.4).
	ServicePlacement = resilience.Placement
	// ResilienceResult is a placement's storm availability.
	ResilienceResult = resilience.Result

	// SolarRisk bounds the probability of a Carrington-scale event (§2).
	SolarRisk = solar.RiskEstimate

	// ScenarioConfig configures an end-to-end storm timeline.
	ScenarioConfig = scenario.Config
	// ScenarioReport is the integrated outcome of one storm scenario.
	ScenarioReport = scenario.Report
)

// DefaultSeed is the canonical world seed (1859, the Carrington year).
const DefaultSeed = dataset.DefaultSeed

// DefaultWorld returns the canonical calibrated world, generated once per
// process and cached. Treat it as read-only.
func DefaultWorld() (*World, error) { return dataset.Default() }

// NewWorld generates a private world from a seed with default calibration.
func NewWorld(seed uint64) (*World, error) {
	return dataset.GenerateWorld(dataset.DefaultWorldConfig(), seed)
}

// NewWorldWithConfig generates a world with custom generator settings.
func NewWorldWithConfig(cfg WorldConfig, seed uint64) (*World, error) {
	return dataset.GenerateWorld(cfg, seed)
}

// DefaultWorldConfig returns the calibrated generator settings.
func DefaultWorldConfig() WorldConfig { return dataset.DefaultWorldConfig() }

// S1 returns the paper's high-failure latitude-tiered model: per-repeater
// probabilities [1, 0.1, 0.01] for bands (>60, 40-60, <40).
func S1() LatitudeTiered { return failure.S1() }

// S2 returns the paper's low-failure model: [0.1, 0.01, 0.001].
func S2() LatitudeTiered { return failure.S2() }

// StormModel derives a latitude-tiered model from a physical storm
// scenario via the GIC dose-response chain.
func StormModel(s Storm) (LatitudeTiered, error) {
	return failure.FromStorm(s, gic.DefaultSubmarineConductor(), gic.DefaultRepeaterTolerance())
}

// ScaledModel multiplies a model's per-repeater probabilities by factor
// (clamped to [0,1]) for sensitivity sweeps.
func ScaledModel(base FailureModel, factor float64) FailureModel {
	return failure.Scaled{Base: base, Factor: factor}
}

// OverlayModels combines two independent failure sources: a repeater
// survives only if it survives both.
func OverlayModels(a, b FailureModel) FailureModel { return failure.Overlay{A: a, B: b} }

// WorstOfModels takes the pointwise maximum of two models — a conservative
// envelope across model uncertainty.
func WorstOfModels(a, b FailureModel) FailureModel { return failure.Worst{A: a, B: b} }

// Storm scenarios, strongest first.
var (
	Carrington      = gic.Carrington
	NewYorkRailroad = gic.NewYorkRailroad
	Quebec          = gic.Quebec
	ModerateStorm   = gic.Moderate
)

// Simulate runs a Monte Carlo failure simulation on a network.
func Simulate(ctx context.Context, net *Network, cfg SimConfig) (*SimResult, error) {
	return sim.Run(ctx, net, cfg)
}

// NewAnalyzer wraps a world for country-scale analyses.
func NewAnalyzer(w *World) (*Analyzer, error) { return core.NewAnalyzer(w) }

// PlanShutdown builds a §5.2 pre-impact shutdown schedule for a forecast
// storm.
func PlanShutdown(net *Network, s Storm, opts ShutdownOptions) (*ShutdownPlan, error) {
	return shutdown.PlanShutdown(net, s, opts)
}

// DefaultShutdownOptions returns the planner defaults.
func DefaultShutdownOptions() ShutdownOptions { return shutdown.DefaultOptions() }

// Starlink returns a first-shell Starlink-like constellation.
func Starlink() Constellation { return satellite.Starlink() }

// AssessConstellation computes a constellation's storm exposure (§3.3).
func AssessConstellation(c Constellation, s Storm) (*SatelliteExposure, error) {
	return satellite.Assess(c, s)
}

// AnalyzeASes runs the Figure 9 AS analysis.
func AnalyzeASes(w *World) (*ASSummary, error) { return asn.Analyze(w.Routers) }

// AnalyzeSystems runs the §4.4 infrastructure analysis.
func AnalyzeSystems(w *World) (*InfraReport, error) { return infra.BuildReport(w) }

// RecommendBridges proposes low-latitude cables that improve probeA-probeB
// survivability under the model (§5.1).
func RecommendBridges(w *World, m FailureModel, spacingKm float64, trials int, seed uint64, n int, probeA, probeB string) ([]BridgeCandidate, error) {
	return partition.Recommend(w, m, spacingKm, trials, seed, n, probeA, probeB)
}

// DefaultTrafficDemands returns the synthetic inter-region traffic matrix.
func DefaultTrafficDemands() []TrafficDemand { return routing.DefaultDemands() }

// RouteTraffic routes demands over the network; cableDead may be nil for
// the intact network (§5.5 load-shift analysis).
func RouteTraffic(net *Network, demands []TrafficDemand, cableDead []bool) (*TrafficReport, error) {
	return routing.Route(net, demands, cableDead)
}

// CompareTrafficLoads lists cables whose load grew between two routings.
func CompareTrafficLoads(net *Network, before, after *TrafficReport) ([]LoadShift, error) {
	return routing.CompareLoads(net, before, after)
}

// SampleStorm draws one cable-death realisation: a vector with true for
// every cable killed by the model at the given spacing.
func SampleStorm(net *Network, m FailureModel, spacingKm float64, seed uint64) ([]bool, error) {
	return failure.SampleCableDeaths(net, m, spacingKm, xrand.New(seed))
}

// SampleFaults converts a cable-death realisation into repair faults.
func SampleFaults(net *Network, cableDead []bool, spacingKm, severity float64, seed uint64) ([]RepairFault, error) {
	return recovery.FaultsFrom(net, cableDead, spacingKm, severity, xrand.New(seed))
}

// PlanRecovery schedules the cable-ship fleet over the faults (§3.2.2).
func PlanRecovery(net *Network, faults []RepairFault, fleet []RepairShip) (*RepairSchedule, error) {
	return recovery.PlanRecovery(net, faults, fleet, recovery.DefaultOptions())
}

// DefaultRepairFleet returns a representative global cable-ship fleet.
func DefaultRepairFleet() []RepairShip { return recovery.DefaultFleet() }

// EvaluatePlacement runs the §5.4 standardised storm test on a service
// placement.
func EvaluatePlacement(w *World, p ServicePlacement, m FailureModel, spacingKm float64, trials int, seed uint64) (*ResilienceResult, error) {
	return resilience.Evaluate(w, p, m, spacingKm, trials, seed)
}

// GooglePlacement and FacebookPlacement wrap the embedded hyperscaler
// site lists for resilience testing.
func GooglePlacement() ServicePlacement   { return resilience.GooglePlacement() }
func FacebookPlacement() ServicePlacement { return resilience.FacebookPlacement() }

// RunScenario executes a full storm timeline — shutdown planning, impact,
// grid cascade, partitioning, traffic shift, satellite exposure, repair
// campaign — and returns the integrated report.
func RunScenario(w *World, cfg ScenarioConfig) (*ScenarioReport, error) {
	return scenario.Run(w, cfg)
}

// DefaultScenarioConfig returns a full-stack Carrington run.
func DefaultScenarioConfig() ScenarioConfig { return scenario.DefaultConfig() }

// BaselineSolarRisk returns the paper's cited Carrington-scale probability
// estimates (§2.3).
func BaselineSolarRisk() SolarRisk { return solar.BaselineRisk() }

// StormWindowProbability converts a per-decade probability into the
// probability of at least one event within the window.
func StormWindowProbability(perDecade, years float64) (float64, error) {
	return solar.WindowProbability(perDecade, years)
}
