# Build / verify targets. `make verify` is the PR gate: tier-1 build+test
# plus static vetting and a race-detector pass over the concurrent engine
# (the sim worker pool, parallel sweeps, and the failure plan layer).

GO ?= go

.PHONY: all build test vet race verify bench bench-snapshot

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The simulation engine and failure plans run concurrently (worker pools,
# parallel sweeps, shared sync.Once topology caches) — race-check them on
# every PR.
race:
	$(GO) test -race ./internal/sim/... ./internal/failure/... ./internal/topology/... ./internal/graph/...

verify: vet test race

# Quick hot-path benchmarks with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'Fig6CableFailures|CountryConnectivity|AblationSimWorkers|TrialLoop|PlanCompile' -benchmem .

# Dated JSON snapshot of the full benchmark suite (see cmd/benchdiff).
bench-snapshot:
	$(GO) run ./cmd/benchdiff -bench '.' -pkg .
