# Build / verify targets. `make verify` is the PR gate: tier-1 build+test
# plus static vetting, the repo-native lint pass (determinism, hot-path
# allocation discipline, float-comparison hygiene, must-check errors — see
# internal/lint), a race-detector pass over the concurrent engine (the sim
# worker pool, parallel sweeps, the failure plan layer, and the shared
# contraction state in partition/experiments), the statistical verification
# suite (golden regression + model invariants + deterministic replay), and
# a short fuzz smoke over the IO parser and plan compiler.

GO ?= go
FUZZTIME ?= 5s

.PHONY: all build test vet lint race verify validate update-golden fuzz-smoke loadtest-smoke crosscompile bench bench-snapshot bench-check

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-native static analysis: cmd/gicnetlint runs the determinism,
# crossdet, concheck, purecheck, hotpath, floatcmp, and errcheck analyzers
# over every package in the module — twice, because the purego build swaps
# the assembly kernel dispatch files for pure-Go variants that must satisfy
# the same contracts. Use `go run ./cmd/gicnetlint -json` for
# machine-readable diagnostics, and `-changed` to lint only the packages
# that differ from the lint-baseline.json snapshot while iterating.
lint:
	$(GO) run ./cmd/gicnetlint -root .
	$(GO) run ./cmd/gicnetlint -root . -tags purego

# The simulation engine and failure plans run concurrently (worker pools,
# parallel sweeps, shared sync.Once topology caches), and partition and
# experiments share immutable contraction state across workers — race-check
# all of them on every PR.
race:
	$(GO) test -race ./internal/sim/... ./internal/failure/... ./internal/topology/... ./internal/graph/... ./internal/partition/... ./internal/experiments/... ./internal/serve/... ./internal/crosslayer/...

verify: vet lint test race validate loadtest-smoke fuzz-smoke crosscompile

# Serving smoke: drive the example-workload mix through a fully tiered
# server and a no-tier baseline and require identical order-independent
# answer fingerprints (caching/dedup/batching change no answer), plus
# live tier traffic. See internal/serve/loadtest.
loadtest-smoke:
	$(GO) test -run '^TestSmoke$$' -count 1 ./internal/serve/loadtest

# Cross-compile gate: the bitset kernels ship three build variants (AVX2
# amd64 assembly, NEON arm64 assembly, pure-Go fallback); all of them must
# always compile, whatever machine the PR was written on.
crosscompile:
	GOARCH=amd64 $(GO) build ./...
	GOARCH=arm64 $(GO) build ./...
	$(GO) build -tags purego ./...
	$(GO) vet -tags purego ./internal/graph

# Statistical verification: diff every reproduce output against the
# checked-in golden snapshot, check model invariants, and prove replay
# is byte-identical across worker counts (see internal/verify).
validate:
	$(GO) run ./cmd/validate

# Recapture the golden snapshot after an intended model change. Review
# the resulting diff of internal/verify/goldens/reproduce.json before
# committing it — every changed number is a deliberate output change.
update-golden:
	$(GO) run ./cmd/validate -update

# Short fuzz runs over the network-JSON parser, the failure-plan compiler,
# the core-contraction connectivity engine, and the bitset kernel
# primitives (assembly vs reference semantics); each also replays its
# checked-in seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadNetworkJSON$$' -fuzztime $(FUZZTIME) ./internal/dataset
	$(GO) test -run '^$$' -fuzz '^FuzzPlanCompile$$' -fuzztime $(FUZZTIME) ./internal/failure
	$(GO) test -run '^$$' -fuzz '^FuzzTiltedSampler$$' -fuzztime $(FUZZTIME) ./internal/failure
	$(GO) test -run '^$$' -fuzz '^FuzzSobol$$' -fuzztime $(FUZZTIME) ./internal/rare
	$(GO) test -run '^$$' -fuzz '^FuzzCoreContraction$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzBitsetKernels$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzCableASAdjacency$$' -fuzztime $(FUZZTIME) ./internal/crosslayer
	$(GO) test -run '^$$' -fuzz '^FuzzAnnotationComments$$' -fuzztime $(FUZZTIME) ./internal/lint

# Quick hot-path benchmarks with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'Fig6CableFailures|CountryConnectivity|AblationSimWorkers|TrialLoop|PlanCompile|SampleSparse|BitsetEvaluate|BitsetKernels|Crosslayer' -benchmem .

# Dated JSON snapshot of the full benchmark suite (see cmd/benchdiff).
bench-snapshot:
	$(GO) run ./cmd/benchdiff -bench '.' -pkg . -count 3

# Perf gate: rerun the latest BENCH_*.json snapshot's benchmark selection
# and fail if any common benchmark regressed more than 15% ns/op, or if the
# contracted connectivity trial loop falls below 2x over the direct engine
# (the speedup gates hardcoded in cmd/benchdiff).
bench-check:
	$(GO) run ./cmd/benchdiff -check
