package gicnet

import (
	"math"
	"testing"
)

func TestFacadeTrafficChain(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	demands := DefaultTrafficDemands()
	if len(demands) == 0 {
		t.Fatal("no demands")
	}
	before, err := RouteTraffic(w.Submarine, demands, nil)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := SampleStorm(w.Submarine, S1(), 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	after, err := RouteTraffic(w.Submarine, demands, dead)
	if err != nil {
		t.Fatal(err)
	}
	if after.StrandedFrac() < before.StrandedFrac() {
		t.Error("storm reduced stranded demand")
	}
	if _, err := CompareTrafficLoads(w.Submarine, before, after); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRecoveryChain(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	dead, err := SampleStorm(w.Submarine, S2(), 150, 6)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := SampleFaults(w.Submarine, dead, 150, 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) == 0 {
		t.Skip("lucky storm: no faults")
	}
	sched, err := PlanRecovery(w.Submarine, faults, DefaultRepairFleet())
	if err != nil {
		t.Fatal(err)
	}
	if sched.MakespanDays <= 0 {
		t.Error("zero makespan")
	}
}

func TestFacadePlacementEvaluation(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	g, err := EvaluatePlacement(w, GooglePlacement(), S1(), 150, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := EvaluatePlacement(w, FacebookPlacement(), S1(), 150, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Availability.Mean() < f.Availability.Mean() {
		t.Errorf("google %v below facebook %v", g.Availability.Mean(), f.Availability.Mean())
	}
}

func TestFacadeSolarRisk(t *testing.T) {
	r := BaselineSolarRisk()
	if r.PerDecadeBernoulli != 0.09 {
		t.Errorf("bernoulli = %v", r.PerDecadeBernoulli)
	}
	p, err := StormWindowProbability(0.09, 10)
	if err != nil || math.Abs(p-0.09) > 1e-9 {
		t.Errorf("window probability = %v, %v", p, err)
	}
	if _, err := StormWindowProbability(2, 10); err == nil {
		t.Error("want probability error")
	}
}

func TestFacadeScenario(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultScenarioConfig()
	cfg.Seed = 8
	rep, err := RunScenario(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CablesDead == 0 || rep.Recovery == nil {
		t.Error("scenario incomplete")
	}
}
