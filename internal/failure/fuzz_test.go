package failure

import (
	"fmt"
	"math"
	"testing"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// fuzzNetwork deterministically grows a random network from a seed: up to
// 32 nodes and 48 cables with random (possibly zero-length, possibly
// multi-segment) geometry. Every generated network passes Validate.
func fuzzNetwork(seed uint64, nodes, cables int) *topology.Network {
	rng := xrand.New(seed)
	if nodes < 2 {
		nodes = 2
	}
	if nodes > 32 {
		nodes = 32
	}
	if cables < 0 {
		cables = 0
	}
	if cables > 48 {
		cables = 48
	}
	net := &topology.Network{Name: fmt.Sprintf("fuzz-%d", seed)}
	for i := 0; i < nodes; i++ {
		net.Nodes = append(net.Nodes, topology.Node{
			Name:     fmt.Sprintf("n%d", i),
			Coord:    geo.Coord{Lat: rng.Range(-90, 90), Lon: rng.Range(-180, 180)},
			HasCoord: rng.Bool(0.8),
		})
	}
	for c := 0; c < cables; c++ {
		cable := topology.Cable{Name: fmt.Sprintf("c%d", c), KnownLength: rng.Bool(0.9)}
		segments := 1 + rng.Intn(3)
		for s := 0; s < segments; s++ {
			cable.Segments = append(cable.Segments, topology.Segment{
				A:        rng.Intn(nodes),
				B:        rng.Intn(nodes),
				LengthKm: rng.Range(0, 30000),
			})
		}
		net.Cables = append(net.Cables, cable)
	}
	return net
}

// FuzzPlanCompile drives Plan compilation over random networks, spacings
// and model probabilities. Properties: Compile on a valid network and
// positive spacing always succeeds and yields a plan that (a) passes
// Validate, (b) samples bit-identically to the uncompiled path, and
// (c) evaluates to the same outcome as the uncompiled path.
func FuzzPlanCompile(f *testing.F) {
	f.Add(uint64(1), 5, 8, 150.0, 0.01)
	f.Add(uint64(1859), 32, 48, 50.0, 0.999)
	f.Add(uint64(7), 2, 0, 100.0, 0.0) // no cables at all
	f.Add(uint64(9), 3, 4, 0.0, 0.5)   // invalid spacing
	f.Add(uint64(11), 4, 4, -20.0, 1.0)
	f.Add(uint64(13), 30, 40, 1e-9, 0.25) // pathological spacing: huge repeater counts

	f.Fuzz(func(t *testing.T, seed uint64, nodes, cables int, spacing, p float64) {
		net := fuzzNetwork(seed, nodes, cables)
		if err := net.Validate(); err != nil {
			t.Fatalf("fuzz generator produced invalid network: %v", err)
		}
		if math.IsNaN(p) || p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		model := Uniform{P: p}

		plan, err := Compile(net, model, spacing)
		if spacing <= 0 || math.IsNaN(spacing) {
			if err == nil {
				t.Fatalf("Compile accepted spacing %v", spacing)
			}
			return
		}
		if err != nil {
			t.Fatalf("Compile(%d nodes, %d cables, spacing %v): %v",
				len(net.Nodes), len(net.Cables), spacing, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("compiled plan invalid: %v", err)
		}
		for ci, prob := range plan.DeathProbs() {
			want, err := CableDeathProb(net, model, spacing, ci)
			if err != nil {
				t.Fatal(err)
			}
			if prob != want {
				t.Fatalf("cable %d: plan prob %v != direct prob %v", ci, prob, want)
			}
		}
		// Same seed, both sampling paths: identical masks and outcomes.
		// The dense sampler is the draw-for-draw twin of the uncompiled
		// path; the sparse sampler draws differently but its realisations
		// must evaluate identically through both evaluators.
		rngPlan := xrand.New(seed ^ 0xf)
		rngDirect := xrand.New(seed ^ 0xf)
		dead := plan.NewDead()
		plan.SampleDense(dead, rngPlan)
		direct, err := SampleCableDeaths(net, model, spacing, rngDirect)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range direct {
			if dead.Get(ci) != direct[ci] {
				t.Fatalf("cable %d: plan sampling disagrees with direct sampling", ci)
			}
		}
		po, fo := plan.Evaluate(dead), Evaluate(net, direct)
		if po != fo {
			t.Fatalf("plan outcome %+v != direct outcome %+v", po, fo)
		}
		if po.CableFrac < 0 || po.CableFrac > 1 || po.NodeFrac < 0 || po.NodeFrac > 1 {
			t.Fatalf("outcome fractions out of range: %+v", po)
		}
		rngSparse := xrand.New(seed ^ 0x5a)
		plan.SampleInto(dead, rngSparse)
		bools := make([]bool, plan.NumCables())
		dead.Expand(bools)
		if po, fo := plan.Evaluate(dead), Evaluate(net, bools); po != fo {
			t.Fatalf("sparse realisation: plan outcome %+v != direct outcome %+v", po, fo)
		}
	})
}
