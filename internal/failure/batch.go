package failure

import (
	"math/bits"

	"gicnet/internal/graph"
	"gicnet/internal/xrand"
)

// Trial-block sampling and evaluation. SampleInto/Evaluate score one trial
// at a time: at high failure probabilities the evaluate walk re-chases the
// same incidence CSR for every trial, loading each node's word masks once
// per trial. The block path amortises that walk: it draws up to MaxBatch
// trials into row-major dead masks, transposes each 64-cable word group
// into per-cable trial columns (bit b of cols[ci] = cable ci dead in trial
// b), and then answers "all incident cables dead?" for every vulnerable
// node across the whole block with one AND-chain over its cables' columns
// — the incidence structure is loaded once per block instead of once per
// trial.
//
// Determinism contract: trial ti always samples from root.SplitAt(ti), the
// exact per-trial stream the scalar loop uses, and both evaluation
// strategies compute the same counts, so every replay fingerprint and
// golden figure is bit-identical to the scalar path regardless of block
// boundaries or strategy choice.

// MaxBatch is the trial-block width: one machine word of trials, so a
// block's per-cable dead/alive column is exactly one uint64.
const MaxBatch = 64

// BatchScratch is the per-worker storage for trial blocks: MaxBatch
// row-major dead masks plus the column-major (bitsliced) view the block
// evaluator transposes them into. The zero value is ready for Grow.
type BatchScratch struct {
	words int          // words per trial row
	masks graph.Bitset // MaxBatch rows, row b at [b*words, (b+1)*words)
	cols  []uint64     // per-cable trial columns, indexed by cable
}

// Grow sizes the scratch for p, reusing backing arrays when large enough.
// Call once per (worker, plan) before the block loop; the hot calls below
// never allocate.
func (s *BatchScratch) Grow(p *Plan) {
	w := graph.BitsetWords(p.NumCables())
	s.words = w
	if cap(s.masks) < MaxBatch*w {
		s.masks = make(graph.Bitset, MaxBatch*w)
	}
	s.masks = s.masks[:MaxBatch*w]
	if cap(s.cols) < w*64 {
		s.cols = make([]uint64, w*64)
	}
	s.cols = s.cols[:w*64]
}

// Row returns trial b's dead-cable bitset within the block.
//
//gicnet:hotpath
func (s *BatchScratch) Row(b int) graph.Bitset {
	return s.masks[b*s.words : (b+1)*s.words]
}

// SampleBatch draws trials t0..t0+n-1 into the scratch rows, one
// realisation per row. Each trial uses the stream root.SplitAt(t0+b) — the
// same per-trial seeding as the scalar loop — so the drawn realisations do
// not depend on how trials are grouped into blocks or spread over workers.
// n must be at most MaxBatch.
//
//gicnet:hotpath
func (p *Plan) SampleBatch(s *BatchScratch, root *xrand.Source, t0 uint64, n int) {
	for b := 0; b < n; b++ {
		rng := root.SplitAt(t0 + uint64(b))
		p.SampleInto(s.Row(b), &rng)
	}
}

// EvaluateBatch scores the first n scratch rows into out[:n], producing
// exactly Evaluate(row) for each — same counts, same float divisions. Per-
// row failed-cable counts come from the vectorised popcount; for the
// unreachable-node count it picks between two exact-equivalent strategies
// by block density: near-empty blocks walk each row's few dead cables
// through the scalar incidence walk, denser blocks transpose into cable
// columns and AND-chain each vulnerable node's columns once for all n
// trials at once.
//
//gicnet:hotpath
func (p *Plan) EvaluateBatch(s *BatchScratch, n int, out []Outcome) {
	totalFailed := 0
	for b := 0; b < n; b++ {
		f := graph.PopcountWords(s.Row(b))
		out[b] = Outcome{CablesFailed: f}
		totalFailed += f
	}
	// Strategy break-even: the scalar walk costs a CSR visit per dead
	// cable, the column path a fixed transpose per word group plus one
	// column load per (vulnerable node, incident cable) pair. Both compute
	// identical counts, so this choice affects speed only — it must merely
	// be deterministic, and it is: block content alone decides.
	if totalFailed*12 >= s.words*256+len(p.inc.NodeCables) {
		p.unreachableColumns(s, n, out)
	} else {
		for b := 0; b < n; b++ {
			out[b].NodesUnreachable = p.unreachableScalar(s.Row(b))
		}
	}
	for b := 0; b < n; b++ {
		out[b] = p.finishOutcome(out[b].CablesFailed, out[b].NodesUnreachable)
	}
}

// unreachableColumns is the dense block strategy: bitslice the block into
// per-cable trial columns, then for each vulnerable node AND its incident
// cables' columns — the surviving bits are exactly the trials in which
// every incident cable died. Nodes touching an immortal cable are
// prefiltered (their column AND is identically zero), and each vulnerable
// node is visited exactly once, so the counts match the scalar walk's
// visit-once-from-lowest-dead-cable accounting bit for bit.
//
//gicnet:hotpath
func (p *Plan) unreachableColumns(s *BatchScratch, n int, out []Outcome) {
	words := s.words
	var tmp [64]uint64
	for wi := 0; wi < words; wi++ {
		for b := 0; b < n; b++ {
			tmp[b] = s.masks[b*words+wi]
		}
		for b := n; b < MaxBatch; b++ {
			tmp[b] = 0 // absent trials contribute no dead cables
		}
		graph.Transpose64(&tmp)
		copy(s.cols[wi<<6:(wi+1)<<6], tmp[:])
	}
	inc := p.inc
	cols := s.cols
	for _, ni := range p.vulnNodes {
		lo, hi := inc.NodeCableStart[ni], inc.NodeCableStart[ni+1]
		m := cols[inc.NodeCables[lo]]
		for k := lo + 1; k < hi && m != 0; k++ {
			m &= cols[inc.NodeCables[k]]
		}
		for ; m != 0; m &= m - 1 {
			out[bits.TrailingZeros64(m)].NodesUnreachable++
		}
	}
}
