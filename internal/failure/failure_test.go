package failure

import (
	"math"
	"testing"
	"testing/quick"

	"gicnet/internal/geo"
	"gicnet/internal/gic"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// net returns a three-cable network spanning the three latitude bands:
// c0 high (oslo 69.6N), c1 mid (nyc 40.7N), c2 low (singapore 1.3N), plus
// a repeater-free short cable c3.
func net() *topology.Network {
	return &topology.Network{
		Name: "bands",
		Nodes: []topology.Node{
			{Name: "tromso", Coord: geo.Coord{Lat: 69.6, Lon: 18.9}, HasCoord: true, Country: "no"},
			{Name: "london", Coord: geo.Coord{Lat: 51.5, Lon: -0.1}, HasCoord: true, Country: "gb"},
			{Name: "nyc", Coord: geo.Coord{Lat: 40.7, Lon: -74.0}, HasCoord: true, Country: "us"},
			{Name: "miami", Coord: geo.Coord{Lat: 25.8, Lon: -80.2}, HasCoord: true, Country: "us"},
			{Name: "singapore", Coord: geo.Coord{Lat: 1.35, Lon: 103.8}, HasCoord: true, Country: "sg"},
			{Name: "jakarta", Coord: geo.Coord{Lat: -6.2, Lon: 106.8}, HasCoord: true, Country: "id"},
		},
		Cables: []topology.Cable{
			{Name: "c0-high", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 2000}}, KnownLength: true},
			{Name: "c1-mid", Segments: []topology.Segment{{A: 2, B: 3, LengthKm: 1800}}, KnownLength: true},
			{Name: "c2-low", Segments: []topology.Segment{{A: 4, B: 5, LengthKm: 900}}, KnownLength: true},
			{Name: "c3-short", Segments: []topology.Segment{{A: 3, B: 2, LengthKm: 100}}, KnownLength: true},
		},
	}
}

func TestUniformModel(t *testing.T) {
	m := Uniform{P: 0.25}
	n := net()
	if got := m.RepeaterProb(n, 0); got != 0.25 {
		t.Errorf("RepeaterProb = %v", got)
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestLatitudeTieredBands(t *testing.T) {
	n := net()
	s1 := S1()
	if got := s1.RepeaterProb(n, 0); got != 1 {
		t.Errorf("high-band cable prob = %v, want 1", got)
	}
	if got := s1.RepeaterProb(n, 1); got != 0.1 {
		t.Errorf("mid-band cable prob = %v, want 0.1", got)
	}
	if got := s1.RepeaterProb(n, 2); got != 0.01 {
		t.Errorf("low-band cable prob = %v, want 0.01", got)
	}
	s2 := S2()
	if got := s2.RepeaterProb(n, 0); got != 0.1 {
		t.Errorf("S2 high = %v", got)
	}
	if got := s2.RepeaterProb(n, 2); got != 0.001 {
		t.Errorf("S2 low = %v", got)
	}
}

func TestLatitudeTieredHighestEndpointRule(t *testing.T) {
	// Cable from tromso (69.6N) to jakarta (6.2S): highest endpoint is
	// high band, so the whole cable gets the high-band probability.
	n := net()
	n.Cables = append(n.Cables, topology.Cable{
		Name:     "polar-equator",
		Segments: []topology.Segment{{A: 0, B: 5, LengthKm: 12000}},
	})
	if got := S1().RepeaterProb(n, len(n.Cables)-1); got != 1 {
		t.Errorf("highest-endpoint rule broken: %v", got)
	}
}

func TestLatitudeTieredNoCoordsFallsBackLow(t *testing.T) {
	n := net()
	for i := range n.Nodes {
		n.Nodes[i].HasCoord = false
	}
	if got := S1().RepeaterProb(n, 0); got != 0.01 {
		t.Errorf("coordinate-free fallback = %v, want low-band 0.01", got)
	}
}

func TestPathTieredStricterThanEndpoint(t *testing.T) {
	// Seattle-ish to London: endpoints both mid-band, but the great
	// circle crosses 60N, so path banding applies the high-band rate.
	n := &topology.Network{
		Name: "arc",
		Nodes: []topology.Node{
			{Name: "seattle", Coord: geo.Coord{Lat: 47.6, Lon: -122.3}, HasCoord: true},
			{Name: "london", Coord: geo.Coord{Lat: 51.5, Lon: -0.1}, HasCoord: true},
		},
		Cables: []topology.Cable{
			{Name: "arc", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 7700}}},
		},
	}
	endpoint := S1().RepeaterProb(n, 0)
	path := S1Path().RepeaterProb(n, 0)
	if endpoint != 0.1 {
		t.Errorf("endpoint banding = %v, want mid-band 0.1", endpoint)
	}
	if path != 1 {
		t.Errorf("path banding = %v, want high-band 1", path)
	}
}

func TestPathTieredNeverBelowEndpoint(t *testing.T) {
	// Path max latitude >= endpoint max latitude, so path-banded
	// probabilities dominate endpoint-banded ones cable by cable.
	n := net()
	for ci := range n.Cables {
		e := S1().RepeaterProb(n, ci)
		p := S1Path().RepeaterProb(n, ci)
		if p < e {
			t.Errorf("cable %d: path prob %v below endpoint prob %v", ci, p, e)
		}
	}
}

func TestPathTieredNoCoords(t *testing.T) {
	n := net()
	for i := range n.Nodes {
		n.Nodes[i].HasCoord = false
	}
	if got := S1Path().RepeaterProb(n, 0); got != 0.01 {
		t.Errorf("coordinate-free fallback = %v", got)
	}
	if S1Path().Name() != "S1-path" {
		t.Errorf("name = %q", S1Path().Name())
	}
	anon := PathTiered{Probs: S1().Probs}
	if anon.Name() == "" {
		t.Error("anonymous name empty")
	}
}

func TestTieredNames(t *testing.T) {
	if S1().Name() != "S1(high)" || S2().Name() != "S2(low)" {
		t.Error("unexpected S1/S2 names")
	}
	anon := LatitudeTiered{Probs: [geo.NumBands]float64{0.1, 0.2, 0.3}}
	if anon.Name() == "" {
		t.Error("anonymous tiered model needs a synthesized name")
	}
}

func TestFromStorm(t *testing.T) {
	m, err := FromStorm(gic.Carrington, gic.DefaultSubmarineConductor(), gic.DefaultRepeaterTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if m.Probs[geo.BandHigh] <= m.Probs[geo.BandLow] {
		t.Error("storm-derived model must be ordered by band")
	}
	if m.Name() != "storm:carrington-1859" {
		t.Errorf("name = %q", m.Name())
	}
	if _, err := FromStorm(gic.Carrington, gic.Conductor{}, gic.DefaultRepeaterTolerance()); err == nil {
		t.Error("bad conductor should error")
	}
}

func TestFuncModel(t *testing.T) {
	m := Func{Label: "custom", F: func(_ *topology.Network, ci int) float64 { return float64(ci) / 10 }}
	if m.Name() != "custom" || m.RepeaterProb(net(), 3) != 0.3 {
		t.Error("Func adapter broken")
	}
}

func TestCableDeathProb(t *testing.T) {
	n := net()
	// c0: 2000km at 150km spacing -> 13 repeaters
	p, err := CableDeathProb(n, Uniform{P: 0.1}, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.9, 13)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("death prob = %v, want %v", p, want)
	}
	// repeater-free cable never dies
	p, _ = CableDeathProb(n, Uniform{P: 1}, 150, 3)
	if p != 0 {
		t.Errorf("repeater-free cable death prob = %v", p)
	}
	// certain repeater failure kills any repeatered cable
	p, _ = CableDeathProb(n, Uniform{P: 1}, 150, 0)
	if p != 1 {
		t.Errorf("p=1 cable death prob = %v", p)
	}
	// zero probability
	p, _ = CableDeathProb(n, Uniform{P: 0}, 150, 0)
	if p != 0 {
		t.Errorf("p=0 cable death prob = %v", p)
	}
	if _, err := CableDeathProb(n, Uniform{P: 0.5}, 0, 0); err == nil {
		t.Error("want spacing error")
	}
}

func TestCableDeathProbMonotoneInRepeaterCount(t *testing.T) {
	f := func(pSeed float64, lenSeed float64) bool {
		if math.IsNaN(pSeed) || math.IsNaN(lenSeed) {
			return true
		}
		p := math.Mod(math.Abs(pSeed), 1)
		length := 100 + math.Mod(math.Abs(lenSeed), 30000)
		n := &topology.Network{
			Name: "m",
			Nodes: []topology.Node{
				{Name: "a"}, {Name: "b"},
			},
			Cables: []topology.Cable{
				{Name: "short", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: length}}},
				{Name: "long", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: length * 2}}},
			},
		}
		ps, err1 := CableDeathProb(n, Uniform{P: p}, 150, 0)
		pl, err2 := CableDeathProb(n, Uniform{P: p}, 150, 1)
		return err1 == nil && err2 == nil && pl >= ps-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleCableDeathsFrequency(t *testing.T) {
	n := net()
	rng := xrand.New(7)
	const trials = 20000
	deaths := 0
	for i := 0; i < trials; i++ {
		dead, err := SampleCableDeaths(n, Uniform{P: 0.05}, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		if dead[0] {
			deaths++
		}
		if dead[3] {
			t.Fatal("repeater-free cable died")
		}
	}
	want, _ := CableDeathProb(n, Uniform{P: 0.05}, 150, 0)
	got := float64(deaths) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical death rate %v, want %v", got, want)
	}
}

func TestSampleCableDeathsSpacingError(t *testing.T) {
	if _, err := SampleCableDeaths(net(), Uniform{P: 0.5}, -1, xrand.New(1)); err == nil {
		t.Error("want spacing error")
	}
}

func TestEvaluate(t *testing.T) {
	n := net()
	// Kill c1 and c3: miami and nyc lose both their cables.
	out := Evaluate(n, []bool{false, true, false, true})
	if out.CablesFailed != 2 {
		t.Errorf("CablesFailed = %d", out.CablesFailed)
	}
	if math.Abs(out.CableFrac-0.5) > 1e-12 {
		t.Errorf("CableFrac = %v", out.CableFrac)
	}
	if out.NodesUnreachable != 2 {
		t.Errorf("NodesUnreachable = %d (nyc+miami)", out.NodesUnreachable)
	}
	if math.Abs(out.NodeFrac-2.0/6.0) > 1e-12 {
		t.Errorf("NodeFrac = %v", out.NodeFrac)
	}
}

func TestEvaluateNothingDead(t *testing.T) {
	n := net()
	out := Evaluate(n, make([]bool, len(n.Cables)))
	if out.CablesFailed != 0 || out.NodesUnreachable != 0 || out.CableFrac != 0 || out.NodeFrac != 0 {
		t.Errorf("clean network outcome = %+v", out)
	}
}

func TestEvaluateEmptyNetwork(t *testing.T) {
	n := &topology.Network{Name: "empty"}
	out := Evaluate(n, nil)
	if out.CableFrac != 0 || out.NodeFrac != 0 {
		t.Errorf("empty network outcome = %+v", out)
	}
}

func TestExpectedCableFrac(t *testing.T) {
	n := net()
	got, err := ExpectedCableFrac(n, Uniform{P: 1}, 150)
	if err != nil {
		t.Fatal(err)
	}
	// 3 of 4 cables have repeaters at 150km
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ExpectedCableFrac = %v, want 0.75", got)
	}
	if _, err := ExpectedCableFrac(n, Uniform{P: 1}, 0); err == nil {
		t.Error("want spacing error")
	}
	empty := &topology.Network{Name: "e"}
	if v, err := ExpectedCableFrac(empty, Uniform{P: 1}, 150); err != nil || v != 0 {
		t.Errorf("empty = %v, %v", v, err)
	}
}

func TestMonteCarloMatchesExpectation(t *testing.T) {
	// The sampled mean cable fraction converges to the analytic mean.
	n := net()
	m := S1()
	rng := xrand.New(99)
	const trials = 5000
	sum := 0.0
	for i := 0; i < trials; i++ {
		dead, err := SampleCableDeaths(n, m, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += Evaluate(n, dead).CableFrac
	}
	want, _ := ExpectedCableFrac(n, m, 150)
	got := sum / trials
	if math.Abs(got-want) > 0.02 {
		t.Errorf("MC mean %v, analytic %v", got, want)
	}
}
