package failure

import (
	"testing"

	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// batchModels covers every sampling-program shape: pure sparse, mixed,
// high-probability dense, certain death, and a per-cable mix that includes
// immortal (p=0) and certain (p=1) cables so vulnerable-node prefiltering
// is exercised.
func batchModels() []Model {
	return []Model{
		Uniform{P: 0.001},
		Uniform{P: 0.01},
		Uniform{P: 0.1},
		Uniform{P: 0.5},
		Uniform{P: 1},
		Func{Label: "mixed", F: func(_ *topology.Network, ci int) float64 {
			switch ci % 4 {
			case 0:
				return 0 // immortal: its endpoints leave vulnNodes
			case 1:
				return 1 // certain: baseDead template
			case 2:
				return 0.3 // dense Bernoulli
			default:
				return 0.02 // sparse bucket
			}
		}},
	}
}

// TestBatchMatchesScalar is the determinism contract test: for every model
// shape and trial-count/block-boundary combination, SampleBatch must
// reproduce the scalar loop's per-trial masks bit for bit and EvaluateBatch
// must reproduce Evaluate's outcomes exactly (including the float
// divisions), regardless of where block boundaries fall.
func TestBatchMatchesScalar(t *testing.T) {
	nets := []*topology.Network{
		fuzzNetwork(3, 32, 48),
		fuzzNetwork(99, 20, 40),
		fuzzNetwork(7, 2, 0), // no cables at all
	}
	trialCounts := []int{1, 3, 10, 63, 64, 65, 130}
	for neti, net := range nets {
		for _, model := range batchModels() {
			plan, err := Compile(net, model, 150)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Validate(); err != nil {
				t.Fatal(err)
			}
			var scratch BatchScratch
			scratch.Grow(plan)
			dead := plan.NewDead()
			out := make([]Outcome, MaxBatch)
			for _, trials := range trialCounts {
				root := *xrand.New(uint64(neti)*1000 + 42)
				// Scalar reference: the exact per-trial loop sim runs.
				want := make([]Outcome, trials)
				masks := make([][]uint64, trials)
				for ti := 0; ti < trials; ti++ {
					rng := root.SplitAt(uint64(ti))
					plan.SampleInto(dead, &rng)
					masks[ti] = append([]uint64(nil), dead...)
					want[ti] = plan.Evaluate(dead)
				}
				for t0 := 0; t0 < trials; t0 += MaxBatch {
					n := trials - t0
					if n > MaxBatch {
						n = MaxBatch
					}
					plan.SampleBatch(&scratch, &root, uint64(t0), n)
					for b := 0; b < n; b++ {
						row := scratch.Row(b)
						for wi := range row {
							if row[wi] != masks[t0+b][wi] {
								t.Fatalf("net %d model %s trial %d: batched mask differs from scalar at word %d",
									neti, plan.ModelName(), t0+b, wi)
							}
						}
					}
					plan.EvaluateBatch(&scratch, n, out)
					for b := 0; b < n; b++ {
						if out[b] != want[t0+b] {
							t.Fatalf("net %d model %s trial %d: batched outcome %+v != scalar %+v",
								neti, plan.ModelName(), t0+b, out[b], want[t0+b])
						}
					}
				}
			}
		}
	}
}

// TestBatchStrategiesAgree forces BOTH evaluation strategies on the same
// blocks — bypassing the density heuristic — and requires identical
// unreachable counts, so the column path's correctness never hides behind
// the strategy switch.
func TestBatchStrategiesAgree(t *testing.T) {
	net := fuzzNetwork(11, 32, 48)
	for _, model := range batchModels() {
		plan, err := Compile(net, model, 150)
		if err != nil {
			t.Fatal(err)
		}
		var scratch BatchScratch
		scratch.Grow(plan)
		for _, n := range []int{1, 17, 64} {
			root := *xrand.New(777)
			plan.SampleBatch(&scratch, &root, 0, n)
			colOut := make([]Outcome, n)
			scalOut := make([]Outcome, n)
			plan.unreachableColumns(&scratch, n, colOut)
			for b := 0; b < n; b++ {
				scalOut[b].NodesUnreachable = plan.unreachableScalar(scratch.Row(b))
			}
			for b := 0; b < n; b++ {
				if colOut[b].NodesUnreachable != scalOut[b].NodesUnreachable {
					t.Fatalf("model %s n=%d trial %d: columns=%d scalar=%d unreachable",
						plan.ModelName(), n, b, colOut[b].NodesUnreachable, scalOut[b].NodesUnreachable)
				}
			}
		}
	}
}

// TestBatchPartialBlockIgnoresStaleRows poisons the scratch rows past n
// with all-ones garbage and checks that evaluating a partial block neither
// reads them into the outcomes nor corrupts the column path.
func TestBatchPartialBlockIgnoresStaleRows(t *testing.T) {
	net := fuzzNetwork(5, 24, 40)
	plan, err := Compile(net, Uniform{P: 0.2}, 150)
	if err != nil {
		t.Fatal(err)
	}
	var scratch BatchScratch
	scratch.Grow(plan)
	const n = 5
	root := *xrand.New(31)
	plan.SampleBatch(&scratch, &root, 0, n)
	want := make([]Outcome, n)
	for b := 0; b < n; b++ {
		want[b] = plan.Evaluate(scratch.Row(b))
	}
	for b := n; b < MaxBatch; b++ {
		row := scratch.Row(b)
		for wi := range row {
			row[wi] = ^uint64(0)
		}
	}
	got := make([]Outcome, n)
	plan.EvaluateBatch(&scratch, n, got)
	colGot := make([]Outcome, n)
	plan.unreachableColumns(&scratch, n, colGot)
	for b := 0; b < n; b++ {
		if got[b] != want[b] {
			t.Fatalf("trial %d: outcome %+v != %+v with poisoned stale rows", b, got[b], want[b])
		}
		if colGot[b].NodesUnreachable != want[b].NodesUnreachable {
			t.Fatalf("trial %d: column path counted %d unreachable, want %d",
				b, colGot[b].NodesUnreachable, want[b].NodesUnreachable)
		}
	}
}

// TestBatchScratchReuse compiles plans of different sizes through one
// scratch, ensuring Grow resizes correctly in both directions.
func TestBatchScratchReuse(t *testing.T) {
	var scratch BatchScratch
	for _, cables := range []int{48, 4, 30} {
		net := fuzzNetwork(uint64(cables), 16, cables)
		plan, err := Compile(net, Uniform{P: 0.3}, 150)
		if err != nil {
			t.Fatal(err)
		}
		scratch.Grow(plan)
		root := *xrand.New(9)
		plan.SampleBatch(&scratch, &root, 0, MaxBatch)
		out := make([]Outcome, MaxBatch)
		plan.EvaluateBatch(&scratch, MaxBatch, out)
		for b := 0; b < MaxBatch; b++ {
			rng := root.SplitAt(uint64(b))
			dead := plan.NewDead()
			plan.SampleInto(dead, &rng)
			if want := plan.Evaluate(dead); out[b] != want {
				t.Fatalf("cables=%d trial %d: %+v != %+v", cables, b, out[b], want)
			}
		}
	}
}
