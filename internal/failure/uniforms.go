package failure

import (
	"math"

	"gicnet/internal/graph"
	"gicnet/internal/xrand"
)

// Uniforms is a deterministic stream of uniform draws in [0,1). It is the
// seam through which the rare-event layer substitutes scrambled
// quasi-Monte Carlo points for pseudo-random draws; *xrand.Source is the
// canonical pseudo-random implementation. A stream must keep producing
// values forever (trials consume a variable number of draws), and two
// streams built from the same inputs must produce the same values — the
// deterministic-replay contract extends through this interface.
type Uniforms interface {
	Float64() float64
}

// sampleIntoU mirrors samplerProgram.sampleInto draw for draw against an
// arbitrary uniform stream: the k-th draw decides exactly what the k-th
// pseudo-random draw would. It is a separate body rather than a shared
// generic so the pseudo-random hot path keeps its devirtualised calls; the
// two loops must evolve together.
func (sp *samplerProgram) sampleIntoU(dead graph.Bitset, u Uniforms) {
	denseProb := sp.denseProb
	for k, ci := range sp.dense {
		if u.Float64() < denseProb[k] {
			dead.Set(int(ci))
		}
	}
	for gi := range sp.groups {
		g := &sp.groups[gi]
		cables := sp.groupCables[g.start:g.end]
		probs := sp.groupProbs[g.start:g.end]
		i := 0
		for {
			v := u.Float64()
			if v <= 0 {
				break // log(0) = -Inf: the skip overshoots any group
			}
			t := math.Log(v) * g.invLogq
			if t >= float64(len(cables)-i) {
				break
			}
			i += int(t)
			if pr := probs[i]; pr >= g.pmax || u.Float64()*g.pmax < pr {
				dead.Set(int(cables[i]))
			}
			i++
		}
	}
}

// SampleIntoU is SampleInto drawing its uniforms from u instead of a
// pseudo-random source. With u = an xrand stream it produces exactly the
// realisation SampleInto would from the same stream; with a scrambled
// quasi-Monte Carlo stream it is the plan half of the QMC estimator.
func (p *Plan) SampleIntoU(dead graph.Bitset, u Uniforms) {
	dead.CopyFrom(p.baseDead)
	p.prog.sampleIntoU(dead, u)
}

// SampleIntoU is TiltedSampler.SampleInto drawing its uniforms from u; it
// returns the trial's log likelihood ratio exactly as SampleInto does.
func (t *TiltedSampler) SampleIntoU(dead graph.Bitset, u Uniforms) float64 {
	dead.CopyFrom(t.plan.baseDead)
	t.prog.sampleIntoU(dead, u)
	return t.LogWeight(dead)
}

// Draws returns a conservative upper bound on how many uniforms one trial
// of the plan's sampling program consumes in expectation: one per dense
// cable plus two per expected sparse-bucket hit plus one terminating draw
// per bucket. QMC streams use it to size the low-discrepancy prefix of a
// trial's draw sequence.
func (p *Plan) Draws() int { return p.prog.expectedDraws() }

// Draws is Plan.Draws for the tilted program.
func (t *TiltedSampler) Draws() int { return t.prog.expectedDraws() }

func (sp *samplerProgram) expectedDraws() int {
	draws := float64(len(sp.dense) + len(sp.groups))
	for gi := range sp.groups {
		g := &sp.groups[gi]
		for _, pr := range sp.groupProbs[g.start:g.end] {
			draws += 2 * pr / g.pmax
		}
	}
	if draws > 1<<20 {
		return 1 << 20
	}
	return int(math.Ceil(draws))
}

// ensure the canonical implementation satisfies the seam.
var _ Uniforms = (*xrand.Source)(nil)
