package failure

import (
	"fmt"
	"math"
	"math/bits"

	"gicnet/internal/graph"
	"gicnet/internal/xrand"
)

// maxTiltedProb caps a tilted probability strictly below 1 so likelihood
// ratios stay finite: a cable with p < 1 must keep positive survival
// probability under the tilted distribution or the estimator loses the
// survival branch's mass. 1 - 2^-40 leaves log(1-q) comfortably
// representable while being indistinguishable from certain death in
// practice.
const maxTiltedProb = 1 - 1.0/(1<<40)

// minTiltedProb floors a tilted probability of a can-die cable away from 0
// for the mirror reason: q = 0 with p > 0 would zero out realisations the
// target distribution can produce, biasing every weighted estimate.
const minTiltedProb = 1e-300

// TiltedSampler draws cable deaths from an exponentially tilted version of
// a compiled Plan and prices each realisation with its exact likelihood
// ratio, which is the importance-sampling primitive behind the rare-event
// estimators in internal/rare.
//
// The tilt is applied per cable in odds space: a cable with death
// probability p gets tilted probability q with q/(1-q) = lambda * p/(1-p),
// i.e. q = lambda*p / (1 + (lambda-1)*p). Odds tilting keeps q inside
// (0,1) for every p in (0,1) and every positive lambda, reduces to q = p
// at lambda = 1, and — because the plan's sampling program is a pure
// function of the probability vector — reuses the same dense/sparse-bucket
// machinery as the untilted path: the tilt really is just a per-bucket
// parameter change.
//
// For a realisation D (the set of dead cables) the likelihood ratio is
//
//	w(D) = prod_{i in D} p_i/q_i * prod_{i not in D} (1-p_i)/(1-q_i)
//
// over cables with 0 < p_i < 1 (cables with p = 0 never die on either
// path; cables with p = 1 always die and contribute a factor of 1).
// LogWeight accumulates it as baseLog + sum over dead cables of a
// precomputed per-cable adjustment, so pricing a trial costs O(words +
// deaths), not O(cables). Under a pure odds tilt every adjustment equals
// -log(lambda), but the sampler prices from the stored per-cable tilted
// probabilities so that the clamps above (and future per-bucket tilts)
// stay exactly priced.
//
// A TiltedSampler is immutable after construction and safe for concurrent
// use by workers holding their own dead bitsets and RNG streams.
type TiltedSampler struct {
	plan    *Plan
	lambda  float64
	baseLog float64   // sum over 0<p<1 cables of log((1-p)/(1-q))
	adj     []float64 // per cable: log(p/q) - log((1-p)/(1-q)); 0 outside (0,1)
	qProb   []float64 // per cable tilted probability (0 and 1 preserved)
	prog    samplerProgram
}

// NewTiltedSampler compiles the odds-tilted sampling program for plan at
// the given tilt factor. lambda must be positive and finite; lambda = 1
// reproduces the plan's own distribution (with every weight exactly 1).
func NewTiltedSampler(plan *Plan, lambda float64) (*TiltedSampler, error) {
	if !(lambda > 0) || math.IsInf(lambda, 1) {
		return nil, fmt.Errorf("failure: tilt factor %v outside (0, +Inf)", lambda)
	}
	t := &TiltedSampler{
		plan:   plan,
		lambda: lambda,
		adj:    make([]float64, len(plan.deathProb)),
		qProb:  make([]float64, len(plan.deathProb)),
	}
	for ci, p := range plan.deathProb {
		switch {
		case p <= 0:
			// never dies under either distribution
		case p >= 1:
			t.qProb[ci] = 1 // always dies; likelihood ratio 1
		default:
			var q float64
			//gicnet:allow floatcmp lambda exactly 1 must reproduce the plan bit for bit
			if lambda == 1 {
				// No tilt: q = p without clamping, so the weights are
				// identically zero in log space and the compiled program
				// is the plan's own.
				q = p
			} else {
				q = lambda * p / (1 + (lambda-1)*p)
				if q > maxTiltedProb {
					q = maxTiltedProb
				}
				if q < minTiltedProb {
					q = minTiltedProb
				}
			}
			t.qProb[ci] = q
			// log((1-p)/(1-q)) via log1p for precision at small p, q.
			survive := math.Log1p(-p) - math.Log1p(-q)
			t.baseLog += survive
			t.adj[ci] = math.Log(p) - math.Log(q) - survive
		}
	}
	t.prog.compile(t.qProb)
	return t, nil
}

// Plan returns the plan whose distribution the sampler tilts.
func (t *TiltedSampler) Plan() *Plan { return t.plan }

// Lambda returns the tilt factor.
func (t *TiltedSampler) Lambda() float64 { return t.lambda }

// TiltedProb returns cable ci's death probability under the tilted
// distribution.
func (t *TiltedSampler) TiltedProb(ci int) float64 { return t.qProb[ci] }

// SampleInto draws one realisation from the tilted distribution into dead
// (sized for the plan's cable count) and returns its log likelihood ratio
// log w = log dP/dQ evaluated at the realisation. exp of the returned
// value reweights any per-trial statistic back to an unbiased estimate
// under the plan's own distribution.
//
//gicnet:hotpath
func (t *TiltedSampler) SampleInto(dead graph.Bitset, rng *xrand.Source) float64 {
	dead.CopyFrom(t.plan.baseDead)
	t.prog.sampleInto(dead, rng)
	return t.LogWeight(dead)
}

// SampleBatch draws trials t0..t0+n-1 into the scratch rows with trial
// t0+b seeded from root.SplitAt(t0+b) — the same per-trial streams as
// Plan.SampleBatch — and writes each trial's log likelihood ratio into
// logw[:n]. n must be at most MaxBatch.
//
//gicnet:hotpath
func (t *TiltedSampler) SampleBatch(s *BatchScratch, root *xrand.Source, t0 uint64, n int, logw []float64) {
	for b := 0; b < n; b++ {
		rng := root.SplitAt(t0 + uint64(b))
		logw[b] = t.SampleInto(s.Row(b), &rng)
	}
}

// LogWeight prices a dead-cable realisation: the log likelihood ratio of
// dead under (plan distribution) / (tilted distribution). dead must be a
// realisation the tilted program can produce (every probability-1 cable
// set); LogWeight itself accepts any bitset and prices the set bits.
//
//gicnet:hotpath
//gicnet:pure
func (t *TiltedSampler) LogWeight(dead graph.Bitset) float64 {
	lw := t.baseLog
	adj := t.adj
	for wi, w := range dead {
		for ; w != 0; w &= w - 1 {
			lw += adj[wi<<6+bits.TrailingZeros64(w)]
		}
	}
	return lw
}

// Validate checks the sampler's internal invariants: tilted probabilities
// share support with the plan's, adjustments are finite, and the compiled
// program covers exactly the cables with tilted probability in (0,1).
func (t *TiltedSampler) Validate() error {
	p := t.plan
	if len(t.qProb) != len(p.deathProb) || len(t.adj) != len(p.deathProb) {
		return fmt.Errorf("failure: tilted sampler sized for %d cables, plan has %d", len(t.qProb), len(p.deathProb))
	}
	if math.IsNaN(t.baseLog) || math.IsInf(t.baseLog, 0) {
		return fmt.Errorf("failure: tilted sampler baseLog %v not finite", t.baseLog)
	}
	for ci, q := range t.qProb {
		prob := p.deathProb[ci]
		if math.IsNaN(q) || q < 0 || q > 1 {
			return fmt.Errorf("failure: tilted probability %v for cable %d outside [0,1]", q, ci)
		}
		if (prob > 0) != (q > 0) || (prob >= 1) != (q >= 1) {
			return fmt.Errorf("failure: tilted probability %v changes support of cable %d (p=%v)", q, ci, prob)
		}
		if math.IsNaN(t.adj[ci]) || math.IsInf(t.adj[ci], 0) {
			return fmt.Errorf("failure: tilt adjustment %v for cable %d not finite", t.adj[ci], ci)
		}
	}
	return nil
}
