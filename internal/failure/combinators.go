package failure

import (
	"fmt"

	"gicnet/internal/topology"
)

// Scaled multiplies a model's per-repeater probabilities by a factor
// (clamped to [0,1]) — the knob for "same storm, harder/softer repeaters"
// sensitivity sweeps.
type Scaled struct {
	Base   Model
	Factor float64
}

// Name implements Model.
func (s Scaled) Name() string { return fmt.Sprintf("%s*%.2f", s.Base.Name(), s.Factor) }

// RepeaterProb implements Model.
func (s Scaled) RepeaterProb(net *topology.Network, ci int) float64 {
	p := s.Base.RepeaterProb(net, ci) * s.Factor
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Overlay combines two independent failure sources: a repeater survives
// only if it survives both (p = 1-(1-a)(1-b)). Use to overlay mundane
// background failures (anchors, fishing) on a storm model.
type Overlay struct {
	A, B Model
}

// Name implements Model.
func (o Overlay) Name() string { return fmt.Sprintf("%s+%s", o.A.Name(), o.B.Name()) }

// RepeaterProb implements Model.
func (o Overlay) RepeaterProb(net *topology.Network, ci int) float64 {
	a := o.A.RepeaterProb(net, ci)
	b := o.B.RepeaterProb(net, ci)
	return 1 - (1-a)*(1-b)
}

// Worst takes the pointwise maximum of two models — a conservative upper
// envelope across model uncertainty (the paper's motivation for running a
// *family* of models).
type Worst struct {
	A, B Model
}

// Name implements Model.
func (w Worst) Name() string { return fmt.Sprintf("max(%s,%s)", w.A.Name(), w.B.Name()) }

// RepeaterProb implements Model.
func (w Worst) RepeaterProb(net *topology.Network, ci int) float64 {
	a := w.A.RepeaterProb(net, ci)
	b := w.B.RepeaterProb(net, ci)
	if a > b {
		return a
	}
	return b
}
