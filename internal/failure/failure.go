// Package failure implements the paper's repeater failure model family and
// the propagation rules from repeater death to cable and node death.
//
// The paper's rules (§4.3.1):
//
//   - Repeaters sit at constant intervals along each cable; every repeater
//     on a cable shares one failure probability.
//   - A cable dies if at least one of its repeaters dies.
//   - A node is unreachable when all of its cables have died.
//
// Models supported: uniform probability (Figs 6-7), latitude-tiered S1/S2
// (Fig 8), physically derived probabilities from a gic.Storm scenario, and
// arbitrary custom models.
package failure

import (
	"errors"
	"fmt"
	"math"

	"gicnet/internal/geo"
	"gicnet/internal/gic"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Model assigns a per-repeater failure probability to each cable of a
// network. Implementations must be pure: same inputs, same probability.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// RepeaterProb returns the per-repeater failure probability for cable
	// ci of net, in [0, 1].
	RepeaterProb(net *topology.Network, ci int) float64
}

// Uniform gives every repeater the same failure probability (§4.3.2).
type Uniform struct {
	P float64
}

// Name implements Model.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(p=%g)", u.P) }

// RepeaterProb implements Model.
func (u Uniform) RepeaterProb(*topology.Network, int) float64 { return u.P }

// LatitudeTiered assigns a probability per latitude risk band of the
// cable's highest-latitude endpoint (§4.3.3). Cables in networks without
// coordinates fall back to the low band, matching the paper's choice to
// skip non-uniform analysis for the coordinate-free ITU dataset.
type LatitudeTiered struct {
	Label string
	// Probs is indexed by geo.Band: [low, mid, high].
	Probs [geo.NumBands]float64
}

// Name implements Model.
func (l LatitudeTiered) Name() string {
	if l.Label != "" {
		return l.Label
	}
	return fmt.Sprintf("tiered(%g,%g,%g)", l.Probs[geo.BandHigh], l.Probs[geo.BandMid], l.Probs[geo.BandLow])
}

// RepeaterProb implements Model.
func (l LatitudeTiered) RepeaterProb(net *topology.Network, ci int) float64 {
	band, ok := net.CableBand(ci)
	if !ok {
		band = geo.BandLow
	}
	return l.Probs[band]
}

// PathTiered is like LatitudeTiered but bands each cable by the highest
// absolute latitude reached along its great-circle path rather than by
// its highest endpoint. Transatlantic routes between ~40-50N endpoints
// arc into the >60 auroral band, so PathTiered is the physically stricter
// reading; comparing it against the paper's endpoint rule is the
// ablation-banding experiment.
type PathTiered struct {
	Label string
	Probs [geo.NumBands]float64
}

// Name implements Model.
func (p PathTiered) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("path-tiered(%g,%g,%g)", p.Probs[geo.BandHigh], p.Probs[geo.BandMid], p.Probs[geo.BandLow])
}

// RepeaterProb implements Model.
func (p PathTiered) RepeaterProb(net *topology.Network, ci int) float64 {
	band, ok := net.CableBandByPath(ci)
	if !ok {
		band = geo.BandLow
	}
	return p.Probs[band]
}

// S1Path is the S1 state under path banding.
func S1Path() PathTiered {
	return PathTiered{Label: "S1-path", Probs: S1().Probs}
}

// S1 is the paper's high-failure state: per-repeater probabilities
// [1, 0.1, 0.01] for bands (>60, 40-60, <40).
func S1() LatitudeTiered {
	return LatitudeTiered{Label: "S1(high)", Probs: [geo.NumBands]float64{geo.BandLow: 0.01, geo.BandMid: 0.1, geo.BandHigh: 1}}
}

// S2 is the paper's low-failure state: [0.1, 0.01, 0.001].
func S2() LatitudeTiered {
	return LatitudeTiered{Label: "S2(low)", Probs: [geo.NumBands]float64{geo.BandLow: 0.001, geo.BandMid: 0.01, geo.BandHigh: 0.1}}
}

// FromStorm derives a latitude-tiered model from a physical storm scenario
// using the GIC dose-response chain.
func FromStorm(s gic.Storm, c gic.Conductor, rt gic.RepeaterTolerance) (LatitudeTiered, error) {
	probs, err := gic.BandProbabilities(s, c, rt)
	if err != nil {
		return LatitudeTiered{}, err
	}
	return LatitudeTiered{Label: "storm:" + s.Name, Probs: probs}, nil
}

// Func adapts a function to the Model interface.
type Func struct {
	Label string
	F     func(net *topology.Network, ci int) float64
}

// Name implements Model.
func (f Func) Name() string { return f.Label }

// RepeaterProb implements Model.
func (f Func) RepeaterProb(net *topology.Network, ci int) float64 { return f.F(net, ci) }

// ErrBadSpacing reports a non-positive inter-repeater distance.
var ErrBadSpacing = errors.New("failure: inter-repeater spacing must be positive")

// CableDeathProb returns the exact probability that cable ci dies:
// 1 - (1-p)^r for r repeaters of failure probability p. Cables with no
// repeaters never die.
func CableDeathProb(net *topology.Network, m Model, spacingKm float64, ci int) (float64, error) {
	if spacingKm <= 0 {
		return 0, ErrBadSpacing
	}
	r := net.Cables[ci].RepeaterCount(spacingKm)
	if r == 0 {
		return 0, nil
	}
	p := m.RepeaterProb(net, ci)
	if p <= 0 {
		return 0, nil
	}
	if p >= 1 {
		return 1, nil
	}
	return 1 - math.Pow(1-p, float64(r)), nil
}

// SampleCableDeaths draws one Monte Carlo realisation of cable deaths.
// Each cable dies independently with its CableDeathProb; sampling the
// aggregated Bernoulli is distribution-identical to sampling each repeater,
// and orders of magnitude faster on 22-repeater submarine cables.
func SampleCableDeaths(net *topology.Network, m Model, spacingKm float64, rng *xrand.Source) ([]bool, error) {
	if spacingKm <= 0 {
		return nil, ErrBadSpacing
	}
	dead := make([]bool, len(net.Cables))
	for ci := range net.Cables {
		p, err := CableDeathProb(net, m, spacingKm, ci)
		if err != nil {
			return nil, err
		}
		dead[ci] = rng.Bool(p)
	}
	return dead, nil
}

// Outcome summarises one realisation of failures on a network.
type Outcome struct {
	// CablesFailed is the number of dead cables.
	CablesFailed int
	// CableFrac is CablesFailed over the cable count.
	CableFrac float64
	// NodesUnreachable is the number of nodes with all cables dead.
	NodesUnreachable int
	// NodeFrac is NodesUnreachable over the count of nodes that have at
	// least one cable.
	NodeFrac float64
}

// Evaluate computes the Outcome for a cable-death vector.
func Evaluate(net *topology.Network, cableDead []bool) Outcome {
	failed := 0
	for _, d := range cableDead {
		if d {
			failed++
		}
	}
	unreachable := len(net.UnreachableNodes(cableDead))
	out := Outcome{CablesFailed: failed, NodesUnreachable: unreachable}
	if len(net.Cables) > 0 {
		out.CableFrac = float64(failed) / float64(len(net.Cables))
	}
	if n := net.ConnectedNodeCount(); n > 0 {
		out.NodeFrac = float64(unreachable) / float64(n)
	}
	return out
}

// ExpectedCableFrac returns the exact expected fraction of dead cables
// (mean of CableDeathProb over cables) — a fast analytic cross-check for
// the Monte Carlo cable series.
func ExpectedCableFrac(net *topology.Network, m Model, spacingKm float64) (float64, error) {
	if len(net.Cables) == 0 {
		return 0, nil
	}
	total := 0.0
	for ci := range net.Cables {
		p, err := CableDeathProb(net, m, spacingKm, ci)
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total / float64(len(net.Cables)), nil
}
