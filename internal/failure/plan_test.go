package failure

import (
	"math"
	"reflect"
	"testing"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

func planNet() *topology.Network {
	nodes := []topology.Node{
		{Name: "a", Coord: geo.Coord{Lat: 65, Lon: 0}, HasCoord: true},
		{Name: "b", Coord: geo.Coord{Lat: 50, Lon: 10}, HasCoord: true},
		{Name: "c", Coord: geo.Coord{Lat: 30, Lon: 20}, HasCoord: true},
		{Name: "d", Coord: geo.Coord{Lat: 10, Lon: 30}, HasCoord: true},
		{Name: "lonely"},
	}
	cables := []topology.Cable{
		{Name: "ab", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 2000}}, KnownLength: true},
		{Name: "bc", Segments: []topology.Segment{{A: 1, B: 2, LengthKm: 3000}}, KnownLength: true},
		{Name: "cd", Segments: []topology.Segment{{A: 2, B: 3, LengthKm: 800}}, KnownLength: true},
		{Name: "ad", Segments: []topology.Segment{{A: 0, B: 3, LengthKm: 9000}, {A: 3, B: 1, LengthKm: 500}}, KnownLength: true},
		{Name: "short", Segments: []topology.Segment{{A: 2, B: 3, LengthKm: 40}}, KnownLength: true},
	}
	return &topology.Network{Name: "plan-t", Nodes: nodes, Cables: cables}
}

func TestCompileRejectsBadSpacing(t *testing.T) {
	if _, err := Compile(planNet(), Uniform{P: 0.5}, 0); err != ErrBadSpacing {
		t.Fatalf("Compile spacing=0: err=%v, want ErrBadSpacing", err)
	}
}

func TestPlanMatchesCableDeathProb(t *testing.T) {
	n := planNet()
	for _, m := range []Model{Uniform{P: 0.3}, S1(), S2(), S1Path()} {
		plan, err := Compile(n, m, 150)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumCables() != len(n.Cables) {
			t.Fatalf("NumCables = %d, want %d", plan.NumCables(), len(n.Cables))
		}
		for ci := range n.Cables {
			want, err := CableDeathProb(n, m, 150, ci)
			if err != nil {
				t.Fatal(err)
			}
			if got := plan.DeathProb(ci); got != want {
				t.Errorf("%s cable %d: plan prob %v, CableDeathProb %v", m.Name(), ci, got, want)
			}
			if got, want := plan.RepeaterCount(ci), n.Cables[ci].RepeaterCount(150); got != want {
				t.Errorf("cable %d: plan repeaters %d, want %d", ci, got, want)
			}
		}
	}
}

// TestPlanSamplingMatchesPerTrialPath is the plan-vs-reference half of the
// bit-reproducibility contract: for the same seed, SampleDense must consume
// the RNG draw for draw like SampleCableDeaths, and Evaluate must score the
// realisation like the Evaluate package function.
func TestPlanSamplingMatchesPerTrialPath(t *testing.T) {
	n := planNet()
	for _, m := range []Model{Uniform{P: 0.2}, Uniform{P: 0}, Uniform{P: 1}, S1(), S2()} {
		plan, err := Compile(n, m, 150)
		if err != nil {
			t.Fatal(err)
		}
		dead := plan.NewDead()
		bools := make([]bool, plan.NumCables())
		for trial := uint64(0); trial < 200; trial++ {
			root := xrand.New(99)
			rngRef := root.Split(trial)
			want, err := SampleCableDeaths(n, m, 150, rngRef)
			if err != nil {
				t.Fatal(err)
			}
			rng := root.SplitAt(trial)
			plan.SampleDense(dead, &rng)
			dead.Expand(bools)
			if !reflect.DeepEqual(bools, want) {
				t.Fatalf("%s trial %d: plan sample %v, reference %v", m.Name(), trial, bools, want)
			}
			if got, want := plan.Evaluate(dead), Evaluate(n, want); got != want {
				t.Fatalf("%s trial %d: plan outcome %+v, reference %+v", m.Name(), trial, got, want)
			}
		}
	}
}

// TestPlanSparseSamplerDistribution checks the geometric-skip sampler's
// marginals against the analytic death probabilities: per-cable death
// frequencies over many trials must land within a generous binomial
// confidence band, and every sparse realisation must evaluate identically
// to the reference evaluator.
func TestPlanSparseSamplerDistribution(t *testing.T) {
	n := planNet()
	const trials = 40000
	for _, m := range []Model{Uniform{P: 0.05}, Uniform{P: 0.001}, S1(), S2()} {
		plan, err := Compile(n, m, 150)
		if err != nil {
			t.Fatal(err)
		}
		dead := plan.NewDead()
		bools := make([]bool, plan.NumCables())
		counts := make([]int, plan.NumCables())
		root := xrand.New(1859)
		for trial := uint64(0); trial < trials; trial++ {
			rng := root.SplitAt(trial)
			plan.SampleInto(dead, &rng)
			for ci := range counts {
				if dead.Get(ci) {
					counts[ci]++
				}
			}
			if trial < 64 {
				dead.Expand(bools)
				if got, want := plan.Evaluate(dead), Evaluate(n, bools); got != want {
					t.Fatalf("%s trial %d: plan outcome %+v, reference %+v", m.Name(), trial, got, want)
				}
			}
		}
		for ci := range counts {
			p := plan.DeathProb(ci)
			got := float64(counts[ci]) / trials
			// 6-sigma binomial band, floored so tiny p keeps a real margin.
			tol := 6 * math.Sqrt(p*(1-p)/trials)
			if tol < 0.002 {
				tol = 0.002
			}
			if math.Abs(got-p) > tol {
				t.Errorf("%s cable %d: death freq %v, want %v ± %v", m.Name(), ci, got, p, tol)
			}
		}
	}
}

func TestPlanExpectedCableFrac(t *testing.T) {
	n := planNet()
	plan, err := Compile(n, S1(), 150)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedCableFrac(n, S1(), 150)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ExpectedCableFrac(); got != want {
		t.Errorf("plan ExpectedCableFrac %v, package %v", got, want)
	}
}

func TestPlanMetadata(t *testing.T) {
	n := planNet()
	plan, err := Compile(n, S2(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Network() != n || plan.ModelName() != "S2(low)" || plan.SpacingKm() != 100 {
		t.Errorf("metadata: net=%p name=%q spacing=%v", plan.Network(), plan.ModelName(), plan.SpacingKm())
	}
}

func TestPlanEmptyNetwork(t *testing.T) {
	n := &topology.Network{Name: "empty"}
	plan, err := Compile(n, Uniform{P: 0.5}, 150)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	out := plan.Evaluate(plan.Sample(rng))
	if out != (Outcome{}) {
		t.Errorf("empty network outcome = %+v", out)
	}
	if plan.ExpectedCableFrac() != 0 {
		t.Errorf("empty network expected frac = %v", plan.ExpectedCableFrac())
	}
}

// BenchmarkPlanTrialLoop is the allocation-regression guard for the Monte
// Carlo hot path: sample + evaluate through a compiled plan must be
// allocation-free in steady state.
func BenchmarkPlanTrialLoop(b *testing.B) {
	n := planNet()
	plan, err := Compile(n, S1(), 150)
	if err != nil {
		b.Fatal(err)
	}
	dead := plan.NewDead()
	root := xrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := root.SplitAt(uint64(i))
		plan.SampleInto(dead, &rng)
		_ = plan.Evaluate(dead)
	}
}
