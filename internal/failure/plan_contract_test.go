package failure

import (
	"testing"
)

// AtRiskCables and ImmortalCables must partition the cable set exactly:
// membership is decided by the analytic death probability alone, and the
// immortal copy carries no stray bits past NumCables.
func TestPlanAtRiskImmortalComplement(t *testing.T) {
	for _, spacing := range []float64{150, 3000} {
		plan, err := Compile(planNet(), Uniform{P: 0.5}, spacing)
		if err != nil {
			t.Fatal(err)
		}
		atRisk, immortal := plan.AtRiskCables(), plan.ImmortalCables()
		for ci := 0; ci < plan.NumCables(); ci++ {
			wantRisk := plan.DeathProb(ci) > 0
			if atRisk.Get(ci) != wantRisk {
				t.Errorf("spacing=%v cable %d: atRisk=%v, DeathProb=%v", spacing, ci, atRisk.Get(ci), plan.DeathProb(ci))
			}
			if immortal.Get(ci) == atRisk.Get(ci) {
				t.Errorf("spacing=%v cable %d: immortal and atRisk agree — sets must be complements", spacing, ci)
			}
		}
		for i := plan.NumCables(); i < 64*len(immortal); i++ {
			if immortal.Get(i) {
				t.Fatalf("spacing=%v: ImmortalCables has stray bit %d past NumCables=%d", spacing, i, plan.NumCables())
			}
		}
	}
}

// Contraction() is a self-validating cache: repeat calls share one build,
// recompiling the plan with a different immortal core rebuilds it, and
// recompiling with the same core (a new probability on the same at-risk
// set) reuses the old build even though the arena was overwritten.
func TestPlanContractionCache(t *testing.T) {
	// One network instance throughout: the sweep arenas recompile the same
	// *Network, and the cache is keyed on its graph identity.
	net := planNet()
	plan, err := Compile(net, Uniform{P: 0.5}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	cc1 := plan.Contraction()
	if cc1 == nil {
		t.Fatal("nil contraction")
	}
	if got := plan.Contraction(); got != cc1 {
		t.Fatal("second Contraction() call rebuilt an unchanged core")
	}

	// Same cables at risk (every repeatered cable stays repeatered), new
	// probability: the cache must survive the recompile.
	if err := CompileInto(plan, net, Uniform{P: 0.1}, 3000); err != nil {
		t.Fatal(err)
	}
	if got := plan.Contraction(); got != cc1 {
		t.Fatal("recompile with an identical immortal core dropped the cached contraction")
	}

	// Tighter spacing gives the short cables repeaters, changing the core:
	// the cache must notice and rebuild.
	if err := CompileInto(plan, net, Uniform{P: 0.1}, 150); err != nil {
		t.Fatal(err)
	}
	cc2 := plan.Contraction()
	if cc2 == cc1 {
		t.Fatal("recompile with a different immortal core kept the stale contraction")
	}
	if !cc2.Matches(plan.Network().Graph(), plan.AtRiskCables()) {
		t.Fatal("rebuilt contraction does not match the plan's current at-risk set")
	}
}
