package failure

import (
	"math"
	"testing"

	"gicnet/internal/xrand"
)

// FuzzTiltedSampler drives the importance-sampling primitive over random
// networks, probabilities and tilt factors. Properties: construction on a
// valid plan and positive finite lambda always succeeds and validates;
// every sampled realisation prices to a finite log likelihood ratio that
// matches a dense recomputation from the probability vectors; and at
// lambda = 1 the sampler is the plain sampler with every weight exactly
// zero in log space.
func FuzzTiltedSampler(f *testing.F) {
	f.Add(uint64(1), 8, 12, 150.0, 0.01, 4.0)
	f.Add(uint64(1859), 32, 48, 50.0, 0.5, 0.1)
	f.Add(uint64(7), 16, 24, 500.0, 1e-6, 900.0)
	f.Add(uint64(42), 4, 6, 80.0, 0.999, 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, nodes, cables int, spacingKm, p, lambda float64) {
		if !(spacingKm > 0) || spacingKm > 1e6 {
			t.Skip()
		}
		if !(p >= 0) || p > 1 {
			t.Skip()
		}
		if !(lambda > 0) || lambda > 1e9 || math.IsNaN(lambda) {
			t.Skip()
		}
		net := fuzzNetwork(seed, nodes, cables)
		plan, err := Compile(net, Uniform{P: p}, spacingKm)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		ts, err := NewTiltedSampler(plan, lambda)
		if err != nil {
			t.Fatalf("tilted sampler: %v", err)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		root := xrand.New(seed ^ 0x746c6974)
		dead := plan.NewDead()
		for trial := uint64(0); trial < 16; trial++ {
			rng := root.SplitAt(trial)
			logw := ts.SampleInto(dead, &rng)
			if math.IsNaN(logw) || math.IsInf(logw, 0) {
				t.Fatalf("trial %d: log weight %v not finite", trial, logw)
			}
			//gicnet:allow floatcmp the no-tilt identity is exact by construction
			if lambda == 1 && logw != 0 {
				t.Fatalf("trial %d: lambda=1 log weight %v, want exactly 0", trial, logw)
			}
			want := denseLogWeight(plan, ts, dead)
			if math.Abs(logw-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: log weight %v, dense recomputation %v", trial, logw, want)
			}
		}
	})
}
