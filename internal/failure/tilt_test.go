package failure

import (
	"math"
	"testing"

	"gicnet/internal/graph"
	"gicnet/internal/xrand"
)

// tiltTestPlan compiles a moderately sized fuzz network under a uniform
// model, giving a mix of dense and sparse sampler buckets.
func tiltTestPlan(t *testing.T, p float64) *Plan {
	t.Helper()
	net := fuzzNetwork(1859, 24, 40)
	plan, err := Compile(net, Uniform{P: p}, 150)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestTiltedSamplerLambdaOneIsPlain pins the no-tilt identity: at lambda
// = 1 the tilted probabilities equal the plan's bit for bit, so the
// compiled program consumes the same draws, produces the same
// realisations, and every log weight is exactly zero.
func TestTiltedSamplerLambdaOneIsPlain(t *testing.T) {
	plan := tiltTestPlan(t, 0.05)
	ts, err := NewTiltedSampler(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	root := xrand.New(7)
	deadPlain := plan.NewDead()
	deadTilt := plan.NewDead()
	for trial := uint64(0); trial < 200; trial++ {
		rngA := root.SplitAt(trial)
		rngB := root.SplitAt(trial)
		plan.SampleInto(deadPlain, &rngA)
		logw := ts.SampleInto(deadTilt, &rngB)
		if logw != 0 {
			t.Fatalf("trial %d: lambda=1 log weight %v, want exactly 0", trial, logw)
		}
		if !bitsetEq(deadPlain, deadTilt) {
			t.Fatalf("trial %d: lambda=1 realisation differs from plain sampler", trial)
		}
	}
}

// TestTiltedSamplerWeightsPriceTheTilt recomputes each trial's likelihood
// ratio densely from the probability vectors and checks LogWeight's
// incremental bookkeeping against it.
func TestTiltedSamplerWeightsPriceTheTilt(t *testing.T) {
	plan := tiltTestPlan(t, 0.02)
	for _, lambda := range []float64{0.25, 2, 8, 50} {
		ts, err := NewTiltedSampler(plan, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if err := ts.Validate(); err != nil {
			t.Fatal(err)
		}
		root := xrand.New(11)
		dead := plan.NewDead()
		for trial := uint64(0); trial < 100; trial++ {
			rng := root.SplitAt(trial)
			got := ts.SampleInto(dead, &rng)
			want := denseLogWeight(plan, ts, dead)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("lambda=%v trial %d: log weight %v, dense recomputation %v", lambda, trial, got, want)
			}
		}
	}
}

// denseLogWeight prices a realisation the slow O(cables) way.
func denseLogWeight(plan *Plan, ts *TiltedSampler, dead graph.Bitset) float64 {
	lw := 0.0
	for ci := 0; ci < plan.NumCables(); ci++ {
		p, q := plan.DeathProb(ci), ts.TiltedProb(ci)
		if p <= 0 || p >= 1 {
			continue
		}
		if dead.Get(ci) {
			lw += math.Log(p) - math.Log(q)
		} else {
			lw += math.Log1p(-p) - math.Log1p(-q)
		}
	}
	return lw
}

// TestTiltedSamplerMeanWeight checks unbiasedness of the weight itself:
// E_q[w] = 1, so the sample mean of the likelihood ratios converges to 1.
func TestTiltedSamplerMeanWeight(t *testing.T) {
	plan := tiltTestPlan(t, 0.01)
	for _, lambda := range []float64{2, 5} {
		ts, err := NewTiltedSampler(plan, lambda)
		if err != nil {
			t.Fatal(err)
		}
		root := xrand.New(23)
		dead := plan.NewDead()
		const trials = 20000
		sum, sumSq := 0.0, 0.0
		for trial := uint64(0); trial < trials; trial++ {
			rng := root.SplitAt(trial)
			w := math.Exp(ts.SampleInto(dead, &rng))
			sum += w
			sumSq += w * w
		}
		mean := sum / trials
		se := math.Sqrt((sumSq/trials - mean*mean) / trials)
		if math.Abs(mean-1) > 5*se+1e-12 {
			t.Fatalf("lambda=%v: mean weight %v +- %v, want 1 within 5 standard errors", lambda, mean, se)
		}
	}
}

// TestTiltedSamplerRejectsBadLambda pins the constructor contract.
func TestTiltedSamplerRejectsBadLambda(t *testing.T) {
	plan := tiltTestPlan(t, 0.05)
	for _, lambda := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewTiltedSampler(plan, lambda); err == nil {
			t.Fatalf("lambda=%v: expected constructor error", lambda)
		}
	}
}

// TestTiltedSamplerBatchMatchesSerial pins the batch entry point to the
// per-trial one: same realisations, same weights, same split streams.
func TestTiltedSamplerBatchMatchesSerial(t *testing.T) {
	plan := tiltTestPlan(t, 0.05)
	ts, err := NewTiltedSampler(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchScratch
	batch.Grow(plan)
	root := xrand.New(41)
	const n = 32
	logw := make([]float64, n)
	ts.SampleBatch(&batch, root, 100, n, logw)
	dead := plan.NewDead()
	for b := 0; b < n; b++ {
		rng := root.SplitAt(100 + uint64(b))
		want := ts.SampleInto(dead, &rng)
		if logw[b] != want {
			t.Fatalf("trial %d: batch log weight %v, serial %v", b, logw[b], want)
		}
		if !bitsetEq(dead, batch.Row(b)) {
			t.Fatalf("trial %d: batch realisation differs from serial", b)
		}
	}
}

// TestSampleIntoUMatchesPseudoRandom pins the uniform-stream seam: feeding
// SampleIntoU the trial's own xrand stream must reproduce SampleInto
// exactly, realisation and weight both.
func TestSampleIntoUMatchesPseudoRandom(t *testing.T) {
	plan := tiltTestPlan(t, 0.05)
	ts, err := NewTiltedSampler(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	root := xrand.New(9)
	deadA := plan.NewDead()
	deadB := plan.NewDead()
	for trial := uint64(0); trial < 100; trial++ {
		rngA := root.SplitAt(trial)
		rngB := root.SplitAt(trial)
		plan.SampleInto(deadA, &rngA)
		plan.SampleIntoU(deadB, &rngB)
		if !bitsetEq(deadA, deadB) {
			t.Fatalf("trial %d: plan SampleIntoU diverges from SampleInto", trial)
		}
		rngC := root.SplitAt(trial)
		rngD := root.SplitAt(trial)
		wa := ts.SampleInto(deadA, &rngC)
		wb := ts.SampleIntoU(deadB, &rngD)
		if wa != wb || !bitsetEq(deadA, deadB) {
			t.Fatalf("trial %d: tilted SampleIntoU diverges from SampleInto", trial)
		}
	}
}

// TestPlanDraws sanity-checks the uniform-consumption bound: a trial
// driven through a counting stream must never consume more draws than
// Draws() promises.
func TestPlanDraws(t *testing.T) {
	plan := tiltTestPlan(t, 0.05)
	bound := plan.Draws()
	if bound <= 0 {
		t.Fatalf("Draws() = %d, want positive", bound)
	}
	root := xrand.New(3)
	dead := plan.NewDead()
	for trial := uint64(0); trial < 500; trial++ {
		rng := root.SplitAt(trial)
		cs := &countingStream{src: rng}
		plan.SampleIntoU(dead, cs)
		// Draws is an expectation-level bound, not a worst case; allow a
		// generous factor before declaring it broken.
		if cs.n > 16*bound+64 {
			t.Fatalf("trial %d consumed %d uniforms, bound %d", trial, cs.n, bound)
		}
	}
}

type countingStream struct {
	src xrand.Source
	n   int
}

func (c *countingStream) Float64() float64 {
	c.n++
	return c.src.Float64()
}

// bitsetEq compares two equally sized bitsets word for word.
func bitsetEq(a, b graph.Bitset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
