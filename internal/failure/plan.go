package failure

import (
	"fmt"
	"math"

	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Plan is a failure model compiled against one (network, model, spacing)
// triple. CableDeathProb walks cable geometry and calls math.Pow per query;
// inside a Monte Carlo run those inputs are constant, so the plan
// precomputes every per-cable death probability, the repeater counts, and
// the node→cable incidence needed to score a trial. Sampling and
// evaluating a trial through a Plan allocates nothing.
//
// A Plan is immutable after Compile and safe for concurrent use; workers
// need only their own dead-mask scratch slice and RNG.
type Plan struct {
	net       *topology.Network
	modelName string
	spacingKm float64

	deathProb []float64 // per cable: 1-(1-p)^r, clamped to [0,1]
	repeaters []int     // per cable: repeater count at spacingKm

	// Node→cable incidence (shared with the network's cache) and the
	// connected-node denominator for NodeFrac.
	incStart  []int32
	incList   []int32
	connected int
}

// Compile precomputes a simulation plan. It validates the spacing and
// resolves every per-cable probability exactly as CableDeathProb would, so
// plan-based sampling is bit-identical to the per-trial path.
func Compile(net *topology.Network, m Model, spacingKm float64) (*Plan, error) {
	if spacingKm <= 0 {
		return nil, ErrBadSpacing
	}
	p := &Plan{
		net:       net,
		modelName: m.Name(),
		spacingKm: spacingKm,
		deathProb: make([]float64, len(net.Cables)),
		repeaters: make([]int, len(net.Cables)),
		connected: net.ConnectedNodeCount(),
	}
	p.incStart, p.incList = net.CableIncidence()
	for ci := range net.Cables {
		prob, err := CableDeathProb(net, m, spacingKm, ci)
		if err != nil {
			return nil, err
		}
		p.deathProb[ci] = prob
		p.repeaters[ci] = net.Cables[ci].RepeaterCount(spacingKm)
	}
	return p, nil
}

// Network returns the network the plan was compiled for.
func (p *Plan) Network() *topology.Network { return p.net }

// ModelName returns the compiled model's report name.
func (p *Plan) ModelName() string { return p.modelName }

// SpacingKm returns the compiled inter-repeater spacing.
func (p *Plan) SpacingKm() float64 { return p.spacingKm }

// NumCables returns the cable count, the length SampleInto expects.
func (p *Plan) NumCables() int { return len(p.deathProb) }

// DeathProb returns the precomputed death probability of cable ci.
func (p *Plan) DeathProb(ci int) float64 { return p.deathProb[ci] }

// RepeaterCount returns the precomputed repeater count of cable ci.
func (p *Plan) RepeaterCount(ci int) int { return p.repeaters[ci] }

// SampleInto draws one realisation of cable deaths into dead, which must
// have length NumCables. The RNG consumption matches SampleCableDeaths
// draw for draw (cables with probability 0 or 1 consume nothing), so a
// given seed yields the same realisation on either path.
func (p *Plan) SampleInto(dead []bool, rng *xrand.Source) {
	if len(p.deathProb) == 0 {
		return
	}
	_ = dead[len(p.deathProb)-1] // one bounds check, not NumCables
	for ci, prob := range p.deathProb {
		dead[ci] = rng.Bool(prob)
	}
}

// Sample is SampleInto with a freshly allocated mask.
func (p *Plan) Sample(rng *xrand.Source) []bool {
	dead := make([]bool, p.NumCables())
	p.SampleInto(dead, rng)
	return dead
}

// Evaluate scores a cable-death vector without touching the graph
// projection or allocating: node unreachability reduces to "all incident
// cables dead" over the compiled incidence lists.
func (p *Plan) Evaluate(dead []bool) Outcome {
	failed := 0
	for _, d := range dead {
		if d {
			failed++
		}
	}
	unreachable := 0
	start, list := p.incStart, p.incList
	for i := 0; i+1 < len(start); i++ {
		s, e := start[i], start[i+1]
		if s == e {
			continue // never connected, never counted
		}
		alive := false
		for _, ci := range list[s:e] {
			if !dead[ci] {
				alive = true
				break
			}
		}
		if !alive {
			unreachable++
		}
	}
	out := Outcome{CablesFailed: failed, NodesUnreachable: unreachable}
	if len(dead) > 0 {
		out.CableFrac = float64(failed) / float64(len(dead))
	}
	if p.connected > 0 {
		out.NodeFrac = float64(unreachable) / float64(p.connected)
	}
	return out
}

// DeathProbs returns a copy of every compiled per-cable death probability,
// indexed by cable. It exists for verification code that asserts model
// invariants (probabilities in [0,1], monotonicity in repeater count)
// without re-deriving them through CableDeathProb.
func (p *Plan) DeathProbs() []float64 {
	return append([]float64(nil), p.deathProb...)
}

// Validate checks the plan's internal invariants: every death probability
// in [0,1] and finite, repeater counts non-negative, and the incidence CSR
// shaped for the network's node count. Compile always produces a valid
// plan; Validate exists so the verification subsystem can prove that
// rather than assume it.
func (p *Plan) Validate() error {
	for ci, prob := range p.deathProb {
		if math.IsNaN(prob) || prob < 0 || prob > 1 {
			return fmt.Errorf("failure: plan %s/%s: cable %d death probability %v outside [0,1]",
				p.net.Name, p.modelName, ci, prob)
		}
		if p.repeaters[ci] < 0 {
			return fmt.Errorf("failure: plan %s/%s: cable %d negative repeater count %d",
				p.net.Name, p.modelName, ci, p.repeaters[ci])
		}
		if p.repeaters[ci] == 0 && prob != 0 {
			return fmt.Errorf("failure: plan %s/%s: repeaterless cable %d has death probability %v",
				p.net.Name, p.modelName, ci, prob)
		}
	}
	if len(p.incStart) != len(p.net.Nodes)+1 {
		return fmt.Errorf("failure: plan %s/%s: incidence CSR has %d offsets for %d nodes",
			p.net.Name, p.modelName, len(p.incStart), len(p.net.Nodes))
	}
	if p.connected < 0 || p.connected > len(p.net.Nodes) {
		return fmt.Errorf("failure: plan %s/%s: connected node count %d outside [0,%d]",
			p.net.Name, p.modelName, p.connected, len(p.net.Nodes))
	}
	return nil
}

// ExpectedCableFrac is the analytic mean of the compiled probabilities —
// the plan-level equivalent of the package function.
func (p *Plan) ExpectedCableFrac() float64 {
	if len(p.deathProb) == 0 {
		return 0
	}
	total := 0.0
	for _, prob := range p.deathProb {
		total += prob
	}
	return total / float64(len(p.deathProb))
}
