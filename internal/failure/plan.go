package failure

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"gicnet/internal/graph"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Sparse-sampling thresholds. A probability bucket is sampled with
// geometric skips only when its envelope is at most 1/4 (above that the
// skips are mostly zero and per-cable draws are cheaper) and it holds
// enough cables for the skip arithmetic to amortise.
const (
	minSparseExp   = 2  // smallest eligible envelope exponent: 2^-2 = 0.25
	maxSparseExp   = 64 // probabilities below 2^-64 share the bottom bucket
	sparseMinGroup = 8
)

// sampleGroup is one compile-time probability bucket: cables whose death
// probabilities share the power-of-two envelope pmax, laid out contiguously
// in the plan's groupCables/groupProbs arrays.
type sampleGroup struct {
	pmax    float64
	invLogq float64 // 1 / log1p(-pmax): turns a uniform draw into a skip
	start   int
	end     int
}

// Plan is a failure model compiled against one (network, model, spacing)
// triple. CableDeathProb walks cable geometry and calls math.Pow per query;
// inside a Monte Carlo run those inputs are constant, so the plan
// precomputes every per-cable death probability and a sampling program over
// them:
//
//   - cables with probability 1 live in a template bitset copied per trial,
//   - cables with probability in (0,1) are bucketed by power-of-two
//     envelope; large low-probability buckets sample via geometric skip
//     draws (one log per expected hit instead of one Bernoulli per cable)
//     thinned down to each cable's exact probability, and the rest fall
//     back to one Bernoulli draw per cable.
//
// Evaluation runs against the network's bit-packed incidence: failed
// cables are a popcount, and only nodes touching a dead cable are tested
// for unreachability, by word-AND against precompiled per-node masks.
//
// A Plan is immutable after Compile and safe for concurrent use; workers
// need only their own dead-mask bitset and RNG. Sampling and evaluating a
// trial through a Plan allocates nothing.
type Plan struct {
	net       *topology.Network
	modelName string
	spacingKm float64

	deathProb []float64 // per cable: 1-(1-p)^r, clamped to [0,1]
	repeaters []int     // per cable: repeater count at spacingKm

	baseDead graph.Bitset   // template: every probability-1 cable pre-set
	atRisk   graph.Bitset   // cables with non-zero death probability
	prog     samplerProgram // dense + sparse-bucket program over deathProb

	inc       *topology.IncidenceBits
	connected int // nodes with >= 1 cable: the NodeFrac denominator

	// vulnNodes lists the nodes that can possibly become unreachable: nodes
	// with at least one incident cable, all of whose incident cables carry
	// non-zero death probability. A node touching any immortal cable never
	// loses connectivity, so the block evaluator's column walk skips it
	// outright. Ascending node order.
	vulnNodes []int32

	// contraction caches the network's core contraction for the current
	// at-risk set. Guarded by contractMu and self-validating through
	// Matches, so arena recompiles that preserve the immortal core (every
	// point of a uniform sweep, say) reuse the contraction for free and
	// recompiles that change it rebuild transparently.
	contractMu  sync.Mutex
	contraction *graph.CoreContraction

	// uniformNames memoizes Uniform model names across recompiles: a sweep
	// recompiles its arena plan once per (point, cell) with the same few
	// probabilities, and fmt.Sprintf in Uniform.Name was its last
	// steady-state allocation. Never cleared — the name of a probability
	// does not depend on the network or spacing.
	uniformNames map[float64]string
}

// Compile precomputes a simulation plan. It validates the spacing and
// resolves every per-cable probability exactly as CableDeathProb would.
func Compile(net *topology.Network, m Model, spacingKm float64) (*Plan, error) {
	p := &Plan{}
	if err := CompileInto(p, net, m, spacingKm); err != nil {
		return nil, err
	}
	return p, nil
}

// CompileInto is Compile reusing p's backing arrays, so a worker that
// compiles many plans (one sweep point after another) allocates only on
// first use. The previous contents of p are discarded.
func CompileInto(p *Plan, net *topology.Network, m Model, spacingKm float64) error {
	if spacingKm <= 0 {
		return ErrBadSpacing
	}
	nc := len(net.Cables)
	p.net = net
	p.modelName = p.nameOf(m)
	p.spacingKm = spacingKm
	p.deathProb = growFloats(p.deathProb, nc)
	p.repeaters = growInts(p.repeaters, nc)
	p.connected = net.ConnectedNodeCount()
	p.inc = net.IncidenceBits()
	for ci := range net.Cables {
		prob, err := CableDeathProb(net, m, spacingKm, ci)
		if err != nil {
			return err
		}
		p.deathProb[ci] = prob
		p.repeaters[ci] = net.Cables[ci].RepeaterCount(spacingKm)
	}
	p.buildSampler()
	return nil
}

// nameOf resolves a model's display name through the plan's memo for the
// Uniform sweep case; other models format their name on every compile.
func (p *Plan) nameOf(m Model) string {
	u, ok := m.(Uniform)
	if !ok {
		return m.Name()
	}
	if name, ok := p.uniformNames[u.P]; ok {
		return name
	}
	if p.uniformNames == nil {
		p.uniformNames = make(map[float64]string)
	}
	name := u.Name()
	p.uniformNames[u.P] = name
	return name
}

// envExp buckets a probability in (0,1) by its power-of-two envelope:
// the returned e satisfies 2^-(e+1) < prob <= 2^-e (exact powers of two get
// a tight envelope), clamped to maxSparseExp.
func envExp(prob float64) int {
	frac, exp := math.Frexp(prob) // prob = frac * 2^exp, frac in [0.5, 1)
	//gicnet:allow floatcmp Frexp returns exactly 0.5 for powers of two
	if frac == 0.5 {
		exp--
	}
	e := -exp
	if e > maxSparseExp {
		e = maxSparseExp
	}
	if e < 0 {
		e = 0
	}
	return e
}

// samplerProgram is the compiled Bernoulli sampling program over one
// per-cable probability vector: cables with probability in (0,1) are
// bucketed by power-of-two envelope, large low-probability buckets sample
// via geometric skips thinned to each cable's exact probability, and the
// rest take one dense Bernoulli draw each. Cables with probability 0 or 1
// are outside the program (the plan's template bitset covers the latter).
// It is shared by the plan's native probabilities and by the tilted
// distributions of the importance-sampling layer, which compile the same
// program over a reweighted vector.
type samplerProgram struct {
	dense       []int32 // cables sampled with one Bernoulli draw each
	denseProb   []float64
	groups      []sampleGroup
	groupCables []int32
	groupProbs  []float64
}

// compile builds the program for probs, reusing backing arrays. The layout
// is a pure function of the probabilities (no map iteration, no sorting),
// so compilation is deterministic and allocation-free in steady state.
func (sp *samplerProgram) compile(probs []float64) {
	// Reserve worst-case capacity up front (every cable dense) so the
	// scatter pass appends without doubling through realloc steps.
	sp.dense = growInt32s(sp.dense, len(probs))[:0]
	sp.denseProb = growFloats(sp.denseProb, len(probs))[:0]
	sp.groups = sp.groups[:0]

	// Pass 1: count bucket occupancy.
	var counts [maxSparseExp + 1]int32
	for _, prob := range probs {
		if prob <= 0 || prob >= 1 {
			continue
		}
		counts[envExp(prob)]++
	}

	// Assign offsets; buckets too small or too probable go dense.
	var offs [maxSparseExp + 1]int32
	total := int32(0)
	for e := 0; e <= maxSparseExp; e++ {
		if e < minSparseExp || counts[e] < sparseMinGroup {
			offs[e] = -1
			continue
		}
		offs[e] = total
		total += counts[e]
	}
	sp.groupCables = growInt32s(sp.groupCables, int(total))
	sp.groupProbs = growFloats(sp.groupProbs, int(total))

	// Pass 2: scatter cables; within each bucket cables stay in ascending
	// index order, which keeps the skip walk cache-friendly.
	fill := offs
	for ci, prob := range probs {
		if prob <= 0 || prob >= 1 {
			continue
		}
		if o := fill[envExp(prob)]; o >= 0 {
			sp.groupCables[o] = int32(ci)
			sp.groupProbs[o] = prob
			fill[envExp(prob)] = o + 1
		} else {
			sp.dense = append(sp.dense, int32(ci))
			sp.denseProb = append(sp.denseProb, prob)
		}
	}
	for e := minSparseExp; e <= maxSparseExp; e++ {
		if offs[e] < 0 {
			continue
		}
		pmax := math.Ldexp(1, -e)
		sp.groups = append(sp.groups, sampleGroup{
			pmax:    pmax,
			invLogq: 1 / math.Log1p(-pmax),
			start:   int(offs[e]),
			end:     int(offs[e] + counts[e]),
		})
	}
}

// sampleInto sets the dead bit of every cable the program kills in one
// realisation: dense cables take one Bernoulli draw each, then each sparse
// bucket walks its cables with geometric skips under the bucket envelope,
// thinning each hit down to the cable's exact probability. Bits already
// set in dead are left alone.
//
//gicnet:hotpath
func (sp *samplerProgram) sampleInto(dead graph.Bitset, rng *xrand.Source) {
	denseProb := sp.denseProb
	for k, ci := range sp.dense {
		if rng.Float64() < denseProb[k] {
			dead.Set(int(ci))
		}
	}
	for gi := range sp.groups {
		g := &sp.groups[gi]
		cables := sp.groupCables[g.start:g.end]
		probs := sp.groupProbs[g.start:g.end]
		i := 0
		for {
			u := rng.Float64()
			if u <= 0 {
				break // log(0) = -Inf: the skip overshoots any group
			}
			// Geometric skip: the next candidate under a Bernoulli(pmax)
			// scan is floor(log(u)/log(1-pmax)) positions ahead. Compare in
			// float space before converting — the skip can exceed int range.
			t := math.Log(u) * g.invLogq
			if t >= float64(len(cables)-i) {
				break
			}
			i += int(t)
			if pr := probs[i]; pr >= g.pmax || rng.Float64()*g.pmax < pr {
				dead.Set(int(cables[i]))
			}
			i++
		}
	}
}

// buildSampler turns deathProb into the sampling program plus the plan's
// template and at-risk bitsets.
func (p *Plan) buildSampler() {
	p.baseDead = graph.GrowBitset(p.baseDead, len(p.deathProb))
	p.atRisk = graph.GrowBitset(p.atRisk, len(p.deathProb))
	for ci, prob := range p.deathProb {
		switch {
		case prob <= 0:
		case prob >= 1:
			p.baseDead.Set(ci)
			p.atRisk.Set(ci)
		default:
			p.atRisk.Set(ci)
		}
	}
	p.prog.compile(p.deathProb)

	// Vulnerable nodes: a node can only become unreachable if every one of
	// its incident cables can die, which the per-node word masks test
	// against the at-risk set exactly as Evaluate tests them against a dead
	// mask. Nodes with no cables are excluded (they are outside the
	// NodeFrac denominator too).
	inc := p.inc
	p.vulnNodes = growInt32s(p.vulnNodes, len(inc.MinCable))[:0]
	for ni := range inc.MinCable {
		lo, hi := inc.NodeStart[ni], inc.NodeStart[ni+1]
		if lo == hi {
			continue
		}
		vulnerable := true
		for k := lo; k < hi; k++ {
			if inc.WordMask[k]&^p.atRisk[inc.WordIdx[k]] != 0 {
				vulnerable = false
				break
			}
		}
		if vulnerable {
			p.vulnNodes = append(p.vulnNodes, int32(ni))
		}
	}
}

// Network returns the network the plan was compiled for.
//
//gicnet:pure
func (p *Plan) Network() *topology.Network { return p.net }

// ModelName returns the compiled model's report name.
//
//gicnet:pure
func (p *Plan) ModelName() string { return p.modelName }

// SpacingKm returns the compiled inter-repeater spacing.
//
//gicnet:pure
func (p *Plan) SpacingKm() float64 { return p.spacingKm }

// NumCables returns the cable count the plan's bitsets are sized for.
func (p *Plan) NumCables() int { return len(p.deathProb) }

// NewDead returns a zeroed dead-cable bitset sized for the plan.
func (p *Plan) NewDead() graph.Bitset { return graph.NewBitset(p.NumCables()) }

// DeathProb returns the precomputed death probability of cable ci.
func (p *Plan) DeathProb(ci int) float64 { return p.deathProb[ci] }

// RepeaterCount returns the precomputed repeater count of cable ci.
func (p *Plan) RepeaterCount(ci int) int { return p.repeaters[ci] }

// AtRiskCables returns the bitset of cables with non-zero compiled death
// probability — the frontier the contracted connectivity engine unions per
// trial. The bitset is shared plan state: read-only.
func (p *Plan) AtRiskCables() graph.Bitset { return p.atRisk }

// ImmortalCables returns a fresh bitset of the cables with zero death
// probability under the plan — the immortal core CoreContraction fuses
// into supernodes (repeater-free cables under every model, low-latitude
// cables under the tiered ones).
func (p *Plan) ImmortalCables() graph.Bitset {
	nc := len(p.deathProb)
	out := graph.NewBitset(nc)
	for wi := range out {
		out[wi] = ^p.atRisk[wi]
	}
	if r := nc & 63; r != 0 {
		out[len(out)-1] &= 1<<uint(r) - 1
	}
	return out
}

// Contraction returns the network's core contraction for the plan's
// at-risk cable set, built on first use and cached. The cache key is
// (graph, at-risk set), checked on every call, so CompileInto reuse that
// preserves the immortal core keeps the contraction and reuse that changes
// it rebuilds. Safe for concurrent callers; the returned structure is
// immutable and shared.
func (p *Plan) Contraction() *graph.CoreContraction {
	g := p.net.Graph()
	p.contractMu.Lock()
	defer p.contractMu.Unlock()
	if p.contraction == nil || !p.contraction.Matches(g, p.atRisk) {
		p.contraction = p.net.CoreContraction(p.atRisk)
	}
	return p.contraction
}

// SampleInto draws one realisation of cable deaths into dead, which must be
// sized for NumCables bits. Probability-1 cables arrive via a template
// copy, dense cables take one Bernoulli draw each, and each sparse bucket
// walks its cables with geometric skips under the bucket envelope, thinning
// each hit down to the cable's exact probability — every cable still dies
// independently with exactly its compiled probability, with RNG work
// proportional to the expected number of failures instead of the cable
// count.
//
// The draw sequence differs from SampleCableDeaths; use SampleDense for
// draw-for-draw compatibility with the direct path.
//
//gicnet:hotpath
func (p *Plan) SampleInto(dead graph.Bitset, rng *xrand.Source) {
	dead.CopyFrom(p.baseDead)
	p.prog.sampleInto(dead, rng)
}

// SampleDense draws one realisation with one Bernoulli decision per cable
// in cable order — draw-for-draw compatible with SampleCableDeaths (cables
// with probability 0 or 1 consume nothing), so a given seed yields the
// same realisation on either path. It exists for the verification layer's
// coupling and equivalence proofs; simulation hot paths use SampleInto.
//
//gicnet:hotpath
func (p *Plan) SampleDense(dead graph.Bitset, rng *xrand.Source) {
	dead.Clear()
	for ci, prob := range p.deathProb {
		if rng.Bool(prob) {
			dead.Set(ci)
		}
	}
}

// Sample is SampleInto with a freshly allocated bitset.
func (p *Plan) Sample(rng *xrand.Source) graph.Bitset {
	dead := p.NewDead()
	p.SampleInto(dead, rng)
	return dead
}

// Evaluate scores a dead-cable bitset without touching the graph
// projection or allocating. Failed cables are a word-level popcount. For
// unreachability it inverts the scan: only a node incident to a dead cable
// can have lost all its cables, so it walks the set bits of dead, visits
// each dead cable's endpoint nodes, and tests "all incident cables dead"
// by word-AND against the precompiled per-node masks. Each fully-dead node
// is counted exactly once, when the walk reaches its lowest incident cable
// (necessarily dead). At the paper's low sweep probabilities this touches
// a handful of words instead of every node.
//
//gicnet:hotpath
func (p *Plan) Evaluate(dead graph.Bitset) Outcome {
	return p.finishOutcome(graph.PopcountWords(dead), p.unreachableScalar(dead))
}

// unreachableScalar is the per-trial unreachable-node walk shared by
// Evaluate and the sparse strategy of EvaluateBatch: visit each dead
// cable's endpoint nodes (once, from the node's lowest dead cable) and
// word-AND the per-node masks against the dead bitset.
//
//gicnet:hotpath
func (p *Plan) unreachableScalar(dead graph.Bitset) int {
	inc := p.inc
	unreachable := 0
	for wi, w := range dead {
		for w != 0 {
			ci := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			for _, ni := range inc.CableNodes[inc.CableStart[ci]:inc.CableStart[ci+1]] {
				if int(inc.MinCable[ni]) != ci {
					continue
				}
				allDead := true
				for k := inc.NodeStart[ni]; k < inc.NodeStart[ni+1]; k++ {
					if inc.WordMask[k]&^dead[inc.WordIdx[k]] != 0 {
						allDead = false
						break
					}
				}
				if allDead {
					unreachable++
				}
			}
		}
	}
	return unreachable
}

// finishOutcome assembles an Outcome from the two counts with the exact
// float expressions every evaluation path must share — the scalar and
// batched paths stay bit-identical because the division is performed
// identically here and nowhere else.
//
//gicnet:hotpath
func (p *Plan) finishOutcome(failed, unreachable int) Outcome {
	out := Outcome{CablesFailed: failed, NodesUnreachable: unreachable}
	if len(p.deathProb) > 0 {
		out.CableFrac = float64(failed) / float64(len(p.deathProb))
	}
	if p.connected > 0 {
		out.NodeFrac = float64(unreachable) / float64(p.connected)
	}
	return out
}

// DeathProbs returns a copy of every compiled per-cable death probability,
// indexed by cable. It exists for verification code that asserts model
// invariants (probabilities in [0,1], monotonicity in repeater count)
// without re-deriving them through CableDeathProb.
func (p *Plan) DeathProbs() []float64 {
	return append([]float64(nil), p.deathProb...)
}

// Validate checks the plan's internal invariants: every death probability
// in [0,1] and finite, repeater counts non-negative, the incidence view
// shaped for the network, and the sampling program covering every cable
// with positive probability exactly once. Compile always produces a valid
// plan; Validate exists so the verification subsystem can prove that
// rather than assume it.
func (p *Plan) Validate() error {
	for ci, prob := range p.deathProb {
		if math.IsNaN(prob) || prob < 0 || prob > 1 {
			return fmt.Errorf("failure: plan %s/%s: cable %d death probability %v outside [0,1]",
				p.net.Name, p.modelName, ci, prob)
		}
		if p.repeaters[ci] < 0 {
			return fmt.Errorf("failure: plan %s/%s: cable %d negative repeater count %d",
				p.net.Name, p.modelName, ci, p.repeaters[ci])
		}
		if p.repeaters[ci] == 0 && prob != 0 {
			return fmt.Errorf("failure: plan %s/%s: repeaterless cable %d has death probability %v",
				p.net.Name, p.modelName, ci, prob)
		}
	}
	if p.inc == nil || len(p.inc.NodeStart) != len(p.net.Nodes)+1 {
		return fmt.Errorf("failure: plan %s/%s: incidence bits not shaped for %d nodes",
			p.net.Name, p.modelName, len(p.net.Nodes))
	}
	if p.connected < 0 || p.connected > len(p.net.Nodes) {
		return fmt.Errorf("failure: plan %s/%s: connected node count %d outside [0,%d]",
			p.net.Name, p.modelName, p.connected, len(p.net.Nodes))
	}
	// Sampling program coverage: each cable must be handled by exactly one
	// of the template, the dense list, or a sparse group — and only cables
	// with probability 0 may be absent.
	seen := make([]int, len(p.deathProb))
	for ci := range seen {
		if p.baseDead.Get(ci) {
			seen[ci]++
		}
	}
	for _, ci := range p.prog.dense {
		seen[ci]++
	}
	for gi := range p.prog.groups {
		g := &p.prog.groups[gi]
		if !(g.pmax > 0 && g.pmax <= 0.25) || g.invLogq >= 0 {
			return fmt.Errorf("failure: plan %s/%s: sparse group %d has envelope %v invLogq %v",
				p.net.Name, p.modelName, gi, g.pmax, g.invLogq)
		}
		for k := g.start; k < g.end; k++ {
			seen[p.prog.groupCables[k]]++
			//gicnet:allow floatcmp groupProbs entries must be bit-identical copies of deathProb
			if pr := p.prog.groupProbs[k]; pr > g.pmax || pr != p.deathProb[p.prog.groupCables[k]] {
				return fmt.Errorf("failure: plan %s/%s: cable %d probability %v escapes envelope %v",
					p.net.Name, p.modelName, p.prog.groupCables[k], pr, g.pmax)
			}
		}
	}
	for ci, n := range seen {
		want := 1
		if p.deathProb[ci] == 0 {
			want = 0
		}
		if n != want {
			return fmt.Errorf("failure: plan %s/%s: cable %d appears %d times in the sampling program, want %d",
				p.net.Name, p.modelName, ci, n, want)
		}
	}
	// vulnNodes must be exactly the connected nodes whose every incident
	// cable is at risk — the block evaluator's correctness rests on this
	// prefilter matching the masks Evaluate tests per trial.
	vi := 0
	for ni := range p.inc.MinCable {
		lo, hi := p.inc.NodeStart[ni], p.inc.NodeStart[ni+1]
		vulnerable := lo < hi
		for k := lo; k < hi; k++ {
			if p.inc.WordMask[k]&^p.atRisk[p.inc.WordIdx[k]] != 0 {
				vulnerable = false
				break
			}
		}
		listed := vi < len(p.vulnNodes) && int(p.vulnNodes[vi]) == ni
		if listed {
			vi++
		}
		if vulnerable != listed {
			return fmt.Errorf("failure: plan %s/%s: node %d vulnerable=%v but listed=%v in vulnNodes",
				p.net.Name, p.modelName, ni, vulnerable, listed)
		}
	}
	if vi != len(p.vulnNodes) {
		return fmt.Errorf("failure: plan %s/%s: vulnNodes has %d entries beyond the node range",
			p.net.Name, p.modelName, len(p.vulnNodes)-vi)
	}
	return nil
}

// ExpectedCableFrac is the analytic mean of the compiled probabilities —
// the plan-level equivalent of the package function.
func (p *Plan) ExpectedCableFrac() float64 {
	if len(p.deathProb) == 0 {
		return 0
	}
	total := 0.0
	for _, prob := range p.deathProb {
		total += prob
	}
	return total / float64(len(p.deathProb))
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
