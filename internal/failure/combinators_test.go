package failure

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScaledClamps(t *testing.T) {
	n := net()
	m := Scaled{Base: Uniform{P: 0.5}, Factor: 3}
	if got := m.RepeaterProb(n, 0); got != 1 {
		t.Errorf("over-scaled = %v, want clamp to 1", got)
	}
	m = Scaled{Base: Uniform{P: 0.5}, Factor: -1}
	if got := m.RepeaterProb(n, 0); got != 0 {
		t.Errorf("negative scale = %v, want 0", got)
	}
	m = Scaled{Base: Uniform{P: 0.4}, Factor: 0.5}
	if got := m.RepeaterProb(n, 0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("scaled = %v, want 0.2", got)
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestOverlayIndependence(t *testing.T) {
	n := net()
	m := Overlay{A: Uniform{P: 0.5}, B: Uniform{P: 0.5}}
	if got := m.RepeaterProb(n, 0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("overlay = %v, want 0.75", got)
	}
	// Overlaying zero changes nothing.
	m = Overlay{A: S1(), B: Uniform{P: 0}}
	for ci := range n.Cables {
		if got, want := m.RepeaterProb(n, ci), S1().RepeaterProb(n, ci); math.Abs(got-want) > 1e-12 {
			t.Errorf("cable %d: overlay with zero = %v, want %v", ci, got, want)
		}
	}
}

func TestOverlayBoundsProperty(t *testing.T) {
	n := net()
	f := func(aSeed, bSeed float64) bool {
		if math.IsNaN(aSeed) || math.IsNaN(bSeed) {
			return true
		}
		a := math.Mod(math.Abs(aSeed), 1)
		b := math.Mod(math.Abs(bSeed), 1)
		m := Overlay{A: Uniform{P: a}, B: Uniform{P: b}}
		p := m.RepeaterProb(n, 0)
		// overlay is at least each component and at most 1
		return p >= a-1e-12 && p >= b-1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorstEnvelope(t *testing.T) {
	n := net()
	m := Worst{A: S1(), B: S2()}
	for ci := range n.Cables {
		got := m.RepeaterProb(n, ci)
		a, b := S1().RepeaterProb(n, ci), S2().RepeaterProb(n, ci)
		if got != math.Max(a, b) {
			t.Errorf("cable %d: worst = %v, want max(%v,%v)", ci, got, a, b)
		}
	}
	if m.Name() != "max(S1(high),S2(low))" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestCombinatorsComposeWithSimulation(t *testing.T) {
	// A scaled-down S1 must produce fewer expected failures than S1.
	n := net()
	full, err := ExpectedCableFrac(n, S1(), 150)
	if err != nil {
		t.Fatal(err)
	}
	half, err := ExpectedCableFrac(n, Scaled{Base: S1(), Factor: 0.5}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if half >= full {
		t.Errorf("scaled model expected frac %v should trail full %v", half, full)
	}
	// Overlaying background failures can only increase expectations.
	over, err := ExpectedCableFrac(n, Overlay{A: S1(), B: Uniform{P: 0.01}}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if over < full {
		t.Errorf("overlay expected frac %v should exceed plain %v", over, full)
	}
}
