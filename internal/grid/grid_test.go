package grid

import (
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/xrand"
)

func subNet(t *testing.T) *dataset.World {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func s1Probs() [geo.NumBands]float64 {
	return [geo.NumBands]float64{geo.BandLow: 0.01, geo.BandMid: 0.1, geo.BandHigh: 1}
}

func TestDefaultModelShape(t *testing.T) {
	m := DefaultModel(s1Probs())
	if len(m.Regions) != (len(geo.Regions())+1)*geo.NumBands {
		t.Errorf("regions = %d", len(m.Regions))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (Model{}).Validate(); err == nil {
		t.Error("empty model should fail")
	}
	m := DefaultModel(s1Probs())
	m.BackupProb = 1.5
	if err := m.Validate(); err == nil {
		t.Error("bad backup prob should fail")
	}
	m = DefaultModel(s1Probs())
	m.Regions[0].FailProb = -1
	if err := m.Validate(); err == nil {
		t.Error("bad region prob should fail")
	}
}

func TestCascadeNeverRevivesCables(t *testing.T) {
	w := subNet(t)
	net := w.Submarine
	m := DefaultModel(s1Probs())
	rng := xrand.New(1)
	dead, err := failure.SampleCableDeaths(net, failure.S1(), 150, rng)
	if err != nil {
		t.Fatal(err)
	}
	coupled, dark, err := m.Cascade(net, dead, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dark < 0 {
		t.Error("negative dark count")
	}
	for i := range dead {
		if dead[i] && !coupled[i] {
			t.Fatal("cascade revived a dead cable")
		}
	}
	// input untouched
	dead2, _ := failure.SampleCableDeaths(net, failure.S1(), 150, xrand.New(1).Split(0))
	_ = dead2
}

func TestCascadeZeroGridFailure(t *testing.T) {
	w := subNet(t)
	net := w.Submarine
	m := DefaultModel([geo.NumBands]float64{})
	dead := make([]bool, len(net.Cables))
	coupled, dark, err := m.Cascade(net, dead, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if dark != 0 {
		t.Errorf("dark stations = %d with no grid failures", dark)
	}
	for _, d := range coupled {
		if d {
			t.Fatal("cables died without any failure source")
		}
	}
}

func TestCascadeTotalGridFailureNoBackup(t *testing.T) {
	w := subNet(t)
	net := w.Submarine
	m := DefaultModel([geo.NumBands]float64{1, 1, 1})
	m.BackupProb = 0
	dead := make([]bool, len(net.Cables))
	coupled, dark, err := m.Cascade(net, dead, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if dark != len(net.Nodes) {
		t.Errorf("dark = %d, want all %d stations", dark, len(net.Nodes))
	}
	for ci, d := range coupled {
		if !d {
			t.Fatalf("cable %d survived a total blackout", ci)
		}
	}
}

func TestCascadeLengthMismatch(t *testing.T) {
	w := subNet(t)
	m := DefaultModel(s1Probs())
	if _, _, err := m.Cascade(w.Submarine, make([]bool, 2), xrand.New(1)); err == nil {
		t.Error("want length mismatch error")
	}
}

func TestCompareAmplifies(t *testing.T) {
	w := subNet(t)
	net := w.Submarine
	m := DefaultModel(s1Probs())
	amp, err := Compare(net, failure.S2(), m, 150, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if amp.Factor() < 1 {
		t.Errorf("grid coupling should amplify failures: factor %v", amp.Factor())
	}
	if amp.CableFracCoupled.Mean() < amp.CableFracAlone.Mean() {
		t.Error("coupled mean below alone mean")
	}
	if _, err := Compare(net, failure.S2(), m, 150, 0, 1); err == nil {
		t.Error("want trials error")
	}
}

func TestFactorEdgeCases(t *testing.T) {
	var a Amplification
	if a.Factor() != 1 {
		t.Errorf("empty amplification factor = %v, want 1", a.Factor())
	}
	a.CableFracCoupled.Add(0.5)
	a.CableFracAlone.Add(0)
	if a.Factor() < 1e6 {
		t.Error("coupling-only failures should report a huge factor")
	}
}
