// Package grid implements the §5.5 extension: coupling between power grids
// and the Internet during a solar superstorm. Landing stations draw
// utility power; when a regional grid collapses (transformer damage from
// the same GIC), stations without adequate backup go dark and every cable
// landing there is unusable even if its repeaters survived. The package
// quantifies how much grid coupling amplifies Internet failures.
package grid

import (
	"errors"
	"fmt"

	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/stats"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Region is one power-grid interconnection area. The paper notes the US
// alone has three: grids are regional, unlike the global Internet.
type Region struct {
	Name string
	// Area and Band scope the region: landing stations match on both.
	Area geo.Region
	Band geo.Band
	// FailProb is the probability the regional grid collapses during the
	// storm.
	FailProb float64
}

// Model is a set of grid regions plus station backup behaviour.
type Model struct {
	Regions []Region
	// BackupProb is the probability a landing station rides through a
	// grid collapse on generators/batteries for the storm's duration.
	BackupProb float64
}

// DefaultModel derives grid-region failure probabilities from the same
// latitude-band logic as the cable models: transformers are the canonical
// GIC casualty (§2.2: Quebec 1989), so a band's grid is at least as
// exposed as its repeaters. probs is indexed by geo.Band, e.g. the S1
// vector for a Carrington-class event.
func DefaultModel(probs [geo.NumBands]float64) Model {
	m := Model{BackupProb: 0.6}
	// Remote island stations classify as RegionOcean; they run on island
	// utilities that are just as GIC-exposed, so they get regions too.
	areas := append(geo.Regions(), geo.RegionOcean)
	for _, area := range areas {
		for band := geo.Band(0); band < geo.NumBands; band++ {
			m.Regions = append(m.Regions, Region{
				Name:     fmt.Sprintf("%s/%s", area, band),
				Area:     area,
				Band:     band,
				FailProb: probs[band],
			})
		}
	}
	return m
}

// Validate reports model errors.
func (m Model) Validate() error {
	if len(m.Regions) == 0 {
		return errors.New("grid: no regions")
	}
	if m.BackupProb < 0 || m.BackupProb > 1 {
		return errors.New("grid: backup probability out of [0,1]")
	}
	for _, r := range m.Regions {
		if r.FailProb < 0 || r.FailProb > 1 {
			return fmt.Errorf("grid: region %q failure probability %v", r.Name, r.FailProb)
		}
	}
	return nil
}

// regionOf maps a landing station to its grid region index, or -1 for
// stations with no coordinates (never cascaded).
func (m Model) regionOf(nd topology.Node) int {
	if !nd.HasCoord {
		return -1
	}
	area := geo.RegionOf(nd.Coord)
	band := geo.BandOfCoord(nd.Coord)
	for i, r := range m.Regions {
		if r.Area == area && r.Band == band {
			return i
		}
	}
	return -1
}

// Cascade samples one grid realisation and extends a cable-death vector:
// a cable also dies if any of its landing stations sits in a collapsed
// grid region and has no working backup. The input vector is not
// modified; the extended copy is returned along with the count of
// stations that went dark.
func (m Model) Cascade(net *topology.Network, cableDead []bool, rng *xrand.Source) ([]bool, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	if len(cableDead) != len(net.Cables) {
		return nil, 0, errors.New("grid: death vector length mismatch")
	}
	regionDown := make([]bool, len(m.Regions))
	for i, r := range m.Regions {
		regionDown[i] = rng.Bool(r.FailProb)
	}
	dark := make([]bool, len(net.Nodes))
	darkCount := 0
	for i, nd := range net.Nodes {
		ri := m.regionOf(nd)
		if ri < 0 || !regionDown[ri] {
			continue
		}
		if rng.Bool(m.BackupProb) {
			continue // generators carried the station
		}
		dark[i] = true
		darkCount++
	}
	out := make([]bool, len(cableDead))
	copy(out, cableDead)
	for ci, c := range net.Cables {
		if out[ci] {
			continue
		}
		for _, s := range c.Segments {
			if dark[s.A] || dark[s.B] {
				out[ci] = true
				break
			}
		}
	}
	return out, darkCount, nil
}

// Amplification compares Internet failures with and without grid coupling.
type Amplification struct {
	// CableFracAlone / CableFracCoupled are mean dead-cable fractions.
	CableFracAlone   stats.Running
	CableFracCoupled stats.Running
	// StationsDark is the mean count of unpowered landing stations.
	StationsDark stats.Running
}

// Factor returns coupled/alone mean cable failure (>= 1 when coupling
// makes things worse). Returns 1 when nothing failed in either mode.
func (a *Amplification) Factor() float64 {
	if a.CableFracAlone.Mean() == 0 {
		if a.CableFracCoupled.Mean() == 0 {
			return 1
		}
		return 1e9 // failures appear only through coupling
	}
	return a.CableFracCoupled.Mean() / a.CableFracAlone.Mean()
}

// Compare runs trials of the repeater model alone vs coupled with the
// grid model.
func Compare(net *topology.Network, fm failure.Model, gm Model, spacingKm float64, trials int, seed uint64) (*Amplification, error) {
	if trials <= 0 {
		return nil, errors.New("grid: trials must be positive")
	}
	if err := gm.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(seed)
	amp := &Amplification{}
	for ti := 0; ti < trials; ti++ {
		rng := root.Split(uint64(ti))
		dead, err := failure.SampleCableDeaths(net, fm, spacingKm, rng)
		if err != nil {
			return nil, err
		}
		amp.CableFracAlone.Add(failure.Evaluate(net, dead).CableFrac)
		coupled, dark, err := gm.Cascade(net, dead, rng)
		if err != nil {
			return nil, err
		}
		amp.CableFracCoupled.Add(failure.Evaluate(net, coupled).CableFrac)
		amp.StationsDark.Add(float64(dark))
	}
	return amp, nil
}
