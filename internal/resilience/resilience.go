// Package resilience implements the §5.4 extension: standardised
// large-scale failure tests for geo-distributed Internet systems. Current
// fault-tolerance practice assumes a handful of independent site failures;
// a solar superstorm partitions the wide-area network itself. The tests
// here measure, under storm-scale correlated failures, what fraction of
// the (still-powered) Internet can reach at least one replica of a
// service.
package resilience

import (
	"errors"
	"fmt"
	"sort"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/graph"
	"gicnet/internal/stats"
	"gicnet/internal/xrand"
)

// Placement is a named set of service replica locations.
type Placement struct {
	Name  string
	Sites []dataset.Site
}

// GooglePlacement wraps Google's data center sites as a Placement.
func GooglePlacement() Placement {
	return Placement{Name: "google", Sites: dataset.GoogleDataCenters()}
}

// FacebookPlacement wraps Facebook's sites as a Placement.
func FacebookPlacement() Placement {
	return Placement{Name: "facebook", Sites: dataset.FacebookDataCenters()}
}

// Result summarises a placement's availability under a storm model.
type Result struct {
	Placement string
	Model     string
	// Availability aggregates per-trial reachable-user fractions: the
	// share of surviving landing points whose partition contains at
	// least one replica.
	Availability stats.Running
	// WorstTrial is the minimum availability seen.
	WorstTrial float64
	// PartitionsServed is the mean fraction of partitions containing a
	// replica (an unserved partition is a disconnected landmass whose
	// users lose the service entirely, §5.2).
	PartitionsServed stats.Running
}

// Evaluate runs the standardised storm test: trials of cable failures on
// the submarine network, measuring service availability for the placement.
func Evaluate(w *dataset.World, p Placement, m failure.Model, spacingKm float64, trials int, seed uint64) (*Result, error) {
	if len(p.Sites) == 0 {
		return nil, errors.New("resilience: placement has no sites")
	}
	if trials <= 0 {
		return nil, errors.New("resilience: trials must be positive")
	}
	net := w.Submarine
	g := net.Graph()

	// Map each replica site to its nearest landing point.
	replicaNodes := make([]int, 0, len(p.Sites))
	for _, s := range p.Sites {
		best, bestD := -1, 1e18
		for i, nd := range net.Nodes {
			if !nd.HasCoord {
				continue
			}
			if d := geo.Haversine(nd.Coord, s.Coord); d < bestD {
				bestD, best = d, i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("resilience: site %q has no reachable landing point", s.Name)
		}
		replicaNodes = append(replicaNodes, best)
	}

	res := &Result{Placement: p.Name, Model: m.Name(), WorstTrial: 1}
	root := xrand.New(seed)
	for ti := 0; ti < trials; ti++ {
		dead, err := failure.SampleCableDeaths(net, m, spacingKm, root.Split(uint64(ti)))
		if err != nil {
			return nil, err
		}
		mask := net.AliveMask(dead)
		labels, _ := g.Components(mask)

		// Partitions that contain a replica.
		served := map[int]bool{}
		for _, rn := range replicaNodes {
			served[labels[rn]] = true
		}
		// Users: landing points that still have a live cable.
		iso := map[int]bool{}
		for _, n := range net.UnreachableNodes(dead) {
			iso[n] = true
		}
		users, reachable := 0, 0
		partitions := map[int]bool{}
		for i := range net.Nodes {
			if iso[i] || g.Degree(graph.NodeID(i)) == 0 {
				continue
			}
			users++
			partitions[labels[i]] = true
			if served[labels[i]] {
				reachable++
			}
		}
		avail := 1.0
		if users > 0 {
			avail = float64(reachable) / float64(users)
		}
		res.Availability.Add(avail)
		if avail < res.WorstTrial {
			res.WorstTrial = avail
		}
		servedCount := 0
		for part := range partitions {
			if served[part] {
				servedCount++
			}
		}
		if len(partitions) > 0 {
			res.PartitionsServed.Add(float64(servedCount) / float64(len(partitions)))
		}
	}
	return res, nil
}

// Suite runs a placement against every reference failure state, severe
// first: S1, S2 and a uniform 1% baseline.
func Suite(w *dataset.World, p Placement, spacingKm float64, trials int, seed uint64) ([]*Result, error) {
	models := []failure.Model{failure.S1(), failure.S2(), failure.Uniform{P: 0.01}}
	out := make([]*Result, 0, len(models))
	for _, m := range models {
		r, err := Evaluate(w, p, m, spacingKm, trials, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Rank evaluates several placements under one model and orders them by
// mean availability, best first.
func Rank(w *dataset.World, ps []Placement, m failure.Model, spacingKm float64, trials int, seed uint64) ([]*Result, error) {
	out := make([]*Result, 0, len(ps))
	for _, p := range ps {
		r, err := Evaluate(w, p, m, spacingKm, trials, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Availability.Mean() > out[j].Availability.Mean()
	})
	return out, nil
}
