package resilience

import (
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
)

func world(t *testing.T) *dataset.World {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEvaluateValidation(t *testing.T) {
	w := world(t)
	if _, err := Evaluate(w, Placement{Name: "empty"}, failure.S1(), 150, 5, 1); err == nil {
		t.Error("want empty placement error")
	}
	if _, err := Evaluate(w, GooglePlacement(), failure.S1(), 150, 0, 1); err == nil {
		t.Error("want trials error")
	}
}

func TestEvaluateNoFailures(t *testing.T) {
	w := world(t)
	r, err := Evaluate(w, GooglePlacement(), failure.Uniform{P: 0}, 150, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Availability.Mean() != 1 || r.WorstTrial != 1 {
		t.Errorf("intact availability = %v / worst %v", r.Availability.Mean(), r.WorstTrial)
	}
	if r.PartitionsServed.Mean() != 1 {
		t.Errorf("partitions served = %v", r.PartitionsServed.Mean())
	}
}

func TestEvaluateBounds(t *testing.T) {
	w := world(t)
	r, err := Evaluate(w, FacebookPlacement(), failure.S1(), 150, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Availability.Mean()
	if m < 0 || m > 1 {
		t.Errorf("availability = %v", m)
	}
	if r.WorstTrial > m {
		t.Errorf("worst trial %v exceeds mean %v", r.WorstTrial, m)
	}
	// under S1 some availability must be lost
	if m == 1 {
		t.Error("S1 storm cost no availability at all")
	}
}

func TestGoogleBeatsFacebookUnderStorm(t *testing.T) {
	// §4.4.2 simulated rather than scored: Google's hemispheric spread
	// yields at least Facebook's availability under a severe storm.
	w := world(t)
	ranked, err := Rank(w, []Placement{FacebookPlacement(), GooglePlacement()}, failure.S1(), 150, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatal("missing results")
	}
	if ranked[0].Placement != "google" {
		t.Errorf("ranking = %s > %s; expected google first (%.3f vs %.3f)",
			ranked[0].Placement, ranked[1].Placement,
			ranked[0].Availability.Mean(), ranked[1].Availability.Mean())
	}
}

func TestSuiteSeverityOrdering(t *testing.T) {
	w := world(t)
	rs, err := Suite(w, GooglePlacement(), 150, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("suite results = %d", len(rs))
	}
	s1, s2 := rs[0], rs[1]
	if s1.Availability.Mean() > s2.Availability.Mean()+1e-9 {
		t.Errorf("S1 availability (%v) should not exceed S2 (%v)",
			s1.Availability.Mean(), s2.Availability.Mean())
	}
}

func TestSinglePointPlacementFragile(t *testing.T) {
	// One replica in the far north: storm availability collapses relative
	// to a hemispherically spread placement.
	w := world(t)
	northOnly := Placement{Name: "north-only", Sites: []dataset.Site{
		{Name: "lulea", Coord: geo.Coord{Lat: 65.58, Lon: 22.15}},
	}}
	spread := Placement{Name: "spread", Sites: []dataset.Site{
		{Name: "singapore", Coord: geo.Coord{Lat: 1.35, Lon: 103.8}},
		{Name: "sao-paulo", Coord: geo.Coord{Lat: -23.5, Lon: -46.6}},
		{Name: "johannesburg", Coord: geo.Coord{Lat: -26.2, Lon: 28.0}},
		{Name: "virginia", Coord: geo.Coord{Lat: 39.0, Lon: -77.5}},
	}}
	n, err := Evaluate(w, northOnly, failure.S1(), 150, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Evaluate(w, spread, failure.S1(), 150, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n.Availability.Mean() >= s.Availability.Mean() {
		t.Errorf("north-only availability %v should trail spread %v",
			n.Availability.Mean(), s.Availability.Mean())
	}
}
