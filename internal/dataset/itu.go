package dataset

import (
	"fmt"

	"gicnet/internal/geo"
	"gicnet/internal/population"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// ITUConfig tunes the synthetic global land fiber network. Defaults are
// calibrated to the paper's ITU dataset statistics: 11,314 nodes and 11,737
// links, 8,443 links under 150 km, mean 0.63 repeaters per cable at 150 km.
// Like the real TIES dataset, the generated network exposes no coordinates
// (§4.1.3) — they exist only transiently to compute road-following lengths.
type ITUConfig struct {
	// Nodes and Links are the global totals (paper: 11314 / 11737).
	Nodes int
	// Links is the fiber link count.
	Links int
	// Clusters is the number of regional chains (national backbones).
	Clusters int
	// HopMedianKm / HopSigma shape intra-cluster link lengths.
	HopMedianKm float64
	HopSigma    float64
	// InterMedianKm / InterSigma shape inter-cluster links.
	InterMedianKm float64
	InterSigma    float64
	// RoadFactor converts geodesics to route lengths.
	RoadFactor float64
}

// DefaultITUConfig returns the calibrated defaults.
func DefaultITUConfig() ITUConfig {
	return ITUConfig{
		Nodes:         11314,
		Links:         11737,
		Clusters:      600,
		HopMedianKm:   70,
		HopSigma:      0.7,
		InterMedianKm: 250,
		InterSigma:    0.8,
		RoadFactor:    1.3,
	}
}

// GenerateITU synthesises the global land fiber network as population-
// weighted regional chains joined by longer inter-regional links.
func GenerateITU(cfg ITUConfig, rng *xrand.Source) (*topology.Network, error) {
	if cfg.Clusters <= 0 || cfg.Nodes < 2*cfg.Clusters {
		return nil, fmt.Errorf("dataset: ITU config needs >= 2 nodes per cluster")
	}
	chainLinks := cfg.Nodes - cfg.Clusters
	if cfg.Links < chainLinks {
		return nil, fmt.Errorf("dataset: %d links cannot cover %d chain hops", cfg.Links, chainLinks)
	}
	pop, err := population.New(2)
	if err != nil {
		return nil, err
	}

	net := &topology.Network{Name: "itu"}
	// Transient coordinates for length computation only.
	coords := make([]geo.Coord, 0, cfg.Nodes)
	clusterOf := make([]int, 0, cfg.Nodes)
	clusterNodes := make([][]int, cfg.Clusters)

	addNode := func(c geo.Coord, cluster int) int {
		idx := len(net.Nodes)
		net.Nodes = append(net.Nodes, topology.Node{
			Name: fmt.Sprintf("itu-c%03d-n%02d", cluster, len(clusterNodes[cluster])),
			// HasCoord deliberately false: the ITU dataset has no
			// usable coordinates (§4.1.3).
			HasCoord: false,
		})
		coords = append(coords, c)
		clusterOf = append(clusterOf, cluster)
		clusterNodes[cluster] = append(clusterNodes[cluster], idx)
		return idx
	}

	// Distribute nodes over clusters: every cluster gets 2, the remainder
	// is spread by a weighted pass so sizes vary like national backbones.
	sizes := make([]int, cfg.Clusters)
	for i := range sizes {
		sizes[i] = 2
	}
	for extra := cfg.Nodes - 2*cfg.Clusters; extra > 0; extra-- {
		sizes[rng.Intn(cfg.Clusters)]++
	}

	linkID := 0
	addCable := func(a, b int, lengthKm float64) {
		net.Cables = append(net.Cables, topology.Cable{
			Name:        fmt.Sprintf("itu-link-%05d", linkID),
			Segments:    []topology.Segment{{A: a, B: b, LengthKm: lengthKm}},
			KnownLength: true,
		})
		linkID++
	}

	for cl := 0; cl < cfg.Clusters; cl++ {
		lat := pop.SampleLat(rng)
		lon := rng.Range(-180, 180)
		cur := geo.Coord{Lat: clampLat(lat), Lon: clampLon(lon)}
		prev := addNode(cur, cl)
		for k := 1; k < sizes[cl]; k++ {
			hop := rng.LogNormal(lnOf(cfg.HopMedianKm), cfg.HopSigma)
			if hop > 800 {
				hop = 800
			}
			cur = geo.Destination(cur, rng.Range(0, 360), hop)
			ni := addNode(cur, cl)
			addCable(prev, ni, hop*cfg.RoadFactor)
			prev = ni
		}
	}

	// First, a spanning pass over clusters guarantees one connected
	// network: each cluster joins the nearest already-connected cluster.
	centers := make([]geo.Coord, cfg.Clusters)
	for cl, nodes := range clusterNodes {
		centers[cl] = coords[nodes[len(nodes)/2]]
	}
	// Prim's algorithm over cluster centers: O(C^2) total.
	inTree := make([]bool, cfg.Clusters)
	inTree[0] = true
	nearestTree := make([]int, cfg.Clusters)    // nearest in-tree cluster
	distToTree := make([]float64, cfg.Clusters) // distance to it
	for cl := 1; cl < cfg.Clusters; cl++ {
		nearestTree[cl] = 0
		distToTree[cl] = geo.Haversine(centers[cl], centers[0])
	}
	spanning := 0
	for added := 1; added < cfg.Clusters; added++ {
		bestTo, bestD := -1, 1e18
		for cl := 0; cl < cfg.Clusters; cl++ {
			if !inTree[cl] && distToTree[cl] < bestD {
				bestD, bestTo = distToTree[cl], cl
			}
		}
		bestFrom := nearestTree[bestTo]
		a := nearestNodeTo(coords, clusterNodes[bestFrom], centers[bestTo])
		b := nearestNodeTo(coords, clusterNodes[bestTo], coords[a])
		d := geo.Haversine(coords[a], coords[b]) * cfg.RoadFactor
		if d < 20 {
			d = 20
		}
		addCable(a, b, d)
		spanning++
		inTree[bestTo] = true
		for cl := 0; cl < cfg.Clusters; cl++ {
			if inTree[cl] {
				continue
			}
			if nd := geo.Haversine(centers[cl], centers[bestTo]); nd < distToTree[cl] {
				distToTree[cl], nearestTree[cl] = nd, bestTo
			}
		}
	}

	// Remaining inter-cluster links join a random node of one cluster to a
	// lognormal-target-distance node of another cluster.
	inter := cfg.Links - chainLinks - spanning
	for k := 0; k < inter; k++ {
		a := rng.Intn(len(net.Nodes))
		target := rng.LogNormal(lnOf(cfg.InterMedianKm), cfg.InterSigma)
		if target > 3000 {
			target = 3000
		}
		best, bestScore := -1, -1.0
		// Sample candidates rather than scanning 11k nodes per link.
		for probe := 0; probe < 64; probe++ {
			j := rng.Intn(len(net.Nodes))
			if clusterOf[j] == clusterOf[a] {
				continue
			}
			d := geo.Haversine(coords[a], coords[j])
			z := (lnOf(d+1) - lnOf(target)) / 0.5
			score := expNeg(z * z / 2)
			if score > bestScore {
				bestScore, best = score, j
			}
		}
		if best < 0 {
			continue
		}
		d := geo.Haversine(coords[a], coords[best]) * cfg.RoadFactor
		if d < 20 {
			d = 20
		}
		addCable(a, best, d)
	}

	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: generated ITU network invalid: %w", err)
	}
	return net, nil
}

// nearestNodeTo returns the member of candidates whose coordinate is
// closest to target.
func nearestNodeTo(coords []geo.Coord, candidates []int, target geo.Coord) int {
	best, bestD := candidates[0], 1e18
	for _, n := range candidates {
		d := geo.Haversine(coords[n], target)
		if d < bestD {
			bestD, best = d, n
		}
	}
	return best
}
