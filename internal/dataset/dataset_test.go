package dataset

import (
	"math"
	"sort"
	"testing"

	"gicnet/internal/geo"
	"gicnet/internal/stats"
	"gicnet/internal/xrand"
)

// world is the shared default world; generating it once keeps the test
// suite fast.
func world(t *testing.T) *World {
	t.Helper()
	w, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v +- %v", name, got, want, tol)
	}
}

func TestAnchorsValid(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range anchors {
		if seen[a.Name] {
			t.Errorf("duplicate anchor %q", a.Name)
		}
		seen[a.Name] = true
		if err := a.Coord.Validate(); err != nil {
			t.Errorf("anchor %q: %v", a.Name, err)
		}
		if a.Weight <= 0 {
			t.Errorf("anchor %q: weight %v", a.Name, a.Weight)
		}
		if a.Country == "" {
			t.Errorf("anchor %q: empty country", a.Name)
		}
	}
	if len(anchors) < 120 {
		t.Errorf("only %d anchors; need broad coverage", len(anchors))
	}
}

func TestAnchorByName(t *testing.T) {
	a, ok := AnchorByName("singapore")
	if !ok || a.Country != "sg" {
		t.Errorf("AnchorByName(singapore) = %+v, %v", a, ok)
	}
	if _, ok := AnchorByName("atlantis"); ok {
		t.Error("AnchorByName(atlantis) should miss")
	}
}

func TestTrunksReferToRealAnchors(t *testing.T) {
	for _, tr := range trunks {
		if len(tr.Path) < 2 {
			t.Errorf("trunk %q has fewer than 2 landings", tr.Name)
		}
		if tr.LengthKm <= 0 {
			t.Errorf("trunk %q has no length", tr.Name)
		}
		for _, city := range tr.Path {
			if _, ok := AnchorByName(city); !ok {
				t.Errorf("trunk %q references unknown anchor %q", tr.Name, city)
			}
		}
	}
}

func TestTrunkLengthsPhysical(t *testing.T) {
	// A cable cannot be shorter than the great-circle distance through its
	// landings; a stated length below ~95% of the geodesic path means a
	// data-entry error in the trunk table. (Slack >5x geodesic would be
	// suspicious too, but ring systems legitimately run long.)
	for _, tr := range trunks {
		geod := 0.0
		for i := 0; i+1 < len(tr.Path); i++ {
			a, okA := AnchorByName(tr.Path[i])
			b, okB := AnchorByName(tr.Path[i+1])
			if !okA || !okB {
				t.Fatalf("trunk %q references unknown anchor", tr.Name)
			}
			geod += geo.Haversine(a.Coord, b.Coord)
		}
		if tr.LengthKm < geod*0.95 {
			t.Errorf("trunk %q stated %v km but its landings span %.0f km",
				tr.Name, tr.LengthKm, geod)
		}
		if tr.LengthKm > geod*6+500 {
			t.Errorf("trunk %q stated %v km for a %.0f km span; implausible slack",
				tr.Name, tr.LengthKm, geod)
		}
	}
}

func TestSubmarineCalibration(t *testing.T) {
	w := world(t)
	net := w.Submarine

	if len(net.Nodes) != 1241 {
		t.Errorf("landing points = %d, want 1241", len(net.Nodes))
	}
	if len(net.Cables) != 470 {
		t.Errorf("cables = %d, want 470", len(net.Cables))
	}
	lengths := net.CableLengths()
	if len(lengths) != 441 {
		t.Errorf("known lengths = %d, want 441", len(lengths))
	}
	sort.Float64s(lengths)
	approx(t, "median length", lengths[len(lengths)/2], 775, 300)
	approx(t, "p99 length", lengths[int(0.99*float64(len(lengths)))], 28000, 4000)
	approx(t, "max length", lengths[len(lengths)-1], 39000, 1500)
	approx(t, "repeater-free cables @150", float64(net.CablesWithoutRepeaters(150)), 82, 20)
	approx(t, "mean repeaters @150", net.MeanRepeatersPerCable(150), 22.3, 4)

	coords := net.EndpointCoords()
	approx(t, "endpoints above 40", geo.FractionAbove(coords, 40), 0.31, 0.06)
	oneHop := float64(len(net.OneHopEndpointCoords(40))) / float64(len(coords))
	approx(t, "one-hop above 40", oneHop, 0.45, 0.07)
}

func TestSubmarineConnected(t *testing.T) {
	net := world(t).Submarine
	if got := net.Graph().LargestComponentSize(nil); got != len(net.Nodes) {
		t.Errorf("largest component = %d of %d nodes", got, len(net.Nodes))
	}
}

func TestSubmarineCountriesPresent(t *testing.T) {
	net := world(t).Submarine
	for _, cc := range []string{"us", "gb", "sg", "in", "cn", "br", "za", "au", "nz", "pt", "jp"} {
		if len(net.NodesOfCountry(cc)) == 0 {
			t.Errorf("no landing points in %q", cc)
		}
	}
}

func TestSubmarineNamedTrunksPreserved(t *testing.T) {
	net := world(t).Submarine
	byName := map[string]int{}
	for i, c := range net.Cables {
		byName[c.Name] = i
	}
	tests := []struct {
		name string
		want float64
	}{
		{"ellalink", 6200},
		{"columbus-iii", 9833},
		{"sea-me-we-3", 39000},
		{"monet", 10556},
	}
	for _, tt := range tests {
		ci, ok := byName[tt.name]
		if !ok {
			t.Errorf("trunk %q missing from generated network", tt.name)
			continue
		}
		got := net.Cables[ci].LengthKm()
		// Branch attachment may extend procedural cables but must not
		// distort named trunks by more than a stray co-location branch.
		if math.Abs(got-tt.want) > tt.want*0.05+50 {
			t.Errorf("trunk %q length = %v, want ~%v", tt.name, got, tt.want)
		}
	}
}

func TestSubmarineShanghaiCablesLong(t *testing.T) {
	// §4.3.4: every cable touching Shanghai is a very long multi-city
	// system (>= ~28000 km).
	net := world(t).Submarine
	var shanghai []int
	for i, nd := range net.Nodes {
		if nd.Country == "cn" && len(nd.Name) >= 11 && nd.Name[3:11] == "shanghai" {
			shanghai = append(shanghai, i)
		}
	}
	if len(shanghai) == 0 {
		t.Fatal("no shanghai landing points")
	}
	cables := net.CablesTouching(shanghai)
	if len(cables) == 0 {
		t.Fatal("no cables touch shanghai")
	}
	for _, ci := range cables {
		if l := net.Cables[ci].LengthKm(); l < 27000 {
			t.Errorf("shanghai cable %q length %v, want >= ~28000", net.Cables[ci].Name, l)
		}
	}
}

func TestSubmarineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double world generation skipped in short mode")
	}
	a, err := GenerateSubmarine(DefaultSubmarineConfig(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSubmarine(DefaultSubmarineConfig(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) || len(a.Cables) != len(b.Cables) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	for i := range a.Cables {
		if a.Cables[i].Name != b.Cables[i].Name || a.Cables[i].LengthKm() != b.Cables[i].LengthKm() {
			t.Fatalf("cable %d differs", i)
		}
	}
}

func TestSubmarineRejectsTinyCableBudget(t *testing.T) {
	cfg := DefaultSubmarineConfig()
	cfg.Cables = 10
	if _, err := GenerateSubmarine(cfg, xrand.New(1)); err == nil {
		t.Error("want error when cables < trunk count")
	}
}

func TestIntertubesCalibration(t *testing.T) {
	w := world(t)
	net := w.Intertubes
	if len(net.Nodes) != 273 {
		t.Errorf("nodes = %d, want 273", len(net.Nodes))
	}
	if len(net.Cables) != 542 {
		t.Errorf("links = %d, want 542", len(net.Cables))
	}
	lengths := net.CableLengths()
	under150 := 0
	for _, l := range lengths {
		if l < 150 {
			under150++
		}
	}
	approx(t, "links under 150km", float64(under150), 258, 70)
	approx(t, "mean repeaters @150", net.MeanRepeatersPerCable(150), 1.7, 0.6)
	approx(t, "endpoints above 40", geo.FractionAbove(net.EndpointCoords(), 40), 0.40, 0.07)
	for _, nd := range net.Nodes {
		if nd.Country != "us" {
			t.Fatalf("non-US node %q in intertubes", nd.Name)
		}
	}
}

func TestIntertubesConnected(t *testing.T) {
	net := world(t).Intertubes
	if got := net.Graph().LargestComponentSize(nil); got != len(net.Nodes) {
		t.Errorf("largest component = %d of %d", got, len(net.Nodes))
	}
}

func TestIntertubesConfigValidation(t *testing.T) {
	cfg := DefaultIntertubesConfig()
	cfg.Nodes = 10
	if _, err := GenerateIntertubes(cfg, xrand.New(1)); err == nil {
		t.Error("want error for too few nodes")
	}
	cfg = DefaultIntertubesConfig()
	cfg.Links = 5
	if _, err := GenerateIntertubes(cfg, xrand.New(1)); err == nil {
		t.Error("want error for too few links")
	}
}

func TestITUCalibration(t *testing.T) {
	net := world(t).ITU
	if len(net.Nodes) != 11314 {
		t.Errorf("nodes = %d, want 11314", len(net.Nodes))
	}
	if len(net.Cables) != 11737 {
		t.Errorf("links = %d, want 11737", len(net.Cables))
	}
	lengths := net.CableLengths()
	under150 := 0
	for _, l := range lengths {
		if l < 150 {
			under150++
		}
	}
	approx(t, "links under 150km", float64(under150), 8443, 600)
	approx(t, "mean repeaters @150", net.MeanRepeatersPerCable(150), 0.63, 0.2)
	// The ITU dataset exposes no coordinates.
	for _, nd := range net.Nodes {
		if nd.HasCoord {
			t.Fatal("ITU node exposes coordinates; dataset must be coordinate-free")
		}
	}
}

func TestITUConnected(t *testing.T) {
	net := world(t).ITU
	if got := net.Graph().LargestComponentSize(nil); got != len(net.Nodes) {
		t.Errorf("largest component = %d of %d", got, len(net.Nodes))
	}
}

func TestITUConfigValidation(t *testing.T) {
	cfg := DefaultITUConfig()
	cfg.Nodes = cfg.Clusters // fewer than 2 per cluster
	if _, err := GenerateITU(cfg, xrand.New(1)); err == nil {
		t.Error("want error for undersized clusters")
	}
	cfg = DefaultITUConfig()
	cfg.Links = 10
	if _, err := GenerateITU(cfg, xrand.New(1)); err == nil {
		t.Error("want error for too few links")
	}
}

func TestRouterCalibration(t *testing.T) {
	cat := world(t).Routers
	if len(cat.ASes) != 8192 {
		t.Errorf("AS count = %d, want 8192", len(cat.ASes))
	}
	if n := cat.RouterCount(); n < 100000 || n > 400000 {
		t.Errorf("router count = %d, want 100k-400k", n)
	}
	coords := cat.RouterCoords()
	approx(t, "routers above 40", geo.FractionAbove(coords, 40), 0.38, 0.05)
	reach := cat.ASReachCurve([]float64{40})
	approx(t, "AS reach above 40", reach[0], 0.57, 0.06)

	spread := cat.SpreadSample()
	p50, err := stats.Percentile(spread, 50)
	if err != nil {
		t.Fatal(err)
	}
	p90, _ := stats.Percentile(spread, 90)
	approx(t, "spread p50", p50, 1.723, 0.7)
	approx(t, "spread p90", p90, 18.263, 6)
}

func TestRouterReachCurveMonotone(t *testing.T) {
	cat := world(t).Routers
	curve := cat.ASReachCurve(geo.DefaultThresholds())
	if curve[0] != 1 {
		t.Errorf("reach above 0 = %v, want 1 (every AS has a router)", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Errorf("reach curve increased at %d", i)
		}
	}
}

func TestRouterConfigValidation(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.ASCount = 0
	if _, err := GenerateRouters(cfg, xrand.New(1)); err == nil {
		t.Error("want error for zero ASes")
	}
}

func TestASHelpers(t *testing.T) {
	as := AS{
		ASN:  65000,
		Home: geo.Coord{Lat: 10, Lon: 0},
		Routers: []geo.Coord{
			{Lat: 10, Lon: 0}, {Lat: 12.5, Lon: 3}, {Lat: 8, Lon: -2},
		},
	}
	if got := as.LatitudeSpread(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("LatitudeSpread = %v, want 4.5", got)
	}
	if !as.PresenceAbove(12) || as.PresenceAbove(13) {
		t.Error("PresenceAbove thresholds wrong")
	}
}

func TestIXPCalibration(t *testing.T) {
	w := world(t)
	if len(w.IXPs) != 1026 {
		t.Errorf("IXPs = %d, want 1026", len(w.IXPs))
	}
	coords := SiteCoords(w.IXPs)
	approx(t, "IXPs above 40", geo.FractionAbove(coords, 40), 0.43, 0.06)
}

func TestIXPConfigValidation(t *testing.T) {
	if _, err := GenerateIXPs(IXPConfig{Count: 0}, xrand.New(1)); err == nil {
		t.Error("want error for zero IXPs")
	}
}

func TestDNSCalibration(t *testing.T) {
	w := world(t)
	if len(w.DNSRoots) != 13 {
		t.Fatalf("root letters = %d, want 13", len(w.DNSRoots))
	}
	total := 0
	for _, l := range w.DNSRoots {
		if len(l.Instances) == 0 {
			t.Errorf("letter %c has no instances", l.Letter)
		}
		total += len(l.Instances)
	}
	if total != 1076 {
		t.Errorf("instances = %d, want 1076", total)
	}
	// Every continent hosts instances; Africa fewer than North America.
	byRegion := map[geo.Region]int{}
	for _, c := range DNSInstanceCoords(w.DNSRoots) {
		byRegion[geo.RegionOf(c)]++
	}
	for _, r := range []geo.Region{geo.RegionNorthAmerica, geo.RegionEurope, geo.RegionAsia, geo.RegionAfrica, geo.RegionSouthAmerica, geo.RegionOceania} {
		if byRegion[r] == 0 {
			t.Errorf("no root instances in %v", r)
		}
	}
	if byRegion[geo.RegionAfrica] >= byRegion[geo.RegionNorthAmerica] {
		t.Errorf("Africa (%d) should host fewer instances than North America (%d)",
			byRegion[geo.RegionAfrica], byRegion[geo.RegionNorthAmerica])
	}
}

func TestDNSConfigValidation(t *testing.T) {
	if _, err := GenerateDNSRoots(DNSConfig{Instances: 5}, xrand.New(1)); err == nil {
		t.Error("want error for fewer instances than letters")
	}
}

func TestDataCentersEmbedded(t *testing.T) {
	g := GoogleDataCenters()
	f := FacebookDataCenters()
	if len(g) < 15 || len(f) < 12 {
		t.Fatalf("site counts: google %d, facebook %d", len(g), len(f))
	}
	for _, s := range append(append([]Site{}, g...), f...) {
		if err := s.Coord.Validate(); err != nil {
			t.Errorf("site %q: %v", s.Name, err)
		}
	}
	// §4.4.2: Google spans hemispheres (Chile, Singapore); Facebook has no
	// Africa or South America presence.
	southG := 0
	for _, s := range g {
		if s.Coord.Lat < 0 {
			southG++
		}
	}
	if southG == 0 {
		t.Error("google should have a southern-hemisphere site")
	}
	for _, s := range f {
		r := geo.RegionOf(s.Coord)
		if r == geo.RegionAfrica || r == geo.RegionSouthAmerica {
			t.Errorf("facebook site %q in %v; paper says none", s.Name, r)
		}
	}
}

func TestGenerateWorldIndependentStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("double world generation skipped in short mode")
	}
	// Changing only the router config must not change the submarine net.
	cfgA := DefaultWorldConfig()
	cfgB := DefaultWorldConfig()
	cfgB.Routers.ASCount = 512
	a, err := GenerateWorld(cfgA, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorld(cfgB, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Submarine.Nodes) != len(b.Submarine.Nodes) {
		t.Fatal("submarine shape changed")
	}
	for i := range a.Submarine.Nodes {
		if a.Submarine.Nodes[i] != b.Submarine.Nodes[i] {
			t.Fatal("router config perturbed the submarine stream")
		}
	}
	if len(b.Routers.ASes) != 512 {
		t.Fatalf("router override ignored: %d", len(b.Routers.ASes))
	}
}

func TestDefaultWorldCached(t *testing.T) {
	a, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Default()
	if a != b {
		t.Error("Default() should return the cached instance")
	}
	if a.Seed != DefaultSeed {
		t.Errorf("seed = %d", a.Seed)
	}
	if len(a.Networks()) != 3 {
		t.Errorf("Networks() = %d", len(a.Networks()))
	}
}
