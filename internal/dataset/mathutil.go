package dataset

import "math"

// lnOf is a readability alias for math.Log in generator code.
func lnOf(x float64) float64 { return math.Log(x) }

// expNeg returns e^-x.
func expNeg(x float64) float64 { return math.Exp(-x) }
