package dataset

import (
	"errors"
	"math"

	"gicnet/internal/geo"
	"gicnet/internal/population"
	"gicnet/internal/xrand"
)

// AS is one synthetic Autonomous System: a home location and the locations
// of its routers. It is the unit of the paper's Figure 9 analysis.
type AS struct {
	// ASN is a synthetic AS number.
	ASN int
	// Home is the operational centre of gravity.
	Home geo.Coord
	// Routers holds each router's location. Always non-empty.
	Routers []geo.Coord
}

// LatitudeSpread returns the difference between the highest and lowest
// router latitudes (Fig 9b's metric; 1 degree is about 111 km).
func (a *AS) LatitudeSpread() float64 {
	lo, hi := a.Routers[0].Lat, a.Routers[0].Lat
	for _, r := range a.Routers[1:] {
		if r.Lat < lo {
			lo = r.Lat
		}
		if r.Lat > hi {
			hi = r.Lat
		}
	}
	return hi - lo
}

// PresenceAbove reports whether any router sits above the absolute
// latitude threshold (Fig 9a's metric).
func (a *AS) PresenceAbove(threshold float64) bool {
	for _, r := range a.Routers {
		if r.AbsLat() > threshold {
			return true
		}
	}
	return false
}

// RouterCatalog is the synthetic stand-in for the CAIDA ITDK router and
// router-to-AS datasets, scaled down (the analysis is distributional, so
// counts scale freely; defaults: 8192 ASes, ~200k routers vs the paper's
// 61,448 and 46M).
type RouterCatalog struct {
	ASes []AS
}

// RouterConfig tunes the synthetic router catalog.
type RouterConfig struct {
	// ASCount is the number of Autonomous Systems.
	ASCount int
	// MeanRoutersPerAS sets the scale of the Zipf-like size distribution.
	MeanRoutersPerAS float64
	// SmallASNorthFrac / LargeASNorthFrac are the probabilities that a
	// small (or large) AS is homed in the northern infrastructure belt
	// rather than following population. Two knobs because the router
	// marginal (38% above 40) is driven by large ASes while the AS-count
	// marginal (57% with presence above 40) is driven by small ones.
	SmallASNorthFrac float64
	LargeASNorthFrac float64
	// LargeASThreshold splits small from large, in routers.
	LargeASThreshold int
	// SpreadMedianDeg / SpreadSigma shape the lognormal nominal latitude
	// spread (Fig 9b: 50% under 1.723 deg, 90% under 18.263 deg).
	SpreadMedianDeg float64
	SpreadSigma     float64
}

// DefaultRouterConfig returns the calibrated defaults.
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{
		ASCount:          8192,
		MeanRoutersPerAS: 24,
		SmallASNorthFrac: 0.52,
		LargeASNorthFrac: 0.16,
		LargeASThreshold: 24,
		SpreadMedianDeg:  2.1,
		SpreadSigma:      1.75,
	}
}

// GenerateRouters synthesises the router catalog.
func GenerateRouters(cfg RouterConfig, rng *xrand.Source) (*RouterCatalog, error) {
	if cfg.ASCount <= 0 || cfg.MeanRoutersPerAS <= 0 {
		return nil, errors.New("dataset: router config must be positive")
	}
	pop, err := population.New(2)
	if err != nil {
		return nil, err
	}
	cat := &RouterCatalog{ASes: make([]AS, 0, cfg.ASCount)}
	for i := 0; i < cfg.ASCount; i++ {
		size := zipfSize(rng, cfg.MeanRoutersPerAS)
		north := cfg.SmallASNorthFrac
		if size >= cfg.LargeASThreshold {
			north = cfg.LargeASNorthFrac
		}
		home := sampleInfraCoord(rng, pop, north)
		spread := rng.LogNormal(lnOf(cfg.SpreadMedianDeg), cfg.SpreadSigma)
		if spread > 130 {
			spread = 130
		}
		as := AS{ASN: 64512 + i, Home: home, Routers: make([]geo.Coord, 0, size)}
		as.Routers = append(as.Routers, home)
		for r := 1; r < size; r++ {
			lat := clampLat(home.Lat + rng.Range(-spread/2, spread/2))
			lon := clampLon(home.Lon + rng.Range(-spread, spread)*1.5)
			as.Routers = append(as.Routers, geo.Coord{Lat: lat, Lon: lon})
		}
		cat.ASes = append(cat.ASes, as)
	}
	return cat, nil
}

// zipfSize draws an AS router count from a heavy-tailed distribution with
// roughly the requested mean: most ASes are tiny, a few are continental.
func zipfSize(rng *xrand.Source, mean float64) int {
	// Pareto with alpha ~1.35 truncated at 20000, shifted to minimum 1.
	const alpha = 1.35
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	x := math.Pow(u, -1/alpha) // Pareto(1, alpha)
	// Scale so the truncated mean lands near the requested mean.
	size := int(x * mean / 4.0)
	if size < 1 {
		size = 1
	}
	if size > 20000 {
		size = 20000
	}
	return size
}

// sampleInfraCoord draws an infrastructure location: with probability
// northFrac from the northern infrastructure belt (N(50, 8) latitude),
// otherwise following the population marginal. Longitude concentrates on
// the inhabited meridians of the chosen hemisphere band.
func sampleInfraCoord(rng *xrand.Source, pop *population.Model, northFrac float64) geo.Coord {
	var lat float64
	if rng.Bool(northFrac) {
		lat = clampLat(50 + 8*rng.NormFloat64())
	} else {
		lat = pop.SampleLat(rng)
	}
	return geo.Coord{Lat: lat, Lon: infraLon(rng, lat)}
}

// infraLon picks a longitude from the major inhabited bands for a given
// latitude: the Americas, Europe/Africa, and Asia/Oceania corridors.
func infraLon(rng *xrand.Source, lat float64) float64 {
	type band struct {
		lo, hi float64
		w      float64
	}
	var bands []band
	switch {
	case lat > 30: // N. America, Europe, N. Asia
		bands = []band{{-125, -70, 3}, {-10, 40, 4}, {60, 140, 2.5}}
	case lat > 0: // Central America, Africa, S/SE Asia
		bands = []band{{-110, -60, 1.5}, {-17, 50, 2}, {65, 125, 4}}
	default: // S. America, S. Africa, Oceania
		bands = []band{{-80, -35, 2}, {10, 45, 1.5}, {110, 180, 1.5}}
	}
	weights := make([]float64, len(bands))
	for i, b := range bands {
		weights[i] = b.w
	}
	b := bands[rng.Pick(weights)]
	return clampLon(rng.Range(b.lo, b.hi))
}

// RouterCount returns the total router count over all ASes.
func (c *RouterCatalog) RouterCount() int {
	n := 0
	for i := range c.ASes {
		n += len(c.ASes[i].Routers)
	}
	return n
}

// RouterCoords returns all router locations (order: by AS, then router).
func (c *RouterCatalog) RouterCoords() []geo.Coord {
	out := make([]geo.Coord, 0, c.RouterCount())
	for i := range c.ASes {
		out = append(out, c.ASes[i].Routers...)
	}
	return out
}

// ASReachCurve returns, for each threshold, the fraction of ASes with at
// least one router above it (Fig 9a).
func (c *RouterCatalog) ASReachCurve(thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(c.ASes) == 0 {
		return out
	}
	for ti, t := range thresholds {
		n := 0
		for i := range c.ASes {
			if c.ASes[i].PresenceAbove(t) {
				n++
			}
		}
		out[ti] = float64(n) / float64(len(c.ASes))
	}
	return out
}

// SpreadSample returns every AS's latitude spread (Fig 9b).
func (c *RouterCatalog) SpreadSample() []float64 {
	out := make([]float64, len(c.ASes))
	for i := range c.ASes {
		out[i] = c.ASes[i].LatitudeSpread()
	}
	return out
}
