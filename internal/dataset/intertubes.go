package dataset

import (
	"fmt"
	"sort"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// IntertubesConfig tunes the synthetic US long-haul fiber network.
// Defaults are calibrated to what the paper reports for the Intertubes
// dataset: 542 links, 258 of them under 150 km, mean 1.7 repeaters per
// cable at 150 km spacing, and ~40% of endpoints above 40N.
type IntertubesConfig struct {
	// Nodes is the endpoint count (real Intertubes: 273).
	Nodes int
	// Links is the conduit count (paper: 542).
	Links int
	// RoadFactor inflates geodesics to driving distance, the estimator
	// the paper uses for link lengths (§4.2.2).
	RoadFactor float64
	// RoadJitter is the +- spread applied to RoadFactor per link.
	RoadJitter float64
}

// DefaultIntertubesConfig returns the calibrated defaults.
func DefaultIntertubesConfig() IntertubesConfig {
	return IntertubesConfig{Nodes: 273, Links: 542, RoadFactor: 1.25, RoadJitter: 0.12}
}

// GenerateIntertubes synthesises the US long-haul fiber network: seed
// metros plus junction towns interpolated along metro pairs, linked by a
// shortest-pairs-first conduit mesh with a connected spanning core.
func GenerateIntertubes(cfg IntertubesConfig, rng *xrand.Source) (*topology.Network, error) {
	if cfg.Nodes < len(usCities) {
		return nil, fmt.Errorf("dataset: need at least %d nodes, got %d", len(usCities), cfg.Nodes)
	}
	if cfg.Links < cfg.Nodes-1 {
		return nil, fmt.Errorf("dataset: %d links cannot connect %d nodes", cfg.Links, cfg.Nodes)
	}
	net := &topology.Network{Name: "intertubes"}
	for _, c := range usCities {
		net.Nodes = append(net.Nodes, topology.Node{
			Name:     "us-" + c.Name,
			Coord:    c.Coord,
			HasCoord: true,
			Country:  "us",
		})
	}

	// Junction towns: regen huts and small cities along metro-metro
	// corridors. Interpolate between two nearby metros with jitter.
	weights := make([]float64, len(usCities))
	for i, c := range usCities {
		weights[i] = c.Weight
	}
	for len(net.Nodes) < cfg.Nodes {
		a := rng.Pick(weights)
		b := nearestCityTo(a, rng)
		f := rng.Range(0.25, 0.75)
		p := geo.Interpolate(usCities[a].Coord, usCities[b].Coord, f)
		p.Lat = clampLat(p.Lat + rng.Range(-0.3, 0.3))
		p.Lon = clampLon(p.Lon + rng.Range(-0.3, 0.3))
		net.Nodes = append(net.Nodes, topology.Node{
			Name:     fmt.Sprintf("us-junction-%03d", len(net.Nodes)-len(usCities)),
			Coord:    p,
			HasCoord: true,
			Country:  "us",
		})
	}

	links := buildMesh(net, cfg.Links, rng)
	for li, pair := range links {
		d := geo.Haversine(net.Nodes[pair[0]].Coord, net.Nodes[pair[1]].Coord)
		road := cfg.RoadFactor + rng.Range(-cfg.RoadJitter, cfg.RoadJitter)
		length := d * road
		if length < 20 {
			length = 20 + rng.Range(0, 30)
		}
		net.Cables = append(net.Cables, topology.Cable{
			Name:        fmt.Sprintf("us-link-%03d", li),
			Segments:    []topology.Segment{{A: pair[0], B: pair[1], LengthKm: length}},
			KnownLength: true,
		})
	}

	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: generated intertubes network invalid: %w", err)
	}
	return net, nil
}

// nearestCityTo picks one of the 4 nearest cities to a, at random.
func nearestCityTo(a int, rng *xrand.Source) int {
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, 0, len(usCities)-1)
	for i := range usCities {
		if i == a {
			continue
		}
		cands = append(cands, cand{i, geo.Haversine(usCities[a].Coord, usCities[i].Coord)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := 4
	if k > len(cands) {
		k = len(cands)
	}
	return cands[rng.Intn(k)].idx
}

// buildMesh returns linkCount node pairs: a minimum-spanning tree of short
// hops for connectivity, topped up with express inter-metro conduits whose
// lengths follow the long-haul corridor distribution (median ~450 km).
func buildMesh(net *topology.Network, linkCount int, rng *xrand.Source) [][2]int {
	n := len(net.Nodes)
	type pair struct {
		a, b int
		d    float64
	}
	// Candidate pairs: k nearest neighbours of each node keeps the
	// candidate set O(n*k) instead of O(n^2) links.
	const k = 14
	seen := make(map[[2]int]bool)
	var cands []pair
	for i := 0; i < n; i++ {
		type nb struct {
			j int
			d float64
		}
		nbs := make([]nb, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			nbs = append(nbs, nb{j, geo.Haversine(net.Nodes[i].Coord, net.Nodes[j].Coord)})
		}
		sort.Slice(nbs, func(x, y int) bool { return nbs[x].d < nbs[y].d })
		for x := 0; x < k && x < len(nbs); x++ {
			key := orderedPair(i, nbs[x].j)
			if !seen[key] {
				seen[key] = true
				cands = append(cands, pair{key[0], key[1], nbs[x].d})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })

	// Kruskal spanning forest first.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var links [][2]int
	used := make(map[[2]int]bool)
	for _, p := range cands {
		ra, rb := find(p.a), find(p.b)
		if ra != rb {
			parent[ra] = rb
			key := [2]int{p.a, p.b}
			links = append(links, key)
			used[key] = true
		}
	}
	// Top up with express inter-metro conduits. Endpoints are seed cities
	// (indices below len(usCities)); distances target the long-haul
	// corridor distribution rather than nearest neighbours.
	cityWeights := make([]float64, len(usCities))
	for i, c := range usCities {
		cityWeights[i] = c.Weight
	}
	for guard := 0; len(links) < linkCount && guard < linkCount*50; guard++ {
		a := rng.Pick(cityWeights)
		target := rng.LogNormal(lnOf(180), 0.75)
		if target > 2500 {
			target = 2500
		}
		scores := make([]float64, len(usCities))
		for j := range usCities {
			if j == a {
				continue
			}
			d := geo.Haversine(usCities[a].Coord, usCities[j].Coord)
			z := (lnOf(d+1) - lnOf(target)) / 0.4
			scores[j] = usCities[j].Weight * expNeg(z*z/2)
		}
		b := rng.Pick(scores)
		key := orderedPair(a, b)
		if a == b || used[key] {
			continue
		}
		used[key] = true
		links = append(links, key)
	}
	return links
}

func orderedPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
