package dataset

import (
	"errors"
	"fmt"

	"gicnet/internal/geo"
	"gicnet/internal/population"
	"gicnet/internal/xrand"
)

// Site is a named infrastructure location (IXP, DNS root instance, data
// center).
type Site struct {
	Name  string
	Coord geo.Coord
}

// IXPConfig tunes synthetic IXP placement. Defaults match the PCH
// directory statistics used by the paper: 1026 IXPs, 43% above 40 degrees.
type IXPConfig struct {
	Count     int
	NorthFrac float64
}

// DefaultIXPConfig returns the calibrated defaults.
func DefaultIXPConfig() IXPConfig { return IXPConfig{Count: 1026, NorthFrac: 0.40} }

// GenerateIXPs synthesises the IXP directory.
func GenerateIXPs(cfg IXPConfig, rng *xrand.Source) ([]Site, error) {
	if cfg.Count <= 0 {
		return nil, errors.New("dataset: IXP count must be positive")
	}
	pop, err := population.New(2)
	if err != nil {
		return nil, err
	}
	sites := make([]Site, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		c := sampleInfraCoord(rng, pop, cfg.NorthFrac)
		sites = append(sites, Site{Name: fmt.Sprintf("ixp-%04d", i), Coord: c})
	}
	return sites, nil
}

// RootLetter is one of the 13 DNS root server identities and its anycast
// instance locations.
type RootLetter struct {
	Letter    byte
	Instances []Site
}

// DNSConfig tunes synthetic root server placement. Defaults match the
// root-servers.org snapshot the paper uses: 1076 instances over 13 letters.
type DNSConfig struct {
	Instances int
}

// DefaultDNSConfig returns the calibrated defaults.
func DefaultDNSConfig() DNSConfig { return DNSConfig{Instances: 1076} }

// continentQuota reflects the real continental distribution of root
// instances: widely spread, though not proportional to Internet users
// (Africa hosts roughly half as many as North America, §4.4.3).
var continentQuota = []struct {
	region geo.Region
	share  float64
	// latMean/latSD and lonLo/lonHi bound instance placement.
	latMean, latSD float64
	lonLo, lonHi   float64
}{
	{geo.RegionNorthAmerica, 0.26, 39, 6, -123, -71},
	{geo.RegionEurope, 0.30, 49, 6, -9, 30},
	{geo.RegionAsia, 0.22, 25, 12, 55, 140},
	{geo.RegionSouthAmerica, 0.07, -15, 12, -75, -40},
	{geo.RegionAfrica, 0.10, 0, 15, -10, 40},
	{geo.RegionOceania, 0.05, -30, 8, 115, 178},
}

// GenerateDNSRoots synthesises the 13 root letters and their instances.
func GenerateDNSRoots(cfg DNSConfig, rng *xrand.Source) ([]RootLetter, error) {
	if cfg.Instances < 13 {
		return nil, errors.New("dataset: need at least one instance per letter")
	}
	letters := make([]RootLetter, 13)
	for i := range letters {
		letters[i].Letter = byte('a' + i)
	}
	weights := make([]float64, len(continentQuota))
	for i, q := range continentQuota {
		weights[i] = q.share
	}
	for n := 0; n < cfg.Instances; n++ {
		li := n % 13 // spread instances round-robin over letters
		q := continentQuota[rng.Pick(weights)]
		c := geo.Coord{
			Lat: clampLat(q.latMean + q.latSD*rng.NormFloat64()),
			Lon: clampLon(rng.Range(q.lonLo, q.lonHi)),
		}
		letters[li].Instances = append(letters[li].Instances, Site{
			Name:  fmt.Sprintf("%c-root-%03d", letters[li].Letter, len(letters[li].Instances)),
			Coord: c,
		})
	}
	return letters, nil
}

// DNSInstanceCoords flattens all instances of all letters.
func DNSInstanceCoords(letters []RootLetter) []geo.Coord {
	var out []geo.Coord
	for _, l := range letters {
		for _, s := range l.Instances {
			out = append(out, s.Coord)
		}
	}
	return out
}
