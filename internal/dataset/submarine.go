package dataset

import (
	"fmt"
	"math"
	"sort"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// SubmarineConfig tunes the synthetic submarine network. The defaults are
// calibrated to the statistics the paper reports for the TeleGeography map:
// 470 cables, 1241 landing points, 441 published lengths, median length
// 775 km, 99th percentile 28000 km, maximum 39000 km, 82 repeater-free
// cables at 150 km spacing, mean 22.3 repeaters per cable at 150 km, and
// 31% of landing points above 40 degrees absolute latitude.
type SubmarineConfig struct {
	// Cables is the total system count (paper: 470).
	Cables int
	// LandingPoints is the node count (paper: 1241).
	LandingPoints int
	// UnknownLengthCables marks this many procedural cables as having no
	// published length (paper: 470-441 = 29).
	UnknownLengthCables int
	// RegionalMedianKm and RegionalSigma shape the lognormal length
	// distribution of procedural (non-trunk) cables.
	RegionalMedianKm float64
	RegionalSigma    float64
	// DetourFactor inflates geodesics to route lengths.
	DetourFactor float64
	// MaxRegionalKm caps procedural cables so only trunks form the tail.
	MaxRegionalKm float64
	// NorthBias multiplies anchor weights above 40 absolute latitude when
	// placing procedural infrastructure, reproducing the paper's skew.
	NorthBias float64
	// LocalCableFrac is the share of procedural cables that are short
	// domestic systems (two landing stations in one metro, island loops)
	// under 150 km — the repeater-free population of §4.3.1.
	LocalCableFrac float64
}

// DefaultSubmarineConfig returns the calibrated defaults.
func DefaultSubmarineConfig() SubmarineConfig {
	return SubmarineConfig{
		Cables:              470,
		LandingPoints:       1241,
		UnknownLengthCables: 29,
		RegionalMedianKm:    560,
		RegionalSigma:       1.55,
		DetourFactor:        1.22,
		MaxRegionalKm:       9000,
		NorthBias:           1.8,
		LocalCableFrac:      0.52,
	}
}

// proceduralExcluded names anchors that only named trunks may touch. The
// paper's China analysis hinges on every Shanghai cable being a very long
// multi-city system; a procedural regional cable there would break it.
var proceduralExcluded = map[string]bool{"shanghai": true}

// submarineBuilder accumulates nodes and per-anchor landing point pools.
type submarineBuilder struct {
	cfg     SubmarineConfig
	rng     *xrand.Source
	net     *topology.Network
	pools   map[string][]int // anchor name -> node indices
	used    map[int]bool     // nodes referenced by at least one cable
	weights []float64        // anchor pick weights incl. north bias
}

// GenerateSubmarine synthesises the global submarine cable network.
func GenerateSubmarine(cfg SubmarineConfig, rng *xrand.Source) (*topology.Network, error) {
	if cfg.Cables < TrunkCount() {
		return nil, fmt.Errorf("dataset: need at least %d cables for trunks, got %d", TrunkCount(), cfg.Cables)
	}
	b := &submarineBuilder{
		cfg:   cfg,
		rng:   rng,
		net:   &topology.Network{Name: "submarine"},
		pools: make(map[string][]int),
		used:  make(map[int]bool),
	}
	b.weights = make([]float64, len(anchors))
	for i, a := range anchors {
		if proceduralExcluded[a.Name] {
			continue // weight 0: trunks only (e.g. Shanghai, §4.3.4)
		}
		w := a.Weight
		if a.Coord.AbsLat() > 40 {
			w *= cfg.NorthBias
		}
		b.weights[i] = w
	}

	b.addTrunks()
	b.addRegionalCables()
	b.attachRemainingLandingPoints()
	b.bridgeComponents()
	b.markUnknownLengths()

	if err := b.net.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: generated submarine network invalid: %w", err)
	}
	return b.net, nil
}

// landingPoint returns a node index for a landing in the anchor's city,
// reusing an existing instance with probability reuse, else minting a new
// jittered one.
func (b *submarineBuilder) landingPoint(anchorName string, reuse float64) int {
	pool := b.pools[anchorName]
	if len(pool) > 0 && b.rng.Bool(reuse) {
		idx := pool[b.rng.Intn(len(pool))]
		b.used[idx] = true
		return idx
	}
	return b.newLandingPoint(anchorName, true)
}

func (b *submarineBuilder) newLandingPoint(anchorName string, markUsed bool) int {
	a, ok := AnchorByName(anchorName)
	if !ok {
		panic("dataset: unknown anchor " + anchorName)
	}
	n := len(b.pools[anchorName])
	c := geo.Coord{
		Lat: clampLat(a.Coord.Lat + b.rng.Range(-0.6, 0.6)),
		Lon: clampLon(a.Coord.Lon + b.rng.Range(-0.6, 0.6)),
	}
	idx := len(b.net.Nodes)
	b.net.Nodes = append(b.net.Nodes, topology.Node{
		Name:     fmt.Sprintf("%s-%s-%d", a.Country, a.Name, n),
		Coord:    c,
		HasCoord: true,
		Country:  a.Country,
	})
	b.pools[anchorName] = append(b.pools[anchorName], idx)
	if markUsed {
		b.used[idx] = true
	}
	return idx
}

func clampLat(v float64) float64 {
	if v > 90 {
		return 90
	}
	if v < -90 {
		return -90
	}
	return v
}

func clampLon(v float64) float64 {
	for v > 180 {
		v -= 360
	}
	for v < -180 {
		v += 360
	}
	return v
}

// addTrunks instantiates every named trunk, distributing the published
// total length over segments proportionally to segment geodesics.
func (b *submarineBuilder) addTrunks() {
	for _, t := range trunks {
		nodes := make([]int, len(t.Path))
		for i, city := range t.Path {
			nodes[i] = b.landingPoint(city, 0.35)
		}
		geodesics := make([]float64, 0, len(nodes)-1)
		total := 0.0
		for i := 0; i+1 < len(nodes); i++ {
			d := geo.Haversine(b.net.Nodes[nodes[i]].Coord, b.net.Nodes[nodes[i+1]].Coord)
			if d < 1 {
				d = 1 // co-located instances: keep proportions finite
			}
			geodesics = append(geodesics, d)
			total += d
		}
		segs := make([]topology.Segment, len(geodesics))
		for i, d := range geodesics {
			segs[i] = topology.Segment{
				A:        nodes[i],
				B:        nodes[i+1],
				LengthKm: t.LengthKm * d / total,
			}
		}
		b.net.Cables = append(b.net.Cables, topology.Cable{
			Name:        t.Name,
			Segments:    segs,
			KnownLength: true,
		})
	}
}

// addRegionalCables generates procedural multi-landing cables between
// nearby anchors until the configured cable count is reached.
func (b *submarineBuilder) addRegionalCables() {
	n := b.cfg.Cables - len(b.net.Cables)
	for k := 0; k < n; k++ {
		if b.rng.Bool(b.cfg.LocalCableFrac) {
			b.addLocalCable(k)
			continue
		}
		target := b.rng.LogNormal(lnOf(b.cfg.RegionalMedianKm), b.cfg.RegionalSigma)
		if target > b.cfg.MaxRegionalKm {
			target = b.cfg.MaxRegionalKm
		}
		// Landing count: mostly point-to-point, some multi-branch.
		points := 2
		switch r := b.rng.Float64(); {
		case r < 0.18:
			points = 3
		case r < 0.28:
			points = 4
		case r < 0.33:
			points = 5
		}
		hops := points - 1
		hopTarget := target / float64(hops)

		srcAnchor := b.rng.Pick(b.weights)
		prev := b.landingPoint(anchors[srcAnchor].Name, 0.3)
		cur := srcAnchor
		var segs []topology.Segment
		for h := 0; h < hops; h++ {
			next := b.pickPartner(cur, hopTarget)
			ni := b.landingPoint(anchors[next].Name, 0.3)
			if ni == prev {
				ni = b.newLandingPoint(anchors[next].Name, true)
			}
			d := geo.Haversine(b.net.Nodes[prev].Coord, b.net.Nodes[ni].Coord) * b.cfg.DetourFactor
			if d < 40 {
				d = 40 + b.rng.Range(0, 60)
			}
			segs = append(segs, topology.Segment{A: prev, B: ni, LengthKm: d})
			prev, cur = ni, next
		}
		b.net.Cables = append(b.net.Cables, topology.Cable{
			Name:        fmt.Sprintf("regional-%03d", k),
			Segments:    segs,
			KnownLength: true,
		})
	}
}

// addLocalCable adds a short domestic system: two fresh landing stations
// in the same metro area, under 150 km of route.
func (b *submarineBuilder) addLocalCable(k int) {
	ai := b.rng.Pick(b.weights)
	a := b.newLandingPoint(anchors[ai].Name, true)
	c := b.newLandingPoint(anchors[ai].Name, true)
	b.net.Cables = append(b.net.Cables, topology.Cable{
		Name:        fmt.Sprintf("local-%03d", k),
		Segments:    []topology.Segment{{A: a, B: c, LengthKm: b.localLength()}},
		KnownLength: true,
	})
}

// pickPartner selects a destination anchor whose distance from src best
// matches the target length, softened by hub weight and north bias.
func (b *submarineBuilder) pickPartner(src int, targetKm float64) int {
	scores := make([]float64, len(anchors))
	from := anchors[src].Coord
	for i := range anchors {
		if i == src {
			continue
		}
		d := geo.Haversine(from, anchors[i].Coord)
		// Gaussian affinity in log-distance space keeps relative error
		// symmetric (800 vs 1600 km is as close as 800 vs 400).
		z := (lnOf(d+1) - lnOf(targetKm)) / 0.45
		scores[i] = b.weights[i] * expNeg(z*z/2)
	}
	return b.rng.Pick(scores)
}

// attachRemainingLandingPoints mints landing points up to the configured
// count and attaches each as an extra branch segment of the nearest cable —
// the synthetic analogue of branching units (e.g. Equiano's nine branches).
func (b *submarineBuilder) attachRemainingLandingPoints() {
	for len(b.net.Nodes) < b.cfg.LandingPoints {
		idx := b.newLandingPoint(anchors[b.rng.Pick(b.weights)].Name, false)
		b.attachAsBranch(idx)
	}
	// Also attach any node minted earlier but never used by a cable.
	for i := range b.net.Nodes {
		if !b.used[i] {
			b.attachAsBranch(i)
		}
	}
}

// attachAsBranch connects node idx to the nearest used node that hosts a
// procedural cable, extending that cable with a branch segment. Named
// trunks are never extended — their published lengths must stay intact.
func (b *submarineBuilder) attachAsBranch(idx int) {
	type cand struct {
		node int
		d    float64
	}
	var cands []cand
	for j := range b.net.Nodes {
		if j == idx || !b.used[j] {
			continue
		}
		cands = append(cands, cand{j, geo.Haversine(b.net.Nodes[idx].Coord, b.net.Nodes[j].Coord)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	for _, c := range cands {
		ci := b.proceduralCableTouching(c.node)
		if ci < 0 {
			continue
		}
		length := c.d * b.cfg.DetourFactor
		if length < 30 {
			length = 30 + b.rng.Range(0, 40)
		}
		b.net.Cables[ci].Segments = append(b.net.Cables[ci].Segments, topology.Segment{
			A: c.node, B: idx, LengthKm: length,
		})
		b.used[idx] = true
		return
	}
}

// proceduralCableTouching returns a procedural (non-trunk) cable index
// with a segment at node n, or -1. Named trunks are never returned so
// branch growth cannot distort the published trunk lengths.
func (b *submarineBuilder) proceduralCableTouching(n int) int {
	var regular []int
	for ci := TrunkCount(); ci < len(b.net.Cables); ci++ {
		for _, s := range b.net.Cables[ci].Segments {
			if s.A == n || s.B == n {
				regular = append(regular, ci)
				break
			}
		}
	}
	if len(regular) > 0 {
		return regular[b.rng.Intn(len(regular))]
	}
	return -1
}

// bridgeComponents merges every small component into the giant component
// by adding a branch segment between the nearest cross-component node pair.
// The real submarine network is one connected system apart from a handful
// of domestic loops; leaving islands would distort the reachability
// analyses.
func (b *submarineBuilder) bridgeComponents() {
	// Incremental nearest-pair bookkeeping. Node coordinates are fixed
	// while bridging and the giant component only ever grows, so each
	// non-giant node's closest bridgeable giant partner can only improve
	// as new members join the giant. Track a running (bestD, bestJ) per
	// node and fold in just the newly-giant nodes each round: every cross
	// pair is visited at most once, instead of rescanning the full cross
	// product per merge. The lexicographic tie-break below reproduces the
	// full rescan's first-minimum selection bit for bit, so the generated
	// world is byte-identical to the quadratic builder's.
	nn := len(b.net.Nodes)
	bestD := make([]float64, nn)
	bestJ := make([]int, nn)
	for i := range bestD {
		bestD[i] = math.Inf(1)
		bestJ[i] = -1
	}
	wasGiant := make([]bool, nn)
	host := make([]int, nn)
	// Each iteration merges one component; the count strictly decreases,
	// so the loop terminates within NumNodes iterations.
	for iter := 0; iter < nn; iter++ {
		labels, count := componentLabels(b.net)
		if count <= 1 {
			return
		}
		sizes := make([]int, count)
		for _, l := range labels {
			sizes[l]++
		}
		giant := 0
		for l, s := range sizes {
			if s > sizes[giant] {
				giant = l
			}
		}
		// Per node, one procedural cable touching it; trunks must not
		// grow, so nodes hosting only trunks are not bridgeable. A giant
		// node's host can change cable but never appears after the node
		// was folded in: segments are only ever appended at the chosen
		// endpoints, whose hosts are already set.
		for i := range host {
			host[i] = -1
		}
		for ci := TrunkCount(); ci < len(b.net.Cables); ci++ {
			for _, s := range b.net.Cables[ci].Segments {
				host[s.A] = ci
				host[s.B] = ci
			}
		}
		// Fold newly-giant bridgeable nodes into every non-giant node's
		// running minimum. Equal distances keep the smaller j, matching
		// the ascending-scan strict-< selection of a full rescan.
		for j := 0; j < nn; j++ {
			if labels[j] != giant || wasGiant[j] {
				continue
			}
			wasGiant[j] = true
			if host[j] < 0 {
				continue
			}
			cj := b.net.Nodes[j].Coord
			for i := 0; i < nn; i++ {
				if labels[i] == giant {
					continue
				}
				d := geo.Haversine(b.net.Nodes[i].Coord, cj)
				//gicnet:allow floatcmp exact distance tie-break keeps bridge selection deterministic
				if d < bestD[i] || (d == bestD[i] && j < bestJ[i]) {
					bestD[i], bestJ[i] = d, j
				}
			}
		}
		// Pick the non-giant node closest to its giant partner; equal
		// distances keep the smaller node index, as the rescan would.
		bd, ba := math.Inf(1), -1
		for i := 0; i < nn; i++ {
			if labels[i] == giant || bestJ[i] < 0 {
				continue
			}
			if bestD[i] < bd {
				bd, ba = bestD[i], i
			}
		}
		if ba < 0 {
			return
		}
		bj := bestJ[ba]
		b.net.Cables[host[bj]].Segments = append(b.net.Cables[host[bj]].Segments, topology.Segment{
			A: bj, B: ba, LengthKm: bd * b.cfg.DetourFactor,
		})
	}
}

// componentLabels computes connected-component labels on a throwaway graph
// projection (the Network's own cache must not be primed while the builder
// still mutates cables).
func componentLabels(n *topology.Network) ([]int, int) {
	tmp := &topology.Network{Name: n.Name, Nodes: n.Nodes, Cables: n.Cables}
	return tmp.Graph().Components(nil)
}

// markUnknownLengths marks the configured number of procedural cables as
// length-unknown, mirroring the 29 unpublished lengths in the real map.
func (b *submarineBuilder) markUnknownLengths() {
	remaining := b.cfg.UnknownLengthCables
	for i := range b.net.Cables {
		if remaining == 0 {
			return
		}
		name := b.net.Cables[i].Name
		if len(name) >= 8 && name[:8] == "regional" {
			b.net.Cables[i].KnownLength = false
			remaining--
		}
	}
}

// sortedLengths returns the known cable lengths, ascending. Exposed for
// calibration tooling.
func sortedLengths(n *topology.Network) []float64 {
	ls := n.CableLengths()
	sort.Float64s(ls)
	return ls
}

// localLength draws a short domestic system length: usually repeater-free
// (< 150 km), sometimes a short-hop domestic route.
func (b *submarineBuilder) localLength() float64 {
	if b.rng.Bool(0.62) {
		return b.rng.Range(40, 145)
	}
	return b.rng.Range(150, 720)
}
