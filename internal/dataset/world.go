// Package dataset synthesises every dataset the paper analyses, calibrated
// to the statistics the paper reports about the originals (see DESIGN.md
// for the substitution table): the submarine cable map, the Intertubes US
// long-haul network, the ITU global land network, the CAIDA router/AS
// catalog, the PCH IXP directory, DNS root instances, hyperscaler data
// center locations, and the gridded world population.
package dataset

import (
	"fmt"
	"sync"

	"gicnet/internal/population"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// World bundles every dataset used by the analyses.
type World struct {
	// Submarine, Intertubes and ITU are the three cable networks.
	Submarine  *topology.Network
	Intertubes *topology.Network
	ITU        *topology.Network
	// Routers is the AS/router catalog.
	Routers *RouterCatalog
	// IXPs are exchange point locations.
	IXPs []Site
	// DNSRoots are the 13 root letters and their anycast instances.
	DNSRoots []RootLetter
	// GoogleDCs and FacebookDCs are hyperscaler campuses.
	GoogleDCs   []Site
	FacebookDCs []Site
	// Population is the latitude population model (2-degree bins).
	Population *population.Model
	// Seed reproduces the world.
	Seed uint64
}

// WorldConfig bundles all generator configurations.
type WorldConfig struct {
	Submarine  SubmarineConfig
	Intertubes IntertubesConfig
	ITU        ITUConfig
	Routers    RouterConfig
	IXPs       IXPConfig
	DNS        DNSConfig
}

// DefaultWorldConfig returns the calibrated defaults for every dataset.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		Submarine:  DefaultSubmarineConfig(),
		Intertubes: DefaultIntertubesConfig(),
		ITU:        DefaultITUConfig(),
		Routers:    DefaultRouterConfig(),
		IXPs:       DefaultIXPConfig(),
		DNS:        DefaultDNSConfig(),
	}
}

// DefaultSeed seeds the canonical world used by tests, benchmarks and the
// reproduction harness. 1859 is the Carrington year.
const DefaultSeed uint64 = 1859

// GenerateWorld builds a complete world from a seed. Sub-generators get
// independent split streams, so regenerating one dataset with a different
// config does not perturb the others.
func GenerateWorld(cfg WorldConfig, seed uint64) (*World, error) {
	root := xrand.New(seed)
	sub, err := GenerateSubmarine(cfg.Submarine, root.Split(1))
	if err != nil {
		return nil, fmt.Errorf("dataset: submarine: %w", err)
	}
	tubes, err := GenerateIntertubes(cfg.Intertubes, root.Split(2))
	if err != nil {
		return nil, fmt.Errorf("dataset: intertubes: %w", err)
	}
	itu, err := GenerateITU(cfg.ITU, root.Split(3))
	if err != nil {
		return nil, fmt.Errorf("dataset: itu: %w", err)
	}
	routers, err := GenerateRouters(cfg.Routers, root.Split(4))
	if err != nil {
		return nil, fmt.Errorf("dataset: routers: %w", err)
	}
	ixps, err := GenerateIXPs(cfg.IXPs, root.Split(5))
	if err != nil {
		return nil, fmt.Errorf("dataset: ixps: %w", err)
	}
	roots, err := GenerateDNSRoots(cfg.DNS, root.Split(6))
	if err != nil {
		return nil, fmt.Errorf("dataset: dns: %w", err)
	}
	pop, err := population.New(2)
	if err != nil {
		return nil, fmt.Errorf("dataset: population: %w", err)
	}
	return &World{
		Submarine:   sub,
		Intertubes:  tubes,
		ITU:         itu,
		Routers:     routers,
		IXPs:        ixps,
		DNSRoots:    roots,
		GoogleDCs:   GoogleDataCenters(),
		FacebookDCs: FacebookDataCenters(),
		Population:  pop,
		Seed:        seed,
	}, nil
}

// Networks returns the three cable networks in the paper's reporting order.
func (w *World) Networks() []*topology.Network {
	return []*topology.Network{w.Submarine, w.Intertubes, w.ITU}
}

var (
	defaultWorld     *World
	defaultWorldErr  error
	defaultWorldOnce sync.Once
)

// Default returns the canonical world (DefaultWorldConfig, DefaultSeed),
// generated once per process. Callers must treat it as read-only; anything
// that mutates networks should call GenerateWorld for a private copy.
func Default() (*World, error) {
	defaultWorldOnce.Do(func() {
		defaultWorld, defaultWorldErr = GenerateWorld(DefaultWorldConfig(), DefaultSeed)
		if defaultWorldErr == nil {
			// Prime graph caches so read-only concurrent use is safe.
			for _, n := range defaultWorld.Networks() {
				n.Graph()
			}
		}
	})
	return defaultWorld, defaultWorldErr
}
