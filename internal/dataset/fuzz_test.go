package dataset

import (
	"bytes"
	"strings"
	"testing"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
)

// fuzzSeedNetwork builds a tiny valid network for the fuzz seed corpus.
func fuzzSeedNetwork() *topology.Network {
	return &topology.Network{
		Name: "seed",
		Nodes: []topology.Node{
			{Name: "a", Coord: geo.Coord{Lat: 51.5, Lon: -0.1}, HasCoord: true, Country: "gb"},
			{Name: "b", Coord: geo.Coord{Lat: 40.7, Lon: -74}, HasCoord: true, Country: "us"},
			{Name: "c"},
		},
		Cables: []topology.Cable{
			{Name: "x", KnownLength: true, Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 5570}}},
			{Name: "y", Segments: []topology.Segment{{A: 1, B: 2, LengthKm: 10}, {A: 2, B: 0, LengthKm: 20}}},
		},
	}
}

// FuzzReadNetworkJSON exercises the network loader with arbitrary bytes.
// Properties: the parser never panics; anything it accepts passes
// topology.Validate (the loader's contract) and survives a write/read
// round trip byte-identically.
func FuzzReadNetworkJSON(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteNetworkJSON(&valid, fuzzSeedNetwork()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"name":"empty","schema":{"version":1}}`))
	f.Add([]byte(`{"name":"bad-schema","schema":{"version":99}}`))
	f.Add([]byte(`{"name":"dangling","schema":{"version":1},"cables":[{"name":"c","segments":[{"a":0,"b":7}]}]}`))
	f.Add([]byte(`{"name":"dup","schema":{"version":1},"nodes":[{"name":"n"},{"name":"n"}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := ReadNetworkJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("loader accepted a network that fails Validate: %v", err)
		}
		var first bytes.Buffer
		if err := WriteNetworkJSON(&first, net); err != nil {
			t.Fatalf("re-serialise accepted network: %v", err)
		}
		net2, err := ReadNetworkJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("round trip of accepted network failed to parse: %v", err)
		}
		var second bytes.Buffer
		if err := WriteNetworkJSON(&second, net2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write/read/write not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
		}
	})
}

// FuzzReadEndpointsCSVShape fuzzes the CSV writer's input space indirectly:
// arbitrary node names and coordinates must produce parseable CSV with one
// row per coordinate-bearing node. (The writer is the IO surface the
// export pipeline trusts.)
func FuzzWriteEndpointsCSV(f *testing.F) {
	f.Add("london", "gb", 51.5, -0.1)
	f.Add("comma,name", "u\"s", 0.0, 0.0)
	f.Add("newline\nname", "", -90.0, 180.0)
	f.Fuzz(func(t *testing.T, name, country string, lat, lon float64) {
		net := &topology.Network{
			Name: "f",
			Nodes: []topology.Node{
				{Name: name, Country: country, Coord: geo.Coord{Lat: lat, Lon: lon}, HasCoord: true},
				{Name: name + "-2"},
			},
		}
		var buf bytes.Buffer
		if err := WriteEndpointsCSV(&buf, net); err != nil {
			t.Fatalf("WriteEndpointsCSV: %v", err)
		}
		// Header plus exactly one record (the coordinate-free node is
		// skipped); csv quoting may spread a record over several lines,
		// so parse rather than count newlines.
		rows := strings.Count(buf.String(), "\n")
		if rows < 2 {
			t.Fatalf("expected header + 1 record, got %q", buf.String())
		}
	})
}
