package dataset

import "gicnet/internal/geo"

// Hyperscaler data center locations, embedded as public knowledge
// (google.com/about/datacenters and Facebook's published site list, both
// cited by the paper, §4.4.2). Coordinates are approximate site locations.

// GoogleDataCenters returns Google's self-built data center campuses as of
// the paper's snapshot: 2/3 in the US, plus Chile, Europe, Taiwan and
// Singapore — a spread across latitudes and hemispheres.
func GoogleDataCenters() []Site {
	return []Site{
		{"berkeley-county-sc", geo.Coord{Lat: 33.06, Lon: -80.04}},
		{"council-bluffs-ia", geo.Coord{Lat: 41.26, Lon: -95.86}},
		{"douglas-county-ga", geo.Coord{Lat: 33.75, Lon: -84.58}},
		{"jackson-county-al", geo.Coord{Lat: 34.78, Lon: -86.07}},
		{"lenoir-nc", geo.Coord{Lat: 35.91, Lon: -81.54}},
		{"mayes-county-ok", geo.Coord{Lat: 36.24, Lon: -95.33}},
		{"midlothian-tx", geo.Coord{Lat: 32.48, Lon: -96.99}},
		{"montgomery-county-tn", geo.Coord{Lat: 36.47, Lon: -87.38}},
		{"new-albany-oh", geo.Coord{Lat: 40.08, Lon: -82.81}},
		{"papillion-ne", geo.Coord{Lat: 41.15, Lon: -96.05}},
		{"the-dalles-or", geo.Coord{Lat: 45.59, Lon: -121.18}},
		{"henderson-nv", geo.Coord{Lat: 36.04, Lon: -114.98}},
		{"loudoun-county-va", geo.Coord{Lat: 39.08, Lon: -77.64}},
		{"quilicura-cl", geo.Coord{Lat: -33.36, Lon: -70.73}},
		{"eemshaven-nl", geo.Coord{Lat: 53.43, Lon: 6.83}},
		{"st-ghislain-be", geo.Coord{Lat: 50.45, Lon: 3.82}},
		{"hamina-fi", geo.Coord{Lat: 60.57, Lon: 27.20}},
		{"fredericia-dk", geo.Coord{Lat: 55.57, Lon: 9.75}},
		{"dublin-ie", geo.Coord{Lat: 53.35, Lon: -6.26}},
		{"changhua-tw", geo.Coord{Lat: 24.08, Lon: 120.54}},
		{"jurong-west-sg", geo.Coord{Lat: 1.34, Lon: 103.71}},
	}
}

// FacebookDataCenters returns Facebook's hyperscale campuses as of the
// paper's snapshot: predominantly in the northern US and northern Europe,
// with no presence in Africa or South America (§4.4.2).
func FacebookDataCenters() []Site {
	return []Site{
		{"prineville-or", geo.Coord{Lat: 44.30, Lon: -120.83}},
		{"forest-city-nc", geo.Coord{Lat: 35.33, Lon: -81.87}},
		{"altoona-ia", geo.Coord{Lat: 41.65, Lon: -93.47}},
		{"fort-worth-tx", geo.Coord{Lat: 32.75, Lon: -97.33}},
		{"los-lunas-nm", geo.Coord{Lat: 34.81, Lon: -106.73}},
		{"papillion-ne", geo.Coord{Lat: 41.15, Lon: -96.05}},
		{"new-albany-oh", geo.Coord{Lat: 40.08, Lon: -82.81}},
		{"henrico-va", geo.Coord{Lat: 37.55, Lon: -77.46}},
		{"eagle-mountain-ut", geo.Coord{Lat: 40.31, Lon: -112.01}},
		{"huntsville-al", geo.Coord{Lat: 34.73, Lon: -86.59}},
		{"newton-county-ga", geo.Coord{Lat: 33.55, Lon: -83.85}},
		{"dekalb-il", geo.Coord{Lat: 41.93, Lon: -88.77}},
		{"lulea-se", geo.Coord{Lat: 65.58, Lon: 22.15}},
		{"clonee-ie", geo.Coord{Lat: 53.41, Lon: -6.44}},
		{"odense-dk", geo.Coord{Lat: 55.40, Lon: 10.39}},
		{"singapore-sg", geo.Coord{Lat: 1.32, Lon: 103.70}},
	}
}

// SiteCoords extracts the coordinates of a site list.
func SiteCoords(sites []Site) []geo.Coord {
	out := make([]geo.Coord, len(sites))
	for i, s := range sites {
		out[i] = s.Coord
	}
	return out
}
