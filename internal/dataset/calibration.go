package dataset

import (
	"fmt"

	"gicnet/internal/stats"
	"gicnet/internal/topology"
)

// NetworkCalibration summarises one generated network against the
// statistics the paper reports for its real counterpart. Every field is a
// plain value so the struct serialises cleanly into golden snapshots.
type NetworkCalibration struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	// Cables is the total cable count; KnownLengths counts cables with a
	// published length (the paper's 441 of 470 for the submarine map).
	Cables       int `json:"cables"`
	KnownLengths int `json:"known_lengths"`
	// MedianLengthKm and P99LengthKm are quantiles over the known lengths
	// (paper: 775 km median, 28000 km p99 for submarine).
	MedianLengthKm float64 `json:"median_length_km"`
	P99LengthKm    float64 `json:"p99_length_km"`
	MaxLengthKm    float64 `json:"max_length_km"`
	// RepeaterlessCables counts cables needing no repeater at 150 km
	// spacing (paper: 82 submarine), and MeanRepeaters is the average
	// repeater count per cable at the same spacing (paper: 22.3).
	RepeaterlessCables int     `json:"repeaterless_cables"`
	MeanRepeaters      float64 `json:"mean_repeaters"`
	// Fingerprint pins the full generated structure (topology.Network
	// Fingerprint), rendered as hex so JSON stays integer-precision-safe.
	Fingerprint string `json:"fingerprint"`
}

// Calibration bundles the per-network summaries for a world.
type Calibration struct {
	Seed     uint64               `json:"seed"`
	Networks []NetworkCalibration `json:"networks"`
}

// CalibrationSpacingKm is the spacing the paper's repeater statistics are
// quoted at.
const CalibrationSpacingKm = 150

// CalibrationStats computes the calibration summary of a world. It is the
// dataset-side hook of the verification subsystem: golden snapshots of
// these values catch both drifted generator constants and structural
// changes (via the fingerprints).
func CalibrationStats(w *World) (*Calibration, error) {
	out := &Calibration{Seed: w.Seed}
	for _, net := range w.Networks() {
		nc, err := calibrateNetwork(net)
		if err != nil {
			return nil, err
		}
		out.Networks = append(out.Networks, nc)
	}
	return out, nil
}

func calibrateNetwork(net *topology.Network) (NetworkCalibration, error) {
	nc := NetworkCalibration{
		Name:               net.Name,
		Nodes:              len(net.Nodes),
		Cables:             len(net.Cables),
		RepeaterlessCables: net.CablesWithoutRepeaters(CalibrationSpacingKm),
		MeanRepeaters:      net.MeanRepeatersPerCable(CalibrationSpacingKm),
		Fingerprint:        fmt.Sprintf("%016x", net.Fingerprint()),
	}
	lengths := net.CableLengths()
	nc.KnownLengths = len(lengths)
	if len(lengths) == 0 {
		return nc, nil
	}
	var err error
	if nc.MedianLengthKm, err = stats.Median(lengths); err != nil {
		return NetworkCalibration{}, fmt.Errorf("dataset: %s median: %w", net.Name, err)
	}
	if nc.P99LengthKm, err = stats.Percentile(lengths, 99); err != nil {
		return NetworkCalibration{}, fmt.Errorf("dataset: %s p99: %w", net.Name, err)
	}
	if _, nc.MaxLengthKm, err = stats.MinMax(lengths); err != nil {
		return NetworkCalibration{}, fmt.Errorf("dataset: %s max: %w", net.Name, err)
	}
	return nc, nil
}
