package dataset

// trunk is a hand-crafted major submarine cable. Path entries are anchor
// names in landing order; LengthKm is the published route length of the
// real system the trunk mirrors (total over branches). These systems are
// public knowledge (TeleGeography's public map) and carry the paper's
// country-scale narrative: which cables connect the US to Europe, Brazil to
// Portugal, Singapore to its neighbours, and so on.
type trunk struct {
	Name     string
	Path     []string
	LengthKm float64
}

var trunks = []trunk{
	// --- Transatlantic: the NE-US <-> N-Europe concentration (§4.2.2) ---
	{"tat-north", []string{"new-york", "bude"}, 6500},
	{"aec-1", []string{"long-island", "dublin"}, 5536},
	{"havfrue", []string{"wall-nj", "kristiansand", "blaabjerg"}, 7200},
	{"grace-hopper", []string{"new-york", "bude", "bilbao"}, 7191},
	{"marea", []string{"virginia-beach", "bilbao"}, 6605},
	{"dunant", []string{"virginia-beach", "saint-hilaire"}, 6400},
	{"amitie", []string{"boston", "bude", "brest"}, 6800},
	{"atlantic-crossing", []string{"long-island", "southport", "norden", "katwijk"}, 14000},
	{"flag-atlantic", []string{"long-island", "brest", "london"}, 13000},
	{"apollo", []string{"wall-nj", "bude", "brest"}, 13000},
	{"hibernia-express", []string{"halifax", "southport"}, 4600},
	// The single US(Florida)-S.Europe link the paper highlights: 9833 km.
	{"columbus-iii", []string{"boca-raton", "sines"}, 9833},
	// Brazil-Portugal: shorter than Florida-Portugal (§4.3.4 Brazil).
	{"ellalink", []string{"fortaleza", "sines"}, 6200},
	{"greenland-connect", []string{"nuuk", "reykjavik", "st-johns"}, 4800},
	{"danice-farice", []string{"reykjavik", "torshavn", "oban", "blaabjerg"}, 2600},
	// --- Intra-Europe short systems (the continent's resilience, §4.4.4) ---
	{"celtic-connect", []string{"dublin", "southport"}, 250},
	{"north-sea-link", []string{"katwijk", "london"}, 350},
	{"skagen", []string{"kristiansand", "blaabjerg"}, 320},
	{"baltic-gate", []string{"stockholm", "helsinki"}, 400},
	{"estlink", []string{"helsinki", "tallinn"}, 90},
	{"baltica", []string{"gdansk", "stockholm", "riga"}, 1100},
	{"norse-link", []string{"oslo", "blaabjerg"}, 650},
	{"channel-x", []string{"brest", "bude"}, 320},
	{"biscay-link", []string{"bilbao", "brest"}, 600},
	{"med-loop-west", []string{"marseille", "barcelona"}, 350},
	{"med-loop-east", []string{"marseille", "genoa"}, 300},
	{"adria-1", []string{"bari", "athens"}, 900},
	{"sicily-malta", []string{"palermo", "valletta"}, 350},
	{"kafos", []string{"odessa", "constanta", "varna", "istanbul", "poti"}, 1900},
	// --- Europe <-> Asia trunks through Suez ---
	{"sea-me-we-3", []string{
		"norden", "bude", "sines", "marseille", "palermo", "alexandria",
		"suez", "jeddah", "djibouti", "muscat", "karachi", "mumbai",
		"cochin", "colombo", "penang", "singapore", "jakarta", "perth",
		"da-nang", "hong-kong", "shantou", "toucheng", "busan", "chikura",
		"okinawa"}, 39000},
	{"sea-me-we-4", []string{
		"marseille", "alexandria", "suez", "jeddah", "karachi", "mumbai",
		"colombo", "chennai", "penang", "singapore"}, 18800},
	{"sea-me-we-5", []string{
		"marseille", "chania", "alexandria", "suez", "jeddah", "djibouti",
		"muscat", "fujairah", "karachi", "mumbai", "colombo", "coxs-bazar",
		"yangon", "songkhla", "penang", "singapore"}, 20000},
	{"aae-1", []string{
		"marseille", "alexandria", "suez", "jeddah", "djibouti", "fujairah",
		"karachi", "mumbai", "colombo", "yangon", "songkhla", "penang",
		"singapore", "vung-tau", "hong-kong"}, 25000},
	// Shanghai's cables are all very long multi-city systems (>= 28000 km,
	// §4.3.4 China).
	{"flag-europe-asia", []string{
		"bude", "sines", "alexandria", "suez", "jeddah", "fujairah",
		"mumbai", "penang", "songkhla", "hong-kong", "shanghai", "busan",
		"chikura"}, 28000},
	{"trans-pacific-express", []string{
		"qingdao", "shanghai", "toucheng", "keoje", "chikura",
		"nedonna-beach-or"}, 28100},
	{"new-cross-pacific", []string{
		"shanghai", "qingdao", "toucheng", "chikura", "nedonna-beach-or"}, 28200},
	// --- Transpacific ---
	{"unity", []string{"chikura", "los-angeles"}, 9620},
	{"faster", []string{"shima", "kitaibaraki", "nedonna-beach-or"}, 11629},
	{"jupiter", []string{"shima", "chikura", "los-angeles"}, 14000},
	{"pc-1", []string{"kitaibaraki", "shima", "nedonna-beach-or"}, 21000},
	{"japan-hawaii-us", []string{"chikura", "honolulu", "san-luis-obispo"}, 13000},
	// The S1 survivor on the US west coast: Southern California to
	// Hawaii/Micronesia/Philippines/Indonesia, all low-latitude (§4.3.4 US).
	{"sea-us", []string{"davao", "manado", "guam", "honolulu", "los-angeles"}, 14500},
	{"aag", []string{
		"mersing", "singapore", "brunei", "vung-tau", "hong-kong", "manila",
		"guam", "honolulu", "san-luis-obispo"}, 20000},
	// --- Oceania ---
	{"southern-cross", []string{"sydney", "auckland", "suva", "honolulu", "san-luis-obispo"}, 30500},
	{"hawaiki", []string{"sydney", "auckland", "honolulu", "nedonna-beach-or"}, 15000},
	{"tasman-global", []string{"sydney", "auckland"}, 2288},
	{"australia-singapore", []string{"perth", "jakarta", "singapore"}, 4600},
	{"ppc-1", []string{"sydney", "port-moresby"}, 6900},
	{"honotua", []string{"papeete", "honolulu"}, 4805},
	{"manatua", []string{"apia", "papeete"}, 3600},
	{"north-west-cable", []string{"darwin", "port-moresby"}, 2100},
	{"indigo-west", []string{"perth", "jakarta", "singapore"}, 9200},
	// --- Americas ---
	{"monet", []string{"boca-raton", "fortaleza", "santos"}, 10556},
	{"americas-ii", []string{"boca-raton", "san-juan", "port-of-spain", "fortaleza"}, 8373},
	{"sam-1", []string{
		"boca-raton", "san-juan", "fortaleza", "rio-de-janeiro", "santos",
		"las-toninas", "valparaiso", "lurin", "barranquilla", "puerto-limon"}, 25000},
	{"atlantis-2", []string{"las-toninas", "rio-de-janeiro", "fortaleza", "dakar", "lisbon"}, 12000},
	{"south-pacific-chile", []string{"valparaiso", "lurin", "salinas", "panama-city"}, 7050},
	{"arcos", []string{
		"miami", "nassau", "santo-domingo", "san-juan", "cancun",
		"puerto-limon", "colon", "barranquilla", "camuri"}, 8600},
	{"maya-1", []string{"miami", "cancun", "puerto-limon", "colon"}, 4400},
	{"pan-american-crossing", []string{"los-angeles", "mazatlan", "panama-city"}, 10000},
	{"sacs", []string{"fortaleza", "luanda"}, 6165},
	{"gemini-bermuda", []string{"hamilton", "wall-nj"}, 1500},
	{"alaska-united", []string{"anchorage", "juneau", "seattle"}, 3500},
	{"alaska-bc", []string{"juneau", "vancouver"}, 1300},
	// --- Africa ---
	{"equiano", []string{"lisbon", "accra", "lagos", "swakopmund", "melkbosstrand"}, 15000},
	{"wacs", []string{
		"lisbon", "dakar", "abidjan", "accra", "lagos", "douala", "luanda",
		"swakopmund", "melkbosstrand"}, 14530},
	{"sat-3", []string{
		"sines", "dakar", "abidjan", "accra", "lagos", "douala", "luanda",
		"melkbosstrand"}, 13000},
	{"ace", []string{"brest", "casablanca", "dakar", "abidjan", "accra", "lagos"}, 17000},
	{"main-one", []string{"lisbon", "accra", "lagos"}, 7000},
	{"eassy", []string{
		"mtunzini", "maputo", "dar-es-salaam", "mombasa", "mogadishu",
		"djibouti", "port-sudan"}, 10000},
	{"seacom", []string{
		"mtunzini", "dar-es-salaam", "mombasa", "djibouti", "zafarana",
		"mumbai"}, 17000},
	{"safe", []string{"melkbosstrand", "mtunzini", "port-louis", "cochin", "penang"}, 13500},
	{"lion", []string{"port-louis", "toliara", "mombasa"}, 4000},
	{"metiss", []string{"port-louis", "toliara", "mtunzini"}, 3200},
	// --- Middle East / South Asia regional ---
	{"falcon", []string{
		"suez", "jeddah", "al-hudaydah", "djibouti", "muscat", "fujairah",
		"manama", "doha", "karachi", "mumbai"}, 10300},
	{"gulf-bridge", []string{"fujairah", "doha", "manama", "muscat"}, 1700},
	{"i2i", []string{"chennai", "singapore"}, 3100},
	{"tata-indicom", []string{"chennai", "singapore"}, 3175},
	{"bay-of-bengal-gateway", []string{
		"muscat", "fujairah", "mumbai", "chennai", "penang", "singapore"}, 8000},
	// --- Intra-Asia ---
	{"sijori", []string{"singapore", "batam"}, 90},
	{"batam-dumai-melaka", []string{"batam", "mersing"}, 300},
	{"jasuka", []string{"jakarta", "batam", "singapore"}, 1800},
	{"matrix", []string{"jakarta", "singapore"}, 1055},
	{"gulf-of-thailand", []string{"songkhla", "sihanoukville", "vung-tau"}, 1300},
	{"tgn-intra-asia", []string{"singapore", "vung-tau", "hong-kong", "manila", "toucheng"}, 6700},
	{"sjc", []string{
		"singapore", "batam", "brunei", "hong-kong", "shantou", "toucheng",
		"chikura"}, 8900},
	// The most survivable China system under S1: China to Japan,
	// Philippines, Singapore, Malaysia (§4.3.4 China).
	{"sjc-2", []string{"shantou", "hong-kong", "chikura", "manila", "singapore", "mersing"}, 10500},
	{"apcn-2", []string{
		"singapore", "hong-kong", "shantou", "toucheng", "busan", "chikura",
		"okinawa"}, 19000},
	{"east-asia-crossing", []string{"hong-kong", "toucheng", "okinawa", "chikura", "busan"}, 19800},
	{"korea-japan", []string{"busan", "keoje", "kitaibaraki"}, 1300},
	{"hong-kong-taiwan", []string{"hong-kong", "fangshan"}, 800},
	{"russia-japan", []string{"nakhodka", "kitaibaraki"}, 1800},
	{"hainan-vietnam", []string{"hong-kong", "da-nang", "vung-tau"}, 1800},
	{"okinawa-taiwan", []string{"okinawa", "toucheng"}, 700},
	{"dhiraagu", []string{"male", "colombo"}, 840},
	// --- Additional real systems (snapshot-era) ---
	{"curie", []string{"los-angeles", "valparaiso"}, 10500},
	{"brusa", []string{"virginia-beach", "san-juan", "fortaleza", "rio-de-janeiro"}, 11000},
	{"seabras-1", []string{"new-york", "santos"}, 10800},
	{"sail", []string{"fortaleza", "douala"}, 6000},
	{"amx-1", []string{
		"miami", "cancun", "cartagena", "barranquilla", "san-juan",
		"fortaleza", "rio-de-janeiro", "santos"}, 17800},
	{"pccs", []string{"jacksonville", "san-juan", "cartagena", "salinas", "panama-city"}, 6000},
	{"tannat", []string{"santos", "maldonado", "las-toninas"}, 2000},
	{"junior", []string{"rio-de-janeiro", "santos"}, 390},
	{"malbec", []string{"las-toninas", "rio-de-janeiro"}, 2600},
	{"austral", []string{"valparaiso", "puerto-montt", "punta-arenas"}, 2800},
	{"guyana-bridge", []string{"port-of-spain", "georgetown", "paramaribo", "cayenne"}, 1700},
	{"cayman-jamaica", []string{"grand-cayman", "kingston"}, 850},
	{"fibralink", []string{"kingston", "santo-domingo"}, 900},
	{"bahamas-2", []string{"nassau", "boca-raton"}, 470},
	{"haiti-connect", []string{"port-au-prince", "kingston"}, 550},
	{"peace", []string{"karachi", "djibouti", "mombasa", "marseille"}, 12000},
	{"dare-1", []string{"djibouti", "mogadishu", "mombasa"}, 4747},
	{"oman-australia", []string{"muscat", "perth"}, 9800},
	{"iox", []string{"port-louis", "mumbai"}, 8850},
	{"seychelles-east-africa", []string{"victoria-seychelles", "dar-es-salaam"}, 1900},
	{"fly-lion-3", []string{"moroni", "toliara"}, 1450},
	{"gulf-2", []string{"kuwait", "manama", "doha", "fujairah"}, 1300},
	{"canaries-link", []string{"las-palmas", "casablanca"}, 1400},
	{"azores-link", []string{"azores", "lisbon"}, 1500},
	{"cape-verde-link", []string{"praia", "dakar"}, 800},
	{"svalbard-cable", []string{"longyearbyen", "harstad"}, 1375},
	// The planned Arctic route the paper flags as latency-attractive but
	// GIC-exposed (§5.1): a deliberately high-band system.
	{"polar-express", []string{"murmansk", "vladivostok"}, 12650},
	{"japan-guam-australia", []string{"shima", "guam", "sydney"}, 9500},
	{"australia-japan-cable", []string{"sydney", "guam", "chikura"}, 12700},
	{"coral-sea", []string{"sydney", "port-moresby", "honiara"}, 4700},
	{"tonga-cable", []string{"nukualofa", "suva"}, 827},
	{"interchange-vanuatu", []string{"port-vila", "suva"}, 1258},
	{"gondwana", []string{"noumea", "sydney"}, 2100},
	{"hantru-1", []string{"majuro", "pohnpei", "guam"}, 3400},
	{"palau-spur", []string{"palau", "guam"}, 1450},
	{"marianas-link", []string{"saipan", "guam"}, 280},
	{"samoa-hawaii", []string{"pago-pago", "apia", "honolulu"}, 4200},
	{"southern-cross-next", []string{
		"sydney", "auckland", "suva", "tarawa", "honolulu", "los-angeles"}, 15857},
	{"borneo-ring", []string{"kuching", "kota-kinabalu", "brunei"}, 1200},
	{"philippines-domestic", []string{"cebu", "manila", "davao"}, 1500},
	{"sulawesi-link", []string{"makassar", "surabaya"}, 800},
	{"hainan-ring", []string{"sanya", "hong-kong", "da-nang"}, 1900},
}

// TrunkCount reports how many hand-crafted trunk systems seed the
// submarine network.
func TrunkCount() int { return len(trunks) }
