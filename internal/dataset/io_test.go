package dataset

import (
	"bytes"
	"strings"
	"testing"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

func smallNet() *topology.Network {
	return &topology.Network{
		Name: "tiny",
		Nodes: []topology.Node{
			{Name: "a", Coord: geo.Coord{Lat: 1, Lon: 2}, HasCoord: true, Country: "aa"},
			{Name: "b", Coord: geo.Coord{Lat: 3, Lon: 4}, HasCoord: true, Country: "bb"},
			{Name: "c", HasCoord: false},
		},
		Cables: []topology.Cable{
			{Name: "ab", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 500}}, KnownLength: true},
			{Name: "bc", Segments: []topology.Segment{{A: 1, B: 2, LengthKm: 100}}, KnownLength: false},
		},
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNetworkJSON(&buf, smallNet()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetworkJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := smallNet()
	if got.Name != want.Name || len(got.Nodes) != len(want.Nodes) || len(got.Cables) != len(want.Cables) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Errorf("node %d: %+v != %+v", i, got.Nodes[i], want.Nodes[i])
		}
	}
	for i := range want.Cables {
		if got.Cables[i].Name != want.Cables[i].Name ||
			got.Cables[i].KnownLength != want.Cables[i].KnownLength ||
			got.Cables[i].LengthKm() != want.Cables[i].LengthKm() {
			t.Errorf("cable %d mismatch", i)
		}
	}
}

func TestNetworkJSONRoundTripGenerated(t *testing.T) {
	net, err := GenerateSubmarine(DefaultSubmarineConfig(), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetworkJSON(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetworkJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(net.Nodes) || len(got.Cables) != len(net.Cables) {
		t.Fatal("generated network did not round-trip")
	}
}

func TestReadNetworkJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadNetworkJSON(strings.NewReader("not json")); err == nil {
		t.Error("want decode error")
	}
}

func TestReadNetworkJSONRejectsWrongSchema(t *testing.T) {
	if _, err := ReadNetworkJSON(strings.NewReader(`{"schema":{"version":99}}`)); err == nil {
		t.Error("want schema error")
	}
}

func TestReadNetworkJSONRejectsInvalidNetwork(t *testing.T) {
	// dangling segment
	in := `{"name":"x","nodes":[{"name":"a","has_coord":false}],
		"cables":[{"name":"c","segments":[{"a":0,"b":5,"length_km":10}],"known_length":true}],
		"schema":{"version":1}}`
	if _, err := ReadNetworkJSON(strings.NewReader(in)); err == nil {
		t.Error("want validation error")
	}
}

func TestWriteEndpointsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEndpointsCSV(&buf, smallNet()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + two nodes with coordinates (node c excluded)
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "name,country,lat,lon" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a,aa,1.0000,2.0000") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteSitesCSV(t *testing.T) {
	var buf bytes.Buffer
	sites := []Site{{Name: "x", Coord: geo.Coord{Lat: -1.5, Lon: 7.25}}}
	if err := WriteSitesCSV(&buf, sites); err != nil {
		t.Fatal(err)
	}
	want := "name,lat,lon\nx,-1.5000,7.2500\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}
