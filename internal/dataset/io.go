package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
)

// networkJSON is the on-disk schema for a cable network.
type networkJSON struct {
	Name   string        `json:"name"`
	Nodes  []nodeJSON    `json:"nodes"`
	Cables []cableJSON   `json:"cables"`
	Schema schemaVersion `json:"schema"`
}

type schemaVersion struct {
	Version int `json:"version"`
}

type nodeJSON struct {
	Name     string  `json:"name"`
	Lat      float64 `json:"lat,omitempty"`
	Lon      float64 `json:"lon,omitempty"`
	HasCoord bool    `json:"has_coord"`
	Country  string  `json:"country,omitempty"`
}

type cableJSON struct {
	Name        string        `json:"name"`
	Segments    []segmentJSON `json:"segments"`
	KnownLength bool          `json:"known_length"`
}

type segmentJSON struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	LengthKm float64 `json:"length_km"`
}

const currentSchema = 1

// WriteNetworkJSON serialises a network.
func WriteNetworkJSON(w io.Writer, n *topology.Network) error {
	out := networkJSON{Name: n.Name, Schema: schemaVersion{Version: currentSchema}}
	for _, nd := range n.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON{
			Name: nd.Name, Lat: nd.Coord.Lat, Lon: nd.Coord.Lon,
			HasCoord: nd.HasCoord, Country: nd.Country,
		})
	}
	for _, c := range n.Cables {
		cj := cableJSON{Name: c.Name, KnownLength: c.KnownLength}
		for _, s := range c.Segments {
			cj.Segments = append(cj.Segments, segmentJSON{A: s.A, B: s.B, LengthKm: s.LengthKm})
		}
		out.Cables = append(out.Cables, cj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadNetworkJSON parses a network and validates it.
func ReadNetworkJSON(r io.Reader) (*topology.Network, error) {
	var in networkJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decode network: %w", err)
	}
	if in.Schema.Version != currentSchema {
		return nil, fmt.Errorf("dataset: unsupported schema version %d", in.Schema.Version)
	}
	n := &topology.Network{Name: in.Name}
	for _, nd := range in.Nodes {
		n.Nodes = append(n.Nodes, topology.Node{
			Name:     nd.Name,
			Coord:    geo.Coord{Lat: nd.Lat, Lon: nd.Lon},
			HasCoord: nd.HasCoord,
			Country:  nd.Country,
		})
	}
	for _, c := range in.Cables {
		cb := topology.Cable{Name: c.Name, KnownLength: c.KnownLength}
		for _, s := range c.Segments {
			cb.Segments = append(cb.Segments, topology.Segment{A: s.A, B: s.B, LengthKm: s.LengthKm})
		}
		n.Cables = append(n.Cables, cb)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: loaded network invalid: %w", err)
	}
	return n, nil
}

// WriteEndpointsCSV writes one row per node with coordinates:
// name,country,lat,lon.
func WriteEndpointsCSV(w io.Writer, n *topology.Network) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "country", "lat", "lon"}); err != nil {
		return err
	}
	for _, nd := range n.Nodes {
		if !nd.HasCoord {
			continue
		}
		rec := []string{
			nd.Name, nd.Country,
			strconv.FormatFloat(nd.Coord.Lat, 'f', 4, 64),
			strconv.FormatFloat(nd.Coord.Lon, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSitesCSV writes one row per site: name,lat,lon.
func WriteSitesCSV(w io.Writer, sites []Site) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "lat", "lon"}); err != nil {
		return err
	}
	for _, s := range sites {
		rec := []string{
			s.Name,
			strconv.FormatFloat(s.Coord.Lat, 'f', 4, 64),
			strconv.FormatFloat(s.Coord.Lon, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
