package dataset

import "gicnet/internal/geo"

// usCity seeds the synthetic US long-haul fiber network (the Intertubes
// substitution). Coordinates are approximate public knowledge. Weight
// reflects fiber-conduit concentration (Intertubes shows long-haul routes
// hugging major metros and highway corridors).
type usCity struct {
	Name   string
	Coord  geo.Coord
	Weight float64
}

var usCities = []usCity{
	// Northeast
	{"new-york", geo.Coord{Lat: 40.71, Lon: -74.01}, 9},
	{"newark", geo.Coord{Lat: 40.74, Lon: -74.17}, 5},
	{"philadelphia", geo.Coord{Lat: 39.95, Lon: -75.17}, 6},
	{"boston", geo.Coord{Lat: 42.36, Lon: -71.06}, 6},
	{"providence", geo.Coord{Lat: 41.82, Lon: -71.41}, 3},
	{"hartford", geo.Coord{Lat: 41.76, Lon: -72.67}, 3},
	{"albany", geo.Coord{Lat: 42.65, Lon: -73.75}, 3},
	{"syracuse", geo.Coord{Lat: 43.05, Lon: -76.15}, 2.5},
	{"rochester", geo.Coord{Lat: 43.16, Lon: -77.61}, 2.5},
	{"buffalo", geo.Coord{Lat: 42.89, Lon: -78.88}, 3.5},
	{"portland-me", geo.Coord{Lat: 43.66, Lon: -70.26}, 2},
	{"burlington-vt", geo.Coord{Lat: 44.48, Lon: -73.21}, 1.5},
	{"manchester-nh", geo.Coord{Lat: 42.99, Lon: -71.45}, 1.5},
	{"pittsburgh", geo.Coord{Lat: 40.44, Lon: -79.99}, 4},
	{"harrisburg", geo.Coord{Lat: 40.27, Lon: -76.88}, 2.5},
	{"scranton", geo.Coord{Lat: 41.41, Lon: -75.66}, 2},
	// Mid-Atlantic / Southeast
	{"baltimore", geo.Coord{Lat: 39.29, Lon: -76.61}, 4},
	{"washington-dc", geo.Coord{Lat: 38.91, Lon: -77.04}, 8},
	{"ashburn", geo.Coord{Lat: 39.04, Lon: -77.49}, 7},
	{"richmond", geo.Coord{Lat: 37.54, Lon: -77.44}, 3},
	{"norfolk", geo.Coord{Lat: 36.85, Lon: -76.29}, 3},
	{"raleigh", geo.Coord{Lat: 35.78, Lon: -78.64}, 3.5},
	{"charlotte", geo.Coord{Lat: 35.23, Lon: -80.84}, 4},
	{"greensboro", geo.Coord{Lat: 36.07, Lon: -79.79}, 2.5},
	{"columbia-sc", geo.Coord{Lat: 34.00, Lon: -81.03}, 2},
	{"charleston-sc", geo.Coord{Lat: 32.78, Lon: -79.93}, 2},
	{"atlanta", geo.Coord{Lat: 33.75, Lon: -84.39}, 7},
	{"savannah", geo.Coord{Lat: 32.08, Lon: -81.09}, 2},
	{"jacksonville", geo.Coord{Lat: 30.33, Lon: -81.66}, 3.5},
	{"orlando", geo.Coord{Lat: 28.54, Lon: -81.38}, 3.5},
	{"tampa", geo.Coord{Lat: 27.95, Lon: -82.46}, 3.5},
	{"miami", geo.Coord{Lat: 25.76, Lon: -80.19}, 6},
	{"tallahassee", geo.Coord{Lat: 30.44, Lon: -84.28}, 2},
	{"birmingham", geo.Coord{Lat: 33.52, Lon: -86.80}, 2.5},
	{"nashville", geo.Coord{Lat: 36.16, Lon: -86.78}, 3.5},
	{"memphis", geo.Coord{Lat: 35.15, Lon: -90.05}, 3},
	{"knoxville", geo.Coord{Lat: 35.96, Lon: -83.92}, 2},
	{"louisville", geo.Coord{Lat: 38.25, Lon: -85.76}, 2.5},
	{"lexington", geo.Coord{Lat: 38.04, Lon: -84.50}, 2},
	// Midwest
	{"cleveland", geo.Coord{Lat: 41.50, Lon: -81.69}, 4},
	{"columbus-oh", geo.Coord{Lat: 39.96, Lon: -83.00}, 4},
	{"cincinnati", geo.Coord{Lat: 39.10, Lon: -84.51}, 3.5},
	{"toledo", geo.Coord{Lat: 41.65, Lon: -83.54}, 2.5},
	{"akron", geo.Coord{Lat: 41.08, Lon: -81.52}, 2},
	{"detroit", geo.Coord{Lat: 42.33, Lon: -83.05}, 4.5},
	{"grand-rapids", geo.Coord{Lat: 42.96, Lon: -85.66}, 2},
	{"indianapolis", geo.Coord{Lat: 39.77, Lon: -86.16}, 3.5},
	{"chicago", geo.Coord{Lat: 41.88, Lon: -87.63}, 9},
	{"milwaukee", geo.Coord{Lat: 43.04, Lon: -87.91}, 3},
	{"madison", geo.Coord{Lat: 43.07, Lon: -89.40}, 2},
	{"minneapolis", geo.Coord{Lat: 44.98, Lon: -93.27}, 4.5},
	{"duluth", geo.Coord{Lat: 46.79, Lon: -92.10}, 1.5},
	{"des-moines", geo.Coord{Lat: 41.59, Lon: -93.62}, 2.5},
	{"omaha", geo.Coord{Lat: 41.26, Lon: -95.94}, 3},
	{"kansas-city", geo.Coord{Lat: 39.10, Lon: -94.58}, 4},
	{"st-louis", geo.Coord{Lat: 38.63, Lon: -90.20}, 4},
	{"springfield-mo", geo.Coord{Lat: 37.21, Lon: -93.29}, 1.5},
	{"wichita", geo.Coord{Lat: 37.69, Lon: -97.34}, 2},
	{"fargo", geo.Coord{Lat: 46.88, Lon: -96.79}, 1.5},
	{"sioux-falls", geo.Coord{Lat: 43.54, Lon: -96.73}, 1.5},
	{"bismarck", geo.Coord{Lat: 46.81, Lon: -100.78}, 1.2},
	// South Central
	{"new-orleans", geo.Coord{Lat: 29.95, Lon: -90.07}, 3},
	{"baton-rouge", geo.Coord{Lat: 30.45, Lon: -91.19}, 2},
	{"jackson-ms", geo.Coord{Lat: 32.30, Lon: -90.18}, 1.8},
	{"little-rock", geo.Coord{Lat: 34.75, Lon: -92.29}, 2},
	{"houston", geo.Coord{Lat: 29.76, Lon: -95.37}, 6},
	{"dallas", geo.Coord{Lat: 32.78, Lon: -96.80}, 7},
	{"austin", geo.Coord{Lat: 30.27, Lon: -97.74}, 4},
	{"san-antonio", geo.Coord{Lat: 29.42, Lon: -98.49}, 4},
	{"el-paso", geo.Coord{Lat: 31.76, Lon: -106.49}, 2.5},
	{"oklahoma-city", geo.Coord{Lat: 35.47, Lon: -97.52}, 2.5},
	{"tulsa", geo.Coord{Lat: 36.15, Lon: -95.99}, 2},
	{"amarillo", geo.Coord{Lat: 35.22, Lon: -101.83}, 1.5},
	{"lubbock", geo.Coord{Lat: 33.58, Lon: -101.86}, 1.3},
	// Mountain
	{"denver", geo.Coord{Lat: 39.74, Lon: -104.99}, 5},
	{"colorado-springs", geo.Coord{Lat: 38.83, Lon: -104.82}, 2},
	{"cheyenne", geo.Coord{Lat: 41.14, Lon: -104.82}, 1.5},
	{"casper", geo.Coord{Lat: 42.87, Lon: -106.31}, 1.2},
	{"billings", geo.Coord{Lat: 45.78, Lon: -108.50}, 1.5},
	{"helena", geo.Coord{Lat: 46.59, Lon: -112.04}, 1.2},
	{"boise", geo.Coord{Lat: 43.62, Lon: -116.21}, 2},
	{"salt-lake-city", geo.Coord{Lat: 40.76, Lon: -111.89}, 4},
	{"albuquerque", geo.Coord{Lat: 35.08, Lon: -106.65}, 2.5},
	{"phoenix", geo.Coord{Lat: 33.45, Lon: -112.07}, 4.5},
	{"tucson", geo.Coord{Lat: 32.22, Lon: -110.97}, 2},
	{"las-vegas", geo.Coord{Lat: 36.17, Lon: -115.14}, 3.5},
	{"reno", geo.Coord{Lat: 39.53, Lon: -119.81}, 2},
	// Pacific
	{"seattle", geo.Coord{Lat: 47.61, Lon: -122.33}, 5.5},
	{"tacoma", geo.Coord{Lat: 47.25, Lon: -122.44}, 2},
	{"spokane", geo.Coord{Lat: 47.66, Lon: -117.43}, 1.8},
	{"portland-or", geo.Coord{Lat: 45.52, Lon: -122.68}, 4},
	{"eugene", geo.Coord{Lat: 44.05, Lon: -123.09}, 1.5},
	{"medford", geo.Coord{Lat: 42.33, Lon: -122.88}, 1.3},
	{"sacramento", geo.Coord{Lat: 38.58, Lon: -121.49}, 3},
	{"san-francisco", geo.Coord{Lat: 37.77, Lon: -122.42}, 7},
	{"san-jose", geo.Coord{Lat: 37.34, Lon: -121.89}, 6},
	{"fresno", geo.Coord{Lat: 36.74, Lon: -119.79}, 2},
	{"bakersfield", geo.Coord{Lat: 35.37, Lon: -119.02}, 1.8},
	{"los-angeles", geo.Coord{Lat: 34.05, Lon: -118.24}, 8},
	{"san-diego", geo.Coord{Lat: 32.72, Lon: -117.16}, 4},
	{"santa-barbara", geo.Coord{Lat: 34.42, Lon: -119.70}, 1.5},
}

// USCityCount reports the number of seed cities.
func USCityCount() int { return len(usCities) }
