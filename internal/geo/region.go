package geo

// Region is a coarse continental region used for reporting. Assignment is
// by bounding boxes over lat/lon, which is sufficient for the coastal hub
// anchors the synthetic world is seeded from.
type Region string

// Continental regions.
const (
	RegionNorthAmerica Region = "north-america"
	RegionSouthAmerica Region = "south-america"
	RegionEurope       Region = "europe"
	RegionAfrica       Region = "africa"
	RegionAsia         Region = "asia"
	RegionOceania      Region = "oceania"
	RegionAntarctica   Region = "antarctica"
	RegionOcean        Region = "ocean"
)

// box is an inclusive lat/lon bounding box.
type box struct {
	minLat, maxLat float64
	minLon, maxLon float64
	region         Region
}

// regionBoxes are evaluated in order; the first containing box wins.
// Boxes are deliberately coarse: they classify the land-adjacent anchor
// points used by the dataset generators, not arbitrary ocean points.
var regionBoxes = []box{
	{59, 90, -75, -10, RegionEurope},       // Iceland, Scandinavia above 59N
	{35, 72, -11, 45, RegionEurope},        // core Europe
	{45, 72, 45, 180, RegionAsia},          // northern Asia / Russia east of Urals
	{12, 45, 26, 180, RegionAsia},          // core Asia, Middle East east of 26E
	{-11, 12, 92, 142, RegionAsia},         // maritime SE Asia
	{-30, 30, -180, -120, RegionOceania},   // Pacific islands incl. Hawaii
	{7, 84, -170, -50, RegionNorthAmerica}, // North America incl. Alaska
	{50, 72, -180, -168, RegionNorthAmerica},
	{-56, 7, -95, -32, RegionSouthAmerica},
	{-40, 35, -26, 26, RegionAfrica},    // Africa west of 26E
	{-35, 12, 26, 52, RegionAfrica},     // east Africa
	{-12, 13, 40, 55, RegionAfrica},     // Horn of Africa
	{-50, -10, 110, 180, RegionOceania}, // Australia, NZ
	{-25, 0, 142, 180, RegionOceania},   // Melanesia
	{-90, -60, -180, 180, RegionAntarctica},
}

// RegionOf classifies a coordinate into a coarse continental region.
// Points matching no box are RegionOcean.
func RegionOf(c Coord) Region {
	for _, b := range regionBoxes {
		if c.Lat >= b.minLat && c.Lat <= b.maxLat &&
			c.Lon >= b.minLon && c.Lon <= b.maxLon {
			return b.region
		}
	}
	return RegionOcean
}

// Regions lists all continental regions in report order.
func Regions() []Region {
	return []Region{
		RegionNorthAmerica, RegionSouthAmerica, RegionEurope,
		RegionAfrica, RegionAsia, RegionOceania, RegionAntarctica,
	}
}
