// Package geo provides the geodesic substrate used by every topology and
// failure analysis in this repository: geographic coordinates, great-circle
// distance and interpolation, latitude banding, and coarse region tagging.
//
// All distances are in kilometres and all angles in degrees unless a name
// says otherwise. The Earth is modelled as a sphere of radius EarthRadiusKm,
// which is the convention used by the paper's datasets (cable lengths are
// route lengths, not geodesics, so sub-percent spheroid error is irrelevant).
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for all great-circle math.
const EarthRadiusKm = 6371.0088

// Coord is a geographic coordinate in decimal degrees.
// Latitude is positive north, longitude positive east.
type Coord struct {
	Lat float64
	Lon float64
}

// ErrInvalidCoord reports a coordinate outside the valid range.
var ErrInvalidCoord = errors.New("geo: coordinate out of range")

// NewCoord validates and returns a coordinate.
func NewCoord(lat, lon float64) (Coord, error) {
	c := Coord{Lat: lat, Lon: lon}
	if err := c.Validate(); err != nil {
		return Coord{}, err
	}
	return c, nil
}

// Validate reports whether the coordinate lies in [-90,90] x [-180,180].
func (c Coord) Validate() error {
	if math.IsNaN(c.Lat) || math.IsNaN(c.Lon) ||
		c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
		return fmt.Errorf("%w: (%v, %v)", ErrInvalidCoord, c.Lat, c.Lon)
	}
	return nil
}

// String renders the coordinate as "lat,lon" with 4 decimal places.
func (c Coord) String() string {
	return fmt.Sprintf("%.4f,%.4f", c.Lat, c.Lon)
}

// AbsLat returns the absolute latitude, the quantity GIC risk depends on.
func (c Coord) AbsLat() float64 { return math.Abs(c.Lat) }

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Haversine returns the great-circle distance between a and b in km.
func Haversine(a, b Coord) float64 {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp to guard against floating-point drift pushing s past 1.
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(s))
}

// InitialBearing returns the initial great-circle bearing from a to b,
// in degrees clockwise from north, normalised to [0, 360).
func InitialBearing(a, b Coord) float64 {
	lat1, lat2 := radians(a.Lat), radians(b.Lat)
	dLon := radians(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	brng := degrees(math.Atan2(y, x))
	return math.Mod(brng+360, 360)
}

// Destination returns the point reached by travelling distKm from start
// along the given initial bearing (degrees clockwise from north).
func Destination(start Coord, bearingDeg, distKm float64) Coord {
	lat1 := radians(start.Lat)
	lon1 := radians(start.Lon)
	brng := radians(bearingDeg)
	d := distKm / EarthRadiusKm
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	lon := math.Mod(degrees(lon2)+540, 360) - 180
	return Coord{Lat: degrees(lat2), Lon: lon}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Coord) Coord {
	return Interpolate(a, b, 0.5)
}

// Interpolate returns the point a fraction f in [0,1] along the great
// circle from a to b. f=0 returns a, f=1 returns b. Antipodal inputs,
// where the great circle is ill-defined, fall back to linear lat/lon
// interpolation (no dataset in this repo contains antipodal endpoints).
func Interpolate(a, b Coord, f float64) Coord {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	d := Haversine(a, b) / EarthRadiusKm
	if d == 0 {
		return a
	}
	sinD := math.Sin(d)
	if sinD == 0 {
		return Coord{
			Lat: a.Lat + f*(b.Lat-a.Lat),
			Lon: a.Lon + f*(b.Lon-a.Lon),
		}
	}
	p := math.Sin((1-f)*d) / sinD
	q := math.Sin(f*d) / sinD
	x := p*math.Cos(lat1)*math.Cos(lon1) + q*math.Cos(lat2)*math.Cos(lon2)
	y := p*math.Cos(lat1)*math.Sin(lon1) + q*math.Cos(lat2)*math.Sin(lon2)
	z := p*math.Sin(lat1) + q*math.Sin(lat2)
	lat := math.Atan2(z, math.Sqrt(x*x+y*y))
	lon := math.Atan2(y, x)
	return Coord{Lat: degrees(lat), Lon: degrees(lon)}
}

// SamplePath returns n+1 points evenly spaced along the great circle from a
// to b, including both endpoints. n must be >= 1.
func SamplePath(a, b Coord, n int) []Coord {
	if n < 1 {
		n = 1
	}
	pts := make([]Coord, 0, n+1)
	for i := 0; i <= n; i++ {
		pts = append(pts, Interpolate(a, b, float64(i)/float64(n)))
	}
	return pts
}

// PathMaxAbsLat returns the maximum absolute latitude reached along the
// great circle between a and b, sampled at ~100 km resolution. Cables
// between two mid-latitude endpoints can arc substantially poleward; GIC
// exposure follows the path, not just the endpoints.
func PathMaxAbsLat(a, b Coord) float64 {
	d := Haversine(a, b)
	n := int(d/100) + 1
	maxAbs := math.Max(a.AbsLat(), b.AbsLat())
	for i := 1; i < n; i++ {
		p := Interpolate(a, b, float64(i)/float64(n))
		if p.AbsLat() > maxAbs {
			maxAbs = p.AbsLat()
		}
	}
	return maxAbs
}
