package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// known city coordinates used across the tests.
var (
	london   = Coord{Lat: 51.5074, Lon: -0.1278}
	newYork  = Coord{Lat: 40.7128, Lon: -74.0060}
	singapre = Coord{Lat: 1.3521, Lon: 103.8198}
	sydney   = Coord{Lat: -33.8688, Lon: 151.2093}
	quito    = Coord{Lat: -0.1807, Lon: -78.4678}
)

func TestNewCoordValid(t *testing.T) {
	tests := []struct {
		name     string
		lat, lon float64
		wantErr  bool
	}{
		{"origin", 0, 0, false},
		{"north pole", 90, 0, false},
		{"south pole", -90, 0, false},
		{"date line east", 10, 180, false},
		{"date line west", 10, -180, false},
		{"lat too high", 90.0001, 0, true},
		{"lat too low", -91, 0, true},
		{"lon too high", 0, 180.5, true},
		{"lon too low", 0, -181, true},
		{"nan lat", math.NaN(), 0, true},
		{"nan lon", 0, math.NaN(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCoord(tt.lat, tt.lon)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewCoord(%v,%v) err = %v, wantErr %v", tt.lat, tt.lon, err, tt.wantErr)
			}
		})
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		a, b Coord
		want float64 // km
		tol  float64
	}{
		{"london-newyork", london, newYork, 5570, 20},
		{"singapore-sydney", singapre, sydney, 6300, 40},
		{"same point", london, london, 0, 1e-9},
		{"equator quarter", Coord{0, 0}, Coord{0, 90}, 2 * math.Pi * EarthRadiusKm / 4, 1},
		{"pole to pole", Coord{90, 0}, Coord{-90, 0}, math.Pi * EarthRadiusKm, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.a, tt.b)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("Haversine = %v, want %v +- %v", got, tt.want, tt.tol)
			}
		})
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		c := Coord{clampLat(lat3), clampLon(lon3)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineNonNegativeAndBounded(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d := Haversine(a, b)
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 360) - 180
}

func TestDestinationRoundTrip(t *testing.T) {
	// Travelling d km at bearing b then measuring the distance back should
	// recover d for any moderate distance.
	f := func(latSeed, lonSeed, bearingSeed, distSeed float64) bool {
		start := Coord{clampLat(latSeed) * 0.8, clampLon(lonSeed)} // keep away from poles
		bearing := math.Mod(math.Abs(bearingSeed), 360)
		dist := math.Mod(math.Abs(distSeed), 5000)
		if math.IsNaN(bearing) || math.IsNaN(dist) {
			return true
		}
		end := Destination(start, bearing, dist)
		got := Haversine(start, end)
		return math.Abs(got-dist) < 1.0 // within 1 km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	tests := []struct {
		name string
		a, b Coord
		want float64
		tol  float64
	}{
		{"due north", Coord{0, 0}, Coord{10, 0}, 0, 1e-6},
		{"due south", Coord{10, 0}, Coord{0, 0}, 180, 1e-6},
		{"due east on equator", Coord{0, 0}, Coord{0, 10}, 90, 1e-6},
		{"due west on equator", Coord{0, 10}, Coord{0, 0}, 270, 1e-6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := InitialBearing(tt.a, tt.b)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("InitialBearing = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a, b := london, sydney
	p0 := Interpolate(a, b, 0)
	p1 := Interpolate(a, b, 1)
	if Haversine(p0, a) > 1e-6 {
		t.Errorf("Interpolate(...,0) = %v, want %v", p0, a)
	}
	if Haversine(p1, b) > 1e-6 {
		t.Errorf("Interpolate(...,1) = %v, want %v", p1, b)
	}
}

func TestInterpolateMidpointEquidistant(t *testing.T) {
	pairs := [][2]Coord{{london, newYork}, {singapre, sydney}, {quito, london}}
	for _, p := range pairs {
		mid := Midpoint(p[0], p[1])
		d1, d2 := Haversine(p[0], mid), Haversine(mid, p[1])
		if math.Abs(d1-d2) > 1 {
			t.Errorf("midpoint of %v-%v not equidistant: %v vs %v", p[0], p[1], d1, d2)
		}
	}
}

func TestInterpolateAdditive(t *testing.T) {
	// Distances along the path should be proportional to f.
	a, b := newYork, london
	total := Haversine(a, b)
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		p := Interpolate(a, b, f)
		d := Haversine(a, p)
		if math.Abs(d-f*total) > 1 {
			t.Errorf("f=%v: distance %v, want %v", f, d, f*total)
		}
	}
}

func TestSamplePath(t *testing.T) {
	pts := SamplePath(london, newYork, 10)
	if len(pts) != 11 {
		t.Fatalf("len = %d, want 11", len(pts))
	}
	if Haversine(pts[0], london) > 1e-9 || Haversine(pts[10], newYork) > 1e-9 {
		t.Error("endpoints not preserved")
	}
	// successive points should be monotonically farther from the start
	prev := -1.0
	for _, p := range pts {
		d := Haversine(london, p)
		if d < prev-1e-6 {
			t.Errorf("path distances not monotone: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestSamplePathDegenerateN(t *testing.T) {
	pts := SamplePath(london, newYork, 0)
	if len(pts) != 2 {
		t.Fatalf("len = %d, want 2 for n<=1", len(pts))
	}
}

func TestPathMaxAbsLatArcsPoleward(t *testing.T) {
	// The great circle between Seattle-ish and London arcs far north of
	// both endpoints; PathMaxAbsLat must exceed both endpoint latitudes.
	seattle := Coord{47.6, -122.3}
	m := PathMaxAbsLat(seattle, london)
	if m <= seattle.AbsLat() || m <= london.AbsLat() {
		t.Errorf("PathMaxAbsLat = %v, want above both endpoints (%v, %v)",
			m, seattle.AbsLat(), london.AbsLat())
	}
	if m < 60 {
		t.Errorf("Seattle-London arc should exceed 60N, got %v", m)
	}
}

func TestPathMaxAbsLatEquatorial(t *testing.T) {
	// Two equatorial points: path stays near the equator.
	m := PathMaxAbsLat(Coord{0, 0}, Coord{0, 20})
	if m > 0.01 {
		t.Errorf("equatorial path max |lat| = %v, want ~0", m)
	}
}

func TestBandOf(t *testing.T) {
	tests := []struct {
		absLat float64
		want   Band
	}{
		{0, BandLow}, {39.999, BandLow}, {40, BandMid},
		{59.999, BandMid}, {60, BandHigh}, {90, BandHigh},
	}
	for _, tt := range tests {
		if got := BandOf(tt.absLat); got != tt.want {
			t.Errorf("BandOf(%v) = %v, want %v", tt.absLat, got, tt.want)
		}
	}
}

func TestBandOfCoordUsesAbsoluteLatitude(t *testing.T) {
	if BandOfCoord(Coord{-65, 0}) != BandHigh {
		t.Error("southern high latitude should be BandHigh")
	}
	if BandOfCoord(Coord{-45, 0}) != BandMid {
		t.Error("southern mid latitude should be BandMid")
	}
}

func TestBandString(t *testing.T) {
	for _, b := range []Band{BandLow, BandMid, BandHigh} {
		if b.String() == "" {
			t.Errorf("empty string for band %d", int(b))
		}
	}
	if Band(99).String() != "Band(99)" {
		t.Errorf("unexpected fallback: %s", Band(99))
	}
}

func TestFractionAbove(t *testing.T) {
	coords := []Coord{{10, 0}, {-45, 0}, {50, 0}, {65, 0}, {-70, 0}}
	tests := []struct {
		threshold float64
		want      float64
	}{
		{0, 1.0}, {40, 0.8}, {60, 0.4}, {90, 0},
	}
	for _, tt := range tests {
		if got := FractionAbove(coords, tt.threshold); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FractionAbove(%v) = %v, want %v", tt.threshold, got, tt.want)
		}
	}
}

func TestFractionAboveEmpty(t *testing.T) {
	if got := FractionAbove(nil, 10); got != 0 {
		t.Errorf("FractionAbove(nil) = %v, want 0", got)
	}
}

func TestThresholdCurveMonotoneNonIncreasing(t *testing.T) {
	coords := []Coord{{10, 0}, {-45, 0}, {50, 0}, {65, 0}, {-70, 0}, {5, 3}, {88, 2}}
	curve := ThresholdCurve(coords, DefaultThresholds())
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Errorf("curve not non-increasing at %d: %v > %v", i, curve[i], curve[i-1])
		}
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	if len(th) != 10 || th[0] != 0 || th[9] != 90 {
		t.Errorf("unexpected thresholds: %v", th)
	}
}

func TestRegionOfKnownCities(t *testing.T) {
	tests := []struct {
		name string
		c    Coord
		want Region
	}{
		{"new york", newYork, RegionNorthAmerica},
		{"london", london, RegionEurope},
		{"singapore", singapre, RegionAsia},
		{"sydney", sydney, RegionOceania},
		{"quito", quito, RegionSouthAmerica},
		{"lagos", Coord{6.5244, 3.3792}, RegionAfrica},
		{"tokyo", Coord{35.6762, 139.6503}, RegionAsia},
		{"reykjavik", Coord{64.1466, -21.9426}, RegionEurope},
		{"honolulu", Coord{21.3069, -157.8583}, RegionOceania},
		{"mumbai", Coord{19.076, 72.8777}, RegionAsia},
		{"cape town", Coord{-33.9249, 18.4241}, RegionAfrica},
		{"anchorage", Coord{61.2181, -149.9003}, RegionNorthAmerica},
		{"mcmurdo", Coord{-77.85, 166.67}, RegionAntarctica},
		{"mid pacific", Coord{-45, -140}, RegionOcean},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RegionOf(tt.c); got != tt.want {
				t.Errorf("RegionOf(%v) = %v, want %v", tt.c, got, tt.want)
			}
		})
	}
}

func TestRegionsList(t *testing.T) {
	rs := Regions()
	if len(rs) != 7 {
		t.Errorf("Regions() len = %d, want 7", len(rs))
	}
	seen := map[Region]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Errorf("duplicate region %v", r)
		}
		seen[r] = true
	}
}

func TestCoordString(t *testing.T) {
	got := Coord{1.23456, -7.654321}.String()
	want := "1.2346,-7.6543"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func BenchmarkHaversine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Haversine(london, sydney)
	}
}

func BenchmarkPathMaxAbsLat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PathMaxAbsLat(newYork, london)
	}
}
