package geo

import "fmt"

// Band is a latitude risk band. The paper stratifies GIC risk by absolute
// latitude with cut points at 40 and 60 degrees (§3.1, §4.3.3).
type Band int

// Latitude risk bands, from safest to most exposed.
const (
	// BandLow covers |lat| < 40, where induced fields during even a
	// Carrington-scale event are an order of magnitude weaker.
	BandLow Band = iota
	// BandMid covers 40 <= |lat| < 60.
	BandMid
	// BandHigh covers |lat| >= 60, the auroral zone.
	BandHigh
)

// Cut points between bands, in degrees of absolute latitude.
const (
	MidBandCut  = 40.0
	HighBandCut = 60.0
)

// BandOf returns the risk band for an absolute latitude.
func BandOf(absLat float64) Band {
	switch {
	case absLat >= HighBandCut:
		return BandHigh
	case absLat >= MidBandCut:
		return BandMid
	default:
		return BandLow
	}
}

// BandOfCoord returns the risk band of a coordinate.
func BandOfCoord(c Coord) Band { return BandOf(c.AbsLat()) }

// String names the band.
func (b Band) String() string {
	switch b {
	case BandLow:
		return "low(<40)"
	case BandMid:
		return "mid(40-60)"
	case BandHigh:
		return "high(>60)"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// NumBands is the number of latitude risk bands.
const NumBands = 3

// FractionAbove returns the fraction of coords with |lat| strictly above
// the threshold. It is the primitive behind the paper's Figure 4 curves.
func FractionAbove(coords []Coord, threshold float64) float64 {
	if len(coords) == 0 {
		return 0
	}
	n := 0
	for _, c := range coords {
		if c.AbsLat() > threshold {
			n++
		}
	}
	return float64(n) / float64(len(coords))
}

// ThresholdCurve evaluates FractionAbove at each threshold, returning a
// series aligned with thresholds. Used to regenerate Figure 4 and 9a.
func ThresholdCurve(coords []Coord, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		out[i] = FractionAbove(coords, t)
	}
	return out
}

// DefaultThresholds are the x-axis values used by the paper's Figure 4
// and Figure 9a: 0,10,...,90 degrees.
func DefaultThresholds() []float64 {
	t := make([]float64, 10)
	for i := range t {
		t[i] = float64(i * 10)
	}
	return t
}
