package econ

import (
	"math"
	"testing"

	"gicnet/internal/geo"
)

func TestOutageValidation(t *testing.T) {
	bad := []Outage{
		{Region: geo.RegionEurope, LossFrac: -0.1, RestoreDays: 10},
		{Region: geo.RegionEurope, LossFrac: 1.1, RestoreDays: 10},
		{Region: geo.RegionEurope, LossFrac: 0.5, RestoreDays: -1},
	}
	for i, o := range bad {
		if _, err := o.Cost(); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestOutageCostIntegral(t *testing.T) {
	// Full US-region outage for 2 days, linear restoration: integral is
	// daily * 1.0 * 2/2 = one full day of cost.
	o := Outage{Region: geo.RegionNorthAmerica, LossFrac: 1, RestoreDays: 2}
	c, err := o.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-DailyCostUSD[geo.RegionNorthAmerica]) > 1 {
		t.Errorf("cost = %v", c)
	}
	// Zero-duration outage costs nothing.
	o.RestoreDays = 0
	if c, _ := o.Cost(); c != 0 {
		t.Errorf("instant outage cost = %v", c)
	}
	// Unmodelled region costs nothing.
	ocean := Outage{Region: geo.RegionOcean, LossFrac: 1, RestoreDays: 100}
	if c, _ := ocean.Cost(); c != 0 {
		t.Errorf("ocean cost = %v", c)
	}
}

func TestPaperHeadlineMagnitude(t *testing.T) {
	// A Carrington-scale event: near-total loss in the northern regions,
	// months of restoration. Total should land in the paper's cited
	// trillion-dollar regime (the Lloyd's grid estimate is $0.6-2.6T).
	est, err := FromScenario(map[geo.Region]float64{
		geo.RegionNorthAmerica: 0.9,
		geo.RegionEurope:       0.85,
		geo.RegionAsia:         0.6,
		geo.RegionSouthAmerica: 0.4,
		geo.RegionAfrica:       0.4,
		geo.RegionOceania:      0.7,
	}, 150)
	if err != nil {
		t.Fatal(err)
	}
	tr := Trillions(est.TotalUSD)
	if tr < 0.5 || tr > 3 {
		t.Errorf("Carrington-scale estimate = $%.2fT, want in the 0.6-2.6T regime", tr)
	}
}

func TestEstimateBreakdownAndRanking(t *testing.T) {
	est, err := EstimateOutages([]Outage{
		{Region: geo.RegionAfrica, LossFrac: 1, RestoreDays: 10},
		{Region: geo.RegionAsia, LossFrac: 1, RestoreDays: 10},
		{Region: geo.RegionAsia, LossFrac: 0.5, RestoreDays: 4}, // second asian outage accumulates
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.ByRegion[geo.RegionAsia] <= est.ByRegion[geo.RegionAfrica] {
		t.Error("asia should dominate africa")
	}
	top := est.TopRegions()
	if top[0] != geo.RegionAsia {
		t.Errorf("top region = %v", top[0])
	}
	sum := 0.0
	for _, c := range est.ByRegion {
		sum += c
	}
	if math.Abs(sum-est.TotalUSD) > 1 {
		t.Error("total does not match breakdown")
	}
}

func TestFromScenarioValidation(t *testing.T) {
	if _, err := FromScenario(nil, -1); err == nil {
		t.Error("want restoration error")
	}
	est, err := FromScenario(nil, 10)
	if err != nil || est.TotalUSD != 0 {
		t.Errorf("empty scenario: %v, %v", est, err)
	}
}

func TestFormatters(t *testing.T) {
	if Trillions(2.5e12) != 2.5 || Billions(7.1e9) != 7.1 {
		t.Error("formatters broken")
	}
	if USDailyCostUSD != 7.1e9 {
		t.Error("paper headline constant changed")
	}
}

func TestEstimateOutagesPropagatesErrors(t *testing.T) {
	if _, err := EstimateOutages([]Outage{{Region: geo.RegionAsia, LossFrac: 2}}); err == nil {
		t.Error("want validation error")
	}
}
