// Package econ estimates the economic cost of Internet disruption, the
// framing the paper opens with: one day of Internet outage costs the US
// alone over $7 billion (NetBlocks' cost tool, cited as [1]), and a
// Carrington-scale grid event is estimated at $0.6-2.6 trillion total.
// The model distributes a per-day, per-region cost over the outage
// fraction and the restoration timeline.
package econ

import (
	"errors"
	"sort"

	"gicnet/internal/geo"
)

// DailyCostUSD is the estimated full-outage cost per day for a region, in
// US dollars. Values extrapolate the paper's $7.1B/day US figure by rough
// digital-economy share; they are order-of-magnitude planning numbers.
var DailyCostUSD = map[geo.Region]float64{
	geo.RegionNorthAmerica: 8.5e9,
	geo.RegionEurope:       7.5e9,
	geo.RegionAsia:         9.0e9,
	geo.RegionSouthAmerica: 1.5e9,
	geo.RegionAfrica:       0.8e9,
	geo.RegionOceania:      0.7e9,
}

// USDailyCostUSD is the paper's headline number for the US alone.
const USDailyCostUSD = 7.1e9

// Outage describes one region's connectivity loss over time.
type Outage struct {
	Region geo.Region
	// LossFrac is the initial fraction of international connectivity
	// lost (0-1).
	LossFrac float64
	// RestoreDays is when the loss is fully repaired; restoration is
	// linear in between.
	RestoreDays float64
}

// Validate reports parameter errors.
func (o Outage) Validate() error {
	if o.LossFrac < 0 || o.LossFrac > 1 {
		return errors.New("econ: loss fraction out of [0,1]")
	}
	if o.RestoreDays < 0 {
		return errors.New("econ: negative restoration time")
	}
	return nil
}

// Cost integrates a region's outage cost in USD: daily cost x loss
// fraction, decaying linearly to zero at RestoreDays.
func (o Outage) Cost() (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	daily, ok := DailyCostUSD[o.Region]
	if !ok {
		return 0, nil // uninhabited / unmodelled region
	}
	// Integral of LossFrac * (1 - t/RestoreDays) over [0, RestoreDays]
	// = LossFrac * RestoreDays / 2.
	return daily * o.LossFrac * o.RestoreDays / 2, nil
}

// Estimate is a total impact breakdown.
type Estimate struct {
	// ByRegion is the per-region cost in USD.
	ByRegion map[geo.Region]float64
	// TotalUSD sums the regions.
	TotalUSD float64
}

// Estimate computes total cost over a set of outages.
func EstimateOutages(outages []Outage) (*Estimate, error) {
	e := &Estimate{ByRegion: map[geo.Region]float64{}}
	for _, o := range outages {
		c, err := o.Cost()
		if err != nil {
			return nil, err
		}
		e.ByRegion[o.Region] += c
		e.TotalUSD += c
	}
	return e, nil
}

// TopRegions returns regions by cost, most expensive first.
func (e *Estimate) TopRegions() []geo.Region {
	regions := make([]geo.Region, 0, len(e.ByRegion))
	for r := range e.ByRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool {
		//gicnet:allow floatcmp exact tie-break gives the comparator a total order
		if e.ByRegion[regions[i]] != e.ByRegion[regions[j]] {
			return e.ByRegion[regions[i]] > e.ByRegion[regions[j]]
		}
		return regions[i] < regions[j]
	})
	return regions
}

// FromScenario derives outages from storm results: for each region, the
// loss fraction is the share of its landing points isolated or split from
// the region's main partition, and restoration follows the repair
// milestones.
//
// regionLoss maps region -> initial international-connectivity loss
// fraction; restore90Days is when 90% of connectivity is restored (the
// outage integral treats this as the effective full-restoration time for
// costing, which keeps the estimate conservative).
func FromScenario(regionLoss map[geo.Region]float64, restore90Days float64) (*Estimate, error) {
	if restore90Days < 0 {
		return nil, errors.New("econ: negative restoration time")
	}
	var outages []Outage
	for r, loss := range regionLoss {
		//gicnet:allow crossdet outages are sorted by their unique Region key immediately after this loop, so map order cannot leak
		outages = append(outages, Outage{Region: r, LossFrac: loss, RestoreDays: restore90Days})
	}
	sort.Slice(outages, func(i, j int) bool { return outages[i].Region < outages[j].Region })
	return EstimateOutages(outages)
}

// Trillions formats a USD amount in trillions.
func Trillions(usd float64) float64 { return usd / 1e12 }

// Billions formats a USD amount in billions.
func Billions(usd float64) float64 { return usd / 1e9 }
