// Package gic models Geomagnetically Induced Currents well enough to turn a
// named storm scenario into per-latitude-band repeater failure probabilities.
//
// The paper (§3.1–3.2) works from these facts:
//
//   - GIC during strong events reaches 100–130 A, ~100x the ~1 A operating
//     current of submarine repeaters.
//   - Induced geoelectric fields drop by an order of magnitude below 40°
//     absolute latitude during a moderate event; during the Carrington event
//     strong fields extended down to ~20°.
//   - The power-feeding conductor has a resistance of ~0.8 ohm/km; for a long
//     uniform line the induced current approaches E/r, independent of length.
//   - Seawater's high conductance increases (not decreases) GIC exposure.
//
// Exact repeater failure modeling does not exist (the paper says so and uses
// a family of probabilistic models instead). This package therefore maps
// field strength to failure probability through a calibrated logistic dose
// response whose outputs at the reference scenarios reproduce the paper's S1
// and S2 band probabilities, so every downstream analysis can be driven
// either by the paper's abstract models or by a named physical scenario.
package gic

import (
	"errors"
	"fmt"
	"math"

	"gicnet/internal/geo"
)

// Storm describes a coronal mass ejection impact scenario.
type Storm struct {
	// Name identifies the scenario in reports.
	Name string
	// PeakFieldVPerKm is the peak horizontal geoelectric field at auroral
	// latitudes, in volts per kilometre. The 100-year scenario benchmark
	// (Pulkkinen et al. 2012) is ~20 V/km at high latitudes; the paper's
	// 100-130 A figure at 0.8 ohm/km corresponds to ~80-104 V/km on the
	// least resistive paths, which we treat as the Carrington ceiling.
	PeakFieldVPerKm float64
	// EquatorwardReachDeg is the absolute latitude down to which strong
	// fields extend: ~40 for moderate storms, ~20 for Carrington-class.
	EquatorwardReachDeg float64
	// TravelTime is the sun-to-earth transit time, which bounds the
	// shutdown-planner lead time (13 hours for Carrington, 1-3 days
	// typical).
	TravelTime TravelTime
}

// TravelTime is the CME transit time in hours.
type TravelTime float64

// Hours returns the transit time in hours.
func (t TravelTime) Hours() float64 { return float64(t) }

// Reference storm scenarios. Field strengths are calibrated so that the
// derived per-band failure probabilities reproduce the paper's S1 (high
// failure) and S2 (low failure) states; see TestScenarioCalibration.
var (
	// Carrington is a worst-case 1859-scale superstorm (S1-class).
	Carrington = Storm{
		Name:                "carrington-1859",
		PeakFieldVPerKm:     100,
		EquatorwardReachDeg: 20,
		TravelTime:          17.6,
	}
	// NewYorkRailroad is the May 1921 superstorm, the strongest of the
	// 20th century, comparable to Carrington (S1-class).
	NewYorkRailroad = Storm{
		Name:                "new-york-railroad-1921",
		PeakFieldVPerKm:     90,
		EquatorwardReachDeg: 22,
		TravelTime:          26,
	}
	// Quebec is the March 1989 storm: one tenth the 1921 strength, enough
	// to collapse the Hydro-Quebec grid but only stress cables (S2-class).
	Quebec = Storm{
		Name:                "quebec-1989",
		PeakFieldVPerKm:     9,
		EquatorwardReachDeg: 40,
		TravelTime:          54,
	}
	// Moderate is a routine strong storm that perturbs but rarely damages.
	Moderate = Storm{
		Name:                "moderate",
		PeakFieldVPerKm:     2,
		EquatorwardReachDeg: 50,
		TravelTime:          72,
	}
)

// Scenarios lists the reference storms from strongest to weakest.
func Scenarios() []Storm {
	return []Storm{Carrington, NewYorkRailroad, Quebec, Moderate}
}

// Scaled returns a copy of s with the peak field multiplied by factor,
// for parameter sweeps. The name is annotated with the factor.
func (s Storm) Scaled(factor float64) Storm {
	out := s
	out.PeakFieldVPerKm *= factor
	out.Name = fmt.Sprintf("%s-x%.2f", s.Name, factor)
	return out
}

// FieldAt returns the horizontal geoelectric field in V/km at the given
// absolute latitude. The profile directly encodes the latitude dependence
// the paper cites (§3.1): full strength in the auroral zone (>= 60°), one
// order of magnitude lower at the storm's equatorward reach, then a further
// decade per 25° towards the equator, with a small nonzero floor (equatorial
// GIC was observed during the March 2015 storm).
func (s Storm) FieldAt(absLat float64) float64 {
	if absLat < 0 {
		absLat = -absLat
	}
	if absLat > 90 {
		absLat = 90
	}
	reach := s.EquatorwardReachDeg
	if reach >= geo.HighBandCut {
		reach = geo.HighBandCut - 1
	}
	var decades float64
	switch {
	case absLat >= geo.HighBandCut:
		decades = 0
	case absLat >= reach:
		// Linear decade ramp: 0 decades at 60°, 1 decade at the reach.
		decades = (geo.HighBandCut - absLat) / (geo.HighBandCut - reach)
	default:
		decades = 1 + (reach-absLat)/25
	}
	const floorDecades = 3 // never below peak * 1e-3
	if decades > floorDecades {
		decades = floorDecades
	}
	return s.PeakFieldVPerKm * math.Pow(10, -decades)
}

// Conductor describes the power-feeding line of a long-haul cable.
type Conductor struct {
	// ResistanceOhmPerKm of the power feeding line; 0.8 ohm/km for
	// submarine systems (§3.2.1).
	ResistanceOhmPerKm float64
	// GroundSpacingKm is the distance between earthing points. GIC enters
	// and exits where the conductor is grounded; spacing is 100s-1000s km.
	GroundSpacingKm float64
	// OceanFactor multiplies field exposure for submarine routes, where
	// highly conductive seawater over resistive rock raises total surface
	// conductance (§3.1). 1.0 for land.
	OceanFactor float64
}

// DefaultSubmarineConductor is the paper's reference submarine power feed.
func DefaultSubmarineConductor() Conductor {
	return Conductor{ResistanceOhmPerKm: 0.8, GroundSpacingKm: 1000, OceanFactor: 1.5}
}

// DefaultLandConductor is a terrestrial long-haul power feed.
func DefaultLandConductor() Conductor {
	return Conductor{ResistanceOhmPerKm: 0.8, GroundSpacingKm: 500, OceanFactor: 1.0}
}

var errBadConductor = errors.New("gic: conductor resistance must be positive")

// InducedCurrent returns the quasi-DC current in amperes that the storm
// drives through the conductor at the given absolute latitude.
//
// For a line long relative to the ground spacing, the induced current
// saturates at E/r (field over per-km resistance); shorter ground spans
// scale down linearly. The result is clamped to the physical regime the
// paper cites (<= ~130 A for Carrington-class events at 0.8 ohm/km).
func InducedCurrent(s Storm, c Conductor, absLat, spanKm float64) (float64, error) {
	if c.ResistanceOhmPerKm <= 0 {
		return 0, errBadConductor
	}
	e := s.FieldAt(absLat) * c.OceanFactor
	// Effective coupled length: the span between grounds, saturating at
	// the ground spacing.
	span := spanKm
	if c.GroundSpacingKm > 0 && span > c.GroundSpacingKm {
		span = c.GroundSpacingKm
	}
	if span <= 0 {
		return 0, nil
	}
	// Current for a span grounded at both ends: I = E*L / (r*L) = E/r,
	// derated for spans shorter than the ground spacing (loop area shrinks).
	derate := 1.0
	if c.GroundSpacingKm > 0 {
		derate = span / c.GroundSpacingKm
	}
	return e / c.ResistanceOhmPerKm * derate, nil
}

// RepeaterTolerance describes the dose-response of a repeater to GIC.
type RepeaterTolerance struct {
	// OperatingAmps is the design current, ~1 A (§3.2.1).
	OperatingAmps float64
	// DamageAmps is the current at which failure probability reaches 50%.
	DamageAmps float64
	// Softness is the logistic width in log-current space; larger values
	// spread the dose-response over a wider current range.
	Softness float64
}

// DefaultRepeaterTolerance is calibrated so that the reference scenarios
// bracket the paper's abstract S1/S2 band-probability vectors: Carrington
// maps to a high band ~1 and a low band below 0.1 (S1-like), Quebec to a
// high band ~0.05-0.1 with negligible low-band risk (S2-like). At mid
// latitudes the physical model is deliberately more pessimistic than S1's
// 0.1, because Carrington-class fields remain strong at 50° (§3.1); the
// abstract S1/S2 models stay available for exact paper reproduction.
func DefaultRepeaterTolerance() RepeaterTolerance {
	return RepeaterTolerance{OperatingAmps: 1.1, DamageAmps: 45, Softness: 0.35}
}

// FailureProbability maps an induced current to a per-repeater failure
// probability via a log-logistic dose response. Currents at or below the
// operating current never damage.
func (rt RepeaterTolerance) FailureProbability(currentAmps float64) float64 {
	if currentAmps <= rt.OperatingAmps {
		return 0
	}
	if rt.DamageAmps <= 0 || rt.Softness <= 0 {
		return 1
	}
	x := math.Log(currentAmps / rt.DamageAmps)
	return 1 / (1 + math.Exp(-x/rt.Softness))
}

// BandProbabilities returns the repeater failure probability for each
// latitude risk band (low, mid, high) for the given storm, conductor and
// tolerance, evaluating the field at each band's representative latitude.
// These are the physically derived analogues of the paper's S1/S2 vectors.
func BandProbabilities(s Storm, c Conductor, rt RepeaterTolerance) ([geo.NumBands]float64, error) {
	// Representative latitudes: band midpoints (low: 20, mid: 50, high: 70).
	reps := [geo.NumBands]float64{20, 50, 70}
	var out [geo.NumBands]float64
	for i, lat := range reps {
		cur, err := InducedCurrent(s, c, lat, c.GroundSpacingKm)
		if err != nil {
			return out, err
		}
		out[i] = rt.FailureProbability(cur)
	}
	return out, nil
}
