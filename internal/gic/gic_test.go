package gic

import (
	"math"
	"testing"
	"testing/quick"

	"gicnet/internal/geo"
)

func TestFieldAtMonotoneInLatitude(t *testing.T) {
	for _, s := range Scenarios() {
		prev := -1.0
		for lat := 0.0; lat <= 90; lat += 0.5 {
			e := s.FieldAt(lat)
			if e < prev-1e-12 {
				t.Fatalf("%s: field not non-decreasing at %v", s.Name, lat)
			}
			prev = e
		}
	}
}

func TestFieldAtAuroralPeak(t *testing.T) {
	for _, s := range Scenarios() {
		if got := s.FieldAt(75); math.Abs(got-s.PeakFieldVPerKm) > 1e-9 {
			t.Errorf("%s: field at 75 = %v, want peak %v", s.Name, got, s.PeakFieldVPerKm)
		}
	}
}

func TestFieldAtDecadeDropAtReach(t *testing.T) {
	// At the equatorward reach latitude, the field is one order of
	// magnitude below peak — the paper's cited behaviour for the 1989
	// event (reach 40).
	e := Quebec.FieldAt(Quebec.EquatorwardReachDeg)
	want := Quebec.PeakFieldVPerKm / 10
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("field at reach = %v, want %v", e, want)
	}
}

func TestFieldAtEquatorialFloor(t *testing.T) {
	for _, s := range Scenarios() {
		e := s.FieldAt(0)
		if e <= 0 {
			t.Errorf("%s: zero equatorial field; paper cites small nonzero equatorial GIC", s.Name)
		}
		if e >= s.FieldAt(s.EquatorwardReachDeg) {
			t.Errorf("%s: equatorial field %v not below field at reach", s.Name, e)
		}
		// The decay is clamped at three decades below peak.
		if e < s.PeakFieldVPerKm*1e-3-1e-12 {
			t.Errorf("%s: equatorial field %v below the 3-decade floor", s.Name, e)
		}
	}
}

func TestFieldAtNegativeLatitudeSymmetric(t *testing.T) {
	f := func(latSeed float64) bool {
		if math.IsNaN(latSeed) || math.IsInf(latSeed, 0) {
			return true
		}
		lat := math.Mod(math.Abs(latSeed), 90)
		return Carrington.FieldAt(lat) == Carrington.FieldAt(-lat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStormOrdering(t *testing.T) {
	// Stronger storms produce stronger fields at every latitude.
	sc := Scenarios()
	for lat := 0.0; lat <= 90; lat += 10 {
		for i := 1; i < len(sc); i++ {
			if sc[i].FieldAt(lat) > sc[i-1].FieldAt(lat)+1e-9 {
				t.Errorf("at %v: %s field exceeds %s", lat, sc[i].Name, sc[i-1].Name)
			}
		}
	}
}

func TestScaled(t *testing.T) {
	s := Quebec.Scaled(2)
	if s.PeakFieldVPerKm != 2*Quebec.PeakFieldVPerKm {
		t.Errorf("scaled peak = %v", s.PeakFieldVPerKm)
	}
	if s.Name == Quebec.Name {
		t.Error("scaled storm should carry an annotated name")
	}
	if s.EquatorwardReachDeg != Quebec.EquatorwardReachDeg {
		t.Error("scaling must not move the reach")
	}
}

func TestInducedCurrentCarringtonMagnitude(t *testing.T) {
	// The paper cites GIC "as high as 100-130 A" during strong events.
	// Our Carrington scenario at auroral latitude over a submarine feed
	// should land in or above that range (ocean factor raises it).
	c := DefaultSubmarineConductor()
	cur, err := InducedCurrent(Carrington, c, 70, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if cur < 100 || cur > 250 {
		t.Errorf("Carrington auroral current = %v A, want order 100-130+", cur)
	}
}

func TestInducedCurrentOperatingRegimeModerate(t *testing.T) {
	// A moderate storm at low latitude must stay near the ~1 A operating
	// regime so it cannot damage repeaters.
	c := DefaultSubmarineConductor()
	cur, err := InducedCurrent(Moderate, c, 10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if cur > 1.1 {
		t.Errorf("moderate low-latitude current = %v A, want <= operating", cur)
	}
}

func TestInducedCurrentSpanDerating(t *testing.T) {
	c := DefaultSubmarineConductor()
	long, _ := InducedCurrent(Carrington, c, 70, c.GroundSpacingKm*3)
	short, _ := InducedCurrent(Carrington, c, 70, c.GroundSpacingKm/2)
	if short >= long {
		t.Errorf("short span current %v >= long span %v", short, long)
	}
	if math.Abs(short-long/2) > 1e-9 {
		t.Errorf("half-spacing span should halve current: %v vs %v", short, long)
	}
}

func TestInducedCurrentSaturatesWithLength(t *testing.T) {
	c := DefaultSubmarineConductor()
	a, _ := InducedCurrent(Carrington, c, 70, c.GroundSpacingKm)
	b, _ := InducedCurrent(Carrington, c, 70, c.GroundSpacingKm*10)
	if a != b {
		t.Errorf("current should saturate at ground spacing: %v vs %v", a, b)
	}
}

func TestInducedCurrentErrorsAndZeroSpan(t *testing.T) {
	if _, err := InducedCurrent(Carrington, Conductor{}, 70, 100); err == nil {
		t.Error("zero resistance should error")
	}
	c := DefaultSubmarineConductor()
	cur, err := InducedCurrent(Carrington, c, 70, 0)
	if err != nil || cur != 0 {
		t.Errorf("zero span: %v, %v", cur, err)
	}
}

func TestInducedCurrentOceanFactor(t *testing.T) {
	land := DefaultLandConductor()
	sea := DefaultSubmarineConductor()
	sea.GroundSpacingKm = land.GroundSpacingKm
	lcur, _ := InducedCurrent(Carrington, land, 70, 500)
	scur, _ := InducedCurrent(Carrington, sea, 70, 500)
	if scur <= lcur {
		t.Errorf("ocean must amplify GIC (%v vs %v): seawater raises conductance", scur, lcur)
	}
}

func TestFailureProbabilityDoseResponse(t *testing.T) {
	rt := DefaultRepeaterTolerance()
	if p := rt.FailureProbability(rt.OperatingAmps); p != 0 {
		t.Errorf("operating current must be safe, got %v", p)
	}
	if p := rt.FailureProbability(0.5); p != 0 {
		t.Errorf("sub-operating current must be safe, got %v", p)
	}
	if p := rt.FailureProbability(rt.DamageAmps); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(fail) at damage threshold = %v, want 0.5", p)
	}
	if p := rt.FailureProbability(1000); p < 0.99 {
		t.Errorf("P(fail) at 1000 A = %v, want ~1", p)
	}
	// monotone
	prev := -1.0
	for cur := 1.2; cur < 500; cur *= 1.3 {
		p := rt.FailureProbability(cur)
		if p < prev {
			t.Fatalf("dose response not monotone at %v A", cur)
		}
		prev = p
	}
}

func TestFailureProbabilityDegenerateTolerance(t *testing.T) {
	rt := RepeaterTolerance{OperatingAmps: 1}
	if p := rt.FailureProbability(2); p != 1 {
		t.Errorf("degenerate tolerance should fail hard, got %v", p)
	}
}

func TestBandProbabilitiesCalibration(t *testing.T) {
	c := DefaultSubmarineConductor()
	rt := DefaultRepeaterTolerance()

	carr, err := BandProbabilities(Carrington, c, rt)
	if err != nil {
		t.Fatal(err)
	}
	// S1-like: high band ~1, low band small, strictly ordered.
	if carr[geo.BandHigh] < 0.9 {
		t.Errorf("Carrington high band = %v, want >= 0.9", carr[geo.BandHigh])
	}
	if carr[geo.BandLow] > 0.15 {
		t.Errorf("Carrington low band = %v, want <= 0.15", carr[geo.BandLow])
	}
	if !(carr[geo.BandLow] < carr[geo.BandMid] && carr[geo.BandMid] < carr[geo.BandHigh]) {
		t.Errorf("Carrington bands not ordered: %v", carr)
	}

	que, err := BandProbabilities(Quebec, c, rt)
	if err != nil {
		t.Fatal(err)
	}
	// S2-like: high band well below Carrington's, low band ~0.
	if que[geo.BandHigh] <= 0 || que[geo.BandHigh] > 0.3 {
		t.Errorf("Quebec high band = %v, want (0, 0.3]", que[geo.BandHigh])
	}
	if que[geo.BandLow] > 0.001 {
		t.Errorf("Quebec low band = %v, want ~0", que[geo.BandLow])
	}
	for b := 0; b < geo.NumBands; b++ {
		if que[b] > carr[b] {
			t.Errorf("band %d: Quebec %v exceeds Carrington %v", b, que[b], carr[b])
		}
	}

	mod, err := BandProbabilities(Moderate, c, rt)
	if err != nil {
		t.Fatal(err)
	}
	for b, p := range mod {
		if p > 0.01 {
			t.Errorf("Moderate band %d = %v, want ~0", b, p)
		}
	}
}

func TestBandProbabilitiesConductorError(t *testing.T) {
	if _, err := BandProbabilities(Carrington, Conductor{}, DefaultRepeaterTolerance()); err == nil {
		t.Error("want error for bad conductor")
	}
}

func TestTravelTimeLeadTime(t *testing.T) {
	// Carrington reached earth in 17.6 hours — still more than the 13-hour
	// minimum warning the paper says sentinel spacecraft provide.
	if Carrington.TravelTime.Hours() < 13 {
		t.Error("Carrington transit under minimum CME transit time")
	}
	for _, s := range Scenarios() {
		if s.TravelTime.Hours() <= 0 {
			t.Errorf("%s has no travel time", s.Name)
		}
	}
}

func BenchmarkFieldAt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Carrington.FieldAt(52.3)
	}
}

func BenchmarkBandProbabilities(b *testing.B) {
	c := DefaultSubmarineConductor()
	rt := DefaultRepeaterTolerance()
	for i := 0; i < b.N; i++ {
		if _, err := BandProbabilities(Carrington, c, rt); err != nil {
			b.Fatal(err)
		}
	}
}
