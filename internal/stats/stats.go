// Package stats provides the descriptive-statistics substrate used by the
// analyses and the experiment harness: running moments, percentiles,
// histograms, and empirical PDFs/CDFs matching the paper's figures.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over no data.
var ErrEmpty = errors.New("stats: empty data")

// Running accumulates count, mean and variance in one pass using Welford's
// algorithm. The zero value is an empty accumulator ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
// The paper's error bars are standard deviations over 10 trials; it does
// not state the estimator, so we use the population form consistently.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	r.n = n
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.Mean(), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.StdDev(), nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (minimum, maximum float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minimum, maximum = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minimum {
			minimum = x
		}
		if x > maximum {
			maximum = x
		}
	}
	return minimum, maximum, nil
}
