package stats

import (
	"math"
	"testing"

	"gicnet/internal/xrand"
)

// TestBootstrapCIRejectsBadArgs pins the argument contract shared by the
// plain and weighted variants.
func TestBootstrapCIRejectsBadArgs(t *testing.T) {
	rng := xrand.New(1)
	xs := []float64{1, 2, 3}
	if _, err := BootstrapCI(nil, 0.95, 100, rng); err == nil {
		t.Fatal("empty sample: expected error")
	}
	for _, level := range []float64{0, 1, -0.5, 1.5} {
		if _, err := BootstrapCI(xs, level, 100, rng); err == nil {
			t.Fatalf("level=%v: expected error", level)
		}
	}
	for _, resamples := range []int{0, -5, 9} {
		if _, err := BootstrapCI(xs, 0.95, resamples, rng); err == nil {
			t.Fatalf("resamples=%d: expected error", resamples)
		}
	}
	if _, err := BootstrapCI([]float64{1, math.NaN()}, 0.95, 100, rng); err == nil {
		t.Fatal("NaN sample: expected error")
	}
}

// TestBootstrapCIDegenerateSamples: one-element and all-equal inputs must
// give the zero-width interval at that value, never NaN.
func TestBootstrapCIDegenerateSamples(t *testing.T) {
	rng := xrand.New(2)
	for _, xs := range [][]float64{{7.5}, {3, 3, 3, 3}} {
		ci, err := BootstrapCI(xs, 0.95, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(ci.Lo) || math.IsNaN(ci.Hi) {
			t.Fatalf("degenerate sample %v: NaN interval %+v", xs, ci)
		}
		if ci.Lo != xs[0] || ci.Hi != xs[0] {
			t.Fatalf("degenerate sample %v: interval [%v,%v], want exactly [%v,%v]",
				xs, ci.Lo, ci.Hi, xs[0], xs[0])
		}
		if !ci.Contains(xs[0]) || ci.Width() != 0 {
			t.Fatalf("degenerate sample %v: %+v", xs, ci)
		}
	}
}

// TestWeightedBootstrapCIContract: length mismatch and invalid weights
// are rejected; unit weights reproduce the plain bootstrap exactly when
// driven by the same stream.
func TestWeightedBootstrapCIContract(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if _, err := WeightedBootstrapCI(xs, []float64{1, 1}, 0.95, 100, xrand.New(3)); err == nil {
		t.Fatal("length mismatch: expected error")
	}
	for _, w := range []float64{math.NaN(), math.Inf(1), -1} {
		ws := []float64{1, 1, w, 1, 1}
		if _, err := WeightedBootstrapCI(xs, ws, 0.95, 100, xrand.New(3)); err == nil {
			t.Fatalf("weight %v: expected error", w)
		}
	}
	ones := []float64{1, 1, 1, 1, 1}
	plain, err := BootstrapCI(xs, 0.9, 200, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := WeightedBootstrapCI(xs, ones, 0.9, 200, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	//gicnet:allow floatcmp same stream and unit weights must resample identically
	if plain.Lo != weighted.Lo || plain.Hi != weighted.Hi {
		t.Fatalf("unit-weight bootstrap %+v differs from plain %+v", weighted, plain)
	}
}

// TestWeightedBootstrapCICoversWeightedMean: the interval should cover
// the unnormalised weighted mean it bootstraps on a well-behaved sample.
func TestWeightedBootstrapCICoversWeightedMean(t *testing.T) {
	rng := xrand.New(5)
	n := 400
	xs := make([]float64, n)
	ws := make([]float64, n)
	sum := 0.0
	for i := range xs {
		xs[i] = rng.Float64()
		ws[i] = 0.5 + rng.Float64()
		sum += ws[i] * xs[i]
	}
	mean := sum / float64(n)
	ci, err := WeightedBootstrapCI(xs, ws, 0.99, 500, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(mean) {
		t.Fatalf("99%% interval [%v,%v] misses the weighted mean %v", ci.Lo, ci.Hi, mean)
	}
	if ci.Width() <= 0 {
		t.Fatalf("interval degenerate: %+v", ci)
	}
}
