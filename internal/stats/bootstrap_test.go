package stats

import (
	"testing"

	"gicnet/internal/xrand"
)

func TestBootstrapCIValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := BootstrapCI(nil, 0.95, 100, rng); err == nil {
		t.Error("want empty error")
	}
	xs := []float64{1, 2, 3}
	if _, err := BootstrapCI(xs, 0, 100, rng); err == nil {
		t.Error("want level error")
	}
	if _, err := BootstrapCI(xs, 1, 100, rng); err == nil {
		t.Error("want level error")
	}
	if _, err := BootstrapCI(xs, 0.95, 5, rng); err == nil {
		t.Error("want resamples error")
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	// Samples from a known distribution: the CI should cover the true
	// mean in most repetitions.
	rng := xrand.New(2)
	const reps = 200
	covered := 0
	for r := 0; r < reps; r++ {
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = 5 + rng.NormFloat64()
		}
		ci, err := BootstrapCI(xs, 0.95, 400, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Lo > ci.Hi {
			t.Fatal("inverted interval")
		}
		if ci.Contains(5) {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.85 {
		t.Errorf("95%% CI covered true mean only %v of the time", frac)
	}
}

func TestBootstrapCIDegenerateSample(t *testing.T) {
	rng := xrand.New(3)
	ci, err := BootstrapCI([]float64{7, 7, 7, 7}, 0.9, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 7 || ci.Hi != 7 || ci.Width() != 0 {
		t.Errorf("constant sample CI = %+v", ci)
	}
	if !ci.Contains(7) || ci.Contains(8) {
		t.Error("Contains broken")
	}
}

func TestBootstrapCIWiderAtHigherLevel(t *testing.T) {
	xs := make([]float64, 40)
	rng := xrand.New(4)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	lo, err := BootstrapCI(xs, 0.5, 2000, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := BootstrapCI(xs, 0.99, 2000, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if hi.Width() <= lo.Width() {
		t.Errorf("99%% CI (%v) should be wider than 50%% CI (%v)", hi.Width(), lo.Width())
	}
}
