package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunningAgainstDirect(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	wantMean := 18.0
	if math.Abs(r.Mean()-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", r.Mean(), wantMean)
	}
	// population variance
	var ss float64
	for _, x := range xs {
		ss += (x - wantMean) * (x - wantMean)
	}
	wantVar := ss / float64(len(xs))
	if math.Abs(r.Variance()-wantVar) > 1e-9 {
		t.Errorf("variance = %v, want %v", r.Variance(), wantVar)
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d", r.N())
	}
}

func TestRunningZeroAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
	r.Add(7)
	if r.Mean() != 7 || r.Variance() != 0 {
		t.Errorf("single sample: mean %v var %v", r.Mean(), r.Variance())
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		var whole Running
		for _, x := range xs {
			whole.Add(x)
		}
		var a, b Running
		for i, x := range xs {
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		closeRel := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)+math.Abs(y))
		}
		return a.N() == whole.N() &&
			closeRel(a.Mean(), whole.Mean()) &&
			closeRel(a.Variance(), whole.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, b Running
	b.Add(3)
	b.Add(5)
	a.Merge(b) // empty receiver
	if a.N() != 2 || a.Mean() != 4 {
		t.Errorf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Running
	a.Merge(c) // empty argument
	if a.N() != 2 || a.Mean() != 4 {
		t.Errorf("merge of empty changed state: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestMeanStdDevErrors(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should error")
	}
	if _, err := StdDev(nil); err == nil {
		t.Error("StdDev(nil) should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {12.5, 1.5},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("want error on empty")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("want error on p<0")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("want error on p>100")
	}
}

func TestMedianSingle(t *testing.T) {
	got, err := Median([]float64{42})
	if err != nil || got != 42 {
		t.Errorf("Median([42]) = %v, %v", got, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v,%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("want error on empty")
	}
}

func TestHistogramShapeErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("want error for 0 bins")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("want error for lo==hi")
	}
	if _, err := NewHistogram(10, 5, 5); err == nil {
		t.Error("want error for hi<lo")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(-90, 90, 90) // 2-degree bins as in Figure 3
	if err != nil {
		t.Fatal(err)
	}
	if h.BinWidth() != 2 {
		t.Fatalf("bin width = %v", h.BinWidth())
	}
	h.Add(-90) // first bin
	h.Add(-89)
	h.Add(0) // bin 45
	h.Add(89.999)
	h.Add(90)   // clamped to last bin
	h.Add(-100) // clamped to first bin
	h.Add(100)  // clamped to last bin
	if h.Counts[0] != 3 {
		t.Errorf("first bin = %d, want 3", h.Counts[0])
	}
	if h.Counts[45] != 1 {
		t.Errorf("bin 45 = %d, want 1", h.Counts[45])
	}
	if h.Counts[89] != 3 {
		t.Errorf("last bin = %d, want 3", h.Counts[89])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramPDFSumsTo100(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	h.AddAll([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 0.5, 2.5})
	sum := 0.0
	for _, p := range h.PDF() {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("PDF sums to %v, want 100", sum)
	}
}

func TestHistogramEmptyPDF(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	for _, p := range h.PDF() {
		if p != 0 {
			t.Error("empty histogram PDF should be all zero")
		}
	}
}

func TestHistogramBinCenters(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	want := []float64{1, 3, 5, 7, 9}
	got := h.BinCenters()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("center[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if c.Min() != 1 || c.Max() != 4 || c.N() != 4 {
		t.Errorf("min/max/n = %v/%v/%d", c.Min(), c.Max(), c.N())
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Error("want error on empty sample")
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	c, _ := NewCDF(xs)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		v := c.Quantile(q)
		if math.Abs(v-q*100) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", q, v, q*100)
		}
	}
	if c.Quantile(-1) != 0 || c.Quantile(2) != 100 {
		t.Error("quantile clamping broken")
	}
}

func TestCDFAtMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		probe := append([]float64(nil), xs...)
		sort.Float64s(probe)
		prev := -1.0
		for _, x := range probe {
			p := c.At(x)
			if p < prev {
				return false
			}
			prev = p
		}
		return prev == 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	c, _ := NewCDF(xs)
	pts := c.Points(50)
	if len(pts) != 50 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 999 {
		t.Errorf("extremes not included: %v .. %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Errorf("points not monotone at %d", i)
		}
	}
}

func TestCDFPointsSmallSample(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2})
	pts := c.Points(50)
	if len(pts) != 2 {
		t.Fatalf("len = %d, want 2", len(pts))
	}
}
