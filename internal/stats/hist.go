package stats

import (
	"errors"
	"math"
	"sort"
)

// Histogram bins values into fixed-width cells over [Lo, Hi). Values
// outside the range are clamped into the first/last bin, matching how the
// paper's latitude histograms treat the poles.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || !(hi > lo) {
		return nil, errors.New("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Add bins one value.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / h.BinWidth())
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// AddAll bins every value.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of binned values.
func (h *Histogram) Total() int { return h.total }

// PDF returns the probability density per bin as percentages that sum to
// 100 (the unit used on the x-axis of the paper's Figure 3). Empty
// histograms return all zeros.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = 100 * float64(c) / float64(h.total)
	}
	return out
}

// BinCenters returns the center coordinate of each bin.
func (h *Histogram) BinCenters() []float64 {
	w := h.BinWidth()
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Lo + (float64(i)+0.5)*w
	}
	return out
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied, then sorted).
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile for q in [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := q * float64(len(c.sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c.sorted[lo]
	}
	f := rank - float64(lo)
	return c.sorted[lo]*(1-f) + c.sorted[hi]*f
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Points returns up to n (x, P(X<=x)) pairs evenly spaced through the
// sorted sample, always including the extremes — the series the paper's
// Figure 5 plots. For n <= 1 or tiny samples it returns one point per value.
type Point struct {
	X, Y float64
}

// Points samples the CDF curve.
func (c *CDF) Points(n int) []Point {
	m := len(c.sorted)
	if n <= 1 || n > m {
		n = m
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / max(n-1, 1)
		x := c.sorted[idx]
		out = append(out, Point{X: x, Y: float64(idx+1) / float64(m)})
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
