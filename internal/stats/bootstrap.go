package stats

import (
	"errors"
	"sort"

	"gicnet/internal/xrand"
)

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// BootstrapCI estimates a percentile-bootstrap confidence interval for the
// mean of xs using resamples draws. The paper reports plain standard
// deviations over 10 trials; the bootstrap gives downstream users a
// distribution-free alternative for small trial counts.
func BootstrapCI(xs []float64, level float64, resamples int, rng *xrand.Source) (CI, error) {
	if len(xs) == 0 {
		return CI{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return CI{}, errors.New("stats: confidence level out of (0,1)")
	}
	if resamples < 10 {
		return CI{}, errors.New("stats: need at least 10 resamples")
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := means[int(alpha*float64(resamples))]
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return CI{Lo: lo, Hi: means[hiIdx], Level: level}, nil
}

// Contains reports whether v lies in the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }
