package stats

import (
	"errors"
	"math"
	"sort"

	"gicnet/internal/xrand"
)

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// BootstrapCI estimates a percentile-bootstrap confidence interval for the
// mean of xs using resamples draws. The paper reports plain standard
// deviations over 10 trials; the bootstrap gives downstream users a
// distribution-free alternative for small trial counts. Inputs containing
// NaN are rejected (a NaN would otherwise poison the resample means and
// sort nondeterministically); a single-element or all-equal sample
// degenerates cleanly to the zero-width interval at that value.
func BootstrapCI(xs []float64, level float64, resamples int, rng *xrand.Source) (CI, error) {
	if err := checkBootstrapArgs(xs, level, resamples); err != nil {
		return CI{}, err
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	return percentileCI(means, level), nil
}

// WeightedBootstrapCI is BootstrapCI for the unnormalised
// importance-sampling estimator (1/n) * sum w_i * x_i: index resamples
// draw (weight, value) pairs together, so the interval reflects the joint
// variability of rare hits and their likelihood ratios. Weights must be
// finite and non-negative; NaN values or weights are rejected like
// BootstrapCI's. With every weight 1 it matches BootstrapCI in
// distribution.
func WeightedBootstrapCI(xs, ws []float64, level float64, resamples int, rng *xrand.Source) (CI, error) {
	if err := checkBootstrapArgs(xs, level, resamples); err != nil {
		return CI{}, err
	}
	if len(ws) != len(xs) {
		return CI{}, errors.New("stats: weights length mismatch")
	}
	for _, w := range ws {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return CI{}, errors.New("stats: weights must be finite and non-negative")
		}
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			j := rng.Intn(len(xs))
			sum += ws[j] * xs[j]
		}
		means[r] = sum / float64(len(xs))
	}
	return percentileCI(means, level), nil
}

// checkBootstrapArgs validates the shared BootstrapCI argument contract.
func checkBootstrapArgs(xs []float64, level float64, resamples int) error {
	if len(xs) == 0 {
		return ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return errors.New("stats: confidence level out of (0,1)")
	}
	if resamples <= 0 {
		return errors.New("stats: resamples must be positive")
	}
	if resamples < 10 {
		return errors.New("stats: need at least 10 resamples")
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return errors.New("stats: sample contains NaN")
		}
	}
	return nil
}

// percentileCI sorts the bootstrap replicate means in place and reads the
// symmetric percentile interval off them.
func percentileCI(means []float64, level float64) CI {
	sort.Float64s(means)
	resamples := len(means)
	alpha := (1 - level) / 2
	lo := means[int(alpha*float64(resamples))]
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return CI{Lo: lo, Hi: means[hiIdx], Level: level}
}

// Contains reports whether v lies in the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }
