package xrand

import (
	"math"
	"testing"
)

// chiSquare bins n draws from sample by the quantile boundaries cut (the
// CDF values of the bin edges must be edgeCDF) and returns Pearson's
// statistic against the implied expected counts.
func chiSquare(t *testing.T, n int, edgeCDF []float64, bin func() int) float64 {
	t.Helper()
	k := len(edgeCDF) + 1
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[bin()]++
	}
	chi2 := 0.0
	prev := 0.0
	for b := 0; b < k; b++ {
		next := 1.0
		if b < len(edgeCDF) {
			next = edgeCDF[b]
		}
		expect := float64(n) * (next - prev)
		prev = next
		if expect < 10 {
			t.Fatalf("bin %d expects %v draws; widen the bins", b, expect)
		}
		d := float64(counts[b]) - expect
		chi2 += d * d / expect
	}
	return chi2
}

// binOf locates x among ascending edges.
func binOf(x float64, edges []float64) int {
	for i, e := range edges {
		if x < e {
			return i
		}
	}
	return len(edges)
}

// normCDF is the standard normal CDF via erf.
func normCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// TestNormFloat64GoodnessOfFit chi-square tests the normal generator
// against the exact bin masses of a 14-bin partition. The threshold is
// the 99.9th percentile of chi-square with 13 degrees of freedom (~34.5),
// padded; the seed is fixed, so this either always passes or genuinely
// flags a distributional bug.
func TestNormFloat64GoodnessOfFit(t *testing.T) {
	edges := []float64{-3, -2, -1.5, -1, -0.5, -0.25, 0, 0.25, 0.5, 1, 1.5, 2, 3}
	cdf := make([]float64, len(edges))
	for i, e := range edges {
		cdf[i] = normCDF(e)
	}
	src := New(20260808)
	chi2 := chiSquare(t, 200000, cdf, func() int { return binOf(src.NormFloat64(), edges) })
	if chi2 > 36 {
		t.Fatalf("NormFloat64 chi-square %v exceeds the df=13 99.9%% threshold", chi2)
	}
	t.Logf("NormFloat64 chi-square = %.2f (df=13)", chi2)
}

// TestExpFloat64GoodnessOfFit is the same test for the unit exponential.
func TestExpFloat64GoodnessOfFit(t *testing.T) {
	edges := []float64{0.05, 0.15, 0.3, 0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3, 4}
	cdf := make([]float64, len(edges))
	for i, e := range edges {
		cdf[i] = 1 - math.Exp(-e)
	}
	src := New(8082026)
	chi2 := chiSquare(t, 200000, cdf, func() int { return binOf(src.ExpFloat64(), edges) })
	if chi2 > 34.5 {
		t.Fatalf("ExpFloat64 chi-square %v exceeds the df=12 99.9%% threshold", chi2)
	}
	t.Logf("ExpFloat64 chi-square = %.2f (df=12)", chi2)
}

// TestUniformGoodnessOfFit completes the trio on Float64 itself with 20
// equal bins.
func TestUniformGoodnessOfFit(t *testing.T) {
	const k = 20
	cdf := make([]float64, k-1)
	edges := make([]float64, k-1)
	for i := 1; i < k; i++ {
		edges[i-1] = float64(i) / k
		cdf[i-1] = float64(i) / k
	}
	src := New(555)
	chi2 := chiSquare(t, 200000, cdf, func() int { return binOf(src.Float64(), edges) })
	if chi2 > 44 {
		t.Fatalf("Float64 chi-square %v exceeds the df=19 99.9%% threshold", chi2)
	}
	t.Logf("Float64 chi-square = %.2f (df=19)", chi2)
}
