// Package xrand provides the deterministic, splittable random source used by
// every generator and Monte Carlo simulation in this repository.
//
// Reproducibility contract: the same seed always produces the same stream,
// and Split derives statistically independent child streams whose output is
// stable regardless of how the parent stream is consumed afterwards. That
// lets the simulation engine hand each trial (and each parallel worker) its
// own child source while keeping results bit-identical across runs and
// across GOMAXPROCS settings.
//
// The generator is SplitMix64 (Steele, Lea & Flood 2014), chosen because it
// is tiny, fast, passes BigCrush, and — unlike math/rand's unexported state —
// supports cheap key-derived splitting.
package xrand

import "math"

// Source is a deterministic 64-bit PRNG stream. The zero value is a valid
// stream seeded with 0.
type Source struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden is the SplitMix64 increment (2^64 / phi, odd).
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 pseudo-random bits.
//
//gicnet:hotpath
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child stream keyed by key. The parent stream
// is not advanced, so the child's output depends only on (parent seed, key).
func (s *Source) Split(key uint64) *Source {
	child := s.SplitAt(key)
	return &child
}

// SplitAt is Split returning the child by value, so hot loops (one child
// per Monte Carlo trial) can keep it on the stack and allocate nothing.
// The stream is identical to Split(key)'s.
//
//gicnet:hotpath
func (s *Source) SplitAt(key uint64) Source {
	// Mix the parent state with the key through one SplitMix64 round each
	// so children with adjacent keys are decorrelated.
	z := s.state + golden*(2*key+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return Source{state: z ^ (z >> 31)}
}

// Float64 returns a uniform float64 in [0, 1).
//
//gicnet:hotpath
func (s *Source) Float64() float64 {
	// 53 high bits scaled by 2^-53.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
//gicnet:hotpath
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
//
//gicnet:hotpath
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Range returns a uniform float64 in [lo, hi).
//
//gicnet:hotpath
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
//
//gicnet:hotpath
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma). Used by the cable-length synthesizer.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Pick returns a uniformly random index weighted by weights. Weights must
// be non-negative and not all zero; otherwise Pick returns 0.
func (s *Source) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	r := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}
