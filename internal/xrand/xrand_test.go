package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependentOfParentConsumption(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	p2.Uint64() // advance p2 only
	c1 := p1.Split(3)
	// Split must depend only on the state at split time; p1 was not
	// advanced, p2 was, so compare against a fresh parent.
	c3 := New(7).Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c3.Uint64() {
			t.Fatal("split stream not a pure function of (seed, key)")
		}
	}
}

func TestSplitKeysDecorrelated(t *testing.T) {
	p := New(9)
	a, b := p.Split(1), p.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between adjacent split keys", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(5), New(5)
	a.Split(1)
	a.Split(2)
	if a.Uint64() != b.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(123)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(321)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(22)
	const n, k = 70000, 7
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[s.Intn(k)]++
	}
	want := float64(n) / k
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolEdges(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(44)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(55)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(66)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(77)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormal(math.Log(775), 1.0)
	}
	// median of lognormal is exp(mu)
	count := 0
	for _, v := range vals {
		if v < 775 {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(88)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(99)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestPickWeighted(t *testing.T) {
	s := New(101)
	weights := []float64{1, 0, 3}
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestPickDegenerate(t *testing.T) {
	s := New(5)
	if s.Pick(nil) != 0 {
		t.Error("Pick(nil) != 0")
	}
	if s.Pick([]float64{0, 0}) != 0 {
		t.Error("Pick(all zero) != 0")
	}
	if s.Pick([]float64{-1, -2}) != 0 {
		t.Error("Pick(all negative) != 0")
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		v := s.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range(10,20) = %v", v)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Intn(1000)
	}
}

func TestSplitAtMatchesSplit(t *testing.T) {
	root := New(42)
	for key := uint64(0); key < 100; key++ {
		byPtr := root.Split(key)
		byVal := root.SplitAt(key)
		for i := 0; i < 8; i++ {
			if a, b := byPtr.Uint64(), byVal.Uint64(); a != b {
				t.Fatalf("key %d draw %d: Split %d, SplitAt %d", key, i, a, b)
			}
		}
	}
}

func TestSplitAtDoesNotAllocate(t *testing.T) {
	root := New(1)
	sink := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		child := root.SplitAt(7)
		sink += child.Uint64()
	})
	if allocs != 0 {
		t.Errorf("SplitAt allocates %v/op, want 0", allocs)
	}
	_ = sink
}
