//go:build !race

package sim

// Non-race builds compile the Arena misuse guard away entirely: the
// acquire/release pairs inline to nothing, so the guard costs the hot
// sweep loops zero cycles outside `go test -race`. See
// arena_guard_race.go for the armed version.

func (a *Arena) acquire() {}
func (a *Arena) release() {}
