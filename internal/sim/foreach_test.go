package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachRunsEachIndexOnce covers the dispatch-shape edge cases: n
// smaller than the worker pool, a serial pool, a pool that defaults from
// GOMAXPROCS, and an empty task list. Every index must run exactly once.
func TestForEachRunsEachIndexOnce(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
	}{
		{"serial", 5, 1},
		{"n-less-than-workers", 3, 100},
		{"n-equals-workers", 4, 4},
		{"default-workers", 6, 0},
		{"negative-workers", 6, -3},
		{"empty", 0, 4},
		{"negative-n", -2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runs := make([]atomic.Int64, max(tc.n, 0))
			err := ForEach(context.Background(), tc.n, tc.workers, func(i int) error {
				runs[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("ForEach: %v", err)
			}
			for i := range runs {
				if got := runs[i].Load(); got != 1 {
					t.Errorf("index %d ran %d times, want 1", i, got)
				}
			}
		})
	}
}

// TestForEachCancellationMidDispatch cancels the context from inside a
// task: the fan-out must stop dispatching new work and surface
// context.Canceled rather than finishing the remaining indices.
func TestForEachCancellationMidDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 10000
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var executed atomic.Int64
			err := ForEach(ctx, n, workers, func(i int) error {
				if executed.Add(1) == 3 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if got := executed.Load(); got >= n {
				t.Fatalf("executed %d of %d tasks despite cancellation", got, n)
			}
		})
	}
}

// TestForEachLowestIndexedErrorWins pins the error-selection contract:
// when several workers fail concurrently, the error returned is the one
// from the lowest index that actually ran and errored.
func TestForEachLowestIndexedErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 64
			taskErrs := make([]error, n)
			for i := range taskErrs {
				taskErrs[i] = fmt.Errorf("task %d failed", i)
			}
			var mu sync.Mutex
			var errored []int
			err := ForEach(context.Background(), n, workers, func(i int) error {
				mu.Lock()
				errored = append(errored, i)
				mu.Unlock()
				return taskErrs[i]
			})
			if err == nil {
				t.Fatal("ForEach returned nil despite failing tasks")
			}
			lowest := n
			for _, i := range errored {
				if i < lowest {
					lowest = i
				}
			}
			if err != taskErrs[lowest] {
				t.Fatalf("err = %v, want error of lowest errored index %d", err, lowest)
			}
		})
	}
}

// TestForEachWorkerSlotExclusivity proves the arena-safety contract of
// ForEachWorker: a worker slot is owned by at most one goroutine at a
// time, so per-slot scratch state needs no locking.
func TestForEachWorkerSlotExclusivity(t *testing.T) {
	const n, workers = 500, 8
	occupancy := make([]atomic.Int64, workers)
	var slotSeen [workers]atomic.Bool
	err := ForEachWorker(context.Background(), n, workers, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker slot %d out of range [0,%d)", worker, workers)
		}
		slotSeen[worker].Store(true)
		if c := occupancy[worker].Add(1); c != 1 {
			return fmt.Errorf("worker slot %d occupied by %d goroutines", worker, c)
		}
		defer occupancy[worker].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForEachWorkerClampsSlots checks that with fewer tasks than workers
// the slot numbers are clamped to the task count, keeping per-worker
// arena slices indexable by slot.
func TestForEachWorkerClampsSlots(t *testing.T) {
	const n, workers = 3, 100
	var maxSlot atomic.Int64
	err := ForEachWorker(context.Background(), n, workers, func(worker, i int) error {
		for {
			cur := maxSlot.Load()
			if int64(worker) <= cur || maxSlot.CompareAndSwap(cur, int64(worker)) {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSlot.Load(); got >= n {
		t.Fatalf("saw worker slot %d with only %d tasks", got, n)
	}
}
