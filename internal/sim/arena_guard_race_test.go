//go:build race

package sim

import (
	"context"
	"strings"
	"sync"
	"testing"

	"gicnet/internal/failure"
)

// TestArenaGuardFiresOnConcurrentUse proves the race-build misuse guard
// fails loudly: two goroutines entering one arena at once must panic in at
// least one of them, with the contract spelled out in the message. The
// guard panics before the losing goroutine touches any arena field, so the
// surviving run stays race-free and the panic is safely recoverable here.
func TestArenaGuardFiresOnConcurrentUse(t *testing.T) {
	net := lineNetwork(64)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: failure.Uniform{P: 0.1}, SpacingKm: 100, Trials: 4096, Seed: 7, Workers: 1}

	a := NewArena()
	const goroutines = 4
	panics := make(chan string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r.(string)
				}
			}()
			// Repeat so overlap is all but certain even on one core.
			for i := 0; i < 25; i++ {
				if _, err := a.RunModel(context.Background(), net, cfg); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(panics)
	caught := 0
	for msg := range panics {
		caught++
		if !strings.Contains(msg, "Arena used concurrently") {
			t.Fatalf("guard panic message %q does not name the misuse", msg)
		}
	}
	if caught == 0 {
		t.Fatal("four goroutines shared one Arena and the guard never fired")
	}
}

// TestArenaGuardAllowsSequentialReuse pins the other half of the contract:
// handing an arena from goroutine to goroutine sequentially is legal, and
// the guard must stay silent.
func TestArenaGuardAllowsSequentialReuse(t *testing.T) {
	net := lineNetwork(32)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: failure.Uniform{P: 0.2}, SpacingKm: 100, Trials: 64, Seed: 3, Workers: 1}
	a := NewArena()
	for i := 0; i < 4; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := a.RunModel(context.Background(), net, cfg)
			done <- err
		}()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
