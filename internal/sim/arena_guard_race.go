//go:build race

package sim

// Race-detector builds arm the Arena misuse guard: every run entry point
// claims the arena with one CAS and releases it on exit. Two goroutines
// inside the same arena is always a caller bug (the documented contract is
// one arena per worker); the guard turns the silent data race into an
// immediate, attributable panic — and because the loser panics before
// touching any arena field, the winner's run stays race-free, so tests can
// recover the panic and assert on it even under -race.

// acquire claims exclusive ownership of the arena, panicking if another
// goroutine already holds it.
func (a *Arena) acquire() {
	if !a.owner.CompareAndSwap(0, 1) {
		panic("sim: Arena used concurrently from multiple goroutines; give each worker its own arena")
	}
}

// release returns the arena to the unowned state.
func (a *Arena) release() { a.owner.Store(0) }
