//go:build race

package sim

import (
	"context"
	"fmt"
	"testing"

	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/routing"
	"gicnet/internal/topology"
)

// coordLine is lineNetwork with located nodes, so crosslayer.Compile
// accepts it as a scoring target.
func coordLine(n int) *topology.Network {
	net := &topology.Network{Name: fmt.Sprintf("coordline-%d", n)}
	for i := 0; i <= n; i++ {
		net.Nodes = append(net.Nodes, topology.Node{
			Name:     fmt.Sprintf("n%d", i),
			HasCoord: true,
			Coord:    geo.Coord{Lat: 45, Lon: float64(i)*0.4 - 15},
		})
	}
	for i := 0; i < n; i++ {
		net.Cables = append(net.Cables, topology.Cable{
			Name:        fmt.Sprintf("c%d", i),
			Segments:    []topology.Segment{{A: i, B: i + 1, LengthKm: 1500}},
			KnownLength: true,
		})
	}
	return net
}

// TestSweepArenaSurvivesPanicMidRun pins the acquire/defer-release pairing
// in the external-arena sweep. The panic is provoked by violating the
// Config.CrossLayer contract ("the index must be compiled for the run's
// network"): the network is truncated after the index is compiled, so the
// pointer-identity check passes but cross-layer scoring indexes past the
// shrunken bitsets. A panic anywhere inside the swept run must still
// release the arena on unwind; before the pairing fix the release was
// skipped, and on this race build the very next acquire tripped the
// concurrent-use guard even though the arena was back on a single
// goroutine.
func TestSweepArenaSurvivesPanicMidRun(t *testing.T) {
	net := coordLine(100) // two bitset words at compile time
	cat := &dataset.RouterCatalog{ASes: []dataset.AS{
		{ASN: 1, Home: geo.Coord{Lat: 45, Lon: -15}, Routers: []geo.Coord{{Lat: 45, Lon: -15}}},
		{ASN: 2, Home: geo.Coord{Lat: 45, Lon: 25}, Routers: []geo.Coord{{Lat: 45, Lon: 25}}},
	}}
	x, err := crosslayer.Compile(net, cat, routing.DefaultDemands())
	if err != nil {
		t.Fatal(err)
	}
	net.Cables = net.Cables[:8] // one bitset word at run time
	net.Nodes = net.Nodes[:9]

	a := NewArena()
	cfg := Config{SpacingKm: 100, Trials: 64, Seed: 3, Workers: 1, CrossLayer: x}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("stale cross-layer index over a truncated network did not panic")
			}
		}()
		_, _ = SweepUniformArena(context.Background(), net, cfg, []float64{0.5}, a)
	}()

	// The deferred release ran during unwind, so the arena is reusable.
	clean := Config{Model: failure.Uniform{P: 0.1}, SpacingKm: 100, Trials: 64, Seed: 3, Workers: 1}
	if _, err := a.RunModel(context.Background(), net, clean); err != nil {
		t.Fatalf("arena unusable after recovered panic: %v", err)
	}
}
