package sim

import (
	"context"
	"math"
	"testing"

	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/routing"
)

func testCrossIndex(t *testing.T) *crosslayer.Index {
	t.Helper()
	net := testNet()
	cat := &dataset.RouterCatalog{ASes: []dataset.AS{
		{ASN: 1, Home: geo.Coord{Lat: 64, Lon: 1}, Routers: []geo.Coord{{Lat: 64, Lon: 1}}},
		{ASN: 2, Home: geo.Coord{Lat: 51, Lon: 9}, Routers: []geo.Coord{{Lat: 51, Lon: 9}}},
		{ASN: 3, Home: geo.Coord{Lat: 29, Lon: 21}, Routers: []geo.Coord{{Lat: 29, Lon: 21}}},
		{ASN: 4, Home: geo.Coord{Lat: 11, Lon: 29}, Routers: []geo.Coord{{Lat: 11, Lon: 29}}},
	}}
	x, err := crosslayer.Compile(net, cat, routing.DefaultDemands())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return x
}

// TestCrossLayerFingerprintAcrossWorkers pins that cross-layer scoring
// keeps the engine's determinism contract: identical fingerprints at
// workers 1 and 4, scores filled for every trial, and a different
// fingerprint than the same run without the metric (its own identity).
func TestCrossLayerFingerprintAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	x := testCrossIndex(t)
	cfg := Config{Model: failure.Uniform{P: 0.3}, SpacingKm: 150, Trials: 200, Seed: 42, CrossLayer: x}

	cfg.Workers = 1
	r1, err := Run(ctx, x.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	r4, err := Run(ctx, x.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Cross) != cfg.Trials || len(r4.Cross) != cfg.Trials {
		t.Fatalf("Cross lengths %d/%d, want %d", len(r1.Cross), len(r4.Cross), cfg.Trials)
	}
	if f1, f4 := r1.Fingerprint(), r4.Fingerprint(); f1 != f4 {
		t.Fatalf("fingerprints differ across workers: %x != %x", f1, f4)
	}
	for i := range r1.Cross {
		a, b := r1.Cross[i], r4.Cross[i]
		if a.ReachablePairs != b.ReachablePairs ||
			math.Float64bits(a.StrandedShare) != math.Float64bits(b.StrandedShare) {
			t.Fatalf("trial %d scores differ across workers: %+v vs %+v", i, a, b)
		}
	}

	plain := cfg
	plain.CrossLayer = nil
	plain.Workers = 1
	rp, err := Run(ctx, x.Network(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Cross != nil {
		t.Fatal("plain run filled Cross")
	}
	if rp.Fingerprint() == r1.Fingerprint() {
		t.Fatal("cross-layer run shares the plain fingerprint; wants its own identity")
	}
	// The physical outcomes themselves are untouched by the extra metric.
	for i := range rp.Outcomes {
		if rp.Outcomes[i] != r1.Outcomes[i] {
			t.Fatalf("trial %d physical outcome changed: %+v vs %+v", i, rp.Outcomes[i], r1.Outcomes[i])
		}
	}
}

// TestCrossLayerNetworkMismatch rejects an index compiled for another
// network.
func TestCrossLayerNetworkMismatch(t *testing.T) {
	ctx := context.Background()
	x := testCrossIndex(t)
	other := testNet() // distinct pointer: not the index's network
	cfg := Config{Model: failure.Uniform{P: 0.3}, SpacingKm: 150, Trials: 8, Seed: 1, CrossLayer: x}
	if _, err := Run(ctx, other, cfg); err == nil {
		t.Fatal("mismatched index must error")
	}
}

// TestCrossLayerSweep checks sweeps carry the metric through every point.
func TestCrossLayerSweep(t *testing.T) {
	ctx := context.Background()
	x := testCrossIndex(t)
	cfg := Config{SpacingKm: 150, Trials: 70, Seed: 9, Workers: 2, CrossLayer: x}
	pts, err := SweepUniform(ctx, x.Network(), cfg, []float64{0.01, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if len(pt.Result.Cross) != cfg.Trials {
			t.Fatalf("p=%g: Cross length %d, want %d", pt.P, len(pt.Result.Cross), cfg.Trials)
		}
	}
	// At p=1 every repeatered cable dies; stranding must be at least the
	// p=0.01 level on every aggregate.
	last := pts[len(pts)-1].Result.Cross
	first := pts[0].Result.Cross
	if last[0].ReachablePairs > first[0].ReachablePairs {
		t.Fatalf("more reachable pairs at p=1 (%d) than p=0.01 (%d)",
			last[0].ReachablePairs, first[0].ReachablePairs)
	}
}
