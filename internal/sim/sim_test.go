package sim

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

func testNet() *topology.Network {
	nodes := []topology.Node{
		{Name: "a", Coord: geo.Coord{Lat: 65, Lon: 0}, HasCoord: true},
		{Name: "b", Coord: geo.Coord{Lat: 50, Lon: 10}, HasCoord: true},
		{Name: "c", Coord: geo.Coord{Lat: 30, Lon: 20}, HasCoord: true},
		{Name: "d", Coord: geo.Coord{Lat: 10, Lon: 30}, HasCoord: true},
	}
	cables := []topology.Cable{
		{Name: "ab", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 2000}}, KnownLength: true},
		{Name: "bc", Segments: []topology.Segment{{A: 1, B: 2, LengthKm: 3000}}, KnownLength: true},
		{Name: "cd", Segments: []topology.Segment{{A: 2, B: 3, LengthKm: 800}}, KnownLength: true},
		{Name: "ad", Segments: []topology.Segment{{A: 0, B: 3, LengthKm: 9000}}, KnownLength: true},
	}
	return &topology.Network{Name: "t", Nodes: nodes, Cables: cables}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	n := testNet()
	if _, err := Run(ctx, n, Config{Model: nil, SpacingKm: 150, Trials: 1}); err == nil {
		t.Error("nil model must error")
	}
	if _, err := Run(ctx, n, Config{Model: failure.Uniform{P: 0.5}, SpacingKm: 0, Trials: 1}); err == nil {
		t.Error("bad spacing must error")
	}
	if _, err := Run(ctx, n, Config{Model: failure.Uniform{P: 0.5}, SpacingKm: 150, Trials: 0}); err == nil {
		t.Error("zero trials must error")
	}
	bad := testNet()
	bad.Cables[0].Segments[0].B = 99
	if _, err := Run(ctx, bad, Config{Model: failure.Uniform{P: 0.5}, SpacingKm: 150, Trials: 1}); err == nil {
		t.Error("invalid network must error")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Model: failure.Uniform{P: 0.3}, SpacingKm: 150, Trials: 64, Seed: 42}

	cfg.Workers = 1
	r1, err := Run(ctx, testNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	r8, err := Run(ctx, testNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Outcomes, r8.Outcomes) {
		t.Error("outcomes differ across worker counts; trial RNG must be scheduling-independent")
	}
	if r1.CableFrac.Mean() != r8.CableFrac.Mean() {
		t.Error("means differ across worker counts")
	}
}

func TestRunSeedsIndependent(t *testing.T) {
	ctx := context.Background()
	base := Config{Model: failure.Uniform{P: 0.3}, SpacingKm: 150, Trials: 32}
	a := base
	a.Seed = 1
	b := base
	b.Seed = 2
	ra, err := Run(ctx, testNet(), a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(ctx, testNet(), b)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra.Outcomes, rb.Outcomes) {
		t.Error("different seeds produced identical outcomes")
	}
}

func TestRunExtremeProbabilities(t *testing.T) {
	ctx := context.Background()
	r, err := Run(ctx, testNet(), Config{Model: failure.Uniform{P: 1}, SpacingKm: 150, Trials: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.CableFrac.Mean() != 1 || r.CableFrac.StdDev() != 0 {
		t.Errorf("p=1: mean %v std %v, want 1, 0", r.CableFrac.Mean(), r.CableFrac.StdDev())
	}
	if r.NodeFrac.Mean() != 1 {
		t.Errorf("p=1: node mean %v, want 1 (all nodes isolated)", r.NodeFrac.Mean())
	}
	r, err = Run(ctx, testNet(), Config{Model: failure.Uniform{P: 0}, SpacingKm: 150, Trials: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.CableFrac.Mean() != 0 || r.NodeFrac.Mean() != 0 {
		t.Error("p=0 should produce zero failures")
	}
}

func TestRunMatchesAnalyticExpectation(t *testing.T) {
	ctx := context.Background()
	n := testNet()
	cfg := Config{Model: failure.S1(), SpacingKm: 100, Trials: 4000, Seed: 7}
	r, err := Run(ctx, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := failure.ExpectedCableFrac(n, cfg.Model, cfg.SpacingKm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.CableFrac.Mean()-want) > 0.02 {
		t.Errorf("MC cable mean %v, analytic %v", r.CableFrac.Mean(), want)
	}
}

func TestRunResultMetadata(t *testing.T) {
	ctx := context.Background()
	r, err := Run(ctx, testNet(), Config{Model: failure.S2(), SpacingKm: 50, Trials: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Network != "t" || r.Model != "S2(low)" || r.SpacingKm != 50 {
		t.Errorf("metadata = %q %q %v", r.Network, r.Model, r.SpacingKm)
	}
	if len(r.Outcomes) != 3 || r.CableFrac.N() != 3 {
		t.Errorf("trial bookkeeping: %d outcomes, n=%d", len(r.Outcomes), r.CableFrac.N())
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, testNet(), Config{Model: failure.Uniform{P: 0.5}, SpacingKm: 150, Trials: 100000, Seed: 1})
	if err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestSweepUniform(t *testing.T) {
	ctx := context.Background()
	cfg := Config{SpacingKm: 150, Trials: 200, Seed: 3, Model: failure.Uniform{P: 0}}
	ps := []float64{0.001, 0.01, 0.1, 1}
	pts, err := SweepUniform(ctx, testNet(), cfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(ps) {
		t.Fatalf("points = %d", len(pts))
	}
	// failure fraction grows with probability
	for i := 1; i < len(pts); i++ {
		if pts[i].Result.CableFrac.Mean() < pts[i-1].Result.CableFrac.Mean()-0.05 {
			t.Errorf("sweep not increasing at p=%v", pts[i].P)
		}
	}
	if pts[3].Result.CableFrac.Mean() != 1 {
		t.Errorf("p=1 point mean = %v", pts[3].Result.CableFrac.Mean())
	}
}

func TestSweepReproducible(t *testing.T) {
	ctx := context.Background()
	cfg := Config{SpacingKm: 150, Trials: 50, Seed: 5, Model: failure.Uniform{P: 0}}
	ps := []float64{0.01, 0.1}
	a, err := SweepUniform(ctx, testNet(), cfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepUniform(ctx, testNet(), cfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Result.Outcomes, b[i].Result.Outcomes) {
			t.Fatalf("sweep point %d not reproducible", i)
		}
	}
}

func TestDefaultAxes(t *testing.T) {
	ps := DefaultProbabilities()
	if ps[0] != 0.001 || ps[len(ps)-1] != 1 {
		t.Errorf("probabilities = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Error("probabilities must increase")
		}
	}
	sp := DefaultSpacings()
	if len(sp) != 3 || sp[0] != 50 || sp[2] != 150 {
		t.Errorf("spacings = %v", sp)
	}
}

func TestRunMoreWorkersThanTrials(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Model: failure.Uniform{P: 0.5}, SpacingKm: 150, Trials: 2, Seed: 1, Workers: 64}
	if _, err := Run(ctx, testNet(), cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunBitReproducibleAcrossWorkerBudgets is the reproducibility
// acceptance test: identical Outcomes for Workers in {1, 4, GOMAXPROCS}.
func TestRunBitReproducibleAcrossWorkerBudgets(t *testing.T) {
	ctx := context.Background()
	base := Config{Model: failure.S1(), SpacingKm: 100, Trials: 97, Seed: 1234}
	var ref []failure.Outcome
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := base
		cfg.Workers = workers
		r, err := Run(ctx, testNet(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r.Outcomes
			continue
		}
		if !reflect.DeepEqual(r.Outcomes, ref) {
			t.Fatalf("Workers=%d: outcomes differ from Workers=1", workers)
		}
	}
}

// TestRunPlanMatchesRun verifies that compiling once and calling RunPlan
// repeatedly is bit-identical to the Run convenience path.
func TestRunPlanMatchesRun(t *testing.T) {
	ctx := context.Background()
	n := testNet()
	cfg := Config{Model: failure.S2(), SpacingKm: 150, Trials: 40, Seed: 8, Workers: 2}
	want, err := Run(ctx, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := failure.Compile(n, cfg.Model, cfg.SpacingKm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPlan(ctx, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunPlan result differs from Run:\n got %+v\nwant %+v", got, want)
	}
	if _, err := RunPlan(ctx, plan, Config{Trials: 0}); err == nil {
		t.Error("RunPlan with zero trials must error")
	}
}

// TestSweepUniformParallelMatchesSerial asserts the parallel sweep is
// byte-identical to running each point serially with the same derived
// seeds, for several worker budgets.
func TestSweepUniformParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	n := testNet()
	ps := []float64{0.001, 0.01, 0.1, 0.5, 1}
	cfg := Config{SpacingKm: 150, Trials: 30, Seed: 77, Model: failure.Uniform{P: 0}}

	// Serial reference: the pre-parallelism SweepUniform loop, inlined.
	root := xrand.New(cfg.Seed)
	var want []SweepPoint
	for i, p := range ps {
		c := cfg
		c.Model = failure.Uniform{P: p}
		c.Seed = root.Split(uint64(i)).Uint64()
		c.Workers = 1
		r, err := Run(ctx, n, c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, SweepPoint{P: p, Result: r})
	}

	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		c := cfg
		c.Workers = workers
		got, err := SweepUniform(ctx, n, c, ps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d: parallel sweep differs from serial reference", workers)
		}
	}
}

func TestForEach(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [50]atomic.Int64
		if err := ForEach(ctx, len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachError(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("boom")
	err := ForEach(ctx, 100, 4, func(i int) error {
		if i == 13 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(cancelled, 10, 4, func(int) error { return nil }); err == nil {
		t.Error("cancelled context must surface an error")
	}
}

// TestRunErrorDoesNotHang guards the old feeder deadlock: a Run whose
// model compilation fails must return promptly (trial dispatch is now an
// atomic counter, so there is no feeder send to strand). The bad spacing is
// caught at compile time, before any worker spawns.
func TestRunErrorDoesNotHang(t *testing.T) {
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, testNet(), Config{Model: failure.Uniform{P: 0.5}, SpacingKm: -1, Trials: 100000, Workers: 4})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("bad spacing must error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung on error path")
	}
}
