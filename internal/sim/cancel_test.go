package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gicnet/internal/failure"
	"gicnet/internal/topology"
)

// lineNetwork builds a path network with n single-segment cables, sized so
// trial loops are cheap but non-trivial. Shared by the cancellation and
// arena-guard tests.
func lineNetwork(n int) *topology.Network {
	net := &topology.Network{Name: fmt.Sprintf("line-%d", n)}
	for i := 0; i <= n; i++ {
		net.Nodes = append(net.Nodes, topology.Node{Name: fmt.Sprintf("n%d", i)})
	}
	for i := 0; i < n; i++ {
		net.Cables = append(net.Cables, topology.Cable{
			Name:        fmt.Sprintf("c%d", i),
			Segments:    []topology.Segment{{A: i, B: i + 1, LengthKm: 1500}},
			KnownLength: true,
		})
	}
	return net
}

// stableGoroutineCount samples the goroutine count after letting any
// winding-down workers exit; the retry loop absorbs unrelated runtime
// goroutines coming and going.
func stableGoroutineCount(baseline int) int {
	count := runtime.NumGoroutine()
	for i := 0; i < 200 && count > baseline; i++ {
		time.Sleep(5 * time.Millisecond)
		count = runtime.NumGoroutine()
	}
	return count
}

// TestSweepCancellationPromptNoLeaks proves the cancellation contract the
// serving layer depends on: cancelling a large in-flight sweep returns
// promptly (bounded by a couple of trial blocks, not the full sweep) and
// leaves no worker goroutines behind. Run with -race to cover the
// worker-pool teardown.
func TestSweepCancellationPromptNoLeaks(t *testing.T) {
	net := lineNetwork(256)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// A sweep sized to take seconds if cancellation were ignored: many
	// points, many trials per point.
	ps := make([]float64, 64)
	for i := range ps {
		ps[i] = 0.01 + 0.9*float64(i)/float64(len(ps))
	}
	cfg := Config{Model: failure.Uniform{}, SpacingKm: 100, Trials: 200000, Seed: 11, Workers: 4}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		// Let the sweep get properly underway before pulling the plug.
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := SweepUniform(ctx, net, cfg, ps)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned err=%v, want context.Canceled", err)
	}
	// Workers must notice cancellation between trial blocks, so the return
	// is bounded by block granularity, not sweep size. The full sweep takes
	// tens of seconds; 2s is generous for a busy CI box while still
	// catching any straggler that finishes its whole point first.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled sweep took %v to return; cancellation is not prompt", elapsed)
	}
	if got := stableGoroutineCount(baseline); got > baseline {
		t.Fatalf("goroutines after cancelled sweep: %d, baseline %d — workers leaked", got, baseline)
	}
}

// TestRunCancellationPromptNoLeaks is the same proof for the flat trial
// engine: a cancelled Run with a parallel worker pool returns promptly and
// tears every worker down.
func TestRunCancellationPromptNoLeaks(t *testing.T) {
	net := lineNetwork(256)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: failure.Uniform{P: 0.3}, SpacingKm: 100, Trials: 5_000_000, Seed: 5, Workers: 4}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := Run(ctx, net, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned err=%v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v to return; cancellation is not prompt", elapsed)
	}
	if got := stableGoroutineCount(baseline); got > baseline {
		t.Fatalf("goroutines after cancelled run: %d, baseline %d — workers leaked", got, baseline)
	}
}

// TestForEachCancellationBeforeStart pins the degenerate edge: a context
// cancelled before ForEach is entered must dispatch nothing and return the
// context error from every shape of the fan-out.
func TestForEachCancellationBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		err := ForEach(ctx, 100, workers, func(i int) error {
			ran = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if ran {
			t.Fatalf("workers=%d: tasks dispatched despite pre-cancelled context", workers)
		}
	}
}

// TestArenaRunPlanMatchesRunPlan proves the serving layer's execution
// primitive is bit-identical to the package-level engine: running a shared
// compiled plan through an arena yields the same fingerprint as RunPlan
// and as a full sim.Run of the same configuration.
func TestArenaRunPlanMatchesRunPlan(t *testing.T) {
	net := testNet()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: failure.Uniform{P: 0.2}, SpacingKm: 150, Trials: 96, Seed: 77, Workers: 1}
	plan, err := failure.Compile(net, cfg.Model, cfg.SpacingKm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunPlan(context.Background(), plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	for i := 0; i < 3; i++ { // repeated reuse must not drift
		got, err := a.RunPlan(context.Background(), plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("arena RunPlan fingerprint %016x != RunPlan %016x (iteration %d)",
				got.Fingerprint(), want.Fingerprint(), i)
		}
	}
	direct, err := Run(context.Background(), net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Fingerprint() != want.Fingerprint() {
		t.Fatalf("sim.Run fingerprint %016x != RunPlan %016x", direct.Fingerprint(), want.Fingerprint())
	}

	// Zero-trial misuse stays an error on the arena path too.
	if _, err := a.RunPlan(context.Background(), plan, Config{Trials: 0}); err == nil {
		t.Fatal("RunPlan with zero trials must error")
	}
}
