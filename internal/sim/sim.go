// Package sim is the Monte Carlo engine that powers every error-barred
// number in the paper's evaluation: it runs repeated failure trials over a
// network, in parallel, with bit-reproducible results.
//
// Reproducibility: each trial gets an RNG split from the run seed by trial
// index, so results do not depend on scheduling or worker count. Sweeps
// seed each point by index the same way, so parallel sweeps are
// byte-identical to serial ones.
//
// Performance: every run compiles its failure model into a failure.Plan
// once, and each worker reuses one dead-mask scratch slice, so the
// steady-state trial loop performs zero allocations. Trials are dispatched
// by an atomic counter rather than a feeder channel — there is no feeder
// goroutine to deadlock when workers stop early, and an error (now only
// possible at compile/validate time) can never strand a blocked send.
package sim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gicnet/internal/failure"
	"gicnet/internal/stats"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	// Model is the repeater failure model.
	Model failure.Model
	// SpacingKm is the inter-repeater distance (50, 100 or 150 in the
	// paper's sweeps).
	SpacingKm float64
	// Trials is the number of Monte Carlo repetitions (the paper uses 10).
	Trials int
	// Seed drives the trial RNGs.
	Seed uint64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Model == nil {
		return errors.New("sim: nil model")
	}
	if c.SpacingKm <= 0 {
		return failure.ErrBadSpacing
	}
	if c.Trials <= 0 {
		return errors.New("sim: trials must be positive")
	}
	return nil
}

// Result aggregates outcomes over all trials of a run.
type Result struct {
	// Network and Model identify the run in reports.
	Network string
	Model   string
	// SpacingKm echoes the configuration.
	SpacingKm float64
	// CableFrac aggregates the fraction of failed cables per trial.
	CableFrac stats.Running
	// NodeFrac aggregates the fraction of unreachable nodes per trial.
	NodeFrac stats.Running
	// Outcomes holds the per-trial raw outcomes, in trial order.
	Outcomes []failure.Outcome
}

// Fingerprint hashes the per-trial outcomes (FNV-1a over their binary
// representation, in trial order) together with the run identity. Two runs
// of the same configuration are byte-identical exactly when their
// fingerprints match, whatever the worker count — the replay layer of the
// verification subsystem compares fingerprints across worker counts to
// prove scheduling independence.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%g|", r.Network, r.Model, r.SpacingKm)
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	for _, o := range r.Outcomes {
		word(uint64(o.CablesFailed))
		word(uint64(o.NodesUnreachable))
		word(math.Float64bits(o.CableFrac))
		word(math.Float64bits(o.NodeFrac))
	}
	return h.Sum64()
}

// Run executes the Monte Carlo simulation described by cfg on net.
// The context cancels long runs between trials.
func Run(ctx context.Context, net *topology.Network, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid network: %w", err)
	}
	plan, err := failure.Compile(net, cfg.Model, cfg.SpacingKm)
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, plan, cfg)
}

// RunPlan executes the trials of cfg against an already-compiled plan.
// cfg.Model and cfg.SpacingKm are ignored; the plan's own model and
// spacing identify the run. Callers that sweep many seeds over one
// (network, model, spacing) triple should compile once and call RunPlan.
func RunPlan(ctx context.Context, plan *failure.Plan, cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	root := xrand.New(cfg.Seed)
	outcomes := make([]failure.Outcome, cfg.Trials)

	runTrial := func(dead []bool, ti int) {
		rng := root.SplitAt(uint64(ti))
		plan.SampleInto(dead, &rng)
		outcomes[ti] = plan.Evaluate(dead)
	}

	if workers == 1 {
		dead := make([]bool, plan.NumCables())
		for ti := 0; ti < cfg.Trials; ti++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runTrial(dead, ti)
		}
	} else {
		// Workers claim trial indices from an atomic counter; each owns a
		// reusable dead mask, so the loop allocates nothing per trial.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dead := make([]bool, plan.NumCables())
				for {
					ti := int(next.Add(1)) - 1
					if ti >= cfg.Trials || ctx.Err() != nil {
						return
					}
					runTrial(dead, ti)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Network:   plan.Network().Name,
		Model:     plan.ModelName(),
		SpacingKm: plan.SpacingKm(),
		Outcomes:  outcomes,
	}
	for _, o := range outcomes {
		res.CableFrac.Add(o.CableFrac)
		res.NodeFrac.Add(o.NodeFrac)
	}
	return res, nil
}

// ForEach runs fn(0), ..., fn(n-1) across at most workers goroutines
// (0 means GOMAXPROCS) and returns the lowest-indexed error, if any. It is
// the fan-out primitive behind parallel sweeps and experiment grids: tasks
// claim indices from an atomic counter, and a failed task stops further
// dispatch. fn must be safe to call concurrently and should write results
// into its own index of a pre-sized slice.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SweepPoint is one (probability, result) pair of a probability sweep.
type SweepPoint struct {
	P      float64
	Result *Result
}

// SweepUniform runs one simulation per probability in ps with a uniform
// model — the x-axis sweep of the paper's Figures 6 and 7. Each point uses
// a seed split from cfg.Seed by index, so points are independent, the
// whole sweep is reproducible, and the parallel execution below is
// byte-identical to running the points serially.
//
// The cfg.Workers budget (0 = GOMAXPROCS) is shared across the sweep:
// points fan out first, and any budget beyond the point count parallelises
// trials within each point.
func SweepUniform(ctx context.Context, net *topology.Network, cfg Config, ps []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(ps))
	root := xrand.New(cfg.Seed)
	budget := cfg.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	pointWorkers := budget
	if pointWorkers > len(ps) {
		pointWorkers = len(ps)
	}
	err := ForEach(ctx, len(ps), pointWorkers, func(i int) error {
		c := cfg
		c.Model = failure.Uniform{P: ps[i]}
		child := root.SplitAt(uint64(i))
		c.Seed = child.Uint64()
		if pointWorkers > 0 {
			c.Workers = budget / pointWorkers
		}
		if c.Workers < 1 {
			c.Workers = 1
		}
		r, err := Run(ctx, net, c)
		if err != nil {
			return fmt.Errorf("sweep p=%g: %w", ps[i], err)
		}
		out[i] = SweepPoint{P: ps[i], Result: r}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultProbabilities is the x-axis of the paper's Figures 6-7:
// log-spaced from 0.001 to 1.
func DefaultProbabilities() []float64 {
	return []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
}

// DefaultSpacings are the paper's inter-repeater distances in km.
func DefaultSpacings() []float64 { return []float64{50, 100, 150} }
