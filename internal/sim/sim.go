// Package sim is the Monte Carlo engine that powers every error-barred
// number in the paper's evaluation: it runs repeated failure trials over a
// network, in parallel, with bit-reproducible results.
//
// Reproducibility: each trial gets an RNG split from the run seed by trial
// index, so results do not depend on scheduling or worker count.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"gicnet/internal/failure"
	"gicnet/internal/stats"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	// Model is the repeater failure model.
	Model failure.Model
	// SpacingKm is the inter-repeater distance (50, 100 or 150 in the
	// paper's sweeps).
	SpacingKm float64
	// Trials is the number of Monte Carlo repetitions (the paper uses 10).
	Trials int
	// Seed drives the trial RNGs.
	Seed uint64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Model == nil {
		return errors.New("sim: nil model")
	}
	if c.SpacingKm <= 0 {
		return failure.ErrBadSpacing
	}
	if c.Trials <= 0 {
		return errors.New("sim: trials must be positive")
	}
	return nil
}

// Result aggregates outcomes over all trials of a run.
type Result struct {
	// Network and Model identify the run in reports.
	Network string
	Model   string
	// SpacingKm echoes the configuration.
	SpacingKm float64
	// CableFrac aggregates the fraction of failed cables per trial.
	CableFrac stats.Running
	// NodeFrac aggregates the fraction of unreachable nodes per trial.
	NodeFrac stats.Running
	// Outcomes holds the per-trial raw outcomes, in trial order.
	Outcomes []failure.Outcome
}

// Run executes the Monte Carlo simulation described by cfg on net.
// The context cancels long runs between trials.
func Run(ctx context.Context, net *topology.Network, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid network: %w", err)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	// Build the graph projection once, before the fan-out, so concurrent
	// trials never race on the lazy cache.
	net.Graph()

	root := xrand.New(cfg.Seed)
	outcomes := make([]failure.Outcome, cfg.Trials)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	trialCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti := range trialCh {
				rng := root.Split(uint64(ti))
				dead, err := failure.SampleCableDeaths(net, cfg.Model, cfg.SpacingKm, rng)
				if err != nil {
					errs[w] = err
					return
				}
				outcomes[ti] = failure.Evaluate(net, dead)
			}
		}(w)
	}

feed:
	for ti := 0; ti < cfg.Trials; ti++ {
		select {
		case <-ctx.Done():
			break feed
		case trialCh <- ti:
		}
	}
	close(trialCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Network:   net.Name,
		Model:     cfg.Model.Name(),
		SpacingKm: cfg.SpacingKm,
		Outcomes:  outcomes,
	}
	for _, o := range outcomes {
		res.CableFrac.Add(o.CableFrac)
		res.NodeFrac.Add(o.NodeFrac)
	}
	return res, nil
}

// SweepPoint is one (probability, result) pair of a probability sweep.
type SweepPoint struct {
	P      float64
	Result *Result
}

// SweepUniform runs one simulation per probability in ps with a uniform
// model — the x-axis sweep of the paper's Figures 6 and 7. Each point uses
// a seed split from cfg.Seed by index so points are independent but the
// whole sweep is reproducible.
func SweepUniform(ctx context.Context, net *topology.Network, cfg Config, ps []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ps))
	root := xrand.New(cfg.Seed)
	for i, p := range ps {
		c := cfg
		c.Model = failure.Uniform{P: p}
		c.Seed = root.Split(uint64(i)).Uint64()
		r, err := Run(ctx, net, c)
		if err != nil {
			return nil, fmt.Errorf("sweep p=%g: %w", p, err)
		}
		out = append(out, SweepPoint{P: p, Result: r})
	}
	return out, nil
}

// DefaultProbabilities is the x-axis of the paper's Figures 6-7:
// log-spaced from 0.001 to 1.
func DefaultProbabilities() []float64 {
	return []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
}

// DefaultSpacings are the paper's inter-repeater distances in km.
func DefaultSpacings() []float64 { return []float64{50, 100, 150} }
