// Package sim is the Monte Carlo engine that powers every error-barred
// number in the paper's evaluation: it runs repeated failure trials over a
// network, in parallel, with bit-reproducible results.
//
// Reproducibility: each trial gets an RNG split from the run seed by trial
// index, so results do not depend on scheduling or worker count. Sweeps
// seed each point by index the same way, so parallel sweeps are
// byte-identical to serial ones.
//
// Performance: every run compiles its failure model into a failure.Plan
// once, and each worker reuses one packed dead-cable bitset, so the
// steady-state trial loop performs zero allocations. Sweeps go further:
// each sweep worker owns an Arena — a reusable compiled plan, bitset, and
// result storage — so a full figure sweep allocates only its output.
// Trials are dispatched by an atomic counter rather than a feeder channel —
// there is no feeder goroutine to deadlock when workers stop early, and an
// error (now only possible at compile/validate time) can never strand a
// blocked send.
package sim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gicnet/internal/crosslayer"
	"gicnet/internal/failure"
	"gicnet/internal/graph"
	"gicnet/internal/stats"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	// Model is the repeater failure model.
	Model failure.Model
	// SpacingKm is the inter-repeater distance (50, 100 or 150 in the
	// paper's sweeps).
	SpacingKm float64
	// Trials is the number of Monte Carlo repetitions (the paper uses 10).
	Trials int
	// Seed drives the trial RNGs.
	Seed uint64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// Estimator, when non-nil, replaces the plain Monte Carlo trial
	// sampler with a custom one (importance sampling, quasi-Monte Carlo —
	// see internal/rare). nil leaves the engine on the historical path,
	// bit-identical to every recorded golden and replay fingerprint.
	Estimator Estimator
	// CrossLayer, when non-nil, scores every trial's dead-cable set at
	// the logical layer too (reachable AS pairs, stranded users — see
	// internal/crosslayer), filling Result.Cross alongside the physical
	// outcomes. The index must be compiled for the run's network. nil
	// leaves the engine on the historical path.
	CrossLayer *crosslayer.Index
}

// Estimator draws trial realisations in place of the plain Monte Carlo
// sampler. Implementations must honour the engine's determinism contract:
// the realisation and log weight of trial t may depend only on (plan,
// root's state, t), never on block boundaries, worker count, or call
// order, and SampleBlock must be safe for concurrent calls on distinct
// scratches. The engine evaluates the sampled rows exactly as it does
// plain trials; the weights ride along in Result.LogWeights.
type Estimator interface {
	// EstimatorName tags results and fingerprints; it must be a pure
	// function of the estimator's configuration.
	EstimatorName() string
	// SampleBlock fills rows 0..n-1 of s with the realisations of trials
	// t0..t0+n-1 and writes each trial's log likelihood ratio
	// log(dP/dQ) into logw[:n] (0 for unweighted estimators).
	SampleBlock(plan *failure.Plan, s *failure.BatchScratch, root *xrand.Source, t0 uint64, n int, logw []float64)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Model == nil {
		return errors.New("sim: nil model")
	}
	if c.SpacingKm <= 0 {
		return failure.ErrBadSpacing
	}
	if c.Trials <= 0 {
		return errors.New("sim: trials must be positive")
	}
	return nil
}

// Result aggregates outcomes over all trials of a run.
type Result struct {
	// Network and Model identify the run in reports.
	Network string
	Model   string
	// SpacingKm echoes the configuration.
	SpacingKm float64
	// CableFrac aggregates the fraction of failed cables per trial.
	CableFrac stats.Running
	// NodeFrac aggregates the fraction of unreachable nodes per trial.
	NodeFrac stats.Running
	// Outcomes holds the per-trial raw outcomes, in trial order.
	Outcomes []failure.Outcome
	// LogWeights holds the per-trial log likelihood ratios when the run
	// used an importance-sampling estimator, in trial order; nil on the
	// plain Monte Carlo path. CableFrac/NodeFrac still aggregate the raw
	// outcomes — under a tilted distribution those are statistics of the
	// proposal, and the weighted accessors below are the estimates of the
	// target distribution's means.
	LogWeights []float64
	// Estimator names the estimator that drew the trials ("" = plain
	// Monte Carlo).
	Estimator string
	// Cross holds the per-trial cross-layer scores, in trial order, when
	// the run carried a crosslayer.Index; nil otherwise.
	Cross []crosslayer.Score
}

// Weight returns trial i's likelihood ratio (1 on the plain path).
func (r *Result) Weight(i int) float64 {
	if r.LogWeights == nil {
		return 1
	}
	return math.Exp(r.LogWeights[i])
}

// WeightedMean returns the unnormalised importance-sampling estimate
// (1/n) sum_i w_i f(outcome_i) of E[f] under the compiled failure
// distribution. Because each w_i is an exact likelihood ratio the
// estimate is unbiased, and on the plain path (all weights 1) it reduces
// to the sample mean.
func (r *Result) WeightedMean(f func(failure.Outcome) float64) float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	total := 0.0
	for i, o := range r.Outcomes {
		total += r.Weight(i) * f(o)
	}
	return total / float64(len(r.Outcomes))
}

// WeightedVariance returns the population variance of the per-trial
// estimator terms w_i f(outcome_i) — the quantity whose reduction the
// rare-event layer's benchmarks gate on, since the estimator's variance is
// this divided by the trial count.
func (r *Result) WeightedVariance(f func(failure.Outcome) float64) float64 {
	var run stats.Running
	for i, o := range r.Outcomes {
		run.Add(r.Weight(i) * f(o))
	}
	return run.Variance()
}

// ESS returns Kish's effective sample size (sum w)^2 / sum w^2 — how many
// plain trials the weighted sample is worth for mean estimation. On the
// plain path it equals the trial count; a collapsing ESS is the standard
// diagnostic for an overdriven tilt.
func (r *Result) ESS() float64 {
	if r.LogWeights == nil {
		return float64(len(r.Outcomes))
	}
	sum, sumSq := 0.0, 0.0
	for i := range r.LogWeights {
		w := r.Weight(i)
		sum += w
		sumSq += w * w
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / sumSq
}

// Fingerprint hashes the per-trial outcomes (FNV-1a over their binary
// representation, in trial order) together with the run identity. Two runs
// of the same configuration are byte-identical exactly when their
// fingerprints match, whatever the worker count — the replay layer of the
// verification subsystem compares fingerprints across worker counts to
// prove scheduling independence.
//
//gicnet:pure
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%g|", r.Network, r.Model, r.SpacingKm)
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	for _, o := range r.Outcomes {
		word(uint64(o.CablesFailed))
		word(uint64(o.NodesUnreachable))
		word(math.Float64bits(o.CableFrac))
		word(math.Float64bits(o.NodeFrac))
	}
	// Estimator runs also pin their weights; plain runs hash exactly the
	// bytes they always did, so historical fingerprints stay valid.
	if r.LogWeights != nil {
		fmt.Fprintf(h, "|est=%s|", r.Estimator)
		for _, lw := range r.LogWeights {
			word(math.Float64bits(lw))
		}
	}
	// Cross-layer runs pin every per-trial score under their own section,
	// giving the metric its own fingerprint identity; runs without it hash
	// the historical bytes exactly.
	if r.Cross != nil {
		fmt.Fprintf(h, "|cross|")
		for i := range r.Cross {
			c := &r.Cross[i]
			word(uint64(c.ReachablePairs))
			word(uint64(c.StrandedASes))
			word(math.Float64bits(c.StrandedShare))
			for _, v := range c.RegionStranded {
				word(math.Float64bits(v))
			}
			word(math.Float64bits(c.DemandWeighted))
		}
	}
	return h.Sum64()
}

// Run executes the Monte Carlo simulation described by cfg on net.
// The context cancels long runs between trials.
func Run(ctx context.Context, net *topology.Network, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid network: %w", err)
	}
	plan, err := failure.Compile(net, cfg.Model, cfg.SpacingKm)
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, plan, cfg)
}

// RunPlan executes the trials of cfg against an already-compiled plan.
// cfg.Model and cfg.SpacingKm are ignored; the plan's own model and
// spacing identify the run. Callers that sweep many seeds over one
// (network, model, spacing) triple should compile once and call RunPlan.
func RunPlan(ctx context.Context, plan *failure.Plan, cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}
	res := &Result{}
	outcomes := make([]failure.Outcome, cfg.Trials)
	var cross []crosslayer.Score
	if cfg.CrossLayer != nil {
		cross = make([]crosslayer.Score, cfg.Trials)
	}
	if err := runPlanInto(ctx, plan, cfg, res, outcomes, nil, cross, nil); err != nil {
		return nil, err
	}
	return res, nil
}

// runPlanInto is the trial engine writing into caller-owned memory: res is
// overwritten, outcomes (length cfg.Trials) backs res.Outcomes, and batch —
// when non-nil — is the serial path's trial-block scratch. When
// cfg.CrossLayer is set, cross (length cfg.Trials) backs res.Cross and cs —
// when non-nil — is the serial path's cross-layer scratch. Trials run in
// blocks of failure.MaxBatch, but trial ti's RNG is still split from the
// seed by ti alone, so the result is identical for every worker count and
// bit-identical to the historical one-trial-at-a-time loop.
func runPlanInto(ctx context.Context, plan *failure.Plan, cfg Config, res *Result, outcomes []failure.Outcome, batch *failure.BatchScratch, cross []crosslayer.Score, cs *crosslayer.Scratch) error {
	if cfg.Trials <= 0 {
		return errors.New("sim: trials must be positive")
	}
	idx := cfg.CrossLayer
	if idx != nil && idx.Network() != plan.Network() {
		return errors.New("sim: cross-layer index compiled for a different network")
	}
	blocks := (cfg.Trials + failure.MaxBatch - 1) / failure.MaxBatch
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// A block is the dispatch unit, so extra workers beyond the block count
	// would only idle.
	if workers > blocks {
		workers = blocks
	}

	// The estimator path carries per-trial log weights; the plain path
	// must not even allocate the slice, so a nil-estimator run stays
	// byte-for-byte the historical engine.
	est := cfg.Estimator
	var logw []float64
	if est != nil {
		logw = make([]float64, cfg.Trials)
	}

	if workers == 1 {
		// Keep the RNG root on the stack: the serial path is the inner loop
		// of arena sweeps and, given a caller-owned scratch, must not
		// allocate.
		root := *xrand.New(cfg.Seed)
		var local failure.BatchScratch
		if batch == nil {
			batch = &local
		}
		batch.Grow(plan)
		if idx != nil {
			var localCS crosslayer.Scratch
			if cs == nil {
				cs = &localCS
			}
			cs.Grow(idx)
		}
		for t0 := 0; t0 < cfg.Trials; t0 += failure.MaxBatch {
			if err := ctx.Err(); err != nil {
				return err
			}
			n := cfg.Trials - t0
			if n > failure.MaxBatch {
				n = failure.MaxBatch
			}
			if est != nil {
				est.SampleBlock(plan, batch, &root, uint64(t0), n, logw[t0:t0+n])
			} else {
				plan.SampleBatch(batch, &root, uint64(t0), n)
			}
			plan.EvaluateBatch(batch, n, outcomes[t0:t0+n])
			if idx != nil {
				idx.ScoreBatch(batch, n, cross[t0:t0+n], cs)
			}
		}
	} else {
		// Workers claim block indices from an atomic counter; each owns a
		// reusable block scratch, so the loop allocates nothing per block.
		root := xrand.New(cfg.Seed)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var scratch failure.BatchScratch
				scratch.Grow(plan)
				var crossScratch crosslayer.Scratch
				if idx != nil {
					crossScratch.Grow(idx)
				}
				for {
					bi := int(next.Add(1)) - 1
					if bi >= blocks || ctx.Err() != nil {
						return
					}
					t0 := bi * failure.MaxBatch
					n := cfg.Trials - t0
					if n > failure.MaxBatch {
						n = failure.MaxBatch
					}
					if est != nil {
						est.SampleBlock(plan, &scratch, root, uint64(t0), n, logw[t0:t0+n])
					} else {
						plan.SampleBatch(&scratch, root, uint64(t0), n)
					}
					plan.EvaluateBatch(&scratch, n, outcomes[t0:t0+n])
					if idx != nil {
						idx.ScoreBatch(&scratch, n, cross[t0:t0+n], &crossScratch)
					}
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
	}

	*res = Result{
		Network:    plan.Network().Name,
		Model:      plan.ModelName(),
		SpacingKm:  plan.SpacingKm(),
		Outcomes:   outcomes,
		LogWeights: logw,
	}
	if idx != nil {
		res.Cross = cross
	}
	if est != nil {
		res.Estimator = est.EstimatorName()
	}
	for _, o := range outcomes {
		res.CableFrac.Add(o.CableFrac)
		res.NodeFrac.Add(o.NodeFrac)
	}
	return nil
}

// Arena is per-worker reusable state for repeated runs: a compiled plan, a
// trial-block scratch, and result storage, all recycled call after call so
// steady-state sweep cells allocate nothing. An Arena is not safe for
// concurrent use — give each worker its own. The zero value is ready.
type Arena struct {
	plan     failure.Plan
	batch    failure.BatchScratch
	outcomes []failure.Outcome
	cross    []crosslayer.Score
	crossScr crosslayer.Scratch
	res      Result
	uniforms map[float64]failure.Model // memoized boxed sweep models

	// owner is the concurrent-misuse guard: race-detector builds CAS it on
	// entry to every run and panic if a second goroutine is already inside
	// (see arena_guard_race.go). Non-race builds compile the check away.
	owner atomic.Int32
}

// uniformModel returns a Uniform model for p, memoized so repeated sweeps
// through the same probabilities don't re-box the interface value per point.
func (a *Arena) uniformModel(p float64) failure.Model {
	if m, ok := a.uniforms[p]; ok {
		return m
	}
	if a.uniforms == nil {
		a.uniforms = make(map[float64]failure.Model)
	}
	m := failure.Uniform{P: p}
	a.uniforms[p] = m
	return m
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// RunModel compiles cfg's model against net (reusing the arena's plan
// storage) and runs the trials. The returned Result and its Outcomes are
// owned by the arena and valid only until the next call; callers that keep
// them must copy. The network is assumed validated.
func (a *Arena) RunModel(ctx context.Context, net *topology.Network, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a.acquire()
	defer a.release()
	if cap(a.outcomes) < cfg.Trials {
		a.outcomes = make([]failure.Outcome, cfg.Trials)
	}
	if err := a.runInto(ctx, net, cfg, &a.res, a.outcomes[:cfg.Trials], a.crossBuf(cfg)); err != nil {
		return nil, err
	}
	return &a.res, nil
}

// crossBuf returns the arena's cross-layer score buffer sized for cfg, or
// nil when the run carries no index.
func (a *Arena) crossBuf(cfg Config) []crosslayer.Score {
	if cfg.CrossLayer == nil {
		return nil
	}
	if cap(a.cross) < cfg.Trials {
		a.cross = make([]crosslayer.Score, cfg.Trials)
	}
	return a.cross[:cfg.Trials]
}

// RunPlan runs cfg's trials against a shared, already-compiled plan using
// the arena's scratch and result storage. The plan is immutable and safe to
// share across arenas and goroutines; only the arena is single-owner state.
// cfg.Model and cfg.SpacingKm are ignored — the plan identifies the run.
// Results are bit-identical to the package-level RunPlan; the returned
// Result and its Outcomes are owned by the arena and valid only until the
// next call. It is the serving layer's execution primitive: the plan comes
// from a cache tier, the arena from the shard's executor, and steady-state
// requests allocate nothing.
func (a *Arena) RunPlan(ctx context.Context, plan *failure.Plan, cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}
	a.acquire()
	defer a.release()
	if cap(a.outcomes) < cfg.Trials {
		a.outcomes = make([]failure.Outcome, cfg.Trials)
	}
	if err := runPlanInto(ctx, plan, cfg, &a.res, a.outcomes[:cfg.Trials], &a.batch, a.crossBuf(cfg), &a.crossScr); err != nil {
		return nil, err
	}
	return &a.res, nil
}

// runInto compiles into the arena's plan and runs cfg, writing the result
// into caller-owned res/outcomes/cross storage.
func (a *Arena) runInto(ctx context.Context, net *topology.Network, cfg Config, res *Result, outcomes []failure.Outcome, cross []crosslayer.Score) error {
	if err := failure.CompileInto(&a.plan, net, cfg.Model, cfg.SpacingKm); err != nil {
		return err
	}
	return runPlanInto(ctx, &a.plan, cfg, res, outcomes, &a.batch, cross, &a.crossScr)
}

// ForEach runs fn(0), ..., fn(n-1) across at most workers goroutines
// (0 means GOMAXPROCS) and returns the lowest-indexed error, if any. It is
// the fan-out primitive behind parallel sweeps and experiment grids: tasks
// claim indices from an atomic counter, and a failed task stops further
// dispatch. fn must be safe to call concurrently and should write results
// into its own index of a pre-sized slice.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachWorker(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach passing the worker slot (0..workers-1, after
// clamping to n) alongside the task index, so callers can thread
// per-worker arenas through the fan-out: a slot is owned by one goroutine
// at a time, never two concurrently.
func ForEachWorker(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || ctx.Err() != nil {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PairSurvival estimates the probability that the from and to node sets
// stay connected under the plan's failure distribution: trials
// realisations, trial ti seeded by SplitAt(ti) from seed exactly like Run,
// each tested for any surviving path between the sets. It is the shared
// trial loop behind the country-connectivity analysis and the partition
// layer's probe survival.
//
// By default each trial is answered on the plan's core contraction — the
// dead CABLE bitset is the query mask, so the per-trial cable→edge
// projection and the full-graph union-find both disappear. direct=true
// forces the full-graph reference path (edge projection + ComponentsBits);
// both engines return identical verdicts trial for trial, which the
// contracted-direct-parity invariant and the differential tests pin.
func PairSurvival(ctx context.Context, plan *failure.Plan, trials int, seed uint64, from, to []graph.NodeID, direct bool) (float64, error) {
	if trials <= 0 {
		return 0, errors.New("sim: trials must be positive")
	}
	if len(from) == 0 || len(to) == 0 {
		return 0, errors.New("sim: empty connectivity node set")
	}
	net := plan.Network()
	scratch := net.Graph().NewScratch()
	var batch failure.BatchScratch
	batch.Grow(plan)
	root := *xrand.New(seed)
	survived := 0
	if direct {
		var deadEdges graph.Bitset
		for t0 := 0; t0 < trials; t0 += failure.MaxBatch {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			n := trials - t0
			if n > failure.MaxBatch {
				n = failure.MaxBatch
			}
			plan.SampleBatch(&batch, &root, uint64(t0), n)
			for b := 0; b < n; b++ {
				deadEdges = net.DeadEdgeBitsInto(deadEdges, batch.Row(b))
				if scratch.AnyConnectedBits(deadEdges, from, to) {
					survived++
				}
			}
		}
	} else {
		cc := plan.Contraction()
		fromSupers := cc.SupersOf(nil, from)
		toSupers := cc.SupersOf(nil, to)
		for t0 := 0; t0 < trials; t0 += failure.MaxBatch {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			n := trials - t0
			if n > failure.MaxBatch {
				n = failure.MaxBatch
			}
			plan.SampleBatch(&batch, &root, uint64(t0), n)
			for b := 0; b < n; b++ {
				if scratch.AnyConnectedSupers(cc, batch.Row(b), fromSupers, toSupers) {
					survived++
				}
			}
		}
	}
	return float64(survived) / float64(trials), nil
}

// SweepPoint is one (probability, result) pair of a probability sweep.
type SweepPoint struct {
	P      float64
	Result *Result
}

// SweepUniform runs one simulation per probability in ps with a uniform
// model — the x-axis sweep of the paper's Figures 6 and 7. Each point uses
// a seed split from cfg.Seed by index, so points are independent, the
// whole sweep is reproducible, and the parallel execution below is
// byte-identical to running the points serially.
//
// The cfg.Workers budget (0 = GOMAXPROCS) is shared across the sweep:
// points fan out first, and any budget beyond the point count parallelises
// trials within each point, with the remainder spread over the first
// budget%points points. Each point worker owns an Arena, so the sweep's
// only allocations are its output and the per-worker state.
func SweepUniform(ctx context.Context, net *topology.Network, cfg Config, ps []float64) ([]SweepPoint, error) {
	return sweepUniform(ctx, net, cfg, ps, nil)
}

// SweepUniformArena is SweepUniform reusing a caller-owned arena across
// points and across calls. The points run serially on the calling
// goroutine (inner trial parallelism still follows the worker budget);
// callers parallelise across sweeps instead, holding one arena per worker.
// Results are byte-identical to SweepUniform's.
func SweepUniformArena(ctx context.Context, net *topology.Network, cfg Config, ps []float64, a *Arena) ([]SweepPoint, error) {
	return sweepUniform(ctx, net, cfg, ps, a)
}

func sweepUniform(ctx context.Context, net *topology.Network, cfg Config, ps []float64, ext *Arena) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(ps))
	if len(ps) == 0 {
		return out, ctx.Err()
	}
	if cfg.Trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid network: %w", err)
	}
	root := *xrand.New(cfg.Seed)
	budget := cfg.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	pointWorkers := budget
	if pointWorkers > len(ps) {
		pointWorkers = len(ps)
	}
	if ext != nil {
		pointWorkers = 1
	}
	inner, rem := budget/pointWorkers, budget%pointWorkers
	results := make([]Result, len(ps))
	backing := make([]failure.Outcome, len(ps)*cfg.Trials)
	var crossBacking []crosslayer.Score
	if cfg.CrossLayer != nil {
		crossBacking = make([]crosslayer.Score, len(ps)*cfg.Trials)
	}
	arenas := make([]*Arena, pointWorkers)
	if ext != nil {
		arenas[0] = ext
	}
	err := ForEachWorker(ctx, len(ps), pointWorkers, func(w, i int) error {
		a := arenas[w]
		if a == nil {
			a = NewArena()
			arenas[w] = a
		}
		c := cfg
		c.Model = a.uniformModel(ps[i])
		child := root.SplitAt(uint64(i))
		c.Seed = child.Uint64()
		c.Workers = inner
		if i < rem {
			c.Workers++
		}
		if c.Workers < 1 {
			c.Workers = 1
		}
		outcomes := backing[i*cfg.Trials : (i+1)*cfg.Trials : (i+1)*cfg.Trials]
		var cross []crosslayer.Score
		if crossBacking != nil {
			cross = crossBacking[i*cfg.Trials : (i+1)*cfg.Trials : (i+1)*cfg.Trials]
		}
		a.acquire()
		defer a.release()
		err := a.runInto(ctx, net, c, &results[i], outcomes, cross)
		if err != nil {
			return fmt.Errorf("sweep p=%g: %w", ps[i], err)
		}
		out[i] = SweepPoint{P: ps[i], Result: &results[i]}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultProbabilities is the x-axis of the paper's Figures 6-7:
// log-spaced from 0.001 to 1.
func DefaultProbabilities() []float64 {
	return []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
}

// DefaultSpacings are the paper's inter-repeater distances in km.
func DefaultSpacings() []float64 { return []float64{50, 100, 150} }
