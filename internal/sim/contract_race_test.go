package sim

import (
	"context"
	"testing"

	"gicnet/internal/failure"
	"gicnet/internal/graph"
	"gicnet/internal/xrand"
)

// TestContractionSharedAcrossWorkers pins the concurrency contract of the
// core contraction: one *graph.CoreContraction built by the plan is shared
// read-only by every ForEachWorker goroutine, while each worker owns its
// Scratch and dead bitset (the same slot-ownership discipline as the sweep
// arenas in foreach_test.go). Run under -race (the Makefile race target
// covers this package), the test proves the shared structure is never
// written after construction and that worker count cannot change a single
// trial verdict.
func TestContractionSharedAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	net := testNet()
	// At 3000 km spacing the short cables ab (2000 km) and cd (800 km)
	// carry no repeaters and are immortal; bc and ad stay at risk, so the
	// contraction has a real core and a real frontier.
	plan, err := failure.Compile(net, failure.Uniform{P: 0.5}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	cc := plan.Contraction()
	if cc.NumSupernodes() >= net.Graph().NumNodes() {
		t.Fatalf("contraction did not merge anything: %d supernodes of %d nodes", cc.NumSupernodes(), net.Graph().NumNodes())
	}

	const trials = 512
	from := []graph.NodeID{0} // a
	to := []graph.NodeID{3}   // d
	fromSupers := cc.SupersOf(nil, from)
	toSupers := cc.SupersOf(nil, to)

	// Serial reference pass: one worker, one scratch.
	verdict := func(s *graph.Scratch, dead graph.Bitset, ti int) (bool, int) {
		rng := xrand.New(7).SplitAt(uint64(ti))
		plan.SampleInto(dead, &rng)
		ok := s.AnyConnectedSupers(cc, dead, fromSupers, toSupers)
		comps := s.ComponentsCore(cc, dead).Sets()
		return ok, comps
	}
	wantOK := make([]bool, trials)
	wantComps := make([]int, trials)
	{
		s := net.Graph().NewScratch()
		dead := plan.NewDead()
		for ti := 0; ti < trials; ti++ {
			wantOK[ti], wantComps[ti] = verdict(s, dead, ti)
		}
	}

	for _, workers := range []int{1, 2, 4, 8} {
		// Per-worker state; the contraction itself is shared.
		scratches := make([]*graph.Scratch, workers)
		deads := make([]graph.Bitset, workers)
		for w := range scratches {
			scratches[w] = net.Graph().NewScratch()
			deads[w] = plan.NewDead()
		}
		gotOK := make([]bool, trials)
		gotComps := make([]int, trials)
		err := ForEachWorker(ctx, trials, workers, func(worker, ti int) error {
			// Every worker also re-requests the contraction, racing the
			// plan's cache lookup against concurrent readers.
			if plan.Contraction() != cc {
				t.Error("plan.Contraction() rebuilt while the core was unchanged")
			}
			gotOK[ti], gotComps[ti] = verdict(scratches[worker], deads[worker], ti)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for ti := 0; ti < trials; ti++ {
			if gotOK[ti] != wantOK[ti] || gotComps[ti] != wantComps[ti] {
				t.Fatalf("workers=%d trial %d: verdict (%v,%d), serial reference (%v,%d)",
					workers, ti, gotOK[ti], gotComps[ti], wantOK[ti], wantComps[ti])
			}
		}
	}
}
