package rare

import (
	"fmt"
	"math/bits"

	"gicnet/internal/xrand"
)

// SobolMaxDims is the number of dimensions the embedded direction-number
// table supports. Trials that consume more uniforms than this pad the
// remaining draws with a pseudo-random tail (see pointStream), which is
// the standard hybrid for variable-dimension integrands: the first draws
// of a trial decide the bulk of the variance, so they get the
// low-discrepancy treatment.
const SobolMaxDims = 32

// sobolSpec holds the primitive polynomial (degree s, interior coefficient
// bits a) and initial direction values m_1..m_s for dimensions 2..32 of
// the Joe-Kuo table. Dimension 1 is the van der Corput sequence and needs
// no entry. Every m_k is odd and below 2^k, which is what Sobol'
// construction requires of a valid digital sequence.
var sobolSpec = [SobolMaxDims - 1]struct {
	s uint
	a uint32
	m [7]uint32
}{
	{1, 0, [7]uint32{1}},
	{2, 1, [7]uint32{1, 3}},
	{3, 1, [7]uint32{1, 3, 1}},
	{3, 2, [7]uint32{1, 1, 1}},
	{4, 1, [7]uint32{1, 1, 3, 3}},
	{4, 4, [7]uint32{1, 3, 5, 13}},
	{5, 2, [7]uint32{1, 1, 5, 5, 17}},
	{5, 4, [7]uint32{1, 1, 5, 5, 5}},
	{5, 7, [7]uint32{1, 1, 7, 11, 19}},
	{5, 11, [7]uint32{1, 1, 5, 1, 1}},
	{5, 13, [7]uint32{1, 1, 1, 3, 11}},
	{5, 14, [7]uint32{1, 3, 5, 5, 31}},
	{6, 1, [7]uint32{1, 3, 3, 9, 7, 49}},
	{6, 13, [7]uint32{1, 1, 1, 15, 21, 21}},
	{6, 16, [7]uint32{1, 3, 1, 13, 27, 49}},
	{6, 19, [7]uint32{1, 1, 1, 15, 7, 5}},
	{6, 22, [7]uint32{1, 3, 1, 15, 13, 25}},
	{6, 25, [7]uint32{1, 1, 5, 5, 19, 61}},
	{7, 1, [7]uint32{1, 3, 7, 11, 23, 15, 103}},
	{7, 4, [7]uint32{1, 3, 7, 13, 13, 15, 69}},
	{7, 7, [7]uint32{1, 1, 3, 13, 7, 35, 63}},
	{7, 8, [7]uint32{1, 3, 5, 9, 1, 25, 53}},
	{7, 14, [7]uint32{1, 3, 1, 13, 9, 35, 107}},
	{7, 19, [7]uint32{1, 3, 1, 5, 27, 61, 31}},
	{7, 21, [7]uint32{1, 1, 5, 11, 19, 41, 61}},
	{7, 28, [7]uint32{1, 3, 5, 3, 3, 13, 69}},
	{7, 31, [7]uint32{1, 1, 7, 13, 1, 19, 1}},
	{7, 32, [7]uint32{1, 3, 7, 5, 13, 19, 59}},
	{7, 37, [7]uint32{1, 1, 3, 9, 25, 29, 41}},
	{7, 41, [7]uint32{1, 3, 5, 13, 23, 1, 55}},
	{7, 42, [7]uint32{1, 3, 7, 3, 13, 59, 17}},
}

// sobolDirs are the expanded 32-bit direction numbers, dimension-major;
// computed once at init from sobolSpec via the standard recurrence
//
//	v_k = v_{k-s} ^ (v_{k-s} >> s) ^ a_1 v_{k-1} ^ ... ^ a_{s-1} v_{k-s+1}.
var sobolDirs [SobolMaxDims][32]uint32

func init() {
	// Dimension 1: van der Corput, v_k = 2^(32-k).
	for k := 0; k < 32; k++ {
		sobolDirs[0][k] = 1 << (31 - uint(k))
	}
	for d := 1; d < SobolMaxDims; d++ {
		spec := &sobolSpec[d-1]
		v := &sobolDirs[d]
		for k := uint(0); k < spec.s; k++ {
			v[k] = spec.m[k] << (31 - k)
		}
		for k := spec.s; k < 32; k++ {
			prev := v[k-spec.s]
			x := prev ^ (prev >> spec.s)
			for j := uint(1); j < spec.s; j++ {
				if spec.a>>(spec.s-1-j)&1 != 0 {
					x ^= v[k-j]
				}
			}
			v[k] = x
		}
	}
}

// sobolRaw returns the unscrambled 32-bit integer coordinate of point
// index in dimension d: the XOR of the direction numbers selected by the
// set bits of the index.
//
//gicnet:pure
func sobolRaw(d int, index uint32) uint32 {
	v := &sobolDirs[d]
	var x uint32
	for k := 0; index != 0; k++ {
		if index&1 != 0 {
			x ^= v[k]
		}
		index >>= 1
	}
	return x
}

// owenScramble applies a hash-based Owen (nested uniform) scramble to one
// 32-bit coordinate. The hash operates in bit-reversed space where every
// operation (carry-propagating add, XOR with an even multiple of the
// input) only moves information from lower to higher bits — reversed back,
// each output digit depends on itself and its more significant digits
// only, which is exactly the structure of an Owen scramble. It therefore
// preserves every dyadic stratification property of the digital sequence
// while decorrelating the deterministic Sobol artefacts, and different
// seeds give statistically independent randomisations.
//
//gicnet:pure
func owenScramble(x, seed uint32) uint32 {
	x = bits.Reverse32(x)
	x += seed
	x ^= x * 0x6c50b47c
	x ^= x * 0xb82f1e52
	x ^= x * 0xc7afe638
	x ^= x * 0x8d22f6e6
	return bits.Reverse32(x)
}

// Sobol is an Owen-scrambled Sobol sequence over up to SobolMaxDims
// dimensions. The zero value is not useful; build one with NewSobol. A
// Sobol value is immutable and safe for concurrent Point calls.
type Sobol struct {
	dims  int
	seeds [SobolMaxDims]uint32
}

// NewSobol returns the scrambled sequence with per-dimension scramble
// seeds split from key, so the randomisation is a pure function of (key
// state, dimension): replay fingerprints stay deterministic however the
// points are consumed.
func NewSobol(dims int, key xrand.Source) (Sobol, error) {
	if dims < 1 || dims > SobolMaxDims {
		return Sobol{}, fmt.Errorf("rare: sobol dimensions %d outside [1,%d]", dims, SobolMaxDims)
	}
	s := Sobol{dims: dims}
	for d := 0; d < dims; d++ {
		child := key.SplitAt(uint64(d))
		s.seeds[d] = uint32(child.Uint64() >> 32)
	}
	return s, nil
}

// Dims returns the number of dimensions per point.
func (s *Sobol) Dims() int { return s.dims }

// Point writes the coordinates of point index into out[:Dims], each in
// [0,1). Indices may be visited in any order — the sequence is addressed,
// not streamed — which is what lets parallel trial blocks consume it
// deterministically.
func (s *Sobol) Point(index uint32, out []float64) {
	for d := 0; d < s.dims; d++ {
		out[d] = float64(owenScramble(sobolRaw(d, index), s.seeds[d])) * 0x1p-32
	}
}
