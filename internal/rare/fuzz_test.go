package rare

import (
	"testing"

	"gicnet/internal/xrand"
)

// FuzzSobol drives the scrambled sequence over random keys, dimension
// counts and block positions. Properties: coordinates stay in [0,1); no
// two points within an aligned 64-point block coincide (in any single
// dimension — the stratification guarantee is per-coordinate); and each
// coordinate's 64 dyadic bins are hit exactly once per block, whatever
// the scramble seed.
func FuzzSobol(f *testing.F) {
	f.Add(uint64(1), 1, uint32(0))
	f.Add(uint64(1859), 8, uint32(7))
	f.Add(uint64(0), 32, uint32(1<<20))
	f.Fuzz(func(t *testing.T, key uint64, dims int, block uint32) {
		if dims < 1 || dims > SobolMaxDims {
			t.Skip()
		}
		if block > (1<<26)-1 {
			block &= (1 << 26) - 1 // keep indices inside the 32-bit sequence
		}
		s, err := NewSobol(dims, *xrand.New(key))
		if err != nil {
			t.Fatalf("NewSobol: %v", err)
		}
		const size = 64
		pt := make([]float64, dims)
		hit := make([][]bool, dims)
		for d := range hit {
			hit[d] = make([]bool, size)
		}
		for i := uint32(0); i < size; i++ {
			s.Point(block*size+i, pt)
			for d := 0; d < dims; d++ {
				if !(pt[d] >= 0 && pt[d] < 1) {
					t.Fatalf("block %d point %d dim %d: coordinate %v outside [0,1)", block, i, d, pt[d])
				}
				bin := int(pt[d] * size)
				if hit[d][bin] {
					t.Fatalf("block %d dim %d: bin %d hit twice — scramble broke stratification", block, d, bin)
				}
				hit[d][bin] = true
			}
		}
	})
}
