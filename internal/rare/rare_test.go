package rare

import (
	"context"
	"fmt"
	"math"
	"testing"

	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/partition"
	"gicnet/internal/sim"
	"gicnet/internal/topology"
)

// testNet builds a small deterministic world: a ring of coastal nodes
// with chords, long enough cables to carry a few hundred repeaters. Small
// enough that the statistical tests run in milliseconds per thousand
// trials, rich enough to exercise both sampler bucket kinds.
func testNet() *topology.Network {
	const n = 12
	net := &topology.Network{Name: "rare-test"}
	for i := 0; i < n; i++ {
		net.Nodes = append(net.Nodes, topology.Node{
			Name:     fmt.Sprintf("n%d", i),
			Coord:    geo.Coord{Lat: float64(i*5 - 30), Lon: float64(i*25 - 150)},
			HasCoord: true,
		})
	}
	addCable := func(a, b int, km float64) {
		net.Cables = append(net.Cables, topology.Cable{
			Name:        fmt.Sprintf("c%d-%d", a, b),
			Segments:    []topology.Segment{{A: a, B: b, LengthKm: km}},
			KnownLength: true,
		})
	}
	for i := 0; i < n; i++ {
		addCable(i, (i+1)%n, 2000+float64(i)*300)
	}
	for i := 0; i < n; i += 2 {
		addCable(i, (i+5)%n, 6000+float64(i)*400)
	}
	return net
}

func testPlan(t *testing.T, p float64) *failure.Plan {
	t.Helper()
	plan, err := failure.Compile(testNet(), failure.Uniform{P: p}, 150)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestEstimatorNames pins the name scheme the fingerprints embed.
func TestEstimatorNames(t *testing.T) {
	for _, tc := range []struct {
		est  *Estimator
		want string
	}{
		{NewIS(0), "is"},
		{NewIS(4), "is"},
		{NewQMC(), "qmc"},
		{NewISQMC(0), "is-qmc"},
		{NewISQMC(3), "is-qmc"},
	} {
		if got := tc.est.EstimatorName(); got != tc.want {
			t.Fatalf("EstimatorName() = %q, want %q", got, tc.want)
		}
	}
}

// TestOptimalLambda checks the closed form against its defining
// first-order condition and the rare-regime asymptotics.
func TestOptimalLambda(t *testing.T) {
	plan := testPlan(t, 1e-5)
	mu := ExpectedDeaths(plan)
	if mu <= 0 {
		t.Fatalf("expected positive tiltable mass, got %v", mu)
	}
	lam := OptimalLambda(plan)
	obj := func(l float64) float64 { return math.Exp(mu*(l-2+1/l)) / l }
	for _, other := range []float64{lam * 0.9, lam * 1.1, 1, 2 * lam} {
		if obj(lam) > obj(other)+1e-12 {
			t.Fatalf("lambda*=%v: objective %v beaten by lambda=%v (%v)", lam, obj(lam), other, obj(other))
		}
	}
	if mu < 0.2 && math.Abs(lam*mu-1) > 0.2 {
		t.Fatalf("rare regime mu=%v: lambda*=%v should approximate 1/mu", mu, lam)
	}
}

// TestTargetLambda pins the count-targeted tilt: with Target set, the
// tilted distribution expects about Target deaths.
func TestTargetLambda(t *testing.T) {
	plan := testPlan(t, 1e-5)
	mu := ExpectedDeaths(plan)
	est := &Estimator{Target: 5}
	lam := est.ResolvedLambda(plan)
	if math.Abs(lam-5/mu) > 1e-9*lam {
		t.Fatalf("Target=5: lambda %v, want %v", lam, 5/mu)
	}
}

// tailProb is the benchmark/test statistic: the indicator of at least
// thresh cable deaths.
func tailProb(res *sim.Result, thresh int) float64 {
	return res.WeightedMean(func(o failure.Outcome) float64 {
		if o.CablesFailed >= thresh {
			return 1
		}
		return 0
	})
}

// TestUnbiasednessAgainstPlainMC is the headline invariant: at a moderate
// probability where plain Monte Carlo still resolves the tail event, the
// importance-sampled and QMC estimates agree with the plain estimate
// within overlapping bootstrap confidence intervals.
func TestUnbiasednessAgainstPlainMC(t *testing.T) {
	net := testNet()
	ps := []float64{3e-4}
	cis := map[string]struct {
		lo, hi float64
	}{}
	for _, est := range []*Estimator{nil, NewIS(0), NewQMC(), NewISQMC(0)} {
		name := "plain"
		if est != nil {
			name = est.EstimatorName()
		}
		cfg := TailConfig{SpacingKm: 150, Trials: 6000, Seed: 1859, Workers: 2, Estimator: est}
		pts, err := TailSweep(context.Background(), net, cfg, ps)
		if err != nil {
			t.Fatal(err)
		}
		pt := pts[0]
		if pt.TailProb <= 0 {
			t.Fatalf("%s: tail probability %v, want positive at moderate p", name, pt.TailProb)
		}
		cis[name] = struct{ lo, hi float64 }{pt.TailCI.Lo, pt.TailCI.Hi}
		t.Logf("%-7s tail=%.4e ci=[%.4e,%.4e] ess=%.0f", name, pt.TailProb, pt.TailCI.Lo, pt.TailCI.Hi, pt.ESS)
	}
	plain := cis["plain"]
	for name, ci := range cis {
		if ci.lo > plain.hi || ci.hi < plain.lo {
			t.Fatalf("%s CI [%v,%v] does not overlap plain CI [%v,%v] — biased estimator", name, ci.lo, ci.hi, plain.lo, plain.hi)
		}
	}
}

// TestWeightNormalization checks sum(w)/n = 1 within a few standard
// errors: the likelihood ratios are exact, so their mean is an unbiased
// estimate of 1 and drift flags a pricing bug.
func TestWeightNormalization(t *testing.T) {
	net := testNet()
	for _, est := range []*Estimator{NewIS(0), NewISQMC(0)} {
		cfg := sim.Config{SpacingKm: 150, Trials: 20000, Seed: 4242, Workers: 2,
			Model: failure.Uniform{P: 1e-4}, Estimator: est}
		res, err := sim.Run(context.Background(), net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum, sumSq := 0.0, 0.0
		for i := range res.Outcomes {
			w := res.Weight(i)
			sum += w
			sumSq += w * w
		}
		n := float64(len(res.Outcomes))
		mean := sum / n
		se := math.Sqrt((sumSq/n - mean*mean) / n)
		if math.Abs(mean-1) > 5*se+1e-12 {
			t.Fatalf("%s: mean weight %v +- %v, want 1", est.EstimatorName(), mean, se)
		}
		if ess := res.ESS(); ess <= 0 || ess > n {
			t.Fatalf("%s: ESS %v outside (0, %v]", est.EstimatorName(), ess, n)
		}
	}
}

// TestQMCWeightsExactlyOne: the untilted QMC estimator changes which
// uniforms drive the trials but not the distribution, so every log
// weight is exactly zero and the ESS is the trial count.
func TestQMCWeightsExactlyOne(t *testing.T) {
	net := testNet()
	cfg := sim.Config{SpacingKm: 150, Trials: 1000, Seed: 7, Workers: 1,
		Model: failure.Uniform{P: 1e-3}, Estimator: NewQMC()}
	res, err := sim.Run(context.Background(), net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimator != "qmc" {
		t.Fatalf("Estimator = %q, want qmc", res.Estimator)
	}
	for i, lw := range res.LogWeights {
		if lw != 0 {
			t.Fatalf("trial %d: qmc log weight %v, want exactly 0", i, lw)
		}
	}
	if ess := res.ESS(); ess != float64(cfg.Trials) {
		t.Fatalf("ESS = %v, want %v", ess, cfg.Trials)
	}
}

// TestEstimatorWorkerIndependence: estimator runs must stay worker-count
// independent, exactly like the plain path — the per-trial streams and
// Sobol indices are functions of the trial number alone.
func TestEstimatorWorkerIndependence(t *testing.T) {
	net := testNet()
	for _, est := range []*Estimator{NewIS(0), NewISQMC(0)} {
		var fps []uint64
		for _, workers := range []int{1, 3, 8} {
			cfg := sim.Config{SpacingKm: 150, Trials: 500, Seed: 99, Workers: workers,
				Model: failure.Uniform{P: 1e-3}, Estimator: est}
			res, err := sim.Run(context.Background(), net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fps = append(fps, res.Fingerprint())
		}
		if fps[0] != fps[1] || fps[1] != fps[2] {
			t.Fatalf("%s: fingerprints differ across worker counts: %x", est.EstimatorName(), fps)
		}
	}
}

// TestPlainPathUnchangedByEstimatorSupport: a nil-estimator run carries
// no weights and no estimator tag, so its fingerprint hashes exactly the
// bytes the pre-estimator engine hashed.
func TestPlainPathUnchangedByEstimatorSupport(t *testing.T) {
	net := testNet()
	cfg := sim.Config{SpacingKm: 150, Trials: 200, Seed: 3, Workers: 1, Model: failure.Uniform{P: 1e-3}}
	res, err := sim.Run(context.Background(), net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogWeights != nil || res.Estimator != "" {
		t.Fatalf("plain run carries estimator state: weights=%v estimator=%q", res.LogWeights != nil, res.Estimator)
	}
	if ess := res.ESS(); ess != float64(cfg.Trials) {
		t.Fatalf("plain ESS = %v, want trial count", ess)
	}
}

// TestVarianceReductionAtRareP is the qualitative half of the benchdiff
// gate, cheap enough for the unit suite: deep in the tail the weighted
// per-trial variance of the IS estimator must undercut plain Monte
// Carlo's by a wide margin (the benchmark gates the precise ratio).
func TestVarianceReductionAtRareP(t *testing.T) {
	net := testNet()
	ps := []float64{1e-6}
	plainCfg := TailConfig{SpacingKm: 150, Trials: 4000, Seed: 1859, Workers: 2}
	plain, err := TailSweep(context.Background(), net, plainCfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	isCfg := plainCfg
	isCfg.Estimator = NewISQMC(0)
	is, err := TailSweep(context.Background(), net, isCfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	// Plain MC cannot even see the event at this depth on this budget;
	// the estimator must resolve it with a non-degenerate interval.
	if is[0].TailProb <= 0 {
		t.Fatalf("is-qmc tail estimate %v, want positive", is[0].TailProb)
	}
	if is[0].TailCI.Width() <= 0 {
		t.Fatalf("is-qmc CI degenerate: %+v", is[0].TailCI)
	}
	if plain[0].TailProb > 0 && plain[0].TailCI.Width() < is[0].TailCI.Width() {
		t.Fatalf("plain CI %v narrower than is-qmc %v at p=1e-6 — variance reduction missing",
			plain[0].TailCI.Width(), is[0].TailCI.Width())
	}
	t.Logf("plain tail=%v, is-qmc tail=%v ci=[%v,%v] ess=%.0f",
		plain[0].TailProb, is[0].TailProb, is[0].TailCI.Lo, is[0].TailCI.Hi, is[0].ESS)
}

// TestMeanFragmentationEstMatchesPlain: the weighted fragmentation loop
// with a unit-weight estimator (lambda = 1) must reproduce the plain
// MeanFragmentation aggregate exactly — same draws, weights all one.
func TestMeanFragmentationEstMatchesPlain(t *testing.T) {
	net := testNet()
	m := failure.Uniform{P: 1e-3}
	want, err := partition.MeanFragmentation(net, m, 150, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	got, ess, err := partition.MeanFragmentationEst(net, m, 150, 300, 11, NewIS(1))
	if err != nil {
		t.Fatal(err)
	}
	if ess != 300 {
		t.Fatalf("lambda=1 ESS = %v, want 300", ess)
	}
	if got.Components != want.Components || got.IsolatedNodes != want.IsolatedNodes {
		t.Fatalf("lambda=1 fragmentation %+v differs from plain %+v", got, want)
	}
	//gicnet:allow floatcmp identical draws with unit weights must aggregate identically
	if got.LargestFrac != want.LargestFrac {
		t.Fatalf("lambda=1 LargestFrac %v != plain %v", got.LargestFrac, want.LargestFrac)
	}
}
