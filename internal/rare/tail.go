package rare

import (
	"context"

	"gicnet/internal/failure"
	"gicnet/internal/sim"
	"gicnet/internal/stats"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// bootSalt splits the bootstrap resampling streams off a sweep's seed,
// away from the simulation's own trial streams.
const bootSalt = 0x626f6f7473747261 // "bootstra"

// TailConfig configures a rare-event probability sweep — the Figure 6
// axis continued past where plain Monte Carlo stops resolving anything.
type TailConfig struct {
	// SpacingKm is the repeater spacing, as in sim.Config.
	SpacingKm float64
	// Trials per sweep point.
	Trials int
	// Seed drives both the simulation and the bootstrap resampling.
	Seed uint64
	// Workers is the simulation worker budget (0 = GOMAXPROCS).
	Workers int
	// Level is the CI coverage; 0 means 0.95.
	Level float64
	// Resamples is the bootstrap replicate count; 0 means 200.
	Resamples int
	// Threshold defines the tail event: a trial counts when at least
	// this many cables die. 0 means 2 — "more than an isolated loss",
	// the smallest event that is genuinely rare at small p.
	Threshold int
	// Estimator draws the trials; nil runs plain Monte Carlo, which is
	// the honest baseline a tail sweep should be compared against.
	Estimator *Estimator
}

// TailPoint is one probability on the tail sweep with its weighted
// estimates and diagnostics.
type TailPoint struct {
	// P is the per-repeater failure probability of the uniform model.
	P float64
	// CableMean and NodeMean are the weighted means of the per-trial
	// failed-cable and unreachable-node fractions (estimates of the
	// plan's own expectations, whatever distribution drew the trials).
	CableMean float64
	NodeMean  float64
	// TailProb estimates P(CablesFailed >= Threshold).
	TailProb float64
	// TailCI is the bootstrap interval around TailProb.
	TailCI stats.CI
	// ESS is Kish's effective sample size of the trial weights.
	ESS float64
	// MeanWeight is the average likelihood ratio. Its expectation is
	// exactly 1; drift from 1 beyond a few standard errors flags a
	// support or pricing bug in the tilt.
	MeanWeight float64
	// Estimator names the drawing estimator ("" = plain Monte Carlo).
	Estimator string
}

// TailSweep runs one simulation per probability in ps on the uniform
// model and summarises each into a TailPoint. Points derive independent
// seeds from cfg.Seed (via sim.SweepUniform), so the sweep is reproducible
// and worker-count independent; the bootstrap streams are split from the
// same seed under a distinct salt.
func TailSweep(ctx context.Context, net *topology.Network, cfg TailConfig, ps []float64) ([]TailPoint, error) {
	level := cfg.Level
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	resamples := cfg.Resamples
	if resamples <= 0 {
		resamples = 200
	}
	thresh := cfg.Threshold
	if thresh <= 0 {
		thresh = 2
	}
	simCfg := sim.Config{
		SpacingKm: cfg.SpacingKm,
		Trials:    cfg.Trials,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Model:     failure.Uniform{P: 0},
	}
	if cfg.Estimator != nil {
		// Assigned under a nil guard: a typed nil in the interface field
		// would read as "estimator present" to the trial loop.
		simCfg.Estimator = cfg.Estimator
	}
	pts, err := sim.SweepUniform(ctx, net, simCfg, ps)
	if err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	out := make([]TailPoint, len(pts))
	for k, pt := range pts {
		res := pt.Result
		n := len(res.Outcomes)
		vals := make([]float64, n)
		ws := make([]float64, n)
		sumW := 0.0
		for i, o := range res.Outcomes {
			if o.CablesFailed >= thresh {
				vals[i] = 1
			}
			ws[i] = res.Weight(i)
			sumW += ws[i]
		}
		rng := root.SplitAt(bootSalt ^ uint64(k))
		ci, err := stats.WeightedBootstrapCI(vals, ws, level, resamples, &rng)
		if err != nil {
			return nil, err
		}
		out[k] = TailPoint{
			P:          pt.P,
			CableMean:  res.WeightedMean(func(o failure.Outcome) float64 { return o.CableFrac }),
			NodeMean:   res.WeightedMean(func(o failure.Outcome) float64 { return o.NodeFrac }),
			TailProb:   res.WeightedMean(func(o failure.Outcome) float64 { return b2f(o.CablesFailed >= thresh) }),
			TailCI:     ci,
			ESS:        res.ESS(),
			MeanWeight: sumW / float64(n),
			Estimator:  res.Estimator,
		}
	}
	return out, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
