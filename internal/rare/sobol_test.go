package rare

import (
	"testing"

	"gicnet/internal/xrand"
)

// TestNewSobolValidatesDims pins the dimension contract.
func TestNewSobolValidatesDims(t *testing.T) {
	key := *xrand.New(1)
	for _, dims := range []int{0, -1, SobolMaxDims + 1} {
		if _, err := NewSobol(dims, key); err == nil {
			t.Fatalf("dims=%d: expected error", dims)
		}
	}
	if _, err := NewSobol(SobolMaxDims, key); err != nil {
		t.Fatalf("dims=%d: %v", SobolMaxDims, err)
	}
}

// TestSobolRangeAndDeterminism: every coordinate lies in [0,1), the same
// key reproduces the same points, and different keys scramble differently.
func TestSobolRangeAndDeterminism(t *testing.T) {
	a1, err := NewSobol(8, *xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := NewSobol(8, *xrand.New(5))
	b, _ := NewSobol(8, *xrand.New(6))
	p1 := make([]float64, 8)
	p2 := make([]float64, 8)
	pb := make([]float64, 8)
	differs := false
	for idx := uint32(0); idx < 512; idx++ {
		a1.Point(idx, p1)
		a2.Point(idx, p2)
		b.Point(idx, pb)
		for d := 0; d < 8; d++ {
			if !(p1[d] >= 0 && p1[d] < 1) {
				t.Fatalf("point %d dim %d: coordinate %v outside [0,1)", idx, d, p1[d])
			}
			//gicnet:allow floatcmp determinism means bit-identical replay
			if p1[d] != p2[d] {
				t.Fatalf("point %d dim %d: same key gave %v and %v", idx, d, p1[d], p2[d])
			}
			//gicnet:allow floatcmp
			if p1[d] != pb[d] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different scramble keys produced identical sequences")
	}
}

// TestSobolStratification pins the dyadic-net property the Owen scramble
// must preserve: in every dimension, every aligned block of 2^m
// consecutive indices puts exactly one point in each of the 2^m dyadic
// bins of [0,1). This is what makes the sequence a variance reducer — and
// it is exactly the property a buggy scramble (any hash that lets a low
// bit influence a high bit) would destroy.
func TestSobolStratification(t *testing.T) {
	s, err := NewSobol(SobolMaxDims, *xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]float64, SobolMaxDims)
	for _, m := range []uint{2, 4, 6} {
		size := uint32(1) << m
		for block := uint32(0); block < 4; block++ {
			var hit [SobolMaxDims][]bool
			for d := range hit {
				hit[d] = make([]bool, size)
			}
			for i := uint32(0); i < size; i++ {
				s.Point(block*size+i, pt)
				for d := 0; d < SobolMaxDims; d++ {
					bin := int(pt[d] * float64(size))
					if hit[d][bin] {
						t.Fatalf("m=%d block=%d dim=%d: bin %d hit twice", m, block, d, bin)
					}
					hit[d][bin] = true
				}
			}
		}
	}
}

// TestSobolBeatsPseudoRandomDiscrepancy is the low-discrepancy property
// test: over anchored boxes, the scrambled Sobol prefix deviates less
// from uniform volume than a pseudo-random sample of the same size, for
// every dimension count up to 8. The anchors and both samples are fixed
// by seeds, so the comparison is deterministic.
func TestSobolBeatsPseudoRandomDiscrepancy(t *testing.T) {
	const n = 2048
	const anchors = 200
	for _, dims := range []int{2, 4, 8} {
		s, err := NewSobol(dims, *xrand.New(17))
		if err != nil {
			t.Fatal(err)
		}
		qmc := make([][]float64, n)
		prng := make([][]float64, n)
		rng := xrand.New(18)
		for i := 0; i < n; i++ {
			qmc[i] = make([]float64, dims)
			s.Point(uint32(i), qmc[i])
			prng[i] = make([]float64, dims)
			for d := 0; d < dims; d++ {
				prng[i][d] = rng.Float64()
			}
		}
		arng := xrand.New(19)
		corner := make([]float64, dims)
		dQMC, dPRNG := 0.0, 0.0
		for a := 0; a < anchors; a++ {
			vol := 1.0
			for d := 0; d < dims; d++ {
				corner[d] = arng.Float64()
				vol *= corner[d]
			}
			if dev := boxDeviation(qmc, corner, vol); dev > dQMC {
				dQMC = dev
			}
			if dev := boxDeviation(prng, corner, vol); dev > dPRNG {
				dPRNG = dev
			}
		}
		if dQMC >= dPRNG {
			t.Fatalf("dims=%d: sobol discrepancy proxy %v not below pseudo-random %v", dims, dQMC, dPRNG)
		}
		t.Logf("dims=%d: sobol %.5f vs prng %.5f", dims, dQMC, dPRNG)
	}
}

// boxDeviation is | empirical mass of [0,corner) - its volume |.
func boxDeviation(pts [][]float64, corner []float64, vol float64) float64 {
	in := 0
	for _, p := range pts {
		inside := true
		for d, c := range corner {
			if p[d] >= c {
				inside = false
				break
			}
		}
		if inside {
			in++
		}
	}
	dev := float64(in)/float64(len(pts)) - vol
	if dev < 0 {
		dev = -dev
	}
	return dev
}
