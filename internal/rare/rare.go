// Package rare implements rare-event estimators for the storm trial loop:
// importance sampling from an odds-tilted cable-death distribution
// (internal/failure.TiltedSampler) and randomised quasi-Monte Carlo driven
// by an Owen-scrambled Sobol sequence, separately or combined. An
// Estimator plugs into sim.Config.Estimator, so the whole simulation stack
// — sweeps, arenas, fragmentation — can push the uniform-probability axis
// of the paper's Figure 6 down to p = 1e-6, where plain Monte Carlo would
// need billions of trials to see a single interesting realisation.
package rare

import (
	"fmt"
	"math"
	"sync"

	"gicnet/internal/failure"
	"gicnet/internal/xrand"
)

// sobolKeySalt derives the scramble key stream from a run's root source.
// It is an arbitrary constant far outside any realistic trial index, so
// the key stream never collides with a per-trial stream split from the
// same root.
const sobolKeySalt = 0x536f626f6c6b6579 // "Sobolkey"

// Estimator draws trial blocks from a tilted and/or quasi-random version
// of a plan's death distribution and prices every trial with its log
// likelihood ratio. It implements sim.Estimator. The zero value (Lambda 0
// meaning automatic, QMC false) is a ready-to-use importance sampler; an
// Estimator is safe for concurrent SampleBlock calls from sweep workers.
type Estimator struct {
	// Lambda is the odds-tilt factor applied to every cable's death
	// probability. 1 leaves the distribution untouched (useful for pure
	// QMC); 0 or negative selects OptimalLambda for each plan the
	// estimator meets. Values must otherwise be positive and finite.
	Lambda float64
	// QMC, when set, drives each trial's uniform draws from an
	// Owen-scrambled Sobol point (one point per trial, indexed by the
	// trial number) instead of the trial's pseudo-random stream. Draws
	// beyond the sequence's dimension fall back to exactly the
	// pseudo-random stream the plain path would use.
	QMC bool
	// Target, when positive and Lambda is automatic, aims the tilt at a
	// death count instead of the single-death optimum: lambda is chosen
	// so the tilted distribution expects about Target cable deaths per
	// trial. Use it when the statistic of interest is a deep count tail
	// (P(deaths >= T)) rather than the leading rare-event order.
	Target float64

	mu    sync.Mutex
	cache map[*failure.Plan]*compiled
}

// NewIS returns an importance-sampling estimator. lambda <= 0 selects the
// variance-optimal tilt per plan.
func NewIS(lambda float64) *Estimator { return &Estimator{Lambda: lambda} }

// NewQMC returns a pure quasi-Monte Carlo estimator: untilted draws
// (every weight is exactly 1) from scrambled Sobol points.
func NewQMC() *Estimator { return &Estimator{Lambda: 1, QMC: true} }

// NewISQMC returns the combined estimator: tilted draws from scrambled
// Sobol points. lambda <= 0 selects the variance-optimal tilt per plan.
func NewISQMC(lambda float64) *Estimator { return &Estimator{Lambda: lambda, QMC: true} }

// EstimatorName implements sim.Estimator. The name is a pure function of
// the configuration so replay fingerprints commute with reconstruction.
func (e *Estimator) EstimatorName() string {
	//gicnet:allow floatcmp lambda exactly 1 is the documented "no tilt" sentinel
	tilted := e.Lambda <= 0 || e.Lambda != 1
	switch {
	case tilted && e.QMC:
		return "is-qmc"
	case e.QMC:
		return "qmc"
	default:
		return "is"
	}
}

// compiled is the per-plan state: the tilted sampler compiled for one
// probability vector, plus the Sobol dimension budget for QMC draws.
type compiled struct {
	probs []float64 // the exact vector the tilt was compiled for
	tilt  *failure.TiltedSampler
	dims  int
}

// compiledFor returns the cached tilted sampler when it still matches the
// plan's probability vector bit for bit, recompiling otherwise. The cache
// is keyed by plan identity so concurrent sweep points (distinct plans,
// one shared estimator) each keep their own entry, and the bit-identical
// probability comparison matters because arenas recycle plan storage
// across sweep points: the pointer stays, the probabilities change.
func (e *Estimator) compiledFor(plan *failure.Plan) *compiled {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c := e.cache[plan]; c != nil && sameProbs(c.probs, plan) {
		return c
	}
	lambda := e.Lambda
	if lambda <= 0 {
		if mu := ExpectedDeaths(plan); e.Target > 0 && mu > 0 {
			lambda = e.Target / mu
			if lambda < 1 {
				lambda = 1
			}
		} else {
			lambda = OptimalLambda(plan)
		}
	}
	tilt, err := failure.NewTiltedSampler(plan, lambda)
	if err != nil {
		panic(fmt.Sprintf("rare: invalid tilt configuration: %v", err))
	}
	dims := tilt.Draws()
	if dims > SobolMaxDims {
		dims = SobolMaxDims
	}
	if dims < 1 {
		dims = 1
	}
	c := &compiled{probs: plan.DeathProbs(), tilt: tilt, dims: dims}
	if e.cache == nil {
		e.cache = make(map[*failure.Plan]*compiled)
	}
	e.cache[plan] = c
	return c
}

// sameProbs reports whether the plan's death probabilities are bit for
// bit the vector a tilt was compiled from.
func sameProbs(probs []float64, plan *failure.Plan) bool {
	if plan.NumCables() != len(probs) {
		return false
	}
	for ci, p := range probs {
		if math.Float64bits(p) != math.Float64bits(plan.DeathProb(ci)) {
			return false
		}
	}
	return true
}

// ResolvedLambda returns the tilt factor the estimator uses for plan —
// the configured Lambda, or the variance-optimal choice when automatic.
func (e *Estimator) ResolvedLambda(plan *failure.Plan) float64 {
	return e.compiledFor(plan).tilt.Lambda()
}

// SampleBlock implements sim.Estimator: trials t0..t0+n-1 into the
// scratch rows, log likelihood ratios into logw[:n]. Trial t0+b draws
// from the tilted program; without QMC its uniforms come from
// root.SplitAt(t0+b) — the same per-trial stream as the plain path — and
// with QMC the first draws come from Sobol point number t0+b (scramble
// keys split from root at sobolKeySalt) with the per-trial stream serving
// any overflow draws. Either way the realisation is a pure function of
// (root, trial index), so results are independent of worker count and
// block boundaries.
func (e *Estimator) SampleBlock(plan *failure.Plan, s *failure.BatchScratch, root *xrand.Source, t0 uint64, n int, logw []float64) {
	c := e.compiledFor(plan)
	if !e.QMC {
		c.tilt.SampleBatch(s, root, t0, n, logw)
		return
	}
	key := root.SplitAt(sobolKeySalt)
	sob, err := NewSobol(c.dims, key)
	if err != nil {
		panic(fmt.Sprintf("rare: sobol construction: %v", err))
	}
	ps := pointStream{prefix: make([]float64, c.dims)}
	for b := 0; b < n; b++ {
		trial := t0 + uint64(b)
		sob.Point(uint32(trial), ps.prefix)
		ps.i = 0
		ps.tail = root.SplitAt(trial)
		logw[b] = c.tilt.SampleIntoU(s.Row(b), &ps)
	}
}

// pointStream serves one trial's uniforms: the low-discrepancy Sobol
// coordinates first, then the trial's pseudo-random stream for however
// many more draws the sampling program wants. It implements
// failure.Uniforms.
type pointStream struct {
	prefix []float64
	i      int
	tail   xrand.Source
}

func (ps *pointStream) Float64() float64 {
	if ps.i < len(ps.prefix) {
		v := ps.prefix[ps.i]
		ps.i++
		return v
	}
	return ps.tail.Float64()
}

// ExpectedDeaths returns mu, the expected number of cable deaths among
// cables that can both die and survive (0 < p < 1) — the tiltable mass
// that OptimalLambda balances against.
func ExpectedDeaths(plan *failure.Plan) float64 {
	mu := 0.0
	for ci := 0; ci < plan.NumCables(); ci++ {
		if p := plan.DeathProb(ci); p > 0 && p < 1 {
			mu += p
		}
	}
	return mu
}

// OptimalLambda returns the odds-tilt factor minimising the variance
// proxy exp(mu*(lambda - 2 + 1/lambda))/lambda — the second moment of
// the weighted single-death indicator under a small-p Poisson
// approximation of the death process. Setting the derivative to zero
// gives lambda* = (1 + sqrt(1 + 4 mu^2)) / (2 mu), which behaves like
// 1/mu for rare regimes and eases to 1 as mu grows past the point where
// tilting can help. Plans with no tiltable mass get 1 (no tilt).
func OptimalLambda(plan *failure.Plan) float64 {
	mu := ExpectedDeaths(plan)
	if !(mu > 0) {
		return 1
	}
	lam := (1 + math.Sqrt(1+4*mu*mu)) / (2 * mu)
	if lam < 1 {
		lam = 1
	}
	return lam
}
