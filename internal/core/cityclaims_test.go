package core

import (
	"context"
	"testing"

	"gicnet/internal/failure"
)

// The paper's §4.3.4 walks through city- and state-level outcomes. These
// tests assert the directional versions of those claims on the synthetic
// world.

func TestHawaiiKeepsUSAndAsiaUnderS1(t *testing.T) {
	// "While Hawaii loses its connectivity to Australia, it remains
	// connected to the continental US and Asia even under high failures."
	a := analyzer(t)
	ctx := context.Background()
	const trials = 200
	s1 := failure.S1()

	toUS, err := a.PairConnectivity(ctx, s1, 150, trials, 21, "city:honolulu", "city:los-angeles")
	if err != nil {
		t.Fatal(err)
	}
	toAsia, err := a.PairConnectivity(ctx, s1, 150, trials, 21, "city:honolulu", "region:asia")
	if err != nil {
		t.Fatal(err)
	}
	if toUS.SurvivalProb < 0.5 {
		t.Errorf("Hawaii-continental US survival = %v, want majority", toUS.SurvivalProb)
	}
	if toAsia.SurvivalProb < 0.5 {
		t.Errorf("Hawaii-Asia survival = %v, want majority", toAsia.SurvivalProb)
	}
}

func TestAlaskaBCIsTheMostSurvivableLink(t *testing.T) {
	// "Alaska... loses all its long-distance connectivity except its link
	// to British Columbia": the Juneau-Vancouver cable must be Alaska's
	// most survivable system under S1.
	a := analyzer(t)
	rep, err := a.CountryAnalysis(context.Background(), failure.S1(), 150, 10, 22, "city:juneau", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The claim concerns long-distance systems: filter out short local
	// loops (repeater-free cables survive trivially). Cables are sorted
	// most-endangered first, so the last long-distance entry is the most
	// survivable.
	var longDistance []CableFate
	for _, c := range rep.Cables {
		if c.LengthKm >= 1000 {
			longDistance = append(longDistance, c)
		}
	}
	if len(longDistance) < 2 {
		t.Skip("juneau has too few long-distance cables to rank")
	}
	best := longDistance[len(longDistance)-1]
	if best.Name != "alaska-bc" {
		t.Errorf("Alaska's most survivable long-distance cable = %q, want alaska-bc", best.Name)
	}
}

func TestOregonWorseThanCaliforniaUnderS2(t *testing.T) {
	// "on the West coast, while most cables connected to Oregon fail,
	// connectivity from California to Hawaii, Japan... are unaffected"
	// under low failures: Oregon's mean cable death probability must
	// exceed Southern California's under S2.
	a := analyzer(t)
	ctx := context.Background()
	s2 := failure.S2()
	or, err := a.CountryAnalysis(ctx, s2, 150, 10, 23, "city:nedonna-beach-or", nil)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.CountryAnalysis(ctx, s2, 150, 10, 23, "city:los-angeles", nil)
	if err != nil {
		t.Fatal(err)
	}
	meanDeath := func(rep *CountryReport) float64 {
		if len(rep.Cables) == 0 {
			return 0
		}
		sum := 0.0
		for _, c := range rep.Cables {
			sum += c.DeathProb
		}
		return sum / float64(len(rep.Cables))
	}
	if meanDeath(or) <= meanDeath(ca) {
		t.Errorf("Oregon mean cable death %v should exceed LA %v under S2",
			meanDeath(or), meanDeath(ca))
	}
}

func TestFloridaSouthboundSurvivesS2(t *testing.T) {
	// "Connections from Florida to Brazil, the Bahamas, etc. are not
	// affected under the low failure scenario."
	a := analyzer(t)
	ctx := context.Background()
	conn, err := a.PairConnectivity(ctx, failure.S2(), 150, 200, 24, "city:boca-raton", "br")
	if err != nil {
		t.Fatal(err)
	}
	if conn.SurvivalProb < 0.9 {
		t.Errorf("Florida-Brazil survival under S2 = %v, want ~1", conn.SurvivalProb)
	}
	bs, err := a.PairConnectivity(ctx, failure.S2(), 150, 200, 24, "city:miami", "bs")
	if err != nil {
		t.Fatal(err)
	}
	if bs.SurvivalProb < 0.9 {
		t.Errorf("Miami-Bahamas survival under S2 = %v, want ~1", bs.SurvivalProb)
	}
}

func TestShortLocalCablesSurviveEverywhere(t *testing.T) {
	// "Across both high- and low-latitude locations on all continents,
	// such [short] cables are unaffected even under high repeater failure
	// rates" — repeater-free cables never die under any model.
	net := sharedWorld(t).Submarine
	for ci := range net.Cables {
		if net.Cables[ci].RepeaterCount(150) != 0 {
			continue
		}
		p, err := failure.CableDeathProb(net, failure.S1(), 150, ci)
		if err != nil {
			t.Fatal(err)
		}
		if p != 0 {
			t.Fatalf("repeater-free cable %q has death probability %v", net.Cables[ci].Name, p)
		}
	}
}

func TestNewZealandKeepsAustraliaOnly(t *testing.T) {
	// "New Zealand loses all its long-distance connectivity except to
	// Australia": NZ-AU survival must far exceed NZ-US under S1.
	a := analyzer(t)
	ctx := context.Background()
	const trials = 200
	au, err := a.PairConnectivity(ctx, failure.S1(), 150, trials, 25, "nz", "au")
	if err != nil {
		t.Fatal(err)
	}
	us, err := a.PairConnectivity(ctx, failure.S1(), 150, trials, 25, "nz", "us")
	if err != nil {
		t.Fatal(err)
	}
	if au.SurvivalProb-us.SurvivalProb < 0.3 {
		t.Errorf("NZ-AU (%v) should far exceed NZ-US (%v) under S1",
			au.SurvivalProb, us.SurvivalProb)
	}
}
