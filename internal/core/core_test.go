package core

import (
	"context"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
)

// sharedWorld caches the default world for this package's tests.
func sharedWorld(t *testing.T) *dataset.World {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func analyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(sharedWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAnalyzerNilWorld(t *testing.T) {
	if _, err := NewAnalyzer(nil); err == nil {
		t.Error("want error for nil world")
	}
}

func TestResolveTargets(t *testing.T) {
	net := sharedWorld(t).Submarine
	tests := []struct {
		target  Target
		wantErr bool
	}{
		{"us", false},
		{"sg", false},
		{"region:europe", false},
		{"region:asia", false},
		{"city:shanghai", false},
		{"zz", true},
		{"region:atlantis", true},
		{"city:gotham", true},
	}
	for _, tt := range tests {
		nodes, err := resolve(net, tt.target)
		if (err != nil) != tt.wantErr {
			t.Errorf("resolve(%q) err = %v, wantErr %v", tt.target, err, tt.wantErr)
		}
		if !tt.wantErr && len(nodes) == 0 {
			t.Errorf("resolve(%q) returned no nodes without error", tt.target)
		}
	}
}

func TestPairConnectivityBounds(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()
	c, err := a.PairConnectivity(ctx, failure.Uniform{P: 0}, 150, 20, 1, "us", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	if c.SurvivalProb != 1 {
		t.Errorf("no failures: survival = %v, want 1", c.SurvivalProb)
	}
	c, err = a.PairConnectivity(ctx, failure.Uniform{P: 1}, 150, 20, 1, "us", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	if c.SurvivalProb != 0 {
		t.Errorf("total failure: survival = %v, want 0", c.SurvivalProb)
	}
}

func TestPairConnectivityValidation(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()
	if _, err := a.PairConnectivity(ctx, failure.S1(), 150, 0, 1, "us", "gb"); err == nil {
		t.Error("want trials error")
	}
	if _, err := a.PairConnectivity(ctx, failure.S1(), 150, 5, 1, "zz", "gb"); err == nil {
		t.Error("want target error")
	}
	if _, err := a.PairConnectivity(ctx, failure.S1(), 150, 5, 1, "us", "zz"); err == nil {
		t.Error("want target error")
	}
}

func TestPaperDirectionalClaims(t *testing.T) {
	// The headline §4.3.4 directions, tested on Monte Carlo estimates with
	// enough trials to be stable.
	a := analyzer(t)
	ctx := context.Background()
	const trials = 200
	s1 := failure.S1()
	s2 := failure.S2()

	usEUs1, err := a.PairConnectivity(ctx, s1, 150, trials, 2, "us", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	usEUs2, err := a.PairConnectivity(ctx, s2, 150, trials, 2, "us", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	if usEUs1.SurvivalProb > usEUs2.SurvivalProb {
		t.Errorf("US-Europe: S1 survival %v should not exceed S2 %v",
			usEUs1.SurvivalProb, usEUs2.SurvivalProb)
	}

	// GB-US transatlantic is devastated under S1; GB-Europe survives.
	gbUS, err := a.PairConnectivity(ctx, s1, 150, trials, 3, "gb", "us")
	if err != nil {
		t.Fatal(err)
	}
	gbEU, err := a.PairConnectivity(ctx, s1, 150, trials, 3, "gb", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	if gbUS.SurvivalProb > 0.3 {
		t.Errorf("GB-US survival under S1 = %v, want near 0", gbUS.SurvivalProb)
	}
	if gbEU.SurvivalProb < 0.9 {
		t.Errorf("GB-Europe survival under S1 = %v, want near 1", gbEU.SurvivalProb)
	}

	// Singapore keeps its neighbourhood even under S1.
	for _, partner := range []Target{"in", "id", "au"} {
		c, err := a.PairConnectivity(ctx, s1, 150, trials, 4, "sg", partner)
		if err != nil {
			t.Fatal(err)
		}
		if c.SurvivalProb < 0.7 {
			t.Errorf("SG-%s survival under S1 = %v, want high", partner, c.SurvivalProb)
		}
	}
}

func TestDirectSurvivalBrazilVsUS(t *testing.T) {
	// §4.3.4: Brazil keeps its direct link to Europe (EllaLink, 6200 km)
	// more often than the US keeps Florida-Portugal (9833 km).
	a := analyzer(t)
	s1 := failure.S1()
	br, err := a.DirectSurvival(s1, 150, "br", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	us, err := a.DirectSurvival(s1, 150, "us", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Links) == 0 {
		t.Fatal("no direct Brazil-Europe cables; ellalink missing")
	}
	if len(us.Links) == 0 {
		t.Fatal("no direct US-Europe cables")
	}
	// Compare the most survivable single link each side has.
	if br.Links[0].DeathProb >= us.Links[0].DeathProb {
		t.Errorf("best Brazil-Europe link death %v should be below best US-Europe link death %v",
			br.Links[0].DeathProb, us.Links[0].DeathProb)
	}
}

func TestDirectSurvivalTransatlanticDies(t *testing.T) {
	// The north-Atlantic trunks between the US northeast and northern
	// Europe all die with near certainty under S1 (§4.3.4 US).
	a := analyzer(t)
	ds, err := a.DirectSurvival(failure.S1(), 150, "us", "gb")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Links) == 0 {
		t.Fatal("no direct US-GB cables")
	}
	for _, l := range ds.Links {
		if l.DeathProb < 0.9 {
			t.Errorf("US-GB cable %q death prob %v, want ~1 under S1", l.Name, l.DeathProb)
		}
	}
	if ds.AllDeadProb < 0.8 {
		t.Errorf("P(all US-GB cables die) = %v, want high", ds.AllDeadProb)
	}
}

func TestDirectSurvivalNoDirectLink(t *testing.T) {
	a := analyzer(t)
	// New Zealand has no direct cable to Brazil.
	ds, err := a.DirectSurvival(failure.S1(), 150, "nz", "br")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Links) != 0 || ds.AllDeadProb != 1 {
		t.Errorf("unexpected direct NZ-BR links: %+v", ds)
	}
}

func TestCountryAnalysis(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()
	rep, err := a.CountryAnalysis(ctx, failure.S1(), 150, 50, 5, "sg", []Target{"in"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cables) == 0 {
		t.Fatal("no cables touch singapore")
	}
	// cables sorted most-endangered first
	for i := 1; i < len(rep.Cables); i++ {
		if rep.Cables[i].DeathProb > rep.Cables[i-1].DeathProb {
			t.Error("cables not sorted by death probability")
			break
		}
	}
	if rep.ExpectedSurvivors <= 0 || rep.ExpectedSurvivors > float64(len(rep.Cables)) {
		t.Errorf("expected survivors = %v of %d", rep.ExpectedSurvivors, len(rep.Cables))
	}
	if len(rep.Partners) != 1 || rep.Partners[0].To != "in" {
		t.Errorf("partners = %+v", rep.Partners)
	}
	surv := rep.SurvivingCables()
	for i := 1; i < len(surv); i++ {
		if surv[i].DeathProb < surv[i-1].DeathProb {
			t.Error("survivors not sorted most-robust first")
			break
		}
	}
	for _, c := range surv {
		if c.DeathProb >= 0.5 {
			t.Errorf("surviving cable %q has death prob %v", c.Name, c.DeathProb)
		}
	}
}

func TestCountryAnalysisBadTarget(t *testing.T) {
	a := analyzer(t)
	if _, err := a.CountryAnalysis(context.Background(), failure.S1(), 150, 5, 1, "zz", nil); err == nil {
		t.Error("want error for unknown target")
	}
}

func TestCriticalCablesSorted(t *testing.T) {
	a := analyzer(t)
	crit := a.CriticalCables(0)
	if len(crit) == 0 {
		t.Fatal("no critical cables in a branch-heavy network")
	}
	limited := a.CriticalCables(4)
	if len(limited) != 4 {
		t.Errorf("limit ignored: %d", len(limited))
	}
	// Longest-first: look up lengths by name and verify ordering.
	net := sharedWorld(t).Submarine
	lengthOf := map[string]float64{}
	for i := range net.Cables {
		lengthOf[net.Cables[i].Name] = net.Cables[i].LengthKm()
	}
	for i := 1; i < len(crit); i++ {
		if lengthOf[crit[i]] > lengthOf[crit[i-1]]+1e-9 {
			t.Errorf("critical cables not sorted longest-first at %d", i)
			break
		}
	}
}

func TestHubCities(t *testing.T) {
	a := analyzer(t)
	hubs := a.HubCities(0)
	if len(hubs) == 0 {
		t.Fatal("a 1241-node cable network should have articulation points")
	}
	limited := a.HubCities(3)
	if len(limited) != 3 {
		t.Errorf("limit ignored: %d", len(limited))
	}
}

func TestPairConnectivityCancelled(t *testing.T) {
	a := analyzer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.PairConnectivity(ctx, failure.S1(), 150, 100, 1, "us", "gb"); err == nil {
		t.Error("want context error")
	}
}
