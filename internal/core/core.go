// Package core is the paper's primary contribution rebuilt as a library:
// an analyzer that combines the topology datasets, the repeater failure
// model family, and Monte Carlo simulation into the resilience results of
// the evaluation — network-level failure sweeps (Figs 6-8) and the
// country-scale connectivity analysis (§4.3.4).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/graph"
	"gicnet/internal/sim"
	"gicnet/internal/topology"
)

// Analyzer runs resilience analyses over a generated world.
type Analyzer struct {
	World *dataset.World

	// DirectConnectivity forces the connectivity trial loops onto the
	// full-graph union-find reference path instead of the plan's core
	// contraction. The two engines are verdict-identical (pinned by the
	// contracted-direct-parity invariant); the flag exists for that proof
	// and for benchmarking, not for production use.
	DirectConnectivity bool
}

// NewAnalyzer wraps a world.
func NewAnalyzer(w *dataset.World) (*Analyzer, error) {
	if w == nil {
		return nil, errors.New("core: nil world")
	}
	return &Analyzer{World: w}, nil
}

// Target selects a set of nodes in the submarine network: either a country
// code ("us", "sg"), a region ("region:europe"), or a named city prefix
// ("city:shanghai"). The paper's country analysis uses all three scopes
// (countries, continents, key cities).
type Target string

// Errors returned by target resolution.
var ErrEmptyTarget = errors.New("core: target matches no nodes")

// resolve returns the node indices of a target in net.
func resolve(net *topology.Network, t Target) ([]int, error) {
	s := string(t)
	var out []int
	switch {
	case strings.HasPrefix(s, "region:"):
		want := geo.Region(strings.TrimPrefix(s, "region:"))
		for i, nd := range net.Nodes {
			if nd.HasCoord && geo.RegionOf(nd.Coord) == want {
				out = append(out, i)
			}
		}
	case strings.HasPrefix(s, "city:"):
		city := strings.TrimPrefix(s, "city:")
		for i, nd := range net.Nodes {
			// Node names are "<cc>-<city>-<n>".
			if strings.Contains(nd.Name, "-"+city+"-") {
				out = append(out, i)
			}
		}
	default:
		out = net.NodesOfCountry(s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrEmptyTarget, t)
	}
	return out, nil
}

// Connectivity is the Monte Carlo estimate of one target pair staying
// connected through the submarine network.
type Connectivity struct {
	From, To Target
	// SurvivalProb is the fraction of trials in which at least one path
	// connected the two node sets.
	SurvivalProb float64
	// Trials is the sample size.
	Trials int
}

// PairConnectivity estimates the probability that from and to remain
// connected in the submarine network under the model at the given spacing.
func (a *Analyzer) PairConnectivity(ctx context.Context, m failure.Model, spacingKm float64, trials int, seed uint64, from, to Target) (Connectivity, error) {
	plan, err := failure.Compile(a.World.Submarine, m, spacingKm)
	if err != nil {
		return Connectivity{}, err
	}
	return a.pairConnectivity(ctx, plan, trials, seed, from, to)
}

// pairConnectivity is PairConnectivity against an already-compiled plan.
// The trial loop is sim.PairSurvival: by default each trial answers on the
// plan's core contraction with the dead-cable bitset as the query mask, so
// neither the cable→edge projection nor the full-graph union-find runs per
// trial.
func (a *Analyzer) pairConnectivity(ctx context.Context, plan *failure.Plan, trials int, seed uint64, from, to Target) (Connectivity, error) {
	if trials <= 0 {
		return Connectivity{}, errors.New("core: trials must be positive")
	}
	net := a.World.Submarine
	fromNodes, err := resolve(net, from)
	if err != nil {
		return Connectivity{}, err
	}
	toNodes, err := resolve(net, to)
	if err != nil {
		return Connectivity{}, err
	}
	prob, err := sim.PairSurvival(ctx, plan, trials, seed, nodeIDs(fromNodes), nodeIDs(toNodes), a.DirectConnectivity)
	if err != nil {
		return Connectivity{}, err
	}
	return Connectivity{
		From: from, To: to,
		SurvivalProb: prob,
		Trials:       trials,
	}, nil
}

func nodeIDs(xs []int) []graph.NodeID {
	out := make([]graph.NodeID, len(xs))
	for i, x := range xs {
		out[i] = graph.NodeID(x)
	}
	return out
}

// CableFate describes one cable touching a target and its death chance.
type CableFate struct {
	Name      string
	LengthKm  float64
	Band      geo.Band
	DeathProb float64
}

// CountryReport is the §4.3.4-style per-country view.
type CountryReport struct {
	Target Target
	Model  string
	// Cables lists every touching cable with its analytic death
	// probability, most endangered first.
	Cables []CableFate
	// ExpectedSurvivors is the expected number of surviving cables.
	ExpectedSurvivors float64
	// IsolationProb is the probability that every touching cable dies
	// (assuming independence), the paper's "loses all its long-distance
	// connectivity" event.
	IsolationProb float64
	// Partners estimates connectivity survival to selected partners.
	Partners []Connectivity
}

// CountryAnalysis builds a CountryReport for a target under a model.
// partners may be nil.
func (a *Analyzer) CountryAnalysis(ctx context.Context, m failure.Model, spacingKm float64, trials int, seed uint64, target Target, partners []Target) (*CountryReport, error) {
	net := a.World.Submarine
	nodes, err := resolve(net, target)
	if err != nil {
		return nil, err
	}
	rep := &CountryReport{Target: target, Model: m.Name(), IsolationProb: 1}
	for _, ci := range net.CablesTouching(nodes) {
		p, err := failure.CableDeathProb(net, m, spacingKm, ci)
		if err != nil {
			return nil, err
		}
		band, _ := net.CableBand(ci)
		rep.Cables = append(rep.Cables, CableFate{
			Name:      net.Cables[ci].Name,
			LengthKm:  net.Cables[ci].LengthKm(),
			Band:      band,
			DeathProb: p,
		})
		rep.ExpectedSurvivors += 1 - p
		rep.IsolationProb *= p
	}
	sort.Slice(rep.Cables, func(i, j int) bool { return rep.Cables[i].DeathProb > rep.Cables[j].DeathProb })
	if len(partners) > 0 {
		// One compiled plan (and its cached contraction) serves every
		// partner pair.
		plan, err := failure.Compile(net, m, spacingKm)
		if err != nil {
			return nil, err
		}
		for _, partner := range partners {
			c, err := a.pairConnectivity(ctx, plan, trials, seed, target, partner)
			if err != nil {
				return nil, err
			}
			rep.Partners = append(rep.Partners, c)
		}
	}
	return rep, nil
}

// SurvivingCables lists the cables of a target expected to survive (death
// probability below 0.5), most robust first.
func (r *CountryReport) SurvivingCables() []CableFate {
	var out []CableFate
	for _, c := range r.Cables {
		if c.DeathProb < 0.5 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeathProb < out[j].DeathProb })
	return out
}

// DirectLink describes one cable that directly lands in both target sets.
type DirectLink struct {
	Name      string
	DeathProb float64
}

// DirectCableSurvival is the paper's §4.3.4 metric: of the cables landing
// in both from and to, the probability that at least one survives
// (assuming independent cable deaths). This is direct connectivity — no
// transit through third countries, which PairConnectivity covers.
type DirectCableSurvival struct {
	From, To Target
	Links    []DirectLink
	// AllDeadProb is the probability every direct cable dies ("US-Europe
	// connectivity is lost with a probability of 1.0").
	AllDeadProb float64
}

// DirectSurvival computes the direct-cable metric between two targets.
func (a *Analyzer) DirectSurvival(m failure.Model, spacingKm float64, from, to Target) (DirectCableSurvival, error) {
	net := a.World.Submarine
	fromNodes, err := resolve(net, from)
	if err != nil {
		return DirectCableSurvival{}, err
	}
	toNodes, err := resolve(net, to)
	if err != nil {
		return DirectCableSurvival{}, err
	}
	inFrom := toSet(fromNodes)
	inTo := toSet(toNodes)
	out := DirectCableSurvival{From: from, To: to, AllDeadProb: 1}
	for ci, c := range net.Cables {
		touchesFrom, touchesTo := false, false
		for _, s := range c.Segments {
			if inFrom[s.A] || inFrom[s.B] {
				touchesFrom = true
			}
			if inTo[s.A] || inTo[s.B] {
				touchesTo = true
			}
		}
		if !touchesFrom || !touchesTo {
			continue
		}
		p, err := failure.CableDeathProb(net, m, spacingKm, ci)
		if err != nil {
			return DirectCableSurvival{}, err
		}
		out.Links = append(out.Links, DirectLink{Name: c.Name, DeathProb: p})
		out.AllDeadProb *= p
	}
	if len(out.Links) == 0 {
		out.AllDeadProb = 1 // no direct cable: direct connectivity is already lost
	}
	sort.Slice(out.Links, func(i, j int) bool { return out.Links[i].DeathProb < out.Links[j].DeathProb })
	return out, nil
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// CriticalCables returns the names of submarine cables whose individual
// loss disconnects part of the network — the single-cable SPOFs the §5.1
// design guidance wants eliminated. Sorted by cable length, longest (most
// GIC-exposed) first.
func (a *Analyzer) CriticalCables(limit int) []string {
	net := a.World.Submarine
	crit := net.CriticalCables()
	sort.Slice(crit, func(i, j int) bool {
		return net.Cables[crit[i]].LengthKm() > net.Cables[crit[j]].LengthKm()
	})
	if limit > 0 && len(crit) > limit {
		crit = crit[:limit]
	}
	names := make([]string, len(crit))
	for i, ci := range crit {
		names[i] = net.Cables[ci].Name
	}
	return names
}

// HubCities returns the submarine network's articulation landing points —
// single points of failure whose loss fragments the network. Used by the
// topology-design guidance of §5.1.
func (a *Analyzer) HubCities(limit int) []string {
	net := a.World.Submarine
	g := net.Graph()
	aps := g.ArticulationPoints()
	names := make([]string, 0, len(aps))
	for _, n := range aps {
		names = append(names, net.Nodes[int(n)].Name)
	}
	sort.Strings(names)
	if limit > 0 && len(names) > limit {
		names = names[:limit]
	}
	return names
}
