package core

import (
	"context"
	"sync"
	"testing"

	"gicnet/internal/failure"
)

// TestConcurrentAnalyses exercises read-only concurrent use of the shared
// default world: multiple goroutines running Monte Carlo analyses at once.
// Run with -race to verify there is no hidden mutation (the lazy graph
// cache is primed by dataset.Default before publication).
func TestConcurrentAnalyses(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()
	pairs := []struct{ from, to Target }{
		{"us", "region:europe"},
		{"sg", "in"},
		{"br", "region:europe"},
		{"au", "nz"},
		{"gb", "us"},
		{"za", "ke"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(pairs)*2)
	for i, p := range pairs {
		wg.Add(2)
		go func(seed uint64, from, to Target) {
			defer wg.Done()
			if _, err := a.PairConnectivity(ctx, failure.S1(), 150, 20, seed, from, to); err != nil {
				errs <- err
			}
		}(uint64(i), p.from, p.to)
		go func(from Target) {
			defer wg.Done()
			if _, err := a.DirectSurvival(failure.S2(), 150, from, "region:europe"); err != nil {
				errs <- err
			}
		}(p.from)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
