// Package satellite implements the §3.3 extension: exposure of LEO
// constellations (Starlink-class) to a CME. Satellites are hit two ways —
// energetic particles damage electronics directly, and storm-time heating
// inflates the thermosphere, multiplying drag and accelerating orbital
// decay, in the worst case to uncontrolled reentry (the paper cites both,
// and the February 2022 Starlink loss later demonstrated the drag path).
package satellite

import (
	"errors"
	"fmt"
	"math"

	"gicnet/internal/gic"
	"gicnet/internal/xrand"
)

// Constellation is a Walker-style LEO shell.
type Constellation struct {
	Name string
	// Planes and SatsPerPlane define the shell population.
	Planes, SatsPerPlane int
	// AltitudeKm is the nominal orbit altitude.
	AltitudeKm float64
	// InclinationDeg controls how much time satellites spend at high
	// magnetic latitudes, where particle flux concentrates.
	InclinationDeg float64
	// ShieldingFactor in (0, 1]: 1 = unshielded commodity electronics.
	ShieldingFactor float64
}

// Starlink returns a first-shell Starlink-like constellation.
func Starlink() Constellation {
	return Constellation{
		Name: "starlink-shell1", Planes: 72, SatsPerPlane: 22,
		AltitudeKm: 550, InclinationDeg: 53, ShieldingFactor: 0.9,
	}
}

// Size returns the satellite count.
func (c Constellation) Size() int { return c.Planes * c.SatsPerPlane }

// Validate reports configuration errors.
func (c Constellation) Validate() error {
	if c.Planes <= 0 || c.SatsPerPlane <= 0 {
		return errors.New("satellite: empty constellation")
	}
	if c.AltitudeKm < 150 || c.AltitudeKm > 2000 {
		return fmt.Errorf("satellite: altitude %v outside LEO", c.AltitudeKm)
	}
	if c.InclinationDeg < 0 || c.InclinationDeg > 180 {
		return errors.New("satellite: bad inclination")
	}
	if c.ShieldingFactor <= 0 || c.ShieldingFactor > 1 {
		return errors.New("satellite: shielding must be in (0,1]")
	}
	return nil
}

// Exposure summarises storm impact on a constellation.
type Exposure struct {
	Storm         string
	Constellation string
	Satellites    int
	// ElectronicsDamageProb is the per-satellite probability of component
	// damage during the storm.
	ElectronicsDamageProb float64
	// DamagedExpected is the expected satellite loss to electronics.
	DamagedExpected float64
	// DragMultiplier is the storm-time atmospheric drag enhancement.
	DragMultiplier float64
	// DecayKmPerDay is the storm-time altitude loss rate.
	DecayKmPerDay float64
	// ReentryRisk is true if the storm-time decay could deorbit the shell
	// before recovery operations (paper's worst case).
	ReentryRisk bool
}

// stormSeverity maps a storm to a 0-1 severity scalar from its peak field
// relative to the Carrington ceiling.
func stormSeverity(s gic.Storm) float64 {
	sev := s.PeakFieldVPerKm / gic.Carrington.PeakFieldVPerKm
	if sev > 1 {
		sev = 1
	}
	if sev < 0 {
		sev = 0
	}
	return sev
}

// Assess computes the exposure of a constellation to a storm.
func Assess(c Constellation, s gic.Storm) (*Exposure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sev := stormSeverity(s)

	// Particle flux rises with magnetic latitude coverage: a polar
	// constellation spends more dwell time in the horns of the outer belt.
	latFactor := 0.4 + 0.6*math.Sin(c.InclinationDeg*math.Pi/180)
	damage := sev * latFactor * (1 - 0.8*c.ShieldingFactor)
	if damage > 1 {
		damage = 1
	}

	// Storm-time thermospheric density enhancement: quiet-time drag at
	// 550 km is ~0.05 km/day for a Starlink-class ballistic coefficient;
	// severe storms multiply density several-fold, more at lower
	// altitudes.
	altScale := math.Exp((550 - c.AltitudeKm) / 80) // lower = denser
	dragMult := 1 + 9*sev                           // up to 10x for Carrington
	decay := 0.05 * altScale * dragMult

	exp := &Exposure{
		Storm:                 s.Name,
		Constellation:         c.Name,
		Satellites:            c.Size(),
		ElectronicsDamageProb: damage,
		DamagedExpected:       damage * float64(c.Size()),
		DragMultiplier:        dragMult,
		DecayKmPerDay:         decay,
		// Reentry risk when a two-week storm recovery period would eat
		// through the margin above the ~300 km rapid-decay boundary.
		ReentryRisk: c.AltitudeKm-14*decay < 300,
	}
	return exp, nil
}

// SimulateDecay samples per-satellite altitude after days of storm decay
// with +-20% ballistic variation, returning the fraction deorbited (below
// 200 km).
func SimulateDecay(c Constellation, s gic.Storm, days float64, rng *xrand.Source) (float64, error) {
	exp, err := Assess(c, s)
	if err != nil {
		return 0, err
	}
	if days < 0 {
		return 0, errors.New("satellite: negative duration")
	}
	deorbited := 0
	n := c.Size()
	for i := 0; i < n; i++ {
		rate := exp.DecayKmPerDay * rng.Range(0.8, 1.2)
		alt := c.AltitudeKm - rate*days
		if alt < 200 {
			deorbited++
		}
	}
	return float64(deorbited) / float64(n), nil
}
