package satellite

import (
	"testing"

	"gicnet/internal/gic"
	"gicnet/internal/xrand"
)

func TestConstellationValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Constellation)
	}{
		{"no planes", func(c *Constellation) { c.Planes = 0 }},
		{"no sats", func(c *Constellation) { c.SatsPerPlane = 0 }},
		{"too low", func(c *Constellation) { c.AltitudeKm = 100 }},
		{"too high", func(c *Constellation) { c.AltitudeKm = 3000 }},
		{"bad inclination", func(c *Constellation) { c.InclinationDeg = -5 }},
		{"no shielding value", func(c *Constellation) { c.ShieldingFactor = 0 }},
		{"over shielded", func(c *Constellation) { c.ShieldingFactor = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Starlink()
			tt.mutate(&c)
			if c.Validate() == nil {
				t.Error("want validation error")
			}
		})
	}
	if err := Starlink().Validate(); err != nil {
		t.Error(err)
	}
	if Starlink().Size() != 72*22 {
		t.Errorf("size = %d", Starlink().Size())
	}
}

func TestAssessSeverityOrdering(t *testing.T) {
	c := Starlink()
	var prev *Exposure
	// Scenarios are ordered strongest first.
	for _, s := range gic.Scenarios() {
		exp, err := Assess(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if exp.ElectronicsDamageProb < 0 || exp.ElectronicsDamageProb > 1 {
			t.Fatalf("%s: damage prob %v", s.Name, exp.ElectronicsDamageProb)
		}
		if prev != nil {
			if exp.ElectronicsDamageProb > prev.ElectronicsDamageProb+1e-12 {
				t.Errorf("%s: damage should not exceed stronger storm", s.Name)
			}
			if exp.DragMultiplier > prev.DragMultiplier+1e-12 {
				t.Errorf("%s: drag should not exceed stronger storm", s.Name)
			}
		}
		prev = exp
	}
}

func TestAssessCarringtonSevere(t *testing.T) {
	exp, err := Assess(Starlink(), gic.Carrington)
	if err != nil {
		t.Fatal(err)
	}
	if exp.DragMultiplier < 5 {
		t.Errorf("Carrington drag multiplier = %v, want severe", exp.DragMultiplier)
	}
	if exp.DamagedExpected < 1 {
		t.Errorf("expected damage = %v sats, want nonzero", exp.DamagedExpected)
	}
	if exp.Satellites != Starlink().Size() {
		t.Error("satellite count wrong")
	}
}

func TestAssessModerateGentle(t *testing.T) {
	exp, err := Assess(Starlink(), gic.Moderate)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ReentryRisk {
		t.Error("moderate storm should not threaten reentry at 550 km")
	}
	if exp.ElectronicsDamageProb > 0.05 {
		t.Errorf("moderate damage prob = %v", exp.ElectronicsDamageProb)
	}
}

func TestAssessShieldingHelps(t *testing.T) {
	hard := Starlink()
	hard.ShieldingFactor = 1.0
	soft := Starlink()
	soft.ShieldingFactor = 0.3
	h, err := Assess(hard, gic.Carrington)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Assess(soft, gic.Carrington)
	if err != nil {
		t.Fatal(err)
	}
	if h.ElectronicsDamageProb >= s.ElectronicsDamageProb {
		t.Errorf("shielding should reduce damage: %v vs %v", h.ElectronicsDamageProb, s.ElectronicsDamageProb)
	}
}

func TestAssessLowerAltitudeDecaysFaster(t *testing.T) {
	low := Starlink()
	low.AltitudeKm = 350
	high := Starlink()
	high.AltitudeKm = 560
	l, err := Assess(low, gic.Carrington)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Assess(high, gic.Carrington)
	if err != nil {
		t.Fatal(err)
	}
	if l.DecayKmPerDay <= h.DecayKmPerDay {
		t.Errorf("lower shell should decay faster: %v vs %v", l.DecayKmPerDay, h.DecayKmPerDay)
	}
	if !l.ReentryRisk {
		t.Error("a 350 km shell under Carrington drag should flag reentry risk")
	}
}

func TestSimulateDecay(t *testing.T) {
	rng := xrand.New(3)
	frac, err := SimulateDecay(Starlink(), gic.Carrington, 0, rng)
	if err != nil || frac != 0 {
		t.Errorf("zero days: %v, %v", frac, err)
	}
	if _, err := SimulateDecay(Starlink(), gic.Carrington, -1, rng); err == nil {
		t.Error("want duration error")
	}
	// Long enough and everything comes down.
	frac, err = SimulateDecay(Starlink(), gic.Carrington, 10000, rng)
	if err != nil || frac != 1 {
		t.Errorf("10000 days: %v, %v", frac, err)
	}
	// Monotone-ish in duration.
	f1, _ := SimulateDecay(Starlink(), gic.Carrington, 100, xrand.New(4))
	f2, _ := SimulateDecay(Starlink(), gic.Carrington, 800, xrand.New(4))
	if f2 < f1 {
		t.Errorf("longer storms should deorbit at least as many: %v vs %v", f1, f2)
	}
	bad := Starlink()
	bad.Planes = 0
	if _, err := SimulateDecay(bad, gic.Carrington, 1, rng); err == nil {
		t.Error("want validation error")
	}
}
