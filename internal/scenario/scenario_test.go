package scenario

import (
	"strings"
	"sync"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/gic"
)

func world(t *testing.T) *dataset.World {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// defaultReport memoises one Run(w, DefaultConfig()) for the tests that
// only inspect the resulting report. Run is deterministic for a fixed
// config (asserted by TestRunDeterministic), so sharing the artifact
// changes nothing except the time spent regenerating it per test.
var defaultReportOnce = sync.OnceValues(func() (*Report, error) {
	w, err := dataset.Default()
	if err != nil {
		return nil, err
	}
	return Run(w, DefaultConfig())
})

func defaultReport(t *testing.T) *Report {
	t.Helper()
	rep, err := defaultReportOnce()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunValidation(t *testing.T) {
	w := world(t)
	if _, err := Run(nil, DefaultConfig()); err == nil {
		t.Error("want nil world error")
	}
	cfg := DefaultConfig()
	cfg.SpacingKm = 0
	if _, err := Run(w, cfg); err == nil {
		t.Error("want spacing error")
	}
	cfg = DefaultConfig()
	cfg.FaultSeverity = 0
	if _, err := Run(w, cfg); err == nil {
		t.Error("want severity error")
	}
}

func TestRunCarringtonFullStack(t *testing.T) {
	rep := defaultReport(t)
	if rep.Storm != "carrington-1859" {
		t.Errorf("storm = %q", rep.Storm)
	}
	if rep.CablesDead == 0 {
		t.Error("carrington killed nothing")
	}
	if rep.Plan == nil || rep.Plan.PowerOffCount() < 0 {
		t.Error("plan missing")
	}
	if rep.Fragmentation == nil || rep.Fragmentation.Components == 0 {
		t.Error("no fragmentation analysis")
	}
	if rep.Satellite == nil || rep.Satellite.DamagedExpected <= 0 {
		t.Error("no satellite exposure")
	}
	if rep.Recovery == nil || rep.FaultCount != rep.CablesDead {
		t.Errorf("recovery: %d faults for %d dead cables", rep.FaultCount, rep.CablesDead)
	}
	if rep.TrafficStranded < 0 || rep.TrafficStranded > 1 {
		t.Errorf("stranded = %v", rep.TrafficStranded)
	}
	if rep.GridFlagUnset() {
		t.Error("grid cascade should have run")
	}
}

// GridFlagUnset helps the test assert the cascade executed; dark stations
// can legitimately be zero in a lucky draw, so check via cables instead.
func (r *Report) GridFlagUnset() bool {
	return r.StationsDark < 0
}

func TestRunEconomicImpact(t *testing.T) {
	w := world(t)
	rep := defaultReport(t)
	if rep.Economic == nil {
		t.Fatal("no economic estimate")
	}
	if rep.Economic.TotalUSD <= 0 {
		t.Error("carrington outage cost should be positive")
	}
	// A storm that shreds the whole Internet for months lands in the
	// trillion-dollar regime the paper's citations bracket.
	if rep.Economic.TotalUSD < 1e11 {
		t.Errorf("carrington cost = $%.0fB, implausibly low", rep.Economic.TotalUSD/1e9)
	}
	mod := DefaultConfig()
	mod.Storm = gic.Moderate
	mrep, err := Run(w, mod)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Economic.TotalUSD >= rep.Economic.TotalUSD {
		t.Errorf("moderate cost %v should trail carrington %v",
			mrep.Economic.TotalUSD, rep.Economic.TotalUSD)
	}
}

func TestRunModerateIsGentle(t *testing.T) {
	w := world(t)
	carr := DefaultConfig()
	carr.Seed = 5
	mod := carr
	mod.Storm = gic.Moderate
	cr, err := Run(w, carr)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := Run(w, mod)
	if err != nil {
		t.Fatal(err)
	}
	if mr.CablesDead >= cr.CablesDead {
		t.Errorf("moderate storm killed %d cables vs carrington %d", mr.CablesDead, cr.CablesDead)
	}
	if mr.Satellite.DragMultiplier >= cr.Satellite.DragMultiplier {
		t.Error("moderate drag should trail carrington")
	}
}

func TestRunShutdownHelps(t *testing.T) {
	// With the same seed, applying the plan must not kill more cables
	// in expectation; assert over a few seeds to smooth sampling noise.
	w := world(t)
	better := 0
	runs := uint64(5)
	if testing.Short() {
		runs = 2
	}
	for seed := uint64(0); seed < runs; seed++ {
		with := Config{Storm: gic.Quebec, SpacingKm: 150, Seed: seed, ApplyShutdown: true, FaultSeverity: 0.1}
		without := with
		without.ApplyShutdown = false
		wr, err := Run(w, with)
		if err != nil {
			t.Fatal(err)
		}
		nr, err := Run(w, without)
		if err != nil {
			t.Fatal(err)
		}
		if wr.CablesDead <= nr.CablesDead {
			better++
		}
	}
	if uint64(better) < runs/2 {
		t.Errorf("shutdown plan helped in only %d/%d runs", better, runs)
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double full-scenario run skipped in short mode")
	}
	w := world(t)
	a := defaultReport(t)
	b, err := Run(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.CablesDead != b.CablesDead || a.NodesIsolated != b.NodesIsolated ||
		a.StationsDark != b.StationsDark || a.FaultCount != b.FaultCount {
		t.Error("same seed produced different scenarios")
	}
}

func TestRenderScenario(t *testing.T) {
	rep := defaultReport(t)
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Scenario", "lead time", "impact", "partitions", "repairs", "satellites"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
