// Package scenario runs an end-to-end solar superstorm timeline over the
// whole model stack: forecast and lead-time shutdown planning (§5.2),
// GIC-driven cable failures (§3-4), power-grid cascade (§5.5), post-impact
// partitioning (§5.3), traffic re-routing (§5.5), satellite exposure
// (§3.3), and the months-long repair campaign (§3.2.2) — one integrated
// report per storm.
package scenario

import (
	"errors"
	"fmt"
	"io"

	"gicnet/internal/dataset"
	"gicnet/internal/econ"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/gic"
	"gicnet/internal/grid"
	"gicnet/internal/partition"
	"gicnet/internal/recovery"
	"gicnet/internal/report"
	"gicnet/internal/routing"
	"gicnet/internal/satellite"
	"gicnet/internal/shutdown"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Config describes one scenario run.
type Config struct {
	// Storm is the forecast CME.
	Storm gic.Storm
	// SpacingKm is the inter-repeater distance.
	SpacingKm float64
	// Seed drives every random draw in the scenario.
	Seed uint64
	// ApplyShutdown runs the §5.2 planner during the lead time and uses
	// the powered-off failure probabilities for planned cables.
	ApplyShutdown bool
	// GridCoupling cascades power-grid collapse into landing stations.
	GridCoupling bool
	// FaultSeverity is the per-repeater damage sampling rate for the
	// repair backlog.
	FaultSeverity float64
	// Fleet repairs the damage; nil uses the default fleet.
	Fleet []recovery.Ship
}

// DefaultConfig returns a full-stack Carrington run.
func DefaultConfig() Config {
	return Config{
		Storm:         gic.Carrington,
		SpacingKm:     150,
		Seed:          dataset.DefaultSeed,
		ApplyShutdown: true,
		GridCoupling:  true,
		FaultSeverity: 0.1,
	}
}

// Report is the integrated scenario outcome.
type Report struct {
	Storm         string
	LeadTimeHours float64
	// Plan is the shutdown schedule (nil if not applied).
	Plan *shutdown.Plan
	// CablesDead / NodesIsolated summarise the post-impact state
	// (including grid cascade if enabled).
	CablesDead    int
	NodesIsolated int
	// StationsDark counts landing stations lost to the grid cascade.
	StationsDark int
	// Fragmentation is the post-impact partition structure.
	Fragmentation *partition.Fragmentation
	// TrafficStranded is the share of inter-region demand left
	// unroutable; TopShifts lists the biggest load gainers.
	TrafficStranded float64
	TopShifts       []routing.Shift
	// Satellite is the LEO exposure assessment.
	Satellite *satellite.Exposure
	// Recovery is the repair schedule; RestoredAt gives the milestone
	// days.
	Recovery *recovery.Schedule
	// FaultCount is the repair backlog size.
	FaultCount int
	// Economic is the §1-style cost estimate for the outage.
	Economic *econ.Estimate
}

// Run executes the scenario on a world.
func Run(w *dataset.World, cfg Config) (*Report, error) {
	if w == nil {
		return nil, errors.New("scenario: nil world")
	}
	if cfg.SpacingKm <= 0 {
		return nil, failure.ErrBadSpacing
	}
	if cfg.FaultSeverity <= 0 || cfg.FaultSeverity > 1 {
		return nil, errors.New("scenario: fault severity must be in (0,1]")
	}
	net := w.Submarine
	rng := xrand.New(cfg.Seed)
	rep := &Report{
		Storm:         cfg.Storm.Name,
		LeadTimeHours: cfg.Storm.TravelTime.Hours(),
	}

	// Phase 1 — lead time: shutdown planning.
	opts := shutdown.DefaultOptions()
	opts.SpacingKm = cfg.SpacingKm
	plan, err := shutdown.PlanShutdown(net, cfg.Storm, opts)
	if err != nil {
		return nil, err
	}
	if cfg.ApplyShutdown {
		rep.Plan = plan
	}

	// Phase 2 — impact: sample cable deaths using the plan's per-cable
	// probabilities (powered-off where planned).
	dead := make([]bool, len(net.Cables))
	nameToIdx := make(map[string]int, len(net.Cables))
	for ci := range net.Cables {
		nameToIdx[net.Cables[ci].Name] = ci
	}
	for _, a := range plan.Actions {
		p := a.DeathOn
		if cfg.ApplyShutdown && a.PowerOff {
			p = a.DeathOff
		}
		dead[nameToIdx[a.Cable]] = rng.Bool(p)
	}

	// Phase 3 — grid cascade.
	if cfg.GridCoupling {
		probs, err := gic.BandProbabilities(cfg.Storm, gic.DefaultLandConductor(), gic.DefaultRepeaterTolerance())
		if err != nil {
			return nil, err
		}
		gm := grid.DefaultModel(probs)
		coupled, darkCount, err := gm.Cascade(net, dead, rng)
		if err != nil {
			return nil, err
		}
		dead = coupled
		rep.StationsDark = darkCount
	}
	for _, d := range dead {
		if d {
			rep.CablesDead++
		}
	}
	rep.NodesIsolated = len(net.UnreachableNodes(dead))

	// Phase 4 — partition structure.
	frag, err := partition.Analyze(net, dead)
	if err != nil {
		return nil, err
	}
	rep.Fragmentation = frag

	// Phase 5 — traffic re-routing.
	demands := routing.DefaultDemands()
	before, err := routing.Route(net, demands, nil)
	if err != nil {
		return nil, err
	}
	after, err := routing.Route(net, demands, dead)
	if err != nil {
		return nil, err
	}
	rep.TrafficStranded = after.StrandedFrac()
	shifts, err := routing.CompareLoads(net, before, after)
	if err != nil {
		return nil, err
	}
	if len(shifts) > 5 {
		shifts = shifts[:5]
	}
	rep.TopShifts = shifts

	// Phase 6 — satellites.
	sat, err := satellite.Assess(satellite.Starlink(), cfg.Storm)
	if err != nil {
		return nil, err
	}
	rep.Satellite = sat

	// Phase 7 — recovery campaign.
	faults, err := recovery.FaultsFrom(net, dead, cfg.SpacingKm, cfg.FaultSeverity, rng)
	if err != nil {
		return nil, err
	}
	rep.FaultCount = len(faults)
	fleet := cfg.Fleet
	if fleet == nil {
		fleet = recovery.DefaultFleet()
	}
	if len(faults) > 0 {
		sched, err := recovery.PlanRecovery(net, faults, fleet, recovery.DefaultOptions())
		if err != nil {
			return nil, err
		}
		rep.Recovery = sched
	}

	// Phase 8 — economic impact: per-region connectivity loss costed over
	// the 90%-restoration horizon.
	restore := 0.0
	if rep.Recovery != nil {
		restore = rep.Recovery.RestoredAt[0.9]
	}
	est, err := econ.FromScenario(regionLoss(net, dead), restore)
	if err != nil {
		return nil, err
	}
	rep.Economic = est
	return rep, nil
}

// regionLoss computes each region's share of landing points that lost all
// connectivity or were split from the region's dominant partition.
func regionLoss(net *topology.Network, dead []bool) map[geo.Region]float64 {
	g := net.Graph()
	labels, _ := g.Components(net.AliveMask(dead))
	iso := map[int]bool{}
	for _, n := range net.UnreachableNodes(dead) {
		iso[n] = true
	}
	// Per region: count nodes per component, find the dominant one.
	type tally struct {
		total int
		comps map[int]int
		isoN  int
	}
	byRegion := map[geo.Region]*tally{}
	for i, nd := range net.Nodes {
		if !nd.HasCoord {
			continue
		}
		r := geo.RegionOf(nd.Coord)
		tl := byRegion[r]
		if tl == nil {
			tl = &tally{comps: map[int]int{}}
			byRegion[r] = tl
		}
		tl.total++
		if iso[i] {
			tl.isoN++
			continue
		}
		tl.comps[labels[i]]++
	}
	out := map[geo.Region]float64{}
	for r, tl := range byRegion {
		dominant := 0
		for _, n := range tl.comps {
			if n > dominant {
				dominant = n
			}
		}
		if tl.total > 0 {
			out[r] = float64(tl.total-dominant) / float64(tl.total)
		}
	}
	return out
}

// Render writes the scenario report as text.
func (r *Report) Render(w io.Writer) error {
	t := report.NewTable(fmt.Sprintf("Scenario: %s", r.Storm), "phase", "result")
	t.AddRow("lead time", fmt.Sprintf("%.1f hours", r.LeadTimeHours))
	if r.Plan != nil {
		t.AddRow("shutdown plan", fmt.Sprintf("%d cables powered off, +%.1f expected survivors",
			r.Plan.PowerOffCount(), r.Plan.Improvement()))
	} else {
		t.AddRow("shutdown plan", "not applied")
	}
	t.AddRow("impact", fmt.Sprintf("%d cables dead, %d landing points isolated", r.CablesDead, r.NodesIsolated))
	t.AddRow("grid cascade", fmt.Sprintf("%d stations dark", r.StationsDark))
	t.AddRow("partitions", fmt.Sprintf("%d components, largest holds %s of survivors",
		r.Fragmentation.Components, report.Pct(r.Fragmentation.LargestFrac)))
	t.AddRow("traffic", fmt.Sprintf("%s of inter-region demand stranded", report.Pct(r.TrafficStranded)))
	for _, s := range r.TopShifts {
		t.AddRow("", fmt.Sprintf("load shift: %s %.3f -> %.3f", s.Cable, s.Before, s.After))
	}
	t.AddRow("satellites", fmt.Sprintf("%.0f expected electronics losses, %.1fx drag",
		r.Satellite.DamagedExpected, r.Satellite.DragMultiplier))
	if r.Recovery != nil {
		t.AddRow("repairs", fmt.Sprintf("%d campaigns, 90%% restored in %.0f days, full in %.0f days",
			r.FaultCount, r.Recovery.RestoredAt[0.9], r.Recovery.MakespanDays))
	} else {
		t.AddRow("repairs", "no damage")
	}
	// Region split detail.
	for _, region := range geo.Regions() {
		if n := r.Fragmentation.RegionSplit[region]; n > 1 {
			t.AddRow("", fmt.Sprintf("%s split into %d islands", region, n))
		}
	}
	if r.Economic != nil {
		t.AddRow("economic impact", fmt.Sprintf("$%.2fT over the restoration period",
			econ.Trillions(r.Economic.TotalUSD)))
		top := r.Economic.TopRegions()
		if len(top) > 3 {
			top = top[:3]
		}
		for _, region := range top {
			t.AddRow("", fmt.Sprintf("%s: $%.0fB", region, econ.Billions(r.Economic.ByRegion[region])))
		}
	}
	return t.Render(w)
}
