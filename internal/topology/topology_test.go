package topology

import (
	"errors"
	"math"
	"sync"
	"testing"

	"gicnet/internal/geo"
	"gicnet/internal/graph"
)

// testNetwork builds a small network:
//
//	0 (oslo, 59.9N) --- c0 (3000km) --- 1 (nyc, 40.7N)
//	1 --- c1 (500km) --- 2 (miami, 25.8N)
//	c2 branches: 2-3 (7000km), 3-4 (2000km)  [miami - fortaleza - santos]
//	5 (lonely, no cables)
func testNetwork() *Network {
	return &Network{
		Name: "test",
		Nodes: []Node{
			{Name: "oslo", Coord: geo.Coord{Lat: 59.9, Lon: 10.7}, HasCoord: true, Country: "no"},
			{Name: "nyc", Coord: geo.Coord{Lat: 40.7, Lon: -74.0}, HasCoord: true, Country: "us"},
			{Name: "miami", Coord: geo.Coord{Lat: 25.8, Lon: -80.2}, HasCoord: true, Country: "us"},
			{Name: "fortaleza", Coord: geo.Coord{Lat: -3.7, Lon: -38.5}, HasCoord: true, Country: "br"},
			{Name: "santos", Coord: geo.Coord{Lat: -23.9, Lon: -46.3}, HasCoord: true, Country: "br"},
			{Name: "lonely", Coord: geo.Coord{Lat: 0, Lon: 0}, HasCoord: true, Country: "xx"},
		},
		Cables: []Cable{
			{Name: "c0", Segments: []Segment{{A: 0, B: 1, LengthKm: 3000}}, KnownLength: true},
			{Name: "c1", Segments: []Segment{{A: 1, B: 2, LengthKm: 500}}, KnownLength: true},
			{Name: "c2", Segments: []Segment{
				{A: 2, B: 3, LengthKm: 7000},
				{A: 3, B: 4, LengthKm: 2000},
			}, KnownLength: true},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testNetwork().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Network)
		wantErr error
	}{
		{"dangling", func(n *Network) {
			n.Cables[0].Segments[0].B = 99
		}, ErrDanglingSegment},
		{"negative length", func(n *Network) {
			n.Cables[0].Segments[0].LengthKm = -1
		}, ErrNegativeLength},
		{"empty cable", func(n *Network) {
			n.Cables[0].Segments = nil
		}, ErrEmptyCable},
		{"duplicate node", func(n *Network) {
			n.Nodes[1].Name = "oslo"
		}, ErrDuplicateNode},
		{"bad coord", func(n *Network) {
			n.Nodes[0].Coord.Lat = 200
		}, geo.ErrInvalidCoord},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := testNetwork()
			tt.mutate(n)
			err := n.Validate()
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestCableLengthAndRepeaters(t *testing.T) {
	n := testNetwork()
	c2 := &n.Cables[2]
	if got := c2.LengthKm(); got != 9000 {
		t.Errorf("LengthKm = %v", got)
	}
	tests := []struct {
		spacing float64
		want    int
	}{
		{150, 60}, {100, 90}, {50, 180}, {10000, 0}, {0, 0}, {-5, 0},
	}
	for _, tt := range tests {
		if got := c2.RepeaterCount(tt.spacing); got != tt.want {
			t.Errorf("RepeaterCount(%v) = %d, want %d", tt.spacing, got, tt.want)
		}
	}
	// short cable needs no repeater at 150km... c1 is 500km -> 3 repeaters
	if got := n.Cables[1].RepeaterCount(150); got != 3 {
		t.Errorf("c1 repeaters = %d", got)
	}
}

func TestGraphProjection(t *testing.T) {
	n := testNetwork()
	g := n.Graph()
	if g.NumNodes() != 6 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Errorf("edges = %d (one per segment)", g.NumEdges())
	}
	// cached
	if n.Graph() != g {
		t.Error("graph not cached")
	}
}

func TestAliveMaskCableDeathKillsAllSegments(t *testing.T) {
	n := testNetwork()
	dead := []bool{false, false, true} // kill branched c2
	mask := n.AliveMask(dead)
	alive := 0
	for _, a := range mask {
		if a {
			alive++
		}
	}
	if alive != 2 {
		t.Errorf("alive segments = %d, want 2 (both c2 segments dead)", alive)
	}
}

func TestUnreachableNodes(t *testing.T) {
	n := testNetwork()
	// kill c2: fortaleza and santos lose all cables; miami keeps c1.
	dead := []bool{false, false, true}
	got := n.UnreachableNodes(dead)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("UnreachableNodes = %v, want [3 4]", got)
	}
	// lonely node (no cables ever) must not be reported even with all dead
	got = n.UnreachableNodes([]bool{true, true, true})
	if len(got) != 5 {
		t.Errorf("all cables dead: %d unreachable, want 5 (lonely excluded)", len(got))
	}
}

func TestConnectedNodeCount(t *testing.T) {
	n := testNetwork()
	if got := n.ConnectedNodeCount(); got != 5 {
		t.Errorf("ConnectedNodeCount = %d, want 5", got)
	}
}

func TestMaxAbsLatEndpointAndBand(t *testing.T) {
	n := testNetwork()
	l, ok := n.MaxAbsLatEndpoint(0)
	if !ok || math.Abs(l-59.9) > 1e-9 {
		t.Errorf("cable 0 max lat = %v, %v", l, ok)
	}
	// c2 spans miami(25.8) fortaleza(3.7S) santos(23.9S): max abs 25.8
	l, _ = n.MaxAbsLatEndpoint(2)
	if math.Abs(l-25.8) > 1e-9 {
		t.Errorf("cable 2 max abs lat = %v", l)
	}
	if b, ok := n.CableBand(0); !ok || b != geo.BandMid {
		t.Errorf("cable 0 band = %v, %v", b, ok)
	}
	if b, _ := n.CableBand(2); b != geo.BandLow {
		t.Errorf("cable 2 band = %v", b)
	}
}

func TestCableBandNoCoords(t *testing.T) {
	n := testNetwork()
	for i := range n.Nodes {
		n.Nodes[i].HasCoord = false
	}
	if _, ok := n.CableBand(0); ok {
		t.Error("band should be unavailable without coordinates")
	}
	if _, ok := n.MaxAbsLatEndpoint(0); ok {
		t.Error("max lat should be unavailable without coordinates")
	}
}

func TestEndpointCoordsAndLengths(t *testing.T) {
	n := testNetwork()
	if got := len(n.EndpointCoords()); got != 6 {
		t.Errorf("EndpointCoords = %d", got)
	}
	n.Nodes[5].HasCoord = false
	if got := len(n.EndpointCoords()); got != 5 {
		t.Errorf("EndpointCoords after drop = %d", got)
	}
	lengths := n.CableLengths()
	if len(lengths) != 3 {
		t.Fatalf("lengths = %v", lengths)
	}
	n.Cables[2].KnownLength = false
	if got := len(n.CableLengths()); got != 2 {
		t.Errorf("unknown-length cable must be excluded, got %d", got)
	}
}

func TestCablesWithoutRepeatersAndMean(t *testing.T) {
	n := testNetwork()
	// at 600km spacing: c1 (500) has none; c0 (3000) has 5; c2 (9000) has 15
	if got := n.CablesWithoutRepeaters(600); got != 1 {
		t.Errorf("CablesWithoutRepeaters = %d", got)
	}
	want := (5.0 + 0 + 15) / 3
	if got := n.MeanRepeatersPerCable(600); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRepeatersPerCable = %v, want %v", got, want)
	}
}

func TestMeanRepeatersEmptyNetwork(t *testing.T) {
	n := &Network{Name: "empty"}
	if got := n.MeanRepeatersPerCable(150); got != 0 {
		t.Errorf("empty network mean = %v", got)
	}
}

func TestNodesOfCountryAndCablesTouching(t *testing.T) {
	n := testNetwork()
	us := n.NodesOfCountry("us")
	if len(us) != 2 || us[0] != 1 || us[1] != 2 {
		t.Errorf("NodesOfCountry(us) = %v", us)
	}
	cables := n.CablesTouching(us)
	if len(cables) != 3 {
		t.Errorf("CablesTouching(us) = %v, want all three", cables)
	}
	br := n.NodesOfCountry("br")
	cables = n.CablesTouching(br)
	if len(cables) != 1 || cables[0] != 2 {
		t.Errorf("CablesTouching(br) = %v, want [2]", cables)
	}
	if got := n.CablesTouching(nil); len(got) != 0 {
		t.Errorf("CablesTouching(nil) = %v", got)
	}
}

func TestNodeIndexByName(t *testing.T) {
	n := testNetwork()
	if got := n.NodeIndexByName("miami"); got != 2 {
		t.Errorf("NodeIndexByName(miami) = %d", got)
	}
	if got := n.NodeIndexByName("atlantis"); got != -1 {
		t.Errorf("NodeIndexByName(atlantis) = %d", got)
	}
}

func TestOneHopEndpointCoords(t *testing.T) {
	n := testNetwork()
	// threshold 40: oslo (59.9) and nyc (40.7) above; c0 touches both;
	// c1 touches nyc -> miami becomes one-hop; c2 touches miami only
	// (25.8 not above) -> fortaleza/santos are NOT one-hop.
	got := n.OneHopEndpointCoords(40)
	if len(got) != 3 {
		t.Fatalf("one-hop count = %d, want 3 (oslo, nyc, miami)", len(got))
	}
	// threshold 70: nobody above, nobody one-hop.
	if got := n.OneHopEndpointCoords(70); len(got) != 0 {
		t.Errorf("one-hop above 70 = %d, want 0", len(got))
	}
}

func TestCriticalCables(t *testing.T) {
	n := testNetwork()
	// c0 (oslo-nyc) and c2 (miami-fortaleza-santos) are single points of
	// failure; c1 and c3 parallel each other between nyc and miami.
	n.Cables = append(n.Cables, topology_c3())
	got := n.CriticalCables()
	want := []int{0, 2}
	if len(got) != len(want) {
		t.Fatalf("critical cables = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("critical cables = %v, want %v", got, want)
		}
	}
}

// topology_c3 returns a parallel nyc-miami cable for the SPOF test.
func topology_c3() Cable {
	return Cable{
		Name:        "c3-parallel",
		Segments:    []Segment{{A: 1, B: 2, LengthKm: 520}},
		KnownLength: true,
	}
}

func TestCriticalCablesAllBridgesInChain(t *testing.T) {
	n := testNetwork() // every cable is a bridge in the base topology
	got := n.CriticalCables()
	if len(got) != 3 {
		t.Errorf("chain topology critical cables = %v, want all 3", got)
	}
}

func TestOneHopMonotoneInThreshold(t *testing.T) {
	n := testNetwork()
	prev := len(n.Nodes) + 1
	for _, th := range []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90} {
		got := len(n.OneHopEndpointCoords(th))
		if got > prev {
			t.Errorf("one-hop set grew as threshold rose at %v", th)
		}
		prev = got
	}
}

func TestCableIncidence(t *testing.T) {
	n := testNetwork()
	start, list := n.CableIncidence()
	if len(start) != len(n.Nodes)+1 {
		t.Fatalf("start length %d, want %d", len(start), len(n.Nodes)+1)
	}
	// Rebuild the incidence naively and compare sets per node.
	want := make([]map[int32]bool, len(n.Nodes))
	for i := range want {
		want[i] = map[int32]bool{}
	}
	for ci, c := range n.Cables {
		for _, s := range c.Segments {
			want[s.A][int32(ci)] = true
			want[s.B][int32(ci)] = true
		}
	}
	for i := range n.Nodes {
		got := list[start[i]:start[i+1]]
		if len(got) != len(want[i]) {
			t.Fatalf("node %d: %d incident cables, want %d", i, len(got), len(want[i]))
		}
		for _, ci := range got {
			if !want[i][ci] {
				t.Fatalf("node %d: unexpected incident cable %d", i, ci)
			}
		}
	}
}

func TestCountUnreachableMatchesUnreachableNodes(t *testing.T) {
	n := testNetwork()
	masks := [][]bool{
		make([]bool, len(n.Cables)),
		{true, false, false},
		{true, true, false},
		{true, true, true},
	}
	for _, dead := range masks {
		if len(dead) != len(n.Cables) {
			continue
		}
		if got, want := n.CountUnreachable(dead), len(n.UnreachableNodes(dead)); got != want {
			t.Errorf("dead=%v: CountUnreachable %d, len(UnreachableNodes) %d", dead, got, want)
		}
	}
}

// TestDerivedCachesConcurrentFirstUse drives every lazily-built cache from
// many goroutines at once; run under -race this verifies the sync.Once
// guards that parallel sweeps rely on.
func TestDerivedCachesConcurrentFirstUse(t *testing.T) {
	n := testNetwork()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Graph()
			n.ConnectedNodeCount()
			n.CableIncidence()
			for ci := range n.Cables {
				n.CableBand(ci)
				n.CableBandByPath(ci)
			}
			n.AliveMask(make([]bool, len(n.Cables)))
		}()
	}
	wg.Wait()
}

func TestAliveMaskInto(t *testing.T) {
	n := testNetwork()
	dead := make([]bool, len(n.Cables))
	dead[0] = true
	want := n.AliveMask(dead)
	buf := make([]bool, 0, 16)
	got := n.AliveMaskInto(buf, dead)
	if len(got) != len(want) {
		t.Fatalf("mask length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mask[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// chainNetwork builds a path of n+1 nodes joined by n single-segment
// cables — enough distinct at-risk sets to exercise the contraction LRU.
func chainNetwork(n int) *Network {
	net := &Network{Name: "chain"}
	for i := 0; i <= n; i++ {
		net.Nodes = append(net.Nodes, Node{Name: "n" + string(rune('a'+i))})
	}
	for i := 0; i < n; i++ {
		net.Cables = append(net.Cables, Cable{
			Name:        "c" + string(rune('a'+i)),
			Segments:    []Segment{{A: i, B: i + 1, LengthKm: 1000}},
			KnownLength: true,
		})
	}
	return net
}

// TestContractionCacheLRU pins the cache's replacement policy and its
// counters: hits refresh recency (an entry touched after filling the cache
// survives later insertions that evict genuinely colder entries), eviction
// removes the least recently used set, and the hit/miss counters account
// for every call.
func TestContractionCacheLRU(t *testing.T) {
	const cables = 12
	net := chainNetwork(cables)
	atRisk := func(i int) graph.Bitset {
		b := graph.NewBitset(cables)
		b.Set(i)
		return b
	}

	// Fill the cache with 8 distinct at-risk sets: all misses.
	first := net.CoreContraction(atRisk(0))
	for i := 1; i < 8; i++ {
		net.CoreContraction(atRisk(i))
	}
	if hits, misses := net.ContractionCacheStats(); hits != 0 || misses != 8 {
		t.Fatalf("after fill: hits=%d misses=%d, want 0/8", hits, misses)
	}

	// Touch the oldest entry: a hit that must also refresh its recency.
	if got := net.CoreContraction(atRisk(0)); got != first {
		t.Fatal("cache hit returned a different contraction than the original build")
	}
	if hits, _ := net.ContractionCacheStats(); hits != 1 {
		t.Fatalf("hits = %d after touching a cached set, want 1", hits)
	}

	// Two fresh sets evict the two least recently used entries. Under LRU
	// those are sets 1 and 2 — set 0 was refreshed above and must survive.
	// (FIFO would have evicted set 0 first; this is the policy change.)
	net.CoreContraction(atRisk(8))
	net.CoreContraction(atRisk(9))
	if got := net.CoreContraction(atRisk(0)); got != first {
		t.Fatal("recently used set was evicted: replacement policy is not LRU")
	}
	if hits, misses := net.ContractionCacheStats(); hits != 2 || misses != 10 {
		t.Fatalf("after survival check: hits=%d misses=%d, want 2/10", hits, misses)
	}

	// Set 1 was the LRU at eviction time, so it must have been dropped:
	// requesting it again is a miss (a rebuild).
	net.CoreContraction(atRisk(1))
	if hits, misses := net.ContractionCacheStats(); hits != 2 || misses != 11 {
		t.Fatalf("after evicted-set refetch: hits=%d misses=%d, want 2/11", hits, misses)
	}
}
