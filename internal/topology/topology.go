// Package topology models long-haul cable networks the way the paper's
// analysis consumes them: named nodes (landing points / fiber endpoints),
// multi-branch cables with lengths and repeater counts, and a projection to
// an undirected graph whose edges die when their owning cable dies.
//
// Three concrete networks are analysed throughout the paper and this repo:
// the global submarine network, the US long-haul land network (Intertubes),
// and the global ITU land network. All three are instances of Network.
package topology

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"gicnet/internal/geo"
	"gicnet/internal/graph"
)

// Node is a cable endpoint: a submarine landing point or a land fiber city.
type Node struct {
	// Name is unique within a network (e.g. "us-ny-new-york").
	Name string
	// Coord is the node location. Valid only if HasCoord.
	Coord geo.Coord
	// HasCoord is false for networks like the ITU land dataset, which
	// publishes link structure but not coordinates (§4.1.3).
	HasCoord bool
	// Country is an ISO-3166-ish lowercase country code ("us", "sg").
	Country string
}

// Segment is one branch of a cable connecting two node indices.
type Segment struct {
	A, B     int
	LengthKm float64
}

// Cable is a long-haul cable. A cable may branch and touch several nodes
// (the paper's submarine cables interconnect several cities); it fails as a
// unit — one repeater failure kills every fiber pair in it (§3.2.1).
type Cable struct {
	Name     string
	Segments []Segment
	// KnownLength is false for the 29 submarine cables whose lengths are
	// not published; such cables are excluded from length-based analyses
	// (the paper uses 441 of 470).
	KnownLength bool
}

// LengthKm returns the total cable length over all segments.
func (c *Cable) LengthKm() float64 {
	total := 0.0
	for _, s := range c.Segments {
		total += s.LengthKm
	}
	return total
}

// RepeaterCount returns the number of repeaters at the given inter-repeater
// spacing: one per full spacing interval. Cables shorter than the spacing
// need no repeater and are immune to GIC in the paper's model.
func (c *Cable) RepeaterCount(spacingKm float64) int {
	if spacingKm <= 0 {
		return 0
	}
	return int(c.LengthKm() / spacingKm)
}

// Network is a named set of nodes and cables.
//
// Derived views (graph projection, node-cable incidence, latitude bands)
// are computed once on first use and cached. The caches are guarded by
// sync.Once, so concurrent simulations may share one Network — but the
// Nodes/Cables slices must not be mutated after the first derived query.
type Network struct {
	Name   string
	Nodes  []Node
	Cables []Cable

	graphOnce      sync.Once
	g              *graph.Graph
	edgeCable      []int   // graph edge id -> cable index
	cableEdgeStart []int32 // cable ci's edges are IDs [start[ci], start[ci+1])

	classOnce   sync.Once
	edgeClasses []int32 // edgeCable widened once for graph.NewCoreContraction

	// Core contractions cached per at-risk cable set. Sweeps compile one
	// plan per probability but nearly all of them share one at-risk set
	// (every repeatered cable), so the contraction build — the only
	// per-plan cost that is linear in the full graph — is paid once per
	// network, not once per compile. The cache is a small LRU (most
	// recently used at the back of the slice) with lifetime hit/miss
	// counters, so the serving layer can report contraction-tier cache
	// effectiveness per shard. Guarded by contractMu; entries are
	// immutable once published.
	contractMu     sync.Mutex
	contractions   []*graph.CoreContraction
	contractHits   uint64
	contractMisses uint64

	incOnce        sync.Once
	nodeCableStart []int32 // CSR offsets: node i's cables are nodeCables[start[i]:start[i+1]]
	nodeCables     []int32 // distinct incident cable indices, grouped by node
	connectedCount int     // nodes with at least one incident cable

	bitsOnce sync.Once
	incBits  *IncidenceBits

	bandOnce     sync.Once
	bands        []geo.Band
	bandOK       []bool
	pathBandOnce sync.Once
	pathBands    []geo.Band
	pathBandOK   []bool

	validated atomic.Bool // set once Validate has succeeded
}

// Errors returned by Validate.
var (
	ErrDanglingSegment = errors.New("topology: segment references missing node")
	ErrNegativeLength  = errors.New("topology: negative segment length")
	ErrEmptyCable      = errors.New("topology: cable with no segments")
	ErrDuplicateNode   = errors.New("topology: duplicate node name")
)

// Validate checks structural integrity. It must pass before Graph is used.
// A successful check is cached (sweeps re-validate per point), under the
// same contract as the derived-view caches: don't mutate after first use.
func (n *Network) Validate() error {
	if n.validated.Load() {
		return nil
	}
	if err := n.validate(); err != nil {
		return err
	}
	n.validated.Store(true)
	return nil
}

func (n *Network) validate() error {
	seen := make(map[string]bool, len(n.Nodes))
	for _, nd := range n.Nodes {
		if seen[nd.Name] {
			return fmt.Errorf("%w: %q", ErrDuplicateNode, nd.Name)
		}
		seen[nd.Name] = true
		if nd.HasCoord {
			if err := nd.Coord.Validate(); err != nil {
				return fmt.Errorf("node %q: %w", nd.Name, err)
			}
		}
	}
	for ci, c := range n.Cables {
		if len(c.Segments) == 0 {
			return fmt.Errorf("%w: cable %d (%q)", ErrEmptyCable, ci, c.Name)
		}
		for _, s := range c.Segments {
			if s.A < 0 || s.A >= len(n.Nodes) || s.B < 0 || s.B >= len(n.Nodes) {
				return fmt.Errorf("%w: cable %q segment (%d,%d)", ErrDanglingSegment, c.Name, s.A, s.B)
			}
			if s.LengthKm < 0 || math.IsNaN(s.LengthKm) {
				return fmt.Errorf("%w: cable %q", ErrNegativeLength, c.Name)
			}
		}
	}
	return nil
}

// Graph returns the graph projection of the network: one graph edge per
// cable segment. The projection is built once and cached (safe for
// concurrent first use); the network must not be mutated afterwards.
func (n *Network) Graph() *graph.Graph {
	n.graphOnce.Do(func() {
		g := graph.New()
		for _, nd := range n.Nodes {
			g.AddNode(nd.Name)
		}
		n.edgeCable = nil
		n.cableEdgeStart = make([]int32, len(n.Cables)+1)
		for ci, c := range n.Cables {
			for _, s := range c.Segments {
				g.AddEdge(graph.NodeID(s.A), graph.NodeID(s.B))
				n.edgeCable = append(n.edgeCable, ci)
			}
			// Segments are added cable by cable, so each cable owns a
			// contiguous block of edge IDs.
			n.cableEdgeStart[ci+1] = int32(len(n.edgeCable))
		}
		n.g = g
	})
	return n.g
}

// AliveMask projects per-cable death onto graph edges: every segment of a
// dead cable is dead.
func (n *Network) AliveMask(cableDead []bool) graph.AliveMask {
	return n.AliveMaskInto(nil, cableDead)
}

// AliveMaskInto is AliveMask writing into dst (grown if needed), so per-
// worker scratch can project cable deaths without allocating per trial.
func (n *Network) AliveMaskInto(dst graph.AliveMask, cableDead []bool) graph.AliveMask {
	g := n.Graph()
	if cap(dst) < g.NumEdges() {
		dst = make(graph.AliveMask, g.NumEdges())
	}
	dst = dst[:g.NumEdges()]
	for e := range dst {
		dst[e] = !cableDead[n.edgeCable[e]]
	}
	return dst
}

// CableIncidence returns the CSR mapping from each node to its distinct
// incident cable indices: node i's cables are list[start[i]:start[i+1]].
// Built once and cached; the returned slices are shared and must not be
// modified.
func (n *Network) CableIncidence() (start, list []int32) {
	n.incOnce.Do(n.buildIncidence)
	return n.nodeCableStart, n.nodeCables
}

func (n *Network) buildIncidence() {
	nn := len(n.Nodes)
	// Dedupe by remembering, per node, the last cable that touched it:
	// each cable's segments are visited contiguously, so one slot suffices.
	last := make([]int, nn)
	counts := make([]int32, nn+1)
	for pass := 0; pass < 2; pass++ {
		for i := range last {
			last[i] = -1
		}
		for ci, c := range n.Cables {
			for _, s := range c.Segments {
				for _, ni := range [2]int{s.A, s.B} {
					if last[ni] == ci {
						continue
					}
					last[ni] = ci
					if pass == 0 {
						counts[ni+1]++
					} else {
						n.nodeCables[counts[ni]] = int32(ci)
						counts[ni]++
					}
				}
			}
		}
		if pass == 0 {
			for i := 1; i <= nn; i++ {
				counts[i] += counts[i-1]
			}
			n.nodeCableStart = append([]int32(nil), counts...)
			n.nodeCables = make([]int32, counts[nn])
		}
	}
	n.connectedCount = 0
	for i := 0; i < nn; i++ {
		if n.nodeCableStart[i+1] > n.nodeCableStart[i] {
			n.connectedCount++
		}
	}
}

// UnreachableNodes returns the indices of nodes whose incident cables are
// all dead — the paper's per-node failure criterion (§4.3.1). Nodes that
// had no cables at all are never counted.
func (n *Network) UnreachableNodes(cableDead []bool) []int {
	start, list := n.CableIncidence()
	var out []int
	for i := 0; i < len(n.Nodes); i++ {
		if n.nodeAlive(start, list, i, cableDead) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// CountUnreachable is UnreachableNodes without materialising the index
// slice — the Monte Carlo trial loop only needs the count.
func (n *Network) CountUnreachable(cableDead []bool) int {
	start, list := n.CableIncidence()
	count := 0
	for i := 0; i < len(n.Nodes); i++ {
		if !n.nodeAlive(start, list, i, cableDead) {
			count++
		}
	}
	return count
}

// nodeAlive reports whether node i has at least one live incident cable.
// Nodes with no cables at all count as alive: they were never connected.
func (n *Network) nodeAlive(start, list []int32, i int, cableDead []bool) bool {
	s, e := start[i], start[i+1]
	if s == e {
		return true
	}
	for _, ci := range list[s:e] {
		if !cableDead[ci] {
			return true
		}
	}
	return false
}

// ConnectedNodeCount returns the number of nodes with at least one cable.
// Computed once and cached.
func (n *Network) ConnectedNodeCount() int {
	n.incOnce.Do(n.buildIncidence)
	return n.connectedCount
}

// MaxAbsLatEndpoint returns the highest absolute latitude among the cable's
// endpoint nodes — the quantity the paper's non-uniform failure models key
// on ("the highest latitude endpoint of the cable", §4.3.3). Returns
// (0, false) if no endpoint has coordinates.
func (n *Network) MaxAbsLatEndpoint(ci int) (float64, bool) {
	maxAbs := -1.0
	for _, s := range n.Cables[ci].Segments {
		for _, ni := range [2]int{s.A, s.B} {
			nd := n.Nodes[ni]
			if nd.HasCoord && nd.Coord.AbsLat() > maxAbs {
				maxAbs = nd.Coord.AbsLat()
			}
		}
	}
	if maxAbs < 0 {
		return 0, false
	}
	return maxAbs, true
}

// CableBand returns the latitude risk band of cable ci per the paper's
// rule (band of the highest-latitude endpoint). Networks without
// coordinates report BandLow and false. Bands for all cables are computed
// once on first query and cached.
func (n *Network) CableBand(ci int) (geo.Band, bool) {
	n.bandOnce.Do(func() {
		n.bands = make([]geo.Band, len(n.Cables))
		n.bandOK = make([]bool, len(n.Cables))
		for i := range n.Cables {
			if l, ok := n.MaxAbsLatEndpoint(i); ok {
				n.bands[i], n.bandOK[i] = geo.BandOf(l), true
			}
		}
	})
	return n.bands[ci], n.bandOK[ci]
}

// MaxAbsLatPath returns the highest absolute latitude reached along the
// cable's great-circle segments — always at least MaxAbsLatEndpoint,
// because routes between mid-latitude endpoints arc poleward. The paper
// bands by endpoint only; this is the physically tighter alternative used
// by the path-banding ablation.
func (n *Network) MaxAbsLatPath(ci int) (float64, bool) {
	maxAbs := -1.0
	for _, s := range n.Cables[ci].Segments {
		a, b := n.Nodes[s.A], n.Nodes[s.B]
		if !a.HasCoord || !b.HasCoord {
			continue
		}
		if m := geo.PathMaxAbsLat(a.Coord, b.Coord); m > maxAbs {
			maxAbs = m
		}
	}
	if maxAbs < 0 {
		return 0, false
	}
	return maxAbs, true
}

// CableBandByPath returns the latitude risk band of the cable's full
// great-circle path. The path maxima involve spherical trig per segment,
// so bands for all cables are computed once on first query and cached.
func (n *Network) CableBandByPath(ci int) (geo.Band, bool) {
	n.pathBandOnce.Do(func() {
		n.pathBands = make([]geo.Band, len(n.Cables))
		n.pathBandOK = make([]bool, len(n.Cables))
		for i := range n.Cables {
			if l, ok := n.MaxAbsLatPath(i); ok {
				n.pathBands[i], n.pathBandOK[i] = geo.BandOf(l), true
			}
		}
	})
	return n.pathBands[ci], n.pathBandOK[ci]
}

// Fingerprint hashes the network's complete structure — node names,
// coordinates, countries, and every cable's segments and lengths — with
// FNV-1a. Two networks are structurally identical exactly when their
// fingerprints match; the verification subsystem pins generated worlds to
// golden fingerprints so dataset refactors cannot silently change the
// topology every result depends on.
//
//gicnet:pure
func (n *Network) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "net|%s|%d|%d|", n.Name, len(n.Nodes), len(n.Cables))
	for _, nd := range n.Nodes {
		fmt.Fprintf(h, "n|%s|%s|%t|", nd.Name, nd.Country, nd.HasCoord)
		word(math.Float64bits(nd.Coord.Lat))
		word(math.Float64bits(nd.Coord.Lon))
	}
	for _, c := range n.Cables {
		fmt.Fprintf(h, "c|%s|%t|%d|", c.Name, c.KnownLength, len(c.Segments))
		for _, s := range c.Segments {
			word(uint64(s.A))
			word(uint64(s.B))
			word(math.Float64bits(s.LengthKm))
		}
	}
	return h.Sum64()
}

// EndpointCoords returns the coordinates of all nodes that have them.
func (n *Network) EndpointCoords() []geo.Coord {
	var out []geo.Coord
	for _, nd := range n.Nodes {
		if nd.HasCoord {
			out = append(out, nd.Coord)
		}
	}
	return out
}

// CableLengths returns the lengths of all cables with known length.
func (n *Network) CableLengths() []float64 {
	var out []float64
	for i := range n.Cables {
		if n.Cables[i].KnownLength {
			out = append(out, n.Cables[i].LengthKm())
		}
	}
	return out
}

// CablesWithoutRepeaters counts cables needing no repeater at the spacing.
func (n *Network) CablesWithoutRepeaters(spacingKm float64) int {
	count := 0
	for i := range n.Cables {
		if n.Cables[i].RepeaterCount(spacingKm) == 0 {
			count++
		}
	}
	return count
}

// MeanRepeatersPerCable returns the average repeater count per cable at the
// given spacing (the paper reports 22.3 submarine / 1.7 Intertubes / 0.63
// ITU at 150 km).
func (n *Network) MeanRepeatersPerCable(spacingKm float64) float64 {
	if len(n.Cables) == 0 {
		return 0
	}
	total := 0
	for i := range n.Cables {
		total += n.Cables[i].RepeaterCount(spacingKm)
	}
	return float64(total) / float64(len(n.Cables))
}

// NodesOfCountry returns indices of nodes in the given country.
func (n *Network) NodesOfCountry(country string) []int {
	var out []int
	for i, nd := range n.Nodes {
		if nd.Country == country {
			out = append(out, i)
		}
	}
	return out
}

// CablesTouching returns the indices of cables with at least one segment
// endpoint among the given node set.
func (n *Network) CablesTouching(nodes []int) []int {
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	var out []int
	for ci, c := range n.Cables {
		touch := false
		for _, s := range c.Segments {
			if in[s.A] || in[s.B] {
				touch = true
				break
			}
		}
		if touch {
			out = append(out, ci)
		}
	}
	return out
}

// NodeIndexByName returns the index of the named node, or -1.
func (n *Network) NodeIndexByName(name string) int {
	for i, nd := range n.Nodes {
		if nd.Name == name {
			return i
		}
	}
	return -1
}

// CriticalCables returns the indices of cables whose individual loss
// disconnects the network (increases its connected-component count) —
// single points of failure in the §5.1 topology-design sense.
func (n *Network) CriticalCables() []int {
	g := n.Graph()
	_, base := g.Components(nil)
	dead := make([]bool, len(n.Cables))
	var out []int
	for ci := range n.Cables {
		dead[ci] = true
		_, count := g.Components(n.AliveMask(dead))
		dead[ci] = false
		if count > base {
			out = append(out, ci)
		}
	}
	return out
}

// OneHopEndpointCoords returns the coordinates of nodes that either lie
// above the latitude threshold or share a cable with a node above it —
// the paper's "one-hop endpoints" series in Figure 4(a).
func (n *Network) OneHopEndpointCoords(threshold float64) []geo.Coord {
	above := make([]bool, len(n.Nodes))
	for i, nd := range n.Nodes {
		above[i] = nd.HasCoord && nd.Coord.AbsLat() > threshold
	}
	oneHop := make([]bool, len(n.Nodes))
	copy(oneHop, above)
	for _, c := range n.Cables {
		// A cable touching any above-threshold node exposes all its nodes.
		touch := false
		for _, s := range c.Segments {
			if above[s.A] || above[s.B] {
				touch = true
				break
			}
		}
		if !touch {
			continue
		}
		for _, s := range c.Segments {
			oneHop[s.A] = true
			oneHop[s.B] = true
		}
	}
	var out []geo.Coord
	for i, nd := range n.Nodes {
		if oneHop[i] && nd.HasCoord {
			out = append(out, nd.Coord)
		}
	}
	return out
}
