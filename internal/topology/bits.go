package topology

import (
	"math/bits"

	"gicnet/internal/graph"
)

// IncidenceBits is the bit-packed node↔cable incidence the Monte Carlo
// kernel evaluates trials against. It depends only on network topology —
// never on the failure model or repeater spacing — so it is built once per
// network and shared by every compiled plan.
//
// The key query is "are all cables incident to node i dead?" against a
// packed dead-cable Bitset: node i's incident cables are covered by the
// (word, mask) pairs WordIdx/WordMask[NodeStart[i]:NodeStart[i+1]], and the
// node is unreachable iff dead[WordIdx[k]] & WordMask[k] == WordMask[k] for
// every pair k. Real nodes touch a handful of cables, so this is one or two
// word ANDs instead of an index-chasing loop.
type IncidenceBits struct {
	// Words is the word length of a cable Bitset for this network.
	Words int

	// Node → covering (word, mask) pairs over its incident cables.
	NodeStart []int32
	WordIdx   []int32
	WordMask  []uint64

	// Cable → distinct endpoint nodes (the reverse incidence CSR): cable
	// ci touches CableNodes[CableStart[ci]:CableStart[ci+1]].
	CableStart []int32
	CableNodes []int32

	// MinCable[i] is node i's lowest incident cable index, or -1 for nodes
	// with no cables. A fully-dead node is counted exactly once by visiting
	// it from its lowest dead incident cable.
	MinCable []int32

	// Node → distinct incident cables (ascending), the unpacked companion
	// of the (word, mask) pairs above: node i touches
	// NodeCables[NodeCableStart[i]:NodeCableStart[i+1]]. The block
	// evaluator walks cables by index to gather per-cable trial columns,
	// which the word-packed view cannot express.
	NodeCableStart []int32
	NodeCables     []int32
}

// IncidenceBits returns the bit-packed incidence view, built once and
// cached. The returned struct is shared and must not be modified.
func (n *Network) IncidenceBits() *IncidenceBits {
	n.bitsOnce.Do(n.buildIncidenceBits)
	return n.incBits
}

func (n *Network) buildIncidenceBits() {
	start, list := n.CableIncidence()
	nn := len(n.Nodes)
	ib := &IncidenceBits{
		Words:     graph.BitsetWords(len(n.Cables)),
		NodeStart: make([]int32, nn+1),
		MinCable:  make([]int32, nn),
		// The node→cable CSR is cached on the network and immutable, so the
		// incidence view can alias it directly.
		NodeCableStart: start,
		NodeCables:     list,
	}

	// Node → (word, mask) pairs. Each node's cable list is ascending (see
	// buildIncidence), so cables sharing a word are adjacent and the pair
	// count is the number of distinct words per node.
	total := int32(0)
	for i := 0; i < nn; i++ {
		ib.MinCable[i] = -1
		prev := int32(-1)
		for _, ci := range list[start[i]:start[i+1]] {
			if ib.MinCable[i] < 0 {
				ib.MinCable[i] = ci
			}
			if w := ci >> 6; w != prev {
				prev = w
				total++
			}
		}
		ib.NodeStart[i+1] = total
	}
	ib.WordIdx = make([]int32, total)
	ib.WordMask = make([]uint64, total)
	pos := 0
	for i := 0; i < nn; i++ {
		prev := int32(-1)
		for _, ci := range list[start[i]:start[i+1]] {
			if w := ci >> 6; w != prev {
				prev = w
				ib.WordIdx[pos] = w
				pos++
			}
			ib.WordMask[pos-1] |= 1 << (uint(ci) & 63)
		}
	}

	// Cable → distinct endpoint nodes, deduped with the same last-cable
	// trick as buildIncidence.
	nc := len(n.Cables)
	last := make([]int, nn)
	counts := make([]int32, nc+1)
	for pass := 0; pass < 2; pass++ {
		for i := range last {
			last[i] = -1
		}
		for ci, c := range n.Cables {
			for _, s := range c.Segments {
				for _, ni := range [2]int{s.A, s.B} {
					if last[ni] == ci {
						continue
					}
					last[ni] = ci
					if pass == 0 {
						counts[ci+1]++
					} else {
						ib.CableNodes[counts[ci]] = int32(ni)
						counts[ci]++
					}
				}
			}
		}
		if pass == 0 {
			for c := 1; c <= nc; c++ {
				counts[c] += counts[c-1]
			}
			ib.CableStart = append([]int32(nil), counts...)
			ib.CableNodes = make([]int32, counts[nc])
		}
	}
	n.incBits = ib
}

// CoreContraction contracts the network's graph against an at-risk cable
// set: every edge of a cable outside the set is immortal core, fused into
// supernodes once, and per-trial connectivity unions only the surviving
// at-risk edges over the contracted graph — with the dead CABLE bitset as
// the mask, so the per-trial cable→edge projection disappears entirely.
// The cable index is the failure class (each cable owns a contiguous edge
// block in the graph projection). The result is immutable and safe for
// concurrent use; failure.Plan caches one per compiled at-risk set.
func (n *Network) CoreContraction(atRiskCables graph.Bitset) *graph.CoreContraction {
	g := n.Graph()
	n.classOnce.Do(func() {
		n.edgeClasses = make([]int32, len(n.edgeCable))
		for e, ci := range n.edgeCable {
			n.edgeClasses[e] = int32(ci)
		}
	})
	n.contractMu.Lock()
	defer n.contractMu.Unlock()
	for i, cc := range n.contractions {
		if cc.Matches(g, atRiskCables) {
			n.contractHits++
			// LRU: move the hit to the back (most recently used), so a
			// steady working set survives one-off at-risk sets passing
			// through.
			copy(n.contractions[i:], n.contractions[i+1:])
			n.contractions[len(n.contractions)-1] = cc
			return cc
		}
	}
	n.contractMisses++
	cc := graph.NewCoreContraction(g, n.edgeClasses, len(n.Cables), atRiskCables)
	// LRU-bound the cache: distinct at-risk sets are model families, of
	// which a process sees a handful, but a pathological caller sweeping
	// per-cable immortality must not accumulate one contraction per sweep
	// point. The least recently used entry (front) is evicted.
	if len(n.contractions) >= contractionCacheCap {
		copy(n.contractions, n.contractions[1:])
		n.contractions = n.contractions[:len(n.contractions)-1]
	}
	n.contractions = append(n.contractions, cc)
	return cc
}

// contractionCacheCap bounds the per-network contraction LRU. A process
// sees one at-risk set per model family, so 8 covers every workload the
// repo ships while still bounding adversarial sweeps.
const contractionCacheCap = 8

// ContractionCacheStats returns the lifetime hit/miss counters of the
// network's contraction LRU. A hit is a CoreContraction call answered from
// the cache; a miss paid a full contraction build. The serving layer
// reports these per shard so cache effectiveness is observable in
// production.
func (n *Network) ContractionCacheStats() (hits, misses uint64) {
	n.contractMu.Lock()
	defer n.contractMu.Unlock()
	return n.contractHits, n.contractMisses
}

// DeadEdgeBitsInto projects per-cable death onto graph edges as a packed
// bitset: every segment edge of a dead cable is marked dead. It is the
// bitset form of AliveMaskInto (with inverted polarity) and reuses dst's
// backing array, so per-worker scratch projects trials without allocating.
func (n *Network) DeadEdgeBitsInto(dst graph.Bitset, cableDead graph.Bitset) graph.Bitset {
	g := n.Graph()
	dst = graph.GrowBitset(dst, g.NumEdges())
	// Walk only the set bits: each dead cable marks its contiguous edge-ID
	// block with word fills instead of testing every edge individually.
	for wi, w := range cableDead {
		base := wi << 6
		for w != 0 {
			ci := base + bits.TrailingZeros64(w)
			w &= w - 1
			dst.SetRange(int(n.cableEdgeStart[ci]), int(n.cableEdgeStart[ci+1]))
		}
	}
	return dst
}
