// Package serve implements gicnetd's scenario-serving engine: a fleet of
// pinned worlds sharded across executor pools, with tiered caching
// (results, compiled failure plans, core contractions), singleflight
// deduplication of identical in-flight requests, and cross-request
// batching of compatible scenario sweeps onto shared arenas.
//
// The engine's load-bearing invariant is that serving never changes an
// answer: every response carries the deterministic replay fingerprint of
// the equivalent offline run, i.e. sim.Run with the request's own
// configuration, whatever mix of cache tiers, dedup joins and batch
// shapes produced it. internal/verify replays served scenarios against
// offline runs to keep that provenance contract pinned.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/rare"
	"gicnet/internal/routing"
	"gicnet/internal/sim"
	"gicnet/internal/topology"
)

// ErrServerClosed is returned by Do after Close has begun.
var ErrServerClosed = errors.New("serve: server closed")

// Provenance tags stamped on every response.
const (
	// ProvComputed marks a response whose simulation ran for this request.
	ProvComputed = "computed"
	// ProvCache marks a response served from the result tier.
	ProvCache = "cache"
	// ProvDedup marks a response that joined an identical in-flight
	// computation instead of starting its own.
	ProvDedup = "dedup"
)

// Network names accepted in requests, in canonical order.
var networkNames = []string{"submarine", "intertubes", "itu"}

// Request describes one scenario evaluation. The zero value of optional
// fields selects documented defaults (see Server.normalize); the
// canonicalised request is echoed back in the response, and running
// sim.Run offline with exactly those echoed values reproduces the
// response fingerprint bit for bit.
type Request struct {
	// WorldSeed selects a pinned world; 0 selects the server's first.
	WorldSeed uint64 `json:"world_seed,omitempty"`
	// Network is "submarine", "intertubes" or "itu" (default "submarine").
	Network string `json:"network,omitempty"`
	// Model is "uniform" (default), "s1" or "s2".
	Model string `json:"model,omitempty"`
	// P is the uniform repeater death probability in [0, 1]; ignored for
	// the latitude-tiered models.
	P float64 `json:"p,omitempty"`
	// SpacingKm is the inter-repeater distance (default 100).
	SpacingKm float64 `json:"spacing_km,omitempty"`
	// Trials is the Monte Carlo trial budget (default 1024).
	Trials int `json:"trials,omitempty"`
	// Seed drives the trial RNGs.
	Seed uint64 `json:"seed,omitempty"`
	// Estimator is "" (plain Monte Carlo), "is", "is-qmc" or "qmc".
	Estimator string `json:"estimator,omitempty"`
	// CrossLayer additionally scores every trial through the cable->AS
	// adjacency: severed AS pairs and stranded users. Only networks with
	// located attach sites accept it (the ITU map has none).
	CrossLayer bool `json:"cross_layer,omitempty"`
}

// Response is the answer to one Request, scalar summaries plus the
// provenance block: the replay fingerprint of the equivalent offline run,
// the world fingerprint it was computed against, and how the serving
// engine produced it.
type Response struct {
	// Request echoes the canonicalised request this answers.
	Request Request `json:"request"`
	// WorldFingerprint hashes the network structure the run used.
	WorldFingerprint uint64 `json:"world_fingerprint"`
	// Fingerprint is the deterministic replay fingerprint; it equals
	// sim.Run(Request).Fingerprint() for every provenance.
	Fingerprint uint64 `json:"fingerprint"`
	// CableFracMean/Std and NodeFracMean/Std summarise the raw trial
	// outcomes (the proposal distribution under an estimator).
	CableFracMean float64 `json:"cable_frac_mean"`
	CableFracStd  float64 `json:"cable_frac_std"`
	NodeFracMean  float64 `json:"node_frac_mean"`
	NodeFracStd   float64 `json:"node_frac_std"`
	// WeightedCableFrac/NodeFrac are the importance-weighted estimates of
	// the target distribution's means (equal to the plain means when the
	// request used no estimator).
	WeightedCableFrac float64 `json:"weighted_cable_frac"`
	WeightedNodeFrac  float64 `json:"weighted_node_frac"`
	// ESS is the effective sample size (Trials on the plain path).
	ESS float64 `json:"ess"`
	// CrossReachableFrac, CrossStrandedShare and CrossDemandWeighted are
	// the mean cross-layer aggregates over the trials; present only when
	// the request set CrossLayer.
	CrossReachableFrac  float64 `json:"cross_reachable_frac,omitempty"`
	CrossStrandedShare  float64 `json:"cross_stranded_share,omitempty"`
	CrossDemandWeighted float64 `json:"cross_demand_weighted,omitempty"`
	// Provenance is "computed", "cache" or "dedup".
	Provenance string `json:"provenance"`
	// BatchSize counts the requests coalesced into the sweep batch that
	// computed this result (1 = ran alone; 0 on cache hits, which ran in
	// an earlier batch).
	BatchSize int `json:"batch_size,omitempty"`
	// Shard is the shard that owns this scenario's world+network.
	Shard int `json:"shard"`
}

// Config tunes a Server. The zero value of every knob selects a
// documented default.
type Config struct {
	// Worlds pins pre-generated worlds, keyed by their embedded Seed.
	Worlds []*dataset.World
	// WorldSeeds generates and pins additional worlds (the
	// generator-seed sensitivity fleet). Seeds already pinned via Worlds
	// are skipped.
	WorldSeeds []uint64
	// WorldConfig overrides the generator configuration for WorldSeeds;
	// nil uses the calibrated defaults.
	WorldConfig *dataset.WorldConfig
	// Shards partitions the fleet; each (world, network) pair is owned
	// by exactly one shard (default 4).
	Shards int
	// WorkersPerShard is the executor pool size per shard; each executor
	// owns one sim.Arena (default 2).
	WorkersPerShard int
	// ResultCacheCap bounds the per-shard result tier (default 4096).
	ResultCacheCap int
	// PlanCacheCap bounds the per-shard compiled-plan tier (default 64).
	PlanCacheCap int
	// SimWorkers is the per-run trial parallelism handed to the engine;
	// serving concurrency comes from shards, so this defaults to 1.
	SimWorkers int
	// MaxTrials rejects runaway requests (default 1<<20).
	MaxTrials int
	// Baseline disables every serving optimisation: each request runs a
	// cold sim.Run with fresh per-request state. It exists so load tests
	// can price the tiers; it implies the three Disable switches.
	Baseline bool
	// DisableCache, DisableDedup and DisableBatch switch off single
	// tiers for ablation tests.
	DisableCache bool
	DisableDedup bool
	DisableBatch bool
}

// netEntry is one pinned network with its serving-time immutables
// prewarmed: structural fingerprint, adjacency, incidence bitsets. The
// cross-layer index is lazy: compiled once on the first scored request
// against this network, never per request.
type netEntry struct {
	net         *topology.Network
	fingerprint uint64
	crossOK     bool // network has located attach sites and the world has ASes
	crossOnce   sync.Once
	cross       *crosslayer.Index
	crossErr    error
}

// crossIndex compiles (once) and returns the cable->AS index.
func (ne *netEntry) crossIndex(cat *dataset.RouterCatalog) (*crosslayer.Index, error) {
	ne.crossOnce.Do(func() {
		ne.cross, ne.crossErr = crosslayer.Compile(ne.net, cat, routing.DefaultDemands())
	})
	return ne.cross, ne.crossErr
}

// worldEntry is one pinned world and its three networks keyed by
// canonical name.
type worldEntry struct {
	world *dataset.World
	nets  map[string]*netEntry
}

// Server is the scenario-serving engine. Create with New, issue requests
// with Do from any number of goroutines, and Close to tear down the
// executor fleet.
type Server struct {
	cfg        Config
	worlds     map[uint64]*worldEntry
	worldSeeds []uint64 // insertion order, for deterministic reporting
	shards     []*shard
	ests       map[string]sim.Estimator // shared per-name instances
	rootCtx    context.Context
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	uniq       atomic.Uint64 // batch-key salt when batching is disabled
	closed     atomic.Bool
}

// New builds the world fleet, prewarms the per-network immutables, and
// starts the shard executors.
func New(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 2
	}
	if cfg.ResultCacheCap <= 0 {
		cfg.ResultCacheCap = 4096
	}
	if cfg.PlanCacheCap <= 0 {
		cfg.PlanCacheCap = 64
	}
	if cfg.SimWorkers <= 0 {
		cfg.SimWorkers = 1
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 1 << 20
	}
	if cfg.Baseline {
		cfg.DisableCache, cfg.DisableDedup, cfg.DisableBatch = true, true, true
	}

	srv := &Server{
		cfg:    cfg,
		worlds: make(map[uint64]*worldEntry),
		ests: map[string]sim.Estimator{
			"is":     rare.NewIS(0),
			"is-qmc": rare.NewISQMC(0),
			"qmc":    rare.NewQMC(),
		},
	}
	for _, w := range cfg.Worlds {
		if err := srv.pinWorld(w); err != nil {
			return nil, err
		}
	}
	wcfg := dataset.DefaultWorldConfig()
	if cfg.WorldConfig != nil {
		wcfg = *cfg.WorldConfig
	}
	for _, seed := range cfg.WorldSeeds {
		if _, ok := srv.worlds[seed]; ok {
			continue
		}
		w, err := dataset.GenerateWorld(wcfg, seed)
		if err != nil {
			return nil, fmt.Errorf("serve: generating world %d: %w", seed, err)
		}
		if err := srv.pinWorld(w); err != nil {
			return nil, err
		}
	}
	if len(srv.worlds) == 0 {
		return nil, errors.New("serve: no worlds pinned; set Worlds or WorldSeeds")
	}

	srv.rootCtx, srv.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Shards; i++ {
		s := newShard(srv, i)
		srv.shards = append(srv.shards, s)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			srv.wg.Add(1)
			go s.executor(sim.NewArena())
		}
	}
	return srv, nil
}

// pinWorld validates and prewarms one world's networks: structural
// fingerprints, adjacency and incidence caches, so request-time work
// touches only tiered state.
func (srv *Server) pinWorld(w *dataset.World) error {
	if _, ok := srv.worlds[w.Seed]; ok {
		return fmt.Errorf("serve: world seed %d pinned twice", w.Seed)
	}
	we := &worldEntry{world: w, nets: make(map[string]*netEntry, 3)}
	for _, pair := range []struct {
		name string
		net  *topology.Network
	}{
		{"submarine", w.Submarine},
		{"intertubes", w.Intertubes},
		{"itu", w.ITU},
	} {
		if pair.net == nil {
			return fmt.Errorf("serve: world %d has no %s network", w.Seed, pair.name)
		}
		if err := pair.net.Validate(); err != nil {
			return fmt.Errorf("serve: world %d %s: %w", w.Seed, pair.name, err)
		}
		pair.net.Graph()
		pair.net.IncidenceBits()
		pair.net.CableIncidence()
		we.nets[pair.name] = &netEntry{
			net:         pair.net,
			fingerprint: pair.net.Fingerprint(),
			crossOK:     w.Routers != nil && len(w.Routers.ASes) > 0 && hasAttachSite(pair.net),
		}
	}
	srv.worlds[w.Seed] = we
	srv.worldSeeds = append(srv.worldSeeds, w.Seed)
	return nil
}

// hasAttachSite reports whether a network has at least one cable-touching
// node with a coordinate — the precondition for cross-layer scoring,
// checked at pin time so normalize can reject without compiling.
func hasAttachSite(net *topology.Network) bool {
	touched := make([]bool, len(net.Nodes))
	for _, c := range net.Cables {
		for _, seg := range c.Segments {
			touched[seg.A] = true
			touched[seg.B] = true
		}
	}
	for i, n := range net.Nodes {
		if touched[i] && n.HasCoord {
			return true
		}
	}
	return false
}

// WorldSeeds returns the pinned fleet's seeds in pin order.
func (srv *Server) WorldSeeds() []uint64 {
	out := make([]uint64, len(srv.worldSeeds))
	copy(out, srv.worldSeeds)
	return out
}

// normalize applies request defaults, validates against the pinned
// fleet, and derives the cache identity.
func (srv *Server) normalize(req Request) (Request, resultKey, error) {
	var key resultKey
	if req.WorldSeed == 0 {
		req.WorldSeed = srv.worldSeeds[0]
	}
	we, ok := srv.worlds[req.WorldSeed]
	if !ok {
		return req, key, fmt.Errorf("serve: world seed %d not pinned", req.WorldSeed)
	}
	if req.Network == "" {
		req.Network = "submarine"
	}
	ne, ok := we.nets[req.Network]
	if !ok {
		return req, key, fmt.Errorf("serve: unknown network %q (want submarine, intertubes or itu)", req.Network)
	}
	if req.CrossLayer && !ne.crossOK {
		return req, key, fmt.Errorf("serve: network %q has no located attach sites; cross-layer scoring unavailable", req.Network)
	}
	if req.Model == "" {
		req.Model = "uniform"
	}
	switch req.Model {
	case "uniform":
		if math.IsNaN(req.P) || req.P < 0 || req.P > 1 {
			return req, key, fmt.Errorf("serve: uniform p %v outside [0, 1]", req.P)
		}
	case "s1", "s2":
		req.P = 0 // tiered models carry their own probabilities
	default:
		return req, key, fmt.Errorf("serve: unknown model %q (want uniform, s1 or s2)", req.Model)
	}
	//gicnet:allow floatcmp exact zero is the unset sentinel, not a computed value
	if req.SpacingKm == 0 {
		req.SpacingKm = 100
	}
	if math.IsNaN(req.SpacingKm) || req.SpacingKm <= 0 || math.IsInf(req.SpacingKm, 0) {
		return req, key, fmt.Errorf("serve: spacing %v must be positive and finite", req.SpacingKm)
	}
	if req.Trials == 0 {
		req.Trials = 1024
	}
	if req.Trials < 0 || req.Trials > srv.cfg.MaxTrials {
		return req, key, fmt.Errorf("serve: trials %d outside [1, %d]", req.Trials, srv.cfg.MaxTrials)
	}
	if req.Estimator != "" {
		if _, ok := srv.ests[req.Estimator]; !ok {
			return req, key, fmt.Errorf("serve: unknown estimator %q (want is, is-qmc or qmc)", req.Estimator)
		}
	}
	key = resultKey{
		worldSeed:  req.WorldSeed,
		network:    req.Network,
		model:      req.Model,
		p:          req.P,
		spacingKm:  req.SpacingKm,
		trials:     req.Trials,
		seed:       req.Seed,
		estimator:  req.Estimator,
		crossLayer: req.CrossLayer,
	}
	return req, key, nil
}

// Do answers one scenario request: result-tier lookup, then singleflight
// join of an identical in-flight computation, then enqueue onto the
// owning shard's batch queue. ctx cancels this caller's wait only — a
// computation other requests may join is never torn down by one waiter
// leaving.
func (srv *Server) Do(ctx context.Context, req Request) (*Response, error) {
	req, key, err := srv.normalize(req)
	if err != nil {
		return nil, err
	}
	if srv.closed.Load() {
		return nil, ErrServerClosed
	}
	s := srv.shards[shardIndex(key.worldSeed, key.network, len(srv.shards))]

	if srv.cfg.Baseline {
		// Cold path: no tiers, no executors — each request prices the
		// full offline pipeline on the caller's goroutine.
		s.mu.Lock()
		s.stats.Requests++
		s.mu.Unlock()
		resp, err := s.computeBaseline(ctx, req, key)
		if err != nil {
			s.countError()
			return nil, err
		}
		return resp, nil
	}

	s.mu.Lock()
	s.stats.Requests++
	if !srv.cfg.DisableCache {
		if r, ok := s.results.get(key); ok {
			s.stats.Results.Hits++
			s.mu.Unlock()
			out := *r
			out.Provenance = ProvCache
			out.BatchSize = 0
			return &out, nil
		}
		s.stats.Results.Misses++
	}
	if !srv.cfg.DisableDedup {
		if c, ok := s.inflight[key]; ok {
			s.stats.Dedup++
			s.mu.Unlock()
			return joinCall(ctx, c)
		}
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	c := &call{req: req, key: key, done: make(chan struct{})}
	if !srv.cfg.DisableDedup {
		s.inflight[key] = c
	}
	bk := key.batchKey()
	if srv.cfg.DisableBatch {
		bk.uniq = srv.uniq.Add(1)
	}
	if _, queued := s.pending[bk]; !queued {
		s.order = append(s.order, bk)
	}
	s.pending[bk] = append(s.pending[bk], c)
	s.cond.Signal()
	s.mu.Unlock()

	select {
	case <-c.done:
		return c.resp, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// joinCall waits on another request's in-flight computation and restamps
// the shared response with dedup provenance.
func joinCall(ctx context.Context, c *call) (*Response, error) {
	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		out := *c.resp
		out.Provenance = ProvDedup
		return &out, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops the executor fleet: in-flight simulations are cancelled,
// queued calls fail with ErrServerClosed, and Close returns once every
// executor has exited. Close is idempotent.
func (srv *Server) Close() {
	if !srv.closed.CompareAndSwap(false, true) {
		return
	}
	srv.cancel()
	for _, s := range srv.shards {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	srv.wg.Wait()
}

// TierStats counts one cache tier's traffic.
type TierStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// ShardStats is one shard's serving counters.
type ShardStats struct {
	Shard           int       `json:"shard"`
	Requests        uint64    `json:"requests"`
	Results         TierStats `json:"results"`
	Plans           TierStats `json:"plans"`
	Dedup           uint64    `json:"dedup"`
	Batches         uint64    `json:"batches"`
	BatchedRequests uint64    `json:"batched_requests"`
	Coalesced       uint64    `json:"coalesced"`
	Errors          uint64    `json:"errors"`
}

// ContractionStats reports the topology-level core-contraction LRU for
// one pinned network, attributed to its owning shard.
type ContractionStats struct {
	WorldSeed uint64 `json:"world_seed"`
	Network   string `json:"network"`
	Shard     int    `json:"shard"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	Worlds       int                `json:"worlds"`
	Shards       []ShardStats       `json:"shards"`
	Contractions []ContractionStats `json:"contractions"`
}

// Stats snapshots every shard's counters and the per-network contraction
// tiers, in deterministic order.
func (srv *Server) Stats() Stats {
	st := Stats{Worlds: len(srv.worldSeeds)}
	for _, s := range srv.shards {
		st.Shards = append(st.Shards, s.snapshot())
	}
	for _, seed := range srv.worldSeeds {
		we := srv.worlds[seed]
		for _, name := range networkNames {
			ne := we.nets[name]
			hits, misses := ne.net.ContractionCacheStats()
			st.Contractions = append(st.Contractions, ContractionStats{
				WorldSeed: seed,
				Network:   name,
				Shard:     shardIndex(seed, name, len(srv.shards)),
				Hits:      hits,
				Misses:    misses,
			})
		}
	}
	return st
}

// sortCalls orders a drained batch by sweep point so execution order —
// and therefore plan-tier traffic — is independent of arrival order.
func sortCalls(calls []*call) {
	sort.Slice(calls, func(i, j int) bool {
		return calls[i].key.p < calls[j].key.p
	})
}
