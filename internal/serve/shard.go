package serve

import (
	"context"
	"sync"

	"gicnet/internal/failure"
	"gicnet/internal/rare"
	"gicnet/internal/sim"
)

// call is one enqueued request. done closes after resp/err are set; the
// owning caller reads them directly, dedup joiners copy resp and restamp
// its provenance.
type call struct {
	req  Request
	key  resultKey
	resp *Response
	err  error
	done chan struct{}
}

// shard owns a partition of the (world, network) fleet: its result tier,
// its plan tier, its singleflight table and its batch queue, drained by
// WorkersPerShard executor goroutines that each own one sim.Arena.
//
// mu guards the request-path state (results, inflight, pending, order,
// stats) and pairs with cond for executor wakeup. planMu guards the plan
// tier separately so a plan compile never blocks the cache fast path.
type shard struct {
	srv *Server
	id  int

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	results  *lru[resultKey, *Response]
	inflight map[resultKey]*call
	pending  map[batchKey][]*call
	order    []batchKey
	stats    ShardStats

	planMu    sync.Mutex
	plans     *lru[planKey, *failure.Plan]
	planStats TierStats
}

func newShard(srv *Server, id int) *shard {
	s := &shard{
		srv:      srv,
		id:       id,
		results:  newLRU[resultKey, *Response](srv.cfg.ResultCacheCap),
		inflight: make(map[resultKey]*call),
		pending:  make(map[batchKey][]*call),
		plans:    newLRU[planKey, *failure.Plan](srv.cfg.PlanCacheCap),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// executor is one worker goroutine's life: sleep until the queue has a
// batch, drain exactly one batch key's calls, run them back-to-back on
// this executor's private arena, repeat. Batching is "natural": whatever
// compatible requests accumulated while every executor was busy run as
// one sweep, with no timers — idle servers keep single-request latency,
// loaded servers coalesce automatically.
func (s *shard) executor(arena *sim.Arena) {
	defer s.srv.wg.Done()
	for {
		s.mu.Lock()
		for len(s.order) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.order) == 0 {
			s.mu.Unlock()
			return
		}
		bk := s.order[0]
		s.order = s.order[1:]
		calls := s.pending[bk]
		delete(s.pending, bk)
		s.stats.Batches++
		s.stats.BatchedRequests += uint64(len(calls))
		if len(calls) > 1 {
			s.stats.Coalesced += uint64(len(calls) - 1)
		}
		s.mu.Unlock()
		s.execBatch(calls, arena)
	}
}

// execBatch runs one coalesced batch. Calls are sorted by sweep point
// first so execution order — and with it plan-tier traffic — depends
// only on the batch's contents, never on arrival order.
func (s *shard) execBatch(calls []*call, arena *sim.Arena) {
	sortCalls(calls)
	for _, c := range calls {
		resp, err := s.compute(c.req, c.key, arena)
		if err == nil {
			resp.BatchSize = len(calls)
		}
		s.finish(c, resp, err)
	}
}

// compute answers one request through the serving tiers: plan tier for
// the compiled scenario, executor-owned arena for the trial loop. The
// run uses the server's root context — a computation is shared property
// (dedup joiners and the result tier both consume it), so only Close
// cancels it, never an individual caller.
func (s *shard) compute(req Request, key resultKey, arena *sim.Arena) (*Response, error) {
	srv := s.srv
	we := srv.worlds[key.worldSeed]
	ne := we.nets[key.network]
	plan, err := s.planFor(key, ne)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Model:     modelFor(key),
		SpacingKm: key.spacingKm,
		Trials:    key.trials,
		Seed:      key.seed,
		Workers:   srv.cfg.SimWorkers,
		Estimator: srv.ests[key.estimator], // nil on the plain path
	}
	if key.crossLayer {
		if cfg.CrossLayer, err = ne.crossIndex(we.world.Routers); err != nil {
			return nil, err
		}
	}
	res, err := arena.RunPlan(srv.rootCtx, plan, cfg)
	if err != nil {
		return nil, err
	}
	return buildResponse(req, ne, res, s.id), nil
}

// computeBaseline is the no-tier pricing path: a cold sim.Run with a
// fresh per-request estimator, on the caller's goroutine and context.
func (s *shard) computeBaseline(ctx context.Context, req Request, key resultKey) (*Response, error) {
	srv := s.srv
	we := srv.worlds[key.worldSeed]
	ne := we.nets[key.network]
	cfg := sim.Config{
		Model:     modelFor(key),
		SpacingKm: key.spacingKm,
		Trials:    key.trials,
		Seed:      key.seed,
		Workers:   srv.cfg.SimWorkers,
		Estimator: freshEstimator(key.estimator),
	}
	if key.crossLayer {
		var err error
		if cfg.CrossLayer, err = ne.crossIndex(we.world.Routers); err != nil {
			return nil, err
		}
	}
	res, err := sim.Run(ctx, ne.net, cfg)
	if err != nil {
		return nil, err
	}
	resp := buildResponse(req, ne, res, s.id)
	resp.BatchSize = 1
	return resp, nil
}

// planFor looks the scenario's compiled plan up in the shard's plan
// tier, compiling (and warming the network's contraction tier) on miss.
// The compile happens under planMu: only executors contend here, and
// holding the lock keeps a popular new scenario from compiling twice.
func (s *shard) planFor(key resultKey, ne *netEntry) (*failure.Plan, error) {
	pk := key.planKey()
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if p, ok := s.plans.get(pk); ok {
		s.planStats.Hits++
		return p, nil
	}
	s.planStats.Misses++
	plan, err := failure.Compile(ne.net, modelFor(key), key.spacingKm)
	if err != nil {
		return nil, err
	}
	// Warm the contraction tier: the core contraction of this plan's
	// at-risk set backs every connectivity-style query against the same
	// scenario family, and the network-level LRU (internal/topology)
	// shares it across all plans with that at-risk set.
	plan.Contraction()
	s.plans.put(pk, plan)
	return plan, nil
}

// finish publishes a computation's outcome: caches a private copy (the
// owner keeps the original, so cached entries are never aliased by a
// caller), clears the singleflight slot, and releases every waiter.
func (s *shard) finish(c *call, resp *Response, err error) {
	s.mu.Lock()
	if err != nil {
		s.stats.Errors++
	} else if !s.srv.cfg.DisableCache {
		cached := *resp
		s.results.put(c.key, &cached)
	}
	if !s.srv.cfg.DisableDedup {
		delete(s.inflight, c.key)
	}
	s.mu.Unlock()
	c.resp, c.err = resp, err
	close(c.done)
}

// countError attributes a baseline-path failure to the shard.
func (s *shard) countError() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// snapshot copies the shard's counters, folding in the LRUs' eviction
// counts.
func (s *shard) snapshot() ShardStats {
	s.mu.Lock()
	st := s.stats
	st.Shard = s.id
	st.Results.Evictions = s.results.evictions
	s.mu.Unlock()
	s.planMu.Lock()
	st.Plans = s.planStats
	st.Plans.Evictions = s.plans.evictions
	s.planMu.Unlock()
	return st
}

// modelFor reconstructs the failure model a canonical request names.
func modelFor(key resultKey) failure.Model {
	switch key.model {
	case "s1":
		return failure.S1()
	case "s2":
		return failure.S2()
	default:
		return failure.Uniform{P: key.p}
	}
}

// freshEstimator builds an unshared estimator instance for the baseline
// path, so pricing runs get no benefit from another request's compiled
// tilt state.
func freshEstimator(name string) sim.Estimator {
	switch name {
	case "is":
		return rare.NewIS(0)
	case "is-qmc":
		return rare.NewISQMC(0)
	case "qmc":
		return rare.NewQMC()
	}
	return nil
}

// buildResponse extracts the scalar summary and provenance block from a
// run result. It must copy everything it needs: on the arena path, res
// is arena-owned storage recycled by the batch's next call.
func buildResponse(req Request, ne *netEntry, res *sim.Result, shardID int) *Response {
	resp := &Response{
		Request:           req,
		WorldFingerprint:  ne.fingerprint,
		Fingerprint:       res.Fingerprint(),
		CableFracMean:     res.CableFrac.Mean(),
		CableFracStd:      res.CableFrac.StdDev(),
		NodeFracMean:      res.NodeFrac.Mean(),
		NodeFracStd:       res.NodeFrac.StdDev(),
		WeightedCableFrac: res.WeightedMean(func(o failure.Outcome) float64 { return o.CableFrac }),
		WeightedNodeFrac:  res.WeightedMean(func(o failure.Outcome) float64 { return o.NodeFrac }),
		ESS:               res.ESS(),
		Provenance:        ProvComputed,
		Shard:             shardID,
	}
	if len(res.Cross) > 0 && ne.cross != nil {
		intactPairs := float64(ne.cross.Intact().ReachablePairs)
		var pairs, stranded, weighted float64
		for i := range res.Cross {
			pairs += float64(res.Cross[i].ReachablePairs)
			stranded += res.Cross[i].StrandedShare
			weighted += res.Cross[i].DemandWeighted
		}
		n := float64(len(res.Cross))
		if intactPairs > 0 {
			resp.CrossReachableFrac = pairs / n / intactPairs
		}
		resp.CrossStrandedShare = stranded / n
		resp.CrossDemandWeighted = weighted / n
	}
	return resp
}
