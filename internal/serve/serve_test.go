package serve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/rare"
	"gicnet/internal/routing"
	"gicnet/internal/serve"
	"gicnet/internal/sim"
)

var (
	worldOnce sync.Once
	world     *dataset.World
	worldErr  error
)

// testWorld generates the canonical world once per test binary; every
// server in this file pins the same instance, so tests stay fast.
func testWorld(t *testing.T) *dataset.World {
	t.Helper()
	worldOnce.Do(func() {
		world, worldErr = dataset.GenerateWorld(dataset.DefaultWorldConfig(), dataset.DefaultSeed)
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return world
}

func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	cfg.Worlds = append(cfg.Worlds, testWorld(t))
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// offlineFingerprint runs the request's canonical offline equivalent —
// sim.Run with the request's own configuration and fresh state — and
// returns its fingerprint. This is the provenance contract every served
// response must match.
func offlineFingerprint(t *testing.T, w *dataset.World, req serve.Request) uint64 {
	t.Helper()
	net := w.Submarine
	switch req.Network {
	case "intertubes":
		net = w.Intertubes
	case "itu":
		net = w.ITU
	}
	var model failure.Model = failure.Uniform{P: req.P}
	switch req.Model {
	case "s1":
		model = failure.S1()
	case "s2":
		model = failure.S2()
	}
	var est sim.Estimator
	switch req.Estimator {
	case "is":
		est = rare.NewIS(0)
	case "is-qmc":
		est = rare.NewISQMC(0)
	case "qmc":
		est = rare.NewQMC()
	}
	res, err := sim.Run(context.Background(), net, sim.Config{
		Model: model, SpacingKm: req.SpacingKm,
		Trials: req.Trials, Seed: req.Seed, Workers: 1, Estimator: est,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Fingerprint()
}

// TestServedMatchesOffline is the provenance contract: across networks,
// models and estimators, a served response's fingerprint equals the
// equivalent offline sim.Run, and re-serving hits the result tier with
// the identical answer.
func TestServedMatchesOffline(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, WorkersPerShard: 2})
	reqs := []serve.Request{
		{Network: "submarine", Model: "uniform", P: 0.2, SpacingKm: 100, Trials: 256, Seed: 1},
		{Network: "intertubes", Model: "uniform", P: 0.05, SpacingKm: 150, Trials: 128, Seed: 2},
		{Network: "itu", Model: "uniform", P: 0.5, SpacingKm: 50, Trials: 64, Seed: 3},
		{Network: "submarine", Model: "s1", SpacingKm: 100, Trials: 128, Seed: 4},
		{Network: "submarine", Model: "s2", SpacingKm: 150, Trials: 128, Seed: 5},
		{Network: "submarine", Model: "uniform", P: 0.01, SpacingKm: 100, Trials: 256, Seed: 6, Estimator: "is"},
		{Network: "intertubes", Model: "uniform", P: 0.02, SpacingKm: 100, Trials: 128, Seed: 7, Estimator: "is-qmc"},
		{Network: "itu", Model: "uniform", P: 0.3, SpacingKm: 100, Trials: 128, Seed: 8, Estimator: "qmc"},
	}
	for i, req := range reqs {
		resp, err := srv.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Provenance != serve.ProvComputed {
			t.Fatalf("request %d: first serve provenance %q, want computed", i, resp.Provenance)
		}
		want := offlineFingerprint(t, testWorld(t), resp.Request)
		if resp.Fingerprint != want {
			t.Fatalf("request %d: served fingerprint %016x != offline %016x", i, resp.Fingerprint, want)
		}
		again, err := srv.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d replay: %v", i, err)
		}
		if again.Provenance != serve.ProvCache {
			t.Fatalf("request %d: second serve provenance %q, want cache", i, again.Provenance)
		}
		if again.Fingerprint != want {
			t.Fatalf("request %d: cached fingerprint %016x != offline %016x", i, again.Fingerprint, want)
		}
	}
	st := srv.Stats()
	var hits uint64
	for _, sh := range st.Shards {
		hits += sh.Results.Hits
	}
	if hits != uint64(len(reqs)) {
		t.Fatalf("result-tier hits = %d, want %d", hits, len(reqs))
	}
}

// TestDefaultsAreCanonical pins that normalization's defaults are echoed
// back and reproducible offline.
func TestDefaultsAreCanonical(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1})
	resp, err := srv.Do(context.Background(), serve.Request{P: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	echoed := resp.Request
	if echoed.WorldSeed != dataset.DefaultSeed || echoed.Network != "submarine" ||
		echoed.Model != "uniform" || echoed.SpacingKm != 100 || echoed.Trials != 1024 {
		t.Fatalf("canonicalised request %+v does not carry the documented defaults", echoed)
	}
	if want := offlineFingerprint(t, testWorld(t), echoed); resp.Fingerprint != want {
		t.Fatalf("defaulted request fingerprint %016x != offline %016x", resp.Fingerprint, want)
	}
}

// blockThenFire occupies the single executor with a long scenario, waits
// until it has been dequeued, then returns — at which point anything
// enqueued is guaranteed to sit behind the blocker.
func blockThenFire(t *testing.T, srv *serve.Server) chan error {
	t.Helper()
	blockerDone := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), serve.Request{
			Network: "submarine", Model: "uniform", P: 0.5, SpacingKm: 100,
			Trials: 1 << 19, Seed: 999,
		})
		blockerDone <- err
	}()
	for {
		st := srv.Stats()
		var batches uint64
		for _, sh := range st.Shards {
			batches += sh.Batches
		}
		if batches >= 1 {
			return blockerDone
		}
		select {
		case err := <-blockerDone:
			// Blocker already finished — too fast to occupy the executor.
			if err != nil {
				t.Fatal(err)
			}
			blockerDone <- nil
			return blockerDone
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSingleflightDedup proves identical concurrent requests compute
// once: with the lone executor occupied, eight identical requests stack
// up as one owner and seven joiners.
func TestSingleflightDedup(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1})
	blockerDone := blockThenFire(t, srv)

	req := serve.Request{Network: "submarine", Model: "uniform", P: 0.1, SpacingKm: 100, Trials: 512, Seed: 42}
	const n = 8
	resps := make([]*serve.Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Do(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}

	want := offlineFingerprint(t, testWorld(t), resps[0].Request)
	computed := 0
	for i, resp := range resps {
		if resp == nil {
			t.Fatal("missing response")
		}
		if resp.Fingerprint != want {
			t.Fatalf("response %d fingerprint %016x != offline %016x", i, resp.Fingerprint, want)
		}
		if resp.Provenance == serve.ProvComputed {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d of %d identical requests computed, want exactly 1", computed, n)
	}
	st := srv.Stats()
	if st.Shards[0].Dedup == 0 {
		t.Fatal("no singleflight joins recorded for identical concurrent requests")
	}
}

// TestBatchCoalescing proves compatible sweep points queued behind a
// busy executor run as one shared batch, and that batching changes no
// answer.
func TestBatchCoalescing(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1})
	blockerDone := blockThenFire(t, srv)

	ps := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	resps := make([]*serve.Response, len(ps))
	var wg sync.WaitGroup
	for i, p := range ps {
		wg.Add(1)
		go func(i int, p float64) {
			defer wg.Done()
			resp, err := srv.Do(context.Background(), serve.Request{
				Network: "submarine", Model: "uniform", P: p, SpacingKm: 100, Trials: 256, Seed: 7,
			})
			if err != nil {
				t.Error(err)
				return
			}
			resps[i] = resp
		}(i, p)
	}
	wg.Wait()
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}

	maxBatch := 0
	for i, resp := range resps {
		if resp == nil {
			t.Fatal("missing response")
		}
		if resp.BatchSize > maxBatch {
			maxBatch = resp.BatchSize
		}
		if want := offlineFingerprint(t, testWorld(t), resp.Request); resp.Fingerprint != want {
			t.Fatalf("sweep point %d: batched fingerprint %016x != offline %016x", i, resp.Fingerprint, want)
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing observed: max batch size %d, want >= 2", maxBatch)
	}
	st := srv.Stats()
	if st.Shards[0].Coalesced == 0 {
		t.Fatal("coalesced counter is zero despite batched responses")
	}
}

// TestResultTierEviction pins the LRU contract of the result tier: a
// tiny cache evicts, and evicted scenarios recompute to the same answer.
func TestResultTierEviction(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1, ResultCacheCap: 2})
	ctx := context.Background()
	mk := func(p float64) serve.Request {
		return serve.Request{Network: "submarine", Model: "uniform", P: p, SpacingKm: 100, Trials: 64, Seed: 1}
	}
	first, err := srv.Do(ctx, mk(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.2, 0.3} { // capacity 2: these evict 0.1
		if _, err := srv.Do(ctx, mk(p)); err != nil {
			t.Fatal(err)
		}
	}
	again, err := srv.Do(ctx, mk(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if again.Provenance != serve.ProvComputed {
		t.Fatalf("evicted scenario came back with provenance %q, want computed", again.Provenance)
	}
	if again.Fingerprint != first.Fingerprint {
		t.Fatalf("recomputed fingerprint %016x != original %016x", again.Fingerprint, first.Fingerprint)
	}
	if st := srv.Stats(); st.Shards[0].Results.Evictions == 0 {
		t.Fatal("result tier never evicted despite capacity 2 and 3 distinct scenarios")
	}
}

// TestRequestValidation pins the error surface of normalization.
func TestRequestValidation(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1, MaxTrials: 4096})
	ctx := context.Background()
	bad := []serve.Request{
		{WorldSeed: 777},                         // unpinned world
		{Network: "carrier-pigeon", P: 0.1},      // unknown network
		{Model: "meteor", P: 0.1},                // unknown model
		{P: 1.5},                                 // p out of range
		{P: -0.1},                                // p out of range
		{P: 0.1, SpacingKm: -5},                  // bad spacing
		{P: 0.1, Trials: 1 << 20},                // over MaxTrials
		{P: 0.1, Trials: -3},                     // negative trials
		{P: 0.1, Estimator: "antithetic-psychic"}, // unknown estimator
	}
	for i, req := range bad {
		if _, err := srv.Do(ctx, req); err == nil {
			t.Fatalf("bad request %d (%+v) was accepted", i, req)
		}
	}
	if st := srv.Stats(); st.Shards[0].Requests != 0 {
		t.Fatalf("rejected requests reached a shard: %d", st.Shards[0].Requests)
	}
}

// TestCloseRejectsAndDrains pins shutdown: Close returns with every
// executor gone, later Do calls fail fast, and Close is idempotent.
func TestCloseRejectsAndDrains(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, WorkersPerShard: 2})
	if _, err := srv.Do(context.Background(), serve.Request{P: 0.1, Trials: 64}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Do(context.Background(), serve.Request{P: 0.2, Trials: 64}); err != serve.ErrServerClosed {
		t.Fatalf("Do after Close returned %v, want ErrServerClosed", err)
	}
}

// TestWaiterCancellation pins that a caller abandoning its wait neither
// blocks nor tears down the shared computation.
func TestWaiterCancellation(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1})
	blockerDone := blockThenFire(t, srv)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := srv.Do(ctx, serve.Request{P: 0.1, Trials: 256, Seed: 5})
	if err != context.Canceled {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}
	// The abandoned computation still completes and lands in the cache
	// (or is recomputed) with the right answer.
	resp, err := srv.Do(context.Background(), serve.Request{P: 0.1, Trials: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := offlineFingerprint(t, testWorld(t), resp.Request); resp.Fingerprint != want {
		t.Fatalf("post-cancel fingerprint %016x != offline %016x", resp.Fingerprint, want)
	}
}

// TestConcurrentMixedLoad hammers a sharded server from many goroutines
// with a deterministic scenario mix and checks every answer against the
// per-key consensus. Run with -race, this is also the pin that the
// per-shard arena pools never hand one Arena to two goroutines — the
// sim-side guard panics if serving ever violates that.
func TestConcurrentMixedLoad(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 3, WorkersPerShard: 2, ResultCacheCap: 32})
	nets := []string{"submarine", "intertubes", "itu"}
	ests := []string{"", "is", "qmc"}
	var mu sync.Mutex
	consensus := make(map[serve.Request]uint64)

	const goroutines = 8
	const perG = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := g*perG + i
				req := serve.Request{
					Network:   nets[v%len(nets)],
					Model:     "uniform",
					P:         0.05 * float64(v%7),
					SpacingKm: 100,
					Trials:    64 + 64*(v%3),
					Seed:      uint64(v % 5),
					Estimator: ests[v%len(ests)],
				}
				resp, err := srv.Do(context.Background(), req)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, ok := consensus[resp.Request]; ok && prev != resp.Fingerprint {
					t.Errorf("request %+v served two fingerprints: %016x and %016x", resp.Request, prev, resp.Fingerprint)
				} else {
					consensus[resp.Request] = resp.Fingerprint
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	// Spot-check the consensus against offline runs.
	checked := 0
	for req, fp := range consensus {
		if checked >= 5 {
			break
		}
		if want := offlineFingerprint(t, testWorld(t), req); fp != want {
			t.Fatalf("consensus fingerprint %016x != offline %016x for %+v", fp, want, req)
		}
		checked++
	}
	st := srv.Stats()
	var total uint64
	for _, sh := range st.Shards {
		total += sh.Requests
	}
	if total != goroutines*perG {
		t.Fatalf("shard request counters sum to %d, want %d", total, goroutines*perG)
	}
}

// TestBaselineMatchesFull pins that the pricing baseline is semantically
// identical to the full engine — only slower.
func TestBaselineMatchesFull(t *testing.T) {
	full := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1})
	base := newServer(t, serve.Config{Shards: 1, WorkersPerShard: 1, Baseline: true})
	req := serve.Request{Network: "submarine", Model: "uniform", P: 0.15, SpacingKm: 100, Trials: 256, Seed: 11}
	a, err := full.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("full %016x != baseline %016x", a.Fingerprint, b.Fingerprint)
	}
	// Baseline must not cache: the same request computes again.
	b2, err := base.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Provenance != serve.ProvComputed {
		t.Fatalf("baseline replay provenance %q, want computed", b2.Provenance)
	}
}

// TestServedCrossLayer pins the cross-layer serving path: a scored request
// matches its offline equivalent bit for bit, carries distinct cache
// identity from the plain request, survives the result tier, and is
// rejected on the coordinate-free ITU network.
func TestServedCrossLayer(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, WorkersPerShard: 2})
	w := testWorld(t)
	ctx := context.Background()

	req := serve.Request{Network: "submarine", Model: "s1", SpacingKm: 150, Trials: 64, Seed: 11, CrossLayer: true}
	resp, err := srv.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := crosslayer.Compile(w.Submarine, w.Routers, routing.DefaultDemands())
	if err != nil {
		t.Fatal(err)
	}
	off, err := sim.Run(ctx, w.Submarine, sim.Config{
		Model: failure.S1(), SpacingKm: 150, Trials: 64, Seed: 11, Workers: 1, CrossLayer: idx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fingerprint != off.Fingerprint() {
		t.Fatalf("served fingerprint %016x != offline scored run %016x", resp.Fingerprint, off.Fingerprint())
	}
	if resp.CrossStrandedShare < 0 || resp.CrossStrandedShare > 1 {
		t.Fatalf("served stranded share %v outside [0, 1]", resp.CrossStrandedShare)
	}
	if resp.CrossReachableFrac <= 0 || resp.CrossReachableFrac > 1 {
		t.Fatalf("served reachable frac %v outside (0, 1]", resp.CrossReachableFrac)
	}

	// The plain request is a different cache identity with its own
	// fingerprint and no cross fields.
	plain := req
	plain.CrossLayer = false
	presp, err := srv.Do(ctx, plain)
	if err != nil {
		t.Fatal(err)
	}
	if presp.Provenance != serve.ProvComputed {
		t.Fatalf("plain variant served as %q; must not share the scored cache entry", presp.Provenance)
	}
	if presp.Fingerprint == resp.Fingerprint {
		t.Fatal("plain and scored runs share a fingerprint")
	}
	if presp.CrossReachableFrac != 0 || presp.CrossStrandedShare != 0 || presp.CrossDemandWeighted != 0 {
		t.Fatalf("plain response carries cross fields: %+v", presp)
	}

	// Cache round trip preserves the scored answer.
	again, err := srv.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Provenance != serve.ProvCache {
		t.Fatalf("second scored serve provenance %q, want cache", again.Provenance)
	}
	if again.Fingerprint != resp.Fingerprint || again.CrossStrandedShare != resp.CrossStrandedShare {
		t.Fatalf("cached scored response diverged: %+v vs %+v", again, resp)
	}

	// The ITU map exposes no coordinates: scoring must be rejected.
	if _, err := srv.Do(ctx, serve.Request{Network: "itu", Trials: 16, CrossLayer: true}); err == nil {
		t.Fatal("ITU cross-layer request must be rejected")
	}
}
