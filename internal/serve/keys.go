package serve

// resultKey is the full identity of one served scenario: every input the
// deterministic engine folds into a run's fingerprint. Two requests with
// equal resultKeys have byte-identical answers, which is what licenses
// the result tier and the singleflight join.
type resultKey struct {
	worldSeed  uint64
	network    string
	model      string
	p          float64
	spacingKm  float64
	trials     int
	seed       uint64
	estimator  string
	crossLayer bool
}

// planKey identifies one compiled failure plan: the scenario family plus
// its sweep point. Trials and seed are runtime inputs, not plan inputs,
// so they are deliberately absent — every trial budget shares the plan.
type planKey struct {
	worldSeed uint64
	network   string
	model     string
	p         float64
	spacingKm float64
}

// batchKey groups compatible requests — same world, network, model
// family, spacing, trial budget, seed and estimator — whose sweep points
// (p) can run back-to-back on one executor's arena as a shared sweep.
type batchKey struct {
	worldSeed  uint64
	network    string
	model      string
	spacingKm  float64
	trials     int
	seed       uint64
	estimator  string
	crossLayer bool
	// uniq is zero when batching is on; a unique nonzero salt otherwise,
	// which degrades every batch to a single request.
	uniq uint64
}

// batchKey projects the result identity onto its coalescing class. Sits
// on the request fast path with shardIndex, so it must stay
// allocation-free.
//
//gicnet:hotpath
//gicnet:pure
func (k resultKey) batchKey() batchKey {
	return batchKey{
		worldSeed:  k.worldSeed,
		network:    k.network,
		model:      k.model,
		spacingKm:  k.spacingKm,
		trials:     k.trials,
		seed:       k.seed,
		estimator:  k.estimator,
		crossLayer: k.crossLayer,
	}
}

// planKey projects the result identity onto the plan tier's identity.
//
//gicnet:hotpath
//gicnet:pure
func (k resultKey) planKey() planKey {
	return planKey{
		worldSeed: k.worldSeed,
		network:   k.network,
		model:     k.model,
		p:         k.p,
		spacingKm: k.spacingKm,
	}
}

// shardIndex routes a (world, network) pair to its owning shard with an
// inlined FNV-1a hash (fnv.New64a would allocate; this path runs ahead
// of every cache lookup). Routing on the pair pins each pinned network's
// plans, contractions and results to exactly one shard.
//
//gicnet:hotpath
//gicnet:pure
func shardIndex(worldSeed uint64, network string, shards int) int {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for s := 0; s < 8; s++ {
		h ^= (worldSeed >> (8 * s)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(network); i++ {
		h ^= uint64(network[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}
