package serve

// lru is a small intrusive LRU map used by the serving cache tiers (plan
// and result). Not safe for concurrent use — every instance lives under
// its shard's mutex. Entries are doubly linked in recency order; head is
// the most recently used, tail the eviction candidate.
type lru[K comparable, V any] struct {
	cap       int
	m         map[K]*lruNode[K, V]
	head      *lruNode[K, V]
	tail      *lruNode[K, V]
	evictions uint64
}

type lruNode[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruNode[K, V]
}

// newLRU returns an empty cache bounded to capacity entries (min 1).
func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[K, V]{cap: capacity, m: make(map[K]*lruNode[K, V], capacity)}
}

// get returns the cached value and refreshes its recency.
func (c *lru[K, V]) get(key K) (V, bool) {
	n, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru[K, V]) put(key K, val V) {
	if n, ok := c.m[key]; ok {
		n.val = val
		c.moveToFront(n)
		return
	}
	if len(c.m) >= c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.m, evict.key)
		c.evictions++
	}
	n := &lruNode[K, V]{key: key, val: val}
	c.m[key] = n
	c.pushFront(n)
}

// len returns the live entry count.
func (c *lru[K, V]) len() int { return len(c.m) }

func (c *lru[K, V]) moveToFront(n *lruNode[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lru[K, V]) pushFront(n *lruNode[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lru[K, V]) unlink(n *lruNode[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
