package loadtest_test

import (
	"context"
	"sync"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/serve"
	"gicnet/internal/serve/loadtest"
)

var (
	worldOnce sync.Once
	world     *dataset.World
	worldErr  error
)

func testWorld(t *testing.T) *dataset.World {
	t.Helper()
	worldOnce.Do(func() {
		world, worldErr = dataset.GenerateWorld(dataset.DefaultWorldConfig(), dataset.DefaultSeed)
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return world
}

// TestMixIsDeterministic pins that the synthetic mix is a pure function
// of its options: the loadtest is replayable and so are its answers.
func TestMixIsDeterministic(t *testing.T) {
	opts := loadtest.Options{Requests: 64}
	a := loadtest.Mix(opts)
	b := loadtest.Mix(opts)
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("mix lengths %d, %d, want 64", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mix diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSmoke is the loadtest-smoke gate: the full tiered server and the
// no-tier baseline both answer the example-workload mix, their
// order-independent mix fingerprints agree (serving optimisations change
// no answer), and the tiered server actually exercises its tiers.
func TestSmoke(t *testing.T) {
	w := testWorld(t)
	opts := loadtest.Options{Requests: 192, Concurrency: 8}

	full, err := serve.New(serve.Config{Worlds: []*dataset.World{w}, Shards: 2, WorkersPerShard: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	fullRep, err := loadtest.Run(context.Background(), full, opts)
	if err != nil {
		t.Fatal(err)
	}

	base, err := serve.New(serve.Config{Worlds: []*dataset.World{w}, Shards: 2, WorkersPerShard: 2, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	baseRep, err := loadtest.Run(context.Background(), base, opts)
	if err != nil {
		t.Fatal(err)
	}

	if fullRep.MixFingerprint != baseRep.MixFingerprint {
		t.Fatalf("tiered mix fingerprint %016x != baseline %016x: serving changed an answer",
			fullRep.MixFingerprint, baseRep.MixFingerprint)
	}
	var hits uint64
	for _, sh := range fullRep.Stats.Shards {
		hits += sh.Results.Hits
	}
	if hits == 0 {
		t.Fatal("tiered run recorded no result-cache hits on a repeating mix")
	}
	if fullRep.ReqPerSec <= 0 || fullRep.P99 <= 0 {
		t.Fatalf("degenerate report: %+v", fullRep)
	}
}
