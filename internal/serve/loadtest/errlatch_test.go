package loadtest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestErrOnceMixedConcreteTypes pins the reason errOnce exists: the
// previous atomic.Value latch panicked with "inconsistently typed value"
// when two workers raced to store errors of different concrete types
// (errors.New's *errorString vs fmt.Errorf's %w *wrapError), which is
// exactly what a load test produces when a request error races a
// connection error. errOnce must absorb the race and keep the first error.
func TestErrOnceMixedConcreteTypes(t *testing.T) {
	for round := 0; round < 100; round++ {
		var latch errOnce
		base := errors.New("request failed")
		wrapped := fmt.Errorf("dial: %w", errors.New("refused"))
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if g%2 == 0 {
					latch.record(base)
				} else {
					latch.record(wrapped)
				}
			}(g)
		}
		wg.Wait()
		got := latch.get()
		if got != base && got != wrapped {
			t.Fatalf("latched error %v is neither recorded error", got)
		}
	}
}

func TestErrOnceNilAndFirstWins(t *testing.T) {
	var latch errOnce
	if latch.get() != nil {
		t.Fatal("zero-value latch is non-nil")
	}
	latch.record(nil)
	if latch.get() != nil {
		t.Fatal("recording nil latched an error")
	}
	first := errors.New("first")
	latch.record(first)
	latch.record(errors.New("second"))
	if got := latch.get(); got != first {
		t.Fatalf("latched %v, want the first error", got)
	}
}
