// Package loadtest drives a serve.Server with a deterministic synthetic
// request mix modelled on the repo's 8 example workloads, and reports
// throughput and tail latency. The mix's answers are order-independent:
// Report.MixFingerprint folds every response fingerprint with a
// commutative sum, so a baseline (no-tier) run and a fully tiered run of
// the same mix must report the same value — the load test doubles as an
// end-to-end proof that caching, dedup and batching change no answer.
package loadtest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gicnet/internal/serve"
)

// Options shapes one load-test run.
type Options struct {
	// Requests is the total request count (default 512).
	Requests int
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// WorldSeeds cycles requests across the server's pinned fleet; leave
	// nil to aim everything at the server's default world.
	WorldSeeds []uint64
}

// Report is one run's measurements.
type Report struct {
	Requests  int           `json:"requests"`
	Errors    int           `json:"errors"`
	Duration  time.Duration `json:"duration_ns"`
	ReqPerSec float64       `json:"req_per_sec"`
	P50       time.Duration `json:"p50_ns"`
	P99       time.Duration `json:"p99_ns"`
	// MixFingerprint is the commutative (order-independent) sum of every
	// response fingerprint; equal mixes answered correctly produce equal
	// values whatever the serving configuration.
	MixFingerprint uint64 `json:"mix_fingerprint"`
	// Stats snapshots the server's counters after the run.
	Stats serve.Stats `json:"stats"`
}

// template is one example-workload shape: a family of requests indexed
// by a draw number.
type template func(worldSeed uint64, draw int) serve.Request

// templates mirrors the repo's 8 example workloads (examples/) as
// serving request families. Small parameter grids repeat across draws,
// which is exactly the locality a scenario-serving tier exists for.
var templates = []template{
	// quickstart: the paper's headline S1/S2 comparison at 150 km.
	func(ws uint64, d int) serve.Request {
		models := []string{"s1", "s2"}
		nets := []string{"submarine", "intertubes", "itu"}
		return serve.Request{WorldSeed: ws, Network: nets[d%3], Model: models[d%2], SpacingKm: 150, Trials: 256, Seed: 1}
	},
	// model-sensitivity: model family across repeater spacings.
	func(ws uint64, d int) serve.Request {
		spacings := []float64{50, 100, 150}
		models := []string{"s1", "s2"}
		return serve.Request{WorldSeed: ws, Network: "submarine", Model: models[d%2], SpacingKm: spacings[d%3], Trials: 256, Seed: 2}
	},
	// country-impact: repeated S1 scenarios, varying trial seeds.
	func(ws uint64, d int) serve.Request {
		return serve.Request{WorldSeed: ws, Network: "submarine", Model: "s1", SpacingKm: 150, Trials: 128, Seed: uint64(3 + d%4)}
	},
	// recovery-timeline: small single-storm style draws.
	func(ws uint64, d int) serve.Request {
		return serve.Request{WorldSeed: ws, Network: "submarine", Model: "s1", SpacingKm: 150, Trials: 64, Seed: uint64(10 + d%8)}
	},
	// sweep (shutdown-planning): a uniform-p grid on one seed — the
	// coalescing target: concurrent points share plan family and arena.
	func(ws uint64, d int) serve.Request {
		return serve.Request{WorldSeed: ws, Network: "submarine", Model: "uniform", P: 0.05 * float64(1+d%10), SpacingKm: 100, Trials: 256, Seed: 4}
	},
	// satellite-exposure / rare-event: tilted importance sampling at
	// small p.
	func(ws uint64, d int) serve.Request {
		ps := []float64{0.001, 0.002, 0.005}
		return serve.Request{WorldSeed: ws, Network: "submarine", Model: "uniform", P: ps[d%3], SpacingKm: 100, Trials: 256, Seed: 5, Estimator: "is"}
	},
	// traffic-shift: QMC variance-reduction runs.
	func(ws uint64, d int) serve.Request {
		return serve.Request{WorldSeed: ws, Network: "intertubes", Model: "uniform", P: 0.1 * float64(1+d%2), SpacingKm: 100, Trials: 128, Seed: 6, Estimator: "qmc"}
	},
	// topology-design: alternative-network what-ifs.
	func(ws uint64, d int) serve.Request {
		nets := []string{"intertubes", "itu"}
		return serve.Request{WorldSeed: ws, Network: nets[d%2], Model: "uniform", P: 0.1 * float64(1+d%5), SpacingKm: 100, Trials: 128, Seed: 7}
	},
}

// Mix expands opts into the deterministic request list: templates are
// interleaved round-robin and each template walks its own draw counter,
// so the mix for a given (Requests, WorldSeeds) is always the same.
func Mix(opts Options) []serve.Request {
	n := opts.Requests
	if n <= 0 {
		n = 512
	}
	seeds := opts.WorldSeeds
	if len(seeds) == 0 {
		seeds = []uint64{0} // server default world
	}
	reqs := make([]serve.Request, 0, n)
	draws := make([]int, len(templates))
	for i := 0; i < n; i++ {
		t := i % len(templates)
		reqs = append(reqs, templates[t](seeds[i%len(seeds)], draws[t]))
		draws[t]++
	}
	return reqs
}

// Run fires the mix at srv from Concurrency goroutines and measures.
func Run(ctx context.Context, srv *serve.Server, opts Options) (Report, error) {
	reqs := Mix(opts)
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 8
	}
	lats := make([]time.Duration, len(reqs))
	fps := make([]uint64, len(reqs))
	var errCount atomic.Uint64
	var firstErr errOnce
	var next atomic.Int64

	start := time.Now() //gicnet:allow determinism load-test wall-clock measurement, not simulation state
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				t0 := time.Now() //gicnet:allow determinism per-request latency measurement
				resp, err := srv.Do(ctx, reqs[i])
				lats[i] = time.Since(t0) //gicnet:allow determinism per-request latency measurement
				if err != nil {
					errCount.Add(1)
					firstErr.record(err)
					continue
				}
				fps[i] = resp.Fingerprint
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //gicnet:allow determinism load-test wall-clock measurement, not simulation state

	rep := Report{
		Requests: len(reqs),
		Errors:   int(errCount.Load()),
		Duration: elapsed,
		Stats:    srv.Stats(),
	}
	if elapsed > 0 {
		rep.ReqPerSec = float64(len(reqs)) / elapsed.Seconds()
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rep.P50 = quantile(sorted, 0.50)
	rep.P99 = quantile(sorted, 0.99)
	for _, fp := range fps {
		rep.MixFingerprint += fp // commutative: order-independent
	}
	if rep.Errors > 0 {
		return rep, fmt.Errorf("loadtest: %d/%d requests failed, first: %w", rep.Errors, rep.Requests, firstErr.get())
	}
	return rep, nil
}

// errOnce keeps the first error recorded across concurrent workers.
// atomic.Value cannot do this job: its CompareAndSwap panics with
// "inconsistently typed value" the moment two workers race errors of
// different concrete types (a *errors.errorString from a rejected request
// against a *fmt.wrapError from a failed sweep). atomic.Pointer is
// type-agnostic — it swaps a pointer to the interface value instead.
type errOnce struct {
	p atomic.Pointer[error]
}

// record stores err if no error has been recorded yet.
func (e *errOnce) record(err error) {
	if err == nil {
		return
	}
	e.p.CompareAndSwap(nil, &err)
}

// get returns the recorded error, nil if none.
func (e *errOnce) get() error {
	if p := e.p.Load(); p != nil {
		return *p
	}
	return nil
}

// quantile reads the q-th quantile from an ascending latency slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
