package population

import (
	"math"
	"testing"

	"gicnet/internal/xrand"
)

func TestDensityNonNegativeEverywhere(t *testing.T) {
	for lat := -90.0; lat <= 90; lat += 0.5 {
		if DensityAt(lat) < 0 {
			t.Fatalf("negative density at %v", lat)
		}
	}
	if DensityAt(-91) != 0 || DensityAt(91) != 0 {
		t.Error("out-of-range latitude should have zero density")
	}
}

func TestNorthernHemisphereDominates(t *testing.T) {
	m, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	north := 0.0
	for i, lat := range m.lats {
		if lat > 0 {
			north += m.mass[i]
		}
	}
	// ~87-90% of world population lives in the northern hemisphere.
	if north < 0.8 || north > 0.95 {
		t.Errorf("northern share = %v, want ~0.85-0.90", north)
	}
}

func TestCalibrationAbove40(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	got := m.FractionAbove(40)
	// Paper: "only 16% of the world population is in this region".
	if math.Abs(got-0.16) > 0.04 {
		t.Errorf("fraction above 40 = %v, want ~0.16", got)
	}
}

func TestPeakInNorthernSubtropics(t *testing.T) {
	m, _ := New(2)
	pdf := m.PDF()
	centers := m.BinCenters()
	best := 0
	for i := range pdf {
		if pdf[i] > pdf[best] {
			best = i
		}
	}
	if centers[best] < 15 || centers[best] > 40 {
		t.Errorf("population peak at %v, want in 15-40N", centers[best])
	}
}

func TestPDFSumsTo100(t *testing.T) {
	m, _ := New(2)
	sum := 0.0
	for _, v := range m.PDF() {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("PDF sums to %v", sum)
	}
}

func TestNewValidation(t *testing.T) {
	for _, w := range []float64{0, -1, 91} {
		if _, err := New(w); err == nil {
			t.Errorf("New(%v) should error", w)
		}
	}
}

func TestFractionAboveMonotone(t *testing.T) {
	m, _ := New(2)
	curve := m.ThresholdCurve([]float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90})
	if math.Abs(curve[0]-1) > 1e-9 {
		t.Errorf("fraction above 0 = %v, want 1", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Errorf("threshold curve not non-increasing at %d", i)
		}
	}
	if curve[9] > 0.001 {
		t.Errorf("fraction above 90 = %v", curve[9])
	}
}

func TestSampleLatMatchesModel(t *testing.T) {
	m, _ := New(2)
	rng := xrand.New(1)
	const n = 200000
	above40 := 0
	for i := 0; i < n; i++ {
		lat := m.SampleLat(rng)
		if lat < -90 || lat > 90 {
			t.Fatalf("sampled latitude %v out of range", lat)
		}
		if math.Abs(lat) > 40 {
			above40++
		}
	}
	got := float64(above40) / n
	want := m.FractionAbove(40)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("sampled above-40 share %v, model %v", got, want)
	}
}

func TestGridTotalAndMarginal(t *testing.T) {
	rng := xrand.New(2)
	g, err := NewGrid(7.8e9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Total()-7.8e9) > 0.02*7.8e9 {
		t.Errorf("grid total = %v, want ~7.8e9", g.Total())
	}
	m, _ := New(1)
	got := g.FractionAbove(40)
	want := m.FractionAbove(40)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("grid above-40 = %v, model %v", got, want)
	}
}

func TestGridFractionAboveEmpty(t *testing.T) {
	g := &Grid{Cells: make([][]float64, 180)}
	for i := range g.Cells {
		g.Cells[i] = make([]float64, 360)
	}
	if g.FractionAbove(40) != 0 {
		t.Error("empty grid should report 0")
	}
}

func TestBinCentersCopy(t *testing.T) {
	m, _ := New(2)
	c := m.BinCenters()
	c[0] = 12345
	if m.BinCenters()[0] == 12345 {
		t.Error("BinCenters must return a copy")
	}
}
