// Package population models the latitude distribution of world population
// (and, by the paper's §4.2.2 argument, Internet users) used as the
// comparison baseline in Figures 3 and 4.
//
// The paper uses the NASA SEDAC gridded population of the world. That
// dataset is replaced here by a compact parametric model of population
// density per degree of latitude, built from the well-known features of the
// real marginal: a dominant band between 20N and 40N (South/East Asia), a
// secondary European band around 45-55N, tropical bands, and thin southern
// tails. The model is calibrated so that ~16% of population lives above 40
// absolute latitude, the figure the paper reports.
package population

import (
	"errors"
	"math"

	"gicnet/internal/xrand"
)

// bump is one Gaussian component of the latitude mixture.
type bump struct {
	centre float64 // degrees latitude (signed)
	width  float64 // standard deviation in degrees
	weight float64 // relative mass
}

// mixture approximates the world population marginal over latitude.
// Weights are relative; the model normalises them.
var mixture = []bump{
	{centre: 25, width: 7, weight: 30},   // northern India, southern China, Middle East
	{centre: 35, width: 6, weight: 22},   // central China, Japan, Mediterranean, US south
	{centre: 15, width: 8, weight: 14},   // Sahel, southern India, SE Asia
	{centre: 5, width: 8, weight: 9},     // equatorial belt
	{centre: 48, width: 6, weight: 11},   // Europe, northern US, Canada border
	{centre: 57, width: 5, weight: 2.2},  // northern Europe
	{centre: -8, width: 7, weight: 6},    // Indonesia, Brazil north
	{centre: -22, width: 7, weight: 4},   // Brazil south, southern Africa
	{centre: -35, width: 4, weight: 1.8}, // Argentina, Australia coasts
}

// DensityAt returns the (unnormalised) population density at a latitude.
func DensityAt(lat float64) float64 {
	if lat < -90 || lat > 90 {
		return 0
	}
	d := 0.0
	for _, b := range mixture {
		z := (lat - b.centre) / b.width
		d += b.weight * math.Exp(-z*z/2)
	}
	return d
}

// Model is a discretised latitude population model.
type Model struct {
	binWidth float64
	lats     []float64 // bin centres, south to north
	mass     []float64 // normalised mass per bin, sums to 1
}

// New builds a model with the given bin width in degrees (the paper's
// Figure 3 uses 2-degree bins).
func New(binWidthDeg float64) (*Model, error) {
	if binWidthDeg <= 0 || binWidthDeg > 90 {
		return nil, errors.New("population: bin width out of range")
	}
	n := int(math.Round(180 / binWidthDeg))
	m := &Model{
		binWidth: binWidthDeg,
		lats:     make([]float64, n),
		mass:     make([]float64, n),
	}
	total := 0.0
	for i := 0; i < n; i++ {
		lat := -90 + (float64(i)+0.5)*binWidthDeg
		m.lats[i] = lat
		m.mass[i] = DensityAt(lat)
		total += m.mass[i]
	}
	for i := range m.mass {
		m.mass[i] /= total
	}
	return m, nil
}

// BinWidth returns the bin width in degrees.
func (m *Model) BinWidth() float64 { return m.binWidth }

// BinCenters returns the latitude bin centres, south to north.
func (m *Model) BinCenters() []float64 {
	return append([]float64(nil), m.lats...)
}

// PDF returns the per-bin population share as percentages summing to 100,
// aligned with BinCenters — the population series of Figure 3.
func (m *Model) PDF() []float64 {
	out := make([]float64, len(m.mass))
	for i, v := range m.mass {
		out[i] = 100 * v
	}
	return out
}

// FractionAbove returns the share of population with |lat| above the
// threshold — the population baseline of Figure 4.
func (m *Model) FractionAbove(threshold float64) float64 {
	total := 0.0
	for i, lat := range m.lats {
		if math.Abs(lat) > threshold {
			total += m.mass[i]
		}
	}
	return total
}

// ThresholdCurve evaluates FractionAbove at each threshold.
func (m *Model) ThresholdCurve(thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		out[i] = m.FractionAbove(t)
	}
	return out
}

// SampleLat draws a random latitude from the population distribution,
// uniform within the chosen bin.
func (m *Model) SampleLat(rng *xrand.Source) float64 {
	i := rng.Pick(m.mass)
	return m.lats[i] + rng.Range(-m.binWidth/2, m.binWidth/2)
}

// Grid is a coarse population grid (counts per 1-degree cell), the
// synthetic stand-in for the SEDAC gridded dataset. Longitude mass is
// spread over a latitude-dependent set of inhabited longitudes.
type Grid struct {
	// Cells[latIdx][lonIdx] holds people per cell; latIdx 0 is 90S.
	Cells [][]float64
}

// NewGrid synthesises a population grid totalling totalPeople.
func NewGrid(totalPeople float64, rng *xrand.Source) (*Grid, error) {
	m, err := New(1)
	if err != nil {
		return nil, err
	}
	g := &Grid{Cells: make([][]float64, 180)}
	for i := range g.Cells {
		g.Cells[i] = make([]float64, 360)
	}
	for i, lat := range m.lats {
		rowMass := m.mass[i] * totalPeople
		if rowMass == 0 {
			continue
		}
		// Spread row mass across a handful of "inhabited" longitude
		// clusters whose positions vary by latitude.
		clusters := 3 + rng.Intn(5)
		wsum := 0.0
		for dl := -5; dl <= 5; dl++ {
			wsum += math.Exp(-float64(dl*dl) / 8)
		}
		for c := 0; c < clusters; c++ {
			centre := rng.Intn(360)
			share := rowMass / float64(clusters)
			for dl := -5; dl <= 5; dl++ {
				lon := ((centre+dl)%360 + 360) % 360
				w := math.Exp(-float64(dl*dl) / 8)
				g.Cells[latIdx(lat)][lon] += share * w / wsum
			}
		}
	}
	return g, nil
}

func latIdx(lat float64) int {
	i := int(lat + 90)
	if i < 0 {
		i = 0
	}
	if i > 179 {
		i = 179
	}
	return i
}

// Total returns the total population on the grid.
func (g *Grid) Total() float64 {
	t := 0.0
	for _, row := range g.Cells {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// FractionAbove returns the grid population share above |lat| threshold.
func (g *Grid) FractionAbove(threshold float64) float64 {
	total, above := 0.0, 0.0
	for i, row := range g.Cells {
		lat := float64(i) - 90 + 0.5
		rowSum := 0.0
		for _, v := range row {
			rowSum += v
		}
		total += rowSum
		if math.Abs(lat) > threshold {
			above += rowSum
		}
	}
	if total == 0 {
		return 0
	}
	return above / total
}
