package graph

import (
	"testing"

	"gicnet/internal/xrand"
)

func TestBitsetBasics(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		b := NewBitset(n)
		if len(b) != BitsetWords(n) {
			t.Fatalf("n=%d: %d words, want %d", n, len(b), BitsetWords(n))
		}
		if b.Count() != 0 {
			t.Fatalf("n=%d: fresh bitset count = %d", n, b.Count())
		}
		for i := 0; i < n; i++ {
			if b.Get(i) {
				t.Fatalf("n=%d: fresh bit %d set", n, i)
			}
		}
	}
}

func TestBitsetSetGetAroundWordBoundaries(t *testing.T) {
	const n = 200
	b := NewBitset(n)
	picks := []int{0, 1, 62, 63, 64, 65, 126, 127, 128, 199}
	for _, i := range picks {
		b.Set(i)
	}
	if b.Count() != len(picks) {
		t.Errorf("count = %d, want %d", b.Count(), len(picks))
	}
	want := make(map[int]bool, len(picks))
	for _, i := range picks {
		want[i] = true
	}
	for i := 0; i < n; i++ {
		if b.Get(i) != want[i] {
			t.Errorf("bit %d = %v, want %v", i, b.Get(i), want[i])
		}
	}
	b.Unset(63)
	b.Unset(64)
	if b.Get(63) || b.Get(64) {
		t.Error("unset bits still readable")
	}
	if b.Count() != len(picks)-2 {
		t.Errorf("count after unset = %d", b.Count())
	}
	b.Clear()
	if b.Count() != 0 {
		t.Errorf("count after clear = %d", b.Count())
	}
}

func TestBitsetSetRange(t *testing.T) {
	const n = 300
	cases := [][2]int{
		{0, 0}, {5, 5}, {7, 3}, // empty and inverted ranges: no-ops
		{0, 1}, {0, 64}, {0, 65}, {63, 64}, {63, 65}, {64, 128},
		{10, 20}, {60, 70}, {1, 299}, {0, 300}, {255, 256}, {192, 300},
	}
	for _, c := range cases {
		lo, hi := c[0], c[1]
		b := NewBitset(n)
		b.SetRange(lo, hi)
		for i := 0; i < n; i++ {
			want := i >= lo && i < hi
			if b.Get(i) != want {
				t.Fatalf("SetRange(%d,%d): bit %d = %v, want %v", lo, hi, i, b.Get(i), want)
			}
		}
		// Ranges accumulate like individual Sets.
		b.SetRange(lo, hi)
		if want := hi - lo; hi > lo && b.Count() != want {
			t.Fatalf("SetRange(%d,%d) twice: count = %d, want %d", lo, hi, b.Count(), want)
		}
	}
	// Random ranges against the one-bit-at-a-time reference.
	rng := xrand.New(11)
	ref := NewBitset(n)
	got := NewBitset(n)
	for trial := 0; trial < 200; trial++ {
		lo, hi := rng.Intn(n), rng.Intn(n+1)
		got.SetRange(lo, hi)
		for i := lo; i < hi; i++ {
			ref.Set(i)
		}
	}
	for i := 0; i < n; i++ {
		if got.Get(i) != ref.Get(i) {
			t.Fatalf("random ranges: bit %d = %v, want %v", i, got.Get(i), ref.Get(i))
		}
	}
}

func TestBitsetCopyExpandGrow(t *testing.T) {
	const n = 131
	src := NewBitset(n)
	rng := xrand.New(7)
	ref := make([]bool, n)
	for i := range ref {
		if rng.Bool(0.3) {
			ref[i] = true
			src.Set(i)
		}
	}
	dst := NewBitset(n)
	dst.CopyFrom(src)
	got := make([]bool, n)
	dst.Expand(got)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("bit %d: copy/expand = %v, want %v", i, got[i], ref[i])
		}
	}

	// GrowBitset reuses capacity and clears.
	grown := GrowBitset(dst, 64)
	if len(grown) != 1 {
		t.Errorf("grown to %d words, want 1", len(grown))
	}
	if grown.Count() != 0 {
		t.Error("GrowBitset did not clear reused words")
	}
	bigger := GrowBitset(grown, 10*64+1)
	if len(bigger) != 11 || bigger.Count() != 0 {
		t.Errorf("bigger = %d words count %d", len(bigger), bigger.Count())
	}
}

// TestScratchBitsVariantsAgree cross-checks ComponentsBits/AnyConnectedBits
// against the AliveMask-based originals on random graphs and masks.
func TestScratchBitsVariantsAgree(t *testing.T) {
	rng := xrand.New(0xb175)
	for gi := 0; gi < 20; gi++ {
		r := rng.SplitAt(uint64(gi))
		n := 2 + r.Intn(30)
		m := r.Intn(3 * n)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode("")
		}
		for e := 0; e < m; e++ {
			g.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
		}
		mask := make(AliveMask, g.NumEdges())
		dead := NewBitset(g.NumEdges())
		for e := range mask {
			mask[e] = r.Bool(0.6)
			if !mask[e] {
				dead.Set(e)
			}
		}
		s := g.NewScratch()
		wantSets := s.Components(mask).Sets()
		gotSets := s.ComponentsBits(dead).Sets()
		if wantSets != gotSets {
			t.Fatalf("graph %d: Components sees %d sets, ComponentsBits %d", gi, wantSets, gotSets)
		}
		for trial := 0; trial < 8; trial++ {
			from := []NodeID{NodeID(r.Intn(n))}
			to := []NodeID{NodeID(r.Intn(n)), NodeID(r.Intn(n))}
			want := s.AnyConnected(mask, from, to)
			got := s.AnyConnectedBits(dead, from, to)
			if want != got {
				t.Fatalf("graph %d: AnyConnected=%v AnyConnectedBits=%v for %v->%v", gi, want, got, from, to)
			}
		}
		// nil bitset means fully alive
		if !s.AnyConnectedBits(nil, []NodeID{0}, []NodeID{0}) {
			t.Fatal("nil dead set: node not connected to itself")
		}
	}
}
