package graph

import (
	"testing"
	"testing/quick"

	"gicnet/internal/xrand"
)

// buildPath returns a path graph 0-1-2-...-n-1 and its edge IDs.
func buildPath(n int) (*Graph, []EdgeID) {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	edges := make([]EdgeID, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, g.AddEdge(NodeID(i), NodeID(i+1)))
	}
	return g, edges
}

func TestAddNodeEdgeCounts(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	e := g.AddEdge(a, b)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if got := g.EdgeAt(e); got.A != a || got.B != b {
		t.Errorf("EdgeAt = %+v", got)
	}
	if lbl, err := g.Label(a); err != nil || lbl != "a" {
		t.Errorf("Label = %q, %v", lbl, err)
	}
	if _, err := g.Label(NodeID(99)); err == nil {
		t.Error("Label(99) should error")
	}
}

func TestAddEdgePanicsOnBadNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g := New()
	g.AddNode("only")
	g.AddEdge(0, 5)
}

func TestOtherAndDegree(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	e := g.AddEdge(a, b)
	if g.Other(e, a) != b || g.Other(e, b) != a {
		t.Error("Other broken")
	}
	loop := g.AddEdge(a, a)
	if g.Other(loop, a) != a {
		t.Error("self-loop Other broken")
	}
	if g.Degree(a) != 2 || g.Degree(b) != 1 {
		t.Errorf("degrees = %d, %d", g.Degree(a), g.Degree(b))
	}
}

func TestComponentsAllAlive(t *testing.T) {
	g, _ := buildPath(5)
	g.AddNode("isolated")
	labels, count := g.Components(nil)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	for i := 1; i < 5; i++ {
		if labels[i] != labels[0] {
			t.Errorf("path node %d in different component", i)
		}
	}
	if labels[5] == labels[0] {
		t.Error("isolated node joined the path")
	}
}

func TestComponentsWithMask(t *testing.T) {
	g, edges := buildPath(5)
	mask := make(AliveMask, len(edges))
	for i := range mask {
		mask[i] = true
	}
	mask[2] = false // cut 2-3
	labels, count := g.Components(mask)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] {
		t.Errorf("unexpected labels %v", labels)
	}
}

func TestParallelEdgesRedundancy(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := g.AddEdge(a, b)
	e2 := g.AddEdge(a, b)
	mask := AliveMask{false, true}
	_ = e1
	_ = e2
	ok, err := g.SameComponent(a, b, mask)
	if err != nil || !ok {
		t.Error("parallel edge should keep nodes connected")
	}
}

func TestReachable(t *testing.T) {
	g, edges := buildPath(6)
	mask := make(AliveMask, len(edges))
	for i := range mask {
		mask[i] = true
	}
	mask[3] = false // cut 3-4
	got, err := g.Reachable(0, mask)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("reachable = %d nodes, want 4", len(got))
	}
	if got[NodeID(4)] || got[NodeID(5)] {
		t.Error("nodes beyond the cut should be unreachable")
	}
	if _, err := g.Reachable(NodeID(-1), nil); err == nil {
		t.Error("Reachable(-1) should error")
	}
}

func TestIsolated(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddNode("never-connected")
	e1 := g.AddEdge(a, b)
	e2 := g.AddEdge(b, c)
	mask := make(AliveMask, 2)
	mask[e1] = false
	mask[e2] = true
	iso := g.Isolated(mask)
	if len(iso) != 1 || iso[0] != a {
		t.Errorf("Isolated = %v, want [a]; node with an alive edge or no edges must not count", iso)
	}
}

func TestIsolatedAllDead(t *testing.T) {
	g, edges := buildPath(4)
	mask := make(AliveMask, len(edges)) // all false
	iso := g.Isolated(mask)
	if len(iso) != 4 {
		t.Errorf("all-dead path: %d isolated, want 4", len(iso))
	}
}

func TestLargestComponentSize(t *testing.T) {
	g := New()
	for i := 0; i < 7; i++ {
		g.AddNode("")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if got := g.LargestComponentSize(nil); got != 3 {
		t.Errorf("LargestComponentSize = %d, want 3", got)
	}
}

func TestSameComponentErrors(t *testing.T) {
	g, _ := buildPath(2)
	if _, err := g.SameComponent(0, NodeID(9), nil); err == nil {
		t.Error("want error")
	}
}

func TestArticulationPointsPath(t *testing.T) {
	g, _ := buildPath(5)
	aps := g.ArticulationPoints()
	want := []NodeID{1, 2, 3}
	if len(aps) != len(want) {
		t.Fatalf("APs = %v, want %v", aps, want)
	}
	for i := range want {
		if aps[i] != want[i] {
			t.Fatalf("APs = %v, want %v", aps, want)
		}
	}
}

func TestArticulationPointsCycle(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNode("")
	}
	for i := 0; i < 5; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%5))
	}
	if aps := g.ArticulationPoints(); len(aps) != 0 {
		t.Errorf("cycle has no APs, got %v", aps)
	}
}

func TestArticulationPointsBridgeBetweenCycles(t *testing.T) {
	// two triangles joined at node 2 via node 3: 0-1-2-0, 3-4-5-3, edge 2-3
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode("")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(2, 3)
	aps := g.ArticulationPoints()
	if len(aps) != 2 || aps[0] != 2 || aps[1] != 3 {
		t.Errorf("APs = %v, want [2 3]", aps)
	}
}

func TestArticulationPointsParallelEdge(t *testing.T) {
	// 0=1-2 : parallel edges between 0 and 1, bridge 1-2.
	// Node 1 is an AP (cuts off 2); node 0 is not.
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode("")
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	aps := g.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 1 {
		t.Errorf("APs = %v, want [1]", aps)
	}
}

func TestArticulationPointsSelfLoop(t *testing.T) {
	g, _ := buildPath(3)
	g.AddEdge(1, 1) // self loop must not crash or change AP status semantics
	aps := g.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 1 {
		t.Errorf("APs = %v, want [1]", aps)
	}
}

func TestArticulationPointsLargePathIterative(t *testing.T) {
	// Deep path exercises the iterative implementation (recursive version
	// would blow the stack far later, but depth 50k is a sanity check).
	const n = 50000
	g, _ := buildPath(n)
	aps := g.ArticulationPoints()
	if len(aps) != n-2 {
		t.Errorf("path of %d: %d APs, want %d", n, len(aps), n-2)
	}
}

func TestComponentsMatchReachableProperty(t *testing.T) {
	// Random graph + random mask: nodes are in the same component iff
	// mutually reachable by BFS.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(30)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode("")
		}
		m := rng.Intn(60)
		mask := make(AliveMask, 0, m)
		for i := 0; i < m; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
			mask = append(mask, rng.Bool(0.7))
		}
		labels, _ := g.Components(mask)
		a := NodeID(rng.Intn(n))
		reach, err := g.Reachable(a, mask)
		if err != nil {
			return false
		}
		for b := 0; b < n; b++ {
			same := labels[a] == labels[b]
			if same != reach[NodeID(b)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union should not merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", uf.Sets())
	}
	if !uf.Connected(1, 2) {
		t.Error("1 and 2 should connect through unions")
	}
	if uf.Connected(0, 4) {
		t.Error("4 should be separate")
	}
}

func TestUnionFindCompactLabels(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 2)
	uf.Union(2, 4)
	uf.Union(1, 5)
	labels, count := uf.CompactLabels()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[2] || labels[2] != labels[4] {
		t.Error("even chain labels differ")
	}
	if labels[1] != labels[5] {
		t.Error("1 and 5 labels differ")
	}
	for _, l := range labels {
		if l < 0 || l >= count {
			t.Errorf("label %d out of range", l)
		}
	}
}

func TestUnionFindTransitiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(50)
		uf := NewUnionFind(n)
		// naive labelling for cross-check
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		relabel := func(from, to int) {
			for i := range naive {
				if naive[i] == from {
					naive[i] = to
				}
			}
		}
		for k := 0; k < 60; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			uf.Union(a, b)
			relabel(naive[a], naive[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Connected(i, j) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkComponents(b *testing.B) {
	rng := xrand.New(1)
	g := New()
	const n = 10000
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	mask := make(AliveMask, 0, 20000)
	for i := 0; i < 20000; i++ {
		g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		mask = append(mask, rng.Bool(0.8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Components(mask)
	}
}
