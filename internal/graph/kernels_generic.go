//go:build purego || (!amd64 && !arm64)

package graph

// Pure-Go kernel selection: the unrolled reference loops from kernels.go
// are the implementation. This file is chosen on every GOARCH without a
// dedicated assembly backend and on any build carrying the `purego` escape
// tag, which exists so the whole engine can be built and differentially
// tested with zero assembly in play (`go test -tags purego ./...`).

//gicnet:hotpath
func popcountWords(w []uint64) int { return popcountWordsGo(w) }

//gicnet:hotpath
func countAndNot(a, b []uint64) int { return countAndNotGo(a, b) }

//gicnet:hotpath
func andNotAny(a, b []uint64) bool { return andNotAnyGo(a, b) }

func cpuFeatures() string { return "generic" }
