package graph

import (
	"fmt"
	"testing"
)

// FuzzCoreContraction drives the contracted engine with arbitrary bytes:
// the input encodes a small multigraph, a class map, an at-risk set, and a
// dead mask of arbitrary length (deliberately allowed to be malformed —
// short, oversized, or with stray bits). The engine must never panic, and
// its component count and pair verdicts must agree with the direct
// ComponentsBits path on the normalized equivalent mask.
func FuzzCoreContraction(f *testing.F) {
	// Bitset-corpus seeds: word patterns that exercise boundaries of the
	// packed representation (empty, single word, all ones, alternating,
	// stray high bits, multi-word).
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{8, 12, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{16, 40, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add([]byte{31, 90, 0x00, 0x80, 0x00, 0x80, 0x01, 0x02, 0x03, 0x04})
	f.Add([]byte{
		5, 9,
		0, 1, 1, 2, 2, 3, 3, 4, 4, 0, 0, 2, 1, 3, 2, 4, 0, 0,
		0, 1, 2, 0, 1, 2, 0, 1, 2,
		0b101,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		n := 1 + int(next())%32
		m := int(next()) % 96
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < m; e++ {
			g.AddEdge(NodeID(int(next())%n), NodeID(int(next())%n))
		}

		// Class map: identity when the input byte says so, otherwise a
		// byte-driven grouping clamped into range.
		var classOf []int32
		numClasses := m
		if m > 0 && next()%2 == 1 {
			numClasses = 1 + int(next())%m
			classOf = make([]int32, m)
			for e := range classOf {
				classOf[e] = int32(int(next()) % numClasses)
			}
		}

		// At-risk set straight from input bytes (may be short: missing
		// words read as not-at-risk).
		atRisk := make(Bitset, BitsetWords(numClasses))
		for wi := range atRisk {
			var w uint64
			for b := 0; b < 8; b++ {
				w |= uint64(next()) << (8 * b)
			}
			atRisk[wi] = w
		}

		// Dead mask: whatever bytes remain, at whatever length — including
		// none, fewer words than classes, or far more.
		deadClasses := make(Bitset, (len(data)+7)/8)
		for wi := range deadClasses {
			var w uint64
			for b := 0; b < 8; b++ {
				w |= uint64(next()) << (8 * b)
			}
			deadClasses[wi] = w
		}

		cc := NewCoreContraction(g, classOf, numClasses, atRisk)
		scratch := g.NewScratch()
		ufCore := scratch.ComponentsCore(cc, deadClasses)
		coreSets := ufCore.Sets()

		// Direct reference on the normalized projection of the same mask.
		c := randomContractionCase{g: g, classOf: classOf, numClasses: numClasses, atRisk: atRisk}
		deadEdges := c.effectiveDeadEdges(deadClasses)
		scratchDirect := g.NewScratch()
		ufDirect := scratchDirect.ComponentsBits(deadEdges)
		if directSets := ufDirect.Sets(); coreSets != directSets {
			t.Fatalf("component count: contracted %d, direct %d (n=%d m=%d classes=%d)",
				coreSets, directSets, n, m, numClasses)
		}
		for a := 0; a < n; a++ {
			la := ufCore.Find(int(cc.Super(NodeID(a))))
			da := ufDirect.Find(a)
			for b := a + 1; b < n; b++ {
				core := la == ufCore.Find(int(cc.Super(NodeID(b))))
				direct := da == ufDirect.Find(b)
				if core != direct {
					t.Fatalf("pair (%d,%d): contracted %v, direct %v", a, b, core, direct)
				}
			}
		}
	})
}
