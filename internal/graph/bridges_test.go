package graph

import (
	"testing"
	"testing/quick"

	"gicnet/internal/xrand"
)

func TestBridgesPath(t *testing.T) {
	g, edges := buildPath(4)
	bridges := g.Bridges()
	if len(bridges) != len(edges) {
		t.Fatalf("path bridges = %v, want all %d edges", bridges, len(edges))
	}
}

func TestBridgesCycleHasNone(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode("")
	}
	for i := 0; i < 4; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%4))
	}
	if bridges := g.Bridges(); len(bridges) != 0 {
		t.Errorf("cycle bridges = %v", bridges)
	}
}

func TestBridgesParallelEdgesNotBridges(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b)
	g.AddEdge(a, b)           // parallel: neither is a bridge
	bridge := g.AddEdge(b, c) // single connection: bridge
	bridges := g.Bridges()
	if len(bridges) != 1 || bridges[0] != bridge {
		t.Errorf("bridges = %v, want [%d]", bridges, bridge)
	}
}

func TestBridgesSelfLoopIgnored(t *testing.T) {
	g, _ := buildPath(3)
	g.AddEdge(1, 1)
	if got := len(g.Bridges()); got != 2 {
		t.Errorf("bridges = %d, want 2", got)
	}
}

func TestBridgesTwoTrianglesJoined(t *testing.T) {
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode("")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	join := g.AddEdge(2, 3)
	bridges := g.Bridges()
	if len(bridges) != 1 || bridges[0] != join {
		t.Errorf("bridges = %v, want [%d]", bridges, join)
	}
}

func TestBridgesMatchDefinitionProperty(t *testing.T) {
	// An edge is a bridge iff removing it increases the component count.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(16)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode("")
		}
		m := rng.Intn(28)
		for i := 0; i < m; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		_, base := g.Components(nil)
		isBridge := map[EdgeID]bool{}
		for _, b := range g.Bridges() {
			isBridge[b] = true
		}
		mask := make(AliveMask, g.NumEdges())
		for e := 0; e < g.NumEdges(); e++ {
			for i := range mask {
				mask[i] = true
			}
			mask[e] = false
			_, count := g.Components(mask)
			if (count > base) != isBridge[EdgeID(e)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
