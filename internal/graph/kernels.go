package graph

import "math/bits"

// This file is the architecture-independent face of the batched bitset
// kernels: multi-word popcount / and-not sweeps that the Monte Carlo block
// evaluator (failure.Plan.EvaluateBatch) and the Bitset methods run on.
// Each primitive has three implementations selected at build time:
//
//   - kernels_amd64.go / kernels_amd64.s — AVX2 assembly (4 words per
//     vector step, positional-nibble VPSHUFB popcount), chosen at runtime
//     by CPUID feature detection with the unrolled Go loop as fallback;
//   - kernels_arm64.go / kernels_arm64.s — NEON assembly (VCNT byte
//     popcount, 2 words per step; NEON is baseline on arm64, no dispatch);
//   - kernels_generic.go — the unrolled pure-Go loops below, used on every
//     other GOARCH and whenever the build sets the `purego` tag.
//
// The Go loops in this file are the reference semantics: every assembly
// implementation must agree with them bit for bit on any input, which
// TestBitsetKernels and FuzzBitsetKernels enforce across adversarial
// tail-word shapes (lengths 0–257 bits).

// PopcountWords returns the number of set bits across every word of w.
// It is Bitset.Count for a raw word slice: block evaluation counts each
// trial's failed cables through it, so it dispatches to the widest
// popcount the CPU offers.
//
//gicnet:hotpath
func PopcountWords(w []uint64) int { return popcountWords(w) }

// CountAndNot returns the number of bits set in a and clear in b — the
// popcount of a &~ b without materialising the difference. a and b must
// have the same word length.
//
//gicnet:hotpath
func CountAndNot(a, b Bitset) int { return countAndNot(a, b[:len(a)]) }

// AndNotAny reports whether any bit of a is clear in b, i.e. whether
// a &~ b is non-empty. It is the word-level form of "is a a subset of b"
// (negated) and exits on the first witness word. a and b must have the
// same word length.
//
//gicnet:hotpath
func AndNotAny(a, b Bitset) bool { return andNotAny(a, b[:len(a)]) }

// Count returns the number of set bits.
//
//gicnet:hotpath
func (b Bitset) Count() int { return popcountWords(b) }

// popcountWordsGo is the unrolled scalar popcount: four independent
// OnesCount64 chains per iteration so the adds pipeline instead of
// serialising on one accumulator. It is the generic-build kernel and the
// short-slice / tail path of the assembly builds.
//
//gicnet:hotpath
func popcountWordsGo(w []uint64) int {
	n := 0
	i := 0
	for ; i+4 <= len(w); i += 4 {
		n += bits.OnesCount64(w[i]) + bits.OnesCount64(w[i+1]) +
			bits.OnesCount64(w[i+2]) + bits.OnesCount64(w[i+3])
	}
	for ; i < len(w); i++ {
		n += bits.OnesCount64(w[i])
	}
	return n
}

// countAndNotGo is the unrolled scalar a &~ b popcount; see popcountWordsGo.
//
//gicnet:hotpath
func countAndNotGo(a, b []uint64) int {
	b = b[:len(a)]
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]&^b[i]) + bits.OnesCount64(a[i+1]&^b[i+1]) +
			bits.OnesCount64(a[i+2]&^b[i+2]) + bits.OnesCount64(a[i+3]&^b[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i] &^ b[i])
	}
	return n
}

// andNotAnyGo is the unrolled scalar any-bit test: it folds four words of
// a &~ b into one OR before branching, so the common all-zero prefix costs
// one predictable branch per four words while still exiting within a
// four-word window of the first witness.
//
//gicnet:hotpath
func andNotAnyGo(a, b []uint64) bool {
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		if a[i]&^b[i]|a[i+1]&^b[i+1]|a[i+2]&^b[i+2]|a[i+3]&^b[i+3] != 0 {
			return true
		}
	}
	for ; i < len(a); i++ {
		if a[i]&^b[i] != 0 {
			return true
		}
	}
	return false
}

// Transpose64 transposes a 64×64 bit matrix in place: after the call, bit
// j of a[i] equals bit i of the original a[j] (bit positions count from
// the LSB). It is the pivot between the trial-block layouts: rows are
// per-trial dead-cable words, columns are per-cable trial masks, and the
// block evaluator flips between them once per word instead of once per
// (cable, trial) pair. Branch-free butterfly exchange, log2(64) passes.
//
//gicnet:hotpath
func Transpose64(a *[64]uint64) {
	j := uint(32)
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>j ^ a[k+j]) & m
			a[k] ^= t << j
			a[k+j] ^= t
		}
		j >>= 1
		m ^= m << j
	}
}

// CPUFeatures names the bitset-kernel flavour this binary runs:
// "avx2" (amd64 with runtime AVX2 support), "neon" (arm64), or "generic"
// (the pure-Go loops: `purego` builds, other GOARCHes, or amd64 CPUs
// without AVX2). Benchmark snapshots record it so performance gates are
// never compared across incompatible kernel flavours.
func CPUFeatures() string { return cpuFeatures() }
