//go:build amd64 && !purego

#include "textflag.h"

// AVX2 bitset kernels. The popcount core is the positional-nibble method:
// VPSHUFB looks 32 low and 32 high nibbles up in a per-byte popcount table
// at once, VPSADBW folds the byte counts into four per-lane qword sums,
// and one VPADDQ accumulates — 4 input words per step with no data-
// dependent branches. Tails (len % 4 words) run through scalar POPCNT so
// the routines accept any slice length.

// Per-byte popcount of the 16 nibble values, repeated across both 128-bit
// lanes (VPSHUFB indexes within each lane).
DATA popcntLUT<>+0x00(SB)/8, $0x0302020102010100
DATA popcntLUT<>+0x08(SB)/8, $0x0403030203020201
DATA popcntLUT<>+0x10(SB)/8, $0x0302020102010100
DATA popcntLUT<>+0x18(SB)/8, $0x0403030203020201
GLOBL popcntLUT<>(SB), RODATA|NOPTR, $32

DATA nibbleMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $32

// func popcountWordsAVX2(w []uint64) int
TEXT ·popcountWordsAVX2(SB), NOSPLIT, $0-32
	MOVQ w_base+0(FP), SI
	MOVQ w_len+8(FP), CX
	VPXOR Y7, Y7, Y7              // qword accumulators
	VPXOR Y6, Y6, Y6              // zero operand for VPSADBW
	VMOVDQU popcntLUT<>(SB), Y4
	VMOVDQU nibbleMask<>(SB), Y5
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   reduce
loop:
	VMOVDQU (SI), Y0
	ADDQ $32, SI
	VPAND   Y5, Y0, Y1            // low nibbles
	VPSRLW  $4, Y0, Y0
	VPAND   Y5, Y0, Y0            // high nibbles
	VPSHUFB Y1, Y4, Y1            // per-byte counts of the low nibbles
	VPSHUFB Y0, Y4, Y0            // per-byte counts of the high nibbles
	VPADDB  Y1, Y0, Y0            // per-byte popcounts (max 8, no overflow)
	VPSADBW Y6, Y0, Y0            // per-lane byte sums -> 4 qwords
	VPADDQ  Y0, Y7, Y7
	DECQ DX
	JNZ  loop
reduce:
	VEXTRACTI128 $1, Y7, X0
	VPADDQ  X0, X7, X7
	VPSHUFD $0x4E, X7, X0         // swap the two qwords
	VPADDQ  X0, X7, X7
	MOVQ X7, AX
	VZEROUPPER
	ANDQ $3, CX
	JZ   done
tail:
	POPCNTQ (SI), DX
	ADDQ DX, AX
	ADDQ $8, SI
	DECQ CX
	JNZ  tail
done:
	MOVQ AX, ret+24(FP)
	RET

// func countAndNotAVX2(a, b []uint64) int
TEXT ·countAndNotAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	VPXOR Y7, Y7, Y7
	VPXOR Y6, Y6, Y6
	VMOVDQU popcntLUT<>(SB), Y4
	VMOVDQU nibbleMask<>(SB), Y5
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   reduce
loop:
	VMOVDQU (SI), Y0
	VMOVDQU (DI), Y1
	ADDQ $32, SI
	ADDQ $32, DI
	VPANDN  Y0, Y1, Y0            // a &^ b
	VPAND   Y5, Y0, Y1
	VPSRLW  $4, Y0, Y0
	VPAND   Y5, Y0, Y0
	VPSHUFB Y1, Y4, Y1
	VPSHUFB Y0, Y4, Y0
	VPADDB  Y1, Y0, Y0
	VPSADBW Y6, Y0, Y0
	VPADDQ  Y0, Y7, Y7
	DECQ DX
	JNZ  loop
reduce:
	VEXTRACTI128 $1, Y7, X0
	VPADDQ  X0, X7, X7
	VPSHUFD $0x4E, X7, X0
	VPADDQ  X0, X7, X7
	MOVQ X7, AX
	VZEROUPPER
	ANDQ $3, CX
	JZ   done
tail:
	MOVQ (DI), DX
	NOTQ DX
	ANDQ (SI), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  tail
done:
	MOVQ AX, ret+48(FP)
	RET

// func andNotAnyAVX2(a, b []uint64) bool
TEXT ·andNotAnyAVX2(SB), NOSPLIT, $0-49
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   tailsetup
loop:
	VMOVDQU (SI), Y0
	VMOVDQU (DI), Y1
	ADDQ $32, SI
	ADDQ $32, DI
	VPANDN Y0, Y1, Y0             // a &^ b
	VPTEST Y0, Y0
	JNZ  foundavx
	DECQ DX
	JNZ  loop
	VZEROUPPER
tailsetup:
	ANDQ $3, CX
	JZ   none
tail:
	MOVQ (DI), DX
	NOTQ DX
	ANDQ (SI), DX
	JNZ  found
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  tail
none:
	MOVB $0, ret+48(FP)
	RET
foundavx:
	VZEROUPPER
found:
	MOVB $1, ret+48(FP)
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
