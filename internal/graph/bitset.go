package graph

import "math/bits"

// Bitset is a packed bit vector over dense indices (cable or edge IDs),
// one uint64 per 64 bits. It is the dead-mask representation of the Monte
// Carlo kernel: clearing is a memclr, counting is word-level popcount, and
// "are all of these bits set" reduces to a word AND against a mask.
//
// Bits at indices >= the logical size must stay zero; every mutator in
// this package and in the failure kernel only touches valid indices, so
// Count and word-level scans never see stray bits.
type Bitset []uint64

// BitsetWords returns the number of words needed to hold n bits.
func BitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns a zeroed bitset with capacity for n bits.
func NewBitset(n int) Bitset { return make(Bitset, BitsetWords(n)) }

// GrowBitset returns dst resized and cleared to hold n bits, reusing the
// backing array when it is large enough.
func GrowBitset(dst Bitset, n int) Bitset {
	w := BitsetWords(n)
	if cap(dst) < w {
		return make(Bitset, w)
	}
	dst = dst[:w]
	dst.Clear()
	return dst
}

// Get reports whether bit i is set.
//
//gicnet:hotpath
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
//
//gicnet:hotpath
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Unset clears bit i.
//
//gicnet:hotpath
func (b Bitset) Unset(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// SetRange sets every bit in [lo, hi), filling whole words where it can —
// the fast path for marking a dead cable's contiguous block of edge IDs.
//
//gicnet:hotpath
func (b Bitset) SetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if loW == hiW {
		b[loW] |= loMask & hiMask
		return
	}
	b[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		b[w] = ^uint64(0)
	}
	b[hiW] |= hiMask
}

// Clear zeroes every word; the compiler lowers the loop to a memclr.
//
//gicnet:hotpath
func (b Bitset) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// CopyFrom overwrites b with src; both must have the same word length.
//
//gicnet:hotpath
func (b Bitset) CopyFrom(src Bitset) { copy(b, src) }

// Expand unpacks the first len(dst) bits into a bool slice, for callers
// that still speak the unpacked representation. The false-fill is a bulk
// memclr and only the set bits are visited, via a trailing-zeros walk, so
// sparse masks (the common Monte Carlo case) cost O(words + popcount)
// instead of one bounds-checked Get per bit.
//
//gicnet:hotpath
func (b Bitset) Expand(dst []bool) {
	for i := range dst {
		dst[i] = false
	}
	for wi, w := range b {
		base := wi << 6
		if base >= len(dst) {
			return
		}
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			if i >= len(dst) {
				return
			}
			dst[i] = true
			w &= w - 1
		}
	}
}
