package graph

import "math/bits"

// CoreContraction is the offline dynamic-connectivity decomposition behind
// the Monte Carlo trial loops. Edges are grouped into failure classes (for
// cable networks, the owning cable) and split by an at-risk class set: the
// immortal core — every edge whose class can never die under the compiled
// failure plan — is contracted into supernodes once, and per-trial
// connectivity queries then union only the surviving at-risk edges over the
// contracted graph. Under the paper's models most of the graph is core
// (repeater-free and low-probability cables), so each trial touches a small
// frontier instead of every edge.
//
// The structure depends only on (graph, class map, at-risk set) — never on
// a particular trial's dead mask — and is immutable after construction, so
// one CoreContraction is shared safely by any number of concurrent workers,
// each querying through its own Scratch.
type CoreContraction struct {
	g          *Graph
	numClasses int

	// atRisk is the normalized at-risk class set (exactly numClasses bits),
	// kept so a cached contraction can prove it still matches a recompiled
	// plan (see Matches).
	atRisk Bitset

	// super maps every node to its supernode: the compact label of its
	// core connected component. Nodes untouched by core edges are their own
	// singleton supernodes, so node-level component counts are preserved.
	super    []int32
	numSuper int

	// The at-risk frontier, grouped by class in CSR form: class c's kept
	// edges are (edgeA[k], edgeB[k]) for k in [classStart[c],
	// classStart[c+1]), with endpoints already mapped to supernodes. Edges
	// whose endpoints share a supernode are dropped — the core keeps them
	// connected whatever the trial says.
	classStart []int32
	edgeA      []int32
	edgeB      []int32

	// riskClasses marks the classes that still own at least one kept edge;
	// per-trial queries scan only these words against the dead mask.
	riskClasses Bitset

	// Spanning forest of the contracted graph with every at-risk edge
	// alive, rooted per intact component. A trial that kills only a few
	// classes is answered on this forest instead of re-unioning the whole
	// frontier: the dead tree edges are "cuts", each alive supernode's
	// fragment is its nearest cut ancestor (an Euler-interval lookup over
	// the cut list), and only the non-tree edges can merge fragments back
	// together. All of it is immutable after construction.
	depth, tin, tout []int32 // per supernode: forest depth and Euler subtree interval [tin, tout)
	comp             []int32 // per supernode: component id of the intact contracted graph
	numComps         int
	cutChild         []int32 // per kept edge: child supernode if it is a forest edge, else -1
}

// bitAt is Bitset.Get with missing words reading as zero, so class sets and
// dead masks shorter (or longer) than the class count cannot panic: absent
// bits mean "not at risk" / "alive".
func bitAt(b Bitset, i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// NewCoreContraction builds the contraction of g against an at-risk class
// set. classOf maps each edge to its failure class and must have length
// g.NumEdges(); nil means every edge is its own class (class e = edge e),
// in which case numClasses is ignored. atRiskClasses marks the classes that
// can die; nil means every class is at risk (empty core). Bits beyond the
// class count are ignored, missing words read as not-at-risk.
func NewCoreContraction(g *Graph, classOf []int32, numClasses int, atRiskClasses Bitset) *CoreContraction {
	identity := classOf == nil
	if identity {
		numClasses = g.NumEdges()
	} else if len(classOf) != g.NumEdges() {
		panic("graph: NewCoreContraction class map length != edge count")
	}
	cc := &CoreContraction{g: g, numClasses: numClasses}

	// Normalize the at-risk set to exactly numClasses bits. All-risk (nil)
	// materializes as all ones so Matches compares representations, not
	// conventions.
	cc.atRisk = NewBitset(numClasses)
	for c := 0; c < numClasses; c++ {
		if atRiskClasses == nil || bitAt(atRiskClasses, c) {
			cc.atRisk.Set(c)
		}
	}

	classAt := func(e int) int {
		if identity {
			return e
		}
		return int(classOf[e])
	}

	// Union the core: every edge of a class that can never die.
	n := g.NumNodes()
	uf := NewUnionFind(n)
	for e := range g.edges {
		if !cc.atRisk.Get(classAt(e)) {
			uf.Union(int(g.edges[e].A), int(g.edges[e].B))
		}
	}
	cc.numSuper = uf.Sets()
	cc.super = make([]int32, n)
	labels, _ := uf.CompactLabels()
	for i, l := range labels {
		cc.super[i] = int32(l)
	}

	// Collect the at-risk frontier in class-grouped CSR form, dropping
	// edges contracted inside a single supernode.
	counts := make([]int32, numClasses+1)
	keep := func(e int) bool {
		return cc.atRisk.Get(classAt(e)) && cc.super[g.edges[e].A] != cc.super[g.edges[e].B]
	}
	for e := range g.edges {
		if keep(e) {
			counts[classAt(e)+1]++
		}
	}
	for c := 1; c <= numClasses; c++ {
		counts[c] += counts[c-1]
	}
	cc.classStart = append([]int32(nil), counts...)
	total := counts[numClasses]
	cc.edgeA = make([]int32, total)
	cc.edgeB = make([]int32, total)
	fill := append([]int32(nil), counts[:numClasses]...)
	cc.riskClasses = NewBitset(numClasses)
	for e := range g.edges {
		if !keep(e) {
			continue
		}
		c := classAt(e)
		k := fill[c]
		cc.edgeA[k] = cc.super[g.edges[e].A]
		cc.edgeB[k] = cc.super[g.edges[e].B]
		fill[c] = k + 1
		cc.riskClasses.Set(c)
	}
	cc.buildForest()
	return cc
}

// buildForest runs one DFS over the contracted graph with every at-risk
// edge alive, recording per supernode its depth, Euler subtree interval
// and intact-component id, and per kept edge whether it is a forest edge
// (and which supernode it hangs below). The forest is what lets per-trial
// queries scale with the number of DEAD classes instead of the number of
// alive edges: deleting a set of tree edges partitions the forest into
// fragments identified by nearest-cut-ancestor, and only non-tree edges
// can stitch fragments back together.
func (cc *CoreContraction) buildForest() {
	n := cc.numSuper
	m := len(cc.edgeA)
	cc.depth = make([]int32, n)
	cc.tin = make([]int32, n)
	cc.tout = make([]int32, n)
	cc.comp = make([]int32, n)
	cc.cutChild = make([]int32, m)
	for k := range cc.cutChild {
		cc.cutChild[k] = -1
	}

	// CSR adjacency over the kept edges, both directions.
	start := make([]int32, n+1)
	for k := 0; k < m; k++ {
		start[cc.edgeA[k]+1]++
		start[cc.edgeB[k]+1]++
	}
	for v := 1; v <= n; v++ {
		start[v] += start[v-1]
	}
	adjEdge := make([]int32, 2*m)
	pos := append([]int32(nil), start[:n]...)
	for k := 0; k < m; k++ {
		a, b := cc.edgeA[k], cc.edgeB[k]
		adjEdge[pos[a]] = int32(k)
		pos[a]++
		adjEdge[pos[b]] = int32(k)
		pos[b]++
	}

	visited := make([]bool, n)
	it := append([]int32(nil), start[:n]...)
	stack := make([]int32, 0, n)
	timer := int32(0)
	for r := 0; r < n; r++ {
		if visited[r] {
			continue
		}
		visited[r] = true
		cc.comp[r] = int32(cc.numComps)
		cc.tin[r] = timer
		timer++
		stack = append(stack[:0], int32(r))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			advanced := false
			for it[v] < start[v+1] {
				k := adjEdge[it[v]]
				it[v]++
				u := cc.edgeA[k]
				if u == v {
					u = cc.edgeB[k]
				}
				if visited[u] {
					continue
				}
				visited[u] = true
				cc.cutChild[k] = u
				cc.comp[u] = int32(cc.numComps)
				cc.depth[u] = cc.depth[v] + 1
				cc.tin[u] = timer
				timer++
				stack = append(stack, u)
				advanced = true
				break
			}
			if !advanced {
				cc.tout[v] = timer
				stack = stack[:len(stack)-1]
			}
		}
		cc.numComps++
	}
}

// Graph returns the graph the contraction was built over.
func (cc *CoreContraction) Graph() *Graph { return cc.g }

// NumSupernodes returns the node count of the contracted graph: the number
// of core connected components (isolated nodes are singleton supernodes).
func (cc *CoreContraction) NumSupernodes() int { return cc.numSuper }

// NumRiskEdges returns the number of at-risk edges kept after contraction —
// the per-trial union work in the worst case (every at-risk class dead-free).
func (cc *CoreContraction) NumRiskEdges() int { return len(cc.edgeA) }

// NumClasses returns the failure-class count the dead masks are indexed by.
func (cc *CoreContraction) NumClasses() int { return cc.numClasses }

// Super returns the supernode of node n.
func (cc *CoreContraction) Super(n NodeID) int32 { return cc.super[n] }

// SupersOf appends the distinct supernodes of nodes to dst and returns it.
// Hot loops resolve their query sets once and pass the result to
// AnyConnectedSupers trial after trial.
func (cc *CoreContraction) SupersOf(dst []int32, nodes []NodeID) []int32 {
	seen := make([]bool, cc.numSuper)
	for _, n := range nodes {
		s := cc.super[n]
		if !seen[s] {
			seen[s] = true
			dst = append(dst, s)
		}
	}
	return dst
}

// Matches reports whether the contraction was built over g with exactly the
// given at-risk class set (compared with missing-words-read-as-zero
// semantics). Plan-level caches use it to decide whether a recompile
// changed the immortal core.
func (cc *CoreContraction) Matches(g *Graph, atRiskClasses Bitset) bool {
	if cc.g != g {
		return false
	}
	n := len(cc.atRisk)
	if len(atRiskClasses) > n {
		n = len(atRiskClasses)
	}
	for wi := 0; wi < n; wi++ {
		var a, b uint64
		if wi < len(cc.atRisk) {
			a = cc.atRisk[wi]
		}
		if wi < len(atRiskClasses) {
			b = atRiskClasses[wi]
		}
		if tail := cc.numClasses - wi<<6; tail < 64 {
			var m uint64
			if tail > 0 {
				m = 1<<uint(tail) - 1
			}
			b &= m
		}
		if a != b {
			return false
		}
	}
	return true
}

// ComponentsCore unions the surviving at-risk edges of cc over its
// supernodes and returns the scratch union-find for Find/Connected/Sets
// queries (valid until the next Scratch call). deadClasses is the packed
// dead-class mask of one trial: class c's edges are alive iff bit c is
// zero; nil means everything is alive. Masks of any length are accepted —
// missing words read as alive, stray bits beyond the class count are
// ignored — so malformed input cannot panic or corrupt the query.
//
// Component counts are node-level exact: Sets() equals what ComponentsBits
// reports over the full graph for the same trial, because every node maps
// to exactly one supernode and core edges can never die.
//
//gicnet:hotpath
func (s *Scratch) ComponentsCore(cc *CoreContraction, deadClasses Bitset) *UnionFind {
	if cc.g != s.g {
		panic("graph: Scratch and CoreContraction bound to different graphs")
	}
	s.uf.Reset(cc.numSuper)
	for wi, w := range cc.riskClasses {
		alive := w
		if wi < len(deadClasses) {
			alive &^= deadClasses[wi]
		}
		for alive != 0 {
			c := wi<<6 + bits.TrailingZeros64(alive)
			alive &= alive - 1
			for k := cc.classStart[c]; k < cc.classStart[c+1]; k++ {
				s.uf.Union(int(cc.edgeA[k]), int(cc.edgeB[k]))
			}
		}
	}
	return s.uf
}

// forestCutBudget bounds how many cuts (dead forest edges) the forest
// query path collects before giving up: past it the trial is dense enough
// that re-unioning the frontier outright is cheaper than reasoning about
// deletions, and the aborted scan has cost far less than one such union
// pass.
const forestCutBudget = 64

// forestCuts collects the child supernodes of the forest edges killed by
// deadClasses into the scratch cut buffer. It reports ok=false (and leaves
// the caller to take the fallback path) once the count exceeds budget —
// with that many deletions, re-unioning the frontier is cheaper than
// per-vertex cut scans.
//
//gicnet:hotpath allow=append
func (s *Scratch) forestCuts(cc *CoreContraction, deadClasses Bitset, budget int) ([]int32, bool) {
	cuts := s.cuts[:0]
	nw := len(cc.riskClasses)
	if len(deadClasses) < nw {
		nw = len(deadClasses)
	}
	for wi := 0; wi < nw; wi++ {
		d := cc.riskClasses[wi] & deadClasses[wi]
		for d != 0 {
			c := wi<<6 + bits.TrailingZeros64(d)
			d &= d - 1
			for k := cc.classStart[c]; k < cc.classStart[c+1]; k++ {
				if ch := cc.cutChild[k]; ch >= 0 {
					cuts = append(cuts, ch)
				}
			}
		}
		if len(cuts) > budget {
			s.cuts = cuts
			return nil, false
		}
	}
	s.cuts = cuts
	return cuts, true
}

// underCut reports whether supernode v lies below any of the cuts — i.e.
// some dead forest edge separates it from its component root.
//
//gicnet:hotpath
func underCut(cc *CoreContraction, cuts []int32, v int32) bool {
	t := cc.tin[v]
	for _, ch := range cuts {
		if cc.tin[ch] <= t && t < cc.tout[ch] {
			return true
		}
	}
	return false
}

// rootComp returns the component of the first supernode in set that kept
// its attachment to the forest root this trial. At low failure rates that
// is nearly always set[0], which is what makes the root-root shortcut in
// AnyConnectedSupers an O(cuts) verdict.
//
//gicnet:hotpath
func rootComp(cc *CoreContraction, cuts []int32, set []int32) (int32, bool) {
	for _, sp := range set {
		if !underCut(cc, cuts, sp) {
			return cc.comp[sp], true
		}
	}
	return 0, false
}

// rootCompNodes is rootComp over raw node ids.
//
//gicnet:hotpath
func rootCompNodes(cc *CoreContraction, cuts []int32, nodes []NodeID) (int32, bool) {
	for _, n := range nodes {
		if sp := cc.super[n]; !underCut(cc, cuts, sp) {
			return cc.comp[sp], true
		}
	}
	return 0, false
}

// AnyConnectedCore reports whether any node of from shares a component with
// any node of to in the trial described by deadClasses, answered on the
// contracted graph. It is the contracted form of AnyConnectedBits. Trials
// that kill few classes take the forest path (work proportional to the
// deletions); denser masks fall back to re-unioning the frontier. Both
// paths are exact, so the verdict never depends on which one ran.
//
//gicnet:hotpath
func (s *Scratch) AnyConnectedCore(cc *CoreContraction, deadClasses Bitset, from, to []NodeID) bool {
	if cc.g != s.g {
		panic("graph: Scratch and CoreContraction bound to different graphs")
	}
	if cuts, ok := s.forestCuts(cc, deadClasses, forestCutBudget); ok {
		if cf, okf := rootCompNodes(cc, cuts, from); okf {
			for _, n := range to {
				sp := cc.super[n]
				if cc.comp[sp] == cf && !underCut(cc, cuts, sp) {
					return true
				}
			}
		}
	}
	uf := s.ComponentsCore(cc, deadClasses)
	stamp := s.nextStamp()
	for _, n := range from {
		s.seen[uf.Find(int(cc.super[n]))] = stamp
	}
	for _, n := range to {
		if s.seen[uf.Find(int(cc.super[n]))] == stamp {
			return true
		}
	}
	return false
}

// AnyConnectedSupers is AnyConnectedCore with the query sets already
// resolved to distinct supernodes (see SupersOf), saving the per-node
// super lookups in trial loops that ask about the same pair thousands of
// times.
//
//gicnet:hotpath
func (s *Scratch) AnyConnectedSupers(cc *CoreContraction, deadClasses Bitset, fromSupers, toSupers []int32) bool {
	if cc.g != s.g {
		panic("graph: Scratch and CoreContraction bound to different graphs")
	}
	if cuts, ok := s.forestCuts(cc, deadClasses, forestCutBudget); ok {
		// Root-root shortcut: a from-vertex and a to-vertex that both kept
		// their attachment to the same component root share the root
		// fragment — connected, regardless of what else died, because the
		// two root paths are all-alive tree edges. At low failure rates
		// this settles the verdict after ~two vertex checks, making the
		// trial sublinear in the frontier. A miss (one side entirely below
		// cuts, or split across components) proves nothing and falls
		// through to the exact frontier re-union below.
		if cf, okf := rootComp(cc, cuts, fromSupers); okf {
			for _, sp := range toSupers {
				if cc.comp[sp] == cf && !underCut(cc, cuts, sp) {
					return true
				}
			}
		}
	}
	uf := s.ComponentsCore(cc, deadClasses)
	stamp := s.nextStamp()
	for _, sp := range fromSupers {
		s.seen[uf.Find(int(sp))] = stamp
	}
	for _, sp := range toSupers {
		if s.seen[uf.Find(int(sp))] == stamp {
			return true
		}
	}
	return false
}
