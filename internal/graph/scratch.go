package graph

import (
	"fmt"
	"math/bits"
)

// Scratch is reusable per-worker state for repeated masked queries over one
// graph. The Monte Carlo engine runs thousands of trials against the same
// topology; with a Scratch per worker those queries allocate nothing in
// steady state.
//
// A Scratch is bound to the graph that created it and is not safe for
// concurrent use; give each goroutine its own.
type Scratch struct {
	g  *Graph
	uf *UnionFind

	// Stamp-based visited marks: seen[n] == stamp means visited in the
	// current query, so resetting between queries is a single increment.
	seen  []uint32
	stamp uint32
	queue []NodeID

	// cuts is the reused dead-forest-edge buffer of the contraction query
	// path (see forestCuts); it grows to the per-trial cut high-water mark
	// and then stops allocating.
	cuts []int32
}

// NewScratch returns scratch state sized for g.
func (g *Graph) NewScratch() *Scratch {
	return &Scratch{
		g:     g,
		uf:    NewUnionFind(g.NumNodes()),
		seen:  make([]uint32, g.NumNodes()),
		queue: make([]NodeID, 0, g.NumNodes()),
	}
}

//gicnet:hotpath
func (s *Scratch) nextStamp() uint32 {
	s.stamp++
	if s.stamp == 0 { // wrapped: clear marks and restart
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.stamp = 1
	}
	return s.stamp
}

// Components unions the alive edges into the scratch union-find and returns
// it for Find/Connected queries. The result is valid until the next Scratch
// call. Unlike Graph.Components it builds no label slice and no map.
func (s *Scratch) Components(mask AliveMask) *UnionFind {
	s.uf.Reset(s.g.NumNodes())
	for _, e := range s.g.edges {
		if mask.Alive(e.ID) {
			s.uf.Union(int(e.A), int(e.B))
		}
	}
	return s.uf
}

// Reachable appends the nodes reachable from start via alive edges
// (including start) to dst and returns it, BFS order. It replaces the
// map-based Graph.Reachable on hot paths: visited state is a stamp array
// and the queue is a reused slice, so steady-state calls allocate nothing
// when dst has capacity.
func (s *Scratch) Reachable(dst []NodeID, start NodeID, mask AliveMask) ([]NodeID, error) {
	if !s.g.validNode(start) {
		return dst, fmt.Errorf("%w: %d", ErrBadNode, start)
	}
	stamp := s.nextStamp()
	s.seen[start] = stamp
	s.queue = append(s.queue[:0], start)
	for head := 0; head < len(s.queue); head++ {
		n := s.queue[head]
		for _, e := range s.g.adj[n] {
			if !mask.Alive(e) {
				continue
			}
			o := s.g.Other(e, n)
			if s.seen[o] != stamp {
				s.seen[o] = stamp
				s.queue = append(s.queue, o)
			}
		}
	}
	return append(dst, s.queue...), nil
}

// AnyConnected reports whether any node of from shares a component with any
// node of to under the mask, using the scratch union-find and stamp marks.
// It is the zero-allocation form of the Components+label-intersection
// pattern used by the country connectivity analysis.
func (s *Scratch) AnyConnected(mask AliveMask, from, to []NodeID) bool {
	return s.anyConnected(s.Components(mask), from, to)
}

// ComponentsBits is Components with a packed dead-edge set: edge e is alive
// iff bit e of deadEdges is zero. A nil bitset means every edge is alive.
// deadEdges must span every edge ID (BitsetWords(NumEdges()) words).
//
//gicnet:hotpath
func (s *Scratch) ComponentsBits(deadEdges Bitset) *UnionFind {
	s.uf.Reset(s.g.NumNodes())
	edges := s.g.edges
	if deadEdges == nil {
		for i := range edges {
			s.uf.Union(int(edges[i].A), int(edges[i].B))
		}
		return s.uf
	}
	// Invert word by word and walk the alive bits, skipping dead edges
	// without a per-edge branch.
	for wi, w := range deadEdges {
		base := wi << 6
		alive := ^w
		if rest := len(edges) - base; rest < 64 {
			alive &= 1<<uint(rest) - 1
		}
		for alive != 0 {
			e := &edges[base+bits.TrailingZeros64(alive)]
			alive &= alive - 1
			s.uf.Union(int(e.A), int(e.B))
		}
	}
	return s.uf
}

// AnyConnectedBits is AnyConnected over a packed dead-edge set.
//
//gicnet:hotpath
func (s *Scratch) AnyConnectedBits(deadEdges Bitset, from, to []NodeID) bool {
	return s.anyConnected(s.ComponentsBits(deadEdges), from, to)
}

//gicnet:hotpath
func (s *Scratch) anyConnected(uf *UnionFind, from, to []NodeID) bool {
	stamp := s.nextStamp()
	for _, n := range from {
		s.seen[uf.Find(int(n))] = stamp
	}
	for _, n := range to {
		if s.seen[uf.Find(int(n))] == stamp {
			return true
		}
	}
	return false
}
