package graph

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestScratchEdgeCases table-drives the scratch machinery over the shapes
// the Monte Carlo engine never exercises but refactors keep breaking:
// empty graphs, single nodes, self-loops, and dead-everything masks.
func TestScratchEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
		mask  func(g *Graph) AliveMask // nil = all alive
		// wantComponents counts components; wantReach maps a start node
		// to its expected reachable-set size (-1 = expect an error).
		wantComponents int
		reachStart     NodeID
		wantReach      int
	}{
		{
			name:           "empty graph",
			build:          func() *Graph { return New() },
			wantComponents: 0,
			reachStart:     0,
			wantReach:      -1, // no node 0 to start from
		},
		{
			name: "single node no edges",
			build: func() *Graph {
				g := New()
				g.AddNode("only")
				return g
			},
			wantComponents: 1,
			reachStart:     0,
			wantReach:      1,
		},
		{
			name: "single node self-loop",
			build: func() *Graph {
				g := New()
				n := g.AddNode("loop")
				g.AddEdge(n, n)
				return g
			},
			wantComponents: 1,
			reachStart:     0,
			wantReach:      1,
		},
		{
			name: "two nodes all edges dead",
			build: func() *Graph {
				g := New()
				a, b := g.AddNode("a"), g.AddNode("b")
				g.AddEdge(a, b)
				return g
			},
			mask:           func(g *Graph) AliveMask { return make(AliveMask, g.NumEdges()) },
			wantComponents: 2,
			reachStart:     0,
			wantReach:      1,
		},
		{
			name: "parallel edges one alive",
			build: func() *Graph {
				g := New()
				a, b := g.AddNode("a"), g.AddNode("b")
				g.AddEdge(a, b)
				g.AddEdge(a, b)
				return g
			},
			mask: func(g *Graph) AliveMask {
				m := make(AliveMask, g.NumEdges())
				m[1] = true
				return m
			},
			wantComponents: 1,
			reachStart:     0,
			wantReach:      2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build()
			s := g.NewScratch()
			var mask AliveMask
			if c.mask != nil {
				mask = c.mask(g)
			}
			// Run every query twice: scratch reuse must not change answers.
			for pass := 0; pass < 2; pass++ {
				uf := s.Components(mask)
				if got := uf.Sets(); got != c.wantComponents {
					t.Fatalf("pass %d: components = %d, want %d", pass, got, c.wantComponents)
				}
				nodes, err := s.Reachable(nil, c.reachStart, mask)
				if c.wantReach < 0 {
					if !errors.Is(err, ErrBadNode) {
						t.Fatalf("pass %d: Reachable err = %v, want ErrBadNode", pass, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("pass %d: Reachable: %v", pass, err)
				}
				if len(nodes) != c.wantReach {
					t.Fatalf("pass %d: reachable = %v, want %d nodes", pass, nodes, c.wantReach)
				}
			}
		})
	}
}

// TestScratchStampWrapAdversarial forces the uint32 visit stamp to wrap
// around with every seen-mark pre-set to the current stamp — the freshest
// stale state a real query sequence can leave behind. A wrap that failed
// to clear marks would let those entries collide with a post-wrap stamp
// and silently truncate BFS results. (The plain wrap case lives in
// scratch_test.go.)
func TestScratchStampWrapAdversarial(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b)
	s := g.NewScratch()

	// Jump the counter to the wrap point and mark every node as visited
	// at that exact stamp, as a just-finished query would have.
	s.stamp = math.MaxUint32 - 1
	for i := range s.seen {
		s.seen[i] = math.MaxUint32 - 1
	}
	for round := 0; round < 3; round++ { // crosses MaxUint32 -> 0 -> 1
		nodes, err := s.Reachable(nil, a, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != 2 {
			t.Fatalf("round %d (stamp %d): reachable = %v, want both nodes", round, s.stamp, nodes)
		}
	}
}

// TestScratchAcrossDifferentlySizedGraphs pins the ownership rule: a
// scratch is bound to the graph that made it, and scratches for graphs of
// different sizes must not poison each other through shared state or
// stale dst slices.
func TestScratchAcrossDifferentlySizedGraphs(t *testing.T) {
	big := New()
	for i := 0; i < 64; i++ {
		big.AddNode(fmt.Sprintf("b%d", i))
	}
	for i := 1; i < 64; i++ {
		big.AddEdge(NodeID(i-1), NodeID(i)) // one long chain
	}
	small := New()
	x, y := small.AddNode("x"), small.AddNode("y")
	small.AddEdge(x, y)

	sb, ss := big.NewScratch(), small.NewScratch()

	// Interleave queries; reuse one dst slice across both graphs so stale
	// contents from the big result would surface in the small one.
	var dst []NodeID
	for round := 0; round < 3; round++ {
		var err error
		dst, err = sb.Reachable(dst[:0], 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dst) != 64 {
			t.Fatalf("round %d: big reach = %d, want 64", round, len(dst))
		}
		dst, err = ss.Reachable(dst[:0], x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dst) != 2 {
			t.Fatalf("round %d: small reach = %v, want 2 nodes", round, dst)
		}
		for _, n := range dst {
			if int(n) >= small.NumNodes() {
				t.Fatalf("round %d: small result contains foreign node %d", round, n)
			}
		}
		// Component queries on both scratches stay independent too.
		if got := ss.Components(nil).Sets(); got != 1 {
			t.Fatalf("round %d: small components = %d, want 1", round, got)
		}
		if got := sb.Components(nil).Sets(); got != 1 {
			t.Fatalf("round %d: big components = %d, want 1", round, got)
		}
	}

	// A scratch must also survive its graph being *queried* through a
	// bigger mask than it has edges for — i.e., nil masks of any size.
	if got := big.ComponentCount(nil); got != 1 {
		t.Fatalf("ComponentCount(nil) = %d, want 1", got)
	}
}
