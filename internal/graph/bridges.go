package graph

import "sort"

// Bridges returns the cut edges of the graph — edges whose removal
// increases the component count — sorted by edge ID. Parallel edges are
// never bridges (the twin keeps the endpoints connected), and self-loops
// are never bridges.
func (g *Graph) Bridges() []EdgeID {
	n := len(g.nodeLabels)
	disc := make([]int, n)
	low := make([]int, n)
	timer := 0
	var out []EdgeID

	type frame struct {
		node      NodeID
		parentSeg EdgeID // edge used to reach node (-1 for roots)
		edgeIdx   int
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		stack := []frame{{node: NodeID(start), parentSeg: -1}}
		timer++
		disc[start], low[start] = timer, timer
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if f.edgeIdx < len(g.adj[u]) {
				e := g.adj[u][f.edgeIdx]
				f.edgeIdx++
				if e == f.parentSeg {
					continue // the tree edge itself; parallels have ids != e
				}
				v := g.Other(e, u)
				if v == u {
					continue // self-loop
				}
				if disc[v] == 0 {
					timer++
					disc[v], low[v] = timer, timer
					stack = append(stack, frame{node: v, parentSeg: e})
				} else if disc[v] < low[u] {
					low[u] = disc[v]
				}
			} else {
				stack = stack[:len(stack)-1]
				if f.parentSeg >= 0 {
					p := stack[len(stack)-1].node
					if low[u] < low[p] {
						low[p] = low[u]
					}
					if low[u] > disc[p] {
						out = append(out, f.parentSeg)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
