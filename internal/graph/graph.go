// Package graph provides the undirected-multigraph substrate behind every
// connectivity analysis in this repository: node/edge bookkeeping, union-find
// connected components, BFS reachability, and articulation-point detection.
//
// The failure analyses repeatedly ask "with these edges dead, which nodes
// are unreachable / which components remain?", so the central primitives are
// component queries over an edge-alive mask rather than mutation of the
// graph itself.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node; IDs are dense indices assigned by AddNode.
type NodeID int

// EdgeID identifies an edge; IDs are dense indices assigned by AddEdge.
type EdgeID int

// Edge is an undirected connection between two nodes.
type Edge struct {
	ID   EdgeID
	A, B NodeID
}

// Graph is an undirected multigraph with dense node and edge IDs. Parallel
// edges and self-loops are allowed (some cables land twice in one city).
// The zero value is an empty graph ready to use.
type Graph struct {
	nodeLabels []string
	edges      []Edge
	adj        [][]EdgeID // node -> incident edge IDs
}

// ErrBadNode reports a node ID outside the graph.
var ErrBadNode = errors.New("graph: node out of range")

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode adds a labelled node and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.nodeLabels))
	g.nodeLabels = append(g.nodeLabels, label)
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge connects a and b and returns the new edge's ID.
// It panics if either endpoint does not exist, since topology builders
// control both sides and a dangling endpoint is a programming error.
func (g *Graph) AddEdge(a, b NodeID) EdgeID {
	if !g.validNode(a) || !g.validNode(b) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) with %d nodes", a, b, len(g.nodeLabels)))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, A: a, B: b})
	g.adj[a] = append(g.adj[a], id)
	if a != b {
		g.adj[b] = append(g.adj[b], id)
	}
	return id
}

// NumNodes returns the node count.
//
//gicnet:hotpath
func (g *Graph) NumNodes() int { return len(g.nodeLabels) }

// NumEdges returns the edge count.
//
//gicnet:hotpath
func (g *Graph) NumEdges() int { return len(g.edges) }

// Label returns the label of node n.
func (g *Graph) Label(n NodeID) (string, error) {
	if !g.validNode(n) {
		return "", fmt.Errorf("%w: %d", ErrBadNode, n)
	}
	return g.nodeLabels[n], nil
}

// EdgeAt returns edge e.
func (g *Graph) EdgeAt(e EdgeID) Edge { return g.edges[e] }

// Incident returns the IDs of edges incident to n. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Incident(n NodeID) []EdgeID { return g.adj[n] }

// Degree returns the number of edge endpoints at n (self-loops count once).
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Other returns the endpoint of e opposite n.
func (g *Graph) Other(e EdgeID, n NodeID) NodeID {
	ed := g.edges[e]
	if ed.A == n {
		return ed.B
	}
	return ed.A
}

func (g *Graph) validNode(n NodeID) bool {
	return n >= 0 && int(n) < len(g.nodeLabels)
}

// AliveMask reports, per edge, whether it is usable. A nil mask means all
// edges are alive.
type AliveMask []bool

// Alive reports whether edge e survives under the mask.
func (m AliveMask) Alive(e EdgeID) bool {
	return m == nil || m[e]
}

// Components labels every node with a component index under the given edge
// mask and returns (labels, count). Nodes with no alive edges form singleton
// components.
func (g *Graph) Components(mask AliveMask) ([]int, int) {
	uf := NewUnionFind(len(g.nodeLabels))
	for _, e := range g.edges {
		if mask.Alive(e.ID) {
			uf.Union(int(e.A), int(e.B))
		}
	}
	return uf.CompactLabels()
}

// ComponentCount returns the number of connected components under the mask
// without materialising the label slice. Verification code uses it for the
// metamorphic check that killing more edges never decreases the component
// count.
func (g *Graph) ComponentCount(mask AliveMask) int {
	_, count := g.Components(mask)
	return count
}

// Reachable returns the set of nodes reachable from start via alive edges
// (including start itself). It is the convenience form of Scratch.Reachable,
// which hot paths should call directly to avoid the per-call allocations.
func (g *Graph) Reachable(start NodeID, mask AliveMask) (map[NodeID]bool, error) {
	nodes, err := g.NewScratch().Reachable(nil, start, mask)
	if err != nil {
		return nil, err
	}
	seen := make(map[NodeID]bool, len(nodes))
	for _, n := range nodes {
		seen[n] = true
	}
	return seen, nil
}

// Isolated reports the nodes whose incident edges are all dead under the
// mask — the paper's definition of an unreachable node (§4.3.1): "a node is
// unreachable when all its connected links have failed". Nodes with zero
// edges in the full graph are not counted: they were never connected.
func (g *Graph) Isolated(mask AliveMask) []NodeID {
	var out []NodeID
	for n := range g.nodeLabels {
		if len(g.adj[n]) == 0 {
			continue
		}
		alive := false
		for _, e := range g.adj[n] {
			if mask.Alive(e) {
				alive = true
				break
			}
		}
		if !alive {
			out = append(out, NodeID(n))
		}
	}
	return out
}

// LargestComponentSize returns the size of the largest connected component
// under the mask.
func (g *Graph) LargestComponentSize(mask AliveMask) int {
	labels, count := g.Components(mask)
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}

// SameComponent reports whether a and b are connected under the mask.
func (g *Graph) SameComponent(a, b NodeID, mask AliveMask) (bool, error) {
	if !g.validNode(a) || !g.validNode(b) {
		return false, fmt.Errorf("%w: %d or %d", ErrBadNode, a, b)
	}
	labels, _ := g.Components(mask)
	return labels[a] == labels[b], nil
}

// ArticulationPoints returns the cut vertices of the graph (considering all
// edges alive), sorted by ID. Used by the topology-design extension to find
// single points of failure such as regional hub cities.
func (g *Graph) ArticulationPoints() []NodeID {
	n := len(g.nodeLabels)
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	isAP := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	timer := 0

	// Iterative Tarjan to avoid recursion depth limits on the 11k-node
	// ITU-scale graphs.
	type frame struct {
		node        NodeID
		edgeIdx     int
		parentEdges int
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		stack := []frame{{node: NodeID(start)}}
		timer++
		disc[start], low[start] = timer, timer
		rootChildren := 0
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if f.edgeIdx < len(g.adj[u]) {
				e := g.adj[u][f.edgeIdx]
				f.edgeIdx++
				v := g.Other(e, u)
				if v == u { // self-loop
					continue
				}
				if disc[v] == 0 {
					parent[v] = int(u)
					if int(u) == start {
						rootChildren++
					}
					timer++
					disc[v], low[v] = timer, timer
					stack = append(stack, frame{node: v})
				} else if int(v) != parent[u] {
					if disc[v] < low[u] {
						low[u] = disc[v]
					}
				} else {
					// Multi-edge back to parent counts as a cycle:
					// only skip the first parallel edge.
					f.parentEdges++
					if f.parentEdges > 1 && disc[v] < low[u] {
						low[u] = disc[v]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if p := parent[u]; p != -1 {
					if low[u] < low[p] {
						low[p] = low[u]
					}
					if p != start && low[u] >= disc[p] {
						isAP[p] = true
					}
				}
			}
		}
		if rootChildren > 1 {
			isAP[start] = true
		}
	}
	var out []NodeID
	for i, ap := range isAP {
		if ap {
			out = append(out, NodeID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
