package graph

import (
	"math/bits"
	"testing"
)

// The kernel tests are differential: every primitive is compared against a
// deliberately naive per-bit/per-word loop on randomized and adversarial
// inputs. Because PopcountWords/CountAndNot/AndNotAny dispatch to the
// build's best implementation (AVX2, NEON, or the unrolled Go loops), and
// the unrolled Go loops are also checked directly, one run of this file on
// an assembly-capable machine proves naive ≡ unrolled-Go ≡ assembly.

func naivePopcount(w []uint64) int {
	n := 0
	for _, x := range w {
		for ; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

func naiveCountAndNot(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] &^ b[i])
	}
	return n
}

func naiveAndNotAny(a, b []uint64) bool {
	for i := range a {
		if a[i]&^b[i] != 0 {
			return true
		}
	}
	return false
}

// xorshift is a tiny deterministic generator so the test inputs are stable
// across runs without seeding math/rand.
type xorshift uint64

func (s *xorshift) next() uint64 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return x
}

// kernelWordPatterns returns adversarial word values: empty, full, single
// bits at both ends, and alternating masks that stress byte/nibble
// boundaries inside the vector routines.
func kernelWordPatterns() []uint64 {
	return []uint64{
		0, ^uint64(0), 1, 1 << 63, 1 << 31, 1 << 32,
		0xAAAAAAAAAAAAAAAA, 0x5555555555555555,
		0x0F0F0F0F0F0F0F0F, 0xF0F0F0F0F0F0F0F0,
		0x8000000000000001, 0x00FF00FF00FF00FF,
	}
}

func checkKernels(t *testing.T, a, b []uint64) {
	t.Helper()
	if got, want := PopcountWords(a), naivePopcount(a); got != want {
		t.Fatalf("PopcountWords(len=%d) = %d, want %d", len(a), got, want)
	}
	if got, want := popcountWordsGo(a), naivePopcount(a); got != want {
		t.Fatalf("popcountWordsGo(len=%d) = %d, want %d", len(a), got, want)
	}
	if got, want := Bitset(a).Count(), naivePopcount(a); got != want {
		t.Fatalf("Bitset.Count(len=%d) = %d, want %d", len(a), got, want)
	}
	if got, want := CountAndNot(a, b), naiveCountAndNot(a, b); got != want {
		t.Fatalf("CountAndNot(len=%d) = %d, want %d", len(a), got, want)
	}
	if got, want := countAndNotGo(a, b), naiveCountAndNot(a, b); got != want {
		t.Fatalf("countAndNotGo(len=%d) = %d, want %d", len(a), got, want)
	}
	if got, want := AndNotAny(a, b), naiveAndNotAny(a, b); got != want {
		t.Fatalf("AndNotAny(len=%d) = %v, want %v", len(a), got, want)
	}
	if got, want := andNotAnyGo(a, b), naiveAndNotAny(a, b); got != want {
		t.Fatalf("andNotAnyGo(len=%d) = %v, want %v", len(a), got, want)
	}
}

func TestBitsetKernels(t *testing.T) {
	t.Logf("kernel flavour: %s", CPUFeatures())
	rng := xorshift(0x9E3779B97F4A7C15)
	pats := kernelWordPatterns()
	// Word lengths 0..20 cover the empty case, sub-vector tails, the
	// amd64 dispatch threshold (8 words) on both sides, and several full
	// vector steps with every tail remainder.
	for words := 0; words <= 20; words++ {
		a := make([]uint64, words)
		b := make([]uint64, words)
		// Random fills at several densities.
		for trial := 0; trial < 32; trial++ {
			for i := range a {
				a[i] = rng.next() & rng.next()
				b[i] = rng.next() | rng.next()
			}
			checkKernels(t, a, b)
		}
		// Adversarial constant patterns, including a == b (AndNotAny
		// must report false) and a ⊂ b.
		for _, pa := range pats {
			for _, pb := range pats {
				for i := range a {
					a[i], b[i] = pa, pb
				}
				checkKernels(t, a, b)
				for i := range a {
					b[i] = pa // identical masks
				}
				checkKernels(t, a, b)
			}
		}
		// Single witness bit at every word, everything else subset, so
		// AndNotAny's early exit is probed at each depth.
		for wi := 0; wi < words; wi++ {
			for i := range a {
				a[i], b[i] = 0x1248, ^uint64(0)
			}
			a[wi] |= 1 << 63
			b[wi] = 0x1248
			checkKernels(t, a, b)
		}
	}
}

func TestTranspose64(t *testing.T) {
	rng := xorshift(0xDEADBEEFCAFE1234)
	for trial := 0; trial < 64; trial++ {
		var m, orig [64]uint64
		for i := range m {
			m[i] = rng.next()
		}
		orig = m
		Transpose64(&m)
		for i := 0; i < 64; i++ {
			for j := 0; j < 64; j++ {
				got := m[i] >> uint(j) & 1
				want := orig[j] >> uint(i) & 1
				if got != want {
					t.Fatalf("trial %d: transposed[%d] bit %d = %d, want orig[%d] bit %d = %d",
						trial, i, j, got, j, i, want)
				}
			}
		}
		Transpose64(&m)
		if m != orig {
			t.Fatalf("trial %d: double transpose is not the identity", trial)
		}
	}
}

// FuzzBitsetKernels drives every primitive against the naive loops across
// sizes 0–257 bits (0–5 words with ragged tails), with the fuzzer free to
// pick any byte content for both operands.
func FuzzBitsetKernels(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(1), []byte{0x80})
	f.Add(uint16(63), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(uint16(64), []byte{0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0x0F})
	f.Add(uint16(257), []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80})
	f.Fuzz(func(t *testing.T, nbits uint16, data []byte) {
		n := int(nbits) % 258
		words := BitsetWords(n)
		a := make([]uint64, words)
		b := make([]uint64, words)
		fill := func(dst []uint64, src []byte) {
			for i, by := range src {
				if i>>3 >= len(dst) {
					break
				}
				dst[i>>3] |= uint64(by) << (uint(i&7) * 8)
			}
		}
		half := len(data) / 2
		fill(a, data[:half])
		fill(b, data[half:])
		checkKernels(t, a, b)
	})
}
