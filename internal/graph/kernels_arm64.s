//go:build arm64 && !purego

#include "textflag.h"

// NEON bitset kernels. VCNT counts set bits per byte across a 128-bit
// vector and VUADDLV folds the sixteen byte counts into one scalar — the
// same core used by the runtime's internal/bytealg byte counter. Each
// vector step consumes 2 words; an odd trailing word goes through the
// 64-bit half of the vector unit.

// func popcountWordsNEON(w []uint64) int
TEXT ·popcountWordsNEON(SB), NOSPLIT, $0-32
	MOVD w_base+0(FP), R0
	MOVD w_len+8(FP), R1
	MOVD ZR, R2                   // accumulator
	LSR  $1, R1, R3               // 2-word steps
	CBZ  R3, tail
loop:
	VLD1.P  16(R0), [V0.B16]
	VCNT    V0.B16, V0.B16
	VUADDLV V0.B16, V1
	VMOV    V1.D[0], R4
	ADD     R4, R2
	SUB     $1, R3
	CBNZ    R3, loop
tail:
	TBZ  $0, R1, done
	MOVD (R0), R4
	VMOV R4, V0.D[0]
	VCNT    V0.B8, V0.B8
	VUADDLV V0.B8, V1
	VMOV    V1.D[0], R4
	ADD     R4, R2
done:
	MOVD R2, ret+24(FP)
	RET

// func countAndNotNEON(a, b []uint64) int
TEXT ·countAndNotNEON(SB), NOSPLIT, $0-56
	MOVD a_base+0(FP), R0
	MOVD a_len+8(FP), R1
	MOVD b_base+24(FP), R5
	MOVD ZR, R2
	LSR  $1, R1, R3
	CBZ  R3, tail
loop:
	VLD1.P  16(R0), [V0.B16]
	VLD1.P  16(R5), [V1.B16]
	VEOR    V1.B16, V0.B16, V1.B16  // a ^ b
	VAND    V1.B16, V0.B16, V0.B16  // a & (a^b) == a &^ b
	VCNT    V0.B16, V0.B16
	VUADDLV V0.B16, V2
	VMOV    V2.D[0], R4
	ADD     R4, R2
	SUB     $1, R3
	CBNZ    R3, loop
tail:
	TBZ  $0, R1, done
	MOVD (R0), R4
	MOVD (R5), R6
	BIC  R6, R4, R4
	VMOV R4, V0.D[0]
	VCNT    V0.B8, V0.B8
	VUADDLV V0.B8, V2
	VMOV    V2.D[0], R4
	ADD     R4, R2
done:
	MOVD R2, ret+48(FP)
	RET
