package graph

import (
	"fmt"
	"testing"

	"gicnet/internal/xrand"
)

// randomContractionCase is one (graph, class map, at-risk set) triple of the
// differential harness.
type randomContractionCase struct {
	g          *Graph
	classOf    []int32 // nil = identity classes
	numClasses int
	atRisk     Bitset
}

// buildCase generates a random multigraph (self-loops and parallel edges
// allowed, plus isolated nodes) with either identity classes or a random
// many-edges-per-class grouping, and an at-risk class set drawn with
// probability riskP per class.
func buildCase(r *xrand.Source, riskP float64) randomContractionCase {
	n := 1 + r.Intn(48)
	m := r.Intn(3 * n)
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	for e := 0; e < m; e++ {
		g.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	c := randomContractionCase{g: g, numClasses: m}
	if m > 0 && r.Bool(0.5) {
		c.numClasses = 1 + r.Intn(m)
		c.classOf = make([]int32, m)
		for e := range c.classOf {
			c.classOf[e] = int32(r.Intn(c.numClasses))
		}
	}
	c.atRisk = NewBitset(c.numClasses)
	for ci := 0; ci < c.numClasses; ci++ {
		if r.Bool(riskP) {
			c.atRisk.Set(ci)
		}
	}
	return c
}

// effectiveDeadEdges projects a dead-class mask onto edges exactly as the
// contraction semantics define it: an edge is dead iff its class is at risk
// AND the mask kills that class. This is the reference input for the direct
// ComponentsBits / BFS paths.
func (c randomContractionCase) effectiveDeadEdges(deadClasses Bitset) Bitset {
	dead := NewBitset(c.g.NumEdges())
	for e := 0; e < c.g.NumEdges(); e++ {
		class := e
		if c.classOf != nil {
			class = int(c.classOf[e])
		}
		if bitAt(c.atRisk, class) && bitAt(deadClasses, class) {
			dead.Set(e)
		}
	}
	return dead
}

// checkAgreement cross-checks the contracted engine against both direct
// references — ComponentsBits (union-find) and Scratch.Reachable (BFS) — on
// one (graph, plan, mask) triple: identical component count, identical
// node partition, identical pair verdicts.
func checkAgreement(t *testing.T, c randomContractionCase, cc *CoreContraction, deadClasses Bitset, r *xrand.Source) {
	t.Helper()
	g := c.g
	n := g.NumNodes()
	deadEdges := c.effectiveDeadEdges(deadClasses)

	scratchDirect := g.NewScratch()
	ufDirect := scratchDirect.ComponentsBits(deadEdges)
	directLabels := make([]int, n)
	for i := 0; i < n; i++ {
		directLabels[i] = ufDirect.Find(i)
	}
	directSets := ufDirect.Sets()

	scratchCore := g.NewScratch()
	ufCore := scratchCore.ComponentsCore(cc, deadClasses)
	coreLabels := make([]int, n)
	for i := 0; i < n; i++ {
		coreLabels[i] = ufCore.Find(int(cc.Super(NodeID(i))))
	}
	if coreSets := ufCore.Sets(); coreSets != directSets {
		t.Fatalf("component count: contracted %d, direct %d (n=%d m=%d supers=%d risk-edges=%d)",
			coreSets, directSets, n, g.NumEdges(), cc.NumSupernodes(), cc.NumRiskEdges())
	}

	// BFS reference: flood-fill components over the alive mask.
	mask := make(AliveMask, g.NumEdges())
	for e := range mask {
		mask[e] = !deadEdges.Get(e)
	}
	bfsLabels := make([]int, n)
	for i := range bfsLabels {
		bfsLabels[i] = -1
	}
	bfsComponents := 0
	var buf []NodeID
	for start := 0; start < n; start++ {
		if bfsLabels[start] >= 0 {
			continue
		}
		var err error
		buf, err = scratchDirect.Reachable(buf[:0], NodeID(start), mask)
		if err != nil {
			t.Fatalf("Reachable(%d): %v", start, err)
		}
		for _, node := range buf {
			bfsLabels[node] = bfsComponents
		}
		bfsComponents++
	}
	if bfsComponents != directSets {
		t.Fatalf("BFS sees %d components, union-find %d", bfsComponents, directSets)
	}

	// Same partition: every pair of nodes must get the same verdict from
	// all three engines.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			direct := directLabels[a] == directLabels[b]
			core := coreLabels[a] == coreLabels[b]
			bfs := bfsLabels[a] == bfsLabels[b]
			if core != direct || bfs != direct {
				t.Fatalf("partition verdict (%d,%d): contracted %v, direct %v, bfs %v", a, b, core, direct, bfs)
			}
		}
	}

	// Country-pair style verdicts over random node sets, through both the
	// node-level and precomputed-supernode query forms.
	for q := 0; q < 4; q++ {
		from := randomNodeSet(r, n)
		to := randomNodeSet(r, n)
		direct := scratchDirect.AnyConnectedBits(deadEdges, from, to)
		if got := scratchCore.AnyConnectedCore(cc, deadClasses, from, to); got != direct {
			t.Fatalf("AnyConnectedCore(%v,%v) = %v, direct %v", from, to, got, direct)
		}
		fromS := cc.SupersOf(nil, from)
		toS := cc.SupersOf(nil, to)
		if got := scratchCore.AnyConnectedSupers(cc, deadClasses, fromS, toS); got != direct {
			t.Fatalf("AnyConnectedSupers(%v,%v) = %v, direct %v", from, to, got, direct)
		}
	}
}

func randomNodeSet(r *xrand.Source, n int) []NodeID {
	out := make([]NodeID, 1+r.Intn(4))
	for i := range out {
		out[i] = NodeID(r.Intn(n))
	}
	return out
}

// TestCoreContractionMatchesDirect is the differential harness of the PR:
// 200+ randomized (graph, plan, dead-mask) triples on which the contracted
// engine must agree exactly with Scratch.ComponentsBits and plain BFS —
// same component count, same node partition, same pair verdicts.
func TestCoreContractionMatchesDirect(t *testing.T) {
	rng := xrand.New(0xc0de)
	triples := 0
	for gi := 0; gi < 60; gi++ {
		r := rng.SplitAt(uint64(gi))
		riskP := []float64{0.1, 0.3, 0.7, 0.95}[gi%4]
		c := buildCase(&r, riskP)
		cc := NewCoreContraction(c.g, c.classOf, c.numClasses, c.atRisk)
		if got := cc.NumSupernodes(); got > c.g.NumNodes() || got < 1 {
			t.Fatalf("graph %d: %d supernodes for %d nodes", gi, got, c.g.NumNodes())
		}
		for mi := 0; mi < 4; mi++ {
			deadClasses := NewBitset(c.numClasses)
			switch mi {
			case 0: // random mask
				for ci := 0; ci < c.numClasses; ci++ {
					if r.Bool(0.4) {
						deadClasses.Set(ci)
					}
				}
			case 1: // nothing dies
			case 2: // every class dies (kills every at-risk cable)
				for ci := 0; ci < c.numClasses; ci++ {
					deadClasses.Set(ci)
				}
			case 3: // exactly the at-risk classes die
				deadClasses.CopyFrom(c.atRisk)
			}
			checkAgreement(t, c, cc, deadClasses, &r)
			triples++
		}
	}
	if triples < 200 {
		t.Fatalf("only %d triples exercised, want >= 200", triples)
	}
}

// TestCoreContractionEdgeCases pins the boundary configurations by
// construction rather than by luck of the RNG draw.
func TestCoreContractionEdgeCases(t *testing.T) {
	rng := xrand.New(0xedce)

	t.Run("empty-core", func(t *testing.T) {
		// Every class at risk: the contraction degenerates to the identity
		// (one supernode per node) and must still agree everywhere.
		r := rng.SplitAt(1)
		c := buildCase(&r, 1.1) // riskP > 1: every class at risk
		cc := NewCoreContraction(c.g, c.classOf, c.numClasses, c.atRisk)
		if cc.NumSupernodes() != c.g.NumNodes() {
			t.Fatalf("empty core: %d supernodes, want %d", cc.NumSupernodes(), c.g.NumNodes())
		}
		mask := NewBitset(c.numClasses)
		for ci := 0; ci < c.numClasses; ci++ {
			if r.Bool(0.5) {
				mask.Set(ci)
			}
		}
		checkAgreement(t, c, cc, mask, &r)
	})

	t.Run("all-core", func(t *testing.T) {
		// No class at risk: the whole graph contracts away and a trial is
		// zero union operations regardless of the mask.
		r := rng.SplitAt(2)
		c := buildCase(&r, 0) // riskP 0: nothing at risk
		cc := NewCoreContraction(c.g, c.classOf, c.numClasses, c.atRisk)
		if cc.NumRiskEdges() != 0 {
			t.Fatalf("all-core contraction kept %d risk edges", cc.NumRiskEdges())
		}
		all := NewBitset(c.numClasses)
		for ci := 0; ci < c.numClasses; ci++ {
			all.Set(ci)
		}
		checkAgreement(t, c, cc, all, &r)
	})

	t.Run("single-node-islands", func(t *testing.T) {
		// Isolated nodes (degree zero) must stay singleton supernodes and
		// singleton components on every path.
		g := New()
		for i := 0; i < 7; i++ {
			g.AddNode(fmt.Sprintf("i%d", i))
		}
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		atRisk := NewBitset(2)
		atRisk.Set(1)
		c := randomContractionCase{g: g, numClasses: 2, atRisk: atRisk}
		cc := NewCoreContraction(g, nil, 0, atRisk)
		if cc.NumSupernodes() != 6 { // {0,1} fused by core edge 0; nodes 2..6 solo
			t.Fatalf("supernodes = %d, want 6", cc.NumSupernodes())
		}
		r := rng.SplitAt(3)
		for _, mask := range []Bitset{nil, {0b01}, {0b10}, {0b11}} {
			m := mask
			if m == nil {
				m = NewBitset(2)
			}
			checkAgreement(t, c, cc, m, &r)
		}
	})

	t.Run("single-node-graph", func(t *testing.T) {
		g := New()
		g.AddNode("only")
		cc := NewCoreContraction(g, nil, 0, nil)
		s := g.NewScratch()
		if uf := s.ComponentsCore(cc, nil); uf.Sets() != 1 {
			t.Fatalf("single node: %d components", uf.Sets())
		}
	})

	t.Run("kill-every-at-risk-cable", func(t *testing.T) {
		// Dead mask = the at-risk set itself: the trial partition must be
		// exactly the core partition.
		r := rng.SplitAt(4)
		c := buildCase(&r, 0.5)
		cc := NewCoreContraction(c.g, c.classOf, c.numClasses, c.atRisk)
		dead := NewBitset(c.numClasses)
		dead.CopyFrom(c.atRisk)
		s := c.g.NewScratch()
		if got, want := s.ComponentsCore(cc, dead).Sets(), cc.NumSupernodes(); got != want {
			t.Fatalf("all-at-risk-dead: %d components, want the %d core components", got, want)
		}
		checkAgreement(t, c, cc, dead, &r)
	})
}

// TestCoreContractionMalformedMasks pins the guarded-access contract: dead
// masks shorter or longer than the class count, or with stray bits past the
// class count, must behave as if the missing/extra bits were benign.
func TestCoreContractionMalformedMasks(t *testing.T) {
	rng := xrand.New(0xbadb17)
	r := rng.SplitAt(0)
	c := buildCase(&r, 0.6)
	cc := NewCoreContraction(c.g, c.classOf, c.numClasses, c.atRisk)
	s := c.g.NewScratch()

	reference := s.ComponentsCore(cc, nil).Sets()
	for _, mask := range []Bitset{
		nil,
		{},                 // zero words
		make(Bitset, 1000), // far longer than the class count, all alive
	} {
		if got := s.ComponentsCore(cc, mask).Sets(); got != reference {
			t.Fatalf("benign mask %v: %d components, want %d", mask, got, reference)
		}
	}

	// A mask of all-ones words far past the class count must match the
	// properly-sized all-dead mask.
	huge := make(Bitset, 64)
	for i := range huge {
		huge[i] = ^uint64(0)
	}
	sized := NewBitset(c.numClasses)
	for ci := 0; ci < c.numClasses; ci++ {
		sized.Set(ci)
	}
	if got, want := s.ComponentsCore(cc, huge).Sets(), s.ComponentsCore(cc, sized).Sets(); got != want {
		t.Fatalf("oversized all-dead mask: %d components, want %d", got, want)
	}
	checkAgreement(t, c, cc, huge, &r)
}

// TestCoreContractionMatches pins the cache-key semantics Plan.Contraction
// relies on.
func TestCoreContractionMatches(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	atRisk := NewBitset(3)
	atRisk.Set(1)
	cc := NewCoreContraction(g, nil, 0, atRisk)

	if !cc.Matches(g, atRisk) {
		t.Error("contraction does not match its own inputs")
	}
	withStray := Bitset{atRisk[0] | 1<<63} // stray bit past the class count
	if !cc.Matches(g, withStray) {
		t.Error("stray bits beyond the class count must not break a match")
	}
	other := NewBitset(3)
	other.Set(0)
	if cc.Matches(g, other) {
		t.Error("different at-risk set must not match")
	}
	g2 := New()
	g2.AddNode("x")
	if cc.Matches(g2, atRisk) {
		t.Error("different graph must not match")
	}
}
