//go:build arm64 && !purego

package graph

// arm64 kernel selection. NEON (Advanced SIMD) is architecturally baseline
// on arm64, so there is no runtime feature probe: the assembly routines in
// kernels_arm64.s are called directly. VCNT counts bits per byte across a
// full 128-bit vector and VUADDLV folds the lanes, giving 2 words per step
// with no lookup table.

//gicnet:hotpath
func popcountWords(w []uint64) int {
	if len(w) >= 2 {
		return popcountWordsNEON(w)
	}
	return popcountWordsGo(w)
}

//gicnet:hotpath
func countAndNot(a, b []uint64) int {
	if len(a) >= 2 {
		return countAndNotNEON(a, b)
	}
	return countAndNotGo(a, b)
}

//gicnet:hotpath
func andNotAny(a, b []uint64) bool {
	return andNotAnyGo(a, b)
}

func cpuFeatures() string { return "neon" }

// Assembly-backed declarations (kernels_arm64.s). Odd trailing words fall
// through to a scalar tail inside the routines.

//go:noescape
func popcountWordsNEON(w []uint64) int

//go:noescape
func countAndNotNEON(a, b []uint64) int
