//go:build amd64 && !purego

package graph

// amd64 kernel dispatch. AVX2 (the positional-nibble VPSHUFB popcount in
// kernels_amd64.s, 4 words per vector step) is selected once at init by
// CPUID/XGETBV feature detection — the instruction set must be present AND
// the OS must save the YMM state — and only engaged past a few vector
// widths, where it clearly beats the scalar POPCNT chain; short masks take
// the unrolled Go path with no dispatch cost beyond one predictable branch.

// avx2MinWords is the slice length (in words) below which the unrolled Go
// loop wins: the vector routine pays a constant setup (LUT loads,
// VZEROUPPER) that only amortises across at least two 4-word steps.
const avx2MinWords = 8

var hasAVX2 = detectAVX2()

//gicnet:hotpath
func popcountWords(w []uint64) int {
	if hasAVX2 && len(w) >= avx2MinWords {
		return popcountWordsAVX2(w)
	}
	return popcountWordsGo(w)
}

//gicnet:hotpath
func countAndNot(a, b []uint64) int {
	if hasAVX2 && len(a) >= avx2MinWords {
		return countAndNotAVX2(a, b)
	}
	return countAndNotGo(a, b)
}

//gicnet:hotpath
func andNotAny(a, b []uint64) bool {
	if hasAVX2 && len(a) >= avx2MinWords {
		return andNotAnyAVX2(a, b)
	}
	return andNotAnyGo(a, b)
}

func cpuFeatures() string {
	if hasAVX2 {
		return "avx2"
	}
	return "generic"
}

// detectAVX2 is the standard AVX2 gate: CPUID leaf 7 advertises the
// instructions, CPUID leaf 1 advertises AVX+OSXSAVE, and XGETBV confirms
// the OS preserves the XMM and YMM register halves across context
// switches. Every check must pass or the vector routines would fault (or
// silently lose state) at runtime.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	xcr0, _ := xgetbv0()
	const xmmAndYMMState = 1<<1 | 1<<2
	if xcr0&xmmAndYMMState != xmmAndYMMState {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0
}

// Assembly-backed declarations (kernels_amd64.s). The vector routines
// accept any slice length — full 4-word steps run through AVX2 and the
// remainder through a scalar POPCNT tail — and b must be at least as long
// as a for the two-operand forms (the exported wrappers reslice).

//go:noescape
func popcountWordsAVX2(w []uint64) int

//go:noescape
func countAndNotAVX2(a, b []uint64) int

//go:noescape
func andNotAnyAVX2(a, b []uint64) bool

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)
