package graph

import (
	"reflect"
	"sort"
	"testing"
)

// ladder builds a small multigraph with a self-loop and a parallel edge:
//
//	0 -- 1 -- 2    3 -- 4    5 (isolated)
//	 \__/ (parallel 0-1), loop at 2
func ladder() *Graph {
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode("n")
	}
	g.AddEdge(0, 1) // e0
	g.AddEdge(0, 1) // e1 parallel
	g.AddEdge(1, 2) // e2
	g.AddEdge(2, 2) // e3 self-loop
	g.AddEdge(3, 4) // e4
	return g
}

func TestScratchReachableMatchesMap(t *testing.T) {
	g := ladder()
	s := g.NewScratch()
	masks := []AliveMask{
		nil,
		{true, true, true, true, true},
		{false, false, true, true, true},
		{true, false, false, false, false},
		{false, false, false, false, false},
	}
	for _, mask := range masks {
		for start := 0; start < g.NumNodes(); start++ {
			want, err := g.Reachable(NodeID(start), mask)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Reachable(nil, NodeID(start), mask)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("mask %v start %d: %d nodes, want %d", mask, start, len(got), len(want))
			}
			for _, n := range got {
				if !want[n] {
					t.Fatalf("mask %v start %d: scratch visited %d, map path did not", mask, start, n)
				}
			}
		}
	}
	if _, err := s.Reachable(nil, NodeID(99), nil); err == nil {
		t.Error("out-of-range start must error")
	}
}

func TestScratchReachableReusesStorage(t *testing.T) {
	g := ladder()
	s := g.NewScratch()
	buf := make([]NodeID, 0, g.NumNodes())
	allocs := testing.AllocsPerRun(100, func() {
		nodes, err := s.Reachable(buf[:0], 0, nil)
		if err != nil || len(nodes) != 3 {
			t.Fatalf("nodes=%v err=%v", nodes, err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state scratch BFS allocates %v/op, want 0", allocs)
	}
}

func TestScratchComponentsMatchesGraph(t *testing.T) {
	g := ladder()
	s := g.NewScratch()
	for _, mask := range []AliveMask{nil, {true, false, false, true, true}, {false, false, false, false, false}} {
		labels, count := g.Components(mask)
		uf := s.Components(mask)
		if uf.Sets() != count {
			t.Fatalf("mask %v: scratch sets %d, graph count %d", mask, uf.Sets(), count)
		}
		for a := 0; a < g.NumNodes(); a++ {
			for b := 0; b < g.NumNodes(); b++ {
				if (labels[a] == labels[b]) != uf.Connected(a, b) {
					t.Fatalf("mask %v: connectivity of (%d,%d) disagrees", mask, a, b)
				}
			}
		}
	}
}

func TestScratchAnyConnected(t *testing.T) {
	g := ladder()
	s := g.NewScratch()
	cases := []struct {
		mask     AliveMask
		from, to []NodeID
		want     bool
	}{
		{nil, []NodeID{0}, []NodeID{2}, true},
		{nil, []NodeID{0}, []NodeID{4}, false},
		{nil, []NodeID{0, 3}, []NodeID{4}, true},
		{AliveMask{false, false, false, false, false}, []NodeID{0}, []NodeID{1}, false},
		{AliveMask{true, false, false, false, false}, []NodeID{0}, []NodeID{1}, true},
		{nil, nil, []NodeID{1}, false},
	}
	for i, c := range cases {
		if got := s.AnyConnected(c.mask, c.from, c.to); got != c.want {
			t.Errorf("case %d: AnyConnected = %v, want %v", i, got, c.want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.AnyConnected(nil, []NodeID{0}, []NodeID{4})
	})
	if allocs != 0 {
		t.Errorf("steady-state AnyConnected allocates %v/op, want 0", allocs)
	}
}

func TestScratchStampWrap(t *testing.T) {
	g := ladder()
	s := g.NewScratch()
	s.stamp = ^uint32(0) - 1 // two increments from wrapping
	for i := 0; i < 4; i++ {
		nodes, err := s.Reachable(nil, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]NodeID(nil), nodes...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if !reflect.DeepEqual(got, []NodeID{0, 1, 2}) {
			t.Fatalf("iteration %d across stamp wrap: reachable = %v", i, got)
		}
	}
}

func TestUnionFindReset(t *testing.T) {
	uf := NewUnionFind(4)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Reset(4)
	if uf.Sets() != 4 || uf.Connected(0, 1) {
		t.Error("Reset did not restore singletons")
	}
	uf.Reset(8) // grow
	if uf.Sets() != 8 || uf.Connected(6, 7) {
		t.Error("Reset(8) did not produce 8 singletons")
	}
	uf.Union(6, 7)
	uf.Reset(2) // shrink reuses backing arrays
	if uf.Sets() != 2 || uf.Connected(0, 1) {
		t.Error("Reset(2) did not produce 2 singletons")
	}
}
