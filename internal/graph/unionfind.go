package graph

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int
	rank   []byte
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{}
	uf.Reset(n)
	return uf
}

// Reset reinitialises the structure to n singleton sets, reusing the
// backing arrays when they are large enough. It lets per-worker scratch
// state run repeated component queries without allocating.
//
//gicnet:hotpath allow=make
//gicnet:pure allow=write:u
func (u *UnionFind) Reset(n int) {
	if cap(u.parent) >= n {
		u.parent = u.parent[:n]
		u.rank = u.rank[:n]
		for i := range u.rank {
			u.rank[i] = 0
		}
	} else {
		u.parent = make([]int, n)
		u.rank = make([]byte, n)
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	u.sets = n
}

// Find returns the representative of x's set.
//
//gicnet:hotpath
//gicnet:pure allow=write:u
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were distinct.
//
//gicnet:hotpath
//gicnet:pure allow=write:u
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Connected reports whether a and b share a set.
//
//gicnet:hotpath
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Sets returns the number of disjoint sets.
//
//gicnet:hotpath
func (u *UnionFind) Sets() int { return u.sets }

// CompactLabels returns a dense component label per element in [0, count).
func (u *UnionFind) CompactLabels() ([]int, int) {
	labels := make([]int, len(u.parent))
	next := 0
	remap := make(map[int]int, u.sets)
	for i := range u.parent {
		r := u.Find(i)
		l, ok := remap[r]
		if !ok {
			l = next
			remap[r] = l
			next++
		}
		labels[i] = l
	}
	return labels, next
}
