// Package solar models the solar-activity background of the paper's §2:
// the 11-year sunspot cycle, the 80-100 year Gleissberg modulation, and
// the probability of an extreme, Carrington-scale event reaching the
// earth. It turns the paper's cited estimates into a queryable risk API:
//
//   - extreme events directly impacting earth: 2.6-5.2 per century;
//   - Carrington-scale probability: 1.6%-12% per decade (the paper notes a
//     once-in-100-years event has a 9% chance per decade under a Bernoulli
//     model);
//   - Gleissberg modulation: high-impact event frequency varies by ~4x
//     across solar maxima;
//   - cycle 25 (2020-2031) sunspot forecasts ranging from weak to one of
//     the strongest on record (peak 210-260 vs cycle 24's 116).
package solar

import (
	"errors"
	"math"
)

// Cycle is one numbered solar cycle.
type Cycle struct {
	Number    int
	StartYear float64
	PeakYear  float64
	EndYear   float64
	PeakSpots float64 // smoothed sunspot number at maximum
}

// HistoricalCycles returns solar cycles 19-25 with approximate published
// parameters (cycle 25 uses the McIntosh et al. 2020 strong forecast the
// paper highlights).
func HistoricalCycles() []Cycle {
	return []Cycle{
		{19, 1954.3, 1958.2, 1964.8, 285},
		{20, 1964.8, 1968.9, 1976.3, 157},
		{21, 1976.3, 1979.9, 1986.7, 233},
		{22, 1986.7, 1989.6, 1996.7, 213},
		{23, 1996.7, 2001.9, 2008.9, 180},
		{24, 2008.9, 2014.3, 2019.9, 116},
		{25, 2019.9, 2025.2, 2031.0, 235}, // McIntosh forecast midpoint
	}
}

// CycleLengthYears is the canonical solar cycle period.
const CycleLengthYears = 11.0

// GleissbergPeriodYears is the long modulation period (80-100 years; we
// use the centre).
const GleissbergPeriodYears = 90.0

// GleissbergMinimumYear is the most recent Gleissberg minimum the paper
// cites context for (the 20th-century minimum was 1910; cycles 23-24 form
// the current extended minimum, centred near 2009).
const GleissbergMinimumYear = 2009.0

// ErrBadYear reports a year outside the model's sane range.
var ErrBadYear = errors.New("solar: year outside 1700-2200")

func checkYear(year float64) error {
	if year < 1700 || year > 2200 {
		return ErrBadYear
	}
	return nil
}

// CyclePhase returns the phase of the 11-year cycle in [0,1) at a given
// year, with 0 at the cycle-25 start (2019.9).
func CyclePhase(year float64) (float64, error) {
	if err := checkYear(year); err != nil {
		return 0, err
	}
	p := math.Mod(year-2019.9, CycleLengthYears) / CycleLengthYears
	if p < 0 {
		p += 1
	}
	return p, nil
}

// ActivityIndex returns a relative solar-activity level in [0, 1] at a
// year: the product of the 11-year cycle shape (asymmetric rise/fall) and
// the Gleissberg envelope (the paper's 4x modulation of high-impact event
// frequency across maxima).
func ActivityIndex(year float64) (float64, error) {
	phase, err := CyclePhase(year)
	if err != nil {
		return 0, err
	}
	// Asymmetric cycle: ~4 years rise, ~7 years fall.
	var cycle float64
	const riseFrac = 4.0 / 11.0
	if phase < riseFrac {
		cycle = math.Sin(phase / riseFrac * math.Pi / 2)
	} else {
		cycle = math.Cos((phase - riseFrac) / (1 - riseFrac) * math.Pi / 2)
	}
	g := GleissbergEnvelope(year)
	return cycle * g, nil
}

// GleissbergEnvelope returns the long-cycle modulation in [0.25, 1]: the
// paper's "factor of 4" variation across solar maxima, minimised at the
// Gleissberg minimum.
func GleissbergEnvelope(year float64) float64 {
	phase := 2 * math.Pi * (year - GleissbergMinimumYear) / GleissbergPeriodYears
	// cos is -1 at the minimum; map [-1, 1] -> [0.25, 1].
	return 0.625 - 0.375*math.Cos(phase)
}

// RiskEstimate bounds the probability of a Carrington-scale event.
type RiskEstimate struct {
	// PerDecadeLow/High are the paper's cited bounds (Kirchen et al.
	// 1.6%, Riley 12%).
	PerDecadeLow, PerDecadeHigh float64
	// PerDecadeBernoulli is the reference 9% (once-in-100-years under
	// independence).
	PerDecadeBernoulli float64
}

// BaselineRisk returns the paper's cited estimate range.
func BaselineRisk() RiskEstimate {
	return RiskEstimate{PerDecadeLow: 0.016, PerDecadeHigh: 0.12, PerDecadeBernoulli: 0.09}
}

// WindowProbability converts a per-decade probability into the probability
// of at least one event in a window of years (Poisson approximation).
func WindowProbability(perDecade float64, years float64) (float64, error) {
	if perDecade < 0 || perDecade >= 1 {
		return 0, errors.New("solar: per-decade probability out of [0,1)")
	}
	if years < 0 {
		return 0, errors.New("solar: negative window")
	}
	rate := -math.Log(1-perDecade) / 10 // events per year
	return 1 - math.Exp(-rate*years), nil
}

// ModulatedDecadeRisk scales a baseline per-decade probability by the mean
// Gleissberg envelope over the decade starting at year, normalised so a
// decade at envelope 1 carries (high-estimate) risk and a decade at the
// minimum carries a quarter of it — the paper's central warning is that
// the recent low decades are not representative of the coming ones.
func ModulatedDecadeRisk(perDecade float64, startYear float64) (float64, error) {
	if err := checkYear(startYear); err != nil {
		return 0, err
	}
	if perDecade < 0 || perDecade >= 1 {
		return 0, errors.New("solar: per-decade probability out of [0,1)")
	}
	sum := 0.0
	for y := 0.0; y < 10; y++ {
		sum += GleissbergEnvelope(startYear + y)
	}
	meanEnv := sum / 10
	rate := -math.Log(1 - perDecade)
	return 1 - math.Exp(-rate*meanEnv), nil
}

// Cycle25StrongForecast reports whether the McIntosh-style forecast for
// the current cycle (peak sunspots 210-260) exceeds the previous cycle's
// 116 — the condition under which the paper expects a significantly
// elevated chance of a large-scale event this decade.
func Cycle25StrongForecast() bool {
	cycles := HistoricalCycles()
	return cycles[len(cycles)-1].PeakSpots > cycles[len(cycles)-2].PeakSpots
}

// NextMaximumAfter returns the year of the next solar maximum at or after
// the given year, assuming the cycle-25 timing repeats.
func NextMaximumAfter(year float64) (float64, error) {
	if err := checkYear(year); err != nil {
		return 0, err
	}
	peak := 2025.2
	for peak < year {
		peak += CycleLengthYears
	}
	return peak, nil
}
