package solar

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistoricalCyclesSane(t *testing.T) {
	cycles := HistoricalCycles()
	if len(cycles) != 7 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	for i, c := range cycles {
		if c.StartYear >= c.PeakYear || c.PeakYear >= c.EndYear {
			t.Errorf("cycle %d ordering broken: %+v", c.Number, c)
		}
		if c.PeakSpots <= 0 {
			t.Errorf("cycle %d has no peak", c.Number)
		}
		if i > 0 && math.Abs(c.StartYear-cycles[i-1].EndYear) > 0.11 {
			t.Errorf("cycle %d does not abut previous", c.Number)
		}
	}
	// Cycle 24 was the weak one the paper discusses.
	if cycles[5].PeakSpots != 116 {
		t.Errorf("cycle 24 peak = %v", cycles[5].PeakSpots)
	}
}

func TestCyclePhase(t *testing.T) {
	p, err := CyclePhase(2019.9)
	if err != nil || math.Abs(p) > 1e-9 {
		t.Errorf("phase at cycle start = %v, %v", p, err)
	}
	p, _ = CyclePhase(2019.9 + 11)
	if math.Abs(p) > 1e-9 {
		t.Errorf("phase one cycle later = %v", p)
	}
	p, _ = CyclePhase(2025.4)
	if p <= 0 || p >= 1 {
		t.Errorf("phase = %v", p)
	}
	if _, err := CyclePhase(1000); err == nil {
		t.Error("want year error")
	}
}

func TestCyclePhaseBounds(t *testing.T) {
	f := func(seed float64) bool {
		if math.IsNaN(seed) || math.IsInf(seed, 0) {
			return true
		}
		year := 1700 + math.Mod(math.Abs(seed), 500)
		p, err := CyclePhase(year)
		return err == nil && p >= 0 && p < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActivityIndexShape(t *testing.T) {
	// Rises from cycle start to maximum, falls to the next minimum.
	start, _ := ActivityIndex(2020.0)
	maxish, _ := ActivityIndex(2023.9) // ~4y rise from 2019.9
	late, _ := ActivityIndex(2030.5)
	if !(start < maxish) {
		t.Errorf("activity should rise: %v -> %v", start, maxish)
	}
	if !(late < maxish) {
		t.Errorf("activity should fall after maximum: %v vs %v", late, maxish)
	}
	for _, y := range []float64{1950, 1980, 2005, 2021, 2060} {
		a, err := ActivityIndex(y)
		if err != nil || a < 0 || a > 1 {
			t.Errorf("ActivityIndex(%v) = %v, %v", y, a, err)
		}
	}
	if _, err := ActivityIndex(2500); err == nil {
		t.Error("want year error")
	}
}

func TestGleissbergEnvelope(t *testing.T) {
	atMin := GleissbergEnvelope(GleissbergMinimumYear)
	if math.Abs(atMin-0.25) > 1e-9 {
		t.Errorf("envelope at minimum = %v, want 0.25", atMin)
	}
	atMax := GleissbergEnvelope(GleissbergMinimumYear + GleissbergPeriodYears/2)
	if math.Abs(atMax-1) > 1e-9 {
		t.Errorf("envelope at maximum = %v, want 1", atMax)
	}
	// The paper's "factor of 4" across maxima.
	if atMax/atMin < 3.9 || atMax/atMin > 4.1 {
		t.Errorf("modulation factor = %v, want ~4", atMax/atMin)
	}
	// 20th century minimum at 1910, largest CME a decade later: envelope
	// at 1921 should already exceed the 1910-ish minimum.
	if GleissbergEnvelope(1921) <= GleissbergEnvelope(2009) {
		t.Error("1921 envelope should exceed the modern minimum")
	}
}

func TestBaselineRisk(t *testing.T) {
	r := BaselineRisk()
	if r.PerDecadeLow != 0.016 || r.PerDecadeHigh != 0.12 || r.PerDecadeBernoulli != 0.09 {
		t.Errorf("baseline = %+v", r)
	}
	if !(r.PerDecadeLow < r.PerDecadeBernoulli && r.PerDecadeBernoulli < r.PerDecadeHigh) {
		t.Error("baseline ordering broken")
	}
}

func TestWindowProbability(t *testing.T) {
	// Ten years at the per-decade probability reproduces it.
	p, err := WindowProbability(0.09, 10)
	if err != nil || math.Abs(p-0.09) > 1e-9 {
		t.Errorf("10-year window = %v, %v", p, err)
	}
	// Longer windows raise it; a century at 9%/decade is ~61%.
	p100, _ := WindowProbability(0.09, 100)
	if math.Abs(p100-(1-math.Pow(0.91, 10))) > 1e-9 {
		t.Errorf("century probability = %v", p100)
	}
	zero, _ := WindowProbability(0.09, 0)
	if zero != 0 {
		t.Errorf("zero window = %v", zero)
	}
	if _, err := WindowProbability(-0.1, 10); err == nil {
		t.Error("want probability error")
	}
	if _, err := WindowProbability(1, 10); err == nil {
		t.Error("want probability error")
	}
	if _, err := WindowProbability(0.09, -1); err == nil {
		t.Error("want window error")
	}
}

func TestWindowProbabilityMonotone(t *testing.T) {
	prev := -1.0
	for years := 0.0; years <= 200; years += 5 {
		p, err := WindowProbability(0.05, years)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("window probability decreased at %v years", years)
		}
		prev = p
	}
}

func TestModulatedDecadeRisk(t *testing.T) {
	// The coming decades sit on the rising side of the Gleissberg cycle:
	// risk in 2040 exceeds risk in 2010 (the paper's core §2.3 warning).
	now, err := ModulatedDecadeRisk(0.09, 2010)
	if err != nil {
		t.Fatal(err)
	}
	later, err := ModulatedDecadeRisk(0.09, 2040)
	if err != nil {
		t.Fatal(err)
	}
	if later <= now {
		t.Errorf("2040 decade risk (%v) should exceed 2010 (%v)", later, now)
	}
	// Modulated risk never exceeds the unmodulated probability by much
	// (envelope is <= 1).
	if later > 0.09+1e-9 {
		t.Errorf("modulated risk %v exceeds baseline", later)
	}
	if _, err := ModulatedDecadeRisk(0.09, 9999); err == nil {
		t.Error("want year error")
	}
	if _, err := ModulatedDecadeRisk(2, 2020); err == nil {
		t.Error("want probability error")
	}
}

func TestCycle25StrongForecast(t *testing.T) {
	if !Cycle25StrongForecast() {
		t.Error("embedded cycle-25 forecast should exceed cycle 24")
	}
}

func TestNextMaximumAfter(t *testing.T) {
	y, err := NextMaximumAfter(2020)
	if err != nil || math.Abs(y-2025.2) > 1e-9 {
		t.Errorf("next max after 2020 = %v, %v", y, err)
	}
	y, _ = NextMaximumAfter(2026)
	if math.Abs(y-2036.2) > 1e-9 {
		t.Errorf("next max after 2026 = %v", y)
	}
	if _, err := NextMaximumAfter(0); err == nil {
		t.Error("want year error")
	}
}
