// Package shutdown implements the §5.2 extension: using the 13-hour to
// 3-day CME lead time to plan which cables to power down before impact.
//
// Physics the plan rests on (§5.2): GIC flows through a powered-off cable
// too, because the current enters through the grounded conductor — powering
// off only shaves the superimposed operating current, a modest derate that
// "can help only when the threat is moderate". The planner therefore
// computes, per cable, the repeater failure probability powered-on vs
// powered-off and spends the limited lead time powering off the cables
// where the derate buys the most expected survival, subject to an
// operational budget (crews can only execute so many controlled shutdowns
// per hour).
package shutdown

import (
	"errors"
	"sort"

	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/gic"
	"gicnet/internal/topology"
)

// Options tunes the planner.
type Options struct {
	// SpacingKm is the inter-repeater distance.
	SpacingKm float64
	// PowerOffDerate scales the induced current when a cable is powered
	// off (< 1; the operating current no longer superimposes). The paper
	// calls the reduction "slight": default 0.85.
	PowerOffDerate float64
	// ShutdownsPerHour is the operational budget.
	ShutdownsPerHour float64
	// MinGain is the minimum survival-probability improvement for a
	// power-off to be worth the operational risk.
	MinGain float64
	// Conductor and Tolerance describe the cable plant.
	Conductor gic.Conductor
	Tolerance gic.RepeaterTolerance
}

// DefaultOptions returns sensible defaults.
func DefaultOptions() Options {
	return Options{
		SpacingKm:        150,
		PowerOffDerate:   0.85,
		ShutdownsPerHour: 12,
		MinGain:          0.01,
		Conductor:        gic.DefaultSubmarineConductor(),
		Tolerance:        gic.DefaultRepeaterTolerance(),
	}
}

// Action is the planned handling of one cable.
type Action struct {
	Cable string
	// PowerOff is true if the plan powers the cable down pre-impact.
	PowerOff bool
	// DeathOn / DeathOff are the cable death probabilities in each state.
	DeathOn, DeathOff float64
	// Gain is DeathOn - DeathOff.
	Gain float64
}

// Plan is a pre-impact shutdown schedule.
type Plan struct {
	Storm string
	// LeadTimeHours is the warning time available.
	LeadTimeHours float64
	// Budget is how many shutdowns the lead time allows.
	Budget int
	// Actions covers every cable, power-offs first (by gain), then the
	// keep-on remainder.
	Actions []Action
	// ExpectedSurvivorsUnplanned / ExpectedSurvivorsPlanned are expected
	// surviving cable counts without and with the plan.
	ExpectedSurvivorsUnplanned float64
	ExpectedSurvivorsPlanned   float64
}

// PowerOffCount returns the number of planned power-offs.
func (p *Plan) PowerOffCount() int {
	n := 0
	for _, a := range p.Actions {
		if a.PowerOff {
			n++
		}
	}
	return n
}

// stormModel returns the per-cable death probability under a storm with
// the given current derate (1 = powered on).
func stormModel(net *topology.Network, s gic.Storm, opts Options, derate float64, ci int) (float64, error) {
	reps := net.Cables[ci].RepeaterCount(opts.SpacingKm)
	if reps == 0 {
		return 0, nil
	}
	maxLat, ok := net.MaxAbsLatEndpoint(ci)
	if !ok {
		maxLat = geo.MidBandCut // coordinate-free: assume mid-band risk
	}
	cur, err := gic.InducedCurrent(s, opts.Conductor, maxLat, opts.Conductor.GroundSpacingKm)
	if err != nil {
		return 0, err
	}
	p := opts.Tolerance.FailureProbability(cur * derate)
	m := failure.Uniform{P: p}
	return failure.CableDeathProb(net, m, opts.SpacingKm, ci)
}

// PlanShutdown builds the schedule for a forecast storm. The lead time is
// taken from the storm's transit time.
func PlanShutdown(net *topology.Network, s gic.Storm, opts Options) (*Plan, error) {
	if net == nil {
		return nil, errors.New("shutdown: nil network")
	}
	if opts.SpacingKm <= 0 {
		return nil, failure.ErrBadSpacing
	}
	if opts.PowerOffDerate <= 0 || opts.PowerOffDerate > 1 {
		return nil, errors.New("shutdown: derate must be in (0, 1]")
	}
	lead := s.TravelTime.Hours()
	budget := int(lead * opts.ShutdownsPerHour)

	actions := make([]Action, 0, len(net.Cables))
	for ci := range net.Cables {
		on, err := stormModel(net, s, opts, 1, ci)
		if err != nil {
			return nil, err
		}
		off, err := stormModel(net, s, opts, opts.PowerOffDerate, ci)
		if err != nil {
			return nil, err
		}
		actions = append(actions, Action{
			Cable:    net.Cables[ci].Name,
			DeathOn:  on,
			DeathOff: off,
			Gain:     on - off,
		})
	}
	sort.Slice(actions, func(i, j int) bool { return actions[i].Gain > actions[j].Gain })

	plan := &Plan{Storm: s.Name, LeadTimeHours: lead, Budget: budget}
	for i := range actions {
		if i < budget && actions[i].Gain >= opts.MinGain {
			actions[i].PowerOff = true
		}
		death := actions[i].DeathOn
		if actions[i].PowerOff {
			death = actions[i].DeathOff
		}
		plan.ExpectedSurvivorsUnplanned += 1 - actions[i].DeathOn
		plan.ExpectedSurvivorsPlanned += 1 - death
	}
	plan.Actions = actions
	return plan, nil
}

// Improvement returns the expected number of cables saved by the plan.
func (p *Plan) Improvement() float64 {
	return p.ExpectedSurvivorsPlanned - p.ExpectedSurvivorsUnplanned
}
