package shutdown

import (
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/gic"
	"gicnet/internal/topology"
)

func subNet(t *testing.T) *topology.Network {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w.Submarine
}

func TestPlanValidation(t *testing.T) {
	if _, err := PlanShutdown(nil, gic.Quebec, DefaultOptions()); err == nil {
		t.Error("want nil-network error")
	}
	opts := DefaultOptions()
	opts.SpacingKm = 0
	if _, err := PlanShutdown(subNet(t), gic.Quebec, opts); err == nil {
		t.Error("want spacing error")
	}
	opts = DefaultOptions()
	opts.PowerOffDerate = 0
	if _, err := PlanShutdown(subNet(t), gic.Quebec, opts); err == nil {
		t.Error("want derate error")
	}
	opts.PowerOffDerate = 1.2
	if _, err := PlanShutdown(subNet(t), gic.Quebec, opts); err == nil {
		t.Error("want derate error")
	}
}

func TestPlanImprovesModerateStorm(t *testing.T) {
	// §5.2: powering off "can help only when the threat is moderate" —
	// a Quebec-class storm is the sweet spot.
	net := subNet(t)
	plan, err := PlanShutdown(net, gic.Quebec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Improvement() <= 0 {
		t.Errorf("moderate storm: improvement = %v, want positive", plan.Improvement())
	}
	if plan.PowerOffCount() == 0 {
		t.Error("planner powered nothing off for a moderate storm")
	}
	if plan.PowerOffCount() > plan.Budget {
		t.Errorf("plan exceeds budget: %d > %d", plan.PowerOffCount(), plan.Budget)
	}
}

func TestPlanHelpsLittleAtCarringtonScale(t *testing.T) {
	// Against a Carrington-class storm the derate barely moves the dose
	// response: per-cable gains exist but are much smaller relative to the
	// carnage than in the moderate case.
	net := subNet(t)
	carr, err := PlanShutdown(net, gic.Carrington, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	que, err := PlanShutdown(net, gic.Quebec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	carrDead := float64(len(net.Cables)) - carr.ExpectedSurvivorsUnplanned
	queDead := float64(len(net.Cables)) - que.ExpectedSurvivorsUnplanned
	if carrDead <= queDead {
		t.Fatalf("carrington should kill more cables (%v) than quebec (%v)", carrDead, queDead)
	}
	carrRel := carr.Improvement() / carrDead
	queRel := que.Improvement() / queDead
	if carrRel >= queRel {
		t.Errorf("relative improvement at carrington (%v) should trail moderate (%v)", carrRel, queRel)
	}
}

func TestPlanRespectsBudgetAndOrdering(t *testing.T) {
	net := subNet(t)
	opts := DefaultOptions()
	opts.ShutdownsPerHour = 0.5 // tiny budget
	plan, err := PlanShutdown(net, gic.Quebec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Budget != int(gic.Quebec.TravelTime.Hours()*0.5) {
		t.Errorf("budget = %d", plan.Budget)
	}
	if plan.PowerOffCount() > plan.Budget {
		t.Error("budget exceeded")
	}
	// actions sorted by gain descending
	for i := 1; i < len(plan.Actions); i++ {
		if plan.Actions[i].Gain > plan.Actions[i-1].Gain+1e-12 {
			t.Error("actions not sorted by gain")
			break
		}
	}
	// all power-offs precede keep-ons in gain order
	seenKeep := false
	for _, a := range plan.Actions {
		if !a.PowerOff {
			seenKeep = true
		} else if seenKeep {
			t.Error("power-off after keep-on in sorted order")
			break
		}
	}
}

func TestPlanMinGainFilters(t *testing.T) {
	net := subNet(t)
	opts := DefaultOptions()
	opts.MinGain = 1.1 // impossible gain
	plan, err := PlanShutdown(net, gic.Quebec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PowerOffCount() != 0 {
		t.Errorf("min-gain filter ignored: %d power-offs", plan.PowerOffCount())
	}
	if plan.Improvement() != 0 {
		t.Errorf("no actions should mean no improvement, got %v", plan.Improvement())
	}
}

func TestPlanDeathOffNeverWorse(t *testing.T) {
	plan, err := PlanShutdown(subNet(t), gic.NewYorkRailroad, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Actions {
		if a.DeathOff > a.DeathOn+1e-12 {
			t.Fatalf("cable %q: powered-off death %v exceeds powered-on %v", a.Cable, a.DeathOff, a.DeathOn)
		}
	}
}
