// Package asn analyses Autonomous System exposure to solar superstorms
// (the paper's §4.4.1 / Figure 9): how many ASes have a presence in the
// vulnerable high-latitude region, and how geographically spread each AS
// is. Spread matters because a wide AS is likely to be directly hit or
// indirectly hit within one hop; a compact low-latitude AS is insulated.
package asn

import (
	"errors"
	"sort"

	"gicnet/internal/dataset"
	"gicnet/internal/geo"
	"gicnet/internal/stats"
)

// Exposure classifies an AS's storm exposure.
type Exposure int

// Exposure classes, from safest to most exposed.
const (
	// ExposureLow: no routers above the risk latitude and compact spread.
	ExposureLow Exposure = iota
	// ExposureIndirect: compact but with presence above the threshold, or
	// wide without such presence — likely affected within one hop.
	ExposureIndirect
	// ExposureDirect: wide spread and presence above the threshold.
	ExposureDirect
)

// String names the exposure class.
func (e Exposure) String() string {
	switch e {
	case ExposureLow:
		return "low"
	case ExposureIndirect:
		return "indirect"
	case ExposureDirect:
		return "direct"
	default:
		return "unknown"
	}
}

// WideSpreadDeg is the latitude spread above which an AS stops being
// "geographically restricted to a smaller area" (the paper's Fig 9b tail;
// 90% of ASes are under ~18 degrees).
const WideSpreadDeg = 18.0

// Classify returns the exposure class of one AS at the given latitude
// threshold.
func Classify(as *dataset.AS, threshold float64) Exposure {
	present := as.PresenceAbove(threshold)
	wide := as.LatitudeSpread() > WideSpreadDeg
	switch {
	case present && wide:
		return ExposureDirect
	case present || wide:
		return ExposureIndirect
	default:
		return ExposureLow
	}
}

// Summary aggregates the Figure 9 analysis over a catalog.
type Summary struct {
	// Thresholds and ReachFrac form the Fig 9a curve.
	Thresholds []float64
	ReachFrac  []float64
	// SpreadCDF is the Fig 9b curve.
	SpreadCDF *stats.CDF
	// MedianSpreadDeg and P90SpreadDeg are the quantiles the paper quotes
	// (1.723 and 18.263 degrees).
	MedianSpreadDeg float64
	P90SpreadDeg    float64
	// ReachAbove40 is the fraction of ASes with presence above 40 (the
	// paper reports 57%).
	ReachAbove40 float64
	// ByExposure counts ASes per exposure class at threshold 40.
	ByExposure map[Exposure]int
}

// Analyze computes the Figure 9 summary.
func Analyze(cat *dataset.RouterCatalog) (*Summary, error) {
	if cat == nil || len(cat.ASes) == 0 {
		return nil, errors.New("asn: empty catalog")
	}
	thresholds := geo.DefaultThresholds()
	reach := cat.ASReachCurve(thresholds)
	spread := cat.SpreadSample()
	cdf, err := stats.NewCDF(spread)
	if err != nil {
		return nil, err
	}
	med, err := stats.Percentile(spread, 50)
	if err != nil {
		return nil, err
	}
	p90, err := stats.Percentile(spread, 90)
	if err != nil {
		return nil, err
	}
	s := &Summary{
		Thresholds:      thresholds,
		ReachFrac:       reach,
		SpreadCDF:       cdf,
		MedianSpreadDeg: med,
		P90SpreadDeg:    p90,
		ByExposure:      make(map[Exposure]int),
	}
	for i := range cat.ASes {
		s.ByExposure[Classify(&cat.ASes[i], geo.MidBandCut)]++
	}
	for i, t := range thresholds {
		//gicnet:allow floatcmp thresholds carry small integer literals; 40 is exact
		if t == 40 {
			s.ReachAbove40 = reach[i]
		}
	}
	return s, nil
}

// SpreadPoints samples n points of the spread CDF for plotting (Fig 9b).
func (s *Summary) SpreadPoints(n int) []stats.Point {
	return s.SpreadCDF.Points(n)
}

// TopSpreads returns the n widest ASes' (ASN, spread) pairs, widest first —
// the candidates most likely to be directly affected.
func TopSpreads(cat *dataset.RouterCatalog, n int) []struct {
	ASN    int
	Spread float64
} {
	type row struct {
		ASN    int
		Spread float64
	}
	rows := make([]row, 0, len(cat.ASes))
	for i := range cat.ASes {
		rows = append(rows, row{cat.ASes[i].ASN, cat.ASes[i].LatitudeSpread()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Spread > rows[j].Spread })
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]struct {
		ASN    int
		Spread float64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			ASN    int
			Spread float64
		}{rows[i].ASN, rows[i].Spread}
	}
	return out
}
