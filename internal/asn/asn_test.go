package asn

import (
	"math"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/geo"
)

func catalog(t *testing.T) *dataset.RouterCatalog {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w.Routers
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("want error for nil catalog")
	}
	if _, err := Analyze(&dataset.RouterCatalog{}); err == nil {
		t.Error("want error for empty catalog")
	}
}

func TestAnalyzeSummary(t *testing.T) {
	s, err := Analyze(catalog(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ReachAbove40-0.57) > 0.07 {
		t.Errorf("ReachAbove40 = %v, want ~0.57", s.ReachAbove40)
	}
	if s.MedianSpreadDeg <= 0 || s.P90SpreadDeg <= s.MedianSpreadDeg {
		t.Errorf("spread quantiles broken: %v / %v", s.MedianSpreadDeg, s.P90SpreadDeg)
	}
	// Exposure classes partition the catalog.
	total := 0
	for _, n := range s.ByExposure {
		total += n
	}
	if total != 8192 {
		t.Errorf("exposure classes sum to %d", total)
	}
	// Most ASes are geographically restricted (the paper's conclusion).
	if s.ByExposure[ExposureDirect] > total/4 {
		t.Errorf("too many direct-exposure ASes: %d", s.ByExposure[ExposureDirect])
	}
}

func TestAnalyzeCurveShape(t *testing.T) {
	s, err := Analyze(catalog(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.ReachFrac[0] != 1 {
		t.Errorf("reach at 0 = %v, want 1", s.ReachFrac[0])
	}
	for i := 1; i < len(s.ReachFrac); i++ {
		if s.ReachFrac[i] > s.ReachFrac[i-1]+1e-12 {
			t.Error("reach curve must be non-increasing")
			break
		}
	}
	pts := s.SpreadPoints(10)
	if len(pts) != 10 {
		t.Errorf("spread points = %d", len(pts))
	}
}

func TestClassify(t *testing.T) {
	compactSouth := &dataset.AS{Routers: []geo.Coord{{Lat: 5, Lon: 0}, {Lat: 6, Lon: 1}}}
	compactNorth := &dataset.AS{Routers: []geo.Coord{{Lat: 55, Lon: 0}, {Lat: 56, Lon: 1}}}
	wideSouth := &dataset.AS{Routers: []geo.Coord{{Lat: -30, Lon: 0}, {Lat: 5, Lon: 1}}}
	wideNorth := &dataset.AS{Routers: []geo.Coord{{Lat: 10, Lon: 0}, {Lat: 60, Lon: 1}}}
	tests := []struct {
		name string
		as   *dataset.AS
		want Exposure
	}{
		{"compact south", compactSouth, ExposureLow},
		{"compact north", compactNorth, ExposureIndirect},
		{"wide south", wideSouth, ExposureIndirect},
		{"wide north", wideNorth, ExposureDirect},
	}
	for _, tt := range tests {
		if got := Classify(tt.as, geo.MidBandCut); got != tt.want {
			t.Errorf("%s: Classify = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestExposureString(t *testing.T) {
	if ExposureLow.String() != "low" || ExposureDirect.String() != "direct" ||
		ExposureIndirect.String() != "indirect" || Exposure(9).String() != "unknown" {
		t.Error("exposure names wrong")
	}
}

func TestTopSpreads(t *testing.T) {
	cat := catalog(t)
	top := TopSpreads(cat, 10)
	if len(top) != 10 {
		t.Fatalf("len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Spread > top[i-1].Spread {
			t.Error("not sorted widest first")
			break
		}
	}
	all := TopSpreads(cat, 1<<30)
	if len(all) != len(cat.ASes) {
		t.Errorf("oversized n should clamp: %d", len(all))
	}
}
