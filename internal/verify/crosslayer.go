package verify

import (
	"context"
	"math"

	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/failure"
	"gicnet/internal/routing"
	"gicnet/internal/sim"
	"gicnet/internal/xrand"
)

// compileCrosslayer builds the cable->AS index the cross-layer checks run
// against: the submarine map with the full router catalog and the paper's
// demand matrix.
func compileCrosslayer(w *dataset.World) (*crosslayer.Index, error) {
	return crosslayer.Compile(w.Submarine, w.Routers, routing.DefaultDemands())
}

// crossScoreBits compares two scores bit for bit: integers exactly, floats
// via their IEEE-754 representation, so "equal" means byte-identical.
func crossScoreBits(a, b crosslayer.Score) bool {
	if a.ReachablePairs != b.ReachablePairs || a.StrandedASes != b.StrandedASes {
		return false
	}
	if math.Float64bits(a.StrandedShare) != math.Float64bits(b.StrandedShare) ||
		math.Float64bits(a.DemandWeighted) != math.Float64bits(b.DemandWeighted) {
		return false
	}
	for i := range a.RegionStranded {
		if math.Float64bits(a.RegionStranded[i]) != math.Float64bits(b.RegionStranded[i]) {
			return false
		}
	}
	return true
}

// checkCrosslayerMonotone grows a random dead-cable set one batch at a time
// on the real submarine index: reachable AS pairs must never increase and
// stranding must never decrease — cross-layer damage is monotone in
// physical damage.
func checkCrosslayerMonotone(w *dataset.World, seed uint64) Result {
	const name = "crosslayer-monotone"
	const rounds = 24
	idx, err := compileCrosslayer(w)
	if err != nil {
		return fail(name, "compile: %v", err)
	}
	var s crosslayer.Scratch
	s.Grow(idx)
	nc := len(idx.Network().Cables)
	plan, err := failure.Compile(idx.Network(), failure.Uniform{P: 0.5}, 150)
	if err != nil {
		return fail(name, "plan: %v", err)
	}
	dead := plan.NewDead()
	dead.Clear()
	prev := idx.ScoreDead(dead, &s)
	if !crossScoreBits(prev, idx.Intact()) {
		return fail(name, "empty dead set scores %+v, intact is %+v", prev, idx.Intact())
	}
	rng := xrand.New(seed ^ 0xc1055)
	for round := 0; round < rounds; round++ {
		r := rng.SplitAt(uint64(round))
		for k := 0; k < 1+nc/16; k++ {
			dead.Set(r.Intn(nc))
		}
		sc := idx.ScoreDead(dead, &s)
		if sc.ReachablePairs > prev.ReachablePairs {
			return fail(name, "round %d: reachable pairs grew %d -> %d under added failures",
				round, prev.ReachablePairs, sc.ReachablePairs)
		}
		if sc.StrandedASes < prev.StrandedASes {
			return fail(name, "round %d: stranded ASes shrank %d -> %d under added failures",
				round, prev.StrandedASes, sc.StrandedASes)
		}
		if sc.StrandedShare < prev.StrandedShare {
			return fail(name, "round %d: stranded share shrank %v -> %v under added failures",
				round, prev.StrandedShare, sc.StrandedShare)
		}
		prev = sc
	}
	return pass(name, "%d growth rounds on %s (%d ASes): pairs nonincreasing, stranding nondecreasing",
		rounds, idx.Network().Name, idx.TotalASes())
}

// checkCrosslayerStrandedBounds runs the scored engine under every
// invariant model and validates each trial's score structurally: stranded
// users a share in [0,1], stranded ASes within the catalog, pair counts
// within C(total,2).
func checkCrosslayerStrandedBounds(w *dataset.World, seed uint64) Result {
	const name = "crosslayer-stranded-bounds"
	idx, err := compileCrosslayer(w)
	if err != nil {
		return fail(name, "compile: %v", err)
	}
	total := idx.TotalASes()
	maxPairs := total * (total - 1) / 2
	ctx := context.Background()
	trials := 0
	for _, m := range invariantModels() {
		cfg := sim.Config{Model: m, SpacingKm: 150, Trials: 64, Seed: seed, CrossLayer: idx}
		res, err := sim.Run(ctx, idx.Network(), cfg)
		if err != nil {
			return fail(name, "%s: %v", m.Name(), err)
		}
		for i := range res.Cross {
			sc := &res.Cross[i]
			if sc.ReachablePairs < 0 || sc.ReachablePairs > maxPairs {
				return fail(name, "%s trial %d: pairs %d outside [0, %d]", m.Name(), i, sc.ReachablePairs, maxPairs)
			}
			if sc.StrandedASes < 0 || sc.StrandedASes > total {
				return fail(name, "%s trial %d: stranded ASes %d outside [0, %d]", m.Name(), i, sc.StrandedASes, total)
			}
			if sc.StrandedShare < 0 || sc.StrandedShare > 1+1e-12 || math.IsNaN(sc.StrandedShare) {
				return fail(name, "%s trial %d: stranded share %v outside [0, 1]", m.Name(), i, sc.StrandedShare)
			}
			if sc.DemandWeighted < 0 || sc.DemandWeighted > 1+1e-12 || math.IsNaN(sc.DemandWeighted) {
				return fail(name, "%s trial %d: demand-weighted %v outside [0, 1]", m.Name(), i, sc.DemandWeighted)
			}
			trials++
		}
	}
	return pass(name, "%d scored trials across %d models within structural bounds (%d ASes)",
		trials, len(invariantModels()), total)
}

// checkCrosslayerBatchParity proves the bitsliced 64-trial scoring path is
// a pure performance transform: on shared sampled blocks, ScoreBatch must
// reproduce ScoreDead bit for bit, trial by trial.
func checkCrosslayerBatchParity(w *dataset.World, seed uint64) Result {
	const name = "crosslayer-batch-parity"
	const blocks = 4
	idx, err := compileCrosslayer(w)
	if err != nil {
		return fail(name, "compile: %v", err)
	}
	plan, err := failure.Compile(idx.Network(), failure.S1(), 150)
	if err != nil {
		return fail(name, "plan: %v", err)
	}
	var s crosslayer.Scratch
	s.Grow(idx)
	var batch failure.BatchScratch
	batch.Grow(plan)
	var out [failure.MaxBatch]crosslayer.Score
	root := xrand.New(seed ^ 0xba7c4)
	compared := 0
	for blk := 0; blk < blocks; blk++ {
		plan.SampleBatch(&batch, root, uint64(blk)*failure.MaxBatch, failure.MaxBatch)
		idx.ScoreBatch(&batch, failure.MaxBatch, out[:], &s)
		for b := 0; b < failure.MaxBatch; b++ {
			want := idx.ScoreDead(batch.Row(b), &s)
			if !crossScoreBits(out[b], want) {
				return fail(name, "block %d trial %d: batched %+v != scalar %+v", blk, b, out[b], want)
			}
			compared++
		}
	}
	return pass(name, "%d trials: batched scoring bit-identical to scalar on %s", compared, idx.Network().Name)
}

// replayCrosslayer extends the scheduling-independence proof to the
// cross-layer metric: scored runs must be byte-identical across worker
// counts and across repetition, and must carry their own fingerprint
// identity distinct from the plain run.
func replayCrosslayer(ctx context.Context, w *dataset.World, cfg experiments.Config) Result {
	const name = "replay-crosslayer"
	idx, err := compileCrosslayer(w)
	if err != nil {
		return fail(name, "compile: %v", err)
	}
	base := sim.Config{Model: failure.S1(), SpacingKm: 150, Trials: cfg.Trials, Seed: cfg.Seed, CrossLayer: idx}
	var want uint64
	for i, workers := range ReplayWorkerCounts() {
		c := base
		c.Workers = workers
		res, err := sim.Run(ctx, w.Submarine, c)
		if err != nil {
			return fail(name, "workers=%d: %v", workers, err)
		}
		if len(res.Cross) != c.Trials {
			return fail(name, "workers=%d: %d scores for %d trials", workers, len(res.Cross), c.Trials)
		}
		fp := res.Fingerprint()
		if i == 0 {
			want = fp
			again, err := sim.Run(ctx, w.Submarine, c)
			if err != nil {
				return fail(name, "repeat run: %v", err)
			}
			if again.Fingerprint() != fp {
				return fail(name, "repeated serial run diverged: %016x vs %016x", again.Fingerprint(), fp)
			}
			plain := c
			plain.CrossLayer = nil
			pr, err := sim.Run(ctx, w.Submarine, plain)
			if err != nil {
				return fail(name, "plain run: %v", err)
			}
			if pr.Fingerprint() == fp {
				return fail(name, "scored run shares the plain fingerprint %016x — cross section not hashed", fp)
			}
		} else if fp != want {
			return fail(name, "workers=%d fingerprint %016x != serial %016x", workers, fp, want)
		}
	}
	return pass(name, "cross-layer runs byte-identical across workers %v (fingerprint %016x)", ReplayWorkerCounts(), want)
}
