package verify

import (
	"context"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
)

func TestInvariantsHoldOnDefaultWorld(t *testing.T) {
	results := Invariants(testWorld(t), dataset.DefaultSeed)
	if len(results) != 13 {
		t.Fatalf("invariant count = %d, want 13", len(results))
	}
	for _, r := range results {
		if !r.Passed {
			t.Errorf("invariant %s failed: %s", r.Name, r.Detail)
		}
		if r.Detail == "" {
			t.Errorf("invariant %s has no evidence detail", r.Name)
		}
	}
}

// Invariants must hold for any seed, not just the canonical one.
func TestInvariantsHoldForOtherSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed invariant sweep skipped in short mode")
	}
	w := testWorld(t)
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		for _, r := range Invariants(w, seed) {
			if !r.Passed {
				t.Errorf("seed %d: invariant %s failed: %s", seed, r.Name, r.Detail)
			}
		}
	}
}

func TestFailedFilter(t *testing.T) {
	rs := []Result{
		{Name: "a", Passed: true},
		{Name: "b", Passed: false, Detail: "broken"},
		{Name: "c", Passed: true},
	}
	bad := Failed(rs)
	if len(bad) != 1 || bad[0].Name != "b" {
		t.Errorf("Failed = %v, want just b", bad)
	}
}

// TestReplayProvesWorkerIndependence is the in-test form of
// `cmd/validate -only replay`. The full worker matrix is exercised with
// the golden trial count; short mode shrinks the trial count but still
// proves the property.
func TestReplayProvesWorkerIndependence(t *testing.T) {
	cfg := goldenConfig()
	if testing.Short() {
		cfg.Trials = 2
	}
	results := Replay(context.Background(), testWorld(t), cfg)
	if len(results) != 8 {
		t.Fatalf("replay check count = %d, want 8", len(results))
	}
	for _, r := range results {
		if !r.Passed {
			t.Errorf("replay %s failed: %s", r.Name, r.Detail)
		}
	}
}

func TestReplayWorkerCounts(t *testing.T) {
	counts := ReplayWorkerCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("worker counts = %v, want serial baseline first", counts)
	}
	seen := map[int]bool{}
	for _, c := range counts {
		if c < 1 {
			t.Errorf("non-positive worker count %d", c)
		}
		if seen[c] {
			t.Errorf("duplicate worker count %d in %v", c, counts)
		}
		seen[c] = true
	}
}

// A snapshot captured at a different trial count must NOT silently pass
// the golden diff — the meta fields are part of the compared surface.
func TestDiffCatchesConfigDrift(t *testing.T) {
	w := testWorld(t)
	a, err := Capture(context.Background(), w, experiments.Config{Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Capture(context.Background(), w, experiments.Config{Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := DiffSnapshots(a, b, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("snapshots with different trial counts diffed as equal")
	}
}
