package verify

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
)

// DefaultGoldenPath is where the repository keeps the checked-in golden,
// relative to the repo root (the conventional working directory of
// cmd/validate and make targets).
const DefaultGoldenPath = "internal/verify/goldens/reproduce.json"

// The golden is compiled into the binary so cmd/validate works from any
// working directory; a fresher on-disk copy (e.g. right after -update)
// takes precedence in LoadGolden.
//
//go:embed goldens/reproduce.json
var embeddedGolden []byte

// EmbeddedGolden parses the golden compiled into this binary.
func EmbeddedGolden() (*Snapshot, error) {
	return parseGolden(embeddedGolden, "embedded")
}

// LoadGolden reads the golden at path, falling back to the embedded copy
// when the file does not exist.
func LoadGolden(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return EmbeddedGolden()
	}
	if err != nil {
		return nil, fmt.Errorf("verify: read golden: %w", err)
	}
	return parseGolden(b, path)
}

func parseGolden(b []byte, source string) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("verify: parse golden %s: %w", source, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("verify: golden %s has schema %d, this binary expects %d — regenerate with -update",
			source, s.Schema, SchemaVersion)
	}
	return &s, nil
}

// WriteGolden serialises a snapshot to path with stable formatting
// (indented, sorted map keys, trailing newline), so regenerating an
// unchanged golden produces a byte-identical file and an empty git diff.
func WriteGolden(path string, s *Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("verify: encode golden: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
