package verify

import (
	"context"
	"sync"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/rare"
	"gicnet/internal/serve"
	"gicnet/internal/sim"
)

// replayServed extends the replay invariant to the serving engine: a
// scenario answered by gicnetd's tiers — computed cold, joined in
// flight, coalesced into a batch, or replayed from the result cache —
// must carry exactly the fingerprint of the equivalent offline sim.Run.
// This is the provenance contract that lets a served number be cited as
// if it had been reproduced from scratch.
func replayServed(ctx context.Context, w *dataset.World) Result {
	const name = "replay-served"
	srv, err := serve.New(serve.Config{
		Worlds:          []*dataset.World{w},
		Shards:          2,
		WorkersPerShard: 2,
	})
	if err != nil {
		return fail(name, "starting server: %v", err)
	}
	defer srv.Close()

	reqs := []serve.Request{
		{Network: "submarine", Model: "s1", SpacingKm: 150, Trials: 128, Seed: dataset.DefaultSeed},
		{Network: "intertubes", Model: "uniform", P: 0.1, SpacingKm: 100, Trials: 128, Seed: 3},
		{Network: "itu", Model: "s2", SpacingKm: 50, Trials: 64, Seed: 5},
		{Network: "submarine", Model: "uniform", P: 0.001, SpacingKm: 100, Trials: 128, Seed: 7, Estimator: "is"},
	}
	for _, req := range reqs {
		resp, err := srv.Do(ctx, req)
		if err != nil {
			return fail(name, "serving %+v: %v", req, err)
		}
		want, err := offlineServed(ctx, w, resp.Request)
		if err != nil {
			return fail(name, "offline %+v: %v", resp.Request, err)
		}
		if resp.Fingerprint != want {
			return fail(name, "served fingerprint %016x != offline sim.Run %016x for %+v (provenance %s)",
				resp.Fingerprint, want, resp.Request, resp.Provenance)
		}
		cached, err := srv.Do(ctx, req)
		if err != nil {
			return fail(name, "re-serving %+v: %v", req, err)
		}
		if cached.Provenance != serve.ProvCache || cached.Fingerprint != want {
			return fail(name, "cache replay of %+v: provenance %s fingerprint %016x, want cache/%016x",
				req, cached.Provenance, cached.Fingerprint, want)
		}
	}

	// A concurrent uniform-p sweep exercises coalescing and dedup; every
	// point must still match its own offline run.
	ps := []float64{0.05, 0.1, 0.2, 0.3}
	resps := make([]*serve.Response, len(ps))
	errs := make([]error, len(ps))
	var wg sync.WaitGroup
	for i, p := range ps {
		wg.Add(1)
		go func(i int, p float64) {
			defer wg.Done()
			resps[i], errs[i] = srv.Do(ctx, serve.Request{
				Network: "submarine", Model: "uniform", P: p, SpacingKm: 100, Trials: 128, Seed: 11,
			})
		}(i, p)
	}
	wg.Wait()
	for i := range ps {
		if errs[i] != nil {
			return fail(name, "sweep point %g: %v", ps[i], errs[i])
		}
		want, err := offlineServed(ctx, w, resps[i].Request)
		if err != nil {
			return fail(name, "offline sweep point %g: %v", ps[i], err)
		}
		if resps[i].Fingerprint != want {
			return fail(name, "batched sweep point p=%g fingerprint %016x != offline %016x (batch size %d)",
				ps[i], resps[i].Fingerprint, want, resps[i].BatchSize)
		}
	}
	return pass(name, "%d served scenarios (cold, cached, batched sweep) all match offline sim.Run fingerprints",
		len(reqs)+len(ps))
}

// offlineServed runs the canonical offline equivalent of a canonicalised
// serve request: sim.Run with the request's own configuration and
// completely fresh state.
func offlineServed(ctx context.Context, w *dataset.World, req serve.Request) (uint64, error) {
	net := w.Submarine
	switch req.Network {
	case "intertubes":
		net = w.Intertubes
	case "itu":
		net = w.ITU
	}
	var model failure.Model = failure.Uniform{P: req.P}
	switch req.Model {
	case "s1":
		model = failure.S1()
	case "s2":
		model = failure.S2()
	}
	var est sim.Estimator
	switch req.Estimator {
	case "is":
		est = rare.NewIS(0)
	case "is-qmc":
		est = rare.NewISQMC(0)
	case "qmc":
		est = rare.NewQMC()
	}
	res, err := sim.Run(ctx, net, sim.Config{
		Model: model, SpacingKm: req.SpacingKm,
		Trials: req.Trials, Seed: req.Seed, Workers: 1, Estimator: est,
	})
	if err != nil {
		return 0, err
	}
	return res.Fingerprint(), nil
}
