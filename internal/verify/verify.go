// Package verify is the statistical verification subsystem: executable
// proof that the reproduction still computes what the paper reports and
// what the engine guarantees. It has three layers:
//
//   - Golden-figure regression (Capture + DiffSnapshots + goldens/): a
//     fixed-seed snapshot of every reproduce output — the Figure 3-8
//     series, the country connectivity tables, and the dataset calibration
//     statistics (median 775 km, p99 28000 km, 82-of-441 repeaterless
//     cables) — diffed against a checked-in golden with explicit
//     tolerances.
//
//   - Model invariants (Invariants): property and metamorphic checks the
//     failure model must satisfy regardless of constants — failure
//     fractions monotone in storm intensity and repeater count,
//     probabilities in [0,1], connectivity never improved by additional
//     failures, and union-find/BFS component agreement on random graphs.
//
//   - Deterministic replay (Replay): proof that sim.Run and the Figure
//     6/7/8 sweeps are byte-identical across worker counts and across
//     repeated runs, which is the contract every parallel refactor of the
//     engine must preserve.
//
// cmd/validate runs all three layers end to end; `make validate` is the
// command-line entry point and `-update` regenerates the goldens.
package verify

import (
	"context"
	"fmt"

	"gicnet/internal/asn"
	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/infra"
)

// SchemaVersion identifies the snapshot layout; bump it when fields change
// meaning so stale goldens fail loudly instead of diffing nonsense.
const SchemaVersion = 1

// Snapshot is the complete golden-regression surface: every number the
// reproduction derives from the fixed-seed world, in marshal-friendly form.
type Snapshot struct {
	Schema int    `json:"schema"`
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`

	Calibration *dataset.Calibration `json:"calibration"`

	Fig3  *experiments.Fig3Result `json:"fig3"`
	Fig4a *experiments.Fig4Result `json:"fig4a"`
	Fig4b *experiments.Fig4Result `json:"fig4b"`
	// Fig5 holds per-network cable-length quantiles rather than the full
	// CDFs: the quantiles are what the paper reports and what a human can
	// review in a golden diff.
	Fig5  map[string]LengthQuantiles `json:"fig5"`
	Fig67 *experiments.Fig67Result   `json:"fig67"`
	Fig8  *experiments.Fig8Result    `json:"fig8"`
	Fig9  *Fig9Summary               `json:"fig9"`

	// Country maps state ("S1"/"S2") to the per-case connectivity rows of
	// the §4.3.4 analysis.
	Country map[string][]CountrySummary `json:"country"`
	Systems []SystemSummary             `json:"systems"`

	// Crosslayer is the cable->AS cross-layer impact sweep: severed AS
	// pairs and stranded users per failure level.
	Crosslayer *experiments.CrossLayerResult `json:"crosslayer"`
}

// LengthQuantiles are the golden quantiles of one cable-length CDF.
type LengthQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Fig9Summary is the marshal-friendly projection of asn.Summary.
type Fig9Summary struct {
	Thresholds      []float64 `json:"thresholds"`
	ReachFrac       []float64 `json:"reach_frac"`
	ReachAbove40    float64   `json:"reach_above_40"`
	MedianSpreadDeg float64   `json:"median_spread_deg"`
	P90SpreadDeg    float64   `json:"p90_spread_deg"`
	DirectASes      int       `json:"direct_ases"`
	IndirectASes    int       `json:"indirect_ases"`
	LowASes         int       `json:"low_ases"`
}

// PartnerSummary is one target-partner connectivity estimate.
type PartnerSummary struct {
	To           string  `json:"to"`
	SurvivalProb float64 `json:"survival_prob"`
	Trials       int     `json:"trials"`
}

// CountrySummary is one row of the country-scale connectivity analysis.
type CountrySummary struct {
	Target            string           `json:"target"`
	Cables            int              `json:"cables"`
	ExpectedSurvivors float64          `json:"expected_survivors"`
	IsolationProb     float64          `json:"isolation_prob"`
	Partners          []PartnerSummary `json:"partners"`
}

// SystemSummary is one row of the §4.4 systems resilience table.
type SystemSummary struct {
	Name          string  `json:"name"`
	Count         int     `json:"count"`
	FracAbove40   float64 `json:"frac_above_40"`
	SouthernShare float64 `json:"southern_share"`
	Regions       int     `json:"regions"`
	Resilience    float64 `json:"resilience"`
}

// Capture runs every reproduce experiment against the world and collects
// the results into a snapshot. With a fixed cfg.Seed the output is
// deterministic whatever cfg.Workers is — that is exactly what the Replay
// layer proves.
func Capture(ctx context.Context, w *dataset.World, cfg experiments.Config) (*Snapshot, error) {
	s := &Snapshot{Schema: SchemaVersion, Seed: cfg.Seed, Trials: cfg.Trials}

	var err error
	if s.Calibration, err = dataset.CalibrationStats(w); err != nil {
		return nil, fmt.Errorf("verify: calibration: %w", err)
	}
	if s.Fig3, err = experiments.Fig3(w); err != nil {
		return nil, fmt.Errorf("verify: fig3: %w", err)
	}
	if s.Fig4a, err = experiments.Fig4a(w); err != nil {
		return nil, fmt.Errorf("verify: fig4a: %w", err)
	}
	if s.Fig4b, err = experiments.Fig4b(w); err != nil {
		return nil, fmt.Errorf("verify: fig4b: %w", err)
	}
	fig5, err := experiments.Fig5(w)
	if err != nil {
		return nil, fmt.Errorf("verify: fig5: %w", err)
	}
	s.Fig5 = map[string]LengthQuantiles{}
	for name := range fig5.CDFs {
		q := func(p float64) float64 {
			v, _ := fig5.Quantile(name, p)
			return v
		}
		s.Fig5[name] = LengthQuantiles{P50: q(0.5), P90: q(0.9), P99: q(0.99), Max: q(1)}
	}
	if s.Fig67, err = experiments.Fig67(ctx, w, cfg); err != nil {
		return nil, fmt.Errorf("verify: fig67: %w", err)
	}
	if s.Fig8, err = experiments.Fig8(ctx, w, cfg); err != nil {
		return nil, fmt.Errorf("verify: fig8: %w", err)
	}
	fig9, err := experiments.Fig9(w)
	if err != nil {
		return nil, fmt.Errorf("verify: fig9: %w", err)
	}
	s.Fig9 = summariseFig9(fig9.Summary)

	country, err := experiments.Countries(ctx, w, cfg, experiments.DefaultCountryCases())
	if err != nil {
		return nil, fmt.Errorf("verify: country: %w", err)
	}
	s.Country = map[string][]CountrySummary{}
	for state, reports := range country.Reports {
		for _, rep := range reports {
			cs := CountrySummary{
				Target:            string(rep.Target),
				Cables:            len(rep.Cables),
				ExpectedSurvivors: rep.ExpectedSurvivors,
				IsolationProb:     rep.IsolationProb,
			}
			for _, p := range rep.Partners {
				cs.Partners = append(cs.Partners, PartnerSummary{
					To: string(p.To), SurvivalProb: p.SurvivalProb, Trials: p.Trials,
				})
			}
			s.Country[state] = append(s.Country[state], cs)
		}
	}

	if s.Crosslayer, err = experiments.CrossLayer(ctx, w, cfg); err != nil {
		return nil, fmt.Errorf("verify: crosslayer: %w", err)
	}

	systems, err := experiments.Systems(w)
	if err != nil {
		return nil, fmt.Errorf("verify: systems: %w", err)
	}
	for _, d := range []*infra.Distribution{
		systems.Infra.DNS, systems.Infra.Google, systems.Infra.Facebook,
		systems.Infra.IXPs, systems.Infra.Routers,
	} {
		s.Systems = append(s.Systems, SystemSummary{
			Name:          d.Name,
			Count:         d.Count,
			FracAbove40:   d.FracAbove40,
			SouthernShare: d.SouthernShare,
			Regions:       len(d.Regions),
			Resilience:    d.ResilienceScore(),
		})
	}
	return s, nil
}

func summariseFig9(sum *asn.Summary) *Fig9Summary {
	return &Fig9Summary{
		Thresholds:      sum.Thresholds,
		ReachFrac:       sum.ReachFrac,
		ReachAbove40:    sum.ReachAbove40,
		MedianSpreadDeg: sum.MedianSpreadDeg,
		P90SpreadDeg:    sum.P90SpreadDeg,
		DirectASes:      sum.ByExposure[asn.ExposureDirect],
		IndirectASes:    sum.ByExposure[asn.ExposureIndirect],
		LowASes:         sum.ByExposure[asn.ExposureLow],
	}
}
