package verify

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gicnet/internal/core"
	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/failure"
	"gicnet/internal/graph"
	"gicnet/internal/sim"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Result is the outcome of one named check — an invariant or a replay
// proof. Detail carries the evidence on success and the counterexample on
// failure, so a report is readable either way.
type Result struct {
	Name   string
	Passed bool
	Detail string
}

func pass(name, detail string, args ...any) Result {
	return Result{Name: name, Passed: true, Detail: fmt.Sprintf(detail, args...)}
}

func fail(name, detail string, args ...any) Result {
	return Result{Name: name, Passed: false, Detail: fmt.Sprintf(detail, args...)}
}

// Failed filters a result list down to the failures.
func Failed(rs []Result) []Result {
	var out []Result
	for _, r := range rs {
		if !r.Passed {
			out = append(out, r)
		}
	}
	return out
}

// Invariants runs the property and metamorphic checks of the model layer
// against a world. The checks are seeded (deterministic) but hold for any
// seed: a failure is a bug in the model or the engine, never noise.
func Invariants(w *dataset.World, seed uint64) []Result {
	return []Result{
		checkPlanProbabilities(w),
		checkIntensityMonotoneAnalytic(w),
		checkIntensityMonotoneCoupled(w, seed),
		checkRepeaterMonotone(w),
		checkAddedFailuresMonotone(w, seed),
		checkConnectivityNeverImproves(w, seed),
		checkUnionFindBFSAgreement(seed),
		checkPlanMatchesDirectPath(w, seed),
		checkSamplerEquivalence(w, seed),
		checkContractedDirectParity(w, seed),
		checkCrosslayerMonotone(w, seed),
		checkCrosslayerStrandedBounds(w, seed),
		checkCrosslayerBatchParity(w, seed),
	}
}

// invariantModels are the failure models the plan-level checks cover.
func invariantModels() []failure.Model {
	return []failure.Model{
		failure.Uniform{P: 0.01},
		failure.Uniform{P: 0.5},
		failure.S1(),
		failure.S2(),
	}
}

// checkPlanProbabilities compiles every network x model x spacing plan and
// validates it: probabilities in [0,1], repeaterless cables immune,
// incidence CSR consistent.
func checkPlanProbabilities(w *dataset.World) Result {
	const name = "plan-probabilities"
	plans := 0
	for _, net := range w.Networks() {
		for _, m := range invariantModels() {
			for _, spacing := range sim.DefaultSpacings() {
				plan, err := failure.Compile(net, m, spacing)
				if err != nil {
					return fail(name, "compile %s/%s@%g: %v", net.Name, m.Name(), spacing, err)
				}
				if err := plan.Validate(); err != nil {
					return fail(name, "%v", err)
				}
				plans++
			}
		}
	}
	return pass(name, "%d plans compiled and validated across %d networks", plans, len(w.Networks()))
}

// checkIntensityMonotoneAnalytic verifies that the analytic expected cable
// failure fraction is non-decreasing in the uniform per-repeater
// probability — the "more intense storm, more failures" direction of the
// model, without Monte Carlo noise in the way.
func checkIntensityMonotoneAnalytic(w *dataset.World) Result {
	const name = "intensity-monotone-analytic"
	ps := sim.DefaultProbabilities()
	for _, net := range w.Networks() {
		prev := -1.0
		for _, p := range ps {
			frac, err := failure.ExpectedCableFrac(net, failure.Uniform{P: p}, 150)
			if err != nil {
				return fail(name, "%s p=%g: %v", net.Name, p, err)
			}
			if frac < prev {
				return fail(name, "%s: E[cable frac] decreased from %v to %v as p rose to %g",
					net.Name, prev, frac, p)
			}
			prev = frac
		}
	}
	return pass(name, "E[cable frac] non-decreasing over p=%v..%v on all networks at 150 km",
		ps[0], ps[len(ps)-1])
}

// checkIntensityMonotoneCoupled is the metamorphic sharpening of the
// analytic check: with a shared RNG stream, the per-trial dead-cable set at
// probability p is a subset of the set at any p' > p (under SampleDense,
// every repeatered cable consumes exactly one uniform draw for p in (0,1)),
// so cables failed and nodes unreachable must be monotone trial by trial.
func checkIntensityMonotoneCoupled(w *dataset.World, seed uint64) Result {
	const name = "intensity-monotone-coupled"
	const trials = 16
	net := w.Submarine
	ps := []float64{0.001, 0.01, 0.05, 0.2, 0.5, 0.9}
	type trialOutcome struct{ cables, nodes int }
	prev := make([]trialOutcome, trials)
	for pi, p := range ps {
		plan, err := failure.Compile(net, failure.Uniform{P: p}, 150)
		if err != nil {
			return fail(name, "compile p=%g: %v", p, err)
		}
		dead := plan.NewDead()
		root := xrand.New(seed)
		for ti := 0; ti < trials; ti++ {
			rng := root.SplitAt(uint64(ti))
			plan.SampleDense(dead, &rng)
			o := plan.Evaluate(dead)
			cur := trialOutcome{o.CablesFailed, o.NodesUnreachable}
			if pi > 0 {
				if cur.cables < prev[ti].cables || cur.nodes < prev[ti].nodes {
					return fail(name,
						"trial %d: raising p from %g to %g dropped failures from %+v to %+v",
						ti, ps[pi-1], p, prev[ti], cur)
				}
			}
			prev[ti] = cur
		}
	}
	return pass(name, "%d coupled trials monotone over p=%v on %s", trials, ps, net.Name)
}

// checkRepeaterMonotone verifies that shrinking the inter-repeater spacing
// (more repeaters per cable) never decreases any cable's death probability.
func checkRepeaterMonotone(w *dataset.World) Result {
	const name = "repeater-monotone"
	spacings := append([]float64(nil), sim.DefaultSpacings()...)
	sort.Sort(sort.Reverse(sort.Float64Slice(spacings))) // widest first
	for _, net := range w.Networks() {
		for _, m := range invariantModels() {
			var prev []float64
			for _, spacing := range spacings {
				plan, err := failure.Compile(net, m, spacing)
				if err != nil {
					return fail(name, "compile %s/%s@%g: %v", net.Name, m.Name(), spacing, err)
				}
				probs := plan.DeathProbs()
				if prev != nil {
					for ci := range probs {
						if probs[ci] < prev[ci]-1e-15 {
							return fail(name,
								"%s/%s cable %d: death prob fell from %v to %v when spacing shrank to %g km",
								net.Name, m.Name(), ci, prev[ci], probs[ci], spacing)
						}
					}
				}
				prev = probs
			}
		}
	}
	return pass(name, "per-cable death prob non-decreasing over spacings %v on all networks and models", spacings)
}

// checkAddedFailuresMonotone verifies the damage side of monotonicity:
// killing additional cables never resurrects a node and never merges graph
// components.
func checkAddedFailuresMonotone(w *dataset.World, seed uint64) Result {
	const name = "added-failures-monotone"
	const rounds = 8
	rng := xrand.New(seed ^ 0xadd)
	for _, net := range []*topology.Network{w.Submarine, w.Intertubes} {
		plan, err := failure.Compile(net, failure.S1(), 150)
		if err != nil {
			return fail(name, "compile %s: %v", net.Name, err)
		}
		scratch := net.Graph().NewScratch()
		nc := plan.NumCables()
		dead := plan.NewDead()
		more := plan.NewDead()
		var deadEdges graph.Bitset
		for round := 0; round < rounds; round++ {
			r := rng.SplitAt(uint64(round))
			plan.SampleInto(dead, &r)
			base := plan.Evaluate(dead)
			deadEdges = net.DeadEdgeBitsInto(deadEdges, dead)
			baseComponents := scratch.ComponentsBits(deadEdges).Sets()
			// Kill a random batch of additional cables.
			more.CopyFrom(dead)
			for k := 0; k < 1+nc/20; k++ {
				more.Set(r.Intn(nc))
			}
			after := plan.Evaluate(more)
			deadEdges = net.DeadEdgeBitsInto(deadEdges, more)
			afterComponents := scratch.ComponentsBits(deadEdges).Sets()
			if after.CablesFailed < base.CablesFailed || after.NodesUnreachable < base.NodesUnreachable {
				return fail(name, "%s round %d: extra failures improved outcome %+v -> %+v",
					net.Name, round, base, after)
			}
			if afterComponents < baseComponents {
				return fail(name, "%s round %d: extra failures merged components %d -> %d",
					net.Name, round, baseComponents, afterComponents)
			}
		}
	}
	return pass(name, "%d rounds: unreachable count and component count never decreased under added failures", rounds)
}

// checkConnectivityNeverImproves verifies that a country pair disconnected
// under a failure set stays disconnected under any superset — the
// metamorphic form of "connectivity never increases under added failures"
// on the analysis the paper actually runs.
func checkConnectivityNeverImproves(w *dataset.World, seed uint64) Result {
	const name = "connectivity-never-improves"
	const rounds = 6
	net := w.Submarine
	pairs := [][2]string{{"us", "gb"}, {"sg", "in"}, {"au", "nz"}, {"br", "us"}}
	plan, err := failure.Compile(net, failure.S1(), 150)
	if err != nil {
		return fail(name, "compile: %v", err)
	}
	scratch := net.Graph().NewScratch()
	rng := xrand.New(seed ^ 0xc0)
	nc := plan.NumCables()
	dead := plan.NewDead()
	more := plan.NewDead()
	var deadEdges, moreEdges graph.Bitset
	checked := 0
	for round := 0; round < rounds; round++ {
		r := rng.SplitAt(uint64(round))
		plan.SampleInto(dead, &r)
		more.CopyFrom(dead)
		for k := 0; k < 1+nc/10; k++ {
			more.Set(r.Intn(nc))
		}
		deadEdges = net.DeadEdgeBitsInto(deadEdges, dead)
		moreEdges = net.DeadEdgeBitsInto(moreEdges, more)
		for _, pair := range pairs {
			from := nodeIDs(net.NodesOfCountry(pair[0]))
			to := nodeIDs(net.NodesOfCountry(pair[1]))
			if len(from) == 0 || len(to) == 0 {
				return fail(name, "pair %v resolves to empty node sets", pair)
			}
			before := scratch.AnyConnectedBits(deadEdges, from, to)
			after := scratch.AnyConnectedBits(moreEdges, from, to)
			if after && !before {
				return fail(name, "round %d: %s-%s disconnected under %d failures but connected under %d",
					round, pair[0], pair[1], dead.Count(), more.Count())
			}
			checked++
		}
	}
	return pass(name, "%d pair checks: connectivity never appeared under added failures", checked)
}

func nodeIDs(xs []int) []graph.NodeID {
	out := make([]graph.NodeID, len(xs))
	for i, x := range xs {
		out[i] = graph.NodeID(x)
	}
	return out
}

// checkUnionFindBFSAgreement cross-validates the two connectivity
// implementations on random graphs: every BFS reachable set must be
// exactly one union-find component, and the component count from the two
// algorithms must agree under random edge masks.
func checkUnionFindBFSAgreement(seed uint64) Result {
	const name = "unionfind-bfs-agreement"
	rng := xrand.New(seed ^ 0xbf5)
	const graphs = 6
	for gi := 0; gi < graphs; gi++ {
		r := rng.SplitAt(uint64(gi))
		n := 2 + r.Intn(40)
		m := r.Intn(3 * n)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < m; e++ {
			g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))) // self-loops allowed
		}
		mask := make(graph.AliveMask, g.NumEdges())
		for e := range mask {
			mask[e] = r.Bool(0.6)
		}
		scratch := g.NewScratch()
		uf := scratch.Components(mask)
		// BFS flood fill from every unvisited node; compare against the
		// union-find labelling.
		visited := make([]bool, n)
		bfsComponents := 0
		var buf []graph.NodeID
		for start := 0; start < n; start++ {
			if visited[start] {
				continue
			}
			bfsComponents++
			var err error
			buf, err = scratch.Reachable(buf[:0], graph.NodeID(start), mask)
			if err != nil {
				return fail(name, "graph %d: reachable(%d): %v", gi, start, err)
			}
			root := uf.Find(start)
			for _, node := range buf {
				visited[int(node)] = true
				if uf.Find(int(node)) != root {
					return fail(name, "graph %d (n=%d m=%d): node %d reachable from %d but in a different union-find component",
						gi, n, m, node, start)
				}
			}
		}
		if ufCount := g.ComponentCount(mask); ufCount != bfsComponents {
			return fail(name, "graph %d (n=%d m=%d): union-find sees %d components, BFS sees %d",
				gi, n, m, ufCount, bfsComponents)
		}
	}
	return pass(name, "%d random graphs: BFS and union-find agree on components under random masks", graphs)
}

// checkPlanMatchesDirectPath verifies the compiled fast path against the
// original model code: the plan's dense sampler must match SampleCableDeaths
// draw for draw, and the bitset Evaluate must agree with the graph-level
// Evaluate on both dense- and sparse-sampled realisations.
func checkPlanMatchesDirectPath(w *dataset.World, seed uint64) Result {
	const name = "plan-matches-direct-path"
	const trials = 8
	for _, net := range w.Networks() {
		for _, m := range []failure.Model{failure.Uniform{P: 0.03}, failure.S1()} {
			plan, err := failure.Compile(net, m, 150)
			if err != nil {
				return fail(name, "compile %s/%s: %v", net.Name, m.Name(), err)
			}
			dead := plan.NewDead()
			bools := make([]bool, plan.NumCables())
			root := xrand.New(seed ^ 0xe9)
			for ti := 0; ti < trials; ti++ {
				rngPlan := root.SplitAt(uint64(ti))
				rngDirect := root.SplitAt(uint64(ti))
				plan.SampleDense(dead, &rngPlan)
				direct, err := failure.SampleCableDeaths(net, m, 150, &rngDirect)
				if err != nil {
					return fail(name, "sample %s/%s: %v", net.Name, m.Name(), err)
				}
				for ci := range direct {
					if dead.Get(ci) != direct[ci] {
						return fail(name, "%s/%s trial %d: plan and direct sampling disagree on cable %d",
							net.Name, m.Name(), ti, ci)
					}
				}
				po := plan.Evaluate(dead)
				fo := failure.Evaluate(net, direct)
				if po != fo {
					return fail(name, "%s/%s trial %d: plan outcome %+v != direct outcome %+v",
						net.Name, m.Name(), ti, po, fo)
				}
				// The sparse sampler draws a different stream; its
				// realisations must still evaluate identically on both paths.
				rngSparse := root.SplitAt(uint64(ti) ^ 0x5a)
				plan.SampleInto(dead, &rngSparse)
				dead.Expand(bools)
				if po, fo := plan.Evaluate(dead), failure.Evaluate(net, bools); po != fo {
					return fail(name, "%s/%s trial %d: sparse realisation: plan outcome %+v != direct outcome %+v",
						net.Name, m.Name(), ti, po, fo)
				}
			}
		}
	}
	return pass(name, "plan sampling and evaluation bit-identical to the direct path on all networks")
}

// checkContractedDirectParity proves the two connectivity engines are
// interchangeable at the experiment level: the Figure 6/7 sweep and the
// country-connectivity analysis must produce identical result fingerprints
// whether the trial loops run on the plan's core contraction (the default)
// or the full-graph union-find reference path, at worker budgets 1 and 4.
// Equal fingerprints across the 2x2 engine-by-workers matrix mean every
// number in those experiments is byte-identical — the contraction is a pure
// performance transform.
func checkContractedDirectParity(w *dataset.World, seed uint64) Result {
	const name = "contracted-direct-parity"
	ctx := context.Background()
	cases := []experiments.CountryCase{
		{Target: "us", Partners: []core.Target{"region:europe", "br"}},
		{Target: "au", Partners: []core.Target{"nz", "sg"}},
	}
	var wantFig, wantCountry uint64
	runs := 0
	for _, workers := range []int{1, 4} {
		for _, direct := range []bool{false, true} {
			cfg := experiments.Config{Trials: 4, Seed: seed, Workers: workers, DirectConnectivity: direct}
			fig, err := experiments.Fig67(ctx, w, cfg)
			if err != nil {
				return fail(name, "fig67 workers=%d direct=%v: %v", workers, direct, err)
			}
			figFP, err := jsonFingerprint(fig)
			if err != nil {
				return fail(name, "fig67 fingerprint: %v", err)
			}
			country, err := experiments.Countries(ctx, w, cfg, cases)
			if err != nil {
				return fail(name, "countries workers=%d direct=%v: %v", workers, direct, err)
			}
			countryFP, err := jsonFingerprint(country)
			if err != nil {
				return fail(name, "countries fingerprint: %v", err)
			}
			if runs == 0 {
				wantFig, wantCountry = figFP, countryFP
			} else if figFP != wantFig || countryFP != wantCountry {
				return fail(name,
					"workers=%d direct=%v: fingerprints fig67=%016x country=%016x diverge from fig67=%016x country=%016x",
					workers, direct, figFP, countryFP, wantFig, wantCountry)
			}
			runs++
		}
	}
	return pass(name,
		"fig6/7 and country sweeps fingerprint-identical across engines {contracted,direct} x workers {1,4} (fig67=%016x, country=%016x)",
		wantFig, wantCountry)
}

// checkSamplerEquivalence is the old-vs-new sampler distribution proof: the
// sparse geometric-skip sampler must produce the same per-cable death
// distribution as the dense one-Bernoulli-per-cable path. Over N trials each
// cable's death count D_i is Binomial(N, p_i); the standardised statistic
// X = sum_i (D_i - N p_i)^2 / (N p_i (1-p_i)) over the k cables with
// p in (0,1) is chi-square with k degrees of freedom, so |X - k| stays well
// inside 6*sqrt(2k) for any honest sampler (a ~1e-9 false-positive bound).
// Both samplers are tested against the analytic marginals, and against each
// other via the two-sample homogeneity form of the same statistic.
func checkSamplerEquivalence(w *dataset.World, seed uint64) Result {
	const name = "sampler-chi-square-equivalence"
	const trials = 100000
	net := w.Submarine
	plan, err := failure.Compile(net, failure.Uniform{P: 0.003}, 150)
	if err != nil {
		return fail(name, "compile: %v", err)
	}
	nc := plan.NumCables()
	dead := plan.NewDead()
	sparse := make([]float64, nc) // death counts per cable
	dense := make([]float64, nc)
	rootSparse := xrand.New(seed ^ 0xc415)
	rootDense := xrand.New(seed ^ 0xd295)
	for ti := 0; ti < trials; ti++ {
		rng := rootSparse.SplitAt(uint64(ti))
		plan.SampleInto(dead, &rng)
		for ci := 0; ci < nc; ci++ {
			if dead.Get(ci) {
				sparse[ci]++
			}
		}
		rng = rootDense.SplitAt(uint64(ti))
		plan.SampleDense(dead, &rng)
		for ci := 0; ci < nc; ci++ {
			if dead.Get(ci) {
				dense[ci]++
			}
		}
	}
	k := 0.0
	var xSparse, xDense, xCross float64
	for ci := 0; ci < nc; ci++ {
		p := plan.DeathProb(ci)
		if p <= 0 || p >= 1 {
			continue
		}
		k++
		v := float64(trials) * p * (1 - p)
		dS := sparse[ci] - float64(trials)*p
		dD := dense[ci] - float64(trials)*p
		xSparse += dS * dS / v
		xDense += dD * dD / v
		dC := sparse[ci] - dense[ci]
		xCross += dC * dC / (2 * v)
	}
	if k == 0 {
		return fail(name, "no cables with non-degenerate probability")
	}
	bound := 6 * math.Sqrt(2*k)
	for _, c := range []struct {
		label string
		x     float64
	}{{"sparse-vs-analytic", xSparse}, {"dense-vs-analytic", xDense}, {"sparse-vs-dense", xCross}} {
		if math.Abs(c.x-k) > bound {
			return fail(name, "%s: chi-square %0.1f for %0.0f dof exceeds %0.0f±%0.1f over %d trials",
				c.label, c.x, k, k, bound, trials)
		}
	}
	return pass(name, "per-cable death counts over %d trials: chi-square %0.1f/%0.1f/%0.1f vs %0.0f dof (bound ±%0.1f)",
		trials, xSparse, xDense, xCross, k, bound)
}
