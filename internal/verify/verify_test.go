package verify

import (
	"context"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
)

func testWorld(t *testing.T) *dataset.World {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// goldenConfig mirrors the configuration the checked-in golden was
// captured with (cmd/validate defaults).
func goldenConfig() experiments.Config {
	return experiments.Config{Trials: 10, Seed: dataset.DefaultSeed}
}

// TestGoldenRegression is the in-test form of `cmd/validate -only golden`:
// a fresh capture must match the checked-in snapshot within the default
// tolerance. If this fails after an intended model change, run
// `make update-golden`, review the diff, and commit it.
func TestGoldenRegression(t *testing.T) {
	golden, err := LoadGolden("goldens/reproduce.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig()
	if golden.Seed != cfg.Seed || golden.Trials != cfg.Trials {
		t.Fatalf("golden captured with seed=%d trials=%d; test expects seed=%d trials=%d",
			golden.Seed, golden.Trials, cfg.Seed, cfg.Trials)
	}
	snap, err := Capture(context.Background(), testWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mismatches, err := DiffSnapshots(snap, golden, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range mismatches {
		if i >= 20 {
			t.Errorf("... and %d more mismatches", len(mismatches)-i)
			break
		}
		t.Errorf("golden mismatch: %s", m)
	}
}

func TestCaptureShape(t *testing.T) {
	cfg := experiments.Config{Trials: 2, Seed: 7}
	snap, err := Capture(context.Background(), testWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SchemaVersion || snap.Seed != 7 || snap.Trials != 2 {
		t.Errorf("meta = %+v", snap)
	}
	if len(snap.Calibration.Networks) != 3 {
		t.Errorf("calibration networks = %d, want 3", len(snap.Calibration.Networks))
	}
	if len(snap.Fig67.Cells) != 9 {
		t.Errorf("fig67 cells = %d, want 9", len(snap.Fig67.Cells))
	}
	if len(snap.Fig8.Rows) != 12 {
		t.Errorf("fig8 rows = %d, want 12", len(snap.Fig8.Rows))
	}
	if _, ok := snap.Fig5["submarine"]; !ok {
		t.Error("fig5 missing submarine quantiles")
	}
	if len(snap.Country["S1"]) == 0 || len(snap.Country["S2"]) == 0 {
		t.Error("country summaries missing")
	}
	if len(snap.Systems) != 5 {
		t.Errorf("systems rows = %d, want 5", len(snap.Systems))
	}
	if snap.Fig9 == nil || snap.Fig9.DirectASes+snap.Fig9.IndirectASes+snap.Fig9.LowASes == 0 {
		t.Error("fig9 exposure counts all zero")
	}
}

// TestCaptureDeterministic: two captures with the same config must be
// identical — the property the golden layer rests on.
func TestCaptureDeterministic(t *testing.T) {
	w := testWorld(t)
	cfg := experiments.Config{Trials: 3, Seed: 99}
	a, err := Capture(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4 // different parallelism must not matter
	b, err := Capture(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := DiffSnapshots(a, b, Tolerance{}) // zero tolerance: exact
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("captures diverged: %v", ms)
	}
}

func TestWriteGoldenRoundTrip(t *testing.T) {
	snap, err := Capture(context.Background(), testWorld(t), experiments.Config{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/golden.json"
	if err := WriteGolden(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := DiffSnapshots(snap, loaded, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("round trip diverged: %v", ms)
	}
}

func TestLoadGoldenFallsBackToEmbedded(t *testing.T) {
	fromDisk, err := LoadGolden("goldens/reproduce.json")
	if err != nil {
		t.Fatal(err)
	}
	fromEmbed, err := LoadGolden(t.TempDir() + "/does-not-exist.json")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := DiffSnapshots(fromDisk, fromEmbed, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("embedded golden diverges from on-disk golden: %v", ms)
	}
}
