package verify

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Tolerance bounds the acceptable numeric deviation in a golden diff: a
// number passes when |got-want| <= Abs + Rel*max(|got|,|want|).
//
// The engine is deterministic for a fixed seed, so the defaults are tiny:
// they absorb only cross-platform floating-point variation (FMA
// contraction, libm sin/cos differences), not statistical noise. A golden
// mismatch therefore means the model changed, not that the dice rolled
// differently.
type Tolerance struct {
	Rel float64
	Abs float64
}

// DefaultTolerance is the golden-regression default: one part in 10^9
// relative, 1e-12 absolute.
func DefaultTolerance() Tolerance { return Tolerance{Rel: 1e-9, Abs: 1e-12} }

// ok reports whether got and want are equal within the tolerance.
func (t Tolerance) ok(got, want float64) bool {
	//gicnet:allow floatcmp exact fast path (infinities, integers) before the tolerance test
	if got == want { // covers infinities and exact integers
		return true
	}
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) && math.IsNaN(want)
	}
	return math.Abs(got-want) <= t.Abs+t.Rel*math.Max(math.Abs(got), math.Abs(want))
}

// Mismatch is one golden divergence, located by a JSON-style path.
type Mismatch struct {
	Path string
	Got  string
	Want string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("%s: got %s, want %s", m.Path, m.Got, m.Want)
}

// DiffSnapshots compares a captured snapshot against a golden one. It
// returns one Mismatch per diverging leaf value, with paths like
// "fig67.Cells[3].CableMean[5]" so a failure reads as "this number of this
// figure moved". An empty slice means the snapshots agree within tol.
func DiffSnapshots(got, want *Snapshot, tol Tolerance) ([]Mismatch, error) {
	gt, err := toTree(got)
	if err != nil {
		return nil, fmt.Errorf("verify: encode captured snapshot: %w", err)
	}
	wt, err := toTree(want)
	if err != nil {
		return nil, fmt.Errorf("verify: encode golden snapshot: %w", err)
	}
	var out []Mismatch
	diffValue("", gt, wt, tol, &out)
	return out, nil
}

// toTree round-trips a value through JSON into the generic tree the walker
// understands. Using the JSON form means the diff covers exactly what the
// golden file persists — no more, no less.
func toTree(v any) (any, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var tree any
	if err := json.Unmarshal(b, &tree); err != nil {
		return nil, err
	}
	return tree, nil
}

func render(v any) string {
	if v == nil {
		return "<absent>"
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprint(v)
	}
	return string(b)
}

func diffValue(path string, got, want any, tol Tolerance, out *[]Mismatch) {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			*out = append(*out, Mismatch{path, render(got), render(want)})
			return
		}
		keys := make([]string, 0, len(w))
		for k := range w {
			//gicnet:allow determinism keys are sorted before the walk below
			keys = append(keys, k)
		}
		for k := range g {
			if _, dup := w[k]; !dup {
				//gicnet:allow determinism keys are sorted before the walk below
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			kp := k
			if path != "" {
				kp = path + "." + k
			}
			gv, gok := g[k]
			wv, wok := w[k]
			switch {
			case !gok:
				*out = append(*out, Mismatch{kp, "<absent>", render(wv)})
			case !wok:
				*out = append(*out, Mismatch{kp, render(gv), "<absent>"})
			default:
				diffValue(kp, gv, wv, tol, out)
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			*out = append(*out, Mismatch{path, render(got), render(want)})
			return
		}
		if len(g) != len(w) {
			*out = append(*out, Mismatch{path + ".len", fmt.Sprint(len(g)), fmt.Sprint(len(w))})
			return
		}
		for i := range w {
			diffValue(fmt.Sprintf("%s[%d]", path, i), g[i], w[i], tol, out)
		}
	case float64:
		g, ok := got.(float64)
		if !ok || !tol.ok(g, w) {
			*out = append(*out, Mismatch{path, render(got), render(want)})
		}
	default: // string, bool, nil
		if render(got) != render(want) {
			*out = append(*out, Mismatch{path, render(got), render(want)})
		}
	}
}
