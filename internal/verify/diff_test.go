package verify

import (
	"strings"
	"testing"
)

func TestToleranceOK(t *testing.T) {
	tol := Tolerance{Rel: 1e-9, Abs: 1e-12}
	cases := []struct {
		name      string
		got, want float64
		ok        bool
	}{
		{"exact", 1.5, 1.5, true},
		{"within-rel", 1e6, 1e6 * (1 + 1e-10), true},
		{"outside-rel", 1e6, 1e6 * (1 + 1e-8), false},
		{"within-abs", 0, 1e-13, true},
		{"outside-abs", 0, 1e-11, false},
		{"both-nan", nan(), nan(), true},
		{"one-nan", 1, nan(), false},
		{"zero-zero", 0, 0, true},
	}
	for _, c := range cases {
		if got := tol.ok(c.got, c.want); got != c.ok {
			t.Errorf("%s: ok(%v, %v) = %v, want %v", c.name, c.got, c.want, got, c.ok)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// diffTrees is a test helper running the walker over two ad-hoc values.
func diffTrees(t *testing.T, got, want any, tol Tolerance) []Mismatch {
	t.Helper()
	gt, err := toTree(got)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := toTree(want)
	if err != nil {
		t.Fatal(err)
	}
	var out []Mismatch
	diffValue("", gt, wt, tol, &out)
	return out
}

func TestDiffValuePaths(t *testing.T) {
	tol := DefaultTolerance()
	type inner struct {
		Xs []float64 `json:"xs"`
	}
	type outer struct {
		Name  string  `json:"name"`
		Inner []inner `json:"inner"`
	}
	got := outer{Name: "a", Inner: []inner{{Xs: []float64{1, 2, 3}}}}
	want := outer{Name: "a", Inner: []inner{{Xs: []float64{1, 2.5, 3}}}}
	ms := diffTrees(t, got, want, tol)
	if len(ms) != 1 {
		t.Fatalf("mismatches = %v, want exactly 1", ms)
	}
	if ms[0].Path != "inner[0].xs[1]" {
		t.Errorf("path = %q, want inner[0].xs[1]", ms[0].Path)
	}
	if !strings.Contains(ms[0].String(), "got 2, want 2.5") {
		t.Errorf("rendered mismatch %q lacks values", ms[0].String())
	}
}

func TestDiffValueShapeMismatches(t *testing.T) {
	tol := DefaultTolerance()
	// Array length mismatch reports once, not per element.
	ms := diffTrees(t, map[string][]float64{"xs": {1, 2}}, map[string][]float64{"xs": {1, 2, 3}}, tol)
	if len(ms) != 1 || ms[0].Path != "xs.len" {
		t.Errorf("length mismatch = %v, want one xs.len entry", ms)
	}
	// Missing and extra keys are both reported.
	ms = diffTrees(t, map[string]float64{"a": 1, "extra": 2}, map[string]float64{"a": 1, "missing": 3}, tol)
	if len(ms) != 2 {
		t.Fatalf("key mismatches = %v, want 2", ms)
	}
	paths := []string{ms[0].Path, ms[1].Path}
	if paths[0] != "extra" || paths[1] != "missing" {
		t.Errorf("paths = %v, want [extra missing]", paths)
	}
	// Type mismatch (string vs number).
	ms = diffTrees(t, map[string]any{"v": "s"}, map[string]any{"v": 1.0}, tol)
	if len(ms) != 1 {
		t.Errorf("type mismatch = %v, want 1", ms)
	}
}

func TestDiffSnapshotsDetectsPerturbation(t *testing.T) {
	base := &Snapshot{
		Schema: SchemaVersion,
		Seed:   1,
		Trials: 2,
		Fig5:   map[string]LengthQuantiles{"submarine": {P50: 775, P99: 28000}},
	}
	same := *base
	ms, err := DiffSnapshots(&same, base, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("identical snapshots diff: %v", ms)
	}
	perturbed := *base
	perturbed.Fig5 = map[string]LengthQuantiles{"submarine": {P50: 776, P99: 28000}}
	ms, err = DiffSnapshots(&perturbed, base, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || !strings.Contains(ms[0].Path, "fig5.submarine.p50") {
		t.Fatalf("perturbation diff = %v, want one fig5.submarine.p50 mismatch", ms)
	}
}
