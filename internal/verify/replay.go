package verify

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"

	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/failure"
	"gicnet/internal/rare"
	"gicnet/internal/sim"
)

// ReplayWorkerCounts are the worker counts the replay proof covers: the
// serial baseline, a fixed small pool, and whatever this machine's
// GOMAXPROCS-scale pool is. Duplicates are collapsed.
func ReplayWorkerCounts() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Replay proves the engine's scheduling-independence contract: sim.Run and
// the Figure 6/7/8 sweeps produce byte-identical results for every worker
// count and across repeated runs. Each check reports the fingerprints it
// compared, so a pass documents the evidence and a failure names the
// worker count that diverged.
func Replay(ctx context.Context, w *dataset.World, cfg experiments.Config) []Result {
	return []Result{
		replayRun(ctx, w, cfg),
		replaySweep(ctx, w, cfg),
		replayFig67(ctx, w, cfg),
		replayFig8(ctx, w, cfg),
		replayPinned(ctx, w),
		replayEstimator(ctx, w, cfg),
		replayServed(ctx, w),
		replayCrosslayer(ctx, w, cfg),
	}
}

// Pinned fingerprints of the plain Monte Carlo engine, captured before the
// rare-event estimator layer existed. The default path must keep producing
// these bytes forever: any drift means the estimator seam leaked into the
// nil-estimator trial loop. Both pins use the canonical seed at the
// paper's 10-trial budget, serial.
const (
	pinnedRunFingerprint   uint64 = 0xcff318a754b39723 // sim.Run, Submarine, S1, 150km
	pinnedSweepFingerprint uint64 = 0x6ce067845eb876da // SweepUniform, Intertubes, Uniform, 100km
)

// replayPinned replays the two pinned configurations and compares against
// the historical constants.
func replayPinned(ctx context.Context, w *dataset.World) Result {
	const name = "replay-pinned-plain"
	runCfg := sim.Config{Model: failure.S1(), SpacingKm: 150, Trials: 10, Seed: dataset.DefaultSeed, Workers: 1}
	res, err := sim.Run(ctx, w.Submarine, runCfg)
	if err != nil {
		return fail(name, "pinned run: %v", err)
	}
	if fp := res.Fingerprint(); fp != pinnedRunFingerprint {
		return fail(name, "pinned sim.Run fingerprint %016x != historical %016x — plain path no longer bit-identical", fp, pinnedRunFingerprint)
	}
	sweepCfg := sim.Config{Model: failure.Uniform{}, SpacingKm: 100, Trials: 10, Seed: dataset.DefaultSeed, Workers: 1}
	pts, err := sim.SweepUniform(ctx, w.Intertubes, sweepCfg, sim.DefaultProbabilities())
	if err != nil {
		return fail(name, "pinned sweep: %v", err)
	}
	h := fnv.New64a()
	for _, pt := range pts {
		fmt.Fprintf(h, "%g:%016x|", pt.P, pt.Result.Fingerprint())
	}
	if fp := h.Sum64(); fp != pinnedSweepFingerprint {
		return fail(name, "pinned sweep fingerprint %016x != historical %016x — plain path no longer bit-identical", fp, pinnedSweepFingerprint)
	}
	return pass(name, "plain engine still bit-identical to pre-estimator pins (%016x, %016x)",
		pinnedRunFingerprint, pinnedSweepFingerprint)
}

// replayEstimator extends the scheduling-independence proof to the
// rare-event estimators: tilted and quasi-random trial loops must also be
// byte-identical across worker counts and across repetition.
func replayEstimator(ctx context.Context, w *dataset.World, cfg experiments.Config) Result {
	const name = "replay-estimator"
	for _, est := range []*rare.Estimator{rare.NewIS(0), rare.NewISQMC(0)} {
		base := sim.Config{Model: failure.Uniform{P: 1e-5}, SpacingKm: 100, Trials: cfg.Trials,
			Seed: cfg.Seed, Estimator: est}
		var want uint64
		for i, workers := range ReplayWorkerCounts() {
			c := base
			c.Workers = workers
			res, err := sim.Run(ctx, w.Submarine, c)
			if err != nil {
				return fail(name, "%s workers=%d: %v", est.EstimatorName(), workers, err)
			}
			fp := res.Fingerprint()
			if i == 0 {
				want = fp
				again, err := sim.Run(ctx, w.Submarine, c)
				if err != nil {
					return fail(name, "%s repeat run: %v", est.EstimatorName(), err)
				}
				if again.Fingerprint() != fp {
					return fail(name, "%s repeated serial run diverged: %016x vs %016x", est.EstimatorName(), again.Fingerprint(), fp)
				}
			} else if fp != want {
				return fail(name, "%s workers=%d fingerprint %016x != serial %016x", est.EstimatorName(), workers, fp, want)
			}
		}
	}
	return pass(name, "is and is-qmc runs byte-identical across workers %v", ReplayWorkerCounts())
}

// replayRun checks sim.Run across worker counts and across repetition.
func replayRun(ctx context.Context, w *dataset.World, cfg experiments.Config) Result {
	const name = "replay-sim-run"
	base := sim.Config{Model: failure.S1(), SpacingKm: 150, Trials: cfg.Trials, Seed: cfg.Seed}
	var want uint64
	for i, workers := range ReplayWorkerCounts() {
		c := base
		c.Workers = workers
		res, err := sim.Run(ctx, w.Submarine, c)
		if err != nil {
			return fail(name, "workers=%d: %v", workers, err)
		}
		fp := res.Fingerprint()
		if i == 0 {
			want = fp
			// Repeat the serial run to prove same-seed reproducibility.
			again, err := sim.Run(ctx, w.Submarine, c)
			if err != nil {
				return fail(name, "repeat run: %v", err)
			}
			if again.Fingerprint() != fp {
				return fail(name, "repeated serial run diverged: %016x vs %016x", again.Fingerprint(), fp)
			}
		} else if fp != want {
			return fail(name, "workers=%d fingerprint %016x != serial %016x", workers, fp, want)
		}
	}
	return pass(name, "sim.Run byte-identical across workers %v (fingerprint %016x)", ReplayWorkerCounts(), want)
}

// replaySweep checks SweepUniform across worker counts.
func replaySweep(ctx context.Context, w *dataset.World, cfg experiments.Config) Result {
	const name = "replay-sweep-uniform"
	ps := sim.DefaultProbabilities()
	var want uint64
	for i, workers := range ReplayWorkerCounts() {
		c := sim.Config{Model: failure.Uniform{}, SpacingKm: 100, Trials: cfg.Trials, Seed: cfg.Seed, Workers: workers}
		pts, err := sim.SweepUniform(ctx, w.Intertubes, c, ps)
		if err != nil {
			return fail(name, "workers=%d: %v", workers, err)
		}
		h := fnv.New64a()
		for _, pt := range pts {
			fmt.Fprintf(h, "%g:%016x|", pt.P, pt.Result.Fingerprint())
		}
		fp := h.Sum64()
		if i == 0 {
			want = fp
		} else if fp != want {
			return fail(name, "workers=%d sweep fingerprint %016x != serial %016x", workers, fp, want)
		}
	}
	return pass(name, "%d-point sweep byte-identical across workers %v (fingerprint %016x)",
		len(ps), ReplayWorkerCounts(), want)
}

// jsonFingerprint hashes any JSON-encodable value; the encoding is
// deterministic (sorted map keys), so equal fingerprints mean equal values.
func jsonFingerprint(v any) (uint64, error) {
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(v); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// replayFig67 checks the full Figure 6/7 experiment across worker budgets.
func replayFig67(ctx context.Context, w *dataset.World, cfg experiments.Config) Result {
	const name = "replay-fig67"
	var want uint64
	for i, workers := range ReplayWorkerCounts() {
		c := cfg
		c.Workers = workers
		r, err := experiments.Fig67(ctx, w, c)
		if err != nil {
			return fail(name, "workers=%d: %v", workers, err)
		}
		fp, err := jsonFingerprint(r)
		if err != nil {
			return fail(name, "fingerprint: %v", err)
		}
		if i == 0 {
			want = fp
		} else if fp != want {
			return fail(name, "workers=%d result fingerprint %016x != serial %016x", workers, fp, want)
		}
	}
	return pass(name, "Fig 6/7 sweeps byte-identical across workers %v (fingerprint %016x)", ReplayWorkerCounts(), want)
}

// replayFig8 checks the Figure 8 experiment across worker budgets.
func replayFig8(ctx context.Context, w *dataset.World, cfg experiments.Config) Result {
	const name = "replay-fig8"
	var want uint64
	for i, workers := range ReplayWorkerCounts() {
		c := cfg
		c.Workers = workers
		r, err := experiments.Fig8(ctx, w, c)
		if err != nil {
			return fail(name, "workers=%d: %v", workers, err)
		}
		fp, err := jsonFingerprint(r)
		if err != nil {
			return fail(name, "fingerprint: %v", err)
		}
		if i == 0 {
			want = fp
		} else if fp != want {
			return fail(name, "workers=%d result fingerprint %016x != serial %016x", workers, fp, want)
		}
	}
	return pass(name, "Fig 8 runs byte-identical across workers %v (fingerprint %016x)", ReplayWorkerCounts(), want)
}
