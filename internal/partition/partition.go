// Package partition implements the §5.3 / §5.1 extensions: analysing how
// the Internet fragments after a storm, and recommending low-latitude
// cable additions that keep the partitions stitched together (the paper's
// guidance: add capacity in lower latitudes and more links through Central
// and South America).
package partition

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/graph"
	"gicnet/internal/sim"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Fragmentation summarises one post-storm partition realisation.
type Fragmentation struct {
	// Components is the number of connected components among nodes that
	// still have at least one live cable.
	Components int
	// LargestFrac is the largest component's share of connected nodes.
	LargestFrac float64
	// IsolatedNodes counts nodes with every cable dead.
	IsolatedNodes int
	// RegionSplit counts, per region, how many distinct components its
	// nodes fall into — the paper's "potentially disconnected landmasses".
	RegionSplit map[geo.Region]int
}

// Analyze computes the fragmentation of a network under a cable-death
// realisation. It is the exact full-graph reference: labels come from a
// fresh Components pass over every edge. The Monte Carlo loop in
// MeanFragmentation produces identical summaries through the plan's core
// contraction instead.
func Analyze(net *topology.Network, cableDead []bool) (*Fragmentation, error) {
	if len(cableDead) != len(net.Cables) {
		return nil, errors.New("partition: death vector length mismatch")
	}
	g := net.Graph()
	mask := net.AliveMask(cableDead)
	labels, _ := g.Components(mask)
	return aggregate(net, cableDead, func(i int) int { return labels[i] }), nil
}

// aggregate folds one realisation's component labelling into a
// Fragmentation. labelOf must return a label equal for two nodes exactly
// when they share a component; the label values themselves are free, which
// is what lets the contracted union-find (labels are supernode roots) and
// the full-graph labelling (labels are dense component indices) share this
// code and produce identical output.
func aggregate(net *topology.Network, cableDead []bool, labelOf func(i int) int) *Fragmentation {
	g := net.Graph()
	// Only nodes with a live cable participate in "components".
	iso := map[int]bool{}
	for _, n := range net.UnreachableNodes(cableDead) {
		iso[n] = true
	}
	compSet := map[int]int{}
	regionComps := map[geo.Region]map[int]bool{}
	connected := 0
	for i, nd := range net.Nodes {
		if iso[i] || g.Degree(graph.NodeID(i)) == 0 {
			continue
		}
		connected++
		label := labelOf(i)
		compSet[label]++
		if nd.HasCoord {
			r := geo.RegionOf(nd.Coord)
			if regionComps[r] == nil {
				regionComps[r] = map[int]bool{}
			}
			regionComps[r][label] = true
		}
	}
	largest := 0
	for _, n := range compSet {
		if n > largest {
			largest = n
		}
	}
	f := &Fragmentation{
		Components:    len(compSet),
		IsolatedNodes: len(iso),
		RegionSplit:   map[geo.Region]int{},
	}
	if connected > 0 {
		f.LargestFrac = float64(largest) / float64(connected)
	}
	for r, comps := range regionComps {
		f.RegionSplit[r] = len(comps)
	}
	return f
}

// MeanFragmentation averages fragmentation over Monte Carlo trials.
func MeanFragmentation(net *topology.Network, m failure.Model, spacingKm float64, trials int, seed uint64) (*Fragmentation, error) {
	f, _, err := MeanFragmentationEst(net, m, spacingKm, trials, seed, nil)
	return f, err
}

// MeanFragmentationEst is MeanFragmentation with an optional rare-event
// estimator: with est != nil the trial blocks are drawn by the estimator
// and every per-trial summary is scaled by its likelihood ratio, so the
// returned means stay unbiased for the plan's own distribution even when
// the draws are tilted toward catastrophe. The second return is the Kish
// effective sample size of the weights (trials when est is nil). A nil
// estimator reproduces MeanFragmentation draw for draw.
func MeanFragmentationEst(net *topology.Network, m failure.Model, spacingKm float64, trials int, seed uint64, est sim.Estimator) (*Fragmentation, float64, error) {
	if trials <= 0 {
		return nil, 0, errors.New("partition: trials must be positive")
	}
	plan, err := failure.Compile(net, m, spacingKm)
	if err != nil {
		return nil, 0, err
	}
	// Per-trial components run on the plan's core contraction: the dead
	// cable bitset is the query mask and only the at-risk frontier is
	// unioned. aggregate makes the summaries identical to Analyze's (the
	// contracted union-find roots are a valid labelling), which
	// TestMeanFragmentationContractedMatchesAnalyze pins trial by trial.
	cc := plan.Contraction()
	scratch := net.Graph().NewScratch()
	root := xrand.New(seed)
	agg := &Fragmentation{RegionSplit: map[geo.Region]int{}}
	regionTotals := map[geo.Region]float64{}
	var comps, largest, isolated float64
	var sumW, sumW2 float64
	var batch failure.BatchScratch
	batch.Grow(plan)
	var logw []float64
	if est != nil {
		logw = make([]float64, failure.MaxBatch)
	}
	deadBools := make([]bool, plan.NumCables())
	for t0 := 0; t0 < trials; t0 += failure.MaxBatch {
		bn := trials - t0
		if bn > failure.MaxBatch {
			bn = failure.MaxBatch
		}
		if est != nil {
			est.SampleBlock(plan, &batch, root, uint64(t0), bn, logw[:bn])
		} else {
			plan.SampleBatch(&batch, root, uint64(t0), bn)
		}
		for b := 0; b < bn; b++ {
			w := 1.0
			if est != nil {
				w = math.Exp(logw[b])
			}
			sumW += w
			sumW2 += w * w
			dead := batch.Row(b)
			dead.Expand(deadBools) // the isolated-node walk still speaks []bool
			uf := scratch.ComponentsCore(cc, dead)
			f := aggregate(net, deadBools, func(i int) int {
				return uf.Find(int(cc.Super(graph.NodeID(i))))
			})
			comps += w * float64(f.Components)
			largest += w * f.LargestFrac
			isolated += w * float64(f.IsolatedNodes)
			for r, n := range f.RegionSplit {
				regionTotals[r] += w * float64(n)
			}
		}
	}
	n := float64(trials)
	agg.Components = int(comps/n + 0.5)
	agg.LargestFrac = largest / n
	agg.IsolatedNodes = int(isolated/n + 0.5)
	for r, total := range regionTotals {
		agg.RegionSplit[r] = int(total/n + 0.5)
	}
	ess := n
	if est != nil && sumW2 > 0 {
		ess = sumW * sumW / sumW2
	}
	return agg, ess, nil
}

// Candidate is a proposed new low-latitude cable.
type Candidate struct {
	From, To string // anchor names
	LengthKm float64
	// MaxAbsLat of the two endpoints: drives the survival probability.
	MaxAbsLat float64
	// SurvivalProb under the reference model.
	SurvivalProb float64
	// Benefit is the measured improvement in cross-partition survival
	// (filled by Recommend).
	Benefit float64
}

// Recommend proposes up to n new cables between anchor pairs, favouring
// low-latitude routes (both endpoints below the mid-band cut) that bridge
// different regions, ranked by the connectivity benefit they add between
// the two probe targets under the model. It mutates nothing: each
// candidate is evaluated on a copy of the network.
func Recommend(w *dataset.World, m failure.Model, spacingKm float64, trials int, seed uint64, n int, probeA, probeB string) ([]Candidate, error) {
	if n <= 0 {
		return nil, errors.New("partition: need n > 0")
	}
	net := w.Submarine
	base, err := pairSurvival(net, m, spacingKm, trials, seed, probeA, probeB)
	if err != nil {
		return nil, err
	}

	var cands []Candidate
	for _, from := range dataset.Anchors() {
		if from.Coord.AbsLat() >= geo.MidBandCut {
			continue
		}
		for _, to := range dataset.Anchors() {
			if to.Name <= from.Name || to.Coord.AbsLat() >= geo.MidBandCut {
				continue
			}
			if geo.RegionOf(from.Coord) == geo.RegionOf(to.Coord) {
				continue // bridges must cross regions
			}
			d := geo.Haversine(from.Coord, to.Coord) * 1.2
			if d < 3000 || d > 12000 {
				continue // too short to matter / too long to survive
			}
			cands = append(cands, Candidate{
				From: from.Name, To: to.Name, LengthKm: d,
				MaxAbsLat: maxf(from.Coord.AbsLat(), to.Coord.AbsLat()),
			})
		}
	}
	// Pre-rank by analytic survival x probe relevance, then evaluate the
	// top slice by simulation (evaluating all ~1000 candidates would be
	// wasteful). Relevance: a bridge can only help the probe pair if its
	// landings sit near the probes' nodes — one end near each side.
	probeACoords := coordsOf(net, nodesOf(net, probeA))
	probeBCoords := coordsOf(net, nodesOf(net, probeB))
	prelim := make([]float64, len(cands))
	for i := range cands {
		p, err := hypotheticalDeathProb(net, m, spacingKm, cands[i])
		if err != nil {
			return nil, err
		}
		cands[i].SurvivalProb = 1 - p
		fromA, okA := dataset.AnchorByName(cands[i].From)
		toA, _ := dataset.AnchorByName(cands[i].To)
		if !okA {
			continue
		}
		// Best assignment of the two endpoints to the two probe sides.
		d1 := minDist(fromA.Coord, probeACoords) + minDist(toA.Coord, probeBCoords)
		d2 := minDist(fromA.Coord, probeBCoords) + minDist(toA.Coord, probeACoords)
		d := d1
		if d2 < d {
			d = d2
		}
		relevance := 1 / (1 + d/4000)
		prelim[i] = cands[i].SurvivalProb * relevance
	}
	sort.Sort(&byScore{cands, prelim})
	limit := 4 * n
	if limit > len(cands) {
		limit = len(cands)
	}
	evaluated := cands[:limit]
	for i := range evaluated {
		augmented, err := withCandidate(net, evaluated[i])
		if err != nil {
			return nil, err
		}
		after, err := pairSurvival(augmented, m, spacingKm, trials, seed, probeA, probeB)
		if err != nil {
			return nil, err
		}
		evaluated[i].Benefit = after - base
	}
	sort.Slice(evaluated, func(i, j int) bool { return evaluated[i].Benefit > evaluated[j].Benefit })
	if len(evaluated) > n {
		evaluated = evaluated[:n]
	}
	return evaluated, nil
}

// byScore sorts candidates and their scores together, descending.
type byScore struct {
	cands  []Candidate
	scores []float64
}

func (b *byScore) Len() int           { return len(b.cands) }
func (b *byScore) Less(i, j int) bool { return b.scores[i] > b.scores[j] }
func (b *byScore) Swap(i, j int) {
	b.cands[i], b.cands[j] = b.cands[j], b.cands[i]
	b.scores[i], b.scores[j] = b.scores[j], b.scores[i]
}

// coordsOf extracts coordinates of node indices with coordinates.
func coordsOf(net *topology.Network, nodes []int) []geo.Coord {
	out := make([]geo.Coord, 0, len(nodes))
	for _, n := range nodes {
		if net.Nodes[n].HasCoord {
			out = append(out, net.Nodes[n].Coord)
		}
	}
	return out
}

// minDist returns the smallest haversine distance from c to any of pts
// (infinite if pts is empty).
func minDist(c geo.Coord, pts []geo.Coord) float64 {
	best := 1e18
	for _, p := range pts {
		if d := geo.Haversine(c, p); d < best {
			best = d
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// hypotheticalDeathProb computes the death probability a candidate cable
// would have: its repeaters take the model's probability for a synthetic
// cable whose highest endpoint is the candidate's.
func hypotheticalDeathProb(net *topology.Network, m failure.Model, spacingKm float64, c Candidate) (float64, error) {
	tmp, err := withCandidate(net, c)
	if err != nil {
		return 0, err
	}
	return failure.CableDeathProb(tmp, m, spacingKm, len(tmp.Cables)-1)
}

// withCandidate returns a copy of net with the candidate cable appended.
func withCandidate(net *topology.Network, c Candidate) (*topology.Network, error) {
	fromA, okA := dataset.AnchorByName(c.From)
	toA, okB := dataset.AnchorByName(c.To)
	if !okA || !okB {
		return nil, fmt.Errorf("partition: unknown anchor %q or %q", c.From, c.To)
	}
	cp := &topology.Network{Name: net.Name + "+candidate"}
	cp.Nodes = append(cp.Nodes, net.Nodes...)
	cp.Cables = append(cp.Cables, net.Cables...)
	a := len(cp.Nodes)
	cp.Nodes = append(cp.Nodes, topology.Node{
		Name: "cand-" + c.From, Coord: fromA.Coord, HasCoord: true, Country: fromA.Country,
	})
	b := len(cp.Nodes)
	cp.Nodes = append(cp.Nodes, topology.Node{
		Name: "cand-" + c.To, Coord: toA.Coord, HasCoord: true, Country: toA.Country,
	})
	// Tie the new landing stations into the existing network with short
	// backhaul segments to the nearest existing node of the same country.
	cp.Cables = append(cp.Cables, topology.Cable{
		Name: fmt.Sprintf("candidate-%s-%s", c.From, c.To),
		Segments: []topology.Segment{
			{A: a, B: b, LengthKm: c.LengthKm},
			{A: a, B: nearestOfCountry(net, fromA), LengthKm: 50},
			{A: b, B: nearestOfCountry(net, toA), LengthKm: 50},
		},
		KnownLength: true,
	})
	return cp, nil
}

// nearestOfCountry finds the nearest existing node in the anchor's
// country, falling back to the globally nearest node with coordinates.
func nearestOfCountry(net *topology.Network, a dataset.Anchor) int {
	best, bestD := -1, 1e18
	for i, nd := range net.Nodes {
		if !nd.HasCoord {
			continue
		}
		d := geo.Haversine(nd.Coord, a.Coord)
		if nd.Country == a.Country {
			d /= 10 // strong preference for same-country backhaul
		}
		if d < bestD {
			bestD, best = d, i
		}
	}
	return best
}

// pairSurvival is a local Monte Carlo of target-set connectivity (the
// core package owns the richer version; this one works on arbitrary
// networks including augmented copies). The trial loop is sim.PairSurvival
// on the plan's core contraction.
func pairSurvival(net *topology.Network, m failure.Model, spacingKm float64, trials int, seed uint64, countryA, countryB string) (float64, error) {
	if trials <= 0 {
		return 0, errors.New("partition: trials must be positive")
	}
	a := nodeIDsOf(net, countryA)
	b := nodeIDsOf(net, countryB)
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("partition: no nodes for %q or %q", countryA, countryB)
	}
	plan, err := failure.Compile(net, m, spacingKm)
	if err != nil {
		return 0, err
	}
	return sim.PairSurvival(context.Background(), plan, trials, seed, a, b, false)
}

// nodeIDsOf is nodesOf as graph node IDs, for the scratch connectivity
// queries.
func nodeIDsOf(net *topology.Network, target string) []graph.NodeID {
	xs := nodesOf(net, target)
	out := make([]graph.NodeID, len(xs))
	for i, x := range xs {
		out[i] = graph.NodeID(x)
	}
	return out
}

// nodesOf resolves a country code or "region:<name>" target.
func nodesOf(net *topology.Network, target string) []int {
	if len(target) > 7 && target[:7] == "region:" {
		want := geo.Region(target[7:])
		var out []int
		for i, nd := range net.Nodes {
			if nd.HasCoord && geo.RegionOf(nd.Coord) == want {
				out = append(out, i)
			}
		}
		return out
	}
	return net.NodesOfCountry(target)
}

// Compare runs MeanFragmentation before and after adding the candidates,
// returning (before, after). Used by the topology-design ablation.
func Compare(ctx context.Context, w *dataset.World, m failure.Model, spacingKm float64, trials int, seed uint64, cands []Candidate) (before, after *Fragmentation, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	net := w.Submarine
	before, err = MeanFragmentation(net, m, spacingKm, trials, seed)
	if err != nil {
		return nil, nil, err
	}
	augmented := net
	for _, c := range cands {
		augmented, err = withCandidate(augmented, c)
		if err != nil {
			return nil, nil, err
		}
	}
	after, err = MeanFragmentation(augmented, m, spacingKm, trials, seed)
	if err != nil {
		return nil, nil, err
	}
	return before, after, nil
}
