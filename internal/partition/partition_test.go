package partition

import (
	"context"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/topology"
)

func world(t *testing.T) *dataset.World {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAnalyzeNoFailures(t *testing.T) {
	net := world(t).Submarine
	f, err := Analyze(net, make([]bool, len(net.Cables)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Components != 1 {
		t.Errorf("intact network components = %d, want 1", f.Components)
	}
	if f.LargestFrac != 1 {
		t.Errorf("largest frac = %v", f.LargestFrac)
	}
	if f.IsolatedNodes != 0 {
		t.Errorf("isolated = %d", f.IsolatedNodes)
	}
	for r, n := range f.RegionSplit {
		if n != 1 {
			t.Errorf("region %v split into %d components on intact network", r, n)
		}
	}
}

func TestAnalyzeAllDead(t *testing.T) {
	net := world(t).Submarine
	dead := make([]bool, len(net.Cables))
	for i := range dead {
		dead[i] = true
	}
	f, err := Analyze(net, dead)
	if err != nil {
		t.Fatal(err)
	}
	if f.Components != 0 {
		t.Errorf("all-dead components = %d, want 0", f.Components)
	}
	if f.IsolatedNodes != len(net.Nodes) {
		t.Errorf("isolated = %d, want all %d", f.IsolatedNodes, len(net.Nodes))
	}
}

func TestAnalyzeLengthMismatch(t *testing.T) {
	net := world(t).Submarine
	if _, err := Analyze(net, make([]bool, 3)); err == nil {
		t.Error("want length mismatch error")
	}
}

func TestMeanFragmentationS1FragmentsMore(t *testing.T) {
	net := world(t).Submarine
	s1, err := MeanFragmentation(net, failure.S1(), 150, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := MeanFragmentation(net, failure.S2(), 150, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Components < s2.Components {
		t.Errorf("S1 components (%d) should be >= S2 (%d)", s1.Components, s2.Components)
	}
	if s1.LargestFrac > s2.LargestFrac {
		t.Errorf("S1 largest frac (%v) should be <= S2 (%v)", s1.LargestFrac, s2.LargestFrac)
	}
	if s1.IsolatedNodes <= s2.IsolatedNodes {
		t.Errorf("S1 isolated (%d) should exceed S2 (%d)", s1.IsolatedNodes, s2.IsolatedNodes)
	}
	if _, err := MeanFragmentation(net, failure.S1(), 150, 0, 1); err == nil {
		t.Error("want trials error")
	}
}

func TestRecommendLowLatitudeBridges(t *testing.T) {
	if testing.Short() {
		t.Skip("candidate search over the full topology skipped in short mode")
	}
	w := world(t)
	cands, err := Recommend(w, failure.S1(), 150, 30, 7, 5, "us", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates recommended")
	}
	for _, c := range cands {
		if c.MaxAbsLat >= geo.MidBandCut {
			t.Errorf("candidate %s-%s reaches %v degrees; must stay low-latitude", c.From, c.To, c.MaxAbsLat)
		}
		if c.SurvivalProb <= 0 || c.SurvivalProb > 1 {
			t.Errorf("candidate survival = %v", c.SurvivalProb)
		}
	}
	// ranked by benefit
	for i := 1; i < len(cands); i++ {
		if cands[i].Benefit > cands[i-1].Benefit+1e-12 {
			t.Error("candidates not ranked by benefit")
			break
		}
	}
	if _, err := Recommend(w, failure.S1(), 150, 5, 7, 0, "us", "gb"); err == nil {
		t.Error("want n error")
	}
}

func TestCompareAugmentationHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("before/after augmentation Monte Carlo skipped in short mode")
	}
	w := world(t)
	cands, err := Recommend(w, failure.S1(), 150, 30, 9, 3, "us", "region:europe")
	if err != nil {
		t.Fatal(err)
	}
	before, after, err := Compare(context.Background(), w, failure.S1(), 150, 12, 9, cands)
	if err != nil {
		t.Fatal(err)
	}
	// Adding surviving low-latitude links must not fragment things more.
	if after.LargestFrac < before.LargestFrac-0.02 {
		t.Errorf("augmentation reduced largest component: %v -> %v", before.LargestFrac, after.LargestFrac)
	}
}

func TestPairSurvivalTargets(t *testing.T) {
	net := world(t).Submarine
	if _, err := pairSurvival(net, failure.S2(), 150, 5, 1, "zz", "us"); err == nil {
		t.Error("want unknown target error")
	}
	p, err := pairSurvival(net, failure.Uniform{P: 0}, 150, 5, 1, "us", "region:europe")
	if err != nil || p != 1 {
		t.Errorf("no-failure survival = %v, %v", p, err)
	}
}

func TestWithCandidateDoesNotMutateOriginal(t *testing.T) {
	net := world(t).Submarine
	nodesBefore, cablesBefore := len(net.Nodes), len(net.Cables)
	c := Candidate{From: "fortaleza", To: "lagos", LengthKm: 6000}
	aug, err := withCandidate(net, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Nodes) != nodesBefore || len(net.Cables) != cablesBefore {
		t.Error("original network mutated")
	}
	if len(aug.Nodes) != nodesBefore+2 || len(aug.Cables) != cablesBefore+1 {
		t.Errorf("augmented shape: %d nodes, %d cables", len(aug.Nodes), len(aug.Cables))
	}
	if err := aug.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := withCandidate(net, Candidate{From: "atlantis", To: "lagos"}); err == nil {
		t.Error("want unknown anchor error")
	}
}

func TestAnalyzeSyntheticPartition(t *testing.T) {
	// A hand-built network split into two parts when the bridge dies.
	net := &topology.Network{
		Name: "mini",
		Nodes: []topology.Node{
			{Name: "a1", Coord: geo.Coord{Lat: 50, Lon: 0}, HasCoord: true},
			{Name: "a2", Coord: geo.Coord{Lat: 51, Lon: 1}, HasCoord: true},
			{Name: "b1", Coord: geo.Coord{Lat: -20, Lon: -60}, HasCoord: true},
			{Name: "b2", Coord: geo.Coord{Lat: -21, Lon: -59}, HasCoord: true},
		},
		Cables: []topology.Cable{
			{Name: "a", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 100}}},
			{Name: "b", Segments: []topology.Segment{{A: 2, B: 3, LengthKm: 100}}},
			{Name: "bridge", Segments: []topology.Segment{{A: 1, B: 2, LengthKm: 9000}}},
		},
	}
	f, err := Analyze(net, []bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Components != 2 {
		t.Errorf("components = %d, want 2", f.Components)
	}
	if f.LargestFrac != 0.5 {
		t.Errorf("largest frac = %v, want 0.5", f.LargestFrac)
	}
	if f.RegionSplit[geo.RegionEurope] != 1 || f.RegionSplit[geo.RegionSouthAmerica] != 1 {
		t.Errorf("region split = %v", f.RegionSplit)
	}
}
