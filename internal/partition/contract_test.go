package partition

import (
	"reflect"
	"testing"

	"gicnet/internal/failure"
	"gicnet/internal/graph"
	"gicnet/internal/xrand"
)

// TestMeanFragmentationContractedMatchesAnalyze is the white-box half of
// the contraction guarantee inside this package: per trial, the summary
// aggregated from the contracted union-find labelling must equal the one
// Analyze computes from a fresh full-graph Components pass over the same
// realisation. It replays MeanFragmentation's exact RNG stream so every
// compared trial is one the production loop actually runs.
func TestMeanFragmentationContractedMatchesAnalyze(t *testing.T) {
	net := world(t).Submarine
	models := []struct {
		name string
		m    failure.Model
	}{
		{"s1-tiered", failure.S1()},
		{"uniform-0.35", failure.Uniform{P: 0.35}},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := failure.Compile(net, tc.m, 150)
			if err != nil {
				t.Fatal(err)
			}
			cc := plan.Contraction()
			scratch := net.Graph().NewScratch()
			root := xrand.New(99)
			dead := plan.NewDead()
			deadBools := make([]bool, plan.NumCables())
			const trials = 12
			for ti := 0; ti < trials; ti++ {
				rng := root.SplitAt(uint64(ti))
				plan.SampleInto(dead, &rng)
				dead.Expand(deadBools)
				uf := scratch.ComponentsCore(cc, dead)
				got := aggregate(net, deadBools, func(i int) int {
					return uf.Find(int(cc.Super(graph.NodeID(i))))
				})
				want, err := Analyze(net, deadBools)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s trial %d: contracted summary %+v, Analyze %+v", tc.name, ti, got, want)
				}
			}
		})
	}
}
