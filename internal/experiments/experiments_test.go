package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"gicnet/internal/core"
	"gicnet/internal/dataset"
)

func testWorld(t *testing.T) *dataset.World {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// quickCfg keeps MC experiments fast in tests.
func quickCfg() Config { return Config{Trials: 4, Seed: 11} }

func TestFig3(t *testing.T) {
	r, err := Fig3(testWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BinCenters) != 90 || len(r.PopPDF) != 90 || len(r.SubPDF) != 90 {
		t.Fatalf("bin counts: %d/%d/%d", len(r.BinCenters), len(r.PopPDF), len(r.SubPDF))
	}
	sumPop, sumSub := 0.0, 0.0
	for i := range r.PopPDF {
		sumPop += r.PopPDF[i]
		sumSub += r.SubPDF[i]
	}
	if math.Abs(sumPop-100) > 1e-6 || math.Abs(sumSub-100) > 1e-6 {
		t.Errorf("PDFs sum to %v / %v", sumPop, sumSub)
	}
	// The paper's point: submarine mass sits farther north than population.
	subAbove40, popAbove40 := 0.0, 0.0
	for i, lat := range r.BinCenters {
		if lat > 40 {
			subAbove40 += r.SubPDF[i]
			popAbove40 += r.PopPDF[i]
		}
	}
	if subAbove40 <= popAbove40 {
		t.Errorf("submarine mass above 40N (%v%%) should exceed population (%v%%)", subAbove40, popAbove40)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFig4aOrderingAtFortyDegrees(t *testing.T) {
	r, err := Fig4a(testWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	at40 := map[string]float64{}
	for name, curve := range r.Curves {
		for i, th := range r.Thresholds {
			if th == 40 {
				at40[name] = curve[i]
			}
		}
	}
	// Paper: submarine 31%, one-hop +14pp, intertubes 40%, population 16%.
	if !(at40["one-hop"] > at40["submarine"]) {
		t.Errorf("one-hop (%v) must exceed submarine (%v)", at40["one-hop"], at40["submarine"])
	}
	if !(at40["submarine"] > at40["population"]) {
		t.Errorf("submarine (%v) must exceed population (%v)", at40["submarine"], at40["population"])
	}
	if math.Abs(at40["population"]-0.16) > 0.05 {
		t.Errorf("population above 40 = %v, want ~0.16", at40["population"])
	}
	var b strings.Builder
	if err := r.Render(&b, "4a"); err != nil {
		t.Fatal(err)
	}
}

func TestFig4bInfraExceedsPopulation(t *testing.T) {
	r, err := Fig4b(testWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range r.Thresholds {
		if th != 40 {
			continue
		}
		pop := r.Curves["population"][i]
		for _, name := range []string{"routers", "ixps", "dns-roots"} {
			if r.Curves[name][i] <= pop {
				t.Errorf("%s above 40 (%v) should exceed population (%v)", name, r.Curves[name][i], pop)
			}
		}
	}
}

func TestFig5SubmarineLongest(t *testing.T) {
	r, err := Fig5(testWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: submarine lengths are an order of magnitude above land.
	if r.Medians["submarine"] < 3*r.Medians["itu"] {
		t.Errorf("submarine median %v should far exceed ITU median %v",
			r.Medians["submarine"], r.Medians["itu"])
	}
	if r.CDFs["submarine"].Max() < 35000 {
		t.Errorf("submarine max = %v, want ~39000", r.CDFs["submarine"].Max())
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFig67ShapeClaims(t *testing.T) {
	r, err := Fig67(context.Background(), testWorld(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 9 {
		t.Fatalf("cells = %d, want 9 (3 networks x 3 spacings)", len(r.Cells))
	}
	// Submarine >> intertubes >= itu at every probability and spacing.
	for _, spacing := range []float64{50, 100, 150} {
		sub := r.Cell("submarine", spacing)
		tubes := r.Cell("intertubes", spacing)
		itu := r.Cell("itu", spacing)
		if sub == nil || tubes == nil || itu == nil {
			t.Fatal("missing cells")
		}
		for i := range sub.Probs {
			if sub.CableMean[i] < tubes.CableMean[i] {
				t.Errorf("spacing %v p=%v: submarine %v below intertubes %v",
					spacing, sub.Probs[i], sub.CableMean[i], tubes.CableMean[i])
			}
			if tubes.CableMean[i]+1e-9 < itu.CableMean[i]-2 {
				t.Errorf("spacing %v p=%v: intertubes %v far below itu %v",
					spacing, sub.Probs[i], tubes.CableMean[i], itu.CableMean[i])
			}
		}
		// monotone in probability
		for i := 1; i < len(sub.Probs); i++ {
			if sub.CableMean[i] < sub.CableMean[i-1]-3 {
				t.Errorf("submarine sweep not increasing at p=%v", sub.Probs[i])
			}
		}
	}
	// Fewer repeaters at wider spacing -> lower failure at the same p.
	s50 := r.Cell("submarine", 50)
	s150 := r.Cell("submarine", 150)
	for i := range s50.Probs {
		if s150.CableMean[i] > s50.CableMean[i]+3 {
			t.Errorf("p=%v: 150km spacing (%v) should not exceed 50km (%v)",
				s50.Probs[i], s150.CableMean[i], s50.CableMean[i])
		}
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 6") || !strings.Contains(b.String(), "Figure 7") {
		t.Error("render missing figures")
	}
}

func TestFig67InTextNumbers(t *testing.T) {
	// §4.3.2: at p=0.01 and 150 km, the paper reports 14.9% submarine
	// cables failed / 11.7% nodes unreachable; 1.7%/0.07% for US land;
	// 0.6%/0.1% for ITU. The synthetic world should land in the same
	// neighbourhood.
	cfg := Config{Trials: 10, Seed: dataset.DefaultSeed}
	r, err := Fig67(context.Background(), testWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := r.Cell("submarine", 150)
	var pi int = -1
	for i, p := range cell.Probs {
		if p == 0.01 {
			pi = i
		}
	}
	if pi < 0 {
		t.Fatal("p=0.01 missing from sweep")
	}
	if got := cell.CableMean[pi]; math.Abs(got-14.9) > 7 {
		t.Errorf("submarine cables @1%% = %v%%, paper 14.9%%", got)
	}
	if got := cell.NodeMean[pi]; math.Abs(got-11.7) > 7 {
		t.Errorf("submarine nodes @1%% = %v%%, paper 11.7%%", got)
	}
	tubes := r.Cell("intertubes", 150)
	if got := tubes.CableMean[pi]; got > 6 {
		t.Errorf("intertubes cables @1%% = %v%%, paper 1.7%%", got)
	}
	itu := r.Cell("itu", 150)
	if got := itu.CableMean[pi]; got > 3 {
		t.Errorf("itu cables @1%% = %v%%, paper 0.6%%", got)
	}
}

func TestFig8Claims(t *testing.T) {
	r, err := Fig8(context.Background(), testWorld(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 states x 3 spacings x 2 networks)", len(r.Rows))
	}
	for _, spacing := range []float64{50, 100, 150} {
		s1sub := r.Row("S1", spacing, "submarine")
		s2sub := r.Row("S2", spacing, "submarine")
		s1tub := r.Row("S1", spacing, "intertubes")
		if s1sub == nil || s2sub == nil || s1tub == nil {
			t.Fatal("missing rows")
		}
		// S1 >> S2, submarine >> land (order of magnitude, §4.3.3).
		if s1sub.CablePct <= s2sub.CablePct {
			t.Errorf("spacing %v: S1 (%v) should exceed S2 (%v)", spacing, s1sub.CablePct, s2sub.CablePct)
		}
		if s1sub.CablePct <= s1tub.CablePct {
			t.Errorf("spacing %v: submarine (%v) should exceed intertubes (%v)", spacing, s1sub.CablePct, s1tub.CablePct)
		}
	}
	// §4.3.3: ~10% of submarine cables/nodes vulnerable even under S2@150.
	s2 := r.Row("S2", 150, "submarine")
	if s2.CablePct < 4 || s2.CablePct > 20 {
		t.Errorf("S2 submarine cables = %v%%, paper ~10%%", s2.CablePct)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFig9(t *testing.T) {
	r, err := Fig9(testWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.ReachAbove40 < 0.4 || r.Summary.ReachAbove40 > 0.7 {
		t.Errorf("AS reach above 40 = %v", r.Summary.ReachAbove40)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 9a") || !strings.Contains(b.String(), "Figure 9b") {
		t.Error("render missing subfigures")
	}
}

func TestCountriesAndRender(t *testing.T) {
	cases := []CountryCase{
		{Target: "sg", Partners: nil},
		{Target: "br", Partners: []core.Target{"region:europe"}},
	}
	r, err := Countries(context.Background(), testWorld(t), quickCfg(), cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reports["S1"]) != 2 || len(r.Reports["S2"]) != 2 {
		t.Fatalf("reports: %d/%d", len(r.Reports["S1"]), len(r.Reports["S2"]))
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "S1") || !strings.Contains(out, "sg") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestDefaultCountryCasesResolve(t *testing.T) {
	r, err := Countries(context.Background(), testWorld(t), Config{Trials: 1, Seed: 1}, DefaultCountryCases())
	if err != nil {
		t.Fatalf("default country cases must all resolve: %v", err)
	}
	if len(r.Reports["S1"]) != len(DefaultCountryCases()) {
		t.Error("missing reports")
	}
}

func TestSystems(t *testing.T) {
	r, err := Systems(testWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Infra == nil || r.ASes == nil {
		t.Fatal("incomplete systems result")
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dns-roots", "google-dcs", "facebook-dcs", "AS exposure"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("systems render missing %q", want)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Trials != 10 {
		t.Errorf("trials = %d, want the paper's 10", cfg.Trials)
	}
}
