package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestExtTraffic(t *testing.T) {
	r, err := ExtTraffic(testWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.CablesKilled == 0 {
		t.Fatal("no NY cables killed")
	}
	if r.StrandedFrac < 0 || r.StrandedFrac > 0.5 {
		t.Errorf("stranded = %v; NY failure should not strand most demand", r.StrandedFrac)
	}
	if len(r.TopShifts) == 0 {
		t.Error("no load shifts recorded")
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traffic shift") {
		t.Error("render missing title")
	}
}

func TestExtRecovery(t *testing.T) {
	r, err := ExtRecovery(testWorld(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults == 0 {
		t.Fatal("S1 produced no faults")
	}
	// Paper's warning: months of outage.
	if r.RestoredAt[0.9] < 30 {
		t.Errorf("90%% restoration in %v days; expected months", r.RestoredAt[0.9])
	}
	// Fleet sweep monotone.
	if !(r.FleetSweep[40] <= r.FleetSweep[20] && r.FleetSweep[20] <= r.FleetSweep[5]) {
		t.Errorf("fleet sweep not monotone: %v", r.FleetSweep)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestExtResilience(t *testing.T) {
	r, err := ExtResilience(testWorld(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 2 {
		t.Fatalf("results = %d", len(r.Results))
	}
	if r.Results[0].Placement != "google" {
		t.Errorf("best placement = %q, want google", r.Results[0].Placement)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestExtGrid(t *testing.T) {
	r, err := ExtGrid(testWorld(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Amp.Factor() < 1 {
		t.Errorf("amplification = %v, want >= 1", r.Amp.Factor())
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestExtSolar(t *testing.T) {
	r, err := ExtSolar()
	if err != nil {
		t.Fatal(err)
	}
	if r.Decades[2040] <= r.Decades[2010] {
		t.Errorf("2040 risk %v should exceed 2010 %v", r.Decades[2040], r.Decades[2010])
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "baseline estimates") {
		t.Error("render missing baseline line")
	}
}

func TestExtBanding(t *testing.T) {
	r, err := ExtBanding(context.Background(), testWorld(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.PathCablePct < r.EndpointCablePct {
		t.Errorf("path banding (%v%%) must be at least endpoint banding (%v%%)",
			r.PathCablePct, r.EndpointCablePct)
	}
	if r.ReclassifiedCables == 0 {
		t.Error("transatlantic arcs should reclassify some cables upward")
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "banding") {
		t.Error("render missing title")
	}
}

func TestExtScenario(t *testing.T) {
	r, err := ExtScenario(testWorld(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.CablesDead == 0 {
		t.Error("scenario killed nothing")
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}
