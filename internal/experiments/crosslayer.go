package experiments

import (
	"context"
	"fmt"
	"io"

	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/report"
	"gicnet/internal/routing"
	"gicnet/internal/sim"
)

// Cross-layer figure constants: the nominal global user base the stranded
// shares are projected onto, and the outage window the paper's recovery
// discussion assumes for a superstorm-scale event.
const (
	crossLayerUsers       = 5.3e9 // nominal internet users (paper §1)
	crossLayerOutageHours = 24    // user-hours window per stranded day
	crossLayerMinTrials   = 256   // stranding means need more than 10 trials
)

// CrossLayerRow is one failure level of the cross-layer sweep: the mean
// logical impact of the physical cable deaths at that level.
type CrossLayerRow struct {
	Label          string
	ReachableFrac  float64 // mean reachable AS pairs / intact pairs
	StrandedShare  float64 // mean population share cut from the anchor
	DemandWeighted float64 // mean demand-weighted stranding
	// RegionUserHours is mean user-hours lost per region over the outage
	// window, indexed like geo.Regions().
	RegionUserHours [crosslayer.NumRegions]float64
}

// CrossLayerResult is the extension figure family that carries physical
// cable failures through the logical layer: severed AS pairs and stranded
// user population per uniform probability and per paper scenario.
type CrossLayerResult struct {
	SpacingKm   float64
	Trials      int
	TotalASes   int64
	IntactPairs int64
	Rows        []CrossLayerRow
}

// CrossLayer compiles the cable->AS adjacency once and sweeps the uniform
// axis plus the S1/S2 scenarios on the submarine map, scoring every trial
// with the cross-layer metric.
func CrossLayer(ctx context.Context, w *dataset.World, cfg Config) (*CrossLayerResult, error) {
	trials := cfg.Trials
	if trials < crossLayerMinTrials {
		trials = crossLayerMinTrials
	}
	idx, err := crosslayer.Compile(w.Submarine, w.Routers, routing.DefaultDemands())
	if err != nil {
		return nil, err
	}
	res := &CrossLayerResult{
		SpacingKm:   150,
		Trials:      trials,
		TotalASes:   idx.TotalASes(),
		IntactPairs: idx.Intact().ReachablePairs,
	}
	sc := sim.Config{
		SpacingKm:  res.SpacingKm,
		Trials:     trials,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		CrossLayer: idx,
	}
	pts, err := sim.SweepUniform(ctx, w.Submarine, sc, sim.DefaultProbabilities())
	if err != nil {
		return nil, err
	}
	for _, pt := range pts {
		res.Rows = append(res.Rows, crossLayerRow(fmt.Sprintf("p=%g", pt.P), idx, pt.Result.Cross))
	}
	for _, model := range []failure.Model{failure.S1(), failure.S2()} {
		mc := sc
		mc.Model = model
		r, err := sim.Run(ctx, w.Submarine, mc)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, crossLayerRow(model.Name(), idx, r.Cross))
	}
	return res, nil
}

// crossLayerRow averages per-trial scores into one table row.
func crossLayerRow(label string, idx *crosslayer.Index, scores []crosslayer.Score) CrossLayerRow {
	row := CrossLayerRow{Label: label}
	if len(scores) == 0 {
		return row
	}
	intactPairs := float64(idx.Intact().ReachablePairs)
	var pairs, stranded, weighted float64
	var region [crosslayer.NumRegions]float64
	for i := range scores {
		s := &scores[i]
		pairs += float64(s.ReachablePairs)
		stranded += s.StrandedShare
		weighted += s.DemandWeighted
		for r := 0; r < crosslayer.NumRegions; r++ {
			region[r] += s.RegionStranded[r]
		}
	}
	n := float64(len(scores))
	if intactPairs > 0 {
		row.ReachableFrac = pairs / n / intactPairs
	}
	row.StrandedShare = stranded / n
	row.DemandWeighted = weighted / n
	for r := 0; r < crosslayer.NumRegions; r++ {
		row.RegionUserHours[r] = region[r] / n * crossLayerUsers * crossLayerOutageHours
	}
	return row
}

// Render writes the AS-pair table and the per-region user-hours table.
func (r *CrossLayerResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Extension: cross-layer impact (submarine, %.0fkm spacing, %d trials, %d ASes, %d intact pairs)",
			r.SpacingKm, r.Trials, r.TotalASes, r.IntactPairs),
		"failure level", "reachable AS pairs", "stranded users", "demand-weighted")
	for _, row := range r.Rows {
		t.AddRow(
			row.Label,
			fmt.Sprintf("%.1f%%", 100*row.ReachableFrac),
			fmt.Sprintf("%.1f%%", 100*row.StrandedShare),
			fmt.Sprintf("%.1f%%", 100*row.DemandWeighted),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	headers := []string{"failure level"}
	for _, reg := range geo.Regions() {
		headers = append(headers, string(reg))
	}
	t2 := report.NewTable(
		fmt.Sprintf("Extension: user-hours lost per region (millions, %d-hour outage)", crossLayerOutageHours),
		headers...)
	for _, row := range r.Rows {
		cells := []string{row.Label}
		for ri := range geo.Regions() {
			cells = append(cells, fmt.Sprintf("%.1f", row.RegionUserHours[ri]/1e6))
		}
		t2.AddRow(cells...)
	}
	if err := t2.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "physical cable deaths translate into severed AS pairs and stranded users; the demand weighting concentrates the loss on the high-latitude transatlantic regions.\n")
	return err
}
