package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/grid"
	"gicnet/internal/recovery"
	"gicnet/internal/report"
	"gicnet/internal/resilience"
	"gicnet/internal/routing"
	"gicnet/internal/scenario"
	"gicnet/internal/sim"
	"gicnet/internal/solar"
	"gicnet/internal/xrand"
)

// ExtTrafficResult is the §5.5 load-shift experiment: kill the New York
// area cables and measure where demand goes.
type ExtTrafficResult struct {
	CablesKilled  int
	StrandedFrac  float64
	TopShifts     []routing.Shift
	OverloadCount int
}

// ExtTraffic runs the NY-failure load-shift experiment.
func ExtTraffic(w *dataset.World) (*ExtTrafficResult, error) {
	net := w.Submarine
	var nyNodes []int
	for i, nd := range net.Nodes {
		if strings.Contains(nd.Name, "new-york") || strings.Contains(nd.Name, "long-island") ||
			strings.Contains(nd.Name, "wall-nj") {
			nyNodes = append(nyNodes, i)
		}
	}
	dead := make([]bool, len(net.Cables))
	killed := 0
	for _, ci := range net.CablesTouching(nyNodes) {
		dead[ci] = true
		killed++
	}
	demands := routing.DefaultDemands()
	before, err := routing.Route(net, demands, nil)
	if err != nil {
		return nil, err
	}
	after, err := routing.Route(net, demands, dead)
	if err != nil {
		return nil, err
	}
	shifts, err := routing.CompareLoads(net, before, after)
	if err != nil {
		return nil, err
	}
	over := routing.OverloadedCables(shifts, 2)
	top := shifts
	if len(top) > 8 {
		top = top[:8]
	}
	return &ExtTrafficResult{
		CablesKilled:  killed,
		StrandedFrac:  after.StrandedFrac(),
		TopShifts:     top,
		OverloadCount: len(over),
	}, nil
}

// Render writes the traffic experiment table.
func (r *ExtTrafficResult) Render(w io.Writer) error {
	t := report.NewTable("Extension: NY failure traffic shift (§5.5)", "cable", "load-before", "load-after", "ratio")
	for _, s := range r.TopShifts {
		t.AddRow(s.Cable, fmt.Sprintf("%.4f", s.Before), fmt.Sprintf("%.4f", s.After), fmt.Sprintf("%.1fx", s.Ratio()))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "cables killed: %d, demand stranded: %s, cables >2x loaded: %d\n",
		r.CablesKilled, report.Pct(r.StrandedFrac), r.OverloadCount)
	return err
}

// ExtRecoveryResult is the §3.2.2 repair experiment.
type ExtRecoveryResult struct {
	Faults       int
	RestoredAt   map[float64]float64
	FleetSweep   map[int]float64 // fleet size -> days to 95%
	MakespanDays float64
}

// ExtRecovery runs the S1 repair-campaign experiment.
func ExtRecovery(w *dataset.World, cfg Config) (*ExtRecoveryResult, error) {
	net := w.Submarine
	rng := xrand.New(cfg.Seed)
	dead, err := failure.SampleCableDeaths(net, failure.S1(), 150, rng)
	if err != nil {
		return nil, err
	}
	faults, err := recovery.FaultsFrom(net, dead, 150, 0.1, rng)
	if err != nil {
		return nil, err
	}
	sched, err := recovery.PlanRecovery(net, faults, recovery.DefaultFleet(), recovery.DefaultOptions())
	if err != nil {
		return nil, err
	}
	sweep, err := recovery.FleetSizeSweep(net, faults, []int{5, 10, 20, 40}, recovery.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &ExtRecoveryResult{
		Faults:       len(faults),
		RestoredAt:   sched.RestoredAt,
		FleetSweep:   sweep,
		MakespanDays: sched.MakespanDays,
	}, nil
}

// Render writes the recovery experiment tables.
func (r *ExtRecoveryResult) Render(w io.Writer) error {
	t := report.NewTable("Extension: S1 repair campaign (§3.2.2)", "milestone", "days", "months")
	for _, m := range []float64{0.5, 0.9, 0.95, 1.0} {
		d := r.RestoredAt[m]
		t.AddRow(report.Pct(m), fmt.Sprintf("%.0f", d), fmt.Sprintf("%.1f", d/30))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	ft := report.NewTable("Fleet-size ablation: days to 95% restoration", "ships", "days")
	for _, n := range []int{5, 10, 20, 40} {
		ft.AddRow(fmt.Sprint(n), fmt.Sprintf("%.0f", r.FleetSweep[n]))
	}
	return ft.Render(w)
}

// ExtResilienceResult is the §5.4 placement experiment.
type ExtResilienceResult struct {
	Results []*resilience.Result
}

// ExtResilience ranks the hyperscaler placements under S1.
func ExtResilience(w *dataset.World, cfg Config) (*ExtResilienceResult, error) {
	rs, err := resilience.Rank(w,
		[]resilience.Placement{resilience.GooglePlacement(), resilience.FacebookPlacement()},
		failure.S1(), 150, cfg.Trials*4, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &ExtResilienceResult{Results: rs}, nil
}

// Render writes the placement table.
func (r *ExtResilienceResult) Render(w io.Writer) error {
	t := report.NewTable("Extension: placement availability under S1 (§5.4)",
		"placement", "mean-availability", "worst-trial", "partitions-served")
	for _, res := range r.Results {
		t.AddRow(res.Placement,
			report.Pct(res.Availability.Mean()),
			report.Pct(res.WorstTrial),
			report.Pct(res.PartitionsServed.Mean()))
	}
	return t.Render(w)
}

// ExtGridResult is the §5.5 coupling experiment.
type ExtGridResult struct {
	Amp *grid.Amplification
}

// ExtGrid measures grid-coupling amplification under S2.
func ExtGrid(w *dataset.World, cfg Config) (*ExtGridResult, error) {
	gm := grid.DefaultModel(failure.S1().Probs)
	amp, err := grid.Compare(w.Submarine, failure.S2(), gm, 150, cfg.Trials*2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &ExtGridResult{Amp: amp}, nil
}

// Render writes the coupling table.
func (r *ExtGridResult) Render(w io.Writer) error {
	t := report.NewTable("Extension: power-grid coupling (§5.5)", "metric", "value")
	t.AddRow("cable failures, repeaters only", report.Pct(r.Amp.CableFracAlone.Mean()))
	t.AddRow("cable failures, grid-coupled", report.Pct(r.Amp.CableFracCoupled.Mean()))
	t.AddRow("amplification factor", fmt.Sprintf("%.2fx", r.Amp.Factor()))
	t.AddRow("stations dark (mean)", fmt.Sprintf("%.0f", r.Amp.StationsDark.Mean()))
	return t.Render(w)
}

// ExtSolarResult is the §2 risk experiment.
type ExtSolarResult struct {
	Baseline solar.RiskEstimate
	Decades  map[int]float64 // decade start year -> modulated risk
}

// ExtSolar computes Gleissberg-modulated decade risks.
func ExtSolar() (*ExtSolarResult, error) {
	out := &ExtSolarResult{Baseline: solar.BaselineRisk(), Decades: map[int]float64{}}
	for _, start := range []int{2010, 2020, 2030, 2040, 2050} {
		r, err := solar.ModulatedDecadeRisk(out.Baseline.PerDecadeBernoulli, float64(start))
		if err != nil {
			return nil, err
		}
		out.Decades[start] = r
	}
	return out, nil
}

// Render writes the risk table.
func (r *ExtSolarResult) Render(w io.Writer) error {
	t := report.NewTable("Extension: Carrington-scale risk per decade (§2.3)", "decade", "modulated-risk")
	for _, start := range []int{2010, 2020, 2030, 2040, 2050} {
		t.AddRow(fmt.Sprintf("%d-%d", start, start+9), report.Pct(r.Decades[start]))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "baseline estimates: %.1f%%-%.1f%% per decade (Bernoulli reference %.0f%%)\n",
		100*r.Baseline.PerDecadeLow, 100*r.Baseline.PerDecadeHigh, 100*r.Baseline.PerDecadeBernoulli)
	return err
}

// ExtBandingResult compares the paper's endpoint banding against path
// banding for the S1 state on the submarine network.
type ExtBandingResult struct {
	EndpointCablePct float64
	PathCablePct     float64
	// ReclassifiedCables counts cables whose band rises under path
	// banding (mid->high etc.).
	ReclassifiedCables int
}

// ExtBanding runs the banding ablation: the paper assigns each cable the
// band of its highest-latitude endpoint; physically, the great-circle
// path can arc into a higher band. Path banding is strictly more
// pessimistic — the measured gap bounds the error of the paper's
// simplification.
func ExtBanding(ctx context.Context, w *dataset.World, cfg Config) (*ExtBandingResult, error) {
	net := w.Submarine
	endpoint, err := sim.Run(ctx, net, sim.Config{
		Model: failure.S1(), SpacingKm: 150, Trials: cfg.Trials, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	path, err := sim.Run(ctx, net, sim.Config{
		Model: failure.S1Path(), SpacingKm: 150, Trials: cfg.Trials, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	reclassified := 0
	for ci := range net.Cables {
		eb, okE := net.CableBand(ci)
		pb, okP := net.CableBandByPath(ci)
		if okE && okP && pb > eb {
			reclassified++
		}
	}
	return &ExtBandingResult{
		EndpointCablePct:   100 * endpoint.CableFrac.Mean(),
		PathCablePct:       100 * path.CableFrac.Mean(),
		ReclassifiedCables: reclassified,
	}, nil
}

// Render writes the banding ablation table.
func (r *ExtBandingResult) Render(w io.Writer) error {
	t := report.NewTable("Ablation: endpoint vs path latitude banding (S1, 150 km)",
		"banding", "cables-failed%")
	t.AddRow("endpoint (paper)", fmt.Sprintf("%.1f", r.EndpointCablePct))
	t.AddRow("great-circle path", fmt.Sprintf("%.1f", r.PathCablePct))
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "cables whose band rises under path banding: %d\n", r.ReclassifiedCables)
	return err
}

// ExtScenario runs the integrated storm timeline.
func ExtScenario(w *dataset.World, cfg Config) (*scenario.Report, error) {
	sc := scenario.DefaultConfig()
	sc.Seed = cfg.Seed
	return scenario.Run(w, sc)
}
