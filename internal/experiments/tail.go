package experiments

import (
	"context"
	"fmt"
	"io"

	"gicnet/internal/dataset"
	"gicnet/internal/rare"
	"gicnet/internal/report"
)

// TailProbabilities extends the Figure 6 x-axis three decades further
// down, into the regime where plain Monte Carlo at reproducible trial
// budgets stops observing the tail event at all.
func TailProbabilities() []float64 {
	return []float64{1e-3, 3e-4, 1e-4, 3e-5, 1e-5, 3e-6, 1e-6}
}

// ExtTailResult is the rare-event extension of the Figure 6 sweep: the
// uniform-probability axis continued to p = 1e-6 on the submarine map,
// estimated side by side with plain Monte Carlo and the tilted
// quasi-Monte Carlo estimator at identical trial budgets.
type ExtTailResult struct {
	SpacingKm float64
	Trials    int
	Threshold int
	Plain     []rare.TailPoint
	ISQMC     []rare.TailPoint
}

// extTailMinTrials keeps the tail sweep statistically meaningful when the
// caller's per-point budget is the paper's 10-trial default.
const extTailMinTrials = 4096

// ExtTail runs the tail sweep. Both estimators see the same trial count
// and derived seeds; the contrast between their confidence intervals at
// small p is the experiment's finding.
func ExtTail(ctx context.Context, w *dataset.World, cfg Config) (*ExtTailResult, error) {
	trials := cfg.Trials
	if trials < extTailMinTrials {
		trials = extTailMinTrials
	}
	tc := rare.TailConfig{
		SpacingKm: 100,
		Trials:    trials,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
	}
	ps := TailProbabilities()
	plain, err := rare.TailSweep(ctx, w.Submarine, tc, ps)
	if err != nil {
		return nil, err
	}
	tc.Estimator = rare.NewISQMC(0)
	isqmc, err := rare.TailSweep(ctx, w.Submarine, tc, ps)
	if err != nil {
		return nil, err
	}
	return &ExtTailResult{
		SpacingKm: tc.SpacingKm,
		Trials:    trials,
		Threshold: 2,
		Plain:     plain,
		ISQMC:     isqmc,
	}, nil
}

// Render writes the side-by-side tail table.
func (r *ExtTailResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Extension: rare-event tail of Fig 6 (submarine, %.0fkm spacing, %d trials, P[>=%d cables dead])",
			r.SpacingKm, r.Trials, r.Threshold),
		"p", "plain-MC", "plain 95% CI", "is-qmc", "is-qmc 95% CI", "ESS", "mean|w|-1")
	for i, pp := range r.Plain {
		iq := r.ISQMC[i]
		t.AddRow(
			fmt.Sprintf("%.0e", pp.P),
			fmt.Sprintf("%.3e", pp.TailProb),
			fmt.Sprintf("[%.2e, %.2e]", pp.TailCI.Lo, pp.TailCI.Hi),
			fmt.Sprintf("%.3e", iq.TailProb),
			fmt.Sprintf("[%.2e, %.2e]", iq.TailCI.Lo, iq.TailCI.Hi),
			fmt.Sprintf("%.0f", iq.ESS),
			fmt.Sprintf("%.1e", absf(iq.MeanWeight-1)),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "plain Monte Carlo loses the event below the 1/trials floor; the tilted QMC estimator keeps resolving it with calibrated intervals.\n")
	return err
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
