// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic world: Figures 3-9 plus the §4.3.4
// country-scale connectivity analysis and the §4.4 systems summary. Each
// experiment returns structured data and can render the same rows/series
// the paper plots.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"gicnet/internal/asn"
	"gicnet/internal/core"
	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/infra"
	"gicnet/internal/population"
	"gicnet/internal/report"
	"gicnet/internal/sim"
	"gicnet/internal/stats"
	"gicnet/internal/topology"
)

// Config carries the common experiment parameters.
type Config struct {
	// Trials per Monte Carlo point (the paper uses 10).
	Trials int
	// Seed drives every simulation.
	Seed uint64
	// Workers caps simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// DirectConnectivity forces the country trial loops onto the
	// full-graph reference engine instead of the core contraction; used by
	// the contracted-direct-parity invariant (see internal/verify), which
	// proves both engines produce identical results.
	DirectConnectivity bool
}

// DefaultConfig mirrors the paper: 10 trials per point.
func DefaultConfig() Config { return Config{Trials: 10, Seed: dataset.DefaultSeed} }

// ---------------------------------------------------------------------
// Figure 3: PDF of population and submarine endpoints vs latitude.
// ---------------------------------------------------------------------

// Fig3Result holds the two latitude PDFs over 2-degree bins.
type Fig3Result struct {
	BinCenters []float64
	PopPDF     []float64 // percent per bin
	SubPDF     []float64 // percent per bin
}

// Fig3 computes the latitude PDFs.
func Fig3(w *dataset.World) (*Fig3Result, error) {
	h, err := stats.NewHistogram(-90, 90, 90)
	if err != nil {
		return nil, err
	}
	for _, c := range w.Submarine.EndpointCoords() {
		h.Add(c.Lat)
	}
	pop := w.Population
	if pop == nil {
		pop, err = population.New(2)
		if err != nil {
			return nil, err
		}
	}
	return &Fig3Result{
		BinCenters: h.BinCenters(),
		PopPDF:     pop.PDF(),
		SubPDF:     h.PDF(),
	}, nil
}

// Render writes the two series.
func (r *Fig3Result) Render(w io.Writer) error {
	return report.RenderSeries(w, "Figure 3: latitude PDFs (2-degree bins)", "latitude",
		&report.Series{Name: "population%", X: r.BinCenters, Y: r.PopPDF},
		&report.Series{Name: "submarine%", X: r.BinCenters, Y: r.SubPDF},
	)
}

// ---------------------------------------------------------------------
// Figure 4: percentage of elements above |latitude| thresholds.
// ---------------------------------------------------------------------

// Fig4Result holds threshold curves for several element classes.
type Fig4Result struct {
	Thresholds []float64
	Curves     map[string][]float64
	Order      []string
}

// Fig4a: long-distance cable endpoints vs population.
func Fig4a(w *dataset.World) (*Fig4Result, error) {
	th := geo.DefaultThresholds()
	sub := geo.ThresholdCurve(w.Submarine.EndpointCoords(), th)
	oneHop := make([]float64, len(th))
	n := float64(len(w.Submarine.EndpointCoords()))
	for i, t := range th {
		oneHop[i] = float64(len(w.Submarine.OneHopEndpointCoords(t))) / n
	}
	tubes := geo.ThresholdCurve(w.Intertubes.EndpointCoords(), th)
	pop := w.Population.ThresholdCurve(th)
	return &Fig4Result{
		Thresholds: th,
		Curves: map[string][]float64{
			"submarine":  sub,
			"one-hop":    oneHop,
			"intertubes": tubes,
			"population": pop,
		},
		Order: []string{"submarine", "one-hop", "intertubes", "population"},
	}, nil
}

// Fig4b: routers, IXPs, DNS roots vs population.
func Fig4b(w *dataset.World) (*Fig4Result, error) {
	th := geo.DefaultThresholds()
	return &Fig4Result{
		Thresholds: th,
		Curves: map[string][]float64{
			"routers":    geo.ThresholdCurve(w.Routers.RouterCoords(), th),
			"ixps":       geo.ThresholdCurve(dataset.SiteCoords(w.IXPs), th),
			"dns-roots":  geo.ThresholdCurve(dataset.DNSInstanceCoords(w.DNSRoots), th),
			"population": w.Population.ThresholdCurve(th),
		},
		Order: []string{"routers", "ixps", "dns-roots", "population"},
	}, nil
}

// Render writes the curves as aligned columns.
func (r *Fig4Result) Render(w io.Writer, title string) error {
	series := make([]*report.Series, 0, len(r.Order))
	for _, name := range r.Order {
		series = append(series, &report.Series{Name: name, X: r.Thresholds, Y: pct(r.Curves[name])})
	}
	return report.RenderSeries(w, title, "|lat|>=", series...)
}

func pct(fracs []float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = 100 * f
	}
	return out
}

// ---------------------------------------------------------------------
// Figure 5: CDF of cable lengths per network.
// ---------------------------------------------------------------------

// Fig5Result holds one length CDF per network.
type Fig5Result struct {
	CDFs map[string]*stats.CDF
	// Medians per network, for the summary table.
	Medians map[string]float64
}

// Fig5 computes the cable length CDFs.
func Fig5(w *dataset.World) (*Fig5Result, error) {
	r := &Fig5Result{CDFs: map[string]*stats.CDF{}, Medians: map[string]float64{}}
	for _, net := range w.Networks() {
		cdf, err := stats.NewCDF(net.CableLengths())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s lengths: %w", net.Name, err)
		}
		r.CDFs[net.Name] = cdf
		r.Medians[net.Name] = cdf.Quantile(0.5)
	}
	return r, nil
}

// Quantile returns the q-quantile (q in [0,1]) of the named network's
// cable-length CDF, or (0, false) if the network is unknown. It is the
// check-friendly accessor the verification subsystem snapshots instead of
// the full CDF.
func (r *Fig5Result) Quantile(network string, q float64) (float64, bool) {
	cdf, ok := r.CDFs[network]
	if !ok {
		return 0, false
	}
	return cdf.Quantile(q), true
}

// Render writes each CDF as sampled points.
func (r *Fig5Result) Render(w io.Writer) error {
	names := make([]string, 0, len(r.CDFs))
	for name := range r.CDFs {
		//gicnet:allow determinism names are sorted before rendering
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := r.CDFs[name].Points(24)
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.X, p.Y
		}
		if err := report.RenderSeries(w, fmt.Sprintf("Figure 5: %s cable length CDF", name), "length-km",
			&report.Series{Name: "cdf", X: xs, Y: ys}); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Figures 6 and 7: uniform repeater failure sweeps.
// ---------------------------------------------------------------------

// SweepCell is one (network, spacing) sweep: mean and stddev of cable and
// node failure percentages per probability.
type SweepCell struct {
	Network   string
	SpacingKm float64
	Probs     []float64
	CableMean []float64
	CableStd  []float64
	NodeMean  []float64
	NodeStd   []float64
}

// Fig67Result holds all sweep cells: 3 networks x 3 spacings. The same
// runs feed Figure 6 (cables) and Figure 7 (nodes), exactly as in the
// paper.
type Fig67Result struct {
	Cells []SweepCell
}

// Fig67 runs the uniform-probability sweeps. The network×spacing cells are
// independent (each has its own derived seed), so they fan out across the
// cfg.Workers budget; any leftover budget parallelises the sweep points
// within a cell. Cell order and results are identical to the serial loop.
func Fig67(ctx context.Context, w *dataset.World, cfg Config) (*Fig67Result, error) {
	probs := sim.DefaultProbabilities()
	type cellSpec struct {
		spacing float64
		net     *topology.Network
	}
	var specs []cellSpec
	for _, spacing := range sim.DefaultSpacings() {
		for _, net := range w.Networks() {
			specs = append(specs, cellSpec{spacing, net})
		}
	}
	cells := make([]SweepCell, len(specs))
	cellWorkers, inner := splitBudget(cfg.Workers, len(specs))
	// One arena per cell worker: plan storage, dead bitsets, and outcome
	// buffers are recycled across the worker's cells and sweep points.
	arenas := make([]*sim.Arena, cellWorkers)
	err := sim.ForEachWorker(ctx, len(specs), cellWorkers, func(worker, i int) error {
		a := arenas[worker]
		if a == nil {
			a = sim.NewArena()
			arenas[worker] = a
		}
		spec := specs[i]
		simCfg := sim.Config{
			SpacingKm: spec.spacing,
			Trials:    cfg.Trials,
			Seed:      cfg.Seed ^ uint64(spec.spacing),
			Workers:   inner,
			Model:     failure.Uniform{P: 0},
		}
		pts, err := sim.SweepUniformArena(ctx, spec.net, simCfg, probs, a)
		if err != nil {
			return err
		}
		cell := SweepCell{
			Network: spec.net.Name, SpacingKm: spec.spacing, Probs: probs,
			CableMean: make([]float64, len(pts)), CableStd: make([]float64, len(pts)),
			NodeMean: make([]float64, len(pts)), NodeStd: make([]float64, len(pts)),
		}
		for k, p := range pts {
			cell.CableMean[k] = 100 * p.Result.CableFrac.Mean()
			cell.CableStd[k] = 100 * p.Result.CableFrac.StdDev()
			cell.NodeMean[k] = 100 * p.Result.NodeFrac.Mean()
			cell.NodeStd[k] = 100 * p.Result.NodeFrac.StdDev()
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig67Result{Cells: cells}, nil
}

// splitBudget divides a worker budget (0 = GOMAXPROCS) between an outer
// grid of n independent tasks and the inner parallelism each task may use,
// keeping the total roughly at the budget.
func splitBudget(workers, n int) (outer, inner int) {
	budget := workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	outer = budget
	if outer > n {
		outer = n
	}
	inner = 1
	if outer > 0 && budget/outer > 1 {
		inner = budget / outer
	}
	return outer, inner
}

// Cell returns the sweep for a network and spacing, or nil.
func (r *Fig67Result) Cell(network string, spacingKm float64) *SweepCell {
	for i := range r.Cells {
		//gicnet:allow floatcmp cells are keyed by the exact spacing literals they were built with
		if r.Cells[i].Network == network && r.Cells[i].SpacingKm == spacingKm {
			return &r.Cells[i]
		}
	}
	return nil
}

// Render writes one block per spacing with cable (Fig 6) and node (Fig 7)
// series for each network.
func (r *Fig67Result) Render(w io.Writer) error {
	for _, spacing := range sim.DefaultSpacings() {
		var cables, nodes []*report.Series
		for _, cell := range r.Cells {
			//gicnet:allow floatcmp cells are keyed by the exact spacing literals they were built with
			if cell.SpacingKm != spacing {
				continue
			}
			cables = append(cables, &report.Series{Name: cell.Network, X: cell.Probs, Y: cell.CableMean, Err: cell.CableStd})
			nodes = append(nodes, &report.Series{Name: cell.Network, X: cell.Probs, Y: cell.NodeMean, Err: cell.NodeStd})
		}
		if err := report.RenderSeries(w, fmt.Sprintf("Figure 6: cables failed %% (spacing %.0f km)", spacing), "p(repeater)", cables...); err != nil {
			return err
		}
		if err := report.RenderSeries(w, fmt.Sprintf("Figure 7: nodes unreachable %% (spacing %.0f km)", spacing), "p(repeater)", nodes...); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Figure 8: non-uniform latitude-tiered failures (S1/S2).
// ---------------------------------------------------------------------

// Fig8Row is one bar group of Figure 8.
type Fig8Row struct {
	State     string // "S1" or "S2"
	SpacingKm float64
	Network   string
	CablePct  float64
	CableStd  float64
	NodePct   float64
	NodeStd   float64
}

// Fig8Result holds every bar of Figure 8.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 runs the S1/S2 analysis on the submarine and Intertubes networks
// (the ITU network lacks coordinates, as in the paper). The twelve
// state×spacing×network runs are independently seeded, so they fan out
// across the cfg.Workers budget; row order matches the serial loop.
func Fig8(ctx context.Context, w *dataset.World, cfg Config) (*Fig8Result, error) {
	models := []failure.LatitudeTiered{failure.S1(), failure.S2()}
	states := []string{"S1", "S2"}
	nets := []*topology.Network{w.Submarine, w.Intertubes}
	type runSpec struct {
		mi      int
		spacing float64
		net     *topology.Network
	}
	var specs []runSpec
	for mi := range models {
		for _, spacing := range sim.DefaultSpacings() {
			for _, net := range nets {
				specs = append(specs, runSpec{mi, spacing, net})
			}
		}
	}
	rows := make([]Fig8Row, len(specs))
	outer, inner := splitBudget(cfg.Workers, len(specs))
	// Per-worker arenas: each run reuses its worker's compiled-plan and
	// result storage; rows only keep the scalar summaries.
	arenas := make([]*sim.Arena, outer)
	err := sim.ForEachWorker(ctx, len(specs), outer, func(worker, i int) error {
		a := arenas[worker]
		if a == nil {
			a = sim.NewArena()
			arenas[worker] = a
		}
		spec := specs[i]
		res, err := a.RunModel(ctx, spec.net, sim.Config{
			Model:     models[spec.mi],
			SpacingKm: spec.spacing,
			Trials:    cfg.Trials,
			Seed:      cfg.Seed ^ (uint64(spec.mi+1) << 32) ^ uint64(spec.spacing),
			Workers:   inner,
		})
		if err != nil {
			return err
		}
		rows[i] = Fig8Row{
			State:     states[spec.mi],
			SpacingKm: spec.spacing,
			Network:   spec.net.Name,
			CablePct:  100 * res.CableFrac.Mean(),
			CableStd:  100 * res.CableFrac.StdDev(),
			NodePct:   100 * res.NodeFrac.Mean(),
			NodeStd:   100 * res.NodeFrac.StdDev(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Rows: rows}, nil
}

// Row returns the row for (state, spacing, network), or nil.
func (r *Fig8Result) Row(state string, spacingKm float64, network string) *Fig8Row {
	for i := range r.Rows {
		row := &r.Rows[i]
		//gicnet:allow floatcmp rows are keyed by the exact spacing literals they were built with
		if row.State == state && row.SpacingKm == spacingKm && row.Network == network {
			return row
		}
	}
	return nil
}

// Render writes the Figure 8 table.
func (r *Fig8Result) Render(w io.Writer) error {
	t := report.NewTable("Figure 8: non-uniform repeater failures (S1 high / S2 low)",
		"state", "spacing", "network", "cables-failed%", "sd", "nodes-unreachable%", "sd")
	for _, row := range r.Rows {
		t.AddRow(row.State,
			fmt.Sprintf("%.0f km", row.SpacingKm),
			row.Network,
			fmt.Sprintf("%.1f", row.CablePct),
			fmt.Sprintf("%.1f", row.CableStd),
			fmt.Sprintf("%.1f", row.NodePct),
			fmt.Sprintf("%.1f", row.NodeStd),
		)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// Figure 9: AS reach and spread.
// ---------------------------------------------------------------------

// Fig9Result wraps the AS summary.
type Fig9Result struct {
	Summary *asn.Summary
}

// Fig9 computes the AS analysis.
func Fig9(w *dataset.World) (*Fig9Result, error) {
	s, err := asn.Analyze(w.Routers)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Summary: s}, nil
}

// Render writes the 9a curve and 9b CDF sample.
func (r *Fig9Result) Render(w io.Writer) error {
	if err := report.RenderSeries(w, "Figure 9a: ASes with presence above threshold", "|lat|>=",
		&report.Series{Name: "as%", X: r.Summary.Thresholds, Y: pct(r.Summary.ReachFrac)}); err != nil {
		return err
	}
	pts := r.Summary.SpreadPoints(24)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	return report.RenderSeries(w, "Figure 9b: CDF of AS latitude spread (degrees)", "spread-deg",
		&report.Series{Name: "cdf", X: xs, Y: ys})
}

// ---------------------------------------------------------------------
// §4.3.4: country-scale connectivity.
// ---------------------------------------------------------------------

// CountryCase defines one row of the country analysis.
type CountryCase struct {
	Target   core.Target
	Partners []core.Target
}

// DefaultCountryCases mirrors the paper's §4.3.4 walkthrough.
func DefaultCountryCases() []CountryCase {
	return []CountryCase{
		{Target: "us", Partners: []core.Target{"region:europe", "region:asia", "br"}},
		{Target: "cn", Partners: []core.Target{"sg", "jp", "us"}},
		{Target: "in", Partners: []core.Target{"sg", "region:europe"}},
		{Target: "sg", Partners: []core.Target{"in", "au", "id"}},
		{Target: "gb", Partners: []core.Target{"region:europe", "us"}},
		{Target: "za", Partners: []core.Target{"region:europe", "ke"}},
		{Target: "au", Partners: []core.Target{"nz", "sg", "us"}},
		{Target: "nz", Partners: []core.Target{"au", "us"}},
		{Target: "br", Partners: []core.Target{"region:europe", "us"}},
	}
}

// CountryResult holds one report per (state, case).
type CountryResult struct {
	Reports map[string][]*core.CountryReport // "S1"/"S2" -> per case
}

// Countries runs the country analysis under S1 and S2 at 150 km spacing.
// The (state, case) reports are independent — every pair loop derives its
// trial RNGs from cfg.Seed alone — so they fan out across the cfg.Workers
// budget; results land at their spec index, keeping report order (and the
// golden snapshot) identical to the serial loop.
func Countries(ctx context.Context, w *dataset.World, cfg Config, cases []CountryCase) (*CountryResult, error) {
	an, err := core.NewAnalyzer(w)
	if err != nil {
		return nil, err
	}
	an.DirectConnectivity = cfg.DirectConnectivity
	states := []struct {
		name  string
		model failure.Model
	}{{"S1", failure.S1()}, {"S2", failure.S2()}}
	type spec struct{ si, ci int }
	specs := make([]spec, 0, len(states)*len(cases))
	for si := range states {
		for ci := range cases {
			specs = append(specs, spec{si, ci})
		}
	}
	reports := make([]*core.CountryReport, len(specs))
	outer, _ := splitBudget(cfg.Workers, len(specs))
	err = sim.ForEach(ctx, len(specs), outer, func(i int) error {
		s := specs[i]
		rep, err := an.CountryAnalysis(ctx, states[s.si].model, 150, cfg.Trials*10, cfg.Seed, cases[s.ci].Target, cases[s.ci].Partners)
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &CountryResult{Reports: map[string][]*core.CountryReport{}}
	for i, s := range specs {
		out.Reports[states[s.si].name] = append(out.Reports[states[s.si].name], reports[i])
	}
	return out, nil
}

// Render writes one table per state.
func (r *CountryResult) Render(w io.Writer) error {
	for _, state := range []string{"S1", "S2"} {
		t := report.NewTable(fmt.Sprintf("Country connectivity under %s (150 km spacing)", state),
			"target", "cables", "expected-survivors", "isolation-p", "partner", "p(connected)")
		for _, rep := range r.Reports[state] {
			first := true
			if len(rep.Partners) == 0 {
				t.AddRow(string(rep.Target), fmt.Sprint(len(rep.Cables)),
					fmt.Sprintf("%.1f", rep.ExpectedSurvivors),
					fmt.Sprintf("%.3f", rep.IsolationProb), "", "")
				continue
			}
			for _, p := range rep.Partners {
				if first {
					t.AddRow(string(rep.Target), fmt.Sprint(len(rep.Cables)),
						fmt.Sprintf("%.1f", rep.ExpectedSurvivors),
						fmt.Sprintf("%.3f", rep.IsolationProb),
						string(p.To), fmt.Sprintf("%.2f", p.SurvivalProb))
					first = false
				} else {
					t.AddRow("", "", "", "", string(p.To), fmt.Sprintf("%.2f", p.SurvivalProb))
				}
			}
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// §4.4: systems resilience summary.
// ---------------------------------------------------------------------

// SystemsResult bundles the infra report and the AS summary.
type SystemsResult struct {
	Infra *infra.Report
	ASes  *asn.Summary
}

// Systems runs the §4.4 analyses.
func Systems(w *dataset.World) (*SystemsResult, error) {
	ir, err := infra.BuildReport(w)
	if err != nil {
		return nil, err
	}
	as, err := asn.Analyze(w.Routers)
	if err != nil {
		return nil, err
	}
	return &SystemsResult{Infra: ir, ASes: as}, nil
}

// Render writes the systems table.
func (r *SystemsResult) Render(w io.Writer) error {
	t := report.NewTable("Systems resilience (§4.4)",
		"system", "sites", "above-40", "southern-share", "regions", "resilience")
	for _, d := range []*infra.Distribution{r.Infra.DNS, r.Infra.Google, r.Infra.Facebook, r.Infra.IXPs, r.Infra.Routers} {
		t.AddRow(d.Name, fmt.Sprint(d.Count), report.Pct(d.FracAbove40),
			report.Pct(d.SouthernShare), fmt.Sprint(len(d.Regions)),
			fmt.Sprintf("%.2f", d.ResilienceScore()))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	at := report.NewTable("AS exposure summary (§4.4.1)",
		"metric", "value")
	at.AddRow("ASes with presence above 40", report.Pct(r.ASes.ReachAbove40))
	at.AddRow("median latitude spread", fmt.Sprintf("%.2f deg", r.ASes.MedianSpreadDeg))
	at.AddRow("p90 latitude spread", fmt.Sprintf("%.2f deg", r.ASes.P90SpreadDeg))
	at.AddRow("direct-exposure ASes", fmt.Sprint(r.ASes.ByExposure[asn.ExposureDirect]))
	at.AddRow("indirect-exposure ASes", fmt.Sprint(r.ASes.ByExposure[asn.ExposureIndirect]))
	at.AddRow("low-exposure ASes", fmt.Sprint(r.ASes.ByExposure[asn.ExposureLow]))
	return at.Render(w)
}
