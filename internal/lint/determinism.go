package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the byte-identical-replay contract inside the
// simulation packages (Pkgs, matched by import-path prefix):
//
//   - no wall-clock reads (time.Now, time.Since, time.Until);
//   - no use of the global math/rand stream (seeded *rand.Rand values and
//     xrand.Source are fine — it is the shared process-global state that
//     breaks replay);
//   - no range over a map whose iteration order can leak into results:
//     returns, slice appends, and order-dependent folds inside the loop
//     body are flagged. Provably order-independent folds are allowed
//     in-place: integer/bitmask compound assignment (+=, -=, *=, |=, &=,
//     ^=, ++, --, exact in modular arithmetic), assignment of constants
//     (idempotent flag-setting), keyed writes into maps, and writes into a
//     slice indexed by the range key. Anything else needs a
//     //gicnet:allow determinism comment explaining why order cannot leak
//     (e.g. the collected keys are sorted before use).
type Determinism struct {
	Pkgs []string
}

func (*Determinism) Name() string { return "determinism" }

// globalRandConstructors are the math/rand package-level functions that do
// not touch the global stream: they build seeded generators, which are
// deterministic by construction.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (a *Determinism) Run(prog *Program) []Diagnostic {
	pass := &detPass{name: a.Name()}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !matchPrefix(a.Pkgs, pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			diags = append(diags, pass.inspect(prog, pkg, f)...)
		}
	}
	return diags
}

// detPass holds the determinism body checks in a reusable form: the
// Determinism analyzer runs them over whole files of the deterministic
// packages, and Crossdet runs them over individual functions elsewhere in
// the module that those packages reach, tagging each finding with the
// reachability suffix.
type detPass struct {
	name   string
	suffix string // appended to every message ("" for plain determinism)
}

// inspect runs the call and map-range checks over one AST subtree.
func (a *detPass) inspect(prog *Program, pkg *Package, node ast.Node) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if d, ok := a.checkCall(prog, pkg, n); ok {
				diags = append(diags, d)
			}
		case *ast.RangeStmt:
			diags = append(diags, a.checkMapRange(prog, pkg, n)...)
		}
		return true
	})
	for i := range diags {
		diags[i].Message += a.suffix
	}
	return diags
}

func (a *detPass) checkCall(prog *Program, pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	obj, _ := calleeOf(pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return Diagnostic{}, false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return Diagnostic{
				Analyzer: a.name,
				Pos:      prog.Fset.Position(call.Pos()),
				Message:  fmt.Sprintf("time.%s reads the wall clock: deterministic packages must not depend on real time", fn.Name()),
			}, true
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !globalRandConstructors[fn.Name()] {
			return Diagnostic{
				Analyzer: a.name,
				Pos:      prog.Fset.Position(call.Pos()),
				Message:  fmt.Sprintf("%s.%s uses the process-global random stream: use a seeded source (xrand.Source) instead", fn.Pkg().Path(), fn.Name()),
			}, true
		}
	}
	return Diagnostic{}, false
}

// checkMapRange flags order-dependent sinks inside a range over a map.
func (a *detPass) checkMapRange(prog *Program, pkg *Package, rng *ast.RangeStmt) []Diagnostic {
	if rng.X == nil {
		return nil
	}
	t := pkg.Info.TypeOf(rng.X)
	if t == nil {
		return nil
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil
	}
	var keyObj types.Object
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = pkg.Info.Defs[id]
		if keyObj == nil {
			keyObj = pkg.Info.Uses[id]
		}
	}

	// Pre-pass: appends consumed by an assignment are classified by that
	// assignment's target (keyed slots and loop-local variables are order-
	// independent), and min/max folds are provably order-independent.
	handledAppend := map[*ast.CallExpr]bool{}
	foldOK := map[*ast.AssignStmt]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if c, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendCall(pkg.Info, c) {
					handledAppend[c] = true
				}
			}
		case *ast.IfStmt:
			if as := minMaxFold(pkg.Info, n); as != nil {
				foldOK[as] = true
			}
		}
		return true
	})

	diag := func(pos token.Pos, format string, args ...any) Diagnostic {
		return Diagnostic{
			Analyzer: a.name,
			Pos:      prog.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		}
	}
	var diags []Diagnostic
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's return leaves the closure, not the loop; writes
			// through captures are rare enough to leave to review.
			return false
		case *ast.ReturnStmt:
			diags = append(diags, diag(n.Pos(),
				"return inside range over map: iteration order chooses the result"))
		case *ast.CallExpr:
			if isAppendCall(pkg.Info, n) && !handledAppend[n] {
				diags = append(diags, diag(n.Pos(),
					"append inside range over map: element order follows map iteration order"))
			}
		case *ast.IncDecStmt:
			if root, outer := outerTarget(pkg.Info, n.X, rng); outer && !isIntegerExpr(pkg.Info, n.X) {
				diags = append(diags, diag(n.Pos(),
					"non-integer %s on %s inside range over map: accumulation order follows map iteration order", n.Tok, root))
			}
		case *ast.AssignStmt:
			if !foldOK[n] {
				diags = append(diags, a.checkMapRangeAssign(prog, pkg, rng, keyObj, n)...)
			}
		}
		return true
	})
	return diags
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	obj, _ := calleeOf(info, call)
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "append"
}

// minMaxFold recognises "if a OP b { x = y }" (no else, single assignment)
// where OP is an ordering and {x, y} are syntactically {a, b}: a running
// min/max, whose result does not depend on iteration order. Returns the
// assignment when the shape matches.
func minMaxFold(info *types.Info, ifs *ast.IfStmt) *ast.AssignStmt {
	if ifs.Else != nil || ifs.Init != nil || len(ifs.Body.List) != 1 {
		return nil
	}
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return nil
	}
	as, ok := ifs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	l, r := types.ExprString(as.Lhs[0]), types.ExprString(as.Rhs[0])
	a, b := types.ExprString(cond.X), types.ExprString(cond.Y)
	if (l == a && r == b) || (l == b && r == a) {
		return as
	}
	return nil
}

// orderFreeAssignOps are compound assignments that are exact and commutative
// over integers (modular arithmetic), hence order-independent folds.
var orderFreeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.XOR_ASSIGN: true,
}

func (a *detPass) checkMapRangeAssign(prog *Program, pkg *Package, rng *ast.RangeStmt, keyObj types.Object, as *ast.AssignStmt) []Diagnostic {
	if as.Tok == token.DEFINE {
		return nil // fresh variables live and die inside the loop
	}
	var diags []Diagnostic
	for i, lhs := range as.Lhs {
		lhs := ast.Unparen(lhs)
		isAppend := false
		if i < len(as.Rhs) {
			if c := stripParenCall(as.Rhs[i]); c != nil {
				isAppend = isAppendCall(pkg.Info, c)
			}
		}
		// Keyed writes are order-independent: map[k] = v under distinct
		// keys, and slice[k] = v when k is the range key itself.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if lt := pkg.Info.TypeOf(idx.X); lt != nil {
				if _, isMap := lt.Underlying().(*types.Map); isMap {
					continue
				}
			}
			if keyObj != nil {
				if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && pkg.Info.Uses[id] == keyObj {
					continue
				}
			}
		}
		root, outer := outerTarget(pkg.Info, lhs, rng)
		if !outer {
			continue
		}
		if isAppend {
			diags = append(diags, Diagnostic{
				Analyzer: a.name,
				Pos:      prog.Fset.Position(as.Pos()),
				Message:  fmt.Sprintf("append to %s inside range over map: element order follows map iteration order", root),
			})
			continue
		}
		if orderFreeAssignOps[as.Tok] {
			if isIntegerExpr(pkg.Info, lhs) {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: a.name,
				Pos:      prog.Fset.Position(as.Pos()),
				Message:  fmt.Sprintf("non-integer %s fold on %s inside range over map: accumulation order follows map iteration order", as.Tok, root),
			})
			continue
		}
		// Plain assignment: idempotent constant stores are fine, anything
		// value-dependent means the last-iterated key wins.
		if i < len(as.Rhs) {
			if tv, ok := pkg.Info.Types[as.Rhs[i]]; ok && tv.Value != nil {
				continue
			}
		}
		diags = append(diags, Diagnostic{
			Analyzer: a.name,
			Pos:      prog.Fset.Position(as.Pos()),
			Message:  fmt.Sprintf("assignment to %s inside range over map: the last-iterated key wins", root),
		})
	}
	return diags
}

// stripParenCall returns e's call expression if it is one (unwrapping
// parens), or nil wrapped in a harmless non-call otherwise.
func stripParenCall(e ast.Expr) *ast.CallExpr {
	c, _ := ast.Unparen(e).(*ast.CallExpr)
	return c
}

// outerTarget resolves the root identifier written by an lvalue and reports
// whether it was declared outside the range statement. Writes through
// dereferences and selectors count as writes to their root.
func outerTarget(info *types.Info, lhs ast.Expr, rng *ast.RangeStmt) (name string, outer bool) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return "_", false
			}
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj == nil {
				return e.Name, false
			}
			return e.Name, obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
		default:
			return "", false
		}
	}
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func matchPrefix(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
