// Package lint is gicnet's repo-native static-analysis pass. It loads every
// package in the module with nothing but the standard library (go/parser +
// go/types, no golang.org/x/tools) and enforces the invariants the engine's
// correctness story rests on but that only runtime checks guarded before:
//
//   - determinism: the simulation packages may not read wall-clock time, use
//     the global math/rand stream, or let map iteration order leak into
//     accumulators, slices, or return values (byte-identical replay across
//     worker counts is a verified contract, see internal/verify);
//   - hotpath: functions annotated //gicnet:hotpath (the Monte Carlo trial
//     kernel) may not allocate or call un-vetted functions (the 0 allocs/op
//     benchmark gate, made file-and-line precise);
//   - floatcmp: no ==/!= on floating-point operands outside _test.go files;
//   - errcheck: a configurable set of must-check functions whose error
//     results the stdlib vet lets silently drop.
//
// Violations that are individually provable as safe are suppressed in place
// with a "//gicnet:allow <analyzer> <reason>" comment on the same or the
// preceding line, so every exception is visible at the line that needs it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding: an invariant violation at a position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// An Analyzer checks one invariant over a whole loaded program. Analyzers
// see every package at once because some contracts cross package boundaries
// (a hotpath function may call a hotpath function from another package).
type Analyzer interface {
	Name() string
	Run(prog *Program) []Diagnostic
}

// Config selects what the analyzers enforce. The zero value checks nothing;
// use DefaultConfig for the repo's contract set.
type Config struct {
	// DeterministicPkgs are import-path prefixes of packages bound by the
	// deterministic-replay contract; the determinism analyzer only fires
	// inside them.
	DeterministicPkgs []string

	// HotpathAllowCalls are callees a //gicnet:hotpath function may call
	// without carrying the annotation itself: either a whole package by
	// import path ("math/bits") or a single function by its types.FullName
	// ("math.Log1p", "(*bufio.Writer).Available").
	HotpathAllowCalls []string

	// MustCheck are functions (by types.FullName) whose error result must
	// not be discarded, for the errcheck analyzer.
	MustCheck []string

	// PureAllowCalls are callees a //gicnet:pure function may call without
	// carrying the annotation itself: whole packages by import path
	// ("hash/fnv") or single functions by types.FullName ("fmt.Fprintf").
	PureAllowCalls []string

	// PureRoots are functions (by types.FullName) that MUST carry the
	// //gicnet:pure annotation: the fingerprint-path entry points. The
	// purecheck analyzer reports any root that is loaded but unannotated,
	// so the contract cannot silently rot off a renamed function.
	PureRoots []string

	// AcquirePairs are resource acquire/release method pairs the concheck
	// analyzer enforces: every acquire call must be followed immediately
	// by a deferred release on the same receiver.
	AcquirePairs []AcquirePair
}

// AcquirePair names one acquire/release discipline: Acquire is the full
// types.FullName of the acquiring method, Release the bare method name
// that must be deferred on the same receiver in the next statement.
type AcquirePair struct {
	Acquire string
	Release string
}

// DefaultConfig returns the contract set enforced on this repository.
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"gicnet/internal/sim",
			"gicnet/internal/failure",
			"gicnet/internal/graph",
			"gicnet/internal/partition",
			"gicnet/internal/rare",
			"gicnet/internal/serve",
			"gicnet/internal/experiments",
			"gicnet/internal/verify",
			"gicnet/internal/topology",
			"gicnet/internal/dataset",
			"gicnet/internal/xrand",
			"gicnet/internal/crosslayer",
		},
		HotpathAllowCalls: []string{
			"math",      // pure float kernels: Log, Log1p, Ldexp, ...
			"math/bits", // popcount / trailing-zeros word scans
		},
		MustCheck: []string{
			"(*bufio.Writer).Flush",
			"(*os.File).Close",
			"(*os.File).Sync",
			"(*encoding/json.Encoder).Encode",
			"(*text/tabwriter.Writer).Flush",
			"io.WriteString",
			"os.WriteFile",
			"os.MkdirAll",
		},
		PureAllowCalls: []string{
			"math",            // pure float kernels
			"math/bits",       // word scans
			"hash/fnv",        // fingerprint hash construction
			"encoding/binary", // fixed-width encoding into local buffers
			"fmt.Fprintf",     // identity headers written into a local hash
		},
		PureRoots: []string{
			"(*gicnet/internal/sim.Result).Fingerprint",
			"(*gicnet/internal/topology.Network).Fingerprint",
			"(gicnet/internal/serve.resultKey).batchKey",
			"(gicnet/internal/serve.resultKey).planKey",
			"gicnet/internal/serve.shardIndex",
			"(*gicnet/internal/crosslayer.Index).ScoreDead",
			"(*gicnet/internal/crosslayer.Index).scoreFromRoots",
		},
		AcquirePairs: []AcquirePair{
			{Acquire: "(*gicnet/internal/sim.Arena).acquire", Release: "release"},
		},
	}
}

// Analyzers returns the full analyzer set under cfg, in reporting order.
func Analyzers(cfg Config) []Analyzer {
	return []Analyzer{
		&Determinism{Pkgs: cfg.DeterministicPkgs},
		&Crossdet{Pkgs: cfg.DeterministicPkgs},
		&Concheck{Pairs: cfg.AcquirePairs},
		&Purecheck{AllowCalls: cfg.PureAllowCalls, Roots: cfg.PureRoots},
		&Hotpath{AllowCalls: cfg.HotpathAllowCalls},
		&FloatCmp{},
		&ErrCheck{MustCheck: cfg.MustCheck},
	}
}

// Run executes every analyzer over prog, drops findings suppressed by
// //gicnet:allow comments, and returns the rest sorted by position.
func Run(prog *Program, analyzers []Analyzer) []Diagnostic {
	allow := collectAllows(prog)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(prog) {
			d.File = d.Pos.Filename
			d.Line = d.Pos.Line
			d.Col = d.Pos.Column
			if allow.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// allowKey identifies one (file, line, analyzer) suppression grant.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// AllowPrefix is the in-source suppression marker. The comment form is
//
//	//gicnet:allow <analyzer>[,<analyzer>...] <reason>
//
// placed on the violating line or the line directly above it. The reason is
// free text but required by convention: a suppression must say why the
// flagged construct is safe.
const AllowPrefix = "//gicnet:allow"

// parseAllowComment matches one comment line against AllowPrefix and
// returns the analyzer names it suppresses. ok is false when the line is
// not an allow comment (or has no analyzer list).
func parseAllowComment(text string) (analyzers []string, ok bool) {
	rest, found := strings.CutPrefix(text, AllowPrefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

func collectAllows(prog *Program) allowSet {
	set := allowSet{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseAllowComment(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, name := range names {
						set[allowKey{pos.Filename, pos.Line, name}] = true
					}
				}
			}
		}
	}
	return set
}

// suppressed reports whether d is covered by an allow comment on its own
// line or the line directly above.
func (s allowSet) suppressed(d Diagnostic) bool {
	return s[allowKey{d.File, d.Line, d.Analyzer}] ||
		s[allowKey{d.File, d.Line - 1, d.Analyzer}]
}

// calleeOf resolves the called object of a call expression: a *types.Func
// for static calls and method calls, a *types.Builtin for builtins, nil for
// type conversions and dynamic calls through function values or interface
// method sets (for those, iface reports whether it is an interface-method
// call).
func calleeOf(info *types.Info, call *ast.CallExpr) (obj types.Object, iface bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun], false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				recv := sel.Recv()
				if types.IsInterface(recv) {
					return f, true
				}
				return f, false
			}
			return nil, false // field of function type: dynamic call
		}
		return info.Uses[fun.Sel], false // qualified identifier pkg.F
	}
	return nil, false
}

// isConversion reports whether call is a type conversion rather than a call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}
