package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathMarker annotates a function as part of the Monte Carlo trial
// kernel. The comment form, placed in the function's doc comment, is
//
//	//gicnet:hotpath [allow=<kind>[,<kind>...]]
//
// Annotated functions must be allocation-free and closed under calls: their
// bodies may not contain make/new, map or slice composite literals,
// &-escaping composite literals, append, closures, string<->[]byte
// conversions, interface conversions, or fmt calls, and every static callee
// must itself be //gicnet:hotpath, an assembly-backed declaration (a Go
// function without a body never reaches the allocator), or on the
// analyzer's allowlist (math, math/bits by default). The allow= kinds
// (append, make, new, complit, closure) open individual checks for
// functions with amortized growth buffers — the annotation stays honest
// because the exception is written at the function it covers.
const HotpathMarker = "//gicnet:hotpath"

// Hotpath enforces the zero-allocation contract on annotated functions.
// The benchmark gate (0 allocs/op on the trial loop) catches regressions
// end to end; this analyzer names the exact line that introduced one.
type Hotpath struct {
	// AllowCalls are callees annotated functions may call without carrying
	// the annotation: whole packages by import path or single functions by
	// types.FullName.
	AllowCalls []string
}

func (*Hotpath) Name() string { return "hotpath" }

// hotFunc is one annotated function: its declaration plus any allow= kinds.
type hotFunc struct {
	decl  *ast.FuncDecl
	pkg   *Package
	allow map[string]bool
}

// parseHotpathComment matches a doc-comment line against HotpathMarker and
// returns the allow= kinds. ok is false when the line is not an annotation.
func parseHotpathComment(text string) (allow map[string]bool, ok bool) {
	rest, found := strings.CutPrefix(text, HotpathMarker)
	if !found {
		return nil, false
	}
	allow = map[string]bool{}
	for _, field := range strings.Fields(rest) {
		if kinds, isAllow := strings.CutPrefix(field, "allow="); isAllow {
			for _, k := range strings.Split(kinds, ",") {
				allow[k] = true
			}
		}
	}
	return allow, true
}

func (a *Hotpath) Run(prog *Program) []Diagnostic {
	// Pass 1: collect every annotated function across the whole program, so
	// the call rule can vet cross-package callees — and every bodiless
	// declaration (assembly-backed function), which is an allocation-free
	// leaf by construction: assembly cannot call the allocator, and the
	// toolchain rejects a bodiless declaration with no implementation.
	hot := map[*types.Func]*hotFunc{}
	asmLeaf := map[*types.Func]bool{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fd.Body == nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						asmLeaf[fn] = true
					}
					continue
				}
				if fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if allow, ok := parseHotpathComment(c.Text); ok {
						if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
							hot[fn] = &hotFunc{decl: fd, pkg: pkg, allow: allow}
						}
						break
					}
				}
			}
		}
	}

	// Pass 2: check every annotated body.
	var diags []Diagnostic
	for _, hf := range hot {
		diags = append(diags, a.checkBody(prog, hf, hot, asmLeaf)...)
	}
	return diags
}

// hotpathAllowedBuiltins never allocate (panic only on the failure path,
// where allocation no longer matters).
var hotpathAllowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"panic": true, "recover": true, "min": true, "max": true,
	"real": true, "imag": true, "complex": true, "clear": true,
}

func (a *Hotpath) checkBody(prog *Program, hf *hotFunc, hot map[*types.Func]*hotFunc, asmLeaf map[*types.Func]bool) []Diagnostic {
	if hf.decl.Body == nil {
		return nil
	}
	name := hf.decl.Name.Name
	info := hf.pkg.Info
	var diags []Diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      prog.Fset.Position(n.Pos()),
			Message:  fmt.Sprintf("hotpath %s: %s", name, fmt.Sprintf(format, args...)),
		})
	}

	// Composite literals are fine as plain stack values (struct/array
	// results) but not when they build reference types or escape through &.
	addrTaken := map[*ast.CompositeLit]bool{}
	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
				addrTaken[cl] = true
			}
		}
		return true
	})

	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !hf.allow["closure"] {
				diag(n, "closure literal (captured variables escape to the heap)")
			}
			return false // the closure's own body is not the annotated body
		case *ast.CompositeLit:
			if hf.allow["complit"] {
				return true
			}
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				diag(n, "map literal allocates")
			case *types.Slice:
				diag(n, "slice literal allocates")
			default:
				if addrTaken[n] {
					diag(n, "&-taken composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			diags = append(diags, a.checkCall(prog, hf, hot, asmLeaf, n)...)
		}
		return true
	})
	return diags
}

func (a *Hotpath) checkCall(prog *Program, hf *hotFunc, hot map[*types.Func]*hotFunc, asmLeaf map[*types.Func]bool, call *ast.CallExpr) []Diagnostic {
	name := hf.decl.Name.Name
	info := hf.pkg.Info
	var diags []Diagnostic
	diag := func(format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      prog.Fset.Position(call.Pos()),
			Message:  fmt.Sprintf("hotpath %s: %s", name, fmt.Sprintf(format, args...)),
		})
	}

	if isConversion(info, call) {
		diags = append(diags, a.checkConversion(prog, hf, call)...)
		return diags
	}
	obj, viaInterface := calleeOf(info, call)
	switch callee := obj.(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "append":
			if !hf.allow["append"] {
				diag("append may grow the backing array (annotate allow=append only for amortized high-water buffers)")
			}
		case "make":
			if !hf.allow["make"] {
				diag("make allocates (annotate allow=make only for amortized growth paths)")
			}
		case "new":
			if !hf.allow["new"] {
				diag("new allocates")
			}
		default:
			if !hotpathAllowedBuiltins[callee.Name()] {
				diag("builtin %s is not allocation-vetted", callee.Name())
			}
		}
		return diags
	case *types.Func:
		if viaInterface {
			diag("call to %s through an interface cannot be allocation-vetted", callee.Name())
			return diags
		}
		if _, ok := hot[callee]; !ok && !asmLeaf[callee] && !a.callAllowed(callee) {
			if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				diag("fmt.%s formats through interfaces and allocates", callee.Name())
			} else {
				diag("calls %s, which is neither //gicnet:hotpath nor allowlisted", fullName(callee))
			}
			return diags
		}
	default:
		// nil (unresolved) or a function-typed variable/field.
		diag("dynamic call through a function value cannot be allocation-vetted")
		return diags
	}

	// The callee is vetted; still flag implicit interface conversions at
	// the call site (boxing a concrete argument allocates).
	diags = append(diags, a.checkArgBoxing(prog, hf, call)...)
	return diags
}

// checkConversion flags the conversions that allocate: concrete value to
// interface, and string <-> byte/rune slice copies.
func (a *Hotpath) checkConversion(prog *Program, hf *hotFunc, call *ast.CallExpr) []Diagnostic {
	info := hf.pkg.Info
	dst := info.TypeOf(call.Fun)
	if dst == nil || len(call.Args) != 1 {
		return nil
	}
	src := info.TypeOf(call.Args[0])
	name := hf.decl.Name.Name
	bad := ""
	switch {
	case hf.allow["ifaceconv"]:
	case types.IsInterface(dst) && src != nil && !types.IsInterface(src):
		bad = fmt.Sprintf("conversion of %s to interface %s allocates", src, dst)
	case isStringByteConv(dst, src) || isStringByteConv(src, dst):
		bad = fmt.Sprintf("conversion between %s and %s copies", src, dst)
	}
	if bad == "" {
		return nil
	}
	return []Diagnostic{{
		Analyzer: a.Name(),
		Pos:      prog.Fset.Position(call.Pos()),
		Message:  fmt.Sprintf("hotpath %s: %s", name, bad),
	}}
}

// checkArgBoxing flags concrete arguments passed to interface parameters of
// an otherwise-vetted call.
func (a *Hotpath) checkArgBoxing(prog *Program, hf *hotFunc, call *ast.CallExpr) []Diagnostic {
	if hf.allow["ifaceconv"] {
		return nil
	}
	info := hf.pkg.Info
	ft := info.TypeOf(call.Fun)
	if ft == nil {
		return nil
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		at := info.TypeOf(arg)
		if pt == nil || at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      prog.Fset.Position(arg.Pos()),
			Message:  fmt.Sprintf("hotpath %s: argument boxes %s into interface %s", hf.decl.Name.Name, at, pt),
		})
	}
	return diags
}

func (a *Hotpath) callAllowed(fn *types.Func) bool {
	full := fullName(fn)
	for _, pat := range a.AllowCalls {
		if pat == full {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == pat {
			return true
		}
	}
	return false
}

func fullName(fn *types.Func) string { return fn.FullName() }

func isStringByteConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	db, ok := dst.Underlying().(*types.Basic)
	if !ok || db.Info()&types.IsString == 0 {
		return false
	}
	ss, ok := src.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := ss.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune ||
		eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
}
