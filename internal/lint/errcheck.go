package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheck flags discarded error results from a configured set of
// must-check functions — the ones the stdlib vet has no opinion on but
// whose silent failure corrupts output files or report streams (Flush,
// Close-on-write, json Encode, WriteFile). A call is discarded when it
// stands alone as a statement or when its error lands in the blank
// identifier.
type ErrCheck struct {
	// MustCheck lists the functions by types.FullName, e.g.
	// "(*bufio.Writer).Flush" or "os.WriteFile".
	MustCheck []string
}

func (*ErrCheck) Name() string { return "errcheck" }

func (a *ErrCheck) Run(prog *Program) []Diagnostic {
	must := map[string]bool{}
	for _, name := range a.MustCheck {
		must[name] = true
	}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				var blankErr bool
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 {
						return true
					}
					c, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					// Only a blank in the error's result slot discards it.
					if !errorGoesToBlank(pkg.Info, n, c) {
						return true
					}
					call, blankErr = c, true
				case *ast.DeferStmt:
					call = n.Call
				case *ast.GoStmt:
					call = n.Call
				default:
					return true
				}
				if call == nil || isConversion(pkg.Info, call) {
					return true
				}
				obj, _ := calleeOf(pkg.Info, call)
				tfn, ok := obj.(*types.Func)
				if !ok || !must[tfn.FullName()] || !returnsError(tfn) {
					return true
				}
				verb := "discarded"
				if blankErr {
					verb = "assigned to _"
				}
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(call.Pos()),
					Message:  fmt.Sprintf("error result of %s %s: this call is on the must-check list", tfn.FullName(), verb),
				})
				return true
			})
		}
	}
	return diags
}

// errorGoesToBlank reports whether the call's error result position is
// assigned to the blank identifier in stmt.
func errorGoesToBlank(info *types.Info, stmt *ast.AssignStmt, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(stmt.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			return true
		}
	}
	return false
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorIface) }
