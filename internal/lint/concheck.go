package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Concheck enforces the concurrency discipline the serving and simulation
// engines rely on:
//
//   - no blocking channel operation (send, receive, range, select without
//     default) while a sync.Mutex or sync.RWMutex is held — a receiver that
//     needs the same lock deadlocks the shard;
//   - sync.WaitGroup balance per launch site: Add must precede the `go`
//     statement that runs the matching Done, never run inside the launched
//     goroutine (the classic lost-Add race against Wait);
//   - goroutine-leak shapes: a `go func(){...}` that blocks on a captured
//     channel which the enclosing function neither closes, sends to, nor
//     hands to anyone else can never exit, and an unconditional `for {}`
//     with no return/break/channel op spins forever;
//   - resource acquire/release pairing (Pairs): each acquire call must be
//     immediately followed by `defer recv.release()` on the same receiver,
//     so a panicking executor cannot strand the arena in the acquired
//     state.
//
// All rules are shape checks over single function bodies (closures get a
// fresh lock state — a goroutine does not inherit its parent's critical
// section), so a finding names the exact statement that breaks discipline.
type Concheck struct {
	// Pairs are the acquire/release method disciplines to enforce.
	Pairs []AcquirePair
}

func (*Concheck) Name() string { return "concheck" }

func (a *Concheck) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.FuncDecl:
					body = n.Body
				case *ast.FuncLit:
					body = n.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				diags = append(diags, a.checkLocks(prog, pkg, body)...)
				diags = append(diags, a.checkGoStmts(prog, pkg, body)...)
				diags = append(diags, a.checkPairs(prog, pkg, body)...)
				return true
			})
		}
	}
	return diags
}

// ---- rule 1: no blocking channel op under a held mutex ----

// lockMethod classifies a call as a sync.Mutex/RWMutex Lock-family method
// and returns the receiver expression's canonical string.
func lockMethod(info *types.Info, call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, _ := calleeOf(info, call)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	recvType := fn.Type().(*types.Signature).Recv().Type()
	if p, isPtr := recvType.(*types.Pointer); isPtr {
		recvType = p.Elem()
	}
	if named, isNamed := recvType.(*types.Named); !isNamed ||
		(named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// checkLocks runs the held-lock scan over one function body. The held set
// maps lock receiver strings to the position of the acquiring call.
func (a *Concheck) checkLocks(prog *Program, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	a.walkLocked(prog, pkg, body.List, map[string]token.Pos{}, &diags)
	return diags
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// walkLocked scans a statement sequence, updating the held-lock set on
// Lock/Unlock calls and flagging blocking channel operations while any
// lock is held. Nested control flow recurses with a copy of the set, so a
// branch cannot leak its lock state into its siblings.
func (a *Concheck) walkLocked(prog *Program, pkg *Package, stmts []ast.Stmt, held map[string]token.Pos, diags *[]Diagnostic) {
	for _, stmt := range stmts {
		for {
			ls, ok := stmt.(*ast.LabeledStmt)
			if !ok {
				break
			}
			stmt = ls.Stmt
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if recv, method, ok := lockMethod(pkg.Info, call); ok {
					switch method {
					case "Lock", "RLock":
						held[recv] = call.Pos()
					case "Unlock", "RUnlock":
						delete(held, recv)
					}
					continue
				}
			}
			a.flagChanOps(prog, pkg, s, held, diags)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function exit: every
			// later statement still runs inside the critical section.
			a.flagChanOps(prog, pkg, s.Call, held, diags)
		case *ast.BlockStmt:
			a.walkLocked(prog, pkg, s.List, held, diags)
		case *ast.IfStmt:
			if s.Init != nil {
				a.flagChanOps(prog, pkg, s.Init, held, diags)
			}
			a.flagChanOps(prog, pkg, s.Cond, held, diags)
			a.walkLocked(prog, pkg, s.Body.List, copyHeld(held), diags)
			if s.Else != nil {
				a.walkLocked(prog, pkg, []ast.Stmt{s.Else}, copyHeld(held), diags)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				a.flagChanOps(prog, pkg, s.Init, held, diags)
			}
			if s.Cond != nil {
				a.flagChanOps(prog, pkg, s.Cond, held, diags)
			}
			a.walkLocked(prog, pkg, s.Body.List, copyHeld(held), diags)
		case *ast.RangeStmt:
			if len(held) > 0 && isChanType(pkg.Info.TypeOf(s.X)) {
				*diags = append(*diags, a.lockDiag(prog, s.Pos(), "range over channel", held))
			}
			a.walkLocked(prog, pkg, s.Body.List, copyHeld(held), diags)
		case *ast.SwitchStmt:
			if s.Init != nil {
				a.flagChanOps(prog, pkg, s.Init, held, diags)
			}
			if s.Tag != nil {
				a.flagChanOps(prog, pkg, s.Tag, held, diags)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					a.walkLocked(prog, pkg, cc.Body, copyHeld(held), diags)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					a.walkLocked(prog, pkg, cc.Body, copyHeld(held), diags)
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(s) {
				*diags = append(*diags, a.lockDiag(prog, s.Pos(), "blocking select", held))
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					a.walkLocked(prog, pkg, cc.Body, copyHeld(held), diags)
				}
			}
		case *ast.GoStmt:
			// The goroutine runs outside this critical section; its own
			// body is scanned as a separate function literal. Launch
			// arguments are evaluated here, though.
			for _, arg := range s.Call.Args {
				a.flagChanOps(prog, pkg, arg, held, diags)
			}
		default:
			a.flagChanOps(prog, pkg, stmt, held, diags)
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// flagChanOps reports blocking channel operations inside n (not descending
// into function literals) when any lock is held.
func (a *Concheck) flagChanOps(prog *Program, pkg *Package, n ast.Node, held map[string]token.Pos, diags *[]Diagnostic) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			*diags = append(*diags, a.lockDiag(prog, c.Pos(), "channel send", held))
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				*diags = append(*diags, a.lockDiag(prog, c.Pos(), "channel receive", held))
			}
		}
		return true
	})
}

func (a *Concheck) lockDiag(prog *Program, pos token.Pos, op string, held map[string]token.Pos) Diagnostic {
	name, lockPos := "", token.NoPos
	for recv, p := range held {
		if name == "" || p < lockPos {
			name, lockPos = recv, p
		}
	}
	return Diagnostic{
		Analyzer: a.Name(),
		Pos:      prog.Fset.Position(pos),
		Message: fmt.Sprintf("%s while holding %s (locked at line %d): a blocked channel op under a mutex deadlocks every other taker",
			op, name, prog.Fset.Position(lockPos).Line),
	}
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// ---- rules 2 & 3: WaitGroup balance and goroutine-leak shapes ----

// checkGoStmts examines every `go func(){...}` launched directly by body
// (not by nested literals — those run their own scan when Run visits them).
func (a *Concheck) checkGoStmts(prog *Program, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			// Nested literals are scanned as their own functions, but a go
			// stmt lexically inside one belongs to that literal's scan; to
			// keep launch-site pairing local we stop here.
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // named-function launches pair Add/Done across bodies
		}
		diags = append(diags, a.checkWaitGroup(prog, pkg, body, g, lit)...)
		diags = append(diags, a.checkLeakShapes(prog, pkg, body, g, lit)...)
		return true
	})
	return diags
}

// waitGroupCall classifies a call as sync.WaitGroup Add/Done/Wait and
// returns the receiver string.
func waitGroupCall(info *types.Info, call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, _ := calleeOf(info, call)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Add", "Done", "Wait":
	default:
		return "", "", false
	}
	recvType := fn.Type().(*types.Signature).Recv().Type()
	if p, isPtr := recvType.(*types.Pointer); isPtr {
		recvType = p.Elem()
	}
	if named, isNamed := recvType.(*types.Named); !isNamed || named.Obj().Name() != "WaitGroup" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

func (a *Concheck) checkWaitGroup(prog *Program, pkg *Package, enclosing *ast.BlockStmt, g *ast.GoStmt, lit *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic
	// Done targets inside the launched goroutine, and any Add that snuck in
	// with them.
	doneRecvs := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := waitGroupCall(pkg.Info, call)
		if !ok {
			return true
		}
		switch method {
		case "Add":
			diags = append(diags, Diagnostic{
				Analyzer: a.Name(),
				Pos:      prog.Fset.Position(call.Pos()),
				Message:  fmt.Sprintf("%s.Add inside the launched goroutine: Add must happen before the go statement or Wait can return early", recv),
			})
		case "Done":
			doneRecvs[recv] = true
		}
		return true
	})
	for recv := range doneRecvs {
		if !addPrecedesLaunch(pkg.Info, enclosing, g, lit, recv) {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name(),
				Pos:      prog.Fset.Position(g.Pos()),
				Message:  fmt.Sprintf("goroutine calls %s.Done but no %s.Add precedes the launch in this function", recv, recv),
			})
		}
	}
	return diags
}

// addPrecedesLaunch reports whether enclosing contains recv.Add(...) before
// the go statement, or the WaitGroup reaches this function from outside (a
// parameter or field receiver — its Add legitimately lives with the caller).
func addPrecedesLaunch(info *types.Info, enclosing *ast.BlockStmt, g *ast.GoStmt, lit *ast.FuncLit, recv string) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found || n == lit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r, method, ok := waitGroupCall(info, call); ok && method == "Add" && r == recv && call.Pos() < g.Pos() {
			found = true
		}
		return true
	})
	if found {
		return true
	}
	// A selector receiver (s.wg) or one declared outside this body belongs
	// to a wider lifecycle; only a locally-declared plain variable must be
	// balanced at the launch site.
	obj := lookupIdentObj(info, enclosing, recv)
	if obj == nil {
		return true
	}
	return obj.Pos() < enclosing.Pos() || obj.Pos() >= enclosing.End()
}

// lookupIdentObj resolves a plain identifier name used inside body to its
// object, or nil when the name is not a plain local identifier.
func lookupIdentObj(info *types.Info, body *ast.BlockStmt, name string) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				obj = o
			} else if o := info.Uses[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	return obj
}

// checkLeakShapes flags goroutines with no visible exit path: a blocking
// receive on a captured channel the enclosing function never closes, sends
// to, or passes on; a send on a captured unbuffered channel nobody
// receives; and an unconditional for{} with no return, break, or channel
// operation.
func (a *Concheck) checkLeakShapes(prog *Program, pkg *Package, enclosing *ast.BlockStmt, g *ast.GoStmt, lit *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic

	litParams := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, id := range f.Names {
				if o := pkg.Info.Defs[id]; o != nil {
					litParams[o] = true
				}
			}
		}
	}
	captured := func(e ast.Expr) (string, bool) {
		root := rootIdent(e)
		if root == nil {
			// Selector-rooted channels (c.done) are fields of a shared
			// object: their lifecycle is the object's, not this launch
			// site's.
			return "", false
		}
		obj := pkg.Info.Uses[root]
		if obj == nil || litParams[obj] {
			return "", false
		}
		// Captured means declared outside the literal.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return "", false
		}
		return root.Name, true
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			name, ok := captured(n.X)
			if !ok || inSelectWithEscape(pkg.Info, lit.Body, n.Pos()) {
				return true
			}
			if !enclosingReleases(pkg.Info, enclosing, lit, name, "recv") {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(n.Pos()),
					Message:  fmt.Sprintf("goroutine blocks receiving from captured channel %s with no close, send, or cancellation path in the launching function: it can never exit", name),
				})
			}
		case *ast.RangeStmt:
			if !isChanType(pkg.Info.TypeOf(n.X)) {
				return true
			}
			name, ok := captured(n.X)
			if !ok {
				return true
			}
			if !enclosingReleases(pkg.Info, enclosing, lit, name, "recv") {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(n.Pos()),
					Message:  fmt.Sprintf("goroutine ranges over captured channel %s with no close, send, or cancellation path in the launching function: it can never exit", name),
				})
			}
		case *ast.SendStmt:
			name, ok := captured(n.Chan)
			if !ok || inSelectWithEscape(pkg.Info, lit.Body, n.Pos()) {
				return true
			}
			if !enclosingReleases(pkg.Info, enclosing, lit, name, "send") &&
				!bufferedMake(pkg.Info, enclosing, name) {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(n.Pos()),
					Message:  fmt.Sprintf("goroutine sends to captured unbuffered channel %s that the launching function never receives from or passes on: the send can block forever", name),
				})
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopCanExit(n) {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(n.Pos()),
					Message:  "goroutine spins in a for{} loop with no return, break, or channel operation: it never exits",
				})
			}
		}
		return true
	})
	return diags
}

// rootIdent peels index/paren expressions down to a plain identifier;
// selector-rooted expressions return nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// inSelectWithEscape reports whether pos sits inside a select statement in
// body that has a default case or a case receiving from a context-style
// Done() channel — either gives the goroutine an exit path.
func inSelectWithEscape(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	escape := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escape {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok || pos < sel.Pos() || pos >= sel.End() {
			return true
		}
		if selectHasDefault(sel) {
			escape = true
			return false
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				u, ok := m.(*ast.UnaryExpr)
				if !ok || u.Op != token.ARROW {
					return true
				}
				if call, ok := ast.Unparen(u.X).(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						escape = true
					}
				}
				return true
			})
		}
		return true
	})
	return escape
}

// enclosingReleases reports whether the launching function, outside the
// goroutine literal itself, does something that lets the goroutine's
// blocking op on channel name complete: close(name) or a send for "recv"
// ops, a receive for "send" ops — or hands the channel to someone else
// (call argument, return value), which moves the responsibility out of
// sight and out of this analyzer's scope.
func enclosingReleases(info *types.Info, enclosing *ast.BlockStmt, lit *ast.FuncLit, name string, need string) bool {
	released := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if released || n == lit {
			return n != lit
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if r := rootIdent(firstArg(n)); r != nil && r.Name == name {
					released = true
					return false
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); !ok || (id.Name != "make" && id.Name != "close" && id.Name != "len" && id.Name != "cap") {
				for _, arg := range n.Args {
					if r := rootIdent(arg); r != nil && r.Name == name {
						released = true // escapes into a callee
						return false
					}
				}
			}
		case *ast.SendStmt:
			if need == "recv" {
				if r := rootIdent(n.Chan); r != nil && r.Name == name {
					released = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if need == "send" && n.Op == token.ARROW {
				if r := rootIdent(n.X); r != nil && r.Name == name {
					released = true
					return false
				}
			}
		case *ast.RangeStmt:
			if need == "send" && isChanType(info.TypeOf(n.X)) {
				if r := rootIdent(n.X); r != nil && r.Name == name {
					released = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if r := rootIdent(res); r != nil && r.Name == name {
					released = true
					return false
				}
			}
		}
		return true
	})
	return released
}

func firstArg(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}

// bufferedMake reports whether name is created by make(chan T, n) with a
// nonzero constant capacity in the enclosing body: a buffered send cannot
// block until the buffer fills.
func bufferedMake(info *types.Info, enclosing *ast.BlockStmt, name string) bool {
	buffered := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if buffered {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name != name || i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "make" {
				if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() != "0" {
					buffered = true
				}
			}
		}
		return true
	})
	return buffered
}

// loopCanExit reports whether a for{} body contains any statement that can
// leave it: return, break, goto, panic, or a channel operation (a blocked
// channel op parks the goroutine instead of burning a core, and gets its
// own leak analysis above).
func loopCanExit(loop *ast.ForStmt) bool {
	can := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if can {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			can = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				can = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			can = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				can = true
			}
		case *ast.RangeStmt:
			can = true // ranges can end, and range-over-chan parks
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				can = true
			}
		}
		return true
	})
	return can
}

// ---- rule 4: resource acquire/release pairing ----

// checkPairs enforces that every configured acquire call is immediately
// followed by a deferred release on the same receiver.
func (a *Concheck) checkPairs(prog *Program, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	if len(a.Pairs) == 0 {
		return nil
	}
	var diags []Diagnostic
	var scanList func(stmts []ast.Stmt)
	scanList = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			obj, _ := calleeOf(pkg.Info, call)
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			pair, ok := a.pairFor(fn)
			if !ok {
				continue
			}
			recv := types.ExprString(sel.X)
			if !nextIsDeferredRelease(pkg.Info, stmts, i, recv, pair.Release) {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("%s.%s is not immediately followed by defer %s.%s(): a panic between them strands the resource acquired",
						recv, fn.Name(), recv, pair.Release),
				})
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Literal bodies run their own checkPairs when Run visits them.
			return false
		case *ast.BlockStmt:
			scanList(n.List)
		case *ast.CaseClause:
			scanList(n.Body)
		case *ast.CommClause:
			scanList(n.Body)
		}
		return true
	})
	return diags
}

func (a *Concheck) pairFor(fn *types.Func) (AcquirePair, bool) {
	full := fullName(fn)
	for _, p := range a.Pairs {
		if p.Acquire == full {
			return p, true
		}
	}
	return AcquirePair{}, false
}

func nextIsDeferredRelease(info *types.Info, stmts []ast.Stmt, i int, recv, release string) bool {
	if i+1 >= len(stmts) {
		return false
	}
	def, ok := stmts[i+1].(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(def.Call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == release && types.ExprString(sel.X) == recv
}
