package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gicnet/internal/lint"
)

// wantRE extracts the quoted regexes from a "// want" comment: double-quoted
// or backtick-quoted, several per comment.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// loadWants scans every fixture file under dir (recursively, so
// cross-package fixtures with subdirectory packages work; want matching is
// by base name, so fixture file names must stay unique within a fixture)
// for // want expectations.
func loadWants(t *testing.T, dir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, e os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, pat, err)
				}
				wants = append(wants, &want{file: e.Name(), line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the analyzers, and checks the
// diagnostics against the fixture's // want comments: every diagnostic must
// match a want on its line, every want must be hit exactly once.
func runFixture(t *testing.T, name string, analyzers []lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := lint.LoadFixture(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	wants := loadWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want expectations", name)
	}
	for _, d := range lint.Run(prog, analyzers) {
		base := filepath.Base(d.File)
		hit := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determ", []lint.Analyzer{
		&lint.Determinism{Pkgs: []string{"fixture/determ"}},
	})
}

func TestHotpathFixture(t *testing.T) {
	runFixture(t, "hotpath", []lint.Analyzer{
		&lint.Hotpath{AllowCalls: []string{"math", "math/bits"}},
	})
}

func TestAsmLeafFixture(t *testing.T) {
	runFixture(t, "asmleaf", []lint.Analyzer{
		&lint.Hotpath{AllowCalls: []string{"math", "math/bits"}},
	})
}

func TestConcheckFixture(t *testing.T) {
	runFixture(t, "concheck", []lint.Analyzer{
		&lint.Concheck{Pairs: []lint.AcquirePair{
			{Acquire: "(*fixture/concheck.Arena).acquire", Release: "release"},
		}},
	})
}

func TestPurecheckFixture(t *testing.T) {
	runFixture(t, "purecheck", []lint.Analyzer{
		&lint.Purecheck{
			Roots: []string{"fixture/purecheck.mustAnnotate"},
		},
	})
}

func TestCrossdetFixture(t *testing.T) {
	runFixture(t, "crossdet", []lint.Analyzer{
		&lint.Crossdet{Pkgs: []string{"fixture/crossdet/det"}},
	})
}

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, "floatcmp", []lint.Analyzer{&lint.FloatCmp{}})
}

func TestErrCheckFixture(t *testing.T) {
	runFixture(t, "errcheck", []lint.Analyzer{
		&lint.ErrCheck{MustCheck: lint.DefaultConfig().MustCheck},
	})
}

// TestRepoClean proves the real repository satisfies every contract the
// analyzers enforce: the tree that ships is lint-clean, so any new finding
// is a regression introduced by the change under review.
func TestRepoClean(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(prog, lint.Analyzers(lint.DefaultConfig()))
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestDeterministicPackagesLoaded guards the config against rot: every
// package the determinism contract names must actually exist in the module,
// so a rename cannot silently drop a package out of enforcement.
func TestDeterministicPackagesLoaded(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	loaded := map[string]bool{}
	for _, pkg := range prog.Pkgs {
		loaded[pkg.Path] = true
	}
	for _, want := range lint.DefaultConfig().DeterministicPkgs {
		if !loaded[want] {
			t.Errorf("deterministic package %s is configured but not present in the module", want)
		}
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
