package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"gicnet/internal/lint"
)

// writeTinyModule lays out a three-package module for baseline and
// partial-load tests: b imports a, c is independent.
func writeTinyModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/tiny\n\ngo 1.21\n",
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go": "package b\n\nimport \"example.com/tiny/a\"\n\nfunc B() int { return a.A() + 1 }\n",
		"c/c.go": "package c\n\nfunc C() int { return 3 }\n",
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestBaselineDiff(t *testing.T) {
	root := writeTinyModule(t)
	before, err := lint.SnapshotModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 3 {
		t.Fatalf("snapshot has %d packages, want 3: %v", len(before), before)
	}

	// Unchanged tree: no diff.
	again, err := lint.SnapshotModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if diff := lint.ChangedPackages(before, again); len(diff) != 0 {
		t.Fatalf("unchanged module reports changes: %v", diff)
	}

	// Edit one file, add a package, delete a package: all three show up.
	if err := os.WriteFile(filepath.Join(root, "b/b.go"),
		[]byte("package b\n\nimport \"example.com/tiny/a\"\n\nfunc B() int { return a.A() + 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "d"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "d/d.go"), []byte("package d\n\nfunc D() int { return 4 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root, "c")); err != nil {
		t.Fatal(err)
	}
	after, err := lint.SnapshotModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diff := lint.ChangedPackages(before, after)
	want := []string{"example.com/tiny/b", "example.com/tiny/c", "example.com/tiny/d"}
	if len(diff) != len(want) {
		t.Fatalf("diff = %v, want %v", diff, want)
	}
	for i := range want {
		if diff[i] != want[i] {
			t.Fatalf("diff = %v, want %v", diff, want)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := writeTinyModule(t)
	snap, err := lint.SnapshotModule(root)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "lint-baseline.json")
	if err := lint.WriteBaseline(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := lint.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if diff := lint.ChangedPackages(snap, loaded); len(diff) != 0 {
		t.Fatalf("round-tripped baseline differs: %v", diff)
	}
}

// TestLoadOnlySubset proves the -changed load keeps a changed package's
// dependencies (typechecking needs them) while dropping unrelated packages.
func TestLoadOnlySubset(t *testing.T) {
	root := writeTinyModule(t)
	prog, err := lint.LoadModuleOpts(root, lint.LoadOptions{
		Only: map[string]bool{"example.com/tiny/b": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded := map[string]bool{}
	for _, pkg := range prog.Pkgs {
		loaded[pkg.Path] = true
	}
	if !loaded["example.com/tiny/b"] || !loaded["example.com/tiny/a"] {
		t.Fatalf("subset load missing b or its dependency a: %v", loaded)
	}
	if loaded["example.com/tiny/c"] {
		t.Fatalf("subset load pulled in unrelated package c: %v", loaded)
	}
}
