package lint

import (
	"strings"
	"testing"
)

// FuzzAnnotationComments hammers the three annotation-comment parsers with
// arbitrary comment text. The parsers gate suppression and contract
// enforcement, so a crash or a malformed accept (whitespace inside a
// parsed analyzer name, a marker matched without its word boundary) would
// silently change what the linter enforces.
func FuzzAnnotationComments(f *testing.F) {
	seeds := []string{
		"//gicnet:allow crossdet keys are sorted before use",
		"//gicnet:allow floatcmp,errcheck exact tie-break",
		"//gicnet:allow",
		"//gicnet:allowx not a marker",
		"//gicnet:hotpath",
		"//gicnet:hotpath allow=make,append",
		"//gicnet:pure",
		"//gicnet:pure allow=write:s,write:dst",
		"//gicnet:purex not a marker",
		"// plain comment",
		"//gicnet:pure\tallow=write:u",
		"//gicnet:allow \t ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if analyzers, ok := parseAllowComment(text); ok {
			if !strings.HasPrefix(text, AllowPrefix) {
				t.Errorf("parseAllowComment accepted %q without the marker prefix", text)
			}
			if len(analyzers) == 0 {
				t.Errorf("parseAllowComment(%q) ok with empty analyzer list", text)
			}
			for _, a := range analyzers {
				if strings.ContainsAny(a, " \t\n,") {
					t.Errorf("parseAllowComment(%q) analyzer %q contains separators", text, a)
				}
			}
		}
		if allow, ok := parseHotpathComment(text); ok {
			if !strings.HasPrefix(text, HotpathMarker) {
				t.Errorf("parseHotpathComment accepted %q without the marker prefix", text)
			}
			for k := range allow {
				if strings.ContainsAny(k, " \t\n,") {
					t.Errorf("parseHotpathComment(%q) kind %q contains separators", text, k)
				}
			}
		}
		if allow, ok := parsePureComment(text); ok {
			rest := strings.TrimPrefix(text, PureMarker)
			if rest == text {
				t.Errorf("parsePureComment accepted %q without the marker prefix", text)
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				t.Errorf("parsePureComment accepted %q without a word boundary after the marker", text)
			}
			for k := range allow {
				if strings.ContainsAny(k, " \t\n,") {
					t.Errorf("parsePureComment(%q) grant %q contains separators", text, k)
				}
			}
		}
	})
}
