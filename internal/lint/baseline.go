package lint

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is a per-package snapshot of source-file content hashes:
// import path → file base name → FNV-1a 64 hash (hex). cmd/gicnetlint's
// -changed mode diffs a fresh snapshot against a stored baseline and lints
// only the packages that differ (plus their dependencies for
// typechecking), so iterating on one package does not re-typecheck the
// module. Hashes cover every non-test .go file regardless of build tags —
// a change to any variant of a package invalidates it under every
// configuration.
type Baseline map[string]map[string]string

// SnapshotModule hashes every non-test .go file of every package under
// root, with the same directory-skipping rules as LoadModule.
func SnapshotModule(root string) (Baseline, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	snap := Baseline{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		h := fnv.New64a()
		h.Write(data)
		if snap[importPath] == nil {
			snap[importPath] = map[string]string{}
		}
		snap[importPath][name] = fmt.Sprintf("%016x", h.Sum64())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// ChangedPackages returns the import paths whose file-hash maps differ
// between the stored baseline and the current snapshot — changed files,
// new files, deleted files, new packages, and deleted packages all count
// (a deleted package is reported so stale diagnostics don't hide; the
// loader simply won't find it).
func ChangedPackages(stored, current Baseline) []string {
	changed := map[string]bool{}
	for path, files := range current {
		old, ok := stored[path]
		if !ok || !sameFiles(old, files) {
			changed[path] = true
		}
	}
	for path := range stored {
		if _, ok := current[path]; !ok {
			changed[path] = true
		}
	}
	out := make([]string, 0, len(changed))
	for path := range changed {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

func sameFiles(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for name, hash := range a {
		if b[name] != hash {
			return false
		}
	}
	return true
}

// WriteBaseline writes a snapshot as stable, diff-friendly JSON.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a snapshot written by WriteBaseline.
func ReadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return b, nil
}
