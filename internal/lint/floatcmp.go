package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags == and != between floating-point (or complex) operands
// outside _test.go files. Exact equality on computed floats is almost
// always a rounding-order bug waiting to happen — the engine's goldens
// compare through relative/absolute tolerances for exactly that reason
// (internal/verify). Two forms stay legal:
//
//   - comparison against an exact constant zero ("has this probability been
//     set at all" is well-defined: 0 is the only float every model treats
//     as absent, and no rounding produces a false positive the code path
//     cares about);
//   - anything carrying a //gicnet:allow floatcmp comment stating why exact
//     equality is intended (e.g. Frexp returns exactly 0.5 for powers of
//     two, or a validator proving two arrays are bit-identical copies).
type FloatCmp struct{}

func (*FloatCmp) Name() string { return "floatcmp" }

func (a *FloatCmp) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if strings.HasSuffix(prog.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloatExpr(pkg.Info, be.X) && !isFloatExpr(pkg.Info, be.Y) {
					return true
				}
				if isExactZero(pkg.Info, be.X) || isExactZero(pkg.Info, be.Y) {
					return true
				}
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(be.OpPos),
					Message:  fmt.Sprintf("%s on floating-point operands: compare through a tolerance, restructure, or annotate the exact-equality intent", be.Op),
				})
				return true
			})
		}
	}
	return diags
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isExactZero reports whether e is a compile-time constant equal to zero.
func isExactZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
